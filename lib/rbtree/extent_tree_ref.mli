(** Reference free-space extent tree (red-black trees).

    The pre-flattening {!Extent_tree} implementation, kept verbatim as the
    oracle for differential tests: both structures replay the same
    operation stream and must produce identical allocations, extents and
    censuses.  Production code uses {!Extent_tree}; nothing outside the
    test suite should depend on this module. *)

type t

val create : unit -> t

val insert_free : t -> off:int -> len:int -> unit
(** Return an extent to the pool, merging with adjacent free extents.
    Raises [Invalid_argument] if the range overlaps an existing free
    extent (double free) or has non-positive length. *)

val alloc_first_fit : t -> len:int -> int option
(** Lowest-offset free extent at least [len] long; carves [len] bytes from
    its front.  WineFS uses first-fit for hole allocation (§3.6). *)

val alloc_best_fit : t -> len:int -> int option
(** Smallest sufficient extent (ties broken by offset). *)

val alloc_near : t -> goal:int -> len:int -> int option
(** First fit at or after [goal], wrapping to the start — models goal-based
    locality allocation in ext4/xfs. *)

val alloc_aligned : t -> len:int -> align:int -> int option
(** Carve an [align]-aligned run of [len] bytes from the first extent that
    contains one. *)

val alloc_aligned_near : t -> goal:int -> window:int -> len:int -> align:int -> int option
(** Like {!alloc_aligned} but only considers extents intersecting
    [goal, goal+window) — models allocators whose alignment is subordinate
    to locality (ext4 mballoc's buddy alignment within the goal's block
    groups). *)

val alloc_exact : t -> off:int -> len:int -> bool
(** Carve a specific range; false when not entirely free. *)

val contains : t -> off:int -> len:int -> bool
(** Entire range inside one free extent? *)

val extent_at : t -> off:int -> (int * int) option
(** The free extent containing [off], as [(extent_off, extent_len)]. *)

val total_free : t -> int
val extent_count : t -> int

val largest : t -> int
(** Length of the largest free extent (0 when empty). *)

val iter : t -> (off:int -> len:int -> unit) -> unit
(** Ascending offset order. *)

val to_list : t -> (int * int) list

val aligned_region_count : t -> align:int -> int
(** Number of disjoint [align]-aligned, [align]-sized regions that lie
    entirely in free space — the paper's Figure 3 metric (available
    hugepages). *)

val check_invariants : t -> (unit, string) result
