(* Chunked sorted-run extent index (ROADMAP item 2).

   Two sorted runs replace the red-black trees of the original
   implementation (preserved as {!Extent_tree_ref} for differential
   testing): one ordered by offset backs the neighbour queries
   (extent_at, coalescing, goal walks), and one ordered by
   (length, offset) backs best-fit and [largest].  Each run stores its
   (a, b) int pairs in fixed-capacity blocks of [blk_cap] entries behind
   a small block directory, so a mutation blits at most one block — a
   memmove the size of a couple of cache pages — plus a pointer shift
   over the ~n/64 directory.  Aged devices reach thousands of free
   extents, where a single flat array's O(n) element shifts dominated
   the allocation path; bounded blocks keep the cache-friendly layout
   without the superlinear churn cost.

   Control flow of every allocation strategy mirrors the reference
   implementation exactly — the golden image test demands bit-identical
   allocation sequences. *)

let huge = Repro_util.Units.huge_page

(* Aligned 2MB regions fully contained in one extent. *)
let aligned_in ~off ~len =
  let first = Repro_util.Units.round_up off huge in
  let last = Repro_util.Units.round_down (off + len) huge in
  max 0 ((last - first) / huge)

let blk_cap = 128
let blk_half = blk_cap / 2
let blk_quarter = blk_cap / 4

(* A sorted run of distinct (a, b) pairs in lexicographic order.  The
   offset run stores (off, len) — offsets are unique, so this is offset
   order — and the size run stores (len, off). *)
type run = {
  mutable ba : int array array; (* per-block primary fields *)
  mutable bb : int array array; (* per-block secondary fields *)
  mutable bc : int array; (* per-block live counts, always >= 1 *)
  mutable nb : int; (* blocks in use *)
  mutable rn : int; (* total entries across all blocks *)
}

let run_create () =
  { ba = Array.make 4 [||]; bb = Array.make 4 [||]; bc = Array.make 4 0; nb = 0; rn = 0 }

(* Cursors pack (block, slot); slots stay below [blk_cap], so packed
   values order exactly like positions and compare with plain (<). *)
let cur bi si = (bi lsl 16) lor si
let cur_bi c = c lsr 16
let cur_si c = c land 0xFFFF
let run_valid r c = cur_bi c < r.nb
let run_a r c = r.ba.(cur_bi c).(cur_si c)
let run_b r c = r.bb.(cur_bi c).(cur_si c)

(* Smallest cursor with (a, b) >= (ka, kb), or the end cursor. *)
let run_first_geq r ka kb =
  let lo = ref 0 and hi = ref r.nb in
  (* invariant: blocks [< lo] end before the key, blocks [>= hi] reach it *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let last = r.bc.(mid) - 1 in
    let la = r.ba.(mid).(last) in
    if la > ka || (la = ka && r.bb.(mid).(last) >= kb) then hi := mid else lo := mid + 1
  done;
  if !lo = r.nb then cur r.nb 0
  else begin
    let a = r.ba.(!lo) and b = r.bb.(!lo) in
    let slo = ref 0 and shi = ref r.bc.(!lo) in
    while !slo < !shi do
      let m = (!slo + !shi) / 2 in
      let va = Array.unsafe_get a m in
      if va > ka || (va = ka && Array.unsafe_get b m >= kb) then shi := m else slo := m + 1
    done;
    cur !lo !slo
  end

(* Smallest cursor with (a, b) > (ka, kb), or the end cursor. *)
let run_first_gt r ka kb =
  let lo = ref 0 and hi = ref r.nb in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let last = r.bc.(mid) - 1 in
    let la = r.ba.(mid).(last) in
    if la > ka || (la = ka && r.bb.(mid).(last) > kb) then hi := mid else lo := mid + 1
  done;
  if !lo = r.nb then cur r.nb 0
  else begin
    let a = r.ba.(!lo) and b = r.bb.(!lo) in
    let slo = ref 0 and shi = ref r.bc.(!lo) in
    while !slo < !shi do
      let m = (!slo + !shi) / 2 in
      let va = Array.unsafe_get a m in
      if va > ka || (va = ka && Array.unsafe_get b m > kb) then shi := m else slo := m + 1
    done;
    cur !lo !slo
  end

let run_prev r c =
  let bi = cur_bi c and si = cur_si c in
  if si > 0 then cur bi (si - 1)
  else if bi > 0 then cur (bi - 1) (r.bc.(bi - 1) - 1)
  else -1

(* Largest cursor with (a, b) <= (ka, kb), or -1. *)
let run_last_leq r ka kb = run_prev r (run_first_gt r ka kb)

let dir_grow r =
  if r.nb = Array.length r.bc then begin
    let nc = 2 * Array.length r.bc in
    let ea = Array.make nc [||] and eb = Array.make nc [||] and ec = Array.make nc 0 in
    Array.blit r.ba 0 ea 0 r.nb;
    Array.blit r.bb 0 eb 0 r.nb;
    Array.blit r.bc 0 ec 0 r.nb;
    r.ba <- ea;
    r.bb <- eb;
    r.bc <- ec
  end

(* Split the full block [bi]; entries [blk_half..] move to block bi+1. *)
let run_split r bi =
  dir_grow r;
  let a2 = Array.make blk_cap 0 and b2 = Array.make blk_cap 0 in
  Array.blit r.ba.(bi) blk_half a2 0 (blk_cap - blk_half);
  Array.blit r.bb.(bi) blk_half b2 0 (blk_cap - blk_half);
  Array.blit r.ba (bi + 1) r.ba (bi + 2) (r.nb - bi - 1);
  Array.blit r.bb (bi + 1) r.bb (bi + 2) (r.nb - bi - 1);
  Array.blit r.bc (bi + 1) r.bc (bi + 2) (r.nb - bi - 1);
  r.ba.(bi + 1) <- a2;
  r.bb.(bi + 1) <- b2;
  r.bc.(bi) <- blk_half;
  r.bc.(bi + 1) <- blk_cap - blk_half;
  r.nb <- r.nb + 1

let drop_block r bi =
  Array.blit r.ba (bi + 1) r.ba bi (r.nb - bi - 1);
  Array.blit r.bb (bi + 1) r.bb bi (r.nb - bi - 1);
  Array.blit r.bc (bi + 1) r.bc bi (r.nb - bi - 1);
  r.nb <- r.nb - 1;
  r.ba.(r.nb) <- [||];
  r.bb.(r.nb) <- [||];
  r.bc.(r.nb) <- 0

let run_insert r ka kb =
  if r.nb = 0 then begin
    r.ba.(0) <- Array.make blk_cap 0;
    r.bb.(0) <- Array.make blk_cap 0;
    r.ba.(0).(0) <- ka;
    r.bb.(0).(0) <- kb;
    r.bc.(0) <- 1;
    r.nb <- 1;
    r.rn <- 1
  end
  else begin
    let c = run_first_geq r ka kb in
    let bi, si =
      if cur_bi c = r.nb then (r.nb - 1, r.bc.(r.nb - 1)) else (cur_bi c, cur_si c)
    in
    let bi, si =
      if r.bc.(bi) < blk_cap then (bi, si)
      else begin
        run_split r bi;
        if si > blk_half then (bi + 1, si - blk_half) else (bi, si)
      end
    in
    let a = r.ba.(bi) and b = r.bb.(bi) and cnt = r.bc.(bi) in
    Array.blit a si a (si + 1) (cnt - si);
    Array.blit b si b (si + 1) (cnt - si);
    a.(si) <- ka;
    b.(si) <- kb;
    r.bc.(bi) <- cnt + 1;
    r.rn <- r.rn + 1
  end

(* Callers only ever remove entries previously inserted, so the lookup
   always lands on the exact pair. *)
let run_remove r ka kb =
  let c = run_first_geq r ka kb in
  let bi = cur_bi c and si = cur_si c in
  let a = r.ba.(bi) and b = r.bb.(bi) and cnt = r.bc.(bi) in
  Array.blit a (si + 1) a si (cnt - si - 1);
  Array.blit b (si + 1) b si (cnt - si - 1);
  r.bc.(bi) <- cnt - 1;
  r.rn <- r.rn - 1;
  if cnt = 1 then drop_block r bi
  else if
    (* Keep blocks from dwindling: fold a sparse block into its right
       neighbour when the union leaves slack against an immediate
       re-split. *)
    cnt - 1 < blk_quarter
    && bi + 1 < r.nb
    && cnt - 1 + r.bc.(bi + 1) <= blk_cap - blk_quarter
  then begin
    let nxt = r.bc.(bi + 1) in
    Array.blit r.ba.(bi + 1) 0 a (cnt - 1) nxt;
    Array.blit r.bb.(bi + 1) 0 b (cnt - 1) nxt;
    r.bc.(bi) <- cnt - 1 + nxt;
    drop_block r (bi + 1)
  end

(* First cursor at or after [c], before the exclusive bound [stop],
   whose entry satisfies [p a b]; -1 when none. *)
let run_scan r c stop p =
  let res = ref (-1) in
  let bi = ref (cur_bi c) and si = ref (cur_si c) in
  while !res < 0 && !bi < r.nb && cur !bi !si < stop do
    let a = r.ba.(!bi) and b = r.bb.(!bi) and cnt = r.bc.(!bi) in
    while !res < 0 && !si < cnt && cur !bi !si < stop do
      if p (Array.unsafe_get a !si) (Array.unsafe_get b !si) then res := cur !bi !si
      else incr si
    done;
    if !res < 0 then begin
      incr bi;
      si := 0
    end
  done;
  !res

type t = {
  by_off : run; (* (off, len) in offset order *)
  by_size : run; (* (len, off) in (length, offset) order *)
  mutable total : int;
  mutable aligned_2m : int; (* incremental Figure-3 census *)
}

let create () =
  { by_off = run_create (); by_size = run_create (); total = 0; aligned_2m = 0 }

(* Largest cursor with off <= x (lens are all below max_int), or -1. *)
let off_last_leq t x = run_last_leq t.by_off x max_int

(* Smallest cursor with off >= x, or the end cursor. *)
let off_first_geq t x = run_first_geq t.by_off x min_int

let add_extent t ~off ~len =
  run_insert t.by_off off len;
  run_insert t.by_size len off;
  t.total <- t.total + len;
  t.aligned_2m <- t.aligned_2m + aligned_in ~off ~len

let remove_extent t ~off ~len =
  run_remove t.by_off off len;
  run_remove t.by_size len off;
  t.total <- t.total - len;
  t.aligned_2m <- t.aligned_2m - aligned_in ~off ~len

let insert_free t ~off ~len =
  if len <= 0 then invalid_arg "Extent_tree.insert_free: non-positive length";
  if off < 0 then invalid_arg "Extent_tree.insert_free: negative offset";
  (* Overlap checks against both neighbours. *)
  let r = t.by_off in
  let p = off_last_leq t off in
  if p >= 0 && run_a r p + run_b r p > off then
    invalid_arg
      (Printf.sprintf "Extent_tree: double free, [%d,%d) overlaps [%d,%d)" off (off + len)
         (run_a r p)
         (run_a r p + run_b r p));
  let nx = off_first_geq t (off + 1) in
  if run_valid r nx && off + len > run_a r nx then
    invalid_arg
      (Printf.sprintf "Extent_tree: double free, [%d,%d) overlaps next extent at %d" off
         (off + len) (run_a r nx));
  (* Coalesce with the previous and next extents where adjacent. *)
  let off, len =
    if p >= 0 && run_a r p + run_b r p = off then begin
      let p_off = run_a r p and p_len = run_b r p in
      remove_extent t ~off:p_off ~len:p_len;
      (p_off, p_len + len)
    end
    else (off, len)
  in
  let len =
    let nx = off_first_geq t (off + 1) in
    if run_valid r nx && off + len = run_a r nx then begin
      let n_len = run_b r nx in
      remove_extent t ~off:(run_a r nx) ~len:n_len;
      len + n_len
    end
    else len
  in
  add_extent t ~off ~len

let take_front t ~ext_off ~ext_len ~len =
  remove_extent t ~off:ext_off ~len:ext_len;
  if ext_len > len then add_extent t ~off:(ext_off + len) ~len:(ext_len - len);
  ext_off

let alloc_first_fit t ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_first_fit";
  let r = t.by_off in
  let c = run_scan r (cur 0 0) max_int (fun _ l -> l >= len) in
  if c < 0 then None
  else begin
    let ext_off = run_a r c and ext_len = run_b r c in
    Some (take_front t ~ext_off ~ext_len ~len)
  end

let alloc_best_fit t ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_best_fit";
  let r = t.by_size in
  let c = run_first_geq r len 0 in
  if not (run_valid r c) then None
  else begin
    let ext_len = run_a r c and ext_off = run_b r c in
    Some (take_front t ~ext_off ~ext_len ~len)
  end

let alloc_near t ~goal ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_near";
  let r = t.by_off in
  (* The extent containing or straddling the goal first. *)
  let straddle =
    let p = off_last_leq t goal in
    if p >= 0 && run_a r p + run_b r p > goal && run_b r p >= len then begin
      let off = run_a r p and l = run_b r p in
      let avail_after = off + l - goal in
      if avail_after >= len then begin
        (* Carve from the goal point. *)
        remove_extent t ~off ~len:l;
        if goal > off then add_extent t ~off ~len:(goal - off);
        if avail_after > len then add_extent t ~off:(goal + len) ~len:(avail_after - len);
        Some goal
      end
      else Some (take_front t ~ext_off:off ~ext_len:l ~len)
    end
    else None
  in
  match straddle with
  | Some _ as res -> res
  | None ->
      (* First fit at or after the goal, then wrap to the start. *)
      let fits _ l = l >= len in
      let take c =
        let ext_off = run_a r c and ext_len = run_b r c in
        Some (take_front t ~ext_off ~ext_len ~len)
      in
      let from_goal = off_first_geq t goal in
      let c = run_scan r from_goal max_int fits in
      if c >= 0 then take c
      else begin
        let c = run_scan r (cur 0 0) from_goal fits in
        if c >= 0 then take c else None
      end

let carve t off l start len =
  remove_extent t ~off ~len:l;
  if start > off then add_extent t ~off ~len:(start - off);
  let tail = off + l - (start + len) in
  if tail > 0 then add_extent t ~off:(start + len) ~len:tail;
  Some start

let alloc_aligned t ~len ~align =
  if len <= 0 || align <= 0 then invalid_arg "Extent_tree.alloc_aligned";
  let r = t.by_off in
  let fits off l =
    let start = Repro_util.Units.round_up off align in
    start + len <= off + l
  in
  let c = run_scan r (cur 0 0) max_int fits in
  if c < 0 then None
  else begin
    let off = run_a r c and l = run_b r c in
    carve t off l (Repro_util.Units.round_up off align) len
  end

let alloc_aligned_near t ~goal ~window ~len ~align =
  if len <= 0 || align <= 0 || window <= 0 then invalid_arg "Extent_tree.alloc_aligned_near";
  let r = t.by_off in
  let stop = goal + window in
  (* Extent straddling the goal, then extents after it, within the window. *)
  let try_extent off l =
    let start = Repro_util.Units.round_up (max off goal) align in
    if start + len <= off + l then Some (off, l, start) else None
  in
  let first =
    let p = off_last_leq t goal in
    if p >= 0 && run_a r p + run_b r p > goal then try_extent (run_a r p) (run_b r p)
    else None
  in
  let walk () =
    (* The walk ends at the first extent starting at or past the window. *)
    let bound = off_first_geq t stop in
    let c =
      run_scan r (off_first_geq t goal) bound (fun off l ->
          match try_extent off l with Some _ -> true | None -> false)
    in
    if c < 0 then None else try_extent (run_a r c) (run_b r c)
  in
  match (match first with Some res -> Some res | None -> walk ()) with
  | Some (off, l, start) -> carve t off l start len
  | None -> None

let alloc_exact t ~off ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_exact";
  let r = t.by_off in
  let p = off_last_leq t off in
  if p >= 0 && off + len <= run_a r p + run_b r p then begin
    let e_off = run_a r p and e_len = run_b r p in
    remove_extent t ~off:e_off ~len:e_len;
    if off > e_off then add_extent t ~off:e_off ~len:(off - e_off);
    let tail = e_off + e_len - (off + len) in
    if tail > 0 then add_extent t ~off:(off + len) ~len:tail;
    true
  end
  else false

let extent_at t ~off =
  let r = t.by_off in
  let p = off_last_leq t off in
  if p >= 0 && off < run_a r p + run_b r p then Some (run_a r p, run_b r p) else None

let contains t ~off ~len =
  let r = t.by_off in
  let p = off_last_leq t off in
  p >= 0 && off + len <= run_a r p + run_b r p

let total_free t = t.total
let extent_count t = t.by_off.rn

let largest t =
  let r = t.by_size in
  if r.nb = 0 then 0 else r.ba.(r.nb - 1).(r.bc.(r.nb - 1) - 1)

let iter t f =
  let r = t.by_off in
  for bi = 0 to r.nb - 1 do
    let a = r.ba.(bi) and b = r.bb.(bi) in
    for si = 0 to r.bc.(bi) - 1 do
      f ~off:a.(si) ~len:b.(si)
    done
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ~off ~len -> acc := (off, len) :: !acc);
  List.rev !acc

let aligned_region_count t ~align =
  if align <= 0 then invalid_arg "Extent_tree.aligned_region_count";
  if align = huge then t.aligned_2m
  else begin
    let acc = ref 0 in
    iter t (fun ~off ~len ->
        let first = Repro_util.Units.round_up off align in
        let last = Repro_util.Units.round_down (off + len) align in
        acc := !acc + max 0 ((last - first) / align));
    !acc
  end

let check_invariants t =
  let exception Bad of string in
  try
    let check_run r name =
      if r.nb < 0 || r.nb > Array.length r.bc then raise (Bad (name ^ ": directory overflow"));
      if Array.length r.ba <> Array.length r.bc || Array.length r.bb <> Array.length r.bc
      then raise (Bad (name ^ ": directory capacity mismatch"));
      let sum = ref 0 in
      for bi = 0 to r.nb - 1 do
        let c = r.bc.(bi) in
        if c < 1 || c > blk_cap then raise (Bad (name ^ ": block count out of range"));
        if Array.length r.ba.(bi) <> blk_cap || Array.length r.bb.(bi) <> blk_cap then
          raise (Bad (name ^ ": block capacity mismatch"));
        sum := !sum + c
      done;
      if !sum <> r.rn then raise (Bad (name ^ ": entry count mismatch"))
    in
    check_run t.by_off "offset run";
    check_run t.by_size "size run";
    if t.by_off.rn <> t.by_size.rn then raise (Bad "run cardinality mismatch");
    let prev_end = ref (-1) in
    let sum = ref 0 and aligned = ref 0 in
    iter t (fun ~off ~len ->
        if len <= 0 then raise (Bad "non-positive extent length");
        if off < !prev_end then raise (Bad "overlapping extents");
        if off = !prev_end then raise (Bad "uncoalesced adjacent extents");
        prev_end := off + len;
        sum := !sum + len;
        aligned := !aligned + aligned_in ~off ~len;
        (* The size run must hold exactly this extent at its search slot. *)
        let c = run_first_geq t.by_size len off in
        if (not (run_valid t.by_size c)) || run_a t.by_size c <> len || run_b t.by_size c <> off
        then raise (Bad "size index missing entry"));
    let s = t.by_size in
    let prev_l = ref (-1) and prev_o = ref (-1) in
    for bi = 0 to s.nb - 1 do
      for si = 0 to s.bc.(bi) - 1 do
        let l = s.ba.(bi).(si) and o = s.bb.(bi).(si) in
        if l < !prev_l || (l = !prev_l && o <= !prev_o) then raise (Bad "size run out of order");
        prev_l := l;
        prev_o := o
      done
    done;
    if !sum <> t.total then raise (Bad "total mismatch");
    if !aligned <> t.aligned_2m then raise (Bad "aligned census mismatch");
    Ok ()
  with Bad m -> Error m
