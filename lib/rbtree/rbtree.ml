(* Functional red-black tree: Okasaki-style insertion, Kahrs-style deletion
   (the classic "untyped" SML/Haskell formulation), behind a mutable
   handle.  The deletion rebalancing (balleft/balright/app) follows Kahrs,
   "Red-black trees with types", JFP 2001. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type key
  type 'a t

  val create : unit -> 'a t
  val clear : 'a t -> unit
  val is_empty : 'a t -> bool
  val size : 'a t -> int
  val insert : 'a t -> key -> 'a -> unit
  val remove : 'a t -> key -> unit
  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool
  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option
  val find_first_geq : 'a t -> key -> (key * 'a) option
  val find_last_leq : 'a t -> key -> (key * 'a) option
  val iter : 'a t -> (key -> 'a -> unit) -> unit
  val fold : 'a t -> init:'b -> f:('b -> key -> 'a -> 'b) -> 'b
  val to_list : 'a t -> (key * 'a) list
  val check_invariants : 'a t -> (unit, string) result
end

module Make (Ord : ORDERED) : S with type key = Ord.t = struct
  type key = Ord.t

  type color = R | B

  type 'a node = E | T of color * 'a node * key * 'a * 'a node

  type 'a t = { mutable root : 'a node; mutable count : int }

  let create () = { root = E; count = 0 }

  let clear t =
    t.root <- E;
    t.count <- 0

  let is_empty t = match t.root with E -> true | T _ -> false
  let size t = t.count

  (* --- insertion --- *)

  let balance l k v r =
    match (l, k, v, r) with
    | T (R, a, xk, xv, b), yk, yv, T (R, c, zk, zv, d)
    | T (R, T (R, a, xk, xv, b), yk, yv, c), zk, zv, d
    | T (R, a, xk, xv, T (R, b, yk, yv, c)), zk, zv, d
    | a, xk, xv, T (R, b, yk, yv, T (R, c, zk, zv, d))
    | a, xk, xv, T (R, T (R, b, yk, yv, c), zk, zv, d) ->
        T (R, T (B, a, xk, xv, b), yk, yv, T (B, c, zk, zv, d))
    | _ -> T (B, l, k, v, r)

  exception Replaced

  let insert t k v =
    let rec ins = function
      | E -> T (R, E, k, v, E)
      | T (B, a, yk, yv, b) ->
          let c = Ord.compare k yk in
          if c < 0 then balance (ins a) yk yv b
          else if c > 0 then balance a yk yv (ins b)
          else raise_notrace Replaced
      | T (R, a, yk, yv, b) ->
          let c = Ord.compare k yk in
          if c < 0 then T (R, ins a, yk, yv, b)
          else if c > 0 then T (R, a, yk, yv, ins b)
          else raise_notrace Replaced
    in
    (* Replacement must not restructure; handle it with a direct rewrite. *)
    let rec replace = function
      | E -> E
      | T (col, a, yk, yv, b) ->
          let c = Ord.compare k yk in
          if c < 0 then T (col, replace a, yk, yv, b)
          else if c > 0 then T (col, a, yk, yv, replace b)
          else T (col, a, yk, v, b)
    in
    match ins t.root with
    | T (_, a, yk, yv, b) ->
        t.root <- T (B, a, yk, yv, b);
        t.count <- t.count + 1
    | E -> assert false
    | exception Replaced -> t.root <- replace t.root

  (* --- deletion (Kahrs) --- *)

  let sub1 = function
    | T (B, a, k, v, b) -> T (R, a, k, v, b)
    | _ -> assert false (* invariance violation *)

  let balleft l k v r =
    match (l, k, v, r) with
    | T (R, a, xk, xv, b), yk, yv, c -> T (R, T (B, a, xk, xv, b), yk, yv, c)
    | bl, xk, xv, T (B, a, yk, yv, b) -> balance bl xk xv (T (R, a, yk, yv, b))
    | bl, xk, xv, T (R, T (B, a, yk, yv, b), zk, zv, c) ->
        T (R, T (B, bl, xk, xv, a), yk, yv, balance b zk zv (sub1 c))
    | _ -> assert false

  let balright l k v r =
    match (l, k, v, r) with
    | a, xk, xv, T (R, b, yk, yv, c) -> T (R, a, xk, xv, T (B, b, yk, yv, c))
    | T (B, a, xk, xv, b), yk, yv, bl -> balance (T (R, a, xk, xv, b)) yk yv bl
    | T (R, a, xk, xv, T (B, b, yk, yv, c)), zk, zv, bl ->
        T (R, balance (sub1 a) xk xv b, yk, yv, T (B, c, zk, zv, bl))
    | _ -> assert false

  let rec app l r =
    match (l, r) with
    | E, x -> x
    | x, E -> x
    | T (R, a, xk, xv, b), T (R, c, yk, yv, d) -> (
        match app b c with
        | T (R, b', zk, zv, c') ->
            T (R, T (R, a, xk, xv, b'), zk, zv, T (R, c', yk, yv, d))
        | bc -> T (R, a, xk, xv, T (R, bc, yk, yv, d)))
    | T (B, a, xk, xv, b), T (B, c, yk, yv, d) -> (
        match app b c with
        | T (R, b', zk, zv, c') ->
            T (R, T (B, a, xk, xv, b'), zk, zv, T (B, c', yk, yv, d))
        | bc -> balleft a xk xv (T (B, bc, yk, yv, d)))
    | a, T (R, b, xk, xv, c) -> T (R, app a b, xk, xv, c)
    | T (R, a, xk, xv, b), c -> T (R, a, xk, xv, app b c)

  exception Absent

  let remove t k =
    let rec del = function
      | E -> raise_notrace Absent
      | T (_, a, yk, yv, b) ->
          let c = Ord.compare k yk in
          if c < 0 then del_from_left a yk yv b
          else if c > 0 then del_from_right a yk yv b
          else app a b
    and del_from_left a yk yv b =
      match a with
      | T (B, _, _, _, _) -> balleft (del a) yk yv b
      | _ -> T (R, del a, yk, yv, b)
    and del_from_right a yk yv b =
      match b with
      | T (B, _, _, _, _) -> balright a yk yv (del b)
      | _ -> T (R, a, yk, yv, del b)
    in
    match del t.root with
    | T (_, a, yk, yv, b) ->
        t.root <- T (B, a, yk, yv, b);
        t.count <- t.count - 1
    | E ->
        t.root <- E;
        t.count <- t.count - 1
    | exception Absent -> ()

  (* --- queries --- *)

  let find t k =
    let rec go = function
      | E -> None
      | T (_, a, yk, yv, b) ->
          let c = Ord.compare k yk in
          if c < 0 then go a else if c > 0 then go b else Some yv
    in
    go t.root

  let mem t k = Option.is_some (find t k)

  let min_binding t =
    let rec go = function
      | E -> None
      | T (_, E, k, v, _) -> Some (k, v)
      | T (_, a, _, _, _) -> go a
    in
    go t.root

  let max_binding t =
    let rec go = function
      | E -> None
      | T (_, _, k, v, E) -> Some (k, v)
      | T (_, _, _, _, b) -> go b
    in
    go t.root

  let find_first_geq t k =
    let rec go best = function
      | E -> best
      | T (_, a, yk, yv, b) ->
          let c = Ord.compare yk k in
          if c >= 0 then go (Some (yk, yv)) a else go best b
    in
    go None t.root

  let find_last_leq t k =
    let rec go best = function
      | E -> best
      | T (_, a, yk, yv, b) ->
          let c = Ord.compare yk k in
          if c <= 0 then go (Some (yk, yv)) b else go best a
    in
    go None t.root

  let iter t f =
    let rec go = function
      | E -> ()
      | T (_, a, k, v, b) ->
          go a;
          f k v;
          go b
    in
    go t.root

  let fold t ~init ~f =
    let acc = ref init in
    iter t (fun k v -> acc := f !acc k v);
    !acc

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let check_invariants t =
    let exception Bad of string in
    (* Returns black height; checks red-red and BST ordering. *)
    let rec go lo hi = function
      | E -> 1
      | T (col, a, k, _, b) ->
          (match lo with
          | Some l when Ord.compare k l <= 0 -> raise (Bad "BST order violated (left)")
          | _ -> ());
          (match hi with
          | Some h when Ord.compare k h >= 0 -> raise (Bad "BST order violated (right)")
          | _ -> ());
          (match (col, a, b) with
          | R, T (R, _, _, _, _), _ | R, _, T (R, _, _, _, _) ->
              raise (Bad "red node with red child")
          | _ -> ());
          let bh_l = go lo (Some k) a in
          let bh_r = go (Some k) hi b in
          if bh_l <> bh_r then raise (Bad "black height mismatch");
          bh_l + (match col with B -> 1 | R -> 0)
    in
    match go None None t.root with
    | _ ->
        let n = fold t ~init:0 ~f:(fun acc _ _ -> acc + 1) in
        if n <> t.count then Error (Printf.sprintf "size mismatch: %d vs %d" n t.count)
        else Ok ()
    | exception Bad msg -> Error msg
end

module Int_map = Make (struct
  type t = int

  let compare = Int.compare
end)

module String_map = Make (struct
  type t = string

  let compare = String.compare
end)
