module By_off = Rbtree.Int_map

module By_size = Rbtree.Make (struct
  type t = int * int (* length, offset *)

  let compare (l1, o1) (l2, o2) =
    match Int.compare l1 l2 with 0 -> Int.compare o1 o2 | c -> c
end)

type t = {
  by_off : int By_off.t; (* offset -> length *)
  by_size : unit By_size.t; (* (length, offset) set *)
  mutable total : int;
  mutable aligned_2m : int; (* incremental Figure-3 census *)
}

let huge = Repro_util.Units.huge_page

(* Aligned 2MB regions fully contained in one extent. *)
let aligned_in ~off ~len =
  let first = Repro_util.Units.round_up off huge in
  let last = Repro_util.Units.round_down (off + len) huge in
  max 0 ((last - first) / huge)

let create () =
  { by_off = By_off.create (); by_size = By_size.create (); total = 0; aligned_2m = 0 }

let add_extent t ~off ~len =
  By_off.insert t.by_off off len;
  By_size.insert t.by_size (len, off) ();
  t.total <- t.total + len;
  t.aligned_2m <- t.aligned_2m + aligned_in ~off ~len

let remove_extent t ~off ~len =
  By_off.remove t.by_off off;
  By_size.remove t.by_size (len, off);
  t.total <- t.total - len;
  t.aligned_2m <- t.aligned_2m - aligned_in ~off ~len

let insert_free t ~off ~len =
  if len <= 0 then invalid_arg "Extent_tree.insert_free: non-positive length";
  if off < 0 then invalid_arg "Extent_tree.insert_free: negative offset";
  (* Overlap checks against both neighbours. *)
  (match By_off.find_last_leq t.by_off off with
  | Some (p_off, p_len) when p_off + p_len > off ->
      invalid_arg
        (Printf.sprintf "Extent_tree: double free, [%d,%d) overlaps [%d,%d)" off
           (off + len) p_off (p_off + p_len))
  | _ -> ());
  (match By_off.find_first_geq t.by_off (off + 1) with
  | Some (n_off, _) when off + len > n_off ->
      invalid_arg
        (Printf.sprintf "Extent_tree: double free, [%d,%d) overlaps next extent at %d"
           off (off + len) n_off)
  | _ -> ());
  (* Coalesce with the previous and next extents where adjacent. *)
  let off, len =
    match By_off.find_last_leq t.by_off off with
    | Some (p_off, p_len) when p_off + p_len = off ->
        remove_extent t ~off:p_off ~len:p_len;
        (p_off, p_len + len)
    | _ -> (off, len)
  in
  let len =
    match By_off.find_first_geq t.by_off (off + 1) with
    | Some (n_off, n_len) when off + len = n_off ->
        remove_extent t ~off:n_off ~len:n_len;
        len + n_len
    | _ -> len
  in
  add_extent t ~off ~len

let take_front t ~ext_off ~ext_len ~len =
  remove_extent t ~off:ext_off ~len:ext_len;
  if ext_len > len then add_extent t ~off:(ext_off + len) ~len:(ext_len - len);
  ext_off

let alloc_first_fit t ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_first_fit";
  let exception Found of int * int in
  match
    By_off.iter t.by_off (fun off l -> if l >= len then raise_notrace (Found (off, l)))
  with
  | () -> None
  | exception Found (off, l) -> Some (take_front t ~ext_off:off ~ext_len:l ~len)

let alloc_best_fit t ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_best_fit";
  match By_size.find_first_geq t.by_size (len, 0) with
  | None -> None
  | Some ((l, off), ()) -> Some (take_front t ~ext_off:off ~ext_len:l ~len)

let alloc_near t ~goal ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_near";
  (* The extent containing or straddling the goal first. *)
  let try_at off l =
    if l >= len then Some (take_front t ~ext_off:off ~ext_len:l ~len) else None
  in
  let found = ref None in
  let exception Found in
  (try
     (* Walk extents starting at or after goal (plus the one straddling it). *)
     (match By_off.find_last_leq t.by_off goal with
     | Some (off, l) when off + l > goal && l >= len -> (
         (* Straddling extent: carve from the goal point if it fits, else front. *)
         let avail_after = off + l - goal in
         if avail_after >= len then begin
           remove_extent t ~off ~len:l;
           if goal > off then add_extent t ~off ~len:(goal - off);
           if avail_after > len then add_extent t ~off:(goal + len) ~len:(avail_after - len);
           found := Some goal;
           raise_notrace Found
         end
         else
           match try_at off l with
           | Some o ->
               found := Some o;
               raise_notrace Found
           | None -> ())
     | _ -> ());
     let rec walk key =
       match By_off.find_first_geq t.by_off key with
       | None -> ()
       | Some (off, l) -> (
           match try_at off l with
           | Some o ->
               found := Some o;
               raise_notrace Found
           | None -> walk (off + 1))
     in
     walk goal;
     walk 0 (* wrap around *)
   with Found -> ());
  !found

let alloc_aligned t ~len ~align =
  if len <= 0 || align <= 0 then invalid_arg "Extent_tree.alloc_aligned";
  let exception Found of int * int * int in
  match
    By_off.iter t.by_off (fun off l ->
        let start = Repro_util.Units.round_up off align in
        if start + len <= off + l then raise_notrace (Found (off, l, start)))
  with
  | () -> None
  | exception Found (off, l, start) ->
      remove_extent t ~off ~len:l;
      if start > off then add_extent t ~off ~len:(start - off);
      let tail = off + l - (start + len) in
      if tail > 0 then add_extent t ~off:(start + len) ~len:tail;
      Some start

let alloc_aligned_near t ~goal ~window ~len ~align =
  if len <= 0 || align <= 0 || window <= 0 then invalid_arg "Extent_tree.alloc_aligned_near";
  let stop = goal + window in
  let carve off l start =
    remove_extent t ~off ~len:l;
    if start > off then add_extent t ~off ~len:(start - off);
    let tail = off + l - (start + len) in
    if tail > 0 then add_extent t ~off:(start + len) ~len:tail;
    Some start
  in
  (* Extent straddling the goal, then extents after it, within the window. *)
  let try_extent off l =
    let start = Repro_util.Units.round_up (max off goal) align in
    if start + len <= off + l then Some (off, l, start) else None
  in
  let first =
    match By_off.find_last_leq t.by_off goal with
    | Some (off, l) when off + l > goal -> try_extent off l
    | _ -> None
  in
  let rec walk key =
    if key >= stop then None
    else
      match By_off.find_first_geq t.by_off key with
      | Some (off, l) when off < stop -> (
          match try_extent off l with Some r -> Some r | None -> walk (off + 1))
      | _ -> None
  in
  match (match first with Some r -> Some r | None -> walk goal) with
  | Some (off, l, start) -> carve off l start
  | None -> None

let alloc_exact t ~off ~len =
  if len <= 0 then invalid_arg "Extent_tree.alloc_exact";
  match By_off.find_last_leq t.by_off off with
  | Some (e_off, e_len) when e_off <= off && off + len <= e_off + e_len ->
      remove_extent t ~off:e_off ~len:e_len;
      if off > e_off then add_extent t ~off:e_off ~len:(off - e_off);
      let tail = e_off + e_len - (off + len) in
      if tail > 0 then add_extent t ~off:(off + len) ~len:tail;
      true
  | _ -> false

let extent_at t ~off =
  match By_off.find_last_leq t.by_off off with
  | Some (e_off, e_len) when e_off <= off && off < e_off + e_len -> Some (e_off, e_len)
  | _ -> None

let contains t ~off ~len =
  match By_off.find_last_leq t.by_off off with
  | Some (e_off, e_len) -> e_off <= off && off + len <= e_off + e_len
  | None -> false

let total_free t = t.total
let extent_count t = By_off.size t.by_off

let largest t =
  match By_size.max_binding t.by_size with Some ((l, _), ()) -> l | None -> 0

let iter t f = By_off.iter t.by_off (fun off len -> f ~off ~len)

let to_list t = By_off.to_list t.by_off

let aligned_region_count t ~align =
  if align <= 0 then invalid_arg "Extent_tree.aligned_region_count";
  if align = huge then t.aligned_2m
  else
    By_off.fold t.by_off ~init:0 ~f:(fun acc off len ->
        let first = Repro_util.Units.round_up off align in
        let last = Repro_util.Units.round_down (off + len) align in
        acc + max 0 ((last - first) / align))

let check_invariants t =
  match By_off.check_invariants t.by_off with
  | Error _ as e -> e
  | Ok () -> (
      match By_size.check_invariants t.by_size with
      | Error _ as e -> e
      | Ok () ->
          (* Extents disjoint, non-adjacent (fully coalesced), totals agree,
             and the two indexes are consistent. *)
          let exception Bad of string in
          let prev_end = ref (-1) in
          let sum = ref 0 in
          (try
             By_off.iter t.by_off (fun off len ->
                 if len <= 0 then raise (Bad "non-positive extent length");
                 if off < !prev_end then raise (Bad "overlapping extents");
                 if off = !prev_end then raise (Bad "uncoalesced adjacent extents");
                 if not (By_size.mem t.by_size (len, off)) then
                   raise (Bad "size index missing entry");
                 prev_end := off + len;
                 sum := !sum + len);
             if !sum <> t.total then raise (Bad "total mismatch");
             let want_aligned =
               By_off.fold t.by_off ~init:0 ~f:(fun acc off len -> acc + aligned_in ~off ~len)
             in
             if want_aligned <> t.aligned_2m then raise (Bad "aligned census mismatch");
             if By_size.size t.by_size <> By_off.size t.by_off then
               raise (Bad "index size mismatch");
             Ok ()
           with Bad m -> Error m))
