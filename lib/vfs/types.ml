type errno =
  | ENOENT
  | EEXIST
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | ENAMETOOLONG
  | EIO
  | EROFS

exception Error of errno * string

let errno_to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOSPC -> "ENOSPC"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EIO -> "EIO"
  | EROFS -> "EROFS"

let err e fmt = Format.kasprintf (fun msg -> raise (Error (e, msg))) fmt

type file_kind = Regular | Directory

let is_dir = function Directory -> true | Regular -> false
let is_regular = function Regular -> true | Directory -> false

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_blocks : int;
  st_nlink : int;
}

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let o_rdonly = { rd = true; wr = false; creat = false; excl = false; trunc = false; append = false }
let o_rdwr = { o_rdonly with wr = true }
let o_creat_rdwr = { o_rdwr with creat = true }
let o_append = { o_creat_rdwr with append = true }

type mode = Strict | Relaxed

let is_strict = function Strict -> true | Relaxed -> false

type config = { cpus : int; mode : mode; numa_nodes : int; inodes_per_cpu : int }

let default_config = { cpus = 4; mode = Strict; numa_nodes = 1; inodes_per_cpu = 16384 }

let config ?(cpus = 4) ?(mode = Strict) ?(numa_nodes = 1) ?(inodes_per_cpu = 16384) () =
  if cpus <= 0 then invalid_arg "Types.config: non-positive cpus";
  { cpus; mode; numa_nodes; inodes_per_cpu }

type fs_stats = {
  capacity : int;
  used : int;
  free : int;
  free_extents : int;
  largest_free : int;
  aligned_free_2m : int;
}

let utilization s =
  if s.capacity = 0 then 0. else float_of_int s.used /. float_of_int s.capacity
