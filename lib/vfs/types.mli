(** Shared file-system types: errors, stat, open flags, mount config.

    Every file system in the reproduction (WineFS and the six baselines)
    speaks these types through {!Fs_intf.S}. *)

type errno =
  | ENOENT
  | EEXIST
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | ENAMETOOLONG
  | EIO  (** uncorrectable media error reached by an operation *)
  | EROFS  (** mutation refused on a read-only (degraded) mount *)

exception Error of errno * string
(** All file-system failures. *)

val err : errno -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [err e fmt ...] raises {!Error} with a formatted message. *)

val errno_to_string : errno -> string

type file_kind = Regular | Directory

val is_dir : file_kind -> bool
val is_regular : file_kind -> bool
(** Monomorphic kind tests: the namespace and open paths test the kind
    on every lookup, where polymorphic [=] would cost an indirect call
    per comparison. *)

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_blocks : int;  (** bytes of PM allocated to the file *)
  st_nlink : int;
}

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

val o_rdonly : open_flags
val o_rdwr : open_flags
val o_creat_rdwr : open_flags
val o_append : open_flags

(** Consistency mode (§3.3): [Strict] makes data and metadata operations
    atomic and synchronous (NOVA/Strata class); [Relaxed] guarantees only
    metadata atomicity (ext4-DAX/xfs-DAX/PMFS class). *)
type mode = Strict | Relaxed

val is_strict : mode -> bool

type config = {
  cpus : int;  (** logical CPUs: number of per-CPU pools/journals *)
  mode : mode;
  numa_nodes : int;
  inodes_per_cpu : int;
}

val default_config : config
val config : ?cpus:int -> ?mode:mode -> ?numa_nodes:int -> ?inodes_per_cpu:int -> unit -> config

(** Free-space summary used by the aging experiments (Figure 3). *)
type fs_stats = {
  capacity : int;  (** data-area bytes *)
  used : int;
  free : int;
  free_extents : int;
  largest_free : int;
  aligned_free_2m : int;  (** free 2MB-aligned 2MB regions (hugepage supply) *)
}

val utilization : fs_stats -> float
