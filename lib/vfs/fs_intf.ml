(** The file-system interface every implementation exposes.

    WineFS ({!Winefs.Fs}) and the six baseline models all implement
    {!S}; the aging framework, crash checker, application workloads and
    benchmark experiments are written once against it.  Operations take
    the calling {!Repro_util.Cpu.t}: the CPU id selects per-CPU structures
    (journals, pools) and its clock absorbs the simulated cost.

    Failure is the {!Types.Error} exception (POSIX-style errnos). *)

open Repro_util

type fd = int

module type S = sig
  type t

  val name : string

  (** {2 Lifecycle} *)

  val format : Repro_pmem.Device.t -> Types.config -> t
  (** mkfs + mount: write a fresh file system and return a live handle. *)

  val mount : Repro_pmem.Device.t -> Types.config -> t
  (** Mount an existing image.  After a crash this performs recovery
      (journal rollback/replay, index rebuild) and charges its simulated
      cost to an internal CPU; {!recovery_ns} reports it. *)

  val unmount : t -> Cpu.t -> unit
  (** Clean unmount: persist DRAM state (free lists etc.). *)

  val recovery_ns : t -> int
  (** Simulated nanoseconds the last {!mount} spent in recovery. *)

  val device : t -> Repro_pmem.Device.t
  val config : t -> Types.config

  (** {2 Namespace} *)

  val mkdir : t -> Cpu.t -> string -> unit
  val rmdir : t -> Cpu.t -> string -> unit
  val create : t -> Cpu.t -> string -> fd
  (** Create-exclusive and open read-write. *)

  val openf : t -> Cpu.t -> string -> Types.open_flags -> fd
  val close : t -> Cpu.t -> fd -> unit
  val unlink : t -> Cpu.t -> string -> unit
  val rename : t -> Cpu.t -> old_path:string -> new_path:string -> unit
  val readdir : t -> Cpu.t -> string -> string list
  val stat : t -> Cpu.t -> string -> Types.stat
  val exists : t -> Cpu.t -> string -> bool

  (** {2 Data} *)

  val pwrite : t -> Cpu.t -> fd -> off:int -> src:string -> int

  val pwrite_sub : t -> Cpu.t -> fd -> off:int -> src:string -> src_off:int -> len:int -> int
  (** [pwrite] of the substring [src.[src_off .. src_off+len)], without
      materialising it: the bytes are blitted straight from [src] to the
      device.  Bulk writers (aging churn, benchmark streams) reuse one
      large buffer across calls instead of allocating a copy per write —
      the copy itself was measurable, and the multi-megabyte temporaries
      land in the major heap and dominate GC time.  EINVAL outside
      [src]'s bounds. *)

  val pread : t -> Cpu.t -> fd -> off:int -> len:int -> string
  (** Holes read as zeros; reads past EOF are truncated. *)

  val append : t -> Cpu.t -> fd -> src:string -> int
  val fsync : t -> Cpu.t -> fd -> unit
  val fallocate : t -> Cpu.t -> fd -> off:int -> len:int -> unit
  (** Preallocate backing for the range and extend the size. *)

  val ftruncate : t -> Cpu.t -> fd -> int -> unit
  val file_size : t -> fd -> int

  (** {2 Memory mapping} *)

  val mmap_backing : t -> fd -> Repro_memsim.Vmem.backing
  (** Fault handler for a mapping of this file; encapsulates the file
      system's hugepage policy (§2.2, §3.6). *)

  val set_xattr_align : t -> Cpu.t -> string -> bool -> unit
  (** WineFS's alignment-preserving extended attribute (§3.6); other file
      systems accept and ignore it. *)

  (** {2 Introspection (no simulated cost)} *)

  val statfs : t -> Types.fs_stats
  val file_extents : t -> Cpu.t -> string -> (int * int * int) list
  (** [(file_off, phys, len)]. *)

  val counters : t -> Counters.t
end

(** Existential package so experiment code can hold a heterogeneous list of
    mounted file systems. *)
type handle = Handle : (module S with type t = 'a) * 'a -> handle

let handle_name (Handle ((module F), _)) = F.name

(** Shared software-path cost constants (ns).  §2.1: system calls pay for
    trapping into the kernel and VFS layers — the reason mmap access is up
    to 2x faster. *)
module Cost = struct
  let syscall_ns = 350 (* trap + return *)
  let vfs_ns = 150 (* VFS dispatch, fd lookup, permission checks *)

  let charge_syscall (cpu : Cpu.t) = Simclock.advance cpu.clock (syscall_ns + vfs_ns)
end
