(** Read-only-degradation guards shared by every file system in the study.

    A mount that detects unrepairable corruption degrades to read-only:
    mutating operations must fail with [EROFS] (with one canonical message
    format, so tests and tools can match it), and every detection /
    repair / refusal observed by a scrub or a read path is counted under
    the caller's [fault.*] counters and mirrored into the global stats
    registry.  WineFS uses both today; baselines that later grow fault
    handling reuse this one implementation. *)

val require_writable : read_only:bool -> unit
(** Raise [Types.Error (EROFS, _)] when [read_only] — the single EROFS
    message format for degraded mounts. *)

val count_fault : Repro_util.Counters.t -> string -> int -> unit
(** Add [n] to the named [fault.*] counter (no-op when [n <= 0]) and
    mirror it into {!Repro_stats.Stats} when the registry is enabled. *)
