module Stats = Repro_stats.Stats
module Counters = Repro_util.Counters

let require_writable ~read_only =
  if read_only then
    Types.err EROFS "file system is degraded (mounted read-only after media errors)"

let count_fault counters name n =
  if n > 0 then begin
    Counters.add counters name n;
    if Stats.enabled () then Stats.counter_add name n
  end
