(** §4's defragmentation-interference experiment: the paper reads a
    fragmented file and rewrites it with aligned extents while a
    foreground workload performs memory-mapped reads of another file,
    observing a 25–40% foreground slowdown — the argument for WineFS's
    proactive (allocation-time) approach over reactive defragmentation.

    The two activities share PM bandwidth; the fair-share model
    interleaves defragmentation copy slices with the foreground's read
    slices on the simulated timeline. *)

open Repro_util
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module Fs_intf = Repro_vfs.Fs_intf
module Vmem = Repro_memsim.Vmem

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  (* This experiment drives WineFS's rewriter directly, so it uses the
     concrete module rather than a handle. *)
  let module F = Winefs.Fs in
  let dev = Repro_pmem.Device.create ~size:setup.Exp_common.device_bytes () in
  let fs = F.format dev (Exp_common.cfg setup) in
  let cpu = Cpu.make ~id:0 () in
  (* Foreground file, mapped and pre-faulted. *)
  let fg_bytes = 24 * Units.mib * scale in
  let fg = F.create fs cpu "/fg" in
  F.fallocate fs cpu fg ~off:0 ~len:fg_bytes;
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:fg_bytes ~backing:(F.mmap_backing fs fg) () in
  Vmem.prefault vm cpu region;
  (* A fragmented victim file for the defragmenter. *)
  let victim_bytes = 8 * Units.mib * scale in
  let v1 = F.create fs cpu "/victim" in
  let v2 = F.create fs cpu "/filler" in
  let chunk = String.make Units.base_page 'x' in
  for _ = 1 to victim_bytes / Units.base_page do
    ignore (F.append fs cpu v1 ~src:chunk);
    ignore (F.append fs cpu v2 ~src:chunk)
  done;
  F.close fs cpu v1;
  F.close fs cpu v2;
  let rng = Rng.create 3 in
  let read_slice () =
    for _ = 1 to 64 do
      Vmem.read vm cpu region ~off:(Rng.int rng (fg_bytes / 4096) * 4096) ~len:4096
    done
  in
  (* Baseline: foreground alone. *)
  let slices = 200 * scale in
  let t0 = Cpu.now cpu in
  for _ = 1 to slices do
    read_slice ()
  done;
  let alone_ns = Cpu.now cpu - t0 in
  (* With defragmentation: interleave rewriter copy slices fairly. *)
  (match F.openf fs cpu "/victim" Types.o_rdwr with
  | fd ->
      let r = Vmem.mmap vm ~len:victim_bytes ~backing:(F.mmap_backing fs fd) () in
      Vmem.prefault vm cpu r;
      Vmem.munmap vm r;
      F.close fs cpu fd
  | exception Types.Error (ENOENT, _) -> ());
  let t1 = Cpu.now cpu in
  (* The defragmenter's reads+writes steal PM bandwidth mid-run: its copy
     traffic lands inline on the shared timeline. *)
  for _ = 1 to slices / 2 do
    read_slice ()
  done;
  ignore (F.run_rewriter fs cpu);
  for _ = 1 to slices - (slices / 2) do
    read_slice ()
  done;
  let contended_ns = Cpu.now cpu - t1 in
  let slowdown = 100. *. (float_of_int contended_ns /. float_of_int alone_ns -. 1.) in
  let t =
    Table.create ~title:"Sec 4: foreground mmap-read slowdown during defragmentation"
      ~columns:[ "run"; "elapsed-ms"; "slowdown-%" ]
  in
  Table.add_row t [ "foreground alone"; Printf.sprintf "%.2f" (float_of_int alone_ns /. 1e6); "0" ];
  Table.add_row t
    [
      "foreground + defrag";
      Printf.sprintf "%.2f" (float_of_int contended_ns /. 1e6);
      Printf.sprintf "%.1f" slowdown;
    ];
  [ t ]
