(** Ablations: isolate each WineFS design choice the paper argues for.

    A. Hugepages themselves (§2.2/§2.4): the same aged WineFS instance,
       with the mapping allowed vs forbidden to use hugepages — everything
       else identical.
    B. Hybrid data atomicity (§3.4): atomic 64KB overwrites against an
       aligned-extent-backed file (data-journaling side) vs a hole-backed
       file (copy-on-write side).
    C. Per-CPU journals (§3.4): the Figure-10 workload on WineFS built
       with 1, 2, 4, 8 journals (cpus=1 is the PMFS-style single-journal
       configuration).
    D. NUMA-aware placement (§3.6): streaming writes with allocations
       routed by the home-node policy vs deliberately remote. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module Vmem = Repro_memsim.Vmem
module W = Repro_workloads.Micro
module Fs = Winefs.Fs
module Site = Repro_pmem.Site

(* Durability-lint sites for the benchmark drivers' own PM traffic. *)
let site_mmap_flush = Site.v "ablation" "mmap_flush"
let site_numa_stream = Site.v "ablation" "numa_stream"

(* A: hugepages on/off over the same aged file system. *)
let huge_onoff setup =
  let t =
    Table.create ~title:"Ablation A: aged WineFS, hugepages allowed vs forbidden"
      ~columns:[ "mapping"; "mmap seq-write MB/s"; "page-faults" ]
  in
  let (Repro_vfs.Fs_intf.Handle ((module F), fs)) =
    fst (Exp_common.aged setup Registry.winefs ~target_util:0.6)
  in
  let cpu = Cpu.make ~id:0 () in
  let file_bytes = 32 * Units.mib * setup.Exp_common.scale in
  let fd = F.create fs cpu "/abl-a" in
  F.fallocate fs cpu fd ~off:0 ~len:file_bytes;
  List.iter
    (fun (label, huge_ok) ->
      let vm = Vmem.create (F.device fs) in
      let region = Vmem.mmap vm ~len:file_bytes ~backing:(F.mmap_backing fs fd) ~huge_ok () in
      let c = Cpu.make ~id:0 () in
      let payload = String.make Units.huge_page 'a' in
      let t0 = Cpu.now c in
      for i = 0 to (file_bytes / Units.huge_page) - 1 do
        Vmem.write vm c region ~off:(i * Units.huge_page) ~src:payload
      done;
      Device.with_site (F.device fs) site_mmap_flush (fun () -> Device.fence (F.device fs) c);
      let ns = Cpu.now c - t0 in
      Table.add_row t
        [
          label;
          Printf.sprintf "%.1f" (Exp_common.mb_per_s ~bytes:file_bytes ~ns);
          string_of_int (Counters.get (Vmem.counters vm) "mm.page_faults");
        ];
      Vmem.munmap vm region)
    [ ("hugepages", true); ("base pages only", false) ];
  t

(* B: data-journaling vs CoW overwrite cost. *)
let hybrid_atomicity setup =
  let t =
    Table.create
      ~title:"Ablation B: atomic 64KB overwrites — data journaling (aligned) vs CoW (holes)"
      ~columns:[ "backing"; "MB/s"; "journal-bytes"; "cow-bytes" ]
  in
  let run label prepare =
    let dev = Device.create ~size:setup.Exp_common.device_bytes () in
    let fs = Fs.format dev (Exp_common.cfg setup) in
    let cpu = Cpu.make ~id:0 () in
    let fd = prepare fs cpu in
    let payload = String.make (64 * Units.kib) 'o' in
    let io = 16 * Units.mib * setup.Exp_common.scale in
    let spots = Fs.file_size fs fd / String.length payload in
    let rng = Rng.create 5 in
    let t0 = Cpu.now cpu in
    for _ = 1 to io / String.length payload do
      ignore
        (Fs.pwrite fs cpu fd ~off:(Rng.int rng spots * String.length payload) ~src:payload)
    done;
    let ns = Cpu.now cpu - t0 in
    let c = Fs.counters fs in
    Table.add_row t
      [
        label;
        Printf.sprintf "%.1f" (Exp_common.mb_per_s ~bytes:io ~ns);
        string_of_int (Counters.get c "fs.data_journal_bytes");
        string_of_int (Counters.get c "fs.cow_bytes");
      ]
  in
  run "aligned extents (journal)" (fun fs cpu ->
      let fd = Fs.create fs cpu "/aligned" in
      Fs.fallocate fs cpu fd ~off:0 ~len:(16 * Units.mib);
      fd);
  run "holes (copy-on-write)" (fun fs cpu ->
      let fd = Fs.create fs cpu "/holey" in
      (* Small interleaved appends land on sub-2MB hole extents. *)
      let fd2 = Fs.create fs cpu "/interleave" in
      let chunk = String.make (64 * Units.kib) 'h' in
      for _ = 1 to 16 * Units.mib / (64 * Units.kib) do
        ignore (Fs.append fs cpu fd ~src:chunk);
        ignore (Fs.append fs cpu fd2 ~src:chunk)
      done;
      Fs.close fs cpu fd2;
      fd);
  t

(* C: journal-count sweep on the scalability workload. *)
let journal_sweep setup =
  let t =
    Table.create ~title:"Ablation C: WineFS per-CPU journal count (16-thread Fig-10 workload)"
      ~columns:[ "journals"; "kops/s"; "lock-wait-ms" ]
  in
  List.iter
    (fun cpus ->
      let make () =
        let dev = Device.create ~size:setup.Exp_common.device_bytes () in
        Registry.winefs.make dev (Types.config ~cpus ~inodes_per_cpu:8192 ())
      in
      let p =
        W.scalability make ~threads:16 ~files_per_thread:(4 * setup.Exp_common.scale)
          ~appends_per_file:(16 * setup.Exp_common.scale)
      in
      Table.add_row t
        [
          string_of_int cpus;
          Printf.sprintf "%.1f" p.kops_per_s;
          Printf.sprintf "%.2f" (float_of_int p.lock_wait_ns /. 1e6);
        ])
    [ 1; 2; 4; 8; 16 ];
  t

(* D: NUMA placement: local (policy-routed) vs remote writes. *)
let numa setup =
  let t =
    Table.create ~title:"Ablation D: NUMA write placement (2 nodes)"
      ~columns:[ "placement"; "MB/s" ]
  in
  let dev = Device.create ~numa_nodes:2 ~size:setup.Exp_common.device_bytes () in
  let bytes = 32 * Units.mib * setup.Exp_common.scale in
  let payload = Bytes.make (64 * Units.kib) 'n' in
  let stripe = Device.size dev / 2 in
  let bench ~node ~base =
    let cpu = Cpu.make ~id:0 ~node () in
    let t0 = Cpu.now cpu in
    Device.with_site dev site_numa_stream (fun () ->
        for i = 0 to (bytes / Bytes.length payload) - 1 do
          Device.write_nt dev cpu
            ~off:(base + (i * Bytes.length payload))
            ~src:payload ~src_off:0 ~len:(Bytes.length payload)
        done;
        Device.fence dev cpu);
    Exp_common.mb_per_s ~bytes ~ns:(Cpu.now cpu - t0)
  in
  (* The policy homes the writer on its own node; the ablation forces the
     allocation to the other node's stripe. *)
  let policy = Winefs.Numa_policy.create ~nodes:2 ~node_free:(fun n -> if n = 0 then 2 else 1) in
  let home = Winefs.Numa_policy.home policy ~pid:1 in
  Table.add_float_row t "home-node writes (policy)" [ bench ~node:home ~base:(home * stripe) ];
  Table.add_float_row t "remote-node writes" [ bench ~node:home ~base:((1 - home) * stripe) ];
  t

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  [ huge_onoff setup; hybrid_atomicity setup; journal_sweep setup; numa setup ]
