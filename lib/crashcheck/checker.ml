open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Fs = Winefs.Fs

type result = {
  workloads_run : int;
  crash_points : int;
  states_checked : int;
  failures : (string * string) list;
}

(* FNV-1a over the content: the signature only needs a deterministic
   digest — the runtime's polymorphic hash is an implementation detail,
   and Crc32c is owned by the metadata layers. *)
let content_digest s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x7FFFFFFF) s;
  !h

(* Canonical tree signature: sorted (path kind size digest) lines.  In
   relaxed mode data content is not guaranteed, so digests are elided. *)
let signature ?(with_content = true) (Fs_intf.Handle ((module F), fs)) cpu =
  let buf = Buffer.create 256 in
  let rec walk path =
    let entries = List.sort compare (F.readdir fs cpu path) in
    List.iter
      (fun name ->
        let child = Repro_vfs.Path.concat path name in
        let st = F.stat fs cpu child in
        (match st.Types.st_kind with
        | Types.Directory ->
            Buffer.add_string buf (Printf.sprintf "%s dir\n" child);
            walk child
        | Types.Regular ->
            let digest =
              if with_content then begin
                let fd = F.openf fs cpu child Types.o_rdonly in
                let content = F.pread fs cpu fd ~off:0 ~len:st.st_size in
                F.close fs cpu fd;
                content_digest content
              end
              else 0
            in
            Buffer.add_string buf
              (Printf.sprintf "%s file size=%d digest=%d\n" child st.st_size digest)))
      entries
  in
  walk "/";
  Buffer.contents buf

let signature_of h cpu = signature ~with_content:true h cpu

(* Enumerate persisted-subset predicates over [lines]. *)
let subsets ?(max_random = 24) rng lines =
  let n = List.length lines in
  let arr = Array.of_list lines in
  if n = 0 then [ (fun _ -> false) ]
  else if n <= 6 then
    List.init (1 lsl n) (fun mask line ->
        let rec idx i = if arr.(i) = line then i else idx (i + 1) in
        match idx 0 with
        | i -> mask land (1 lsl i) <> 0
        | exception Invalid_argument _ -> false)
  else begin
    let fixed =
      [ (fun _ -> false); (fun _ -> true) ]
      @ List.init (min n 8) (fun i line -> line <> arr.(i)) (* one line lost *)
      @ List.init (min n 8) (fun i line -> line = arr.(i)) (* only one line survives *)
    in
    let random =
      List.init max_random (fun _ ->
          let keep = Hashtbl.create 8 in
          Array.iter (fun l -> if Rng.bool rng then Hashtbl.replace keep l ()) arr;
          fun line -> Hashtbl.mem keep line)
    in
    fixed @ random
  end

let mk_cfg () = Types.config ~cpus:2 ~inodes_per_cpu:256 ()

let fresh_fs ~device_size =
  let dev = Device.create ~cost:Device.Cost.free ~size:device_size () in
  let cfg = mk_cfg () in
  let fs = Fs.format dev cfg in
  (dev, cfg, fs)

let handle fs = Fs_intf.Handle ((module Fs : Fs_intf.S with type t = Fs.t), fs)

let run ?(mode = Types.Strict) ?(workloads = Ace.all) ?(max_random_subsets = 24)
    ?(device_size = 48 * Units.mib) () =
  let with_content = mode = Types.Strict in
  let rng = Rng.create 0xC4A54 in
  let cpu = Cpu.make ~id:0 () in
  let crash_points = ref 0 and states = ref 0 in
  let failures = ref [] in
  let run_workload (w : Ace.workload) =
    (* Reference run: expected signatures after setup and after each op. *)
    let _, _, ref_fs = fresh_fs ~device_size in
    List.iter (Ace.apply (handle ref_fs) cpu) w.setup;
    let expected = ref [ signature ~with_content (handle ref_fs) cpu ] in
    List.iter
      (fun op ->
        Ace.apply (handle ref_fs) cpu op;
        expected := signature ~with_content (handle ref_fs) cpu :: !expected)
      w.test;
    let expected = Array.of_list (List.rev !expected) in
    (* Crash exploration: inject at each successive fence. *)
    let fence_n = ref 1 in
    let exploring = ref true in
    while !exploring do
      let dev, cfg, fs = fresh_fs ~device_size in
      List.iter (Ace.apply (handle fs) cpu) w.setup;
      Device.set_tracking dev true;
      Device.reset_fence_seq dev;
      let target = !fence_n in
      let captured = ref None in
      Device.set_fence_hook dev
        (Some
           (fun seq ->
             if seq = target && !captured = None then begin
               captured := Some (Device.pending_lines dev);
               Device.set_fence_hook dev None;
               raise Exit
             end));
      let op_index = ref 0 in
      let crashed = ref false in
      (try
         List.iter
           (fun op ->
             Ace.apply (handle fs) cpu op;
             incr op_index)
           w.test
       with Exit -> crashed := true);
      Device.set_fence_hook dev None;
      if not !crashed then exploring := false
      else begin
        incr crash_points;
        let pending = Option.value ~default:[] !captured in
        let before = expected.(!op_index) and after = expected.(!op_index + 1) in
        List.iter
          (fun persisted ->
            incr states;
            let img = Device.crash_image dev ~persisted in
            match Fs.mount img cfg with
            | exception e ->
                failures :=
                  ( w.w_name,
                    Printf.sprintf "fence %d: recovery failed: %s" target
                      (Printexc.to_string e) )
                  :: !failures
            | fs2 -> (
                match signature ~with_content (handle fs2) cpu with
                | s when s = before || s = after -> ()
                | s ->
                    failures :=
                      ( w.w_name,
                        Printf.sprintf
                          "fence %d: recovered state matches neither side of op %d:\n%s"
                          target !op_index s )
                      :: !failures
                | exception e ->
                    failures :=
                      ( w.w_name,
                        Printf.sprintf "fence %d: post-recovery walk failed: %s" target
                          (Printexc.to_string e) )
                      :: !failures))
          (subsets ~max_random:max_random_subsets rng pending);
        incr fence_n
      end
    done
  in
  List.iter run_workload workloads;
  {
    workloads_run = List.length workloads;
    crash_points = !crash_points;
    states_checked = !states;
    failures = List.rev !failures;
  }

let recovery_time ~files ~file_bytes =
  let size = max (64 * Units.mib) (files * file_bytes * 2) in
  let dev = Device.create ~size () in
  let cfg = Types.config ~cpus:4 ~inodes_per_cpu:(max 256 (2 * files / 4)) () in
  let fs = Fs.format dev cfg in
  let cpu = Cpu.make ~id:0 () in
  let payload = String.make file_bytes 'r' in
  for i = 1 to files do
    let fd = Fs.create fs cpu (Printf.sprintf "/f%d" i) in
    ignore (Fs.pwrite fs cpu fd ~off:0 ~src:payload);
    Fs.close fs cpu fd
  done;
  (* Crash: no unmount.  Mount performs journal recovery plus the full
     inode-table scan and allocator rebuild. *)
  let fs2 = Fs.mount dev cfg in
  (Fs.recovery_ns fs2, files)
