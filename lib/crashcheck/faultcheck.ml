(* Media-fault campaign: plant bit flips, torn words and poisoned lines in
   WineFS images, remount (or crash-and-remount), and verify every fault
   is either repaired from a redundant copy or safely refused — never
   silently absorbed into a wrong answer.  Fully seeded: the same seed
   replays the same campaign. *)

open Repro_util
module Device = Repro_pmem.Device
module Fault = Repro_pmem.Fault
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Fs = Winefs.Fs
module Layout = Winefs.Layout
module Codec = Winefs.Codec

type finding = {
  f_workload : string;
  f_scenario : string;
  f_fault : string;
  f_diagnosis : string;
}

type report = {
  seed : int;
  scenarios_run : int;
  faults_planted : int;
  repaired : int;
  refused : int;
  findings : finding list;
}

let handle fs = Fs_intf.Handle ((module Fs : Fs_intf.S with type t = Fs.t), fs)

let fresh ~device_size =
  let dev = Device.create ~cost:Device.Cost.free ~size:device_size () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:256 () in
  let fs = Fs.format dev cfg in
  (dev, cfg, fs)

let rec collect_files fs cpu path acc =
  List.fold_left
    (fun acc name ->
      let child = Repro_vfs.Path.concat path name in
      let st = Fs.stat fs cpu child in
      match st.Types.st_kind with
      | Types.Directory -> collect_files fs cpu child acc
      | Types.Regular -> (child, st.st_size) :: acc)
    acc (Fs.readdir fs cpu path)

(* Non-blank inode-table headers of a quiesced image: the slots a scrub
   will checksum-verify, i.e. the interesting bit-flip targets. *)
let nonblank_inode_headers dev (layout : Layout.t) =
  let res = ref [] in
  for c = 0 to layout.cpus - 1 do
    for idx = 0 to layout.inodes_per_cpu - 1 do
      let ino = Layout.ino_of layout ~cpu:c ~idx in
      let off = Layout.inode_off layout ino in
      let b = Bytes.create Codec.Inode.header_bytes in
      Device.peek dev ~off ~len:Codec.Inode.header_bytes ~dst:b ~dst_off:0;
      if not (Codec.Inode.header_is_blank b) then res := (ino, off) :: !res
    done
  done;
  Array.of_list (List.rev !res)

let shuffle rng arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let run ?(seed = 42) ?(workloads = Ace.seq1) ?(torn_fences = 4)
    ?(device_size = 48 * Units.mib) () =
  let rng = Rng.create seed in
  let cpu = Cpu.make ~id:0 () in
  let scenarios = ref 0 and planted = ref 0 in
  let repaired = ref 0 and refused = ref 0 in
  let findings = ref [] in
  let finding w s fault diag =
    findings :=
      { f_workload = w; f_scenario = s; f_fault = fault; f_diagnosis = diag } :: !findings
  in
  (* Build the workload's final image, cleanly unmounted, plus everything
     a scenario needs to aim and judge: the expected tree signature, a
     data extent, and the image's layout. *)
  let prepare (w : Ace.workload) =
    let dev, cfg, fs = fresh ~device_size in
    List.iter (Ace.apply (handle fs) cpu) (w.setup @ w.test);
    let expect = Checker.signature_of (handle fs) cpu in
    let files = collect_files fs cpu "/" [] in
    let data =
      List.find_map
        (fun (p, size) ->
          match Fs.file_extents fs cpu p with
          | (file_off, phys, _) :: _ when file_off < size -> Some (p, file_off, phys, size)
          | _ -> None)
        files
    in
    let fcfg = Fs.config fs in
    let layout =
      Layout.compute ~size:(Device.size dev) ~cpus:fcfg.cpus
        ~inodes_per_cpu:fcfg.inodes_per_cpu
    in
    Fs.unmount fs cpu;
    (dev, cfg, expect, data, layout)
  in
  (* Verdict for a metadata fault planted on a quiesced image: the remount
     must repair it (identical tree, writable) or refuse it (EIO mount, or
     a read-only mount that rejects mutations) — anything else is a
     finding. *)
  let remount_check w s_name fault_str dev cfg expect =
    incr scenarios;
    incr planted;
    match Fs.mount dev cfg with
    | exception Types.Error (Types.EIO, _) -> incr refused
    | exception e ->
        finding w s_name fault_str
          (Printf.sprintf "mount raised %s" (Printexc.to_string e))
    | fs2 ->
        let detected = Counters.get (Fs.counters fs2) "fault.detected" in
        if Fs.read_only fs2 then begin
          let safe = ref (detected > 0) in
          if not !safe then
            finding w s_name fault_str "mount degraded without counting a detection";
          (match Fs.create fs2 cpu "/__faultcheck_probe" with
          | _ ->
              safe := false;
              finding w s_name fault_str "degraded mount accepted create (expected EROFS)"
          | exception Types.Error (Types.EROFS, _) -> ());
          (* Surviving objects must still read; refused ones must fail
             loudly with EIO, never with fabricated contents. *)
          (match Checker.signature_of (handle fs2) cpu with
          | _ -> ()
          | exception Types.Error (Types.EIO, _) -> ()
          | exception e ->
              safe := false;
              finding w s_name fault_str
                (Printf.sprintf "degraded walk raised %s" (Printexc.to_string e)));
          if !safe then incr refused
        end
        else if detected = 0 then
          finding w s_name fault_str "fault silently absorbed (writable mount, no detection)"
        else
          match Checker.signature_of (handle fs2) cpu with
          | s when s = expect -> incr repaired
          | _ -> finding w s_name fault_str "repaired mount recovered a different tree"
          | exception e ->
              finding w s_name fault_str
                (Printf.sprintf "post-repair walk raised %s" (Printexc.to_string e))
  in
  let static_campaign (w : Ace.workload) =
    let sb_target = { Fault.label = "superblock"; off = 0; len = Codec.Superblock.bytes } in
    (* Superblock bit flip: must be repaired from the replica. *)
    let dev, cfg, expect, _, _ = prepare w in
    let p = Fault.bit_flip rng sb_target in
    Fault.apply dev p;
    remount_check w.w_name "sb-flip" (Fault.to_string p) dev cfg expect;
    (* Superblock poisoned line: simulated MCE on the primary. *)
    let dev, cfg, expect, _, _ = prepare w in
    let p = Fault.poison rng sb_target in
    Fault.apply dev p;
    remount_check w.w_name "sb-poison" (Fault.to_string p) dev cfg expect;
    (* Inode-header bit flip: no replica exists, so the scrub must refuse
       the inode (or the whole mount when it is the root's). *)
    let dev, cfg, expect, _, layout = prepare w in
    let headers = nonblank_inode_headers dev layout in
    let ino, off = headers.(Rng.int rng (Array.length headers)) in
    let target =
      { Fault.label = Printf.sprintf "inode %d header" ino;
        off;
        len = Codec.Inode.header_bytes }
    in
    let p = Fault.bit_flip rng target in
    Fault.apply dev p;
    remount_check w.w_name "inode-flip" (Fault.to_string p) dev cfg expect;
    (* Inode-header poison. *)
    let dev, cfg, expect, _, layout = prepare w in
    let headers = nonblank_inode_headers dev layout in
    let ino, off = headers.(Rng.int rng (Array.length headers)) in
    let target =
      { Fault.label = Printf.sprintf "inode %d header" ino;
        off;
        len = Codec.Inode.header_bytes }
    in
    let p = Fault.poison rng target in
    Fault.apply dev p;
    remount_check w.w_name "inode-poison" (Fault.to_string p) dev cfg expect;
    (* Poisoned file data: the mount stays clean and writable (data is not
       scanned), but reading the line must refuse with EIO, never return
       fabricated bytes. *)
    let dev, cfg, _, data, _ = prepare w in
    match data with
    | None -> () (* workload leaves no file data to poison *)
    | Some (path, file_off, phys, size) -> (
        incr scenarios;
        incr planted;
        let p = Fault.poison rng { Fault.label = "data " ^ path; off = phys; len = 64 } in
        Fault.apply dev p;
        match Fs.mount dev cfg with
        | exception e ->
            finding w.w_name "data-poison" (Fault.to_string p)
              (Printf.sprintf "mount raised %s" (Printexc.to_string e))
        | fs2 -> (
            let fd = Fs.openf fs2 cpu path Types.o_rdonly in
            let len = min 64 (size - file_off) in
            match Fs.pread fs2 cpu fd ~off:file_off ~len with
            | _ ->
                finding w.w_name "data-poison" (Fault.to_string p)
                  "read of poisoned data returned bytes (silent absorption)"
            | exception Types.Error (Types.EIO, _) -> incr refused
            | exception e ->
                finding w.w_name "data-poison" (Fault.to_string p)
                  (Printf.sprintf "read raised %s (expected EIO)" (Printexc.to_string e))))
  in
  (* Torn-word scenarios: crash at a fence with a seeded 8-byte tear on one
     in-flight line, persist everything else, remount.  Journal entry
     checksums must demote a torn COMMIT to a rollback, so recovery lands
     on one side of the in-flight operation. *)
  let torn_campaign (w : Ace.workload) =
    let _, _, ref_fs = fresh ~device_size in
    List.iter (Ace.apply (handle ref_fs) cpu) w.setup;
    let expected = ref [ Checker.signature_of (handle ref_fs) cpu ] in
    List.iter
      (fun op ->
        Ace.apply (handle ref_fs) cpu op;
        expected := Checker.signature_of (handle ref_fs) cpu :: !expected)
      w.test;
    let expected = Array.of_list (List.rev !expected) in
    let fence_n = ref 1 in
    let exploring = ref true in
    while !exploring && !fence_n <= torn_fences do
      let dev, cfg, fs = fresh ~device_size in
      List.iter (Ace.apply (handle fs) cpu) w.setup;
      Device.set_tracking dev true;
      Device.reset_fence_seq dev;
      let target = !fence_n in
      let captured = ref None in
      Device.set_fence_hook dev
        (Some
           (fun seq ->
             if seq = target && !captured = None then begin
               captured := Some (Device.pending_lines dev);
               Device.set_fence_hook dev None;
               raise Exit
             end));
      let op_index = ref 0 in
      let crashed = ref false in
      (try
         List.iter
           (fun op ->
             Ace.apply (handle fs) cpu op;
             incr op_index)
           w.test
       with Exit -> crashed := true);
      Device.set_fence_hook dev None;
      if not !crashed then exploring := false
      else begin
        let pending = Array.of_list (Option.value ~default:[] !captured) in
        let lines = shuffle rng pending in
        let p =
          Array.fold_left
            (fun acc line ->
              match acc with Some _ -> acc | None -> Fault.torn_word rng dev ~line)
            None lines
        in
        (match p with
        | None -> () (* no pending word differs at this fence *)
        | Some p -> (
            incr scenarios;
            incr planted;
            Fault.apply dev p;
            let img = Device.crash_image dev ~persisted:(fun _ -> true) in
            let before = expected.(!op_index) and after = expected.(!op_index + 1) in
            match Fs.mount img cfg with
            | exception Types.Error ((Types.EIO | Types.EROFS), _) -> incr refused
            | exception e ->
                finding w.w_name "torn-word" (Fault.to_string p)
                  (Printf.sprintf "recovery raised %s" (Printexc.to_string e))
            | fs2 -> (
                if Fs.read_only fs2 then incr refused
                else
                  match Checker.signature_of (handle fs2) cpu with
                  | s when s = before || s = after -> incr repaired
                  | _ ->
                      finding w.w_name "torn-word" (Fault.to_string p)
                        (Printf.sprintf
                           "fence %d: recovered state matches neither side of op %d"
                           target !op_index)
                  | exception e ->
                      finding w.w_name "torn-word" (Fault.to_string p)
                        (Printf.sprintf "post-recovery walk raised %s"
                           (Printexc.to_string e)))));
        incr fence_n
      end
    done
  in
  List.iter
    (fun w ->
      static_campaign w;
      torn_campaign w)
    workloads;
  {
    seed;
    scenarios_run = !scenarios;
    faults_planted = !planted;
    repaired = !repaired;
    refused = !refused;
    findings = List.rev !findings;
  }
