open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Fs = Winefs.Fs
module Micro = Repro_workloads.Micro
module Sanitizer = Repro_sanitizer.Sanitizer

type report = { name : string; diags : Sanitizer.diag list }

let errors r =
  List.length (List.filter (fun d -> d.Sanitizer.severity = Sanitizer.Error) r.diags)

let total_errors rs = List.fold_left (fun acc r -> acc + errors r) 0 rs

let device_size = 48 * Units.mib

let run_custom ?strict ?rules ?(mode = Types.Strict) ~name body =
  let dev = Device.create ~cost:Device.Cost.free ~size:device_size () in
  let cfg = Types.config ~cpus:2 ~mode ~inodes_per_cpu:256 () in
  let cpu = Cpu.make ~id:0 () in
  let (), diags =
    Sanitizer.with_device ?strict ?rules dev (fun _t ->
        let fs = Fs.format dev cfg in
        body (Fs_intf.Handle ((module Fs), fs)) cpu;
        Fs.unmount fs cpu;
        (* Remount: every byte recovery reads must be durable (R2). *)
        let fs' = Fs.mount dev cfg in
        Fs.unmount fs' cpu)
  in
  { name; diags }

let run_ace ?strict ?rules ?mode workloads =
  List.map
    (fun (w : Ace.workload) ->
      run_custom ?strict ?rules ?mode ~name:w.w_name (fun h cpu ->
          List.iter (Ace.apply h cpu) (w.setup @ w.test)))
    workloads

let run_micro ?strict ?rules () =
  let mib = Units.mib in
  let syscall mode name =
    run_custom ?strict ?rules ~name (fun h _cpu ->
        ignore
          (Micro.syscall_rw h ~fsync_every:4 ~path:"/m" ~file_bytes:(4 * mib)
             ~io_bytes:(2 * mib) ~chunk:(16 * Units.kib) ~mode ()))
  in
  let mmap mode name =
    run_custom ?strict ?rules ~name (fun h _cpu ->
        ignore
          (Micro.mmap_rw h ~path:"/mm" ~file_bytes:(4 * mib) ~io_bytes:(2 * mib)
             ~chunk:(64 * Units.kib) ~mode ()))
  in
  [
    syscall `Seq_write "micro:syscall-seq-write";
    syscall `Rand_write "micro:syscall-rand-write";
    mmap `Seq_write "micro:mmap-seq-write";
    mmap `Rand_write "micro:mmap-rand-write";
    run_custom ?strict ?rules ~name:"micro:mmap-2mb-file" (fun h _cpu ->
        ignore (Micro.mmap_write_2mb_file h ~path:"/huge" ~huge_ok:true));
  ]
