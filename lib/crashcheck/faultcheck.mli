(** Media-fault injection campaign for WineFS (robustness counterpart of
    the crash-consistency {!Checker}).

    Each scenario plants one fault — a bit flip or poisoned line in the
    superblock, an inode header or file data of a cleanly-unmounted image,
    or an 8-byte torn word on an in-flight line at a crash fence — then
    remounts and demands the fault be {e repaired} (tree identical to the
    pre-fault state, writable mount) or {e safely refused} (EIO mount
    failure, read-only degraded mount rejecting mutations with EROFS, or
    an EIO read).  A fault that is neither — a writable mount with no
    detection, fabricated read data, or a tree matching neither side of
    the in-flight operation — is a finding.  The whole campaign is drawn
    from one seed and replays exactly. *)

type finding = {
  f_workload : string;
  f_scenario : string;  (** e.g. ["sb-flip"], ["inode-poison"], ["torn-word"] *)
  f_fault : string;  (** printable fault description *)
  f_diagnosis : string;
}

type report = {
  seed : int;  (** replay with [run ~seed] *)
  scenarios_run : int;
  faults_planted : int;
  repaired : int;
  refused : int;
  findings : finding list;
}

val run :
  ?seed:int ->
  ?workloads:Ace.workload list ->
  ?torn_fences:int ->
  ?device_size:int ->
  unit ->
  report
(** Run the campaign against WineFS.  Defaults: seed 42, {!Ace.seq1},
    torn-word crashes at the first 4 fences of each workload, 48 MiB
    devices.  [faults_planted = repaired + refused] iff [findings] is
    empty. *)
