(** Crash-fsck-remount torture campaign (the offline-repair counterpart
    of {!Faultcheck}).

    Each iteration runs a workload, crashes it at a seeded fence keeping
    a seeded subset of the in-flight cache lines, optionally plants one
    seeded media fault on the wreck (superblock or inode-header bit flip
    / poisoned line), runs {!Repro_fsck.Fsck.run} with repair, and
    demands the image then mount {e writable}, walk cleanly, accept a
    probe mutation, and pass a second finding-free fsck (convergence).
    Any other outcome is a failure.  The whole campaign is drawn from
    one seed and replays exactly. *)

type failure = {
  t_iter : int;  (** 1-based iteration *)
  t_workload : string;
  t_fence : int;  (** crash fence within the test phase *)
  t_diagnosis : string;
}

type report = {
  seed : int;  (** replay with [run ~seed] *)
  iterations : int;
  workloads : int;  (** distinct workloads in rotation *)
  crashes : int;
  faults_planted : int;
  repairs : int;  (** total fsck repairs across the campaign *)
  orphans : int;  (** total orphans reattached *)
  failures : failure list;
}

val run :
  ?seed:int -> ?iterations:int -> ?fault_rate:float -> ?device_size:int -> unit -> report
(** Run the campaign.  Defaults: seed 42, 60 iterations alternating two
    workloads, a media fault on half the crash images, 48 MiB devices.
    A healthy repairer yields [failures = []]. *)
