(* Crash-fsck-remount torture campaign: run a workload, crash it at a
   seeded persist point keeping a seeded subset of the in-flight lines,
   optionally plant a media fault on the wreck, fsck it with repair, and
   demand a writable invariant-clean remount — then that a second fsck
   finds nothing.  Every iteration must end healthy; the seed replays
   the whole campaign. *)

open Repro_util
module Device = Repro_pmem.Device
module Fault = Repro_pmem.Fault
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Fs = Winefs.Fs
module Layout = Winefs.Layout
module Codec = Winefs.Codec
module Fsck = Repro_fsck.Fsck

type failure = { t_iter : int; t_workload : string; t_fence : int; t_diagnosis : string }

type report = {
  seed : int;
  iterations : int;
  workloads : int;
  crashes : int;
  faults_planted : int;
  repairs : int;
  orphans : int;
  failures : failure list;
}

let handle fs = Fs_intf.Handle ((module Fs : Fs_intf.S with type t = Fs.t), fs)

(* Two fixed workloads the campaign alternates between: a small-file op
   mix across two directories, and a directory-tree reshaping mix. *)
let smallfiles =
  {
    Ace.w_name = "smallfiles";
    setup =
      [
        Ace.Mkdir "/d0"; Ace.Mkdir "/d1"; Ace.Create "/d0/a";
        Ace.Write ("/d0/a", 0, String.make 2048 'a'); Ace.Create "/d1/b";
        Ace.Append ("/d1/b", "bb");
      ];
    test =
      [
        Ace.Create "/d0/c"; Ace.Append ("/d0/c", String.make 512 'c');
        Ace.Write ("/d0/a", 1024, String.make 1024 'A');
        Ace.Rename ("/d0/a", "/d1/a2"); Ace.Unlink "/d1/b"; Ace.Create "/d1/d";
        Ace.Append ("/d1/d", String.make 100 'd'); Ace.Unlink "/d0/c";
        Ace.Rename ("/d1/d", "/d0/d2"); Ace.Append ("/d0/d2", String.make 64 'e');
      ];
  }

let dirtree =
  {
    Ace.w_name = "dirtree";
    setup =
      [
        Ace.Mkdir "/a"; Ace.Mkdir "/a/b"; Ace.Mkdir "/c"; Ace.Create "/a/b/f";
        Ace.Append ("/a/b/f", "ffff");
      ];
    test =
      [
        Ace.Mkdir "/a/b/e"; Ace.Create "/c/g"; Ace.Write ("/c/g", 0, String.make 4096 'g');
        Ace.Rename ("/a/b/f", "/c/f2"); Ace.Ftruncate ("/c/g", 100); Ace.Rmdir "/a/b/e";
        Ace.Rename ("/a/b", "/b2"); Ace.Create "/b2/h"; Ace.Append ("/b2/h", "hh");
        Ace.Unlink "/c/f2";
      ];
  }

let fresh ~device_size =
  let dev = Device.create ~cost:Device.Cost.free ~size:device_size () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:256 () in
  let fs = Fs.format dev cfg in
  (dev, cfg, fs)

let nonblank_inode_headers dev (layout : Layout.t) =
  let res = ref [] in
  for c = 0 to layout.cpus - 1 do
    for idx = 0 to layout.inodes_per_cpu - 1 do
      let ino = Layout.ino_of layout ~cpu:c ~idx in
      let off = Layout.inode_off layout ino in
      let b = Bytes.create Codec.Inode.header_bytes in
      Device.peek dev ~off ~len:Codec.Inode.header_bytes ~dst:b ~dst_off:0;
      if not (Codec.Inode.header_is_blank b) then res := off :: !res
    done
  done;
  Array.of_list (List.rev !res)

(* One seeded media fault on the crash image's metadata: a superblock
   bit flip or poisoned line (primary or replica), or the same on a
   nonblank inode header.  All are within fsck's repair envelope. *)
let plant_fault rng img (layout : Layout.t) =
  let sb_target which off = { Fault.label = "superblock " ^ which; off; len = Codec.Superblock.bytes } in
  let header_target () =
    let headers = nonblank_inode_headers img layout in
    if Array.length headers = 0 then None
    else
      let off = headers.(Rng.int rng (Array.length headers)) in
      Some { Fault.label = "inode header"; off; len = Codec.Inode.header_bytes }
  in
  let planted =
    match Rng.int rng 4 with
    | 0 -> Some (Fault.bit_flip rng (sb_target "primary" 0))
    | 1 -> Some (Fault.poison rng (sb_target "replica" Layout.sb_replica_off))
    | 2 -> Option.map (Fault.bit_flip rng) (header_target ())
    | _ -> Option.map (Fault.poison rng) (header_target ())
  in
  match planted with
  | None -> None
  | Some p ->
      Fault.apply img p;
      Some (Fault.to_string p)

let run ?(seed = 42) ?(iterations = 60) ?(fault_rate = 0.5) ?(device_size = 48 * Units.mib) () =
  let rng = Rng.create seed in
  let cpu = Cpu.make ~id:0 () in
  let crashes = ref 0 and faults = ref 0 and repairs = ref 0 and orphans = ref 0 in
  let failures = ref [] in
  for it = 1 to iterations do
    let w = if it mod 2 = 1 then smallfiles else dirtree in
    let failed fence fmt =
      Printf.ksprintf
        (fun d ->
          failures :=
            { t_iter = it; t_workload = w.Ace.w_name; t_fence = fence; t_diagnosis = d }
            :: !failures)
        fmt
    in
    (* Dry run: count the fences the test phase executes. *)
    let dev0, _, fs0 = fresh ~device_size in
    List.iter (Ace.apply (handle fs0) cpu) w.setup;
    Device.reset_fence_seq dev0;
    List.iter (Ace.apply (handle fs0) cpu) w.test;
    let fences = Device.fence_seq dev0 in
    if fences = 0 then failed 0 "workload executed no fences"
    else begin
      (* Crash run: same build, abort at a seeded fence, keep a seeded
         subset of the in-flight lines. *)
      let target = 1 + Rng.int rng fences in
      let salt = Rng.int rng 0x3FFFFFFF in
      let dev, cfg, fs = fresh ~device_size in
      List.iter (Ace.apply (handle fs) cpu) w.setup;
      Device.set_tracking dev true;
      Device.reset_fence_seq dev;
      Device.set_fence_hook dev (Some (fun seq -> if seq = target then raise Exit));
      let crashed =
        try
          List.iter (Ace.apply (handle fs) cpu) w.test;
          false
        with Exit -> true
      in
      Device.set_fence_hook dev None;
      if not crashed then failed target "workload finished before the target fence"
      else begin
        incr crashes;
        let keep line = (((line lxor salt) * 1103515245) + 12345) land 0x10000 = 0 in
        let img = Device.crash_image dev ~persisted:keep in
        let layout =
          Layout.compute ~size:(Device.size img) ~cpus:cfg.Types.cpus
            ~inodes_per_cpu:cfg.Types.inodes_per_cpu
        in
        let fault =
          if Rng.float rng 1.0 < fault_rate then plant_fault rng img layout else None
        in
        (match fault with Some _ -> incr faults | None -> ());
        let fault_str = Option.value ~default:"none" fault in
        match Fsck.run ~repair:true img with
        | exception e ->
            failed target "fsck raised %s (fault: %s)" (Printexc.to_string e) fault_str
        | rep -> (
            repairs := !repairs + rep.Fsck.repairs;
            orphans := !orphans + rep.Fsck.orphans_reattached;
            match Fs.mount img cfg with
            | exception e ->
                failed target "post-fsck mount raised %s (fault: %s)" (Printexc.to_string e)
                  fault_str
            | fs2 ->
                if Fs.read_only fs2 then
                  failed target "post-fsck mount degraded to read-only (fault: %s)" fault_str
                else begin
                  (match Checker.signature_of (handle fs2) cpu with
                  | _ -> ()
                  | exception e ->
                      failed target "post-fsck walk raised %s (fault: %s)"
                        (Printexc.to_string e) fault_str);
                  (match
                     let fd = Fs.create fs2 cpu "/__torture_probe" in
                     let _ = Fs.pwrite fs2 cpu fd ~off:0 ~src:"probe" in
                     Fs.close fs2 cpu fd;
                     Fs.unlink fs2 cpu "/__torture_probe"
                   with
                  | () -> ()
                  | exception e ->
                      failed target "post-fsck probe raised %s (fault: %s)"
                        (Printexc.to_string e) fault_str);
                  Fs.unmount fs2 cpu;
                  match Fsck.run ~repair:false img with
                  | exception e ->
                      failed target "re-check raised %s (fault: %s)" (Printexc.to_string e)
                        fault_str
                  | again ->
                      if not again.Fsck.clean then
                        failed target "fsck did not converge (fault: %s): %s" fault_str
                          (Fsck.to_string again)
                end)
      end
    end
  done;
  {
    seed;
    iterations;
    workloads = 2;
    crashes = !crashes;
    faults_planted = !faults;
    repairs = !repairs;
    orphans = !orphans;
    failures = List.rev !failures;
  }
