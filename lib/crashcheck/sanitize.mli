(** Durability-lint harness: run workloads against WineFS with the
    {!Repro_sanitizer} attached to the simulated PM device.

    Each workload gets a fresh device; the run formats the file system,
    executes the workload, unmounts, then remounts and unmounts again so
    the recovery path's reads are checked against the shadow durability
    state (rule R2).  Violations carry the {!Repro_pmem.Site.t} of the
    offending access. *)

module Sanitizer = Repro_sanitizer.Sanitizer

type report = { name : string; diags : Sanitizer.diag list }

val errors : report -> int
(** Error-severity diagnostics in one report (warnings excluded). *)

val total_errors : report list -> int

val run_ace :
  ?strict:bool ->
  ?rules:Sanitizer.rule list ->
  ?mode:Repro_vfs.Types.mode ->
  Ace.workload list ->
  report list
(** One report per ACE workload.  [strict] raises
    {!Sanitizer.Violation} inside the first offending access. *)

val run_micro : ?strict:bool -> ?rules:Sanitizer.rule list -> unit -> report list
(** A small syscall + mmap micro-workload suite under the sanitizer. *)

val run_custom :
  ?strict:bool ->
  ?rules:Sanitizer.rule list ->
  ?mode:Repro_vfs.Types.mode ->
  name:string ->
  (Repro_vfs.Fs_intf.handle -> Repro_util.Cpu.t -> unit) ->
  report
(** Run an arbitrary workload body under the harness (used by tests). *)
