open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site

(* Durability-lint sites: user-space DAX stores and fault-time zeroing
   flow through here, so they carry their own attribution labels. *)
let site_fault = Site.v "vmem" "fault_zero"
let site_store = Site.v "vmem" "store"
let site_persist = Site.v "vmem" "persist"

type fault_result = Huge of int | Base of int | Sigbus

type backing = Cpu.t -> file_off:int -> huge_ok:bool -> fault_result

type region = {
  id : int;
  base_va : int;
  len : int;
  backing : backing;
  huge_ok : bool;
  zero_on_fault : bool;
  mutable live : bool;
  mutable huge_chunks : int;
  mutable base_pages : int;
}

type t = {
  dev : Device.t;
  cfg : Mmu_config.t;
  tlb_4k : Lru_sets.t;
  tlb_2m : Lru_sets.t;
  tlb_l2 : Lru_sets.t;
  llc : Lru_sets.t;
  pt_4k : (int, int) Hashtbl.t; (* vpn -> phys page base *)
  pt_2m : (int, int) Hashtbl.t; (* 2M chunk index -> phys 2M base *)
  counters : Counters.t;
  mutable next_va : int;
  mutable next_region : int;
}

let base = Units.base_page
let huge = Units.huge_page
let cl = Units.cacheline

let create ?(config = Mmu_config.default) dev =
  {
    dev;
    cfg = config;
    tlb_4k = Lru_sets.create ~sets:config.l1_tlb_4k_sets ~ways:config.l1_tlb_4k_ways;
    tlb_2m = Lru_sets.create ~sets:config.l1_tlb_2m_sets ~ways:config.l1_tlb_2m_ways;
    tlb_l2 = Lru_sets.create ~sets:config.l2_tlb_sets ~ways:config.l2_tlb_ways;
    llc = Lru_sets.create ~sets:config.llc_sets ~ways:config.llc_ways;
    pt_4k = Hashtbl.create 4096;
    pt_2m = Hashtbl.create 256;
    counters = Counters.create ();
    next_va = huge;
    next_region = 0;
  }

let counters t = t.counters
let config t = t.cfg

let mmap t ~len ~backing ?(huge_ok = true) ?(zero_on_fault = false) () =
  if len <= 0 then invalid_arg "Vmem.mmap: non-positive length";
  let base_va = t.next_va in
  t.next_va <- t.next_va + Units.round_up len huge + huge;
  let id = t.next_region in
  t.next_region <- t.next_region + 1;
  {
    id;
    base_va;
    len;
    backing;
    huge_ok;
    zero_on_fault;
    live = true;
    huge_chunks = 0;
    base_pages = 0;
  }

let region_len r = r.len

(* TLB key spaces: 4K entries keyed by vpn, 2M entries by chunk index.  The
   shared L2 uses distinct tag bits so the two sizes do not alias. *)
let l2_key_4k vpn = vpn lor (1 lsl 58)
let l2_key_2m chunk = chunk lor (2 lsl 58)

(* Page-table entry cache lines: 8 entries of 8 bytes per 64B line.  They
   compete for LLC capacity with data lines — the §2.4 effect.  Upper
   walk levels use coarser, level-tagged lines (one L2-table line covers
   2MB of address space, one L3 line 1GB). *)
let pte_line_4k vpn = (vpn lsr 3) lor (1 lsl 59)
let pte_line_2m chunk = (chunk lsr 3) lor (2 lsl 59)
let pmd_line_4k vpn = (vpn lsr 12) lor (3 lsl 59)
let pud_line vpn = (vpn lsr 21) lor (4 lsl 59)

let charge _t (cpu : Cpu.t) ns = Simclock.advance cpu.clock (int_of_float ns)

(* LLC access for a page-table line: returns nothing, charges hit or DRAM
   fill time. *)
let pte_fetch t cpu line =
  if Lru_sets.access t.llc line then begin
    Counters.incr t.counters "mm.llc_hits";
    charge t cpu t.cfg.llc_hit_ns
  end
  else begin
    Counters.incr t.counters "mm.llc_misses";
    charge t cpu t.cfg.dram_access_ns
  end

(* TLB lookup; on miss, walk the page table (fetch the PTE line through the
   LLC) and install the translation. *)
let tlb_access t cpu ~is_huge ~key4k ~key2m =
  let l1 = if is_huge then t.tlb_2m else t.tlb_4k in
  let l1_key = if is_huge then key2m else key4k in
  if Lru_sets.access l1 l1_key then Counters.incr t.counters "mm.tlb_hits"
  else begin
    let l2_key = if is_huge then l2_key_2m key2m else l2_key_4k key4k in
    if Lru_sets.access t.tlb_l2 l2_key then begin
      Counters.incr t.counters "mm.tlb_hits";
      charge t cpu t.cfg.l2_tlb_hit_ns
    end
    else begin
      Counters.incr t.counters "mm.tlb_misses";
      charge t cpu t.cfg.walk_base_ns;
      (* Multi-level walk: 4KB pages chase PUD -> PMD -> PTE lines, 2MB
         pages stop at the PMD.  Upper-level lines cover wide ranges and
         usually hit the LLC; leaf PTE lines are the polluters. *)
      if is_huge then begin
        pte_fetch t cpu (pud_line (key2m lsl 9));
        pte_fetch t cpu (pte_line_2m key2m)
      end
      else begin
        pte_fetch t cpu (pud_line key4k);
        pte_fetch t cpu (pmd_line_4k key4k);
        pte_fetch t cpu (pte_line_4k key4k)
      end
    end
  end

exception Sigbus_fault of string

let handle_fault t cpu r va =
  let file_off = va - r.base_va in
  let t0 = Simclock.now cpu.Cpu.clock in
  let chunk_file = Units.round_down file_off huge in
  let huge_possible = r.huge_ok && chunk_file + huge <= r.len in
  let install_result =
    if huge_possible then r.backing cpu ~file_off:chunk_file ~huge_ok:true
    else r.backing cpu ~file_off:(Units.round_down file_off base) ~huge_ok:false
  in
  let phys =
    match install_result with
    | Huge phys ->
        if not (Units.is_aligned phys huge) then
          invalid_arg "Vmem: file system returned an unaligned hugepage extent";
        let chunk = (r.base_va + chunk_file) / huge in
        Hashtbl.replace t.pt_2m chunk phys;
        r.huge_chunks <- r.huge_chunks + 1;
        Counters.incr t.counters "mm.huge_faults";
        Counters.incr t.counters "mm.page_faults";
        charge t cpu t.cfg.fault_huge_ns;
        if r.zero_on_fault then
          Device.with_site t.dev site_fault (fun () ->
              Device.memset t.dev cpu ~off:phys ~len:huge '\000';
              Device.persist t.dev cpu ~off:phys ~len:huge);
        phys + (va - (r.base_va + chunk_file)) / base * base
    | Base phys ->
        (* The FS may answer Base even when asked about a whole chunk
           (unaligned backing); install just the faulting 4K page.  When
           the answer covers the chunk start rather than the faulting
           page, re-ask for the precise page. *)
        let page_file = Units.round_down file_off base in
        let phys =
          if huge_possible && page_file <> chunk_file then
            match r.backing cpu ~file_off:page_file ~huge_ok:false with
            | Base p -> p
            | Huge p -> p + (page_file - chunk_file)
            | Sigbus -> raise (Sigbus_fault "no backing for page")
          else phys
        in
        let vpn = (r.base_va + page_file) / base in
        Hashtbl.replace t.pt_4k vpn phys;
        r.base_pages <- r.base_pages + 1;
        Counters.incr t.counters "mm.page_faults";
        charge t cpu t.cfg.fault_base_ns;
        if r.zero_on_fault then
          Device.with_site t.dev site_fault (fun () ->
              Device.memset t.dev cpu ~off:phys ~len:base '\000';
              Device.persist t.dev cpu ~off:phys ~len:base);
        phys
    | Sigbus -> raise (Sigbus_fault (Printf.sprintf "fault at file offset %d" file_off))
  in
  Counters.add t.counters "mm.fault_ns" (Simclock.now cpu.Cpu.clock - t0);
  phys

(* Translate [va]; returns the physical address and the number of bytes
   until the end of the containing page (the caller may access that much
   without re-translating). *)
let translate t cpu r va =
  let chunk = va / huge in
  match Hashtbl.find_opt t.pt_2m chunk with
  | Some phys_base ->
      tlb_access t cpu ~is_huge:true ~key4k:0 ~key2m:chunk;
      let in_chunk = va - (chunk * huge) in
      (phys_base + in_chunk, huge - in_chunk)
  | None -> (
      let vpn = va / base in
      match Hashtbl.find_opt t.pt_4k vpn with
      | Some phys_page ->
          tlb_access t cpu ~is_huge:false ~key4k:vpn ~key2m:0;
          let in_page = va - (vpn * base) in
          (phys_page + in_page, base - in_page)
      | None ->
          let phys = handle_fault t cpu r va in
          (* Re-translate now that the mapping exists (charges the TLB
             fill for the new entry). *)
          let chunk_hit = Hashtbl.mem t.pt_2m chunk in
          if chunk_hit then begin
            tlb_access t cpu ~is_huge:true ~key4k:0 ~key2m:chunk;
            let in_chunk = va - (chunk * huge) in
            (Hashtbl.find t.pt_2m chunk + in_chunk, huge - in_chunk)
          end
          else begin
            tlb_access t cpu ~is_huge:false ~key4k:vpn ~key2m:0;
            let in_page = va - (vpn * base) in
            ignore phys;
            (Hashtbl.find t.pt_4k vpn + in_page, base - in_page)
          end)

let check_region r ~off ~len =
  if not r.live then invalid_arg "Vmem: access to unmapped region";
  if off < 0 || len < 0 || off + len > r.len then
    invalid_arg
      (Printf.sprintf "Vmem: access [%d,%d) outside region of %d bytes" off (off + len)
         r.len)

(* Data read through the LLC: per cache line, a hit charges llc_hit_ns and
   skips the device; a miss reads PM.  Contiguous missing lines are
   batched into one device time-charge to keep bulk scans cheap; the data
   itself is copied once at the end (cost already accounted). *)
let read_lines t cpu ~phys ~len ~dst =
  let first_line = phys / cl and last_line = (phys + len - 1) / cl in
  let charge_run run_start run_end =
    if run_end >= run_start then begin
      let off = max phys (run_start * cl) in
      let stop = min (phys + len) ((run_end + 1) * cl) in
      Device.touch_read t.dev cpu ~off ~len:(stop - off)
    end
  in
  let run_start = ref 0 and run_end = ref (-1) in
  for line = first_line to last_line do
    if Lru_sets.access t.llc line then begin
      Counters.incr t.counters "mm.llc_hits";
      charge t cpu t.cfg.llc_hit_ns;
      charge_run !run_start !run_end;
      run_start := line + 1;
      run_end := line
    end
    else begin
      Counters.incr t.counters "mm.llc_misses";
      if !run_end < !run_start then run_start := line;
      run_end := line
    end
  done;
  charge_run !run_start !run_end;
  match dst with
  | Some (buf, buf_off) -> Device.peek t.dev ~off:phys ~len ~dst:buf ~dst_off:buf_off
  | None -> ()

let rec access t cpu r ~off ~len ~f =
  if len > 0 then begin
    let phys, avail = translate t cpu r (r.base_va + off) in
    let n = min len avail in
    f ~phys ~n ~off;
    if n < len then access t cpu r ~off:(off + n) ~len:(len - n) ~f
  end

let read_into t cpu r ~off ~dst ~dst_off ~len =
  check_region r ~off ~len;
  access t cpu r ~off ~len ~f:(fun ~phys ~n ~off:cur ->
      read_lines t cpu ~phys ~len:n ~dst:(Some (dst, dst_off + cur - off)))

let read t cpu r ~off ~len =
  check_region r ~off ~len;
  access t cpu r ~off ~len ~f:(fun ~phys ~n ~off:_ ->
      read_lines t cpu ~phys ~len:n ~dst:None)

let write_bytes t cpu r ~off ~src ~src_off ~len =
  check_region r ~off ~len;
  access t cpu r ~off ~len ~f:(fun ~phys ~n ~off:cur ->
      Device.with_site t.dev site_store (fun () ->
          Device.write_nt t.dev cpu ~off:phys ~src ~src_off:(src_off + cur - off) ~len:n))

let write t cpu r ~off ~src =
  write_bytes t cpu r ~off ~src:(Bytes.unsafe_of_string src) ~src_off:0
    ~len:(String.length src)

let fill t cpu r ~off ~len c =
  check_region r ~off ~len;
  access t cpu r ~off ~len ~f:(fun ~phys ~n ~off:_ ->
      Device.with_site t.dev site_store (fun () -> Device.memset_nt t.dev cpu ~off:phys ~len:n c))

let read_u64 t cpu r ~off =
  check_region r ~off ~len:8;
  let phys, avail = translate t cpu r (r.base_va + off) in
  if avail >= 8 then begin
    read_lines t cpu ~phys ~len:8 ~dst:None;
    Device.read_u64 t.dev cpu ~off:phys
  end
  else begin
    let buf = Bytes.create 8 in
    read_into t cpu r ~off ~dst:buf ~dst_off:0 ~len:8;
    Bytes.get_int64_le buf 0
  end

let write_u64 t cpu r ~off v =
  check_region r ~off ~len:8;
  let phys, avail = translate t cpu r (r.base_va + off) in
  if avail >= 8 then
    Device.with_site t.dev site_store (fun () -> Device.write_u64 t.dev cpu ~off:phys v)
  else begin
    let buf = Bytes.create 8 in
    Bytes.set_int64_le buf 0 v;
    write_bytes t cpu r ~off ~src:buf ~src_off:0 ~len:8
  end

let persist t cpu r ~off ~len =
  check_region r ~off ~len;
  Device.with_site t.dev site_persist (fun () ->
      access t cpu r ~off ~len ~f:(fun ~phys ~n ~off:_ ->
          Device.flush t.dev cpu ~off:phys ~len:n);
      Device.fence t.dev cpu)

let prefault t cpu r =
  let off = ref 0 in
  while !off < r.len do
    let _, avail = translate t cpu r (r.base_va + !off) in
    off := !off + avail
  done

let munmap t r =
  if r.live then begin
    r.live <- false;
    let va = ref r.base_va in
    let stop = r.base_va + Units.round_up r.len base in
    while !va < stop do
      let chunk = !va / huge in
      if Units.is_aligned !va huge && Hashtbl.mem t.pt_2m chunk then begin
        Hashtbl.remove t.pt_2m chunk;
        va := !va + huge
      end
      else begin
        Hashtbl.remove t.pt_4k (!va / base);
        va := !va + base
      end
    done;
    Lru_sets.clear t.tlb_4k;
    Lru_sets.clear t.tlb_2m;
    Lru_sets.clear t.tlb_l2
  end

let huge_mapped_bytes _t r = r.huge_chunks * huge
let base_mapped_pages _t r = r.base_pages

let drop_tlb t =
  Lru_sets.clear t.tlb_4k;
  Lru_sets.clear t.tlb_2m;
  Lru_sets.clear t.tlb_l2

let drop_llc t = Lru_sets.clear t.llc
