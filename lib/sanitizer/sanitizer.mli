(** Persistence-ordering sanitizer: a PMTest-style durability lint over the
    simulated PM device.

    The sanitizer shadows every cache line of a {!Repro_pmem.Device.t} with
    a small state machine — clean/durable, dirty, flushed-awaiting-fence —
    driven by the device's event stream, and checks the WineFS crash-
    consistency discipline (undo entries durable before in-place updates,
    commit records fenced after all covered stores) against it.  Journaling
    layers declare intent with {!Repro_pmem.Device.annotate}; PM-touching
    code labels itself with {!Repro_pmem.Device.with_site} so diagnostics
    name the layer and operation at fault.

    {2 Rules}

    - [R1-missing-flush]: a transaction persisted its commit record while a
      covered line was still dirty (never flushed).
    - [R2-missing-fence]: a flushed line was never fenced before the run
      ended, or recovery read back a line that was not yet durable.
    - [R3-redundant-flush]: flushing a clean or already-flushed line.  A
      performance lint, aggregated per site, severity {!Warning}.
    - [R4-undo-protocol]: an in-place store to a journal-covered range
      executed before its undo entry was durable.
    - [R5-commit-order]: a covered line was flushed but not yet fenced when
      the commit record persisted (ordering relies on luck, not sfence). *)

type rule =
  | R1_missing_flush
  | R2_missing_fence
  | R3_redundant_flush
  | R4_undo_protocol
  | R5_commit_order

val all_rules : rule list
val rule_name : rule -> string

type severity = Error | Warning

type diag = {
  rule : rule;
  severity : severity;
  site : Repro_pmem.Site.t;  (** layer/operation of the offending store or flush *)
  line : int;  (** cache-line index *)
  count : int;  (** occurrences folded into this diagnostic (R3 aggregates) *)
  detail : string;
}

val diag_offset : diag -> int
(** Byte offset of the diagnosed cache line. *)

val diag_to_string : diag -> string

exception Violation of diag
(** Raised from inside the offending device access in strict mode. *)

type t

val attach : ?strict:bool -> ?rules:rule list -> Repro_pmem.Device.t -> t
(** Install the sanitizer as one of the device's event observers (via
    {!Repro_pmem.Device.add_event_hook}, so it composes with the race
    detector and other hooks).  [strict] (default false) raises
    {!Violation} at the first [Error]-severity diagnostic; [rules]
    (default {!all_rules}) selects the checks. *)

val detach : t -> unit
(** Remove the observer (other hooks on the device are untouched);
    accumulated diagnostics remain readable. *)

val finish : t -> diag list
(** Run end-of-stream checks (R2 unfenced lines, R3 aggregation) and
    return all diagnostics in discovery order. *)

val diags : t -> diag list
val error_count : t -> int

val with_device :
  ?strict:bool -> ?rules:rule list -> Repro_pmem.Device.t -> (t -> 'a) -> 'a * diag list
(** [with_device dev f] attaches, runs [f], then {!finish}es and
    {!detach}es (also detaching if [f] raises). *)

val summary : diag list -> (rule * int) list
(** Total occurrence count per rule, in rule order. *)
