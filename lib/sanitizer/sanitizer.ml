module Device = Repro_pmem.Device
module Site = Repro_pmem.Site

let cl = Repro_util.Units.cacheline

type rule =
  | R1_missing_flush
  | R2_missing_fence
  | R3_redundant_flush
  | R4_undo_protocol
  | R5_commit_order

let all_rules =
  [ R1_missing_flush; R2_missing_fence; R3_redundant_flush; R4_undo_protocol; R5_commit_order ]

let rule_name = function
  | R1_missing_flush -> "R1-missing-flush"
  | R2_missing_fence -> "R2-missing-fence"
  | R3_redundant_flush -> "R3-redundant-flush"
  | R4_undo_protocol -> "R4-undo-protocol"
  | R5_commit_order -> "R5-commit-order"

let rule_code = function
  | R1_missing_flush -> 1
  | R2_missing_fence -> 2
  | R3_redundant_flush -> 3
  | R4_undo_protocol -> 4
  | R5_commit_order -> 5

type severity = Error | Warning

type diag = {
  rule : rule;
  severity : severity;
  site : Site.t;
  line : int; (* cache-line index; byte offset = line * 64 *)
  count : int;
  detail : string;
}

exception Violation of diag

let diag_offset d = d.line * cl

let diag_to_string d =
  Printf.sprintf "%s %s @ %s cl=%d off=%#x%s: %s" (rule_name d.rule)
    (match d.severity with Error -> "error" | Warning -> "warning")
    (Site.to_string d.site) d.line (diag_offset d)
    (if d.count > 1 then Printf.sprintf " x%d" d.count else "")
    d.detail

(* Per-transaction protocol state: the ranges whose undo entries are
   durable (legal to update in place) and the era at which the
   transaction opened, used to age out stores that predate it. *)
type txn = { begin_era : int; mutable covered : (int * int) list }

type t = {
  dev : Device.t;
  mutable hook : Device.hook_id option;
  strict : bool;
  enabled : bool array; (* indexed by rule_code *)
  (* Shadow per-line state machine.  A line is {e durable} when absent
     from [shadow]; present lines are dirty, or flushed-awaiting-fence
     when also in [flushed].  The value is the site of the last store. *)
  shadow : (int, Site.t) Hashtbl.t;
  flushed : (int, unit) Hashtbl.t;
  txns : (int, txn) Hashtbl.t;
  mutable era : int;
  (* Byte ranges stored inside an open transaction without undo coverage,
     kept for the R4 check at cover time: (lo, hi, era, store site). *)
  mutable unprotected : (int * int * int * Site.t) list;
  (* Freshly allocated, unreachable ranges exempt from R4 (same lifetime
     as [unprotected]: cleared when the last transaction ends). *)
  mutable fresh : (int * int) list;
  mutable recovering : bool;
  mutable diags_rev : diag list;
  mutable error_count : int;
  seen : (int * int, unit) Hashtbl.t; (* (rule code, line) dedup *)
  redundant : (Site.t, int ref * int) Hashtbl.t; (* R3: count, first line *)
}

let enabled t r = t.enabled.(rule_code r)

let emit t ~rule ~severity ~site ~line detail =
  if not (Hashtbl.mem t.seen (rule_code rule, line)) then begin
    Hashtbl.replace t.seen (rule_code rule, line) ();
    let d = { rule; severity; site; line; count = 1; detail } in
    t.diags_rev <- d :: t.diags_rev;
    if severity = Error then begin
      t.error_count <- t.error_count + 1;
      if t.strict then raise (Violation d)
    end
  end

let lines_of off len = (off / cl, (off + len - 1) / cl)

let durable_range t lo hi =
  let llo, lhi = lines_of lo (hi - lo) in
  let rec check l = l > lhi || ((not (Hashtbl.mem t.shadow l)) && check (l + 1)) in
  check llo

(* Pieces of [lo, hi) not intersecting [clo, chi). *)
let subtract (lo, hi) (clo, chi) =
  if chi <= lo || clo >= hi then [ (lo, hi) ]
  else (if lo < clo then [ (lo, clo) ] else []) @ if chi < hi then [ (chi, hi) ] else []

let subtract_covered t ranges =
  let ranges =
    List.fold_left (fun acc c -> List.concat_map (fun r -> subtract r c) acc) ranges t.fresh
  in
  Hashtbl.fold
    (fun _ txn acc ->
      List.fold_left (fun acc c -> List.concat_map (fun r -> subtract r c) acc) acc txn.covered)
    t.txns ranges

let prune_unprotected t =
  t.unprotected <-
    List.filter (fun (lo, hi, _, _) -> not (durable_range t lo hi)) t.unprotected

let on_store t site ~off ~len ~nt =
  let llo, lhi = lines_of off len in
  for line = llo to lhi do
    Hashtbl.replace t.shadow line site;
    if nt then Hashtbl.replace t.flushed line () else Hashtbl.remove t.flushed line
  done;
  if enabled t R4_undo_protocol && Hashtbl.length t.txns > 0 then begin
    let pieces = subtract_covered t [ (off, off + len) ] in
    t.unprotected <-
      List.fold_left (fun acc (lo, hi) -> (lo, hi, t.era, site) :: acc) t.unprotected pieces;
    if List.length t.unprotected > 1024 then prune_unprotected t
  end

let on_flush t site ~off ~len =
  let llo, lhi = lines_of off len in
  for line = llo to lhi do
    if Hashtbl.mem t.shadow line && not (Hashtbl.mem t.flushed line) then
      Hashtbl.replace t.flushed line ()
    else if enabled t R3_redundant_flush then
      match Hashtbl.find_opt t.redundant site with
      | Some (n, _) -> incr n
      | None -> Hashtbl.replace t.redundant site (ref 1, line)
  done

let on_fence t =
  Hashtbl.fold (fun line () acc -> line :: acc) t.flushed []
  |> List.sort Int.compare
  |> List.iter (Hashtbl.remove t.shadow);
  Hashtbl.reset t.flushed

let on_load t _site ~off ~len =
  if t.recovering && enabled t R2_missing_fence && len > 0 then begin
    let llo, lhi = lines_of off len in
    for line = llo to lhi do
      match Hashtbl.find_opt t.shadow line with
      | None -> ()
      | Some store_site ->
          let state = if Hashtbl.mem t.flushed line then "flushed, unfenced" else "dirty" in
          emit t ~rule:R2_missing_fence ~severity:Error ~site:store_site ~line
            (Printf.sprintf "recovery read a non-durable line (%s) written by %s" state
               (Site.to_string store_site))
    done
  end

let find_txn t id =
  match Hashtbl.find_opt t.txns id with
  | Some txn -> txn
  | None ->
      (* Covered/commit without an explicit begin: adopt era 0 so every
         recorded store is in scope. *)
      let txn = { begin_era = 0; covered = [] } in
      Hashtbl.replace t.txns id txn;
      txn

let drop_txn t id =
  Hashtbl.remove t.txns id;
  if Hashtbl.length t.txns = 0 then begin
    t.unprotected <- [];
    t.fresh <- []
  end

let on_covered t cover_site ~txn:id ~addr ~len =
  let txn = find_txn t id in
  if enabled t R4_undo_protocol then begin
    let lo = addr and hi = addr + len in
    let remaining = ref [] in
    List.iter
      (fun ((slo, shi, era, ssite) as entry) ->
        if era >= txn.begin_era && shi > lo && slo < hi then begin
          let llo, _ = lines_of (max slo lo) 1 in
          emit t ~rule:R4_undo_protocol ~severity:Error ~site:ssite ~line:llo
            (Printf.sprintf
               "in-place store [%#x,%#x) by %s precedes its undo entry (covered at %s)" slo shi
               (Site.to_string ssite) (Site.to_string cover_site));
          List.iter
            (fun (rlo, rhi) -> remaining := (rlo, rhi, era, ssite) :: !remaining)
            (subtract (slo, shi) (lo, hi))
        end
        else remaining := entry :: !remaining)
      t.unprotected;
    t.unprotected <- !remaining
  end;
  txn.covered <- (addr, addr + len) :: txn.covered

let on_commit t commit_site ~txn:id =
  (match Hashtbl.find_opt t.txns id with
  | None -> ()
  | Some txn ->
      if enabled t R1_missing_flush || enabled t R5_commit_order then
        List.iter
          (fun (lo, hi) ->
            let llo, lhi = lines_of lo (hi - lo) in
            for line = llo to lhi do
              match Hashtbl.find_opt t.shadow line with
              | None -> ()
              | Some store_site ->
                  if Hashtbl.mem t.flushed line then begin
                    if enabled t R5_commit_order then
                      emit t ~rule:R5_commit_order ~severity:Error ~site:store_site ~line
                        (Printf.sprintf
                           "covered line flushed but not fenced when %s persisted the commit \
                            record"
                           (Site.to_string commit_site))
                  end
                  else if enabled t R1_missing_flush then
                    emit t ~rule:R1_missing_flush ~severity:Error ~site:store_site ~line
                      (Printf.sprintf
                         "covered line still dirty when %s persisted the commit record"
                         (Site.to_string commit_site))
            done)
          txn.covered);
  drop_txn t id

let on_protocol t site (p : Device.protocol) =
  match p with
  | Txn_begin { txn } ->
      t.era <- t.era + 1;
      Hashtbl.replace t.txns txn { begin_era = t.era; covered = [] }
  | Covered { txn; addr; len } -> on_covered t site ~txn ~addr ~len
  | Fresh { addr; len } ->
      if Hashtbl.length t.txns > 0 then begin
        t.fresh <- (addr, addr + len) :: t.fresh;
        (* Exempt retroactively too: annotation and memset order is the
           caller's choice. *)
        t.unprotected <-
          List.concat_map
            (fun (lo, hi, era, site) ->
              List.map (fun (l, h) -> (l, h, era, site)) (subtract (lo, hi) (addr, addr + len)))
            t.unprotected
      end
  | Txn_commit { txn } -> on_commit t site ~txn
  | Txn_abort { txn } -> drop_txn t txn
  | Recovery_begin -> t.recovering <- true
  | Recovery_end -> t.recovering <- false

let on_event t _cpu site (ev : Device.event) =
  match ev with
  | Store { off; len; nt } -> if len > 0 then on_store t site ~off ~len ~nt
  | Load { off; len } -> if len > 0 then on_load t site ~off ~len
  | Flush { off; len } -> if len > 0 then on_flush t site ~off ~len
  | Fence -> on_fence t
  | Protocol p -> on_protocol t site p

let attach ?(strict = false) ?(rules = all_rules) dev =
  let enabled = Array.make 6 false in
  List.iter (fun r -> enabled.(rule_code r) <- true) rules;
  let t =
    {
      dev;
      hook = None;
      strict;
      enabled;
      shadow = Hashtbl.create 1024;
      flushed = Hashtbl.create 256;
      txns = Hashtbl.create 8;
      era = 0;
      unprotected = [];
      fresh = [];
      recovering = false;
      diags_rev = [];
      error_count = 0;
      seen = Hashtbl.create 64;
      redundant = Hashtbl.create 32;
    }
  in
  t.hook <- Some (Device.add_event_hook dev (on_event t));
  t

let detach t =
  match t.hook with
  | Some id ->
      Device.remove_event_hook t.dev id;
      t.hook <- None
  | None -> ()

let diags t = List.rev t.diags_rev
let error_count t = t.error_count

(* End-of-run checks: R2 for lines left flushed-but-unfenced (a forgotten
   sfence; plain dirty lines are allowed — un-synced data is legal), plus
   the aggregated R3 per-site redundant-flush counts. *)
let finish t =
  (* Sorted traversals: the report order must not depend on bucket order. *)
  Hashtbl.fold (fun line () acc -> line :: acc) t.flushed []
  |> List.sort Int.compare
  |> List.iter (fun line ->
         match Hashtbl.find_opt t.shadow line with
         | None -> ()
         | Some store_site ->
             emit t ~rule:R2_missing_fence ~severity:Error ~site:store_site ~line
               (Printf.sprintf "line flushed by %s never fenced before unmount"
                  (Site.to_string store_site)));
  Hashtbl.fold (fun site v acc -> (site, v) :: acc) t.redundant []
  |> List.sort (fun (a, _) (b, _) -> String.compare (Site.to_string a) (Site.to_string b))
  |> List.iter
       (fun (site, (n, first_line)) ->
      let d =
        {
          rule = R3_redundant_flush;
          severity = Warning;
          site;
          line = first_line;
          count = !n;
          detail =
            Printf.sprintf "%d flush(es) of clean or already-flushed lines (perf)" !n;
        }
      in
      t.diags_rev <- d :: t.diags_rev);
  Hashtbl.reset t.redundant;
  diags t

let with_device ?strict ?rules dev f =
  let t = attach ?strict ?rules dev in
  match f t with
  | v ->
      let ds = finish t in
      detach t;
      (v, ds)
  | exception e ->
      detach t;
      raise e

let summary ds =
  List.fold_left
    (fun acc d ->
      let n = try List.assoc d.rule acc with Not_found -> 0 in
      (d.rule, n + d.count) :: List.remove_assoc d.rule acc)
    [] ds
  |> List.sort (fun (a, _) (b, _) -> compare (rule_code a) (rule_code b))
