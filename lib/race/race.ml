open Repro_util
module Device = Repro_pmem.Device
module Sched = Repro_sched.Sched
module Stats = Repro_stats.Stats

(* Dynamic race detection over the cooperative scheduler.

   The deterministic simulator executes fibers one at a time, so no
   interleaving ever corrupts state in simulation — which is exactly how
   it can hide races that would be real on hardware where the per-CPU
   threads run concurrently.  The detector therefore checks the
   {e discipline}, not the outcome: two accesses to the same shared
   location from different simulated CPUs, at least one a write, are a
   race unless ordered by the happens-before relation (program order plus
   lock release→acquire edges), and shared mutable state should be
   consistently protected by at least one common lock.

   Two passes run simultaneously over the same access stream:

   - FastTrack-style happens-before: each thread and mutex carries a
     vector clock; a release copies the thread clock into the mutex, an
     acquire joins it back, and each location remembers its last-write
     epoch and per-thread read clocks.  An access that is not ordered
     after the location's conflicting accesses is reported as [Hb].
   - Eraser-style lockset: each location refines the intersection of
     locks held across accesses once it becomes shared; a shared-modified
     location whose candidate set goes empty is reported as [Lockset]
     even when this particular schedule happened to order the accesses.

   Locations come from two streams: PM device events (tagged with the
   accessing CPU by {!Repro_pmem.Device}, keyed by cache-line-sized
   granule) and {!Repro_sched.Sched.access} annotations on shared DRAM
   structures (allocator pools, journal cursors, DRAM indexes). *)

(* ------------------------------------------------------------------ *)
(* Vector clocks, grown on demand (thread ids are small and dense). *)

module Vc = struct
  type t = { mutable a : int array }

  let create () = { a = Array.make 8 0 }

  let ensure t n =
    if n >= Array.length t.a then begin
      let b = Array.make (max (n + 1) (2 * Array.length t.a)) 0 in
      Array.blit t.a 0 b 0 (Array.length t.a);
      t.a <- b
    end

  let get t i = if i < Array.length t.a then t.a.(i) else 0

  let set t i v =
    ensure t i;
    t.a.(i) <- v

  let join dst src = Array.iteri (fun i v -> if v > get dst i then set dst i v) src.a
  let copy src = { a = Array.copy src.a }
end

(* ------------------------------------------------------------------ *)

type kind = Hb | Lockset

type access_info = {
  a_thread : int;
  a_site : string;
  a_locks : int list; (* sorted mutex ids held at the access *)
  a_write : bool;
}

type race = {
  r_kind : kind;
  r_loc : string;
  r_first : access_info;
  r_second : access_info;
  r_seed : int option; (* schedule seed, filled by check/explore *)
}

let pp_locks = function
  | [] -> "{}"
  | locks -> "{" ^ String.concat "," (List.map (fun i -> "m" ^ string_of_int i) locks) ^ "}"

let kind_name = function Hb -> "happens-before" | Lockset -> "lockset"

let race_to_string r =
  let pp a =
    Printf.sprintf "%s %s by thread %d holding %s"
      (if a.a_write then "write" else "read")
      a.a_site a.a_thread (pp_locks a.a_locks)
  in
  Printf.sprintf "%s race on %s: %s vs %s%s" (kind_name r.r_kind) r.r_loc (pp r.r_first)
    (pp r.r_second)
    (match r.r_seed with
    | Some s -> Printf.sprintf " [replay: racecheck --seed %d]" s
    | None -> " [schedule: earliest-clock]")

(* ------------------------------------------------------------------ *)

type loc_key = Pm of int (* granule index *) | Obj of string

type eraser = Virgin | Exclusive of int | Shared | Shared_modified

type loc = {
  mutable w_thread : int; (* last-write epoch; -1 = never written *)
  mutable w_clock : int;
  mutable w_info : access_info option;
  r_vc : Vc.t; (* per-thread read clocks *)
  mutable r_info : (int * access_info) list; (* last read per thread *)
  mutable eraser : eraser;
  mutable lockset : int list; (* meaningful once shared *)
  mutable last : access_info option; (* most recent access, for lockset reports *)
}

type tstate = { vc : Vc.t; mutable locks : int list (* acquisition order, innermost first *) }

type t = {
  dev : Device.t;
  mutable hook : Device.hook_id option;
  granularity : int;
  track_loads : bool;
  threads : (int, tstate) Hashtbl.t;
  mutexes : (int, Vc.t) Hashtbl.t;
  locs : (loc_key, loc) Hashtbl.t;
  seen : (string, unit) Hashtbl.t; (* report dedup *)
  mutable races_rev : race list;
  mutable n_races : int;
  mutable accesses : int;
}

let max_races = 200

let loc_name t = function
  | Obj o -> o
  | Pm g ->
      Printf.sprintf "pm:[%#x,%#x)" (g * t.granularity) ((g + 1) * t.granularity)

let tstate t thread =
  match Hashtbl.find_opt t.threads thread with
  | Some ts -> ts
  | None ->
      let ts = { vc = Vc.create (); locks = [] } in
      Vc.set ts.vc thread 1;
      Hashtbl.replace t.threads thread ts;
      ts

let mutex_vc t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some v -> v
  | None ->
      let v = Vc.create () in
      Hashtbl.replace t.mutexes m v;
      v

let loc t key =
  match Hashtbl.find_opt t.locs key with
  | Some l -> l
  | None ->
      let l =
        {
          w_thread = -1;
          w_clock = 0;
          w_info = None;
          r_vc = Vc.create ();
          r_info = [];
          eraser = Virgin;
          lockset = [];
          last = None;
        }
      in
      Hashtbl.replace t.locs key l;
      l

let report t key ~kind ~first ~second =
  let name = loc_name t key in
  let sig_ =
    Printf.sprintf "%s|%s|%s|%b|%s|%b" (kind_name kind) name first.a_site first.a_write
      second.a_site second.a_write
  in
  if (not (Hashtbl.mem t.seen sig_)) && t.n_races < max_races then begin
    Hashtbl.replace t.seen sig_ ();
    t.n_races <- t.n_races + 1;
    t.races_rev <-
      { r_kind = kind; r_loc = name; r_first = first; r_second = second; r_seed = None }
      :: t.races_rev
  end

let rec inter a b =
  match a with [] -> [] | x :: tl -> if List.mem x b then x :: inter tl b else inter tl b

(* One access through both passes. *)
let on_loc_access t ~thread ~key ~write ~site =
  t.accesses <- t.accesses + 1;
  let ts = tstate t thread in
  let info =
    { a_thread = thread; a_site = site; a_locks = List.sort_uniq compare ts.locks; a_write = write }
  in
  let l = loc t key in
  let my = Vc.get ts.vc thread in
  let write_ordered () = l.w_thread < 0 || l.w_clock <= Vc.get ts.vc l.w_thread in
  (* FastTrack happens-before. *)
  (if write then begin
     (match l.w_info with
     | Some w when w.a_thread <> thread && not (write_ordered ()) ->
         report t key ~kind:Hb ~first:w ~second:info
     | _ -> ());
     List.iter
       (fun (u, ri) ->
         if u <> thread && Vc.get l.r_vc u > Vc.get ts.vc u then
           report t key ~kind:Hb ~first:ri ~second:info)
       l.r_info;
     l.w_thread <- thread;
     l.w_clock <- my;
     l.w_info <- Some info
   end
   else begin
     (match l.w_info with
     | Some w when w.a_thread <> thread && not (write_ordered ()) ->
         report t key ~kind:Hb ~first:w ~second:info
     | _ -> ());
     Vc.set l.r_vc thread my;
     l.r_info <- (thread, info) :: List.remove_assoc thread l.r_info
   end);
  (* Eraser lockset: refinement starts when the location becomes shared
     (tolerating the initialize-then-hand-off pattern), reports once a
     shared-modified location has no consistent lock. *)
  (match l.eraser with
  | Virgin -> l.eraser <- Exclusive thread
  | Exclusive u when u = thread -> ()
  | Exclusive _ ->
      l.lockset <- info.a_locks;
      l.eraser <- (if write then Shared_modified else Shared)
  | Shared ->
      l.lockset <- inter l.lockset info.a_locks;
      if write then l.eraser <- Shared_modified
  | Shared_modified -> l.lockset <- inter l.lockset info.a_locks);
  (match (l.eraser, l.lockset, l.last) with
  | Shared_modified, [], Some prev when prev.a_thread <> thread ->
      report t key ~kind:Lockset ~first:prev ~second:info
  | _ -> ());
  l.last <- Some info

(* PM device events, already tagged with the accessing CPU. *)
let on_device_event t cpu site (ev : Device.event) =
  if Sched.running () then
    match (ev, cpu) with
    | Device.Store { off; len; _ }, Some (c : Cpu.t) when len > 0 ->
        for g = off / t.granularity to (off + len - 1) / t.granularity do
          on_loc_access t ~thread:c.id ~key:(Pm g) ~write:true
            ~site:(Repro_pmem.Site.to_string site)
        done
    | Device.Load { off; len }, Some c when len > 0 && t.track_loads ->
        for g = off / t.granularity to (off + len - 1) / t.granularity do
          on_loc_access t ~thread:c.id ~key:(Pm g) ~write:false
            ~site:(Repro_pmem.Site.to_string site)
        done
    | _ -> ()

let monitor_of t : Sched.monitor =
  {
    on_spawn =
      (fun ~thread ->
        let ts = { vc = Vc.create (); locks = [] } in
        Vc.set ts.vc thread 1;
        Hashtbl.replace t.threads thread ts);
    on_finish = (fun ~thread:_ -> ());
    on_acquire =
      (fun ~thread ~mutex ->
        let ts = tstate t thread in
        ts.locks <- mutex :: ts.locks;
        Vc.join ts.vc (mutex_vc t mutex));
    on_release =
      (fun ~thread ~mutex ->
        let ts = tstate t thread in
        let rec remove_first = function
          | [] -> []
          | x :: tl -> if x = mutex then tl else x :: remove_first tl
        in
        ts.locks <- remove_first ts.locks;
        Hashtbl.replace t.mutexes mutex (Vc.copy ts.vc);
        Vc.set ts.vc thread (Vc.get ts.vc thread + 1));
    on_yield = (fun ~thread:_ -> ());
    on_access =
      (fun ~thread ~obj ~write ~site -> on_loc_access t ~thread ~key:(Obj obj) ~write ~site);
  }

let attach ?(granularity = Units.cacheline) ?(track_loads = true) dev =
  if granularity <= 0 then invalid_arg "Race.attach: non-positive granularity";
  let t =
    {
      dev;
      hook = None;
      granularity;
      track_loads;
      threads = Hashtbl.create 16;
      mutexes = Hashtbl.create 32;
      locs = Hashtbl.create 1024;
      seen = Hashtbl.create 32;
      races_rev = [];
      n_races = 0;
      accesses = 0;
    }
  in
  t.hook <- Some (Device.add_event_hook dev (on_device_event t));
  Sched.set_monitor (Some (monitor_of t));
  t

let detach t =
  (match t.hook with
  | Some id ->
      Device.remove_event_hook t.dev id;
      t.hook <- None
  | None -> ());
  Sched.set_monitor None;
  if Stats.enabled () then begin
    Stats.counter_add "race.accesses_checked" t.accesses;
    Stats.counter_add "race.races_found" t.n_races
  end

let races t = List.rev t.races_rev
let accesses_checked t = t.accesses
let races_found t = t.n_races

(* ------------------------------------------------------------------ *)
(* Schedule exploration.  A scenario builds fresh state per schedule so
   every run is independent; the schedule is fully determined by its
   seed, so any failure replays exactly. *)

type scenario = {
  sc_name : string;
  sc_threads : int;
  sc_prepare : unit -> Device.t * (Cpu.t -> unit);
}

let policy_of_seed seed : Sched.policy =
  if seed land 1 = 0 then Sched.Random_walk { seed } else Sched.Pct { seed }

let check ?granularity ?track_loads ?seed sc =
  let policy = match seed with None -> Sched.Earliest_clock | Some s -> policy_of_seed s in
  let dev, body = sc.sc_prepare () in
  let det = attach ?granularity ?track_loads dev in
  Fun.protect
    ~finally:(fun () -> detach det)
    (fun () -> ignore (Sched.run ~policy ~threads:sc.sc_threads body));
  List.map (fun r -> { r with r_seed = seed }) (races det)

type outcome = {
  o_name : string;
  o_schedules : int; (* explored schedules, including the earliest-clock baseline *)
  o_races : race list; (* every distinct race, each carrying its seed *)
  o_failing_seeds : int list; (* seeds whose schedule produced at least one race *)
}

let explore ?granularity ?track_loads ?(schedules = 50) ~seed sc =
  let rng = Rng.create seed in
  let seen = Hashtbl.create 32 in
  let all = ref [] in
  let failing = ref [] in
  (* Each schedule runs a fresh detector, so dedupe across schedules here:
     a race keeps the first seed that exposed it. *)
  let add races =
    List.iter
      (fun r ->
        let k =
          Printf.sprintf "%s|%s|%s|%b|%s|%b" (kind_name r.r_kind) r.r_loc r.r_first.a_site
            r.r_first.a_write r.r_second.a_site r.r_second.a_write
        in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          all := r :: !all
        end)
      races
  in
  add (check ?granularity ?track_loads sc);
  for _ = 1 to schedules do
    let s = Rng.int rng (1 lsl 30) in
    let races = check ?granularity ?track_loads ~seed:s sc in
    if races <> [] then failing := s :: !failing;
    add races
  done;
  if Stats.enabled () then Stats.counter_add "race.schedules_explored" (schedules + 1);
  {
    o_name = sc.sc_name;
    o_schedules = schedules + 1;
    o_races = List.rev !all;
    o_failing_seeds = List.rev !failing;
  }
