(** Dynamic data-race detector and schedule-exploration harness for the
    per-CPU concurrency model.

    The deterministic simulator runs one fiber at a time, so interleavings
    never corrupt state {e in simulation} — which is exactly how they can
    hide races that would be real on hardware.  The detector checks the
    discipline instead of the outcome, with two passes over one access
    stream:

    - {b FastTrack happens-before}: per-thread and per-mutex vector
      clocks, advanced at spawn and at lock release→acquire edges; each
      location keeps its last-write epoch and per-thread read clocks.  An
      access unordered with a prior conflicting access is an {!Hb} race.
    - {b Eraser lockset}: once a location is accessed by a second thread
      it keeps the intersection of lock sets held across accesses; a
      written location whose candidate set goes empty is a {!Lockset}
      race even when this particular schedule ordered the accesses.

    Locations come from PM device events (tagged with the accessing CPU,
    keyed by cache-line granule) and from {!Repro_sched.Sched.access}
    annotations on shared DRAM structures (allocator pools, journal
    cursors, DRAM indexes).

    {!explore} shakes a scenario under many seeded schedules
    ({!Repro_sched.Sched.policy} [Random_walk]/[Pct]); every reported
    race carries the seed that reproduces it, and {!check} [~seed]
    replays that single schedule. *)

type kind =
  | Hb  (** unordered under happens-before in the observed schedule *)
  | Lockset  (** no consistent lock protects the shared, written location *)

type access_info = {
  a_thread : int;  (** simulated CPU id *)
  a_site : string;  (** {!Repro_pmem.Site.t} label or annotation site *)
  a_locks : int list;  (** sorted {!Repro_sched.Sched.mutex_id}s held *)
  a_write : bool;
}

type race = {
  r_kind : kind;
  r_loc : string;  (** ["pm:[0x...,0x...)"] granule or annotated object name *)
  r_first : access_info;
  r_second : access_info;
  r_seed : int option;  (** schedule seed; [None] under [Earliest_clock] *)
}

val kind_name : kind -> string
val race_to_string : race -> string

(** {2 Detector lifecycle}

    For ad-hoc use; {!check} and {!explore} wrap this. *)

type t

val attach : ?granularity:int -> ?track_loads:bool -> Repro_pmem.Device.t -> t
(** Install the detector as a device event observer (composing with the
    sanitizer via {!Repro_pmem.Device.add_event_hook}) and as the
    scheduler monitor.  [granularity] (default one cache line) sets the
    PM location size; [track_loads] (default true) also checks read/write
    races on PM, not just write/write. *)

val detach : t -> unit
(** Remove both hooks and, when {!Repro_stats.Stats.enabled}, publish
    ["race.accesses_checked"] and ["race.races_found"] counters.
    Accumulated races remain readable. *)

val races : t -> race list
(** Distinct races in discovery order (deduplicated by location and site
    pair, capped). *)

val accesses_checked : t -> int
val races_found : t -> int

(** {2 Scenarios and schedule exploration} *)

type scenario = {
  sc_name : string;
  sc_threads : int;
  sc_prepare : unit -> Repro_pmem.Device.t * (Repro_util.Cpu.t -> unit);
      (** Build fresh device + thread body; called once per schedule so
          runs are independent. *)
}

val policy_of_seed : int -> Repro_sched.Sched.policy
(** Deterministic seed→policy mapping used by {!check} and {!explore}:
    even seeds explore with [Random_walk], odd with [Pct].  A reported
    seed therefore pins down the entire schedule. *)

val check :
  ?granularity:int -> ?track_loads:bool -> ?seed:int -> scenario -> race list
(** Run the scenario once under the detector — with the deterministic
    [Earliest_clock] schedule when [seed] is absent, or under
    [policy_of_seed seed] to replay an explored schedule — and return
    the races with [r_seed] filled in. *)

type outcome = {
  o_name : string;
  o_schedules : int;  (** schedules run, including the earliest-clock baseline *)
  o_races : race list;  (** distinct races across all schedules, each with its seed *)
  o_failing_seeds : int list;  (** seeds whose schedule produced at least one race *)
}

val explore :
  ?granularity:int -> ?track_loads:bool -> ?schedules:int -> seed:int -> scenario -> outcome
(** Run the earliest-clock baseline plus [schedules] (default 50) seeded
    schedules, deriving per-schedule seeds from [seed].  Bumps the
    ["race.schedules_explored"] counter when stats are enabled. *)
