open Repro_util
module Device = Repro_pmem.Device
module Sched = Repro_sched.Sched
module Journal = Repro_journal.Undo_journal
module Pool_alloc = Repro_alloc.Pool_alloc
module Site = Repro_pmem.Site

(* Durability-lint sites for the scenarios' own PM stores. *)
let site_journal_store = Site.v "scenario" "journal_store"
let site_shared_line = Site.v "scenario" "shared_line"

(* Concurrency scenarios exercised under the race detector.  The clean
   suite encodes the per-CPU discipline the paper's design relies on
   (per-CPU journals and allocator pools, shared state behind locks) and
   must stay silent under every explored schedule; the racy suite plants
   known discipline violations — an unlocked shared allocator, an
   unannotated shared PM line — that the detector must flag. *)

let threads = 3

(* Per-CPU undo journals: each thread runs transactions against its own
   journal and its own data page.  The only shared state is the global
   transaction counter, which takes its internal lock — the clean pattern
   of §3.6. *)
let journal_bytes = 32 * 1024
let data_base = threads * journal_bytes

let pcpu_journal =
  {
    Race.sc_name = "pcpu-journal";
    sc_threads = threads;
    sc_prepare =
      (fun () ->
        let size = data_base + (threads * Units.base_page) in
        let dev = Device.create ~cost:Device.Cost.free ~size () in
        let counter = Journal.Txn_counter.create () in
        let setup = Cpu.make ~id:0 () in
        let js =
          Array.init threads (fun c ->
              Journal.format dev setup counter ~off:(c * journal_bytes) ~entries:64
                ~copy_bytes:4096)
        in
        let body (cpu : Cpu.t) =
          let j = js.(cpu.id) in
          let addr = data_base + (cpu.id * Units.base_page) in
          for i = 1 to 4 do
            let txn = Journal.begin_txn j cpu ~reserve:2 in
            Journal.log_range j cpu txn ~addr ~len:64;
            Device.with_site dev site_journal_store (fun () ->
                Device.write_u64 dev cpu ~off:addr (Int64.of_int i));
            Sched.yield ();
            Journal.commit j cpu txn;
            Sched.yield ()
          done
        in
        (dev, body));
  }

(* Per-CPU allocator pools: each pool is large enough that no thread ever
   steals, so every pool stays thread-exclusive. *)
let pcpu_alloc =
  {
    Race.sc_name = "pcpu-alloc";
    sc_threads = threads;
    sc_prepare =
      (fun () ->
        let dev = Device.create ~cost:Device.Cost.free ~size:Units.base_page () in
        let stripe = 4 * Units.mib in
        let regions = Array.init threads (fun c -> (c * stripe, stripe)) in
        let alloc =
          Pool_alloc.create
            { per_cpu = true; policy = First_fit; align_exact_2m = false; normalize_pow2 = false }
            ~cpus:threads ~regions
        in
        let body (cpu : Cpu.t) =
          for _ = 1 to 8 do
            (match Pool_alloc.alloc alloc ~cpu:cpu.id ~len:(2 * Units.base_page) with
            | Some exts ->
                Sched.yield ();
                List.iter
                  (fun (e : Pool_alloc.extent) -> Pool_alloc.free alloc ~off:e.off ~len:e.len)
                  exts
            | None -> ());
            Sched.yield ()
          done
        in
        (dev, body));
  }

(* Shared DRAM counter consistently protected by one mutex, with a yield
   inside the critical section so schedules genuinely interleave; the
   release→acquire edges order every access. *)
let locked_counter =
  {
    Race.sc_name = "locked-counter";
    sc_threads = threads;
    sc_prepare =
      (fun () ->
        let dev = Device.create ~cost:Device.Cost.free ~size:Units.base_page () in
        let m = Sched.create_mutex ~name:"scenarios:m" () in
        let counter = ref 0 in
        let body (_ : Cpu.t) =
          for _ = 1 to 5 do
            Sched.with_lock m (fun () ->
                Sched.access ~obj:"demo.counter" ~write:false ~site:"locked_counter.read";
                let v = !counter in
                Sched.yield ();
                Sched.access ~obj:"demo.counter" ~write:true ~site:"locked_counter.write";
                counter := v + 1);
            Sched.yield ()
          done
        in
        (dev, body));
  }

(* Planted bug: one {e shared} allocator pool ([per_cpu = false]) updated
   from every CPU with no lock at all — the unlocked cross-CPU update the
   detector exists to catch. *)
let unlocked_alloc =
  {
    Race.sc_name = "unlocked-alloc";
    sc_threads = threads;
    sc_prepare =
      (fun () ->
        let dev = Device.create ~cost:Device.Cost.free ~size:Units.base_page () in
        let regions = Array.init threads (fun c -> (c * Units.mib, Units.mib)) in
        let alloc =
          Pool_alloc.create
            { per_cpu = false; policy = First_fit; align_exact_2m = false; normalize_pow2 = false }
            ~cpus:threads ~regions
        in
        let body (cpu : Cpu.t) =
          for _ = 1 to 4 do
            (match Pool_alloc.alloc alloc ~cpu:cpu.id ~len:Units.base_page with
            | Some exts ->
                Sched.yield ();
                List.iter
                  (fun (e : Pool_alloc.extent) -> Pool_alloc.free alloc ~off:e.off ~len:e.len)
                  exts
            | None -> ());
            Sched.yield ()
          done
        in
        (dev, body));
  }

(* Planted bug: every thread stores to the same PM cache line without
   synchronisation; caught through the device event stream rather than
   an annotation. *)
let pm_shared_line =
  {
    Race.sc_name = "pm-shared-line";
    sc_threads = threads;
    sc_prepare =
      (fun () ->
        let dev = Device.create ~cost:Device.Cost.free ~size:Units.base_page () in
        let body (cpu : Cpu.t) =
          for i = 1 to 3 do
            Device.with_site dev site_shared_line (fun () ->
                Device.write_u64 dev cpu ~off:0 (Int64.of_int ((cpu.id * 10) + i)));
            Sched.yield ()
          done
        in
        (dev, body));
  }

let clean = [ pcpu_journal; pcpu_alloc; locked_counter ]
let racy = [ unlocked_alloc; pm_shared_line ]
let all = clean @ racy

let find name = List.find_opt (fun s -> s.Race.sc_name = name) all
