(** Concurrency scenarios for the race detector.

    The {!clean} suite encodes the per-CPU discipline the design relies
    on and must stay silent under every explored schedule; the {!racy}
    suite plants known violations the detector must flag. *)

val pcpu_journal : Race.scenario
(** Per-CPU undo journals + private data pages; only the (locked) global
    transaction counter is shared.  Clean. *)

val pcpu_alloc : Race.scenario
(** Per-CPU allocator pools sized so no stealing occurs.  Clean. *)

val locked_counter : Race.scenario
(** Shared DRAM counter always accessed under one mutex.  Clean. *)

val unlocked_alloc : Race.scenario
(** One shared allocator pool updated from every CPU without a lock.
    Racy: the detector must report it under any schedule. *)

val pm_shared_line : Race.scenario
(** Every thread stores to the same PM cache line unsynchronised.  Racy,
    caught via the device event stream. *)

val clean : Race.scenario list
val racy : Race.scenario list
val all : Race.scenario list
val find : string -> Race.scenario option
