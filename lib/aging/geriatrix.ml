open Repro_util
open Repro_vfs

type profile = { profile_name : string; size_dist : Dist.t; dirs : int }

(* Agrawal et al.: small files are roughly log-normal with a median of a
   few KB; a sparse population of multi-MB files holds most bytes.  The
   mixture weight is calibrated so >=2MB files carry ~56% of capacity. *)
let agrawal =
  {
    profile_name = "agrawal";
    size_dist =
      Dist.mixture
        [
          (0.989, Dist.lognormal ~mu:(log 16384.) ~sigma:1.6 ~min:256 ~max:(Units.huge_page - 1));
          (0.011, Dist.lognormal ~mu:(log (8. *. float_of_int Units.mib)) ~sigma:0.7
             ~min:Units.huge_page ~max:(64 * Units.mib));
        ];
    dirs = 32;
  }

(* Wang's HPC study: checkpoint-style big files dominate capacity, plus a
   blizzard of small metadata-ish files that chew up aligned regions. *)
let wang_hpc =
  {
    profile_name = "wang-hpc";
    size_dist =
      Dist.mixture
        [
          (0.90, Dist.lognormal ~mu:(log 8192.) ~sigma:2.0 ~min:64 ~max:(Units.huge_page - 1));
          (0.10, Dist.lognormal ~mu:(log (16. *. float_of_int Units.mib)) ~sigma:0.8
             ~min:Units.huge_page ~max:(128 * Units.mib));
        ];
    dirs = 16;
  }

type report = {
  files_created : int;
  files_deleted : int;
  bytes_written : int;
  live_files : int;
  utilization : float;
  aligned_free_2m : int;
  free_frag_ratio : float;
}

let census (Fs_intf.Handle ((module F), fs)) =
  let s = F.statfs fs in
  let ratio =
    if s.Types.free = 0 then 1.0
    else float_of_int (s.aligned_free_2m * Units.huge_page) /. float_of_int s.free
  in
  (min 1.0 ratio, s.aligned_free_2m)

let utilization_of (Fs_intf.Handle ((module F), fs)) = Types.utilization (F.statfs fs)

(* Growable array of live files for O(1) random deletion. *)
type live = { mutable paths : string array; mutable n : int }

let live_add l p =
  if l.n >= Array.length l.paths then begin
    let bigger = Array.make (max 64 (2 * Array.length l.paths)) "" in
    Array.blit l.paths 0 bigger 0 l.n;
    l.paths <- bigger
  end;
  l.paths.(l.n) <- p;
  l.n <- l.n + 1

let live_remove_at l i =
  let p = l.paths.(i) in
  l.paths.(i) <- l.paths.(l.n - 1);
  l.n <- l.n - 1;
  p

let age (Fs_intf.Handle ((module F), fs)) ?(seed = 0xA6E) ?(write_chunk = 16 * Units.mib)
    ~profile ~target_util ~churn_bytes () =
  if target_util <= 0. || target_util >= 1. then invalid_arg "Geriatrix.age: bad target";
  let rng = Rng.create seed in
  (* Aging runs across all logical CPUs (Geriatrix is multi-threaded), so
     per-CPU pools age the way they would in production. *)
  let cpus = Array.init 8 (fun id -> Cpu.make ~id ()) in
  let op_count = ref 0 in
  let next_cpu () =
    incr op_count;
    cpus.(!op_count mod Array.length cpus)
  in
  let cpu = cpus.(0) in
  let chunk = String.make write_chunk 'g' in
  (* Directory fan-out. *)
  for d = 0 to profile.dirs - 1 do
    let path = Printf.sprintf "/g%d" d in
    if not (F.exists fs cpu path) then F.mkdir fs cpu path
  done;
  let live = { paths = Array.make 1024 ""; n = 0 } in
  let created = ref 0 and deleted = ref 0 and written = ref 0 in
  let next_id = ref 0 in
  let capacity = (F.statfs fs).Types.capacity in
  let delete_random () =
    if live.n > 0 then begin
      (* File lifetimes are heavily skewed: most files die young (Agrawal
         et al. 2007), so deletions favour recently-created files.  This
         concentrates churn in recently-allocated regions, as in real
         traces. *)
      let i =
        if live.n >= 8 && Rng.bool rng then live.n - 1 - Rng.int rng (live.n / 8)
        else Rng.int rng live.n
      in
      let path = live_remove_at live i in
      (try F.unlink fs (next_cpu ()) path with Types.Error (ENOENT, _) -> ());
      incr deleted
    end
  in
  let create_one size =
    let path = Printf.sprintf "/g%d/f%d" (Rng.int rng profile.dirs) !next_id in
    incr next_id;
    let cpu = next_cpu () in
    match F.create fs cpu path with
    | exception Types.Error (ENOSPC, _) -> false
    | fd ->
        let ok = ref true in
        let off = ref 0 in
        (try
           while !off < size do
             let n = min write_chunk (size - !off) in
             (* pwrite_sub: one shared buffer for the whole campaign.  A
                String.sub per chunk allocates the payload again — at
                churn volumes that is tens of GB through the major heap,
                and it dominated aging wall time. *)
             ignore (F.pwrite_sub fs cpu fd ~off:!off ~src:chunk ~src_off:0 ~len:n);
             written := !written + n;
             off := !off + n
           done
         with Types.Error (ENOSPC, _) -> ok := false);
        F.fsync fs cpu fd;
        F.close fs cpu fd;
        if !ok then begin
          live_add live path;
          incr created;
          true
        end
        else begin
          (* Cleanup of a possibly half-created file: only its absence is
             benign; ENOSPC etc. must not be masked here. *)
          (try F.unlink fs cpu path with Types.Error (ENOENT, _) -> ());
          false
        end
  in
  let util () = Types.utilization (F.statfs fs) in
  (* Phase 1: fill to target utilization. *)
  let stall = ref 0 in
  while util () < target_util && !stall < 64 do
    let size = Dist.sample profile.size_dist rng in
    let size = min size (max Units.base_page (capacity / 8)) in
    if create_one size then stall := 0
    else begin
      incr stall;
      (* Out of space before the target: free a little and retry. *)
      delete_random ()
    end
  done;
  (* Phase 2: churn at the target level — delete enough to make room,
     then recreate, preserving utilization. *)
  while !written < churn_bytes do
    let size = Dist.sample profile.size_dist rng in
    let size = min size (max Units.base_page (capacity / 8)) in
    (* Make room: keep utilization near the target. *)
    let guard = ref 0 in
    while
      (util () > target_util
      || float_of_int ((F.statfs fs).Types.free) < 1.5 *. float_of_int size)
      && live.n > 0 && !guard < 10_000
    do
      delete_random ();
      incr guard
    done;
    if not (create_one size) then delete_random ()
  done;
  let ratio, aligned = census (Fs_intf.Handle ((module F), fs)) in
  {
    files_created = !created;
    files_deleted = !deleted;
    bytes_written = !written;
    live_files = live.n;
    utilization = util ();
    aligned_free_2m = aligned;
    free_frag_ratio = ratio;
  }
