(** Unified metrics registry and span tracing.

    Generalizes {!Repro_util.Counters} (flat name -> int) and
    {!Repro_util.Histogram} (one unnamed instance) into a registry of
    named, labelled instruments:

    - {b counters}: monotonically growing event counts
      (journal commits, allocator promotes, device fences);
    - {b gauges}: instantaneous levels that move both ways
      (free aligned extents, hole bytes, journal occupancy);
    - {b histograms}: log-bucketed latency distributions
      (per-op simulated latency).

    Instruments are identified by [name] plus a sorted label list, so
    the same metric can be split by site or operation
    ([pm.fences{site="journal.commit"}]).

    {b Spans} attribute simulated-clock time to operations: wrapping an
    operation in {!span} records its latency histogram, a count, and the
    {e self} time (elapsed minus time spent in nested spans), giving the
    per-layer attribution SplitFS-style analyses need.  Span nesting is
    tracked per calling CPU, so cooperative {!Repro_sched.Sched} fibers
    interleave safely.

    A process-wide {!global} registry backs the bench harness and CLI.
    Hot-path instrumentation (device stores, allocator gauges) is gated
    on {!enabled}, which defaults to [false] so unit tests and library
    users pay one boolean check per access; the bench harness and the
    [winefs_cli stats] subcommand switch it on.  Explicitly-created
    registries ignore the flag. *)

open Repro_util

type labels = (string * string) list
(** Sorted [(key, value)] pairs; order does not matter at call sites. *)

module Registry : sig
  type t

  val create : unit -> t
  val reset : t -> unit
  (** Drop every instrument and span frame; makespan returns to 0. *)

  val makespan_ns : t -> int
  (** Largest simulated-clock timestamp observed at a span end or via
      {!observe_clock}. *)

  val generation : t -> int
  (** Bumped by {!reset}: instrument handles resolved under an older
      generation point into dropped refs, so per-call-site caches (the
      PM device's per-site counter cells) revalidate against this. *)

  val observe_clock : t -> Cpu.t -> unit
  (** Fold a CPU clock into the makespan without recording a span. *)
end

val global : Registry.t

val set_enabled : bool -> unit
(** Enable/disable hot-path instrumentation of the {!global} registry. *)

val enabled : unit -> bool

val reset : unit -> unit
(** [Registry.reset global]. *)

module Counter : sig
  type t

  val v : ?registry:Registry.t -> ?labels:labels -> string -> t
  (** Get-or-create; the same (name, labels) pair always returns the same
      instrument. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val v : ?registry:Registry.t -> ?labels:labels -> string -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Hist : sig
  type t

  val v : ?registry:Registry.t -> ?labels:labels -> string -> t
  val observe : t -> int -> unit
  val count : t -> int
  val percentile : t -> float -> int
  (** 0 when empty (see {!Repro_util.Histogram.percentile}). *)
end

val counter_add : ?registry:Registry.t -> ?labels:labels -> string -> int -> unit
(** One-shot lookup + add, for call sites whose labels vary per call
    (e.g. the ambient device {!Repro_pmem.Site}). *)

val gauge_set : ?registry:Registry.t -> ?labels:labels -> string -> int -> unit
val observe : ?registry:Registry.t -> ?labels:labels -> string -> int -> unit

val span : ?registry:Registry.t -> op:string -> Cpu.t -> (unit -> 'a) -> 'a
(** Run the thunk and record, under the [op] label:
    [op.latency_ns{op}] (histogram of simulated elapsed ns),
    [op.count{op}], [op.total_ns{op}] and [op.self_ns{op}] (elapsed minus
    nested-span time).  On the global registry with {!enabled} off this
    is just the thunk.  Exceptions still close the span. *)

(** {2 Export} *)

type hist_summary = {
  h_count : int;
  h_mean : float;
  h_min : int;
  h_max : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_p999 : int;
}

type snapshot = {
  s_counters : (string * labels * int) list;
  s_gauges : (string * labels * int) list;
  s_hists : (string * labels * hist_summary) list;
  s_makespan_ns : int;
}

val snapshot : ?registry:Registry.t -> unit -> snapshot
(** Sorted by (name, labels) so output is deterministic. *)

val to_json : ?registry:Registry.t -> unit -> Json.t
val pp : Format.formatter -> Registry.t -> unit
(** Human-readable dump (the [winefs_cli stats] output). *)
