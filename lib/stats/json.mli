(** Minimal JSON document type with an emitter and a strict parser.

    The bench harness writes machine-readable [BENCH_*.json] artifacts and
    the smoke test re-parses them; no external JSON dependency is
    available in the build image, so this module carries both directions.
    Integers are kept distinct from floats on emit (counters must
    round-trip exactly); the parser returns [Int] for numbers with no
    fraction or exponent. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default true) pretty-prints with 2-space
    indentation so artifacts diff cleanly across PRs. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage is an error.
    Errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int] directly, or an integral [Float]. *)
