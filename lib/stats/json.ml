type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if not (Float.is_finite f) then Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            emit (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the raw bytes.                       *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec walk () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "short \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with Failure _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* UTF-8 encode the code point (BMP only). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            walk ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            walk ()
    in
    walk ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let has c = String.contains tok c in
    if has '.' || has 'e' || has 'E' then
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
