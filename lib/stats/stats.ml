open Repro_util

type labels = (string * string) list

let canon_labels labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Instrument identity: name plus canonical label rendering. *)
let key_of ~name ~labels =
  match labels with
  | [] -> name
  | l ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) (canon_labels l))
      ^ "}"

type instrument =
  | I_counter of int ref
  | I_gauge of int ref
  | I_hist of Histogram.t

type frame = { f_op : string; f_start : int; mutable f_child_ns : int }

module Registry = struct
  type t = {
    instruments : (string, string * labels * instrument) Hashtbl.t;
    spans : (int, frame list ref) Hashtbl.t; (* cpu id -> span stack *)
    mutable makespan_ns : int;
    mutable generation : int;
        (* bumped on [reset]: instrument handles resolved before a reset
           point into dropped refs, so caches key on the generation *)
  }

  let create () =
    { instruments = Hashtbl.create 64; spans = Hashtbl.create 8; makespan_ns = 0; generation = 0 }

  let reset t =
    Hashtbl.reset t.instruments;
    Hashtbl.reset t.spans;
    t.makespan_ns <- 0;
    t.generation <- t.generation + 1

  let generation t = t.generation

  let makespan_ns t = t.makespan_ns

  let observe_clock t (cpu : Cpu.t) =
    let now = Simclock.now cpu.clock in
    if now > t.makespan_ns then t.makespan_ns <- now

  let find t ~name ~labels ~make =
    let key = key_of ~name ~labels in
    match Hashtbl.find_opt t.instruments key with
    | Some (_, _, i) -> i
    | None ->
        let i = make () in
        Hashtbl.add t.instruments key (name, canon_labels labels, i);
        i
end

let global = Registry.create ()

let enabled_flag = ref false
let set_enabled v = enabled_flag := v
let enabled () = !enabled_flag
let reset () = Registry.reset global

let mismatch name = invalid_arg (Printf.sprintf "Stats: %s registered with another type" name)

module Counter = struct
  type t = int ref

  let v ?(registry = global) ?(labels = []) name =
    match Registry.find registry ~name ~labels ~make:(fun () -> I_counter (ref 0)) with
    | I_counter r -> r
    | _ -> mismatch name

  let incr t = Stdlib.incr t
  let add t n = t := !t + n
  let get t = !t
end

module Gauge = struct
  type t = int ref

  let v ?(registry = global) ?(labels = []) name =
    match Registry.find registry ~name ~labels ~make:(fun () -> I_gauge (ref 0)) with
    | I_gauge r -> r
    | _ -> mismatch name

  let set t n = t := n
  let add t n = t := !t + n
  let get t = !t
end

module Hist = struct
  type t = Histogram.t

  (* Registry histograms are bucketed (not exact): bench runs observe
     millions of latencies and the registry must stay bounded. *)
  let v ?(registry = global) ?(labels = []) name =
    match
      Registry.find registry ~name ~labels ~make:(fun () ->
          I_hist (Histogram.create ~exact:false ()))
    with
    | I_hist h -> h
    | _ -> mismatch name

  let observe t v = Histogram.add t v
  let count t = Histogram.count t
  let percentile t p = Histogram.percentile t p
end

let counter_add ?(registry = global) ?(labels = []) name n =
  Counter.add (Counter.v ~registry ~labels name) n

let gauge_set ?(registry = global) ?(labels = []) name n =
  Gauge.set (Gauge.v ~registry ~labels name) n

let observe ?(registry = global) ?(labels = []) name v =
  Hist.observe (Hist.v ~registry ~labels name) v

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let span_stack (registry : Registry.t) (cpu : Cpu.t) =
  match Hashtbl.find_opt registry.spans cpu.id with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add registry.spans cpu.id s;
      s

let span ?(registry = global) ~op (cpu : Cpu.t) f =
  if registry == global && not !enabled_flag then f ()
  else begin
    let stack = span_stack registry cpu in
    let fr = { f_op = op; f_start = Simclock.now cpu.clock; f_child_ns = 0 } in
    stack := fr :: !stack;
    let finish () =
      let now = Simclock.now cpu.clock in
      let elapsed = max 0 (now - fr.f_start) in
      (stack :=
         match !stack with
         | _ :: rest -> rest
         | [] -> []);
      (match !stack with
      | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + elapsed
      | [] -> ());
      let labels = [ ("op", op) ] in
      observe ~registry ~labels "op.latency_ns" elapsed;
      counter_add ~registry ~labels "op.count" 1;
      counter_add ~registry ~labels "op.total_ns" elapsed;
      counter_add ~registry ~labels "op.self_ns" (max 0 (elapsed - fr.f_child_ns));
      if now > registry.makespan_ns then registry.makespan_ns <- now
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

type hist_summary = {
  h_count : int;
  h_mean : float;
  h_min : int;
  h_max : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
  h_p999 : int;
}

type snapshot = {
  s_counters : (string * labels * int) list;
  s_gauges : (string * labels * int) list;
  s_hists : (string * labels * hist_summary) list;
  s_makespan_ns : int;
}

let summarize h =
  {
    h_count = Histogram.count h;
    h_mean = Histogram.mean h;
    h_min = Histogram.min_value h;
    h_max = Histogram.max_value h;
    h_p50 = Histogram.percentile h 50.;
    h_p90 = Histogram.percentile h 90.;
    h_p99 = Histogram.percentile h 99.;
    h_p999 = Histogram.percentile h 99.9;
  }

let snapshot ?(registry = global) () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) registry.Registry.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (key, (name, labels, i)) ->
         match i with
         | I_counter r -> counters := (key, (name, labels, !r)) :: !counters
         | I_gauge r -> gauges := (key, (name, labels, !r)) :: !gauges
         | I_hist h -> hists := (key, (name, labels, summarize h)) :: !hists);
  let by_key l = List.sort (fun (a, _) (b, _) -> String.compare a b) l |> List.map snd in
  {
    s_counters = by_key !counters;
    s_gauges = by_key !gauges;
    s_hists = by_key !hists;
    s_makespan_ns = registry.makespan_ns;
  }

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json ?(registry = global) () =
  let s = snapshot ~registry () in
  let scalar (name, labels, v) =
    Json.Obj [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Int v) ]
  in
  let hist (name, labels, h) =
    Json.Obj
      [
        ("name", Json.String name);
        ("labels", labels_json labels);
        ("count", Json.Int h.h_count);
        ("mean", Json.Float h.h_mean);
        ("min", Json.Int h.h_min);
        ("max", Json.Int h.h_max);
        ("p50", Json.Int h.h_p50);
        ("p90", Json.Int h.h_p90);
        ("p99", Json.Int h.h_p99);
        ("p999", Json.Int h.h_p999);
      ]
  in
  Json.Obj
    [
      ("counters", Json.List (List.map scalar s.s_counters));
      ("gauges", Json.List (List.map scalar s.s_gauges));
      ("histograms", Json.List (List.map hist s.s_hists));
      ("makespan_ns", Json.Int s.s_makespan_ns);
    ]

let pp_labels ppf labels =
  if labels <> [] then
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let pp ppf registry =
  let s = snapshot ~registry () in
  Format.fprintf ppf "== counters ==@.";
  List.iter
    (fun (name, labels, v) -> Format.fprintf ppf "  %s%a = %d@." name pp_labels labels v)
    s.s_counters;
  Format.fprintf ppf "== gauges ==@.";
  List.iter
    (fun (name, labels, v) -> Format.fprintf ppf "  %s%a = %d@." name pp_labels labels v)
    s.s_gauges;
  Format.fprintf ppf "== histograms ==@.";
  List.iter
    (fun (name, labels, h) ->
      if h.h_count = 0 then Format.fprintf ppf "  %s%a (empty)@." name pp_labels labels
      else
        Format.fprintf ppf "  %s%a n=%d mean=%.0f p50=%d p90=%d p99=%d max=%d@." name
          pp_labels labels h.h_count h.h_mean h.h_p50 h.h_p90 h.h_p99 h.h_max)
    s.s_hists;
  Format.fprintf ppf "makespan_ns = %d@." s.s_makespan_ns
