(* CRC-32C (Castagnoli), the polynomial PM file systems use for metadata
   checksums (NOVA-Fortis, and the SSE4.2 crc32 instruction).  Table-driven,
   reflected form; values fit OCaml's native int on 64-bit. *)

let poly = 0x82F63B78

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let mask32 = 0xFFFFFFFF

(* Slicing-by-8 (Intel's technique): seven derived tables let the fold
   consume 8 bytes per step instead of one.  [tables.(0)] is the plain
   byte-at-a-time table; [tables.(k).(n)] advances the CRC of byte [n]
   through [k] further zero bytes. *)
let tables =
  let t = Array.make_matrix 8 256 0 in
  Array.blit table 0 t.(0) 0 256;
  for k = 1 to 7 do
    for n = 0 to 255 do
      let v = t.(k - 1).(n) in
      t.(k).(n) <- table.(v land 0xFF) lxor (v lsr 8)
    done
  done;
  t

let update crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32c.update: range out of bounds";
  let c = ref (crc land mask32) in
  let i = ref off in
  let fin = off + len in
  let t0 = tables.(0) and t1 = tables.(1) and t2 = tables.(2) and t3 = tables.(3) in
  let t4 = tables.(4) and t5 = tables.(5) and t6 = tables.(6) and t7 = tables.(7) in
  (* 32-bit halves, not one int64 load: [Int64.to_int] drops bit 63, which
     would lose the top bit of the eighth byte. *)
  while fin - !i >= 8 do
    let lo = Int32.to_int (Bytes.get_int32_le b !i) land mask32 in
    let hi = Int32.to_int (Bytes.get_int32_le b (!i + 4)) land mask32 in
    let x = !c lxor lo in
    c :=
      t7.(x land 0xFF)
      lxor t6.((x lsr 8) land 0xFF)
      lxor t5.((x lsr 16) land 0xFF)
      lxor t4.(x lsr 24)
      lxor t3.(hi land 0xFF)
      lxor t2.((hi lsr 8) land 0xFF)
      lxor t1.((hi lsr 16) land 0xFF)
      lxor t0.(hi lsr 24);
    i := !i + 8
  done;
  while !i < fin do
    c := t0.((!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c

(* Same fold over an immutable string, without copying it into bytes
   first: journal record payloads arrive as strings, and a Bytes.of_string
   per record shows up in aging profiles. *)
let update_string crc s ~off ~len =
  update crc (Bytes.unsafe_of_string s) ~off ~len

let init = mask32
let finish crc = crc lxor mask32 land mask32

let digest ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  finish (update init b ~off ~len)

let digest_string s = digest (Bytes.unsafe_of_string s)

(* Checksum of a structure that embeds its own checksum field: compute
   over the whole [len] bytes with the [csum_off, csum_off+4) field
   treated as zero, so every other bit is covered. *)
let digest_zeroed b ~off ~len ~csum_off =
  if csum_off < off || csum_off + 4 > off + len then
    invalid_arg "Crc32c.digest_zeroed: csum field outside range";
  let c = update init b ~off ~len:(csum_off - off) in
  let z = Bytes.make 4 '\000' in
  let c = update c z ~off:0 ~len:4 in
  finish (update c b ~off:(csum_off + 4) ~len:(off + len - csum_off - 4))

let put b ~csum_off v = Bytes.set_int32_le b csum_off (Int32.of_int (v land mask32))
let get b ~csum_off = Int32.to_int (Bytes.get_int32_le b csum_off) land mask32

let set_zeroed b ~off ~len ~csum_off =
  put b ~csum_off (digest_zeroed b ~off ~len ~csum_off)

let verify_zeroed b ~off ~len ~csum_off =
  get b ~csum_off = digest_zeroed b ~off ~len ~csum_off
