(* CRC-32C (Castagnoli), the polynomial PM file systems use for metadata
   checksums (NOVA-Fortis, and the SSE4.2 crc32 instruction).  Table-driven,
   reflected form; values fit OCaml's native int on 64-bit. *)

let poly = 0x82F63B78

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let mask32 = 0xFFFFFFFF

let update crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32c.update: range out of bounds";
  let c = ref (crc land mask32) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let init = mask32
let finish crc = crc lxor mask32 land mask32

let digest ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  finish (update init b ~off ~len)

let digest_string s = digest (Bytes.unsafe_of_string s)

(* Checksum of a structure that embeds its own checksum field: compute
   over the whole [len] bytes with the [csum_off, csum_off+4) field
   treated as zero, so every other bit is covered. *)
let digest_zeroed b ~off ~len ~csum_off =
  if csum_off < off || csum_off + 4 > off + len then
    invalid_arg "Crc32c.digest_zeroed: csum field outside range";
  let c = update init b ~off ~len:(csum_off - off) in
  let z = Bytes.make 4 '\000' in
  let c = update c z ~off:0 ~len:4 in
  finish (update c b ~off:(csum_off + 4) ~len:(off + len - csum_off - 4))

let put b ~csum_off v = Bytes.set_int32_le b csum_off (Int32.of_int (v land mask32))
let get b ~csum_off = Int32.to_int (Bytes.get_int32_le b csum_off) land mask32

let set_zeroed b ~off ~len ~csum_off =
  put b ~csum_off (digest_zeroed b ~off ~len ~csum_off)

let verify_zeroed b ~off ~len ~csum_off =
  get b ~csum_off = digest_zeroed b ~off ~len ~csum_off
