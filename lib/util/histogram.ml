(* Log-bucketed histogram; with [exact] we also keep raw samples (as a
   growable int array) so percentiles are exact rather than bucketed. *)

let bucket_count = 256

type t = {
  buckets : int array;
  mutable samples : int array; (* raw samples when exact *)
  mutable n : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
  exact : bool;
  mutable sorted : bool;
}

let create ?(exact = true) () =
  {
    buckets = Array.make bucket_count 0;
    samples = (if exact then Array.make 1024 0 else [||]);
    n = 0;
    sum = 0.;
    min_v = max_int;
    max_v = 0;
    exact;
    sorted = true;
  }

(* Bucket index: 4 sub-buckets per power of two up to 2^62. *)
let msb_position v =
  let rec walk acc v = if v <= 1 then acc else walk (acc + 1) (v lsr 1) in
  walk 0 v

let bucket_of v =
  if v <= 0 then 0
  else
    let msb = msb_position v in
    let sub = if msb >= 2 then (v lsr (msb - 2)) land 3 else 0 in
    min (bucket_count - 1) ((msb * 4) + sub)

let grow t =
  let cap = Array.length t.samples in
  let bigger = Array.make (cap * 2) 0 in
  Array.blit t.samples 0 bigger 0 cap;
  t.samples <- bigger

let add t v =
  let v = max 0 v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  if t.exact then begin
    if t.n >= Array.length t.samples then grow t;
    t.samples.(t.n) <- v;
    t.sorted <- false
  end;
  t.n <- t.n + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let min_value t = if t.n = 0 then 0 else t.min_v

let max_value t = t.max_v

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort Int.compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let percentile_exact t p =
  ensure_sorted t;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) - 1 in
  t.samples.(max 0 (min (t.n - 1) rank))

(* Bucketed fallback: return the upper edge of the bucket containing the
   requested rank. *)
let bucket_upper idx =
  let msb = idx / 4 and sub = idx mod 4 in
  if msb < 2 then (1 lsl msb) + sub
  else (1 lsl msb) + ((sub + 1) * (1 lsl (msb - 2))) - 1

let percentile_bucketed t p =
  let target = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
  let rec walk i acc =
    if i >= bucket_count then t.max_v
    else
      let acc = acc + t.buckets.(i) in
      if acc >= target then min t.max_v (bucket_upper i) else walk (i + 1) acc
  in
  walk 0 0

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: out of range";
  (* Empty histograms answer 0 everywhere: min_v is still its max_int
     sentinel, and leaking it renders as garbage in tables. *)
  if t.n = 0 then 0
  else if p = 0. then t.min_v
  else if t.exact then percentile_exact t p
  else percentile_bucketed t p

let cdf t ~points =
  if t.n = 0 then []
  else
    List.init points (fun i ->
        let p = float_of_int (i + 1) /. float_of_int points *. 100. in
        (percentile t p, p /. 100.))

let merge a b =
  let m = create ~exact:(a.exact && b.exact) () in
  let pour src =
    if src.exact then
      for i = 0 to src.n - 1 do
        add m src.samples.(i)
      done
    else
      Array.iteri
        (fun i c ->
          for _ = 1 to c do
            add m (bucket_upper i)
          done)
        src.buckets
  in
  pour a;
  pour b;
  m

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.0f p50=%d p90=%d p99=%d max=%d" t.n (mean t)
      (percentile t 50.) (percentile t 90.) (percentile t 99.) t.max_v
