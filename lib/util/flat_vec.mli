(** Growable flat int array (unboxed; doubling growth).

    Used where a [Queue.t] or [int list] would box per element on a hot
    path: the device's flushed-line list, scratch run accumulators. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val clear : t -> unit
(** O(1): resets the length, keeping capacity. *)

val iter : t -> (int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val to_list : t -> int list

val sort : t -> unit
(** In-place ascending sort of the live prefix. *)
