(** CRC-32C (Castagnoli) — the metadata checksum used for media-fault
    detection (NOVA-Fortis-style hardening).  Pure OCaml, table-driven;
    results are 32-bit values carried in a native [int]. *)

val init : int
(** Initial accumulator (all ones). *)

val update : int -> bytes -> off:int -> len:int -> int
(** Fold a byte range into a running (un-finalised) accumulator. *)

val update_string : int -> string -> off:int -> len:int -> int
(** {!update} over a string, without an intermediate copy. *)

val finish : int -> int
(** Finalise an accumulator into the CRC value. *)

val digest : ?off:int -> ?len:int -> bytes -> int
(** One-shot CRC of a byte range (defaults to the whole buffer). *)

val digest_string : string -> int

val digest_zeroed : bytes -> off:int -> len:int -> csum_off:int -> int
(** CRC of [off, off+len) computed as if the 4-byte little-endian checksum
    field at [csum_off] were zero — the standard self-embedding layout, so
    every non-checksum bit of the structure is covered. *)

val put : bytes -> csum_off:int -> int -> unit
(** Store a CRC value as 4 little-endian bytes at [csum_off]. *)

val get : bytes -> csum_off:int -> int

val set_zeroed : bytes -> off:int -> len:int -> csum_off:int -> unit
(** Compute {!digest_zeroed} and {!put} it in place. *)

val verify_zeroed : bytes -> off:int -> len:int -> csum_off:int -> bool
(** Does the stored field match {!digest_zeroed} of the current bytes? *)
