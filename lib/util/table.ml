type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- t.rows @ [ cells ]

let add_float_row t label values =
  add_row t (label :: List.map (Printf.sprintf "%.2f") values)

let title t = t.title
let columns t = t.columns
let rows t = t.rows

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.map2 pad row widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) t.rows;
  Buffer.contents buf

let print t = print_string (render t)
