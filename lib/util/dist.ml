type t =
  | Constant of int
  | Uniform of int * int
  | Lognormal of { mu : float; sigma : float; min : int; max : int }
  | Mixture of (float * t) array * float (* cumulative-normalised weights *)
  | Zipf of { n : int; theta : float; zetan : float; alpha : float; eta : float }

let constant v = Constant v

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  Uniform (lo, hi)

let lognormal ~mu ~sigma ~min ~max =
  if max < min then invalid_arg "Dist.lognormal: max < min";
  Lognormal { mu; sigma; min; max }

let mixture parts =
  (match parts with [] -> invalid_arg "Dist.mixture: empty" | _ :: _ -> ());
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. parts in
  if total <= 0. then invalid_arg "Dist.mixture: non-positive total weight";
  Mixture (Array.of_list parts, total)

(* Gray & al. "Quickly generating billion-record synthetic databases"
   bounded-zipfian sampler, as used by YCSB's ZipfianGenerator. *)
let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Dist.zipf: n <= 0";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. float_of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan))
  in
  Zipf { n; theta; zetan; alpha; eta }

let rec sample t rng =
  match t with
  | Constant v -> v
  | Uniform (lo, hi) -> lo + Rng.int rng (hi - lo + 1)
  | Lognormal { mu; sigma; min; max } ->
      let v = int_of_float (Rng.lognormal rng ~mu ~sigma) in
      Stdlib.min max (Stdlib.max min v)
  | Mixture (parts, total) ->
      let target = Rng.float rng total in
      let rec pick i acc =
        let w, d = parts.(i) in
        let acc = acc +. w in
        if target < acc || i = Array.length parts - 1 then sample d rng else pick (i + 1) acc
      in
      pick 0 0.
  | Zipf { n; theta; zetan; alpha; eta } ->
      let u = Rng.float rng 1.0 in
      let uz = u *. zetan in
      if uz < 1.0 then 1
      else if uz < 1.0 +. Float.pow 0.5 theta then 2
      else
        let rank =
          1 + int_of_float (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.) alpha)
        in
        Stdlib.min n (Stdlib.max 1 rank)

let mean_estimate t rng ~samples =
  if samples <= 0 then invalid_arg "Dist.mean_estimate";
  let acc = ref 0. in
  for _ = 1 to samples do
    acc := !acc +. float_of_int (sample t rng)
  done;
  !acc /. float_of_int samples
