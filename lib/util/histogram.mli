(** Latency histogram with logarithmic buckets and exact-percentile support.

    Used to reproduce the latency CDFs of Figures 4 and 8.  The histogram
    keeps log-spaced buckets (cheap, bounded memory) and, when built with
    [~exact:true], also records every sample so percentiles and CDF points
    are exact. *)

type t

val create : ?exact:bool -> unit -> t
(** [exact] defaults to [true]; pass [false] for very large sample counts. *)

val add : t -> int -> unit
(** Record one sample (nanoseconds; any non-negative integer unit works). *)

val count : t -> int
val mean : t -> float
val min_value : t -> int
val max_value : t -> int

val percentile : t -> float -> int
(** [percentile t 50.0] is the median.  Returns 0 on an empty histogram
    (an unpopulated instrument renders as zeros, never as [max_int]
    garbage from the untouched [min] field).  Raises [Invalid_argument]
    on a percentile outside [0, 100]. *)

val cdf : t -> points:int -> (int * float) list
(** [cdf t ~points] returns [points] (value, cumulative-fraction) pairs
    suitable for plotting; fractions are non-decreasing and end at 1. *)

val merge : t -> t -> t
(** Combine two histograms built with the same [exact] setting. *)

val pp_summary : Format.formatter -> t -> unit
