(** Plain-text result tables for the benchmark harness.

    Each experiment prints one of these; the column layout mirrors the
    rows/series of the corresponding paper table or figure. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val add_float_row : t -> string -> float list -> unit
(** First cell is a label, the rest are formatted with %.2f. *)

val title : t -> string
val columns : t -> string list
val rows : t -> string list list
(** Accessors for machine-readable export (the bench harness's --json). *)

val render : t -> string
val print : t -> unit
