(* Growable flat int array: the unboxed accumulator the substrate uses
   where a list or Queue would box every element.  Doubling growth,
   amortised O(1) push, O(1) random access, in-place truncation — the
   dirty-line list in the PM device and scratch run-lists in the flat
   extent index are Flat_vecs. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let bigger = Array.make (cap * 2) 0 in
    Array.blit t.data 0 bigger 0 cap;
    t.data <- bigger
  end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Flat_vec.get";
  Array.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Flat_vec.set";
  Array.unsafe_set t.data i v

let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun v -> acc := f !acc v);
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let sort t =
  let a = Array.sub t.data 0 t.len in
  Array.sort Int.compare a;
  Array.blit a 0 t.data 0 t.len
