(* Fixed-stride open-addressing hash table over non-negative int keys.

   The DRAM-index replacement of ROADMAP item 2: a power-of-two slot
   array probed linearly, in the style of a chess engine's transposition
   table — no boxing per binding, no bucket lists, no rehash-on-read.
   Keys hash with a multiplicative (Fibonacci) mix, never the runtime's
   polymorphic [Hashtbl.hash], so probe sequences are identical on every
   run and the determinism lint stays clean.

   Slots hold the key directly in an int array; two negative sentinels
   mark never-used ([empty_key]) and deleted ([tomb_key]) slots, which is
   why keys must be >= 0 (cache-line indices, physical offsets and inode
   numbers all are).  Values live in a parallel array seeded with a
   caller-supplied [dummy] so the structure stays monomorphic and flat.

   Deletions leave tombstones so probe chains stay intact; the table
   rehashes (doubling only when the live count warrants it) once
   live+tombstone occupancy crosses 3/4, which bounds probe lengths.
   [probe_steps] exposes the cumulative probe work for the @perf-smoke
   operation-count budgets. *)

let empty_key = -1
let tomb_key = -2

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int;
  mutable used : int; (* live + tombstones *)
  dummy : 'a;
  mutable probes : int; (* cumulative probe steps across all operations *)
}

(* Multiplicative hashing: one odd 62-bit constant (2^61 * golden ratio,
   forced odd) spreads consecutive keys across the table; the xor-shift
   folds high bits into the low bits the mask keeps.  Deterministic by
   construction — plain int arithmetic, wrapping on overflow. *)
let gold = 0x2545F4914F6CDD1D

let hash k =
  let h = k * gold in
  h lxor (h lsr 29)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create ?(capacity = 16) ~dummy () =
  let cap = next_pow2 (max 8 capacity) in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    used = 0;
    dummy;
    probes = 0;
  }

let length t = t.live
let capacity t = t.mask + 1
let probe_steps t = t.probes

let check_key k = if k < 0 then invalid_arg "Flat_table: negative key"

(* Slot of [k], or the slot where it would be inserted (first tombstone on
   the probe path if any, else the empty slot that ended the probe).
   Returns [(slot_of_k, insert_slot)]; [slot_of_k] is -1 when absent. *)
let locate t k =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash k land mask) in
  let ins = ref (-1) in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    t.probes <- t.probes + 1;
    let kk = Array.unsafe_get keys !i in
    if kk = k then begin
      found := !i;
      continue := false
    end
    else if kk = empty_key then begin
      if !ins < 0 then ins := !i;
      continue := false
    end
    else begin
      if kk = tomb_key && !ins < 0 then ins := !i;
      i := (!i + 1) land mask
    end
  done;
  (!found, !ins)

let rehash t new_cap =
  let old_keys = t.keys and old_vals = t.vals in
  t.keys <- Array.make new_cap empty_key;
  t.vals <- Array.make new_cap t.dummy;
  t.mask <- new_cap - 1;
  t.used <- t.live;
  (* Reinsert in slot order: deterministic given the operation history. *)
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (hash k land t.mask) in
        while Array.unsafe_get t.keys !j <> empty_key do
          j := (!j + 1) land t.mask
        done;
        t.keys.(!j) <- k;
        t.vals.(!j) <- old_vals.(i)
      end)
    old_keys

let maybe_grow t =
  let cap = t.mask + 1 in
  if (t.used + 1) * 4 > cap * 3 then
    (* Double only when genuinely full of live entries; otherwise rehash
       in place to shed tombstones. *)
    rehash t (if t.live * 2 >= cap then cap * 2 else cap)

let mem t k =
  check_key k;
  fst (locate t k) >= 0

let find t k =
  check_key k;
  let slot, _ = locate t k in
  if slot >= 0 then Some t.vals.(slot) else None

let get t k ~default =
  check_key k;
  let slot, _ = locate t k in
  if slot >= 0 then t.vals.(slot) else default

let set t k v =
  check_key k;
  let slot, _ = locate t k in
  if slot >= 0 then t.vals.(slot) <- v
  else begin
    maybe_grow t;
    (* Growth may have moved everything: relocate the insert slot. *)
    let slot, ins = locate t k in
    assert (slot < 0);
    if t.keys.(ins) = empty_key then t.used <- t.used + 1;
    t.keys.(ins) <- k;
    t.vals.(ins) <- v;
    t.live <- t.live + 1
  end

let remove t k =
  check_key k;
  let slot, _ = locate t k in
  if slot >= 0 then begin
    t.keys.(slot) <- tomb_key;
    t.vals.(slot) <- t.dummy;
    t.live <- t.live - 1
  end

let copy t =
  {
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    mask = t.mask;
    live = t.live;
    used = t.used;
    dummy = t.dummy;
    probes = 0;
  }

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.live <- 0;
  t.used <- 0

(* Slot order: deterministic (the probe function is), but not sorted —
   callers needing a canonical order use [keys_sorted]. *)
let iter t f =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let keys_sorted t =
  fold t ~init:[] ~f:(fun acc k _ -> k :: acc) |> List.sort Int.compare

let check_invariants t =
  let cap = Array.length t.keys in
  if cap <> t.mask + 1 || cap land (cap - 1) <> 0 then Error "capacity not a power of two"
  else if Array.length t.vals <> cap then Error "key/value array length mismatch"
  else begin
    let live = ref 0 and used = ref 0 in
    let dup = ref None in
    Array.iteri
      (fun _ k ->
        if k >= 0 then begin
          incr live;
          incr used
        end
        else if k = tomb_key then incr used
        else if k <> empty_key then dup := Some "slot holds an invalid sentinel")
      t.keys;
    (* Every live key must be findable via its own probe chain. *)
    Array.iter (fun k -> if k >= 0 && fst (locate t k) < 0 then dup := Some "unreachable key") t.keys;
    match !dup with
    | Some m -> Error m
    | None ->
        if !live <> t.live then Error "live count mismatch"
        else if !used <> t.used then Error "occupancy count mismatch"
        else if t.used * 4 > cap * 3 then Error "load factor above 3/4"
        else Ok ()
  end
