(** Named event counters.

    Each simulated component (device, TLB, journal, FS) owns a counter set;
    experiments snapshot and diff them to report page faults, TLB misses,
    bytes written, and so on — the quantities Table 2 and §5.3 report. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
val reset : t -> unit

val cell : t -> string -> int ref
(** Get-or-create the counter's cell.  Hot paths resolve the cell once
    and bump the ref directly, skipping the per-call name lookup; cells
    stay valid across {!reset} (which zeroes them in place). *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-name difference of two snapshots (names missing on one side count
    as zero). *)

val pp : Format.formatter -> t -> unit
