(** Open-addressing hash table over non-negative int keys.

    The flat replacement for hot-path [Hashtbl]s (ROADMAP item 2): a
    power-of-two slot array with linear probing, multiplicative int
    hashing (never the runtime's polymorphic hash), and tombstone
    deletion.  Probe sequences are a pure function of the operation
    history, so every traversal is deterministic and replayable — the
    property the determinism lint enforces on the substrate.

    Keys must be [>= 0]; negative values are the internal empty/tombstone
    sentinels and are rejected with [Invalid_argument]. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] is rounded up to a power of two (minimum 8).  [dummy]
    seeds the value array and backs removed slots; it is never returned
    from a live binding. *)

val length : 'a t -> int
(** Number of live bindings. *)

val capacity : 'a t -> int

val mem : 'a t -> int -> bool
val find : 'a t -> int -> 'a option

val get : 'a t -> int -> default:'a -> 'a
(** Allocation-free lookup for hot paths. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or replace.  Grows (rehashing deterministically) when
    live+tombstone occupancy would cross 3/4 of capacity. *)

val remove : 'a t -> int -> unit
(** No-op when the key is unbound; leaves a tombstone otherwise. *)

val clear : 'a t -> unit
(** Drop every binding, keeping the current capacity. *)

val copy : 'a t -> 'a t
(** Independent snapshot (values shared; probe counter starts at 0). *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Slot order: deterministic given the operation history, but {e not}
    sorted.  Use {!keys_sorted} when a canonical order matters. *)

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Slot order, like {!iter}. *)

val keys_sorted : 'a t -> int list
(** Live keys in ascending order. *)

val probe_steps : 'a t -> int
(** Cumulative probe steps across every operation since creation — the
    operation-count budget @perf-smoke asserts on (wall-clock-free
    regression detection). *)

val check_invariants : 'a t -> (unit, string) result
