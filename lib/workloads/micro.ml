open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site

(* Durability-lint site: the mmap workloads' application-level final
   flush+fence (PM-native persistence, outside any FS call). *)
let site_mmap_flush = Site.v "micro" "mmap_flush"

type rw_result = {
  bytes : int;
  elapsed_ns : int;
  mb_per_s : float;
  page_faults : int;
  tlb_misses : int;
  fault_ns : int;
}

let mk_result ~bytes ~elapsed_ns ~vm_counters =
  let get = function
    | Some c -> fun k -> Counters.get c k
    | None -> fun _ -> 0
  in
  let g = get vm_counters in
  {
    bytes;
    elapsed_ns;
    mb_per_s =
      (if elapsed_ns = 0 then 0.
       else float_of_int bytes /. float_of_int Units.mib /. (float_of_int elapsed_ns /. 1e9));
    page_faults = g "mm.page_faults";
    tlb_misses = g "mm.tlb_misses";
    fault_ns = g "mm.fault_ns";
  }

(* Materialise the benchmark file with large writes (2MB chunks) so the
   measurement sees a steady-state file: no unwritten-extent zeroing in
   the timed region, and allocation happens through the large-request
   path as a real benchmark setup would. *)
let ensure_file (Fs_intf.Handle ((module F), fs)) cpu ~path ~file_bytes =
  let fd =
    if F.exists fs cpu path then F.openf fs cpu path Types.o_rdwr else F.create fs cpu path
  in
  if F.file_size fs fd < file_bytes then begin
    let chunk = String.make Units.huge_page 'i' in
    let off = ref (Units.round_down (F.file_size fs fd) Units.huge_page) in
    while !off < file_bytes do
      let n = min Units.huge_page (file_bytes - !off) in
      let src = if n = Units.huge_page then chunk else String.sub chunk 0 n in
      ignore (F.pwrite fs cpu fd ~off:!off ~src);
      off := !off + n
    done
  end;
  fd

let mmap_rw (Fs_intf.Handle ((module F), fs) as h) ?(seed = 7) ~path ~file_bytes ~io_bytes
    ~chunk ~mode () =
  let cpu = Cpu.make ~id:0 () in
  let rng = Rng.create seed in
  let fd = ensure_file h cpu ~path ~file_bytes in
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:file_bytes ~backing:(F.mmap_backing fs fd) () in
  let chunks = file_bytes / chunk in
  let payload = String.make chunk 'm' in
  let t0 = Cpu.now cpu in
  let done_ = ref 0 and pos = ref 0 in
  while !done_ < io_bytes do
    let off =
      match mode with
      | `Seq_write | `Seq_read ->
          let o = !pos * chunk in
          pos := (!pos + 1) mod chunks;
          o
      | `Rand_write | `Rand_read -> Rng.int rng chunks * chunk
    in
    (match mode with
    | `Seq_write | `Rand_write -> Vmem.write vm cpu region ~off ~src:payload
    | `Seq_read | `Rand_read -> Vmem.read vm cpu region ~off ~len:chunk);
    done_ := !done_ + chunk
  done;
  (* PM-native applications persist with a final flush + fence. *)
  (match mode with
  | `Seq_write | `Rand_write ->
      Device.with_site (F.device fs) site_mmap_flush (fun () -> Device.fence (F.device fs) cpu)
  | `Seq_read | `Rand_read -> ());
  let elapsed = Cpu.now cpu - t0 in
  F.close fs cpu fd;
  let r = mk_result ~bytes:io_bytes ~elapsed_ns:elapsed ~vm_counters:(Some (Vmem.counters vm)) in
  Vmem.munmap vm region;
  r

let syscall_rw (Fs_intf.Handle ((module F), fs) as h) ?(seed = 7) ?(fsync_every = 10) ~path
    ~file_bytes ~io_bytes ~chunk ~mode () =
  let cpu = Cpu.make ~id:0 () in
  let rng = Rng.create seed in
  let fd =
    match mode with
    | `Seq_write ->
        (* Append pattern: start from an empty file (§5.3). *)
        if F.exists fs cpu path then begin
          let fd = F.openf fs cpu path { Types.o_rdwr with trunc = true } in
          fd
        end
        else F.create fs cpu path
    | `Rand_write | `Seq_read | `Rand_read -> ensure_file h cpu ~path ~file_bytes
  in
  (* In-place and read modes need populated data. *)
  (match mode with
  | `Rand_write | `Seq_read | `Rand_read ->
      if F.file_size fs fd < file_bytes then F.fallocate fs cpu fd ~off:0 ~len:file_bytes
  | `Seq_write -> ());
  let chunks = max 1 (file_bytes / chunk) in
  let payload = String.make chunk 's' in
  let t0 = Cpu.now cpu in
  let done_ = ref 0 and pos = ref 0 and ops = ref 0 in
  while !done_ < io_bytes do
    let off =
      match mode with
      | `Seq_write -> !done_ mod file_bytes
      | `Seq_read ->
          let o = !pos * chunk in
          pos := (!pos + 1) mod chunks;
          o
      | `Rand_write | `Rand_read -> Rng.int rng chunks * chunk
    in
    (match mode with
    | `Seq_write | `Rand_write ->
        ignore (F.pwrite fs cpu fd ~off ~src:payload);
        incr ops;
        if !ops mod fsync_every = 0 then F.fsync fs cpu fd
    | `Seq_read | `Rand_read -> ignore (F.pread fs cpu fd ~off ~len:chunk));
    done_ := !done_ + chunk
  done;
  (match mode with `Seq_write | `Rand_write -> F.fsync fs cpu fd | _ -> ());
  let elapsed = Cpu.now cpu - t0 in
  F.close fs cpu fd;
  mk_result ~bytes:io_bytes ~elapsed_ns:elapsed ~vm_counters:None

let mmap_write_2mb_file (Fs_intf.Handle ((module F), fs)) ~path ~huge_ok =
  let cpu = Cpu.make ~id:0 () in
  let fd = F.create fs cpu path in
  F.fallocate fs cpu fd ~off:0 ~len:Units.huge_page;
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:Units.huge_page ~backing:(F.mmap_backing fs fd) ~huge_ok () in
  let payload = String.make (64 * Units.kib) 'w' in
  let t0 = Cpu.now cpu in
  for i = 0 to (Units.huge_page / String.length payload) - 1 do
    Vmem.write vm cpu region ~off:(i * String.length payload) ~src:payload
  done;
  Device.with_site (F.device fs) site_mmap_flush (fun () -> Device.fence (F.device fs) cpu);
  let total = Cpu.now cpu - t0 in
  let c = Vmem.counters vm in
  let r = (total, Counters.get c "mm.fault_ns", Counters.get c "mm.page_faults") in
  Vmem.munmap vm region;
  F.close fs cpu fd;
  r

type scalability_point = { threads : int; kops_per_s : float; lock_wait_ns : int }

let scalability make_fs ~threads ~files_per_thread ~appends_per_file =
  let (Fs_intf.Handle ((module F), fs)) = make_fs () in
  let setup = Cpu.make ~id:0 () in
  for i = 0 to threads - 1 do
    F.mkdir fs setup (Printf.sprintf "/t%d" i)
  done;
  let payload = String.make Units.base_page 'k' in
  let ops = ref 0 in
  let stats =
    Repro_sched.Sched.run ~threads (fun cpu ->
        for file = 0 to files_per_thread - 1 do
          let path = Printf.sprintf "/t%d/f%d" cpu.Cpu.id file in
          let fd = F.create fs cpu path in
          for _ = 1 to appends_per_file do
            ignore (F.append fs cpu fd ~src:payload);
            F.fsync fs cpu fd;
            ops := !ops + 2
          done;
          F.close fs cpu fd;
          F.unlink fs cpu path;
          ops := !ops + 2
        done)
  in
  {
    threads;
    kops_per_s =
      (if stats.makespan_ns = 0 then 0.
       else float_of_int !ops /. (float_of_int stats.makespan_ns /. 1e9) /. 1000.);
    lock_wait_ns = stats.lock_wait_ns;
  }
