(** PmemKV-like key-value store (§5.4, Figure 7c).

    Intel's PmemKV (cmap engine) stores data in a PM pool built from
    128MB files: the pool is created with [fallocate] and extended by
    creating more files — also [fallocate]d — as it fills.  The paper's
    fillseq workload inserts 4KB values sequentially with 16 threads.

    The file-system-visible behaviours: pool files are preallocated (so
    whether faults are cheap depends on who zeroes — NOVA/WineFS zero at
    fallocate, ext4 zeroes at fault) and large (so hugepage eligibility is
    purely an allocator-alignment question). *)

open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched

type pool = { region : Vmem.region }

type t = {
  h : Fs_intf.handle;
  vm : Vmem.t;
  pool_bytes : int;
  value_bytes : int;
  mutable pools : pool array;
  mutable tail : int; (* global offset across pools *)
  lock : Sched.mutex;
  index : (int, int) Hashtbl.t; (* key -> global offset *)
}

let create (Fs_intf.Handle ((module F), fs) as h) ?(dir = "/pmemkv")
    ?(pool_bytes = 16 * Units.mib) ?(value_bytes = 4096) () =
  let cpu = Cpu.make ~id:0 () in
  if not (F.exists fs cpu dir) then F.mkdir fs cpu dir;
  {
    h;
    vm = Vmem.create (F.device fs);
    pool_bytes;
    value_bytes;
    pools = [||];
    tail = 0;
    lock = Sched.create_mutex ~name:"pmemkv_model:t.lock" ();
    index = Hashtbl.create 4096;
  }

let dir_of t =
  ignore t;
  "/pmemkv"

let extend_pool t cpu =
  let (Fs_intf.Handle ((module F), fs)) = t.h in
  let n = Array.length t.pools in
  let path = Printf.sprintf "%s/pool%04d" (dir_of t) n in
  let fd = F.create fs cpu path in
  F.fallocate fs cpu fd ~off:0 ~len:t.pool_bytes;
  let region = Vmem.mmap t.vm ~len:t.pool_bytes ~backing:(F.mmap_backing fs fd) () in
  F.close fs cpu fd;
  t.pools <- Array.append t.pools [| { region } |]

let record_bytes t = 16 + t.value_bytes

let put t cpu ~key =
  Sched.with_lock t.lock (fun () ->
      let rb = record_bytes t in
      (* Extend with a fresh fallocated pool file when full. *)
      let pool_idx = t.tail / t.pool_bytes in
      let pool_idx, off =
        if (t.tail mod t.pool_bytes) + rb > t.pool_bytes then begin
          t.tail <- (pool_idx + 1) * t.pool_bytes;
          (pool_idx + 1, t.tail mod t.pool_bytes)
        end
        else (pool_idx, t.tail mod t.pool_bytes)
      in
      while pool_idx >= Array.length t.pools do
        extend_pool t cpu
      done;
      let r = t.pools.(pool_idx).region in
      Vmem.write_u64 t.vm cpu r ~off (Int64.of_int key);
      Vmem.write_u64 t.vm cpu r ~off:(off + 8) (Int64.of_int t.value_bytes);
      Vmem.fill t.vm cpu r ~off:(off + 16) ~len:t.value_bytes 'p';
      Vmem.persist t.vm cpu r ~off ~len:rb;
      Hashtbl.replace t.index key t.tail;
      t.tail <- t.tail + rb)

let get t cpu ~key =
  match Hashtbl.find_opt t.index key with
  | Some goff ->
      let r = t.pools.(goff / t.pool_bytes).region in
      Vmem.read t.vm cpu r ~off:(goff mod t.pool_bytes) ~len:(record_bytes t);
      true
  | None -> false

type result = {
  keys : int;
  elapsed_ns : int;
  kops_per_s : float;
  page_faults : int;
  huge_faults : int;
}

(* fillseq with [threads] concurrent inserters (cmap concurrent engine). *)
let fillseq t ~threads ~keys =
  let next = ref 0 in
  let stats =
    Sched.run ~threads (fun cpu ->
        let continue_run = ref true in
        while !continue_run do
          (* Claim the next key (the DRAM-side atomic is effectively free
             next to the PM work). *)
          let k = !next in
          if k >= keys then continue_run := false
          else begin
            next := k + 1;
            put t cpu ~key:k
          end
        done)
  in
  let c = Vmem.counters t.vm in
  {
    keys;
    elapsed_ns = stats.makespan_ns;
    kops_per_s =
      (if stats.makespan_ns = 0 then 0.
       else float_of_int keys /. (float_of_int stats.makespan_ns /. 1e9) /. 1000.);
    page_faults = Counters.get c "mm.page_faults";
    huge_faults = Counters.get c "mm.huge_faults";
  }

let vm_counters t = Vmem.counters t.vm
