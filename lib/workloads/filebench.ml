(** Filebench personalities (§5.5, Figure 9a/9d): varmail, fileserver,
    webserver and webproxy, with the thread counts and file populations of
    Table 1 (scaled by the caller).

    Each personality is an operation mix over a pre-created file
    population, run by simulated threads; the op definitions follow the
    stock Filebench workload files:

    - varmail: mail server — create+append+fsync / read+append+fsync /
      read whole / delete (the fsync-heavy mix that exposes JBD2);
    - fileserver: create+write whole / append / read whole / delete / stat;
    - webserver: read whole files, append to a shared log;
    - webproxy: create+write, then read the file five times, delete, and
      append to a shared log. *)

open Repro_util
open Repro_vfs
module Sched = Repro_sched.Sched

type personality = Varmail | Fileserver | Webserver | Webproxy

let name = function
  | Varmail -> "varmail"
  | Fileserver -> "fileserver"
  | Webserver -> "webserver"
  | Webproxy -> "webproxy"

let all = [ Varmail; Fileserver; Webserver; Webproxy ]

(* Table 1 thread counts (files are scaled by the caller). *)
let default_threads = function
  | Varmail -> 16
  | Fileserver -> 50
  | Webserver -> 100
  | Webproxy -> 100

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

let mean_file_bytes = function
  | Varmail -> 16 * Units.kib
  | Fileserver -> 128 * Units.kib
  | Webserver -> 32 * Units.kib
  | Webproxy -> 16 * Units.kib

let run (Fs_intf.Handle ((module F), fs)) ?(seed = 31) ~personality ~threads ~files
    ~ops_per_thread () =
  let setup = Cpu.make ~id:0 () in
  let root = "/" ^ name personality in
  if not (F.exists fs setup root) then F.mkdir fs setup root;
  let dirs = max 1 (files / 64) in
  for d = 0 to dirs - 1 do
    let p = Printf.sprintf "%s/d%d" root d in
    if not (F.exists fs setup p) then F.mkdir fs setup p
  done;
  let path i = Printf.sprintf "%s/d%d/f%d" root (i mod dirs) i in
  let fsize = mean_file_bytes personality in
  let payload = String.make fsize 'f' in
  let append_chunk = String.make (16 * Units.kib) 'a' in
  (* Population. *)
  for i = 0 to files - 1 do
    let fd = F.create fs setup (path i) in
    ignore (F.pwrite fs setup fd ~off:0 ~src:payload);
    F.close fs setup fd
  done;
  (* Shared log for web personalities. *)
  (match personality with
  | Webserver | Webproxy ->
      let fd = F.create fs setup (root ^ "/log") in
      F.close fs setup fd
  | Varmail | Fileserver -> ());
  let next_new = ref files in
  let ops_done = ref 0 in
  let stats =
    Sched.run ~threads (fun cpu ->
        let rng = Rng.create (seed + (cpu.Cpu.id * 7919)) in
        let pick () = path (Rng.int rng files) in
        (* A file can vanish between path pick and use (concurrent
           deleters); treat that like ESTALE and move on. *)
        let op_read_whole p =
          try
            let fd = F.openf fs cpu p Types.o_rdonly in
            ignore (F.pread fs cpu fd ~off:0 ~len:(F.file_size fs fd));
            F.close fs cpu fd
          with Types.Error ((ENOENT | ENOTDIR | EBADF), _) -> ()
        in
        let op_append_fsync p =
          try
            let fd = F.openf fs cpu p Types.o_rdwr in
            ignore (F.append fs cpu fd ~src:append_chunk);
            F.fsync fs cpu fd;
            F.close fs cpu fd
          with Types.Error ((ENOENT | ENOTDIR | EBADF | ENOSPC), _) -> ()
        in
        let op_create_new ?(then_delete = false) ?(reads = 0) () =
          let id = !next_new in
          next_new := id + 1;
          let p = path id in
          try
            let fd = F.create fs cpu p in
            ignore (F.pwrite fs cpu fd ~off:0 ~src:payload);
            F.fsync fs cpu fd;
            F.close fs cpu fd;
            for _ = 1 to reads do
              op_read_whole p
            done;
            if then_delete then F.unlink fs cpu p
          with Types.Error ((ENOENT | ENOTDIR | EBADF | EEXIST | ENOSPC), _) -> ()
        in
        let op_delete () =
          try F.unlink fs cpu (pick ()) with Types.Error ((ENOENT | ENOTDIR), _) -> ()
        in
        let op_stat () =
          try ignore (F.stat fs cpu (pick ())) with Types.Error ((ENOENT | ENOTDIR), _) -> ()
        in
        let op_log_append () = op_append_fsync (root ^ "/log") in
        for _ = 1 to ops_per_thread do
          (match personality with
          | Varmail -> (
              (* Equal-weight varmail flowlets. *)
              match Rng.int rng 4 with
              | 0 ->
                  op_delete ();
                  op_create_new ()
              | 1 -> op_append_fsync (pick ())
              | 2 ->
                  op_read_whole (pick ());
                  op_append_fsync (pick ())
              | _ -> op_read_whole (pick ()))
          | Fileserver -> (
              match Rng.int rng 5 with
              | 0 -> op_create_new ()
              | 1 -> op_append_fsync (pick ())
              | 2 -> op_read_whole (pick ())
              | 3 -> op_delete ()
              | _ -> op_stat ())
          | Webserver ->
              (* 10 reads : 1 log append, the classic ratio. *)
              if Rng.int rng 11 < 10 then op_read_whole (pick ()) else op_log_append ()
          | Webproxy ->
              if Rng.int rng 6 = 0 then op_create_new ~then_delete:true ~reads:5 ()
              else op_read_whole (pick ()));
          ops_done := !ops_done + 1
        done)
  in
  {
    ops = !ops_done;
    elapsed_ns = stats.makespan_ns;
    kops_per_s =
      (if stats.makespan_ns = 0 then 0.
       else float_of_int !ops_done /. (float_of_int stats.makespan_ns /. 1e9) /. 1000.);
  }
