(** Simulated byte-addressable persistent-memory device.

    The device models what the paper's file systems see on Intel Optane DC
    PM: a flat physical address space accessed by loads and stores at
    cache-line (64B) granularity, with [clwb]-style flushes and store
    fences.  Every access charges simulated nanoseconds to the accessing
    {!Repro_util.Cpu.t}'s clock according to {!Cost.t} and bumps the device
    counters ("pm.bytes_read", "pm.bytes_written", "pm.flushes",
    "pm.fences").

    {2 Crash semantics}

    When tracking is enabled, stores since the last fence are recorded along
    with the bytes they overwrote.  A store becomes durable only once it has
    been flushed and a subsequent fence has executed (conservatively; a real
    cache may also evict lines early, which the crash explorer models by
    allowing {e any} subset of pending lines to survive).  {!crash_image}
    materialises the device contents for a chosen surviving subset, which is
    what the CrashMonkey-style checker replays recovery against. *)

module Cost : sig
  type t = {
    read_ns_per_cl : float;  (** latency charge per 64B cache line read *)
    write_ns_per_cl : float; (** charge per 64B cache line written *)
    read_ns_per_byte : float;  (** bandwidth term for bulk reads *)
    write_ns_per_byte : float; (** bandwidth term for bulk writes *)
    flush_ns : float;        (** one clwb *)
    fence_ns : float;        (** one sfence *)
    remote_read_factor : float;  (** multiplier for cross-NUMA reads *)
    remote_write_factor : float; (** multiplier for cross-NUMA writes *)
  }

  val optane : t
  (** Derived from the paper's §2.1 characterisation: 64B accesses cost
      100–200ns, read bandwidth ~1/3 of DRAM, write bandwidth ~0.17x DRAM,
      remote writes costlier than remote reads. *)

  val free : t
  (** Zero-cost model for unit tests that only check functional behaviour. *)
end

(** {2 Durability instrumentation}

    The device exposes its access stream to one observer (the
    {!Repro_sanitizer} durability lint): every charged store, load, flush
    and fence, plus {e protocol annotations} through which journaling code
    declares transactional intent.  Events carry the ambient {!Site.t}
    installed with {!with_site}, so diagnostics name the layer and
    operation at fault. *)

type protocol =
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
      (** The commit record is about to persist; every [Covered] range of
          this transaction must already be durable. *)
  | Txn_abort of { txn : int }
  | Covered of { txn : int; addr : int; len : int }
      (** A journal entry protecting [addr, addr+len) is durable; in-place
          updates of the range are now crash-safe. *)
  | Fresh of { addr : int; len : int }
      (** Newly allocated and unreachable from any persistent structure:
          initializing stores need no undo coverage (initialize-then-
          publish). *)
  | Recovery_begin  (** Subsequent loads are recovery input. *)
  | Recovery_end

type event =
  | Store of { off : int; len : int; nt : bool }
  | Load of { off : int; len : int }
  | Flush of { off : int; len : int }
  | Fence
  | Protocol of protocol

type t

val create : ?cost:Cost.t -> ?numa_nodes:int -> size:int -> unit -> t
(** A device of [size] bytes (rounded up to a cache line), zero-filled. *)

val size : t -> int
val numa_nodes : t -> int

val node_of_offset : t -> int -> int
(** NUMA node owning a physical offset (equal-sized stripes). *)

val counters : t -> Repro_util.Counters.t
val cost : t -> Cost.t

(** {2 Data access}  All offsets/lengths are validated; out-of-range access
    raises [Invalid_argument].  The {!Repro_util.Cpu.t} determines which
    clock is charged and whether NUMA remote-access penalties apply. *)

val read : t -> Repro_util.Cpu.t -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
val write : t -> Repro_util.Cpu.t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
val read_string : t -> Repro_util.Cpu.t -> off:int -> len:int -> string
val write_string : t -> Repro_util.Cpu.t -> off:int -> string -> unit
val memset : t -> Repro_util.Cpu.t -> off:int -> len:int -> char -> unit

val copy_within : t -> Repro_util.Cpu.t -> src:int -> dst:int -> len:int -> unit
(** Device-to-device copy (charges a read and a write). *)

(** {3 Non-temporal variants}  Bulk-data stores that bypass the cache:
    durable at the next {!fence} with no per-line flush (the movnt +
    sfence fast path PM file systems use for data). *)

val write_nt : t -> Repro_util.Cpu.t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
val write_string_nt : t -> Repro_util.Cpu.t -> off:int -> string -> unit
val memset_nt : t -> Repro_util.Cpu.t -> off:int -> len:int -> char -> unit
val copy_within_nt : t -> Repro_util.Cpu.t -> src:int -> dst:int -> len:int -> unit

val read_u64 : t -> Repro_util.Cpu.t -> off:int -> int64
val write_u64 : t -> Repro_util.Cpu.t -> off:int -> int64 -> unit
(** Little-endian 8-byte accessors; 8-byte aligned stores are the atomic
    unit PM systems rely on for commit records. *)

val peek : t -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Copy device contents without charging time or counters.  Used by the
    memory simulator for data whose access cost was already accounted to
    the processor-cache model. *)

val touch_read : t -> Repro_util.Cpu.t -> off:int -> len:int -> unit
(** Charge the time and counters of a read without copying data. *)

(** {2 Persistence} *)

val flush : t -> Repro_util.Cpu.t -> off:int -> len:int -> unit
(** clwb every cache line intersecting the range. *)

val fence : t -> Repro_util.Cpu.t -> unit
(** sfence: all previously flushed lines become durable. *)

val persist : t -> Repro_util.Cpu.t -> off:int -> len:int -> unit
(** [flush] then [fence]. *)

(** {2 Crash testing} *)

val set_tracking : t -> bool -> unit
(** Enable/disable pending-store tracking (off by default; costs memory). *)

val pending_lines : t -> int list
(** Cache-line indices written since the last fence (not yet durable). *)

val pending_old : t -> int -> bytes option
(** The pre-store contents of a pending cache line (a 64B copy), or [None]
    when the line has no store pending.  Fault campaigns use it to pick
    8-byte words that actually changed before registering a torn word. *)

val fence_sweep_visits : t -> int
(** Cumulative number of pending-line entries examined by fence sweeps
    since creation.  The fence cost model is O(lines flushed since the
    last fence), not O(all pending lines); tests assert this scaling
    without measuring wall-clock time. *)

val crash_image : t -> persisted:(int -> bool) -> t
(** A fresh, tracking-off device representing post-crash contents: pending
    lines for which [persisted line = false] are reverted to their
    pre-store bytes, then every registered {!Torn_word} on a pending line
    reverts regardless of the line choice, and poisoned lines carry over
    (media faults survive crashes).  Raises [Invalid_argument] if tracking
    is off. *)

(** {2 Media-fault injection}

    Simulated media errors, composing with the crash machinery above: a
    campaign plants faults, then mount/scrub must detect them.  Injection
    bypasses the store path (no events, no cost) — media corruption is
    invisible to the memory-ordering model until a load trips over it. *)

exception Media_error of { off : int }
(** Simulated machine-check exception: a load touched the poisoned cache
    line starting at [off].  Raised before any data is copied or cost
    charged, from every read path including {!peek}. *)

type fault =
  | Bit_flip of { off : int; bit : int }
      (** Flip bit [bit] (0..7) of the byte at [off] — silent corruption
          only checksums can catch. *)
  | Torn_word of { off : int }
      (** Register the 8-byte-aligned word containing [off] to tear at the
          next {!crash_image}. *)
  | Poison_line of { off : int }
      (** Mark the 64B line containing [off] uncorrectable: loads raise
          {!Media_error} until some store overwrites the entire line. *)

val inject : t -> fault -> unit
(** Plant one fault.  Bumps the "pm.faults_injected" device counter and,
    when the stats registry is enabled, "fault.injected" (labelled by
    kind). *)

val poisoned_lines : t -> int list
(** Currently-poisoned cache-line indices (sorted). *)

val clear_faults : t -> unit
(** Drop all poison and torn-word registrations (bit flips already
    happened and are not undone). *)

val reset_counters : t -> unit

val with_site : t -> Site.t -> (unit -> 'a) -> 'a
(** Run a thunk with the ambient access site set (restored on exit,
    including by exception).  Nested annotations shadow outer ones. *)

val current_site : t -> Site.t

type hook = Repro_util.Cpu.t option -> Site.t -> event -> unit
(** An event observer.  Data-movement events ([Store]/[Load]/[Flush]/
    [Fence]) carry [Some cpu] — the accessing CPU, which is how the race
    detector sees cross-CPU stores to the same cache line; [Protocol]
    annotations carry [None].  Hooks run inside the access, after the
    data movement and cost accounting; an exception a hook raises aborts
    the caller (how the sanitizer's strict mode stops on the first
    violation). *)

type hook_id

val add_event_hook : t -> hook -> hook_id
(** Install an observer without disturbing the others.  Every installed
    hook sees every event, in installation order — the sanitizer, the
    race detector and ad-hoc tracing compose. *)

val remove_event_hook : t -> hook_id -> unit
(** Uninstall one observer; unknown ids are ignored. *)

val set_event_hook : t -> hook option -> unit
(** Legacy single-slot interface: [Some h] replaces only the hook this
    function previously installed (other {!add_event_hook} observers are
    untouched); [None] removes it. *)

val annotate : t -> protocol -> unit
(** Forward a protocol annotation to the observers (no-op when none). *)

(** {3 Crash-point injection}  The crash explorer aborts an operation at a
    chosen fence by raising from the hook; the pending-store set at that
    instant defines the reachable crash states. *)

val fence_seq : t -> int
(** Number of fences executed since creation (or {!reset_fence_seq}). *)

val set_fence_hook : t -> (int -> unit) option -> unit
(** Called with the fence sequence number {e before} the fence commits
    flushed lines.  [None] uninstalls. *)

val reset_fence_seq : t -> unit

(** {2 Host-file images}  The CLI tools persist device images as ordinary
    files so a simulated file system survives across program runs. *)

val save_file : t -> string -> unit
val load_file : ?cost:Cost.t -> ?numa_nodes:int -> string -> t
