(** Seeded fault-campaign planning over {!Device} targets.

    A campaign names byte regions of interest (a superblock, an inode
    header, a data extent), then draws concrete faults from a seeded RNG —
    the same seed reproduces the same campaign exactly, which is how
    faultcheck findings stay replayable. *)

open Repro_util

type target = { label : string; off : int; len : int }

type planted = { target : string; fault : Device.fault }

val bit_flip : Rng.t -> target -> planted
(** A random single-bit flip inside the target. *)

val poison : Rng.t -> target -> planted
(** Poison the cache line containing a random byte of the target. *)

val torn_word : Rng.t -> Device.t -> line:int -> planted option
(** Pick an 8-byte word of a pending cache line whose pre-store bytes
    differ from its current contents and register it to tear at the next
    crash image; [None] when the line is not pending or nothing differs. *)

val apply : Device.t -> planted -> unit

val to_string : planted -> string
val fault_to_string : Device.fault -> string
