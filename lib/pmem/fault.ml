(* Seeded, deterministic fault planning: given labelled target regions of
   a device, draw concrete {!Device.fault}s from an {!Repro_util.Rng}.
   The same seed always yields the same campaign, so every finding a
   checker reports is replayable. *)

open Repro_util

type target = { label : string; off : int; len : int }

type planted = { target : string; fault : Device.fault }

let fault_to_string = function
  | Device.Bit_flip { off; bit } -> Printf.sprintf "bit-flip off=%#x bit=%d" off bit
  | Device.Torn_word { off } -> Printf.sprintf "torn-word off=%#x" off
  | Device.Poison_line { off } -> Printf.sprintf "poison-line off=%#x" off

let to_string p = Printf.sprintf "%s in %s" (fault_to_string p.fault) p.target

let bit_flip rng (t : target) =
  if t.len <= 0 then invalid_arg "Fault.bit_flip: empty target";
  { target = t.label;
    fault = Device.Bit_flip { off = t.off + Rng.int rng t.len; bit = Rng.int rng 8 } }

let poison rng (t : target) =
  if t.len <= 0 then invalid_arg "Fault.poison: empty target";
  { target = t.label; fault = Device.Poison_line { off = t.off + Rng.int rng t.len } }

(* A meaningful torn word on a pending cache line: one of the 8-byte words
   whose pre-store bytes differ from the current contents (tearing a word
   the store did not change is a no-op).  [None] when nothing differs. *)
let torn_word rng dev ~line =
  match Device.pending_old dev line with
  | None -> None
  | Some old ->
      let cur = Bytes.create (Bytes.length old) in
      Device.peek dev ~off:(line * Units.cacheline) ~len:(Bytes.length old) ~dst:cur
        ~dst_off:0;
      let words = Bytes.length old / 8 in
      let differing =
        List.filter
          (fun w -> Bytes.sub old (w * 8) 8 <> Bytes.sub cur (w * 8) 8)
          (List.init words Fun.id)
      in
      (match differing with
      | [] -> None
      | ws ->
          let w = Rng.pick rng (Array.of_list ws) in
          Some
            { target = Printf.sprintf "pending line %d" line;
              fault = Device.Torn_word { off = (line * Units.cacheline) + (w * 8) } })

let apply dev p = Device.inject dev p.fault
