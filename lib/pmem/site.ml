(* A site labels the code location responsible for a PM access: the layer
   (library) plus the operation within it.  Sites are threaded ambiently
   through {!Device.with_site} so low-level stores need no extra
   parameters, and the innermost annotation wins — a journal entry written
   on behalf of a metadata update reports as "journal.entry", not
   "core.meta". *)

type t = { layer : string; op : string }

let v layer op = { layer; op }
let unknown = { layer = "?"; op = "?" }
let layer t = t.layer
let op t = t.op
let to_string t = t.layer ^ "." ^ t.op
let equal a b = a.layer = b.layer && a.op = b.op
let compare a b =
  match String.compare a.layer b.layer with 0 -> String.compare a.op b.op | c -> c

let pp ppf t = Format.pp_print_string ppf (to_string t)
