(** Durability-lint site labels: which layer and operation issued a PM
    access.

    Persistence diagnostics are only actionable when they name the code
    that forgot a flush or fence, not just a physical offset.  Every PM
    layer ({!Repro_journal}, the core file system, the allocator) wraps
    its device accesses in {!Device.with_site}; the sanitizer reads the
    ambient site when it records a violation. *)

type t

val v : string -> string -> t
(** [v layer op], e.g. [v "journal" "commit"]. *)

val unknown : t
(** The default site of unannotated accesses, rendered ["?.?"]. *)

val layer : t -> string
val op : t -> string

val to_string : t -> string
(** ["layer.op"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
