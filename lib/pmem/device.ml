open Repro_util

module Cost = struct
  type t = {
    read_ns_per_cl : float;
    write_ns_per_cl : float;
    read_ns_per_byte : float;
    write_ns_per_byte : float;
    flush_ns : float;
    fence_ns : float;
    remote_read_factor : float;
    remote_write_factor : float;
  }

  (* §2.1: 64B accesses cost 100-200ns; read bandwidth about 1/3 DRAM
     (~30GB/s -> 0.033 ns/B), write bandwidth about 0.17x DRAM
     (~8GB/s -> 0.125 ns/B); remote NUMA writes dearer than reads. *)
  let optane =
    {
      read_ns_per_cl = 120.;
      write_ns_per_cl = 100.;
      read_ns_per_byte = 0.033;
      write_ns_per_byte = 0.125;
      flush_ns = 20.;
      fence_ns = 30.;
      remote_read_factor = 1.3;
      remote_write_factor = 2.2;
    }

  let free =
    {
      read_ns_per_cl = 0.;
      write_ns_per_cl = 0.;
      read_ns_per_byte = 0.;
      write_ns_per_byte = 0.;
      flush_ns = 0.;
      fence_ns = 0.;
      remote_read_factor = 1.;
      remote_write_factor = 1.;
    }
end

type pending = { old_bytes : bytes; mutable flushed : bool }

(* Shared placeholder for empty Flat_table slots; never returned from a
   live binding and never mutated. *)
let no_pending = { old_bytes = Bytes.empty; flushed = false }

(* Media faults (simulated MCE): a poisoned line delivers an uncorrectable
   error to any load touching it, the way a real Optane DIMM surfaces bit
   rot the ECC cannot repair. *)
exception Media_error of { off : int }

type fault =
  | Bit_flip of { off : int; bit : int }
      (** Silent corruption: flip one bit of the current media contents. *)
  | Torn_word of { off : int }
      (** The 8-byte word at [off] (rounded down) tears at the next crash:
          in any {!crash_image} it reverts to its pre-store contents even
          when the rest of its cache line survives.  No-op for words whose
          line has no store pending. *)
  | Poison_line of { off : int }
      (** The 64B line containing [off] raises {!Media_error} on any load
          until a store overwrites the full line. *)

(* Persistence-protocol annotations: code that implements an ordering
   protocol (the journals) narrates its intent through these so a
   durability analyzer can check the protocol without understanding the
   on-device format.  Transaction ids come from the annotating layer and
   only need to be unique per device among concurrently-open
   transactions. *)
type protocol =
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
      (** Fired at the instant the commit record is about to persist: every
          range registered with [Covered] must already be durable. *)
  | Txn_abort of { txn : int }
  | Covered of { txn : int; addr : int; len : int }
      (** An undo/redo entry protecting [addr, addr+len) is durable; the
          transaction may now update the range in place. *)
  | Fresh of { addr : int; len : int }
      (** [addr, addr+len) was just allocated and is unreachable from any
          persistent structure, so initializing stores need no undo
          coverage (the initialize-then-publish pattern). *)
  | Recovery_begin
  | Recovery_end

type event =
  | Store of { off : int; len : int; nt : bool }
  | Load of { off : int; len : int }
  | Flush of { off : int; len : int }
  | Fence
  | Protocol of protocol

type hook = Cpu.t option -> Site.t -> event -> unit
type hook_id = int

(* Global stats registry wiring: when {!Repro_stats.Stats.enabled}, every
   store/flush/fence is also counted per ambient {!Site} label.  Resolving
   an instrument by (name, labels) renders strings per call, so the device
   memoizes the counter cells per physically-distinct site, revalidating
   against the registry generation (a {!Stats.reset} drops every
   instrument, stranding cached cells). *)
module Stats = Repro_stats.Stats

type site_cells = {
  sc_site : Site.t; (* cache key: physical identity *)
  mutable sc_store : Stats.Counter.t option;
  mutable sc_nt_store : Stats.Counter.t option;
  mutable sc_load : Stats.Counter.t option;
  mutable sc_flush_lines : Stats.Counter.t option;
  mutable sc_fences : Stats.Counter.t option;
}

type t = {
  data : bytes;
  size : int;
  cost : Cost.t;
  numa_nodes : int;
  node_stripe : int;
  counters : Counters.t;
  (* Pre-resolved device counter cells: the per-access string lookups of
     Counters.add were measurable on the datapath. *)
  c_bytes_read : int ref;
  c_bytes_written : int ref;
  c_flushes : int ref;
  c_fences : int ref;
  mutable tracking : bool;
  pending : pending Flat_table.t; (* cache-line index -> undo info *)
  flushed_lines : Flat_vec.t;
      (* line indices whose pending entry transitioned to flushed since
         the last fence: the fence sweep visits exactly these instead of
         filtering every pending line *)
  mutable fence_sweep_visits : int; (* cumulative; observable for tests *)
  mutable fence_seq : int;
  mutable fence_hook : (int -> unit) option;
  mutable site : Site.t;
  mutable hooks : (hook_id * hook) list; (* installation order *)
  mutable next_hook_id : int;
  mutable legacy_hook : hook_id option; (* the set_event_hook slot *)
  poisoned : unit Flat_table.t; (* cache-line index -> MCE on load *)
  torn : unit Flat_table.t; (* 8-aligned offsets that tear at crash *)
  mutable stat_gen : int;
  mutable stat_cells : site_cells list;
}

let cl = Units.cacheline

let create ?(cost = Cost.optane) ?(numa_nodes = 1) ~size () =
  if size <= 0 then invalid_arg "Device.create: non-positive size";
  if numa_nodes <= 0 then invalid_arg "Device.create: non-positive numa_nodes";
  let size = Units.round_up size cl in
  let counters = Counters.create () in
  {
    data = Bytes.make size '\000';
    size;
    cost;
    numa_nodes;
    node_stripe = Units.round_up (size / numa_nodes) cl;
    counters;
    c_bytes_read = Counters.cell counters "pm.bytes_read";
    c_bytes_written = Counters.cell counters "pm.bytes_written";
    c_flushes = Counters.cell counters "pm.flushes";
    c_fences = Counters.cell counters "pm.fences";
    tracking = false;
    pending = Flat_table.create ~capacity:64 ~dummy:no_pending ();
    flushed_lines = Flat_vec.create ~capacity:64 ();
    fence_sweep_visits = 0;
    fence_seq = 0;
    fence_hook = None;
    site = Site.unknown;
    hooks = [];
    next_hook_id = 0;
    legacy_hook = None;
    poisoned = Flat_table.create ~capacity:8 ~dummy:() ();
    torn = Flat_table.create ~capacity:8 ~dummy:() ();
    stat_gen = -1;
    stat_cells = [];
  }

let size t = t.size
let numa_nodes t = t.numa_nodes

let node_of_offset t off =
  if t.numa_nodes = 1 then 0 else min (t.numa_nodes - 1) (off / t.node_stripe)

let counters t = t.counters
let cost t = t.cost
let reset_counters t = Counters.reset t.counters

let check_range t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Device: range [%d,%d) out of bounds (size %d)" off (off + len)
         t.size)

(* A load touching a poisoned line consumes the MCE before any data moves
   or cost is charged (the CPU never sees the bytes). *)
let check_poison t off len =
  if Flat_table.length t.poisoned > 0 && len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    for line = lo to hi do
      if Flat_table.mem t.poisoned line then raise (Media_error { off = line * cl })
    done
  end

(* Stores never fault, and rewriting an entire 64B line replaces the bad
   media contents: the poison clears (how pmem drivers repair poison —
   a full-line non-temporal overwrite).  Partial stores leave it set. *)
let clear_poison_on_store t off len =
  if Flat_table.length t.poisoned > 0 && len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    for line = lo to hi do
      if off <= line * cl && (line + 1) * cl <= off + len then
        Flat_table.remove t.poisoned line
    done
  end

let remote_factor t (cpu : Cpu.t) ~off ~write =
  if t.numa_nodes = 1 || cpu.node = node_of_offset t off then 1.
  else if write then t.cost.remote_write_factor
  else t.cost.remote_read_factor

(* Sequential lines pipeline: a run of n lines costs one full access latency
   plus a small pipelined per-line charge, plus the bandwidth term.
   Calibrated so single-threaded sequential memcpy lands near the paper's
   ~3GB/s PM write / ~6GB/s read.  The charge is per-extent arithmetic —
   O(1) in the number of lines touched. *)
let pipeline_factor = 0.08

let charge_read t (cpu : Cpu.t) ~off ~len =
  if len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    let extra = float_of_int (hi - lo) in
    let ns =
      t.cost.read_ns_per_cl
      +. (t.cost.read_ns_per_cl *. pipeline_factor *. extra)
      +. (t.cost.read_ns_per_byte *. float_of_int len)
    in
    let ns = ns *. remote_factor t cpu ~off ~write:false in
    Simclock.advance cpu.clock (int_of_float ns)
  end;
  t.c_bytes_read := !(t.c_bytes_read) + len

let charge_write t (cpu : Cpu.t) ~off ~len =
  if len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    let extra = float_of_int (hi - lo) in
    let ns =
      t.cost.write_ns_per_cl
      +. (t.cost.write_ns_per_cl *. pipeline_factor *. extra)
      +. (t.cost.write_ns_per_byte *. float_of_int len)
    in
    let ns = ns *. remote_factor t cpu ~off ~write:true in
    Simclock.advance cpu.clock (int_of_float ns)
  end;
  t.c_bytes_written := !(t.c_bytes_written) + len

(* The memoized per-site stat cells for the ambient site.  Capped: sites
   are module-level constants in practice, but a dynamically-created site
   must not grow the memo without bound — past the cap the uncached entry
   is returned and instruments resolve per call (the old behavior). *)
let site_cells t =
  let gen = Stats.Registry.generation Stats.global in
  if gen <> t.stat_gen then begin
    t.stat_gen <- gen;
    t.stat_cells <- []
  end;
  let site = t.site in
  let rec find = function
    | c :: rest -> if c.sc_site == site then c else find rest
    | [] ->
        let c =
          {
            sc_site = site;
            sc_store = None;
            sc_nt_store = None;
            sc_load = None;
            sc_flush_lines = None;
            sc_fences = None;
          }
        in
        if List.length t.stat_cells < 64 then t.stat_cells <- c :: t.stat_cells;
        c
  in
  find t.stat_cells

let site_counter site name = Stats.Counter.v ~labels:[ ("site", Site.to_string site) ] name

let stat_store t ~len ~nt =
  if Stats.enabled () then begin
    let c = site_cells t in
    let cell =
      if nt then
        match c.sc_nt_store with
        | Some r -> r
        | None ->
            let r = site_counter c.sc_site "pm.nt_store_bytes" in
            c.sc_nt_store <- Some r;
            r
      else
        match c.sc_store with
        | Some r -> r
        | None ->
            let r = site_counter c.sc_site "pm.store_bytes" in
            c.sc_store <- Some r;
            r
    in
    Stats.Counter.add cell len
  end

let stat_load t ~len =
  if Stats.enabled () then begin
    let c = site_cells t in
    let cell =
      match c.sc_load with
      | Some r -> r
      | None ->
          let r = site_counter c.sc_site "pm.load_bytes" in
          c.sc_load <- Some r;
          r
    in
    Stats.Counter.add cell len
  end

let stat_flush t ~lines =
  if Stats.enabled () then begin
    let c = site_cells t in
    let cell =
      match c.sc_flush_lines with
      | Some r -> r
      | None ->
          let r = site_counter c.sc_site "pm.flush_lines" in
          c.sc_flush_lines <- Some r;
          r
    in
    Stats.Counter.add cell lines
  end

let stat_fence t =
  if Stats.enabled () then begin
    let c = site_cells t in
    let cell =
      match c.sc_fences with
      | Some r -> r
      | None ->
          let r = site_counter c.sc_site "pm.fences" in
          c.sc_fences <- Some r;
          r
    in
    Stats.Counter.add cell 1
  end

(* Event-stream instrumentation: every installed hook observes every
   charged access plus the protocol annotations, tagged with the ambient
   site and (for data movement) the accessing CPU — the race detector
   needs to see which simulated thread issued each store.  Hooks run in
   installation order; uninstrumented devices pay one list check per
   access.  The specialized emit_* entry points build the event record
   only when a hook is installed, so the common uninstrumented access
   allocates nothing. *)
let dispatch ?cpu t ev =
  (* The binding snapshots the (immutable) hook list before dispatch:
     a hook that calls [remove_event_hook] — even on itself — replaces
     [t.hooks] with a new list, so every sibling installed at emit time
     still fires exactly once. *)
  match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun (_, h) -> h cpu t.site ev) hooks

let emit_store ?cpu t ~off ~len ~nt =
  (match t.hooks with
  | [] -> ()
  | _ -> dispatch ?cpu t (Store { off; len; nt }));
  stat_store t ~len ~nt

let emit_load ?cpu t ~off ~len =
  (match t.hooks with
  | [] -> ()
  | _ -> dispatch ?cpu t (Load { off; len }));
  stat_load t ~len

let current_site t = t.site

(* Hand-rolled unwind instead of Fun.protect: this brackets every
   persistence call, and the finally-closure allocation was visible in
   aging profiles. *)
let with_site t site f =
  let prev = t.site in
  t.site <- site;
  match f () with
  | v ->
      t.site <- prev;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      t.site <- prev;
      Printexc.raise_with_backtrace e bt

let add_event_hook t hook =
  let id = t.next_hook_id in
  t.next_hook_id <- id + 1;
  t.hooks <- t.hooks @ [ (id, hook) ];
  id

let remove_event_hook t id = t.hooks <- List.filter (fun (i, _) -> i <> id) t.hooks

let set_event_hook t hook =
  (match t.legacy_hook with
  | Some id ->
      remove_event_hook t id;
      t.legacy_hook <- None
  | None -> ());
  match hook with None -> () | Some h -> t.legacy_hook <- Some (add_event_hook t h)

let annotate t p = dispatch t (Protocol p)

let track_store ?(nt = false) t off len =
  if t.tracking && len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    for line = lo to hi do
      match Flat_table.find t.pending line with
      | Some p ->
          if nt then begin
            if not p.flushed then begin
              p.flushed <- true;
              Flat_vec.push t.flushed_lines line
            end
          end
          else p.flushed <- false
      | None ->
          let old_bytes = Bytes.sub t.data (line * cl) cl in
          Flat_table.set t.pending line { old_bytes; flushed = nt };
          if nt then Flat_vec.push t.flushed_lines line
    done
  end

let read t cpu ~off ~len ~dst ~dst_off =
  check_range t off len;
  check_poison t off len;
  charge_read t cpu ~off ~len;
  Bytes.blit t.data off dst dst_off len;
  emit_load ~cpu t ~off ~len

let write t cpu ~off ~src ~src_off ~len =
  check_range t off len;
  track_store t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.blit src src_off t.data off len;
  emit_store ~cpu t ~off ~len ~nt:false

let read_string t cpu ~off ~len =
  check_range t off len;
  check_poison t off len;
  charge_read t cpu ~off ~len;
  emit_load ~cpu t ~off ~len;
  Bytes.sub_string t.data off len

let write_string t cpu ~off s =
  let len = String.length s in
  check_range t off len;
  track_store t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.blit_string s 0 t.data off len;
  emit_store ~cpu t ~off ~len ~nt:false

(* Non-temporal stores: bypass the cache and become durable at the next
   fence without explicit clwb (the fast path PM file systems use for bulk
   data). *)
let write_nt t cpu ~off ~src ~src_off ~len =
  check_range t off len;
  track_store ~nt:true t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.blit src src_off t.data off len;
  emit_store ~cpu t ~off ~len ~nt:true

let write_string_nt t cpu ~off s =
  let len = String.length s in
  check_range t off len;
  track_store ~nt:true t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.blit_string s 0 t.data off len;
  emit_store ~cpu t ~off ~len ~nt:true

let memset_nt t cpu ~off ~len c =
  check_range t off len;
  track_store ~nt:true t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.fill t.data off len c;
  emit_store ~cpu t ~off ~len ~nt:true

let copy_within_nt t cpu ~src ~dst ~len =
  check_range t src len;
  check_range t dst len;
  check_poison t src len;
  charge_read t cpu ~off:src ~len;
  track_store ~nt:true t dst len;
  clear_poison_on_store t dst len;
  charge_write t cpu ~off:dst ~len;
  Bytes.blit t.data src t.data dst len;
  emit_load ~cpu t ~off:src ~len;
  emit_store ~cpu t ~off:dst ~len ~nt:true

let memset t cpu ~off ~len c =
  check_range t off len;
  track_store t off len;
  clear_poison_on_store t off len;
  charge_write t cpu ~off ~len;
  Bytes.fill t.data off len c;
  emit_store ~cpu t ~off ~len ~nt:false

let copy_within t cpu ~src ~dst ~len =
  check_range t src len;
  check_range t dst len;
  check_poison t src len;
  charge_read t cpu ~off:src ~len;
  track_store t dst len;
  clear_poison_on_store t dst len;
  charge_write t cpu ~off:dst ~len;
  Bytes.blit t.data src t.data dst len;
  emit_load ~cpu t ~off:src ~len;
  emit_store ~cpu t ~off:dst ~len ~nt:false

let read_u64 t cpu ~off =
  check_range t off 8;
  check_poison t off 8;
  charge_read t cpu ~off ~len:8;
  emit_load ~cpu t ~off ~len:8;
  Bytes.get_int64_le t.data off

let write_u64 t cpu ~off v =
  check_range t off 8;
  track_store t off 8;
  charge_write t cpu ~off ~len:8;
  Bytes.set_int64_le t.data off v;
  emit_store ~cpu t ~off ~len:8 ~nt:false

let peek t ~off ~len ~dst ~dst_off =
  check_range t off len;
  check_poison t off len;
  Bytes.blit t.data off dst dst_off len

let touch_read t cpu ~off ~len =
  check_range t off len;
  check_poison t off len;
  charge_read t cpu ~off ~len;
  emit_load ~cpu t ~off ~len

let flush t (cpu : Cpu.t) ~off ~len =
  check_range t off len;
  if len > 0 then begin
    let lo = off / cl and hi = (off + len - 1) / cl in
    let n_lines = hi - lo + 1 in
    t.c_flushes := !(t.c_flushes) + n_lines;
    Simclock.advance cpu.clock (int_of_float (t.cost.flush_ns *. float_of_int n_lines));
    if t.tracking then
      for line = lo to hi do
        match Flat_table.find t.pending line with
        | Some p ->
            if not p.flushed then begin
              p.flushed <- true;
              Flat_vec.push t.flushed_lines line
            end
        | None -> ()
      done;
    (match t.hooks with
    | [] -> ()
    | _ -> dispatch ~cpu t (Flush { off; len }));
    stat_flush t ~lines:n_lines
  end

let fence t (cpu : Cpu.t) =
  incr t.c_fences;
  Simclock.advance cpu.clock (int_of_float t.cost.fence_ns);
  t.fence_seq <- t.fence_seq + 1;
  (match t.fence_hook with Some hook -> hook t.fence_seq | None -> ());
  (match t.hooks with [] -> () | _ -> dispatch ~cpu t Fence);
  stat_fence t;
  if t.tracking then begin
    (* O(flushed): only lines recorded as flushed since the last fence
       are visited, not every pending line. *)
    Flat_vec.iter t.flushed_lines (fun line ->
        t.fence_sweep_visits <- t.fence_sweep_visits + 1;
        match Flat_table.find t.pending line with
        | Some p when p.flushed -> Flat_table.remove t.pending line
        | _ -> ());
    Flat_vec.clear t.flushed_lines
  end

let persist t cpu ~off ~len =
  flush t cpu ~off ~len;
  fence t cpu

let set_tracking t on =
  t.tracking <- on;
  if not on then begin
    Flat_table.clear t.pending;
    Flat_vec.clear t.flushed_lines
  end

let pending_lines t = Flat_table.keys_sorted t.pending

let pending_old t line =
  match Flat_table.find t.pending line with
  | Some p -> Some (Bytes.copy p.old_bytes)
  | None -> None

let fence_sweep_visits t = t.fence_sweep_visits

(* ------------------------------------------------------------------ *)
(* Fault injection.  Deterministic campaigns plant faults directly on
   the media; the checkers then verify the stack detects them.  Counted
   per kind in the device counters and the global stats registry. *)

let fault_kind_name = function
  | Bit_flip _ -> "bit_flip"
  | Torn_word _ -> "torn_word"
  | Poison_line _ -> "poison_line"

let inject t fault =
  (match fault with
  | Bit_flip { off; bit } ->
      check_range t off 1;
      if bit < 0 || bit > 7 then invalid_arg "Device.inject: bit outside 0..7";
      Bytes.set t.data off (Char.chr (Char.code (Bytes.get t.data off) lxor (1 lsl bit)))
  | Torn_word { off } ->
      check_range t off 8;
      Flat_table.set t.torn (off land lnot 7) ()
  | Poison_line { off } ->
      check_range t off 1;
      Flat_table.set t.poisoned (off / cl) ());
  Counters.incr t.counters "pm.faults_injected";
  if Stats.enabled () then
    Stats.counter_add ~labels:[ ("kind", fault_kind_name fault) ] "fault.injected" 1

let poisoned_lines t = Flat_table.keys_sorted t.poisoned

let clear_faults t =
  Flat_table.clear t.poisoned;
  Flat_table.clear t.torn

let crash_image t ~persisted =
  if not t.tracking then invalid_arg "Device.crash_image: tracking disabled";
  let counters = Counters.create () in
  let img =
    {
      data = Bytes.copy t.data;
      size = t.size;
      cost = t.cost;
      numa_nodes = t.numa_nodes;
      node_stripe = t.node_stripe;
      counters;
      c_bytes_read = Counters.cell counters "pm.bytes_read";
      c_bytes_written = Counters.cell counters "pm.bytes_written";
      c_flushes = Counters.cell counters "pm.flushes";
      c_fences = Counters.cell counters "pm.fences";
      tracking = false;
      pending = Flat_table.create ~capacity:8 ~dummy:no_pending ();
      flushed_lines = Flat_vec.create ~capacity:8 ();
      fence_sweep_visits = 0;
      fence_seq = 0;
      fence_hook = None;
      site = Site.unknown;
      hooks = [];
      next_hook_id = 0;
      legacy_hook = None;
      poisoned = Flat_table.copy t.poisoned (* media faults survive a crash *);
      torn = Flat_table.create ~capacity:8 ~dummy:() ();
      stat_gen = -1;
      stat_cells = [];
    }
  in
  Flat_table.keys_sorted t.pending
  |> List.iter (fun line ->
         match Flat_table.find t.pending line with
         | Some p when not (persisted line) -> Bytes.blit p.old_bytes 0 img.data (line * cl) cl
         | _ -> ());
  (* Torn words compose with the surviving-line choice: even when the
     containing line is chosen as persisted, the registered 8-byte word
     reverts to its pre-store bytes (intra-line tearing — the store of
     that word never reached the media).  Words on lines with no pending
     store are already durable and cannot tear. *)
  Flat_table.keys_sorted t.torn
  |> List.iter (fun off ->
         match Flat_table.find t.pending (off / cl) with
         | Some p -> Bytes.blit p.old_bytes (off mod cl) img.data off 8
         | None -> ());
  img

let fence_seq t = t.fence_seq

let set_fence_hook t hook = t.fence_hook <- hook

let reset_fence_seq t = t.fence_seq <- 0

let save_file t path =
  let oc = open_out_bin path in
  output_bytes oc t.data;
  close_out oc

let load_file ?cost ?numa_nodes path =
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  let t = create ?cost ?numa_nodes ~size () in
  really_input ic t.data 0 size;
  close_in ic;
  t
