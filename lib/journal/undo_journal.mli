(** PM-optimised, fine-grained undo journal (§3.4–§3.6).

    One instance per logical CPU in WineFS (a single shared instance models
    PMFS).  Each log entry is one 64B cache line; a transaction writes a
    START entry, undo records (the {e old} contents of every range it will
    modify in place), then a COMMIT entry.  All operations are synchronous,
    so journal space is reclaimed as soon as the transaction commits.
    Transaction IDs come from a counter shared across all per-CPU journals
    so multi-journal recovery can roll back in global order (§3.6).

    Undo records larger than the 28-byte inline payload spill the old data
    into the journal's copy area (used by WineFS's data journaling of
    aligned extents).

    On-PM layout: a 64B header (wraparound counter + tail slot), a ring of
    64B entry slots, then the copy area.  Every entry carries a CRC32C over
    its 64 bytes (checksum field zeroed); recovery scans forward from the
    persisted tail, accepting entries whose wraparound counter matches the
    expected generation {e and} whose checksum verifies — a torn or
    bit-rotted COMMIT record is therefore never honoured, and any trailing
    transaction without a verified COMMIT is rolled back by rewriting the
    journaled old bytes. *)

open Repro_util

(** Global transaction-ID counter shared by a set of journals.  The
    counter is the one piece of journal state shared across CPUs, so it
    takes an internal [Sched] mutex around each draw (a plain lock
    outside a scheduler run). *)
module Txn_counter : sig
  type t

  val create : unit -> t
  val peek : t -> int
end

type t

val bytes_needed : entries:int -> copy_bytes:int -> int
(** PM footprint of a journal with the given geometry. *)

val entry_bytes : int
(** 64. *)

val format : Repro_pmem.Device.t -> Cpu.t -> Txn_counter.t -> off:int -> entries:int -> copy_bytes:int -> t
(** Initialise an empty journal at device offset [off]. *)

val attach : Repro_pmem.Device.t -> Txn_counter.t -> off:int -> entries:int -> copy_bytes:int -> t
(** Bind to an existing (clean) journal without recovery. *)

type txn

val begin_txn : t -> Cpu.t -> reserve:int -> txn
(** Start a transaction that will log at most [reserve] entries (the paper
    reserves at most 10 per system call).  Writes and persists the START
    entry.  Only one transaction may be open per journal (callers hold the
    per-CPU journal lock); enforced. *)

val log_range : t -> Cpu.t -> txn -> addr:int -> len:int -> unit
(** Record the current contents of [addr, addr+len) as undo data — inline
    when it fits a cache line, otherwise via the copy area.  Must precede
    the in-place update. *)

val commit : t -> Cpu.t -> txn -> unit
(** Persist COMMIT, reclaim the space. *)

val abort : t -> Cpu.t -> txn -> unit
(** Roll back the in-place updates using the undo records and reclaim. *)

val copy_capacity : t -> int
val entries_capacity : t -> int

(** Mount-time recovery.  Grouped apart from the transaction API so the
    narrow txn-facing surface (begin/log/commit/abort) is all that normal
    operation ever touches; only recovery orchestration (WineFS's
    {!Winefs.Txn} layer, tests) may scan and roll back. *)
module Recovery : sig
  type pending = { txn_id : int; records : (int * string) list (* addr, old bytes *) }

  val scan_pending : t -> Cpu.t -> pending option
  (** Recovery phase 1: the (at most one) unfinished transaction in this
      journal, without modifying anything. *)

  val rollback_pending : t -> Cpu.t -> pending -> unit
  (** Recovery phase 2: rewrite old bytes and reset the journal.  Call in
      descending global txn-id order across journals. *)

  val reset : t -> Cpu.t -> unit
  (** Clear the journal (end of recovery). *)

  val csum_failures : t -> int
  (** Entries whose wraparound generation matched but whose CRC32C did
      not, observed by scans on this handle — each is a detected (and
      refused) journal corruption. *)

  type entry = {
    e_slot : int;
    e_txn : int;
    e_kind : string;  (** START, COMMIT, UNDO-INLINE or UNDO-EXTENT *)
    e_addr : int;
    e_len : int;
  }

  val iter_live : t -> Cpu.t -> (entry -> unit) -> unit
  (** Record iteration without replay side effects (fsck): visit every
      verified entry in the live window scan_pending would honour — from
      the persisted tail to the first stale or torn slot — reading only
      entry slots, writing nothing, rolling back nothing. *)
end
