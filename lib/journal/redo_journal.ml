open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Stats = Repro_stats.Stats

let site_header = Site.v "redo" "header"
let site_format = Site.v "redo" "format"
let site_record = Site.v "redo" "record"
let site_checkpoint = Site.v "redo" "checkpoint"
let site_commit = Site.v "redo" "commit"
let site_recovery = Site.v "redo" "recovery"

(* Sanitizer transaction ids: negative of the commit sequence, so they can
   never collide with the undo journals' positive global counter. *)
let txn_id_of_seq seq = -seq

let header_bytes = 64
let rec_header_bytes = 64
let magic = 0x4A42443252494E47L (* "JBD2RING" *)

(* Record header layout (64B):
   0  magic-lite u64 (distinguishes formatted slots)
   8  seq   u64
   16 type  u64  (1 = descriptor, 2 = commit)
   24 addr  u64
   32 len   u64
   40 csum  u32  (CRC32C over the 64B header with this field zeroed,
                  then the data payload — so a commit block is only
                  honoured, and a descriptor only replayed, when every
                  journalled byte verifies) *)
let rec_magic = 0x4A524543L (* u64 literal *)
let rec_csum_off = 40

type t = {
  dev : Device.t;
  base : int;
  size : int; (* ring bytes (excluding header) *)
  lock : Sched.mutex;
  mutable seq : int; (* last committed sequence *)
  mutable head : int; (* next free byte in ring *)
  running : (int, string) Hashtbl.t; (* addr -> new data *)
  mutable running_order : int list;
  mutable csum_failures : int; (* records rejected by CRC during recovery *)
}

let record_csum header data =
  let acc = Crc32c.update Crc32c.init header ~off:0 ~len:rec_header_bytes in
  let acc =
    if String.length data = 0 then acc
    else Crc32c.update_string acc data ~off:0 ~len:(String.length data)
  in
  Crc32c.finish acc

let bytes_needed ~size = header_bytes + size

(* Race-detector annotation for the journal's shared DRAM state (running
   table, order list, seq/head cursors).  The redo journal is one shared
   instance serving every CPU, so all mutation happens under [t.lock]. *)
let note t ~write ~site =
  if Sched.monitored () then
    Sched.access ~obj:(Printf.sprintf "journal.redo[%#x]" t.base) ~write ~site

let write_header t cpu =
  Device.with_site t.dev site_header @@ fun () ->
  let buf = Bytes.make header_bytes '\000' in
  Bytes.set_int64_le buf 0 magic;
  Bytes.set_int64_le buf 8 (Int64.of_int t.seq);
  Bytes.set_int64_le buf 16 (Int64.of_int t.head);
  Device.write t.dev cpu ~off:t.base ~src:buf ~src_off:0 ~len:header_bytes;
  Device.persist t.dev cpu ~off:t.base ~len:header_bytes

let format dev cpu ~off ~size =
  if size < 4096 then invalid_arg "Redo_journal.format: ring too small";
  let t =
    {
      dev;
      base = off;
      size;
      lock = Sched.create_mutex ~name:"redo_journal:t.lock" ();
      seq = 0;
      head = 0;
      running = Hashtbl.create 64;
      running_order = [];
      csum_failures = 0;
    }
  in
  (* The zeroed ring must be durable: recovery parses it, and a crash
     before the first commit would otherwise replay stale garbage. *)
  Device.with_site dev site_format (fun () ->
      Device.memset dev cpu ~off:(off + header_bytes) ~len:size '\000';
      Device.persist dev cpu ~off:(off + header_bytes) ~len:size);
  write_header t cpu;
  t

let attach dev ~off ~size =
  let buf = Bytes.create header_bytes in
  Device.peek dev ~off ~len:header_bytes ~dst:buf ~dst_off:0;
  if Bytes.get_int64_le buf 0 <> magic then invalid_arg "Redo_journal.attach: bad magic";
  {
    dev;
    base = off;
    size;
    lock = Sched.create_mutex ~name:"redo_journal:t.lock" ();
    seq = Int64.to_int (Bytes.get_int64_le buf 8);
    head = Int64.to_int (Bytes.get_int64_le buf 16);
    running = Hashtbl.create 64;
    running_order = [];
    csum_failures = 0;
  }

let add t _cpu ~addr ~data =
  if String.length data = 0 then invalid_arg "Redo_journal.add: empty record";
  (* The running table is shared across CPUs; mutating it outside [t.lock]
     would race with a concurrent [commit] draining it. *)
  Sched.with_lock t.lock (fun () ->
      note t ~write:true ~site:"redo.add";
      if not (Hashtbl.mem t.running addr) then t.running_order <- addr :: t.running_order;
      Hashtbl.replace t.running addr data)

let running_records t =
  Sched.with_lock t.lock (fun () ->
      note t ~write:false ~site:"redo.running_records";
      Hashtbl.length t.running)

let record_size data_len = rec_header_bytes + Units.round_up data_len 64

let write_record t cpu ~seq ~ty ~addr ~data =
  Device.with_site t.dev site_record @@ fun () ->
  let dlen = String.length data in
  let total = record_size dlen in
  if t.head + total > t.size then begin
    t.head <- 0 (* wrap; records never straddle *);
    if Stats.enabled () then Stats.counter_add "journal.redo.wraps" 1
  end;
  let off = t.base + header_bytes + t.head in
  let buf = Bytes.make rec_header_bytes '\000' in
  Bytes.set_int64_le buf 0 rec_magic;
  Bytes.set_int64_le buf 8 (Int64.of_int seq);
  Bytes.set_int64_le buf 16 (Int64.of_int ty);
  Bytes.set_int64_le buf 24 (Int64.of_int addr);
  Bytes.set_int64_le buf 32 (Int64.of_int dlen);
  Crc32c.put buf ~csum_off:rec_csum_off (record_csum buf data);
  Device.write t.dev cpu ~off ~src:buf ~src_off:0 ~len:rec_header_bytes;
  if dlen > 0 then Device.write_string t.dev cpu ~off:(off + rec_header_bytes) data;
  Device.flush t.dev cpu ~off ~len:total;
  t.head <- t.head + total

let commit t cpu =
  Sched.with_lock t.lock (fun () ->
      note t ~write:true ~site:"redo.commit";
      if Hashtbl.length t.running > 0 then begin
        let seq = t.seq + 1 in
        let records =
          List.rev_map (fun addr -> (addr, Hashtbl.find t.running addr)) t.running_order
        in
        let txn = txn_id_of_seq seq in
        Device.annotate t.dev (Txn_begin { txn });
        (* Journal all records, then the commit block; one fence covers the
           record flushes, a second orders the commit block after them. *)
        Device.with_site t.dev site_commit (fun () ->
            List.iter (fun (addr, data) -> write_record t cpu ~seq ~ty:1 ~addr ~data) records;
            Device.fence t.dev cpu;
            write_record t cpu ~seq ~ty:2 ~addr:0 ~data:"";
            Device.fence t.dev cpu);
        (* The commit block is durable: replay can reconstruct every record,
           so in-place checkpointing is crash-safe from here. *)
        List.iter
          (fun (addr, data) ->
            Device.annotate t.dev (Covered { txn; addr; len = String.length data }))
          records;
        (* Checkpoint in place. *)
        Device.with_site t.dev site_checkpoint (fun () ->
            List.iter
              (fun (addr, data) ->
                Device.write_string t.dev cpu ~off:addr data;
                Device.flush t.dev cpu ~off:addr ~len:(String.length data))
              records;
            Device.fence t.dev cpu);
        t.seq <- seq;
        (* The header advance logically truncates the journal; every
           checkpointed line must already be durable. *)
        Device.with_site t.dev site_header (fun () ->
            Device.annotate t.dev (Txn_commit { txn }));
        write_header t cpu;
        if Stats.enabled () then begin
          Stats.counter_add "journal.redo.commits" 1;
          Stats.counter_add "journal.redo.records" (List.length records);
          Stats.gauge_set "journal.redo.head_bytes" t.head
        end;
        Hashtbl.reset t.running;
        t.running_order <- []
      end)

let read_record t cpu ~pos ~expected_seq =
  if pos + rec_header_bytes > t.size then None
  else
    let off = t.base + header_bytes + pos in
    let buf = Bytes.create rec_header_bytes in
    Device.read t.dev cpu ~off ~len:rec_header_bytes ~dst:buf ~dst_off:0;
    if Bytes.get_int64_le buf 0 <> rec_magic then None
    else
      let seq = Int64.to_int (Bytes.get_int64_le buf 8) in
      let ty = Int64.to_int (Bytes.get_int64_le buf 16) in
      let addr = Int64.to_int (Bytes.get_int64_le buf 24) in
      let dlen = Int64.to_int (Bytes.get_int64_le buf 32) in
      if seq <> expected_seq || (ty <> 1 && ty <> 2) then None
      else if dlen < 0 || pos + record_size dlen > t.size then None
      else
        let data =
          if dlen > 0 then Device.read_string t.dev cpu ~off:(off + rec_header_bytes) ~len:dlen
          else ""
        in
        let stored = Crc32c.get buf ~csum_off:rec_csum_off in
        Bytes.set_int32_le buf rec_csum_off 0l;
        if record_csum buf data <> stored then begin
          (* Magic and sequence matched, so this record claims to belong to
             the transaction being replayed: a CRC mismatch is detected
             corruption, and refusing it truncates replay at this point. *)
          t.csum_failures <- t.csum_failures + 1;
          None
        end
        else Some (ty, addr, data, record_size dlen)

let recover t cpu =
  note t ~write:true ~site:"redo.recover";
  Device.with_site t.dev site_recovery @@ fun () ->
  (* Scan forward from the persisted head for transactions that were
     journalled but whose header update (or checkpoint) was lost. *)
  let replayed = ref 0 in
  let pos = ref t.head and expected = ref (t.seq + 1) in
  let continue_scan = ref true in
  while !continue_scan do
    (* Collect one transaction. *)
    let records = ref [] in
    let committed = ref false in
    let cursor = ref !pos in
    let in_txn = ref true in
    while !in_txn do
      (* Records never straddle the ring end; the writer may have wrapped
         to 0 even when a bare header would still have fit, so retry at 0
         on a parse failure. *)
      let try_pos = if !cursor + rec_header_bytes > t.size then 0 else !cursor in
      let parsed =
        match read_record t cpu ~pos:try_pos ~expected_seq:!expected with
        | Some r -> Some (try_pos, r)
        | None when try_pos <> 0 -> (
            match read_record t cpu ~pos:0 ~expected_seq:!expected with
            | Some r -> Some (0, r)
            | None -> None)
        | None -> None
      in
      match parsed with
      | None -> in_txn := false
      | Some (at, (ty, addr, data, sz)) ->
          cursor := at + sz;
          if ty = 2 then begin
            committed := true;
            in_txn := false
          end
          else records := (addr, data) :: !records
    done;
    if !committed then begin
      List.iter
        (fun (addr, data) ->
          Device.write_string t.dev cpu ~off:addr data;
          Device.persist t.dev cpu ~off:addr ~len:(String.length data))
        (List.rev !records);
      incr replayed;
      t.seq <- !expected;
      t.head <- !cursor;
      pos := !cursor;
      incr expected
    end
    else continue_scan := false
  done;
  if !replayed > 0 then write_header t cpu;
  if Stats.enabled () && !replayed > 0 then
    Stats.counter_add "journal.redo.replayed_txns" !replayed;
  !replayed

let csum_failures t = t.csum_failures
