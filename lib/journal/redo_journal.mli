(** Global redo (write-ahead) journal — the JBD2 model used by the
    ext4-DAX / xfs-DAX / SplitFS baselines.

    Metadata updates are buffered in the running transaction (in DRAM) and
    become durable at {!commit}: the committer takes a single global lock
    — the stop-the-world fsync behaviour the paper blames for ext4/xfs's
    poor scalability (§5.6) — writes every buffered record plus a commit
    block to the circular journal, persists it, then checkpoints the new
    bytes in place.

    Recovery replays committed transactions found in the journal and
    discards the rest (uncommitted buffered updates are simply lost, which
    is the metadata-consistency-only guarantee of this FS class, §3.3). *)

open Repro_util

type t

val bytes_needed : size:int -> int

val format : Repro_pmem.Device.t -> Cpu.t -> off:int -> size:int -> t
val attach : Repro_pmem.Device.t -> off:int -> size:int -> t

val add : t -> Cpu.t -> addr:int -> data:string -> unit
(** Buffer a metadata update in the running transaction and apply it to
    the in-place location immediately in DRAM terms — the PM in-place
    write happens at commit (checkpoint).  Records are coalesced by
    address. *)

val commit : t -> Cpu.t -> unit
(** Flush the running transaction (no-op when empty).  Takes the global
    journal lock. *)

val running_records : t -> int

val recover : t -> Cpu.t -> int
(** Replay fully-committed transactions left in the journal; returns how
    many were replayed.  Buffered-but-uncommitted updates are gone.  Each
    record carries a CRC32C over its header and payload; replay stops at
    the first record that fails to verify, so a corrupt commit block or
    descriptor is refused rather than replayed. *)

val csum_failures : t -> int
(** Records whose magic and sequence matched but whose CRC32C did not,
    observed by recovery on this handle. *)
