module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Stats = Repro_stats.Stats

(* Registry metrics (global, gated on {!Stats.enabled}): commit/abort/wrap
   counters plus a ring-occupancy gauge, so bench artifacts expose journal
   traffic and pressure without a device event hook. *)
let stat n = if Stats.enabled () then Stats.counter_add n 1

let site_header = Site.v "journal" "header"
let site_format = Site.v "journal" "format"
let site_entry = Site.v "journal" "entry"
let site_undo_copy = Site.v "journal" "undo-copy"
let site_commit = Site.v "journal" "commit"
let site_abort = Site.v "journal" "abort"
let site_recovery = Site.v "journal" "recovery"
let site_reclaim = Site.v "journal" "reclaim"

module Txn_counter = struct
  (* One counter is shared by every per-CPU journal (§3.6), so unlike the
     journals themselves it is cross-CPU mutable state and takes a lock.
     Outside the scheduler the lock degrades to a no-op, so single-
     threaded callers are unaffected. *)
  type t = { mutable next : int; mu : Sched.mutex }

  let create () = { next = 1; mu = Sched.create_mutex ~name:"undo_journal:t.mu" () }

  let note ~write ~site =
    if Sched.monitored () then Sched.access ~obj:"journal.txn_counter" ~write ~site

  let take t =
    Sched.with_lock t.mu (fun () ->
        note ~write:true ~site:"txn_counter.take";
        let id = t.next in
        t.next <- t.next + 1;
        id)

  let peek t =
    Sched.with_lock t.mu (fun () ->
        note ~write:false ~site:"txn_counter.peek";
        t.next)
end

module Crc = Repro_util.Crc32c

let entry_bytes = 64
let header_bytes = 64
let inline_max = 24
let magic = 0x57494E454A524E4CL (* "WINEJRNL" *)

(* Entry slot layout (64B):
   0  txn_id        u64
   8  wrap          u32  | type u8 | inline_len u8 | pad u16   (packed u64)
   16 addr          u64
   24 len           u64
   32 copy_off      u32  (copy-area device offsets are far below 4GB)
   36 csum          u32  (CRC32C over the 64B entry, csum field zeroed)
   40 inline data   24B

   Recovery honours an entry — COMMIT records included — only when the
   checksum verifies, so a torn or bit-rotted commit record demotes its
   transaction to uncommitted (rolled back) instead of being trusted. *)
let entry_csum_off = 36

type entry_type = Start | Commit | Data_inline | Data_extent

let type_code = function Start -> 1 | Commit -> 2 | Data_inline -> 3 | Data_extent -> 4

let type_of_code = function
  | 1 -> Some Start
  | 2 -> Some Commit
  | 3 -> Some Data_inline
  | 4 -> Some Data_extent
  | _ -> None

type t = {
  dev : Device.t;
  counter : Txn_counter.t;
  base : int; (* header offset *)
  slots : int; (* entry capacity *)
  copy_bytes : int;
  mutable head : int; (* next free slot *)
  mutable wrap : int;
  mutable open_txn : bool;
  mutable unreclaimed : int; (* committed txns since the last header persist *)
  mutable slots_since_reclaim : int;
  mutable csum_failures : int; (* entries rejected by CRC during scans *)
}

type txn = {
  id : int;
  reserve : int;
  mutable used : int;
  mutable copy_used : int;
  mutable undo : (int * string) list; (* addr, old bytes — for abort *)
}

(* Race-detector annotation for the journal's DRAM cursor state (head,
   wrap, open_txn).  A journal belongs to one CPU in WineFS, so these
   must stay thread-exclusive — the detector flags any cross-CPU use. *)
let note t ~write ~site =
  if Sched.monitored () then
    Sched.access ~obj:(Printf.sprintf "journal.undo[%#x]" t.base) ~write ~site

let bytes_needed ~entries ~copy_bytes = header_bytes + (entries * entry_bytes) + copy_bytes

let entries_capacity t = t.slots
let copy_capacity t = t.copy_bytes

let slot_off t i = t.base + header_bytes + (i * entry_bytes)
let copy_off t = t.base + header_bytes + (t.slots * entry_bytes)

let write_header t cpu =
  Device.with_site t.dev site_header @@ fun () ->
  let buf = Bytes.make header_bytes '\000' in
  Bytes.set_int64_le buf 0 magic;
  Bytes.set_int64_le buf 8 (Int64.of_int t.wrap);
  Bytes.set_int64_le buf 16 (Int64.of_int t.head);
  Device.write t.dev cpu ~off:t.base ~src:buf ~src_off:0 ~len:header_bytes;
  Device.persist t.dev cpu ~off:t.base ~len:header_bytes

let format dev cpu counter ~off ~entries ~copy_bytes =
  if entries <= 2 then invalid_arg "Undo_journal.format: too few entries";
  let t =
    { dev; counter; base = off; slots = entries; copy_bytes; head = 0; wrap = 1;
      open_txn = false; unreclaimed = 0; slots_since_reclaim = 0; csum_failures = 0 }
  in
  (* Zero the slot area so stale bytes never parse as valid entries; the
     zeroes must be durable or a crash before first use leaves garbage
     that recovery would parse. *)
  Device.with_site dev site_format (fun () ->
      Device.memset dev cpu ~off:(slot_off t 0) ~len:(entries * entry_bytes) '\000';
      Device.persist dev cpu ~off:(slot_off t 0) ~len:(entries * entry_bytes));
  write_header t cpu;
  t

let attach dev counter ~off ~entries ~copy_bytes =
  let t =
    { dev; counter; base = off; slots = entries; copy_bytes; head = 0; wrap = 1;
      open_txn = false; unreclaimed = 0; slots_since_reclaim = 0; csum_failures = 0 }
  in
  let buf = Bytes.create header_bytes in
  Device.peek dev ~off ~len:header_bytes ~dst:buf ~dst_off:0;
  if Bytes.get_int64_le buf 0 <> magic then invalid_arg "Undo_journal.attach: bad magic";
  t.wrap <- Int64.to_int (Bytes.get_int64_le buf 8);
  t.head <- Int64.to_int (Bytes.get_int64_le buf 16);
  t

let write_entry t cpu ~ty ~txn_id ~addr ~len ~copy ~inline =
  Device.with_site t.dev site_entry @@ fun () ->
  note t ~write:true ~site:"undo.write_entry";
  let i = t.head in
  let buf = Bytes.make entry_bytes '\000' in
  Bytes.set_int64_le buf 0 (Int64.of_int txn_id);
  let inline_len = String.length inline in
  let packed =
    Int64.logor
      (Int64.of_int (t.wrap land 0xFFFFFFFF))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (type_code ty)) 32)
         (Int64.shift_left (Int64.of_int inline_len) 40))
  in
  Bytes.set_int64_le buf 8 packed;
  Bytes.set_int64_le buf 16 (Int64.of_int addr);
  Bytes.set_int64_le buf 24 (Int64.of_int len);
  Bytes.set_int32_le buf 32 (Int32.of_int (copy land 0xFFFFFFFF));
  Bytes.blit_string inline 0 buf 40 inline_len;
  Crc.set_zeroed buf ~off:0 ~len:entry_bytes ~csum_off:entry_csum_off;
  Device.write t.dev cpu ~off:(slot_off t i) ~src:buf ~src_off:0 ~len:entry_bytes;
  Device.persist t.dev cpu ~off:(slot_off t i) ~len:entry_bytes;
  t.head <- t.head + 1;
  t.slots_since_reclaim <- t.slots_since_reclaim + 1;
  if Stats.enabled () then begin
    Stats.counter_add "journal.undo.entries" 1;
    Stats.gauge_set "journal.undo.occupancy_slots" t.slots_since_reclaim
  end;
  if t.head >= t.slots then begin
    t.head <- 0;
    t.wrap <- t.wrap + 1;
    stat "journal.undo.wraps"
  end

(* Space reclamation runs in the background in WineFS (§5.7): commits
   leave the persisted tail behind and a periodic pass advances it.
   Recovery copes by scanning past committed transactions. *)
let reclaim_threshold = 24

let reclaim t cpu =
  note t ~write:true ~site:"undo.reclaim";
  t.open_txn <- false;
  write_header t cpu;
  t.unreclaimed <- 0;
  t.slots_since_reclaim <- 0;
  if Stats.enabled () then begin
    Stats.counter_add "journal.undo.reclaims" 1;
    Stats.gauge_set "journal.undo.occupancy_slots" 0
  end

let invalidate_head_slot_fwd t cpu =
  Device.with_site t.dev site_reclaim (fun () ->
      Device.write t.dev cpu ~off:(slot_off t t.head) ~src:(Bytes.make entry_bytes '\000')
        ~src_off:0 ~len:entry_bytes;
      Device.persist t.dev cpu ~off:(slot_off t t.head) ~len:entry_bytes)

let begin_txn t cpu ~reserve =
  note t ~write:true ~site:"undo.begin_txn";
  if t.open_txn then invalid_arg "Undo_journal: transaction already open";
  if reserve + 2 > t.slots then invalid_arg "Undo_journal: reservation exceeds capacity";
  (* The ring must never lap its own unreclaimed entries: reclaim now if
     this reservation could reach them. *)
  if t.slots_since_reclaim + reserve + 2 >= t.slots then reclaim t cpu;
  t.open_txn <- true;
  let id = Txn_counter.take t.counter in
  write_entry t cpu ~ty:Start ~txn_id:id ~addr:0 ~len:0 ~copy:0 ~inline:"";
  Device.annotate t.dev (Txn_begin { txn = id });
  { id; reserve; used = 0; copy_used = 0; undo = [] }

let log_range t cpu txn ~addr ~len =
  if not t.open_txn then invalid_arg "Undo_journal.log_range: no open transaction";
  if txn.used >= txn.reserve then invalid_arg "Undo_journal: reservation exhausted";
  if len <= 0 then invalid_arg "Undo_journal.log_range: non-positive length";
  let old = Device.read_string t.dev cpu ~off:addr ~len in
  txn.undo <- (addr, old) :: txn.undo;
  (if len <= inline_max then
     write_entry t cpu ~ty:Data_inline ~txn_id:txn.id ~addr ~len ~copy:0 ~inline:old
   else begin
     if txn.copy_used + len > t.copy_bytes then
       invalid_arg "Undo_journal: copy area exhausted (split the transaction)";
     let dst = copy_off t + txn.copy_used in
     (* Bulk undo data streams with non-temporal stores + fence. *)
     Device.with_site t.dev site_undo_copy (fun () ->
         Device.write_string_nt t.dev cpu ~off:dst old;
         Device.fence t.dev cpu);
     write_entry t cpu ~ty:Data_extent ~txn_id:txn.id ~addr ~len ~copy:dst ~inline:"";
     txn.copy_used <- txn.copy_used + len
   end);
  (* write_entry persisted the undo record: in-place stores to the range
     are crash-safe from here on. *)
  Device.annotate t.dev (Covered { txn = txn.id; addr; len });
  txn.used <- txn.used + 1

let commit t cpu txn =
  note t ~write:true ~site:"undo.commit";
  if not t.open_txn then invalid_arg "Undo_journal.commit: no open transaction";
  (* All flushed in-place updates must be durable strictly before the
     COMMIT entry is: fence first, then persist the COMMIT. *)
  Device.with_site t.dev site_commit (fun () ->
      Device.fence t.dev cpu;
      Device.annotate t.dev (Txn_commit { txn = txn.id }));
  write_entry t cpu ~ty:Commit ~txn_id:txn.id ~addr:0 ~len:0 ~copy:0 ~inline:"";
  stat "journal.undo.commits";
  t.open_txn <- false;
  t.unreclaimed <- t.unreclaimed + 1;
  if t.unreclaimed >= reclaim_threshold then begin
    t.open_txn <- true (* write_header path resets it *);
    reclaim t cpu
  end

let abort t cpu txn =
  note t ~write:true ~site:"undo.abort";
  if not t.open_txn then invalid_arg "Undo_journal.abort: no open transaction";
  Device.with_site t.dev site_abort (fun () ->
      List.iter
        (fun (addr, old) ->
          Device.write_string t.dev cpu ~off:addr old;
          Device.persist t.dev cpu ~off:addr ~len:(String.length old))
        txn.undo);
  (* Aborts reclaim eagerly: the ring must not rescan the dead entries. *)
  invalidate_head_slot_fwd t cpu;
  reclaim t cpu;
  stat "journal.undo.aborts";
  Device.annotate t.dev (Txn_abort { txn = txn.id })

type pending = { txn_id : int; records : (int * string) list }

type parsed = {
  p_txn : int;
  p_type : entry_type;
  p_addr : int;
  p_len : int;
  p_copy : int;
  p_inline : string;
}

let parse_slot t cpu i ~expected_wrap =
  let buf = Bytes.create entry_bytes in
  Device.read t.dev cpu ~off:(slot_off t i) ~len:entry_bytes ~dst:buf ~dst_off:0;
  let packed = Bytes.get_int64_le buf 8 in
  let wrap = Int64.to_int (Int64.logand packed 0xFFFFFFFFL) in
  let ty = Int64.to_int (Int64.logand (Int64.shift_right_logical packed 32) 0xFFL) in
  let inline_len = Int64.to_int (Int64.logand (Int64.shift_right_logical packed 40) 0xFFL) in
  if wrap <> expected_wrap then None
  else if not (Crc.verify_zeroed buf ~off:0 ~len:entry_bytes ~csum_off:entry_csum_off)
  then begin
    (* Wrap matched, so this slot claims to be live — a failing CRC means
       a torn or corrupted entry.  Refusing it here is what demotes a torn
       COMMIT to "uncommitted": the scan stops and the txn rolls back. *)
    t.csum_failures <- t.csum_failures + 1;
    None
  end
  else
    match type_of_code ty with
    | None -> None
    | Some p_type ->
        if inline_len > inline_max then None
        else
          Some
            {
              p_txn = Int64.to_int (Bytes.get_int64_le buf 0);
              p_type;
              p_addr = Int64.to_int (Bytes.get_int64_le buf 16);
              p_len = Int64.to_int (Bytes.get_int64_le buf 24);
              p_copy = Int32.to_int (Bytes.get_int32_le buf 32) land 0xFFFFFFFF;
              p_inline = Bytes.sub_string buf 40 inline_len;
            }

let scan_pending t cpu =
  note t ~write:false ~site:"undo.scan_pending";
  Device.with_site t.dev site_recovery @@ fun () ->
  let buf = Bytes.create header_bytes in
  Device.read t.dev cpu ~off:t.base ~len:header_bytes ~dst:buf ~dst_off:0;
  let wrap = Int64.to_int (Bytes.get_int64_le buf 8) in
  let tail = Int64.to_int (Bytes.get_int64_le buf 16) in
  let entries = ref [] in
  let committed = ref false in
  let txn_id = ref (-1) in
  let i = ref tail and expected = ref wrap and scanned = ref 0 in
  let stop = ref false in
  while (not !stop) && !scanned < t.slots do
    (match parse_slot t cpu !i ~expected_wrap:!expected with
    | None -> stop := true
    | Some p ->
        (* All entries of the live transaction share the txn id of its
           START; a mismatch means stale bytes from an earlier lap. *)
        if !txn_id = -1 && p.p_type <> Start then stop := true
        else if !txn_id <> -1 && p.p_txn <> !txn_id then stop := true
        else begin
          match p.p_type with
          | Start -> txn_id := p.p_txn
          | Commit ->
              (* Committed-but-unreclaimed transaction: skip it and keep
                 scanning for a trailing unfinished one (§5.7 background
                 reclamation). *)
              committed := true;
              txn_id := -1;
              entries := []
          | Data_inline -> entries := (p.p_addr, p.p_inline) :: !entries
          | Data_extent ->
              let old = Device.read_string t.dev cpu ~off:p.p_copy ~len:p.p_len in
              entries := (p.p_addr, old) :: !entries
        end);
    incr scanned;
    incr i;
    if !i >= t.slots then begin
      i := 0;
      incr expected
    end
  done;
  ignore !committed;
  if !txn_id = -1 then None
  else
    (* records are newest-first; roll back in that order. *)
    Some { txn_id = !txn_id; records = !entries }

(* Invalidate the slot at the reclaim point so stale entries of the
   rolled-back transaction can never be rescanned as pending. *)
let invalidate_head_slot t cpu =
  Device.with_site t.dev site_recovery (fun () ->
      Device.write t.dev cpu ~off:(slot_off t t.head) ~src:(Bytes.make entry_bytes '\000')
        ~src_off:0 ~len:entry_bytes;
      Device.persist t.dev cpu ~off:(slot_off t t.head) ~len:entry_bytes)

(* Recovery rewinds the ring without scrubbing it, so the wrap epoch
   must advance past every entry already on PM: the persisted tail may
   trail the true crash position, and once fresh entries pave over the
   early slots a later scan would otherwise walk off their end straight
   into stale same-wrap entries — and mistake a stale START for a
   pending transaction. *)
let bump_epoch t =
  t.wrap <- t.wrap + 1

let rollback_pending t cpu (p : pending) =
  note t ~write:true ~site:"undo.rollback_pending";
  Device.with_site t.dev site_recovery (fun () ->
      List.iter
        (fun (addr, old) ->
          Device.write_string t.dev cpu ~off:addr old;
          Device.persist t.dev cpu ~off:addr ~len:(String.length old))
        p.records);
  t.open_txn <- false;
  invalidate_head_slot t cpu;
  bump_epoch t;
  write_header t cpu

let reset t cpu =
  note t ~write:true ~site:"undo.reset";
  t.open_txn <- false;
  invalidate_head_slot t cpu;
  bump_epoch t;
  write_header t cpu

type entry = { e_slot : int; e_txn : int; e_kind : string; e_addr : int; e_len : int }

(* Side-effect-free record iteration (fsck phase 2): walk the same live
   window scan_pending honours — from the persisted tail, stopping at the
   first stale/torn slot — handing every verified entry to [f] without
   reading copy-area payloads or touching any PM state. *)
let iter_live t cpu f =
  note t ~write:false ~site:"undo.iter_live";
  Device.with_site t.dev site_recovery @@ fun () ->
  let buf = Bytes.create header_bytes in
  Device.read t.dev cpu ~off:t.base ~len:header_bytes ~dst:buf ~dst_off:0;
  let wrap = Int64.to_int (Bytes.get_int64_le buf 8) in
  let tail = Int64.to_int (Bytes.get_int64_le buf 16) in
  let i = ref tail and expected = ref wrap and scanned = ref 0 in
  let stop = ref false in
  while (not !stop) && !scanned < t.slots do
    (match parse_slot t cpu !i ~expected_wrap:!expected with
    | None -> stop := true
    | Some p ->
        f
          {
            e_slot = !i;
            e_txn = p.p_txn;
            e_kind =
              (match p.p_type with
              | Start -> "START"
              | Commit -> "COMMIT"
              | Data_inline -> "UNDO-INLINE"
              | Data_extent -> "UNDO-EXTENT");
            e_addr = p.p_addr;
            e_len = (match p.p_type with Data_inline -> String.length p.p_inline | _ -> p.p_len);
          });
    incr scanned;
    incr i;
    if !i >= t.slots then begin
      i := 0;
      incr expected
    end
  done

module Recovery = struct
  type nonrec pending = pending = { txn_id : int; records : (int * string) list }

  type nonrec entry = entry = {
    e_slot : int;
    e_txn : int;
    e_kind : string;
    e_addr : int;
    e_len : int;
  }

  let scan_pending = scan_pending
  let rollback_pending = rollback_pending
  let reset = reset
  let csum_failures t = t.csum_failures
  let iter_live = iter_live
end
