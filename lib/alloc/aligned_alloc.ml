open Repro_util
module Extent_tree = Repro_rbtree.Extent_tree
module Sched = Repro_sched.Sched
module Stats = Repro_stats.Stats

type extent = { off : int; len : int }

let huge = Units.huge_page

let zero_site = Repro_pmem.Site.v "alloc" "zero"

let zero_extents dev cpu exts =
  let module Device = Repro_pmem.Device in
  Device.with_site dev zero_site (fun () ->
      List.iter
        (fun e ->
          if e.len > 0 then begin
            Device.annotate dev (Fresh { addr = e.off; len = e.len });
            Device.memset_nt dev cpu ~off:e.off ~len:e.len '\000'
          end)
        exts;
      Device.fence dev cpu)

type pool = {
  stripe_off : int;
  stripe_len : int;
  aligned : int Queue.t; (* bases of free 2MB aligned extents *)
  aligned_set : unit Flat_table.t; (* mirror of [aligned] for O(1) overlap checks *)
  holes : Extent_tree.t;
}

(* Race-detector annotation for one pool's free structures (aligned FIFO
   + hole tree).  Pools are per-CPU; stealing crosses pools deliberately,
   so in the concurrent file system all pool mutation must happen under
   a lock the detector can see.  Aggregate queries ([free_bytes],
   [richest_aligned], the gather scan) stay unannotated: racy-by-design
   heuristics whose staleness costs a retry, not corruption. *)
let note p ~write ~site =
  if Sched.monitored () then
    Sched.access ~obj:(Printf.sprintf "alloc.aligned[%#x]" p.stripe_off) ~write ~site

(* Every mutation of the aligned FIFO goes through these two, keeping the
   membership set in sync with the queue. *)
let aligned_push pool base =
  note pool ~write:true ~site:"aligned_alloc.push";
  Queue.add base pool.aligned;
  Flat_table.set pool.aligned_set base ()

let aligned_pop pool =
  note pool ~write:true ~site:"aligned_alloc.pop";
  match Queue.take_opt pool.aligned with
  | None -> None
  | Some base ->
      Flat_table.remove pool.aligned_set base;
      Some base

type t = { pools : pool array }

let cpus t = Array.length t.pools

let cpu_of_offset t off =
  let n = Array.length t.pools in
  let rec find i =
    if i >= n then invalid_arg (Printf.sprintf "Aligned_alloc: offset %d outside data area" off)
    else
      let p = t.pools.(i) in
      if off >= p.stripe_off && off < p.stripe_off + p.stripe_len then i else find (i + 1)
  in
  find 0

let free_bytes t =
  Array.fold_left
    (fun acc p -> acc + (Queue.length p.aligned * huge) + Extent_tree.total_free p.holes)
    0 t.pools

let free_aligned_extents t =
  Array.fold_left (fun acc p -> acc + Queue.length p.aligned) 0 t.pools

let hole_bytes t =
  Array.fold_left (fun acc p -> acc + Extent_tree.total_free p.holes) 0 t.pools

let publish_gauges t =
  if Stats.enabled () then begin
    Stats.gauge_set "alloc.free_aligned_extents" (free_aligned_extents t);
    Stats.gauge_set "alloc.hole_bytes" (hole_bytes t);
    Stats.gauge_set "alloc.free_bytes" (free_bytes t)
  end

let stat_incr name = if Stats.enabled () then Stats.counter_add name 1

(* Promote any fully-covered aligned 2MB regions of the hole containing
   [off] into the aligned pool. *)
let promote pool ~off =
  match Extent_tree.extent_at pool.holes ~off with
  | None -> ()
  | Some (e_off, e_len) ->
      let first = Units.round_up e_off huge in
      let last = Units.round_down (e_off + e_len) huge in
      let base = ref first in
      while !base < last do
        if Extent_tree.alloc_exact pool.holes ~off:!base ~len:huge then begin
          aligned_push pool !base;
          stat_incr "alloc.promotes"
        end;
        base := !base + huge
      done

let free t ~off ~len =
  if len <= 0 then invalid_arg "Aligned_alloc.free: non-positive length";
  let pool = t.pools.(cpu_of_offset t off) in
  note pool ~write:true ~site:"aligned_alloc.free";
  (* [Extent_tree.insert_free] rejects overlap with free holes, but a range
     overlapping a promoted 2MB base parked in the aligned FIFO is invisible
     to the tree — that double free would hand the same extent out twice. *)
  let base = ref (Units.round_down off huge) in
  while !base < off + len do
    if Flat_table.mem pool.aligned_set !base then
      invalid_arg
        (Printf.sprintf
           "Aligned_alloc.free: double free — [%d,%d) overlaps free aligned extent [%d,%d)" off
           (off + len) !base (!base + huge));
    base := !base + huge
  done;
  Extent_tree.insert_free pool.holes ~off ~len;
  promote pool ~off;
  publish_gauges t

let restore ~cpus ~regions ~free:free_list =
  if cpus <= 0 || Array.length regions <> cpus then
    invalid_arg "Aligned_alloc.restore: bad region count";
  let pools =
    Array.map
      (fun (off, len) ->
        {
          stripe_off = off;
          stripe_len = len;
          aligned = Queue.create ();
          aligned_set = Flat_table.create ~capacity:64 ~dummy:() ();
          holes = Extent_tree.create ();
        })
      regions
  in
  let t = { pools } in
  List.iter (fun (off, len) -> free t ~off ~len) free_list;
  t

let create ~cpus ~regions =
  restore ~cpus ~regions ~free:(Array.to_list regions)

let aligned_region_count t =
  Array.fold_left
    (fun acc p ->
      acc + Queue.length p.aligned + Extent_tree.aligned_region_count p.holes ~align:huge)
    0 t.pools

let hole_stats t ~cpu =
  let p = t.pools.(cpu) in
  (Extent_tree.total_free p.holes, Extent_tree.extent_count p.holes)

(* CPU with the most free aligned extents (paper's stealing policy for
   large requests); None when all are empty. *)
let richest_aligned t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i p ->
      let c = Queue.length p.aligned in
      if c > !best_count then begin
        best := i;
        best_count := c
      end)
    t.pools;
  if !best < 0 then None else Some !best

let _richest_holes t =
  let best = ref (-1) and best_bytes = ref 0 in
  Array.iteri
    (fun i p ->
      let b = Extent_tree.total_free p.holes in
      if b > !best_bytes then begin
        best := i;
        best_bytes := b
      end)
    t.pools;
  if !best < 0 then None else Some !best

let take_aligned t ~cpu =
  let local = t.pools.(cpu) in
  match aligned_pop local with
  | Some off -> Some off
  | None -> (
      match richest_aligned t with
      | Some rich -> (
          match aligned_pop t.pools.(rich) with
          | Some off ->
              stat_incr "alloc.steals";
              Some off
          | None -> None)
      | None -> None)

(* Serve [len] < 2MB from hole pools: local first-fit, else break a local
   aligned extent into the hole pool (§3.4), else steal from the CPU with
   the most free hole bytes, else break a remote aligned extent, else
   gather fragments anywhere.  Fails only when free space is truly gone. *)
let hole_take t ~cpu ~len acc =
  let local = t.pools.(cpu) in
  let carve base =
    (* Use the front of a broken aligned extent; the tail becomes a hole
       in its origin pool. *)
    stat_incr "alloc.breaks";
    if len < huge then free t ~off:(base + len) ~len:(huge - len);
    Some ({ off = base; len } :: acc)
  in
  note local ~write:true ~site:"aligned_alloc.hole";
  match Extent_tree.alloc_first_fit local.holes ~len with
  | Some off -> Some ({ off; len } :: acc)
  | None -> (
      (* Any hole pool anywhere before breaking an aligned extent: breaking
         is what dissolves hugepages, so it is the last resort ("the design
         must seek to preserve hugepages wherever possible", §3.1). *)
      let stolen =
        let n = Array.length t.pools in
        let rec scan i =
          if i >= n then None
          else if i = cpu then scan (i + 1)
          else begin
            note t.pools.(i) ~write:true ~site:"aligned_alloc.steal";
            match Extent_tree.alloc_first_fit t.pools.(i).holes ~len with
            | Some off -> Some off
            | None -> scan (i + 1)
          end
        in
        scan 0
      in
      match stolen with
      | Some off ->
          stat_incr "alloc.steals";
          Some ({ off; len } :: acc)
      | None -> (
          match aligned_pop local with
          | Some base -> carve base
          | None -> (
              (* Break a remote aligned extent. *)
              match richest_aligned t with
              | Some rich -> (
                  match aligned_pop t.pools.(rich) with
                  | Some base ->
                      stat_incr "alloc.steals";
                      carve base
                  | None -> None)
              | _ ->
                  (* Fragment-gathering fallback: consume the largest free
                     extents anywhere until the request is covered. *)
                  let rec gather need acc =
                    if need = 0 then Some acc
                    else
                      let best = ref None in
                      Array.iter
                        (fun p ->
                          let l = Extent_tree.largest p.holes in
                          match !best with
                          | Some (_, bl) when bl >= l -> ()
                          | _ -> if l > 0 then best := Some (p, l))
                        t.pools;
                      match !best with
                      | None -> None
                      | Some (p, l) ->
                          let take = min need l in
                          note p ~write:true ~site:"aligned_alloc.gather";
                          (match Extent_tree.alloc_best_fit p.holes ~len:take with
                          | Some off -> gather (need - take) ({ off; len = take } :: acc)
                          | None -> None)
                  in
                  gather len acc)))

let alloc_hugepage t ~cpu =
  let r = take_aligned t ~cpu in
  if r <> None then publish_gauges t;
  r

let undo t exts = List.iter (fun e -> free t ~off:e.off ~len:e.len) exts

let alloc ?contig_after t ~cpu ~len ~prefer_aligned =
  if len <= 0 then invalid_arg "Aligned_alloc.alloc: non-positive length";
  if free_bytes t < len then None
  else begin
    (* Contiguous-growth fast path for alignment-preserving files: extend
       exactly after the file's previous extent when that space is free,
       so small sequential writes fill one aligned extent instead of
       nibbling the front of many (§3.6 xattr behaviour). *)
    let contig =
      match contig_after with
      | Some g when len < huge -> (
          match cpu_of_offset t g with
          | c
            when (note t.pools.(c) ~write:true ~site:"aligned_alloc.contig";
                  Extent_tree.alloc_exact t.pools.(c).holes ~off:g ~len) -> Some g
          | _ -> None
          | exception Invalid_argument _ -> None)
      | _ -> None
    in
    let result =
      match contig with
      | Some off -> Some [ { off; len } ]
      | None ->
      (* Split into hugepage-sized chunks plus a small remainder (§3.4). *)
      let rec take_chunks remaining acc =
        if remaining >= huge then
          match take_aligned t ~cpu with
          | Some off -> take_chunks (remaining - huge) ({ off; len = huge } :: acc)
          | None -> (
              (* Aligned pools dry: serve the rest from holes. *)
              match hole_big remaining acc with Some acc -> Some (0, acc) | None -> None)
        else Some (remaining, acc)
      and hole_big remaining acc =
        (* Serve >= 2MB leftovers from holes in sub-2MB pieces. *)
        if remaining = 0 then Some acc
        else
          let piece = min remaining (huge - Units.base_page) in
          match hole_take t ~cpu ~len:piece acc with
          | Some acc -> hole_big (remaining - piece) acc
          | None -> None
      in
      match take_chunks len [] with
      | None -> None
      | Some (0, acc) -> Some (List.rev acc)
      | Some (remainder, acc) ->
          let small =
            if prefer_aligned then
              match take_aligned t ~cpu with
              | Some base ->
                  (* Use the front of a fresh aligned extent; the tail goes
                     back to the hole pool (xattr-aligned files, §3.6). *)
                  if huge - remainder > 0 then
                    free t ~off:(base + remainder) ~len:(huge - remainder);
                  Some ({ off = base; len = remainder } :: acc)
              | None -> hole_take t ~cpu ~len:remainder acc
            else hole_take t ~cpu ~len:remainder acc
          in
          (match small with
          | Some acc -> Some (List.rev acc)
          | None ->
              undo t acc;
              None)
    in
    if result <> None then publish_gauges t;
    result
  end

(* Offline occupancy computation (mount's free-list recompute and fsck's
   extent cross-check): one tree per region, so free space never
   coalesces across stripe boundaries the way a single shadow tree
   would — restoring such a merged extent could place it in the wrong
   pool. *)
let free_lists_of_used ~regions ~used =
  let n = Array.length regions in
  let trees =
    Array.map
      (fun (off, len) ->
        let tr = Extent_tree.create () in
        Extent_tree.insert_free tr ~off ~len;
        tr)
      regions
  in
  let region_of off =
    let rec find i =
      if i >= n then None
      else
        let roff, rlen = regions.(i) in
        if off >= roff && off < roff + rlen then Some i else find (i + 1)
    in
    find 0
  in
  let rec claim = function
    | [] -> Ok ()
    | (off, len) :: rest -> (
        if len <= 0 then
          Error (Printf.sprintf "extent [%d,%d): non-positive length" off (off + len))
        else
          match region_of off with
          | None -> Error (Printf.sprintf "extent [%d,%d) outside every region" off (off + len))
          | Some i ->
              let roff, rlen = regions.(i) in
              if off + len > roff + rlen then
                Error (Printf.sprintf "extent [%d,%d) crosses region boundary" off (off + len))
              else if not (Extent_tree.alloc_exact trees.(i) ~off ~len) then
                Error (Printf.sprintf "extent [%d,%d) double-used" off (off + len))
              else claim rest)
  in
  match claim used with
  | Error _ as e -> e
  | Ok () ->
      let free = ref [] in
      for i = n - 1 downto 0 do
        let acc = ref [] in
        Extent_tree.iter trees.(i) (fun ~off ~len -> acc := (off, len) :: !acc);
        free := List.rev_append !acc !free
      done;
      Ok !free

let snapshot t =
  let all = ref [] in
  Array.iter
    (fun p ->
      Queue.iter (fun off -> all := (off, huge) :: !all) p.aligned;
      Extent_tree.iter p.holes (fun ~off ~len -> all := (off, len) :: !all))
    t.pools;
  List.sort compare !all

let check_invariants t =
  let exception Bad of string in
  try
    let shadow = Extent_tree.create () in
    Array.iteri
      (fun i p ->
        if Queue.length p.aligned <> Flat_table.length p.aligned_set then
          raise
            (Bad
               (Printf.sprintf "cpu %d: aligned queue (%d) / set (%d) size mismatch" i
                  (Queue.length p.aligned)
                  (Flat_table.length p.aligned_set)));
        Queue.iter
          (fun off ->
            if not (Units.is_aligned off huge) then
              raise (Bad (Printf.sprintf "cpu %d: unaligned extent %d in aligned pool" i off));
            if off < p.stripe_off || off + huge > p.stripe_off + p.stripe_len then
              raise (Bad (Printf.sprintf "cpu %d: aligned extent %d outside stripe" i off));
            if not (Flat_table.mem p.aligned_set off) then
              raise (Bad (Printf.sprintf "cpu %d: aligned extent %d missing from set" i off));
            Extent_tree.insert_free shadow ~off ~len:huge)
          p.aligned;
        (match Extent_tree.check_invariants p.holes with
        | Ok () -> ()
        | Error m -> raise (Bad (Printf.sprintf "cpu %d holes: %s" i m)));
        Extent_tree.iter p.holes (fun ~off ~len ->
            if off < p.stripe_off || off + len > p.stripe_off + p.stripe_len then
              raise (Bad (Printf.sprintf "cpu %d: hole %d outside stripe" i off));
            Extent_tree.insert_free shadow ~off ~len))
      t.pools;
    Ok ()
  with
  | Bad m -> Error m
  | Invalid_argument m -> Error ("overlap: " ^ m)
