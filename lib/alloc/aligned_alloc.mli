(** WineFS's alignment-aware allocator (§3.4, §3.6).

    The data area is partitioned per logical CPU.  Each CPU owns

    - a pool of free {e aligned extents}: 2MB-aligned, 2MB-sized regions
      kept in a FIFO list (allocate from the head, free to the tail);
    - a pool of free {e unaligned holes} kept in a red-black tree keyed by
      offset, allocated first-fit.

    Requests are split into hugepage-sized chunks (served from the aligned
    pool) and a sub-2MB remainder (served from holes).  When the local CPU
    runs dry, large requests steal from the CPU with the most free aligned
    extents and small ones from the CPU with the most free hole bytes;
    holes can also be replenished by breaking a local aligned extent.
    Freed extents return to their origin CPU's pools and re-coalesce:
    whenever a merged hole fully covers a 2MB-aligned region, that region
    is promoted back to the aligned pool. *)

type extent = { off : int; len : int }

val zero_extents : Repro_pmem.Device.t -> Repro_util.Cpu.t -> extent list -> unit
(** Zero freshly allocated extents with non-temporal stores and one fence,
    under the ["alloc.zero"] durability-lint site.  Newly exposed data
    blocks must read back as zeroes after any crash, so the zeroes are made
    durable before the extents are linked into an inode. *)

type t

val create : cpus:int -> regions:(int * int) array -> t
(** [regions.(c)] is CPU [c]'s data stripe [(off, len)]. *)

val cpus : t -> int

val alloc :
  ?contig_after:int -> t -> cpu:int -> len:int -> prefer_aligned:bool -> extent list option
(** Allocate [len] bytes for CPU [cpu] (multi-extent results are ordered
    for file-offset assembly).  [prefer_aligned] makes even a sub-2MB
    request start on a fresh aligned extent (used for files carrying the
    alignment xattr, §3.6); its 2MB tail remainder returns to the hole
    pool.  [contig_after] is a contiguity hint: when the bytes directly at
    that offset are free, the allocation extends there so sequential small
    writes fill one aligned extent instead of fragmenting many.
    [None] = ENOSPC. *)

val alloc_hugepage : t -> cpu:int -> int option
(** One aligned 2MB extent. *)

val free : t -> off:int -> len:int -> unit
(** Return an extent; the origin CPU is derived from the offset.
    Raises [Invalid_argument] when the range is already free — including
    the case invisible to the hole tree, where it overlaps a promoted 2MB
    extent parked in the aligned pool (double free). *)

val free_bytes : t -> int
val free_aligned_extents : t -> int
(** Total immediately-usable aligned 2MB extents across CPUs. *)

val aligned_region_count : t -> int
(** Figure 3 metric: aligned pool plus aligned 2MB regions inside holes
    (the latter is normally zero thanks to promotion). *)

val cpu_of_offset : t -> int -> int
val hole_stats : t -> cpu:int -> int * int
(** [(hole_bytes, hole_extents)] of one CPU. *)

val snapshot : t -> (int * int) list
(** All free extents [(off, len)], ascending — for unmount serialization
    and invariant checks. *)

val restore : cpus:int -> regions:(int * int) array -> free:(int * int) list -> t
(** Rebuild allocator state from a serialized snapshot or a mount-time
    scan of used extents. *)

val free_lists_of_used :
  regions:(int * int) array -> used:(int * int) list -> ((int * int) list, string) result
(** On-PM occupancy export: the free extents of each region once every
    [used] extent is claimed, ascending, computed with one tree per
    region so free space never coalesces across stripe boundaries.
    [Error] names the first overlapping, out-of-region, or empty used
    extent (a double allocation from fsck's point of view). *)

val check_invariants : t -> (unit, string) result
