open Repro_util
module Extent_tree = Repro_rbtree.Extent_tree
module Sched = Repro_sched.Sched

type policy = First_fit | Best_fit | Goal of (unit -> int)

type config = {
  per_cpu : bool;
  policy : policy;
  align_exact_2m : bool;
  normalize_pow2 : bool;
}

type extent = { off : int; len : int }

let huge = Units.huge_page

type pool = { stripe_off : int; stripe_len : int; tree : Extent_tree.t }

type t = { cfg : config; pools : pool array }

(* Race-detector annotation for a pool's free tree.  Per-CPU pools must
   stay thread-exclusive (cross-CPU stealing aside); a shared pool needs
   a consistent caller-held lock.  Aggregate read-only queries
   ([free_bytes], [largest_free], the fallback largest-fragment scan) are
   deliberately {e not} annotated: they are racy-by-design heuristics
   whose staleness only costs a retry, never corruption. *)
let note p ~write ~site =
  if Sched.monitored () then
    Sched.access ~obj:(Printf.sprintf "alloc.pool[%#x]" p.stripe_off) ~write ~site

let restore cfg ~cpus ~regions ~free:free_list =
  if cpus <= 0 || Array.length regions <> cpus then
    invalid_arg "Pool_alloc.restore: bad region count";
  let pools =
    if cfg.per_cpu then
      Array.map
        (fun (off, len) -> { stripe_off = off; stripe_len = len; tree = Extent_tree.create () })
        regions
    else begin
      let lo = Array.fold_left (fun acc (off, _) -> min acc off) max_int regions in
      let hi = Array.fold_left (fun acc (off, len) -> max acc (off + len)) 0 regions in
      [| { stripe_off = lo; stripe_len = hi - lo; tree = Extent_tree.create () } |]
    end
  in
  let t = { cfg; pools } in
  List.iter
    (fun (off, len) ->
      let p =
        if cfg.per_cpu then begin
          let rec find i =
            if i >= Array.length pools then invalid_arg "Pool_alloc: extent outside regions"
            else
              let p = pools.(i) in
              if off >= p.stripe_off && off < p.stripe_off + p.stripe_len then p
              else find (i + 1)
          in
          find 0
        end
        else pools.(0)
      in
      Extent_tree.insert_free p.tree ~off ~len)
    free_list;
  t

let create cfg ~cpus ~regions = restore cfg ~cpus ~regions ~free:(Array.to_list regions)

let pool_of t ~cpu = if t.cfg.per_cpu then t.pools.(cpu mod Array.length t.pools) else t.pools.(0)

let pool_of_offset t off =
  if not t.cfg.per_cpu then t.pools.(0)
  else begin
    let n = Array.length t.pools in
    let rec find i =
      if i >= n then invalid_arg "Pool_alloc.free: offset outside data area"
      else
        let p = t.pools.(i) in
        if off >= p.stripe_off && off < p.stripe_off + p.stripe_len then p else find (i + 1)
    in
    find 0
  end

let free t ~off ~len =
  let p = pool_of_offset t off in
  note p ~write:true ~site:"pool_alloc.free";
  Extent_tree.insert_free p.tree ~off ~len

let free_bytes t = Array.fold_left (fun acc p -> acc + Extent_tree.total_free p.tree) 0 t.pools

let aligned_region_count t =
  Array.fold_left (fun acc p -> acc + Extent_tree.aligned_region_count p.tree ~align:huge) 0 t.pools

let free_extent_count t =
  Array.fold_left (fun acc p -> acc + Extent_tree.extent_count p.tree) 0 t.pools

let largest_free t = Array.fold_left (fun acc p -> max acc (Extent_tree.largest p.tree)) 0 t.pools

let snapshot t =
  let all = ref [] in
  Array.iter (fun p -> Extent_tree.iter p.tree (fun ~off ~len -> all := (off, len) :: !all)) t.pools;
  List.sort compare !all

(* mballoc-style normalisation: round the request up to the next power of
   two, capped at 2MB (requests beyond that already allocate in 2MB
   passes).  The surplus is freed back immediately, which reproduces
   ext4's tendency to leave power-of-two-shaped free space. *)
let normalize len =
  if len >= huge then len
  else begin
    let p = ref Units.base_page in
    while !p < len do
      p := !p * 2
    done;
    !p
  end

let try_once ?goal ?(request_exact_2m = false) t ~cpu ~len =
  let p = pool_of t ~cpu in
  note p ~write:true ~site:"pool_alloc.alloc";
  let from_tree tree =
    match (t.cfg.policy, goal) with
    | _, Some g -> Extent_tree.alloc_near tree ~goal:g ~len
    | First_fit, None -> Extent_tree.alloc_first_fit tree ~len
    | Best_fit, None -> Extent_tree.alloc_best_fit tree ~len
    | Goal f, None -> Extent_tree.alloc_near tree ~goal:(f ()) ~len
  in
  (* NOVA attempts 2MB alignment only when the caller's original request
     was an exact multiple of 2MB (§6) — an explicit preference.  ext4's
     mballoc buddy structure yields aligned chunks only as a fallback:
     the paper observes ext4 "ends up using only 3k of 12k available
     aligned extents" because locality comes first (§2.5). *)
  let nova_aligned =
    if t.cfg.align_exact_2m && request_exact_2m && len mod huge = 0 then
      Extent_tree.alloc_aligned p.tree ~len ~align:huge
    else None
  in
  (* ext4 mballoc: buddy alignment applies within the locality
     neighbourhood of the goal; aligned extents elsewhere go unused
     ("12k available, only 3k used", §2.5). *)
  let buddy_near () =
    if t.cfg.normalize_pow2 && len land (len - 1) = 0 && len >= Units.base_page then
      let g = match goal with Some g -> g | None -> p.stripe_off in
      (* Window ~ a block group relative to the device. *)
      let window = 4 * Units.mib in
      Extent_tree.alloc_aligned_near p.tree ~goal:g ~window ~len ~align:(min len huge)
    else None
  in
  match nova_aligned with
  | Some off -> Some off
  | None -> (
      match buddy_near () with
      | Some off -> Some off
      | None -> (
      match from_tree p.tree with
      | Some off -> Some off
      | None ->
          if t.cfg.per_cpu then begin
            (* Borrow from the other pools. *)
            let n = Array.length t.pools in
            let rec steal i =
              if i >= n then None
              else if i = cpu mod n then steal (i + 1)
              else begin
                note t.pools.(i) ~write:true ~site:"pool_alloc.steal";
                match from_tree t.pools.(i).tree with
                | Some off -> Some off
                | None -> steal (i + 1)
              end
            in
            steal 0
          end
          else None))

let alloc ?goal t ~cpu ~len =
  if len <= 0 then invalid_arg "Pool_alloc.alloc: non-positive length";
  if free_bytes t < len then None
  else begin
    let request_exact_2m = len mod huge = 0 in
    let grab len =
      let ask = if t.cfg.normalize_pow2 then normalize len else len in
      match try_once ?goal ~request_exact_2m t ~cpu ~len:ask with
      | Some off ->
          if ask > len then free t ~off:(off + len) ~len:(ask - len);
          Some { off; len }
      | None -> (
          (* Retry without normalisation before fragmenting. *)
          match try_once ?goal ~request_exact_2m t ~cpu ~len with
          | Some off -> Some { off; len }
          | None -> None)
    in
    (* Allocate in <= 2MB passes, falling back to largest-fragment
       gathering so allocation only fails when space is truly gone. *)
    let rec go remaining acc =
      if remaining = 0 then Some (List.rev acc)
      else
        let ask = min remaining huge in
        match grab ask with
        | Some e -> go (remaining - ask) (e :: acc)
        | None ->
            let best = ref None in
            Array.iter
              (fun p ->
                let l = Extent_tree.largest p.tree in
                match !best with
                | Some (_, bl) when bl >= l -> ()
                | _ -> if l > 0 then best := Some (p, l))
              t.pools;
            (match !best with
            | None ->
                List.iter (fun e -> free t ~off:e.off ~len:e.len) acc;
                None
            | Some (p, l) ->
                let take = min remaining l in
                note p ~write:true ~site:"pool_alloc.gather";
                (match Extent_tree.alloc_best_fit p.tree ~len:take with
                | Some off -> go (remaining - take) ({ off; len = take } :: acc)
                | None ->
                    List.iter (fun e -> free t ~off:e.off ~len:e.len) acc;
                    None))
    in
    go len []
  end

let check_invariants t =
  let rec all i =
    if i >= Array.length t.pools then Ok ()
    else
      match Extent_tree.check_invariants t.pools.(i).tree with
      | Ok () -> all (i + 1)
      | Error m -> Error (Printf.sprintf "pool %d: %s" i m)
  in
  all 0
