(** srccheck: AST-based static analysis of this repository's own sources.

    Six rules over real parse trees — the four syntactic ones from the
    original srccheck ({!Lock_order}, {!Persist_sites}, {!Ownership},
    {!Error_discipline}) plus the two flow-sensitive flowcheck rules
    ({!Flowcheck} persist-order dataflow, {!Determinism}).  The engine
    is deliberately small: rules are [Source.file list -> Diag.t list]
    functions; suppression is an explicit per-rule/per-file allowlist
    with a reason, and suppressed counts are reported so an allowlist
    can never silently grow. *)

type allow = {
  a_rule : string;
  a_file : string;  (** normalised path the suppression applies to *)
  a_reason : string;
}

type report = {
  diags : Diag.t list;  (** surviving diagnostics, sorted by position *)
  suppressed : int;  (** diagnostics removed by the allowlist *)
  files_scanned : int;
  parse_errors : int;  (** unparseable files (their ["parse"] diags are in [diags]) *)
}

val rules : (string * (Source.file list -> Diag.t list)) list
(** [(rule-id, checker)]; the ids are the ones diagnostics carry. *)

val flow_rules : string list
(** [["persist-order"; "determinism"]] — the subset [pmcheck flowcheck]
    runs. *)

val default_allowlist : allow list
(** One reviewed entry on HEAD: [bin/agectl.ml]'s operator-facing
    wall-clock progress line is exempt from the determinism rule (with
    its reason).  The persist-order allowlist is empty — every violation
    the dataflow surfaced was fixed, not suppressed. *)

val run : ?allowlist:allow list -> ?only:string list -> Source.file list -> parse:Diag.t list -> report
(** Run rules over already-loaded files ([only] restricts to a rule-id
    subset; default all).  [parse] diagnostics are folded into the
    report (and force exit code 2).  Diagnostics are {!Diag.normalize}d:
    sorted and deduplicated, so reports are byte-stable. *)

val analyze : ?allowlist:allow list -> ?only:string list -> string list -> report
(** [analyze roots]: {!Source.load_roots} + {!run} — the srccheck entry
    point, normally over [["lib"; "bin"]]. *)

val analyze_string : ?only:string list -> path:string -> string -> Diag.t list
(** Rules over a single synthetic file — the fixture hook for tests.
    The [path] matters: rules scope by it (e.g. [lib/core/x.ml] is inside
    the error-discipline and poly-compare scopes, [lib/pmem/x.ml] is
    exempt from persist-site and persist-order). *)

val report_to_json : report -> Repro_stats.Json.t
(** The [--format=json] payload: scan counters plus every diagnostic as
    a structured record. *)

val exit_code : report -> int
(** 0 clean, 1 violations, 2 parse errors. *)
