(** srccheck: AST-based static analysis of this repository's own sources.

    Four rules over real parse trees (see {!Lock_order},
    {!Persist_sites}, {!Ownership}, {!Error_discipline}), replacing the
    old substring archcheck.  The engine is deliberately small: rules are
    [Source.file list -> Diag.t list] functions; suppression is an
    explicit per-rule/per-file allowlist with a reason, and suppressed
    counts are reported so an allowlist can never silently grow. *)

type allow = {
  a_rule : string;
  a_file : string;  (** normalised path the suppression applies to *)
  a_reason : string;
}

type report = {
  diags : Diag.t list;  (** surviving diagnostics, sorted by position *)
  suppressed : int;  (** diagnostics removed by the allowlist *)
  files_scanned : int;
  parse_errors : int;  (** unparseable files (their ["parse"] diags are in [diags]) *)
}

val rules : (string * (Source.file list -> Diag.t list)) list
(** [(rule-id, checker)]; the ids are the ones diagnostics carry. *)

val default_allowlist : allow list
(** Empty on HEAD: every violation the rules surfaced was fixed rather
    than suppressed.  The machinery stays so a future, justified
    exception is one reviewed entry — with a reason — instead of a
    weakened rule. *)

val run : ?allowlist:allow list -> Source.file list -> parse:Diag.t list -> report
(** Run every rule over already-loaded files.  [parse] diagnostics are
    folded into the report (and force exit code 2). *)

val analyze : ?allowlist:allow list -> string list -> report
(** [analyze roots]: {!Source.load_roots} + {!run} — the srccheck entry
    point, normally over [["lib"; "bin"]]. *)

val analyze_string : path:string -> string -> Diag.t list
(** All rules over a single synthetic file — the fixture hook for tests.
    The [path] matters: rules scope by it (e.g. [lib/core/x.ml] is inside
    the error-discipline scope, [lib/pmem/x.ml] is exempt from
    persist-site). *)

val exit_code : report -> int
(** 0 clean, 1 violations, 2 parse errors. *)
