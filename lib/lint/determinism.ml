(* determinism: forbid ambient nondeterminism in the sources.

   Seeded replay underpins racecheck (schedule seeds), faultcheck
   (campaign seeds) and the golden-image test: a result that cannot be
   reproduced from its printed seed is a result we cannot debug.  Four
   sources of ambient nondeterminism are banned outside an explicit
   allowlist:

   - wall-clock reads ([Unix.gettimeofday]/[Unix.time]/[Sys.time]);
   - the unseeded global [Random] state ([Random.self_init],
     [Random.int], ...) — [Random.State] with an explicit seed and the
     project's own splitmix64 {!Repro_util.Rng} are the sanctioned
     sources;
   - the polymorphic structural hash ([Hashtbl.hash] and friends),
     whose value is an implementation detail of the runtime;
   - hash-order traversals ([Hashtbl.fold]/[iter]/[to_seq]): bucket
     order varies with insertion history, so any result built from it is
     traversal-ordered.  Two shapes are exempt: traversals whose result
     is immediately sorted ([... |> List.sort cmp]), and key-insensitive
     callbacks [(fun _ v -> ...)] — the convention for commutative
     per-value effects (resetting counters, closing descriptors).

   Additionally, inside the hot-path scope [lib/core/]/[lib/rbtree/]/
   [lib/util/], polymorphic [=]/[<>] against a variant constructor and
   the bare polymorphic [compare] are flagged: they cost an indirect
   call per node on the extent-map paths and silently compare abstract
   representations (ROADMAP item 2's perf direction).  [lib/util/] is in
   scope because the flat substrate (Flat_table/Flat_vec) lives there:
   its probe sequences must come from explicit int hashing
   (multiplicative mixing), never the runtime's polymorphic hash, and
   its comparisons from monomorphic [Int.compare]. *)

let rule = "determinism"
let low = String.lowercase_ascii

let starts p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let in_scope (f : Source.file) = f.kind = Source.Impl
let poly_scope path =
  starts "lib/core/" path || starts "lib/rbtree/" path || starts "lib/util/" path

let wall_clock comps =
  match List.rev comps with
  | fn :: m :: _ when m = "Unix" && List.mem fn [ "gettimeofday"; "time"; "times" ] -> true
  | fn :: m :: _ when m = "Sys" && fn = "time" -> true
  | _ -> false

let global_random comps =
  match List.rev comps with fn :: m :: _ -> m = "Random" && fn <> "" | _ -> false

let poly_hash comps =
  match List.rev comps with
  | fn :: m :: _ -> low m = "hashtbl" && List.mem fn [ "hash"; "hash_param"; "seeded_hash" ]
  | _ -> false

let hash_order comps =
  match List.rev comps with
  | fn :: m :: _ ->
      low m = "hashtbl" && List.mem fn [ "fold"; "iter"; "to_seq"; "to_seq_keys"; "to_seq_values" ]
  | _ -> false

let sorter comps =
  match List.rev comps with
  | fn :: m :: _ -> m = "List" && List.mem fn [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]
  | _ -> false

(* [(fun _ v -> ...)]: the callback never looks at the key. *)
let wildcard_callback args =
  List.exists
    (fun (l, (a : Parsetree.expression)) ->
      l = Asttypes.Nolabel
      && match a.pexp_desc with Pexp_fun (_, _, { ppat_desc = Ppat_any; _ }, _) -> true | _ -> false)
    args

let nullary_constructor (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, None) -> (
      match Longident.last txt with "()" | "true" | "false" -> None | c -> Some c)
  | _ -> None

let poly_eq comps =
  match List.rev comps with
  | fn :: rest -> (fn = "=" || fn = "<>") && (rest = [] || rest = [ "Stdlib" ])
  | [] -> false

let bare_compare comps = comps = [ "compare" ] || comps = [ "Stdlib"; "compare" ]

let check_file (f : Source.file) diags =
  let env = Resolve.env_of_file f in
  (* Pass 1: mark hash-order traversals that feed straight into a sort. *)
  let exempt = Hashtbl.create 8 in
  let open Ast_iterator in
  let mark it e =
    (match Resolve.calls env e with
    | Some (comps, args) when sorter comps ->
        let inner _ (e' : Parsetree.expression) =
          (match Resolve.calls env e' with
          | Some (comps', _) when hash_order comps' -> Hashtbl.replace exempt e'.pexp_loc ()
          | _ -> ());
          default_iterator.expr it e'
        in
        let sub = { default_iterator with expr = inner } in
        List.iter (fun (_, a) -> sub.expr sub a) args
    | _ -> ());
    default_iterator.expr it e
  in
  let it1 = { default_iterator with expr = mark } in
  it1.structure it1 f.impl;
  (* Pass 2: report. *)
  let add d = diags := d :: !diags in
  let expr it (e : Parsetree.expression) =
    let loc = e.pexp_loc in
    (* Only genuine applications: [Resolve.calls] also views a bare ident
       as a zero-argument call, which would re-flag the callee ident
       inside an already-exempted application. *)
    (match (e.pexp_desc, Resolve.calls env e) with
    | Pexp_apply _, Some (comps, args) ->
        let name = String.concat "." comps in
        if wall_clock comps then
          add
            (Diag.v ~loc ~rule
               ~hint:
                 "derive timing from the seeded Rng or a logical clock so runs replay from \
                  their seed; allowlist operator-facing uses with a reason"
               "wall-clock read %s" name)
        else if global_random comps then
          add
            (Diag.v ~loc ~rule
               ~hint:
                 "use Repro_util.Rng (seeded splitmix64) or Random.State with an explicit \
                  seed; the ambient Random state is shared and unseeded"
               "global Random state (%s)" name)
        else if poly_hash comps then
          add
            (Diag.v ~loc ~rule
               ~hint:"hash explicitly (e.g. Crc32c over the serialised key)"
               "%s depends on the runtime's polymorphic hash" name)
        else if hash_order comps && not (Hashtbl.mem exempt loc) && not (wildcard_callback args)
        then
          add
            (Diag.v ~loc ~rule
               ~hint:
                 "sort the traversal's result (|> List.sort cmp), iterate a deterministic \
                  structure, or make the callback key-insensitive (fun _ v -> ...)"
               "%s observes nondeterministic hash order" name)
        else if poly_scope f.path && poly_eq comps then
          List.iter
            (fun (_, a) ->
              match nullary_constructor a with
              | Some c ->
                  add
                    (Diag.v ~loc ~rule
                       ~hint:
                         "match on the constructor (or use a monomorphic helper): polymorphic \
                          equality is an indirect call per comparison on the hot paths"
                       "polymorphic %s against constructor %s"
                       (List.nth comps (List.length comps - 1))
                       c)
              | None -> ())
            args
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when poly_scope f.path && bare_compare (Resolve.resolve env txt) ->
        add
          (Diag.v ~loc ~rule
             ~hint:"use Int.compare/String.compare or a per-type compare function"
             "bare polymorphic compare")
    | _ -> ());
    default_iterator.expr it e
  in
  let it2 = { default_iterator with expr } in
  it2.structure it2 f.impl

let check files =
  let diags = ref [] in
  List.iter (fun f -> if in_scope f then check_file f diags) files;
  Diag.normalize !diags
