(* persist-order: flow-sensitive crash-consistency checking.

   The dynamic sanitizer (R1–R5) validates only the paths a workload
   happens to execute; this rule runs the same ordering discipline over
   {e every} path of the parse tree.  Each PM store becomes an abstract
   token walked forward by {!Cfg} through the lattice

       Stored < Flushed < Fenced

   [Device.flush] acts as a flush barrier (promotes every tracked Stored
   token — byte-range precision stays the dynamic checker's job, which
   keeps this pass optimistic and false-positive-free), [Device.fence]
   promotes Flushed to Fenced, non-temporal stores enter at Flushed
   (durable at the next fence), and [Device.persist] is flush+fence.

   Diagnostics fire at three anchors, chosen so the deliberate
   deferred-persistence idioms stay clean:

   - a commit point — a [Txn_commit] annotation, or a call to a function
     that (transitively) commits — reached while any token is below
     Fenced: the commit record must never persist over a line that can
     still be lost (the static analogue of dynamic R1/R5);
   - a [Recovery_begin] annotation with pending tokens — recovery input
     must be durable (static R2);
   - function exit with a token whose state {e differed} across merged
     paths ("mixed") — the branch-only-on-error bug class: persisted on
     the path the tests run, skipped on the one they don't.

   A token uniformly pending on every exit path is not an error: that is
   the residue a helper deliberately leaves for its caller
   ([Txn.meta_write] flushes and lets the commit fence), so it is
   exported through the function's summary instead; an assignment to a
   [dirty_bytes] field discharges tokens into the relaxed-mode ledger
   (fsync persists them later).  Summaries make the pass
   interprocedural-lite: per function we record whether it
   flush-barriers/fences every normal path, whether it commits, the
   weakest residue it leaves, and whether it diverges; a whole-program
   fixpoint (a few rounds, diagnostics only in the last) lets
   [Txn.with_txn]'s commit fence discharge tokens created in an inlined
   body lambda three files away.

   Scope: implementation files outside [lib/pmem/] (the device below the
   discipline) and [lib/lint/] (this analyzer and its deliberately buggy
   probe scenarios).  Exception paths are not checked: raising with
   pending stores is the journals' abort protocol, exercised dynamically
   by sanitizer R4. *)

let rule = "persist-order"
let low = String.lowercase_ascii

type pstate = Stored | Flushed | Fenced

let rank = function Stored -> 0 | Flushed -> 1 | Fenced -> 2
let weaker a b = if rank a <= rank b then a else b

let describe = function
  | Stored -> "still dirty (no flush+fence)"
  | Flushed -> "flushed but not fenced"
  | Fenced -> "durable"

type tok = {
  t_loc : Location.t;  (* store site (or call site for residues) *)
  t_what : string;  (* "Device.write", "call to txn.meta_write", ... *)
  t_state : pstate;
  t_mixed : bool;  (* state differed at a merge point *)
  t_weak : string;  (* which merge left it weakest, for the report *)
  t_may : bool;
      (* existence is path-dependent: the token was born inside a loop
         (zero iterations elide it) or imported from a may-residue
         summary.  The abstraction cannot see that the branch guarding
         its persistence is correlated with the loop having run, so may
         tokens are tracked and promoted but never diagnosed — executed
         loops are the dynamic sanitizer's jurisdiction. *)
}

module SMap = Map.Make (String)

type st = {
  toks : tok SMap.t;
  flushed_all : bool;  (* flush barrier on every path since entry *)
  fenced_all : bool;
}

let init = { toks = SMap.empty; flushed_all = false; fenced_all = false }

type summary = {
  s_flushes : bool;  (* flush barrier on every normal path *)
  s_fences : bool;  (* fence on every normal path *)
  s_commits : bool;  (* reaches a commit point on some path *)
  s_out : (pstate * bool) option;
      (* weakest residue left on normal exit; the flag is [t_may] — true
         when every pending token's existence was path-dependent *)
  s_diverges : bool;  (* never returns normally *)
}

let no_summary =
  { s_flushes = false; s_fences = false; s_commits = false; s_out = None; s_diverges = false }

(* ------------------------------------------------------------------ *)
(* Domain operations                                                   *)

let join_tok ~kind ~(loc : Location.t) a b =
  if a.t_state = b.t_state then
    {
      a with
      t_mixed = a.t_mixed || b.t_mixed;
      t_may = a.t_may || b.t_may;
      t_weak = (if a.t_weak <> "" then a.t_weak else b.t_weak);
    }
  else
    {
      a with
      t_state = weaker a.t_state b.t_state;
      t_mixed = true;
      t_may = a.t_may || b.t_may;
      t_weak = Printf.sprintf "the %s merging at line %d" kind loc.loc_start.Lexing.pos_lnum;
    }

let join ~kind ~loc a b =
  {
    toks =
      SMap.merge
        (fun _ l r ->
          match (l, r) with
          | Some a, Some b -> Some (join_tok ~kind ~loc a b)
          (* Present on one side only: created on that path; a
             maybe-written store is not a bug by itself.  At a loop
             back-edge the absent side is the zero-iteration path, so
             the token's very existence becomes path-dependent: mark it
             [t_may] — later branches (typically guarded by the same
             condition as the loop) legitimately skip persisting it. *)
          | Some x, None | None, Some x ->
              Some (if kind = "loop back-edge" then { x with t_may = true } else x)
          | None, None -> None)
        a.toks b.toks;
    flushed_all = a.flushed_all && b.flushed_all;
    fenced_all = a.fenced_all && b.fenced_all;
  }

let equal_st a b =
  a.flushed_all = b.flushed_all && a.fenced_all = b.fenced_all
  && SMap.equal
       (fun x y ->
         x.t_state = y.t_state && x.t_mixed = y.t_mixed && x.t_may = y.t_may
         && x.t_weak = y.t_weak)
       a.toks b.toks

let promote st ~from ~to_ =
  { st with toks = SMap.map (fun t -> if t.t_state = from then { t with t_state = to_ } else t) st.toks }

let promote_flush st = { (promote st ~from:Stored ~to_:Flushed) with flushed_all = true }
let promote_fence st = { (promote st ~from:Flushed ~to_:Fenced) with fenced_all = true }
let promote_all st = { st with toks = SMap.map (fun t -> { t with t_state = Fenced }) st.toks }
let promote_persist st = { (promote_all st) with flushed_all = true; fenced_all = true }

let key_of_loc (loc : Location.t) =
  Printf.sprintf "%d:%d" loc.loc_start.Lexing.pos_lnum
    (loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let add_tok ?(may = false) st ~loc ~what state =
  {
    st with
    toks =
      SMap.add (key_of_loc loc)
        { t_loc = loc; t_what = what; t_state = state; t_mixed = false; t_weak = ""; t_may = may }
        st.toks;
  }

let join_opt ~kind ~loc a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (join ~kind ~loc a b)

(* ------------------------------------------------------------------ *)
(* Call classification                                                 *)

let store_fns =
  [
    ("write", Stored); ("write_string", Stored); ("memset", Stored);
    ("copy_within", Stored); ("write_u64", Stored);
    ("write_nt", Flushed); ("write_string_nt", Flushed);
    ("memset_nt", Flushed); ("copy_within_nt", Flushed);
  ]

let device_fn env e =
  match Resolve.calls env e with
  | Some (comps, args) -> (
      match List.rev comps with
      | fn :: m :: _ when low m = "device" -> Some (fn, args)
      | _ -> None)
  | None -> None

let divergers = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let is_diverger comps =
  match List.rev comps with
  | fn :: rest ->
      (List.mem fn divergers && (rest = [] || rest = [ "Stdlib" ]))
      || (match rest with m :: _ -> low m = "types" && fn = "err" | [] -> false)
  | [] -> false

(* Combinators whose lambda arguments run unconditionally (a callback
   handed to anything else is joined with the skip path instead). *)
let always_runs comps =
  match List.rev comps with
  | fn :: rest ->
      String.length fn > 5 && String.sub fn 0 5 = "with_"
      || fn = "kasprintf" || fn = "ksprintf"
      || (fn = "protect" && (match rest with m :: _ -> low m = "fun" | [] -> false))
  | [] -> false

(* Peel a lambda down to its executable bodies (one per [function] case). *)
let rec lambda_bodies (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> (
      match lambda_bodies body with [] -> [ body ] | bs -> bs)
  | Pexp_function cases -> List.map (fun c -> c.Parsetree.pc_rhs) cases
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> lambda_bodies body
  | _ -> []

let is_lambda e = lambda_bodies e <> []

(* Local [let f = fun ...] closures, collected at any depth, so calls to
   them inline instead of vanishing into the unknown-callee case. *)
let collect_closures body =
  let tbl = Hashtbl.create 8 in
  let open Ast_iterator in
  let expr it e =
    (match e.Parsetree.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (vb.Parsetree.pvb_pat.ppat_desc, lambda_bodies vb.pvb_expr) with
            | Ppat_var { txt; _ }, (_ :: _ as bodies) -> Hashtbl.replace tbl txt bodies
            | _ -> ())
          vbs
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  tbl

let annotate_construct args =
  List.find_map
    (fun (_, (a : Parsetree.expression)) ->
      match a.pexp_desc with
      | Pexp_construct ({ txt; _ }, _) -> Some (Longident.last txt)
      | _ -> None)
    args

(* ------------------------------------------------------------------ *)
(* Per-function analysis                                               *)

type fctx = {
  env : Resolve.env;
  stem : string;
  summaries : (string, summary) Hashtbl.t;
  closures : (string, Parsetree.expression list) Hashtbl.t;
  mutable inline_stack : Location.t list;
  mutable did_commit : bool;
  emit : Diag.t list ref option;  (* [Some] only in the final round *)
}

let summary_keys ctx comps =
  match List.rev comps with
  | [ fn ] -> [ ctx.stem ^ "." ^ fn ]
  | fn :: m :: _ -> [ low m ^ "." ^ fn ]
  | [] -> []

let lookup_summary ctx comps =
  List.find_map
    (fun k -> match Hashtbl.find_opt ctx.summaries k with Some s -> Some (k, s) | None -> None)
    (summary_keys ctx comps)

(* Diagnose every pending token at a commit/recovery anchor, then
   silence them (promote to Fenced) so one bad store reports once, not
   again at every later anchor or at exit. *)
let anchor_check ctx st ~anchor ~(loc : Location.t) =
  ctx.did_commit <- true;
  let line = loc.loc_start.Lexing.pos_lnum in
  let diag_tok t =
    match ctx.emit with
    | None -> ()
    | Some _ when t.t_may -> () (* path-dependent existence: not provably reached *)
    | Some diags ->
        diags :=
          Diag.v ~loc:t.t_loc ~rule
            ~hint:
              "flush+fence (Device.persist) the store on every path before the commit/recovery \
               point, or log it so the journal's own fence covers it"
            "%s may reach the %s at line %d %s%s" t.t_what anchor line (describe t.t_state)
            (if t.t_mixed then Printf.sprintf ", unpersisted via %s" t.t_weak else "")
          :: !diags
  in
  {
    st with
    toks =
      SMap.map
        (fun t ->
          if t.t_state <> Fenced then begin
            diag_tok t;
            { t with t_state = Fenced }
          end
          else t)
        st.toks;
  }

let hooks ctx =
  let rec h =
    {
      Cfg.join;
      equal = equal_st;
      apply =
        (fun ~eval st e ->
          (* Any call can raise (device reads throw [Media_error], the
             layers throw [Types.err]); the conservative raise point
             carries the pre-call state, so [try] handlers that swallow
             an exception see the weakest tokens — that reachability is
             what catches a fence stranded after a raising call. *)
          match apply ~eval st e with
          | None -> None
          | Some o ->
              Some { o with exc = join_opt ~kind:"raise point" ~loc:e.pexp_loc o.exc (Some st) });
      setfield =
        (fun st fld ->
          (* [f.dirty_bytes <- ...]: the relaxed-mode deferral ledger —
             pending stores become fsync's responsibility. *)
          match Longident.last fld with
          | "dirty_bytes" -> Some (promote_all st)
          | _ -> None);
    }
  (* Evaluate non-lambda arguments left to right (lambdas are values
     here; where their bodies run is the callee's business). *)
  and eval_args ~eval st args : st Cfg.outcome =
    List.fold_left
      (fun (o : st Cfg.outcome) (_, (a : Parsetree.expression)) ->
        match o.normal with
        | None -> o
        | Some s ->
            if is_lambda a then o
            else
              let o' : st Cfg.outcome = eval s a in
              { o' with exc = join_opt ~kind:"raise point" ~loc:a.pexp_loc o.exc o'.exc })
      { normal = Some st; exc = None }
      args
  and inline_bodies ~eval ~run (o : st Cfg.outcome) ~(loc : Location.t) bodies : st Cfg.outcome =
    match o.normal with
    | None -> o
    | Some st ->
        let fresh =
          List.filter (fun (b : Parsetree.expression) -> not (List.memq b.pexp_loc ctx.inline_stack)) bodies
        in
        if fresh = [] || List.length ctx.inline_stack > 24 then o
        else begin
          ctx.inline_stack <- List.map (fun (b : Parsetree.expression) -> b.pexp_loc) fresh @ ctx.inline_stack;
          let ran =
            match
              List.map (fun (b : Parsetree.expression) -> eval st b) fresh
            with
            | [] -> o
            | o0 :: rest ->
                List.fold_left (Cfg.join_outcome h ~kind:"callback case" ~loc) o0 rest
          in
          ctx.inline_stack <-
            List.filter
              (fun l -> not (List.exists (fun (b : Parsetree.expression) -> b.pexp_loc == l) fresh))
              ctx.inline_stack;
          let ran = { ran with exc = join_opt ~kind:"raise point" ~loc o.exc ran.exc } in
          match run with
          | `Always -> ran
          | `May ->
              (* The callback may not run at all (or run repeatedly):
                 join with the skip path. *)
              Cfg.join_outcome h ~kind:"may-skip callback" ~loc { normal = Some st; exc = None } ran
        end
  and inline_lams ~eval ~run o args =
    List.fold_left
      (fun o (_, (a : Parsetree.expression)) ->
        match lambda_bodies a with
        | [] -> o
        | bodies -> inline_bodies ~eval ~run o ~loc:a.pexp_loc bodies)
      o args
  and apply_summary st ~loc ~what (s : summary) : st Cfg.outcome =
    let st = if s.s_flushes then promote_flush st else st in
    let st = if s.s_fences then promote_fence st else st in
    let st =
      if s.s_commits then anchor_check ctx st ~anchor:("commit point inside " ^ what) ~loc else st
    in
    let st =
      match s.s_out with
      | None -> st
      | Some (p, may) -> add_tok ~may st ~loc ~what:("call to " ^ what) p
    in
    if s.s_diverges then { normal = None; exc = Some st } else { normal = Some st; exc = None }
  and apply ~eval st (e : Parsetree.expression) : st Cfg.outcome option =
    let loc = e.pexp_loc in
    match device_fn ctx.env e with
    | Some ("with_site", args) ->
        let o = eval_args ~eval st args in
        Some (inline_lams ~eval ~run:`Always o args)
    | Some (fn, args) when List.mem_assoc fn store_fns ->
        let o = eval_args ~eval st args in
        Some
          { o with
            normal =
              Option.map (fun st -> add_tok st ~loc ~what:("Device." ^ fn) (List.assoc fn store_fns)) o.normal
          }
    | Some ("flush", args) ->
        let o = eval_args ~eval st args in
        Some { o with normal = Option.map promote_flush o.normal }
    | Some ("fence", args) ->
        let o = eval_args ~eval st args in
        Some { o with normal = Option.map promote_fence o.normal }
    | Some ("persist", args) ->
        let o = eval_args ~eval st args in
        Some { o with normal = Option.map promote_persist o.normal }
    | Some ("annotate", args) ->
        let o = eval_args ~eval st args in
        Some
          (match (o.normal, annotate_construct args) with
          | Some st, Some "Txn_commit" ->
              { o with normal = Some (anchor_check ctx st ~anchor:"commit point" ~loc) }
          | Some st, Some "Recovery_begin" ->
              { o with normal = Some (anchor_check ctx st ~anchor:"recovery read point" ~loc) }
          | _ -> o)
    | Some (_, args) -> Some (eval_args ~eval st args)
    | None -> (
        match Resolve.calls ctx.env e with
        | None -> None (* not a resolvable application; structural descent *)
        | Some (comps, args) ->
            if is_diverger comps then
              let o = eval_args ~eval st args in
              Some
                {
                  normal = None;
                  exc = (match o.normal with Some s -> Some s | None -> o.exc);
                }
            else
              let o = eval_args ~eval st args in
              let run = if always_runs comps then `Always else `May in
              let o = inline_lams ~eval ~run o args in
              let closure =
                match comps with [ f ] -> Hashtbl.find_opt ctx.closures f | _ -> None
              in
              (match closure with
              | Some bodies -> Some (inline_bodies ~eval ~run:`Always o ~loc bodies)
              | None -> (
                  match lookup_summary ctx comps with
                  | Some (key, s) ->
                      Some
                        (match o.normal with
                        | None -> o
                        | Some st ->
                            let os = apply_summary st ~loc ~what:key s in
                            { os with exc = join_opt ~kind:"raise point" ~loc o.exc os.exc })
                  | None -> Some o)))
  in
  h

(* ------------------------------------------------------------------ *)
(* Function discovery and driver                                       *)

type fn_decl = { d_key : string; d_name : string; d_bodies : Parsetree.expression list }

let decls_of_file (f : Source.file) =
  let out = ref [] in
  let add name bodies =
    if bodies <> [] then
      out := { d_key = f.stem ^ "." ^ name; d_name = name; d_bodies = bodies } :: !out
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match vb.Parsetree.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> txt
              | _ -> "<toplevel>"
            in
            match lambda_bodies vb.pvb_expr with
            | [] -> add name [ vb.pvb_expr ] (* top-level effectful value *)
            | bodies -> add name bodies)
          vbs
    | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.Parsetree.pmb_expr) mbs
    | _ -> ()
  and module_expr (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> List.iter item items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_expr me
    | _ -> ()
  in
  List.iter item f.impl;
  List.rev !out

let in_scope (f : Source.file) =
  let starts p =
    String.length f.path >= String.length p && String.sub f.path 0 (String.length p) = p
  in
  f.kind = Source.Impl && not (starts "lib/pmem/") && not (starts "lib/lint/")

let analyze_fn ~summaries ~emit (f : Source.file) (d : fn_decl) =
  let env = Resolve.env_of_file f in
  let committed = ref false in
  let outcomes =
    List.map
      (fun (body : Parsetree.expression) ->
        let ctx =
          {
            env;
            stem = f.stem;
            summaries;
            closures = collect_closures body;
            inline_stack = [];
            did_commit = false;
            emit;
          }
        in
        let o = Cfg.eval (hooks ctx) init body in
        if ctx.did_commit then committed := true;
        (body.pexp_loc, o))
      d.d_bodies
  in
  let joined =
    List.fold_left
      (fun acc (loc, (o : st Cfg.outcome)) -> join_opt ~kind:"function clause" ~loc acc o.normal)
      None outcomes
  in
  (* Exit check (final round only): a token whose persistence depended on
     which path ran is the branch-only bug class.  Only local [Device.*]
     stores qualify: a call residue is a helper's deliberate deferral
     whose contract is judged at commit anchors, and "mixed" on one is
     usually a sibling callee's global fence promoting it incidentally.
     May tokens are excluded — the skipping branch is typically guarded
     by the same condition as the loop that created them. *)
  let local t =
    String.length t.t_what >= 7 && String.sub t.t_what 0 7 = "Device."
  in
  (match (emit, joined) with
  | Some diags, Some exit_st ->
      SMap.iter
        (fun _ t ->
          if t.t_state <> Fenced && t.t_mixed && local t && not t.t_may then
            diags :=
              Diag.v ~loc:t.t_loc ~rule
                ~hint:
                  "persist the store on every path (or defer it explicitly via the dirty-bytes \
                   ledger) so no branch leaves it weaker than its siblings"
                "%s is persisted on some paths of %s but %s via %s" t.t_what d.d_name
                (describe t.t_state) t.t_weak
              :: !diags)
        exit_st.toks
  | _ -> ());
  match joined with
  | None -> { no_summary with s_diverges = true; s_commits = !committed }
  | Some exit_st ->
      (* Residue: weakest pending token.  A must token dominates — if any
         pending token exists on every path, the residue is must. *)
      let pending =
        SMap.fold
          (fun _ t acc ->
            if t.t_state = Fenced then acc
            else
              Some
                (match acc with
                | None -> (t.t_state, t.t_may)
                | Some (p, may) -> (weaker p t.t_state, may && t.t_may)))
          exit_st.toks None
      in
      {
        s_flushes = exit_st.flushed_all;
        s_fences = exit_st.fenced_all;
        s_commits = !committed;
        s_out = pending;
        s_diverges = false;
      }

let max_rounds = 5

let check files =
  let files = List.filter in_scope files in
  let decls = List.concat_map (fun f -> List.map (fun d -> (f, d)) (decls_of_file f)) files in
  let summaries = Hashtbl.create 256 in
  let round emit = List.map (fun (f, d) -> (d.d_key, analyze_fn ~summaries ~emit f d)) decls in
  let install l = List.iter (fun (k, s) -> Hashtbl.replace summaries k s) l in
  let rec fix prev n =
    let cur = round None in
    install cur;
    if cur = prev || n >= max_rounds then () else fix cur (n + 1)
  in
  fix [] 1;
  let diags = ref [] in
  ignore (round (Some diags) : (string * summary) list);
  Diag.normalize !diags
