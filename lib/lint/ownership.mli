(** Rule [ownership]: module-boundary discipline on {e resolved} paths —
    the archcheck layering rules, re-implemented on the AST (no matches
    inside comments/strings, aliases like
    [module U = Repro_journal.Undo_journal] are expanded) and extended
    repo-wide:

    - [Undo_journal]/[Redo_journal] are journal internals: only the txn
      and layout layers (plus basefs, which implements the PMFS/ext4
      journaling personalities, and the race scenarios that stress them)
      may reach them.
    - [Dir_index]/[Fd_table] are VFS structures: only the namespace,
      inode and fs facade layers (and the baselines) may use them.
    - [Fault] (media-fault injection) may only be driven through
      [lib/pmem] itself and the faultcheck harness — file systems must
      never inject their own faults.
    - [Crc32c] belongs to the codec/journal/inode metadata layers;
      checksums sprinkled elsewhere would bypass the media-fault repair
      accounting.

    Plus the facade-size invariant: [lib/core/fs.ml] stays a thin facade
    (at most 600 lines). *)

type rule = {
  target : string;  (** module component to police, e.g. ["Undo_journal"] *)
  allowed : string list;  (** path prefixes (dirs end in '/') or exact paths *)
  why : string;
}

val rules : rule list
val check : Source.file list -> Diag.t list
