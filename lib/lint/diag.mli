(** Structured static-analysis diagnostics.

    Every rule reports findings through this one type so `srccheck` output
    is uniformly greppable ([file:line:col rule-id message]) and tests can
    assert exact diagnostics instead of scraping free-form text. *)

type t = {
  file : string;  (** path as scanned (workspace-relative when possible) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  rule : string;  (** rule id, e.g. ["lock-order"] *)
  msg : string;
  hint : string;  (** how to fix; rendered after the message *)
}

val v : loc:Location.t -> rule:string -> hint:string -> ('a, unit, string, t) format4 -> 'a
(** Build a diagnostic anchored at [loc]'s start position. *)

val at : file:string -> line:int -> col:int -> rule:string -> hint:string -> string -> t
(** Build a diagnostic from explicit coordinates (for file-level findings
    with no AST location, e.g. a facade size limit). *)

val to_string : t -> string
(** ["file:line:col rule-id message (fix: hint)"]. *)

val compare : t -> t -> int
(** Total order: file, line, column, rule id, then message and hint, so a
    diagnostic list has exactly one sorted form regardless of rule
    traversal order. *)

val normalize : t list -> t list
(** Sort by {!compare} and drop exact duplicates — every printed or
    serialised report goes through this, making output byte-stable. *)

val to_json : t -> Repro_stats.Json.t
(** [{file; line; col; rule; msg; hint}] as a JSON object, for
    [--format=json] consumers. *)
