(** persist-order: flow-sensitive crash-consistency rule.

    Forward dataflow (via {!Cfg}) tracking each PM store as a token
    through [Stored < Flushed < Fenced], with interprocedural-lite
    function summaries.  Diagnoses tokens below [Fenced] at commit and
    recovery anchors, and tokens whose state diverged across merged
    paths at function exit — the branch-only-on-error bug class the
    dynamic sanitizer cannot see at partial path coverage.  See the
    implementation header for the full lattice, join and anchor rules
    (mirrored in DESIGN.md §12). *)

val rule : string
(** ["persist-order"]. *)

val check : Source.file list -> Diag.t list

type pstate = Stored | Flushed | Fenced
(** The per-token lattice (exposed for tests and DESIGN.md §12). *)

type summary = {
  s_flushes : bool;  (** flush barrier on every normal path *)
  s_fences : bool;  (** fence on every normal path *)
  s_commits : bool;  (** reaches a commit point on some path *)
  s_out : (pstate * bool) option;
      (** weakest residue left for the caller; the flag is the may bit —
          [true] when every pending token was born on a path-dependent
          edge (inside a loop), so callers track but never diagnose it *)
  s_diverges : bool;  (** never returns normally *)
}
