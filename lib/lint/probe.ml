module Sched = Repro_sched.Sched
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Pmfs = Repro_baselines.Pmfs
module Race = Repro_race.Race
module Scenarios = Repro_race.Scenarios
open Repro_util

type result = {
  observed_edges : (string * string) list;
  runtime_cycle : string list option;
  acquisitions : int;
  diags : Diag.t list;
}

let rule = "lock-order"

(* A small two-thread workload on the PMFS personality: exercises the
   basefs hierarchy (parent/file locks, the journal mutex behind
   meta_sync) that the race scenarios do not touch. *)
let basefs_workload () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(64 * Units.mib) () in
  let fs = Pmfs.format dev Types.default_config in
  ignore
    (Sched.run ~threads:2 (fun (cpu : Cpu.t) ->
         let dir = Printf.sprintf "/d%d" cpu.id in
         Pmfs.mkdir fs cpu dir;
         let path = dir ^ "/f" in
         let fd = Pmfs.create fs cpu path in
         ignore (Pmfs.pwrite fs cpu fd ~off:0 ~src:"probe" : int);
         Pmfs.fsync fs cpu fd;
         Pmfs.close fs cpu fd;
         Pmfs.rename fs cpu ~old_path:path ~new_path:(dir ^ "/g");
         Pmfs.unlink fs cpu (dir ^ "/g");
         Pmfs.rmdir fs cpu dir)
      : Sched.stats)

let run files =
  let graph, _ = Lock_order.build files in
  Sched.Lock_order.reset ();
  List.iter (fun sc -> ignore (Race.check sc : Race.race list)) Scenarios.all;
  basefs_workload ();
  let observed = Sched.Lock_order.named_edges () in
  let cycle = Sched.Lock_order.cycle () in
  let diags =
    (match cycle with
    | Some labels ->
        [
          Diag.at ~file:"<runtime>" ~line:0 ~col:0 ~rule
            ~hint:"this is a real acquired-before cycle observed while running; fix the \
                   acquisition order"
            (Printf.sprintf "runtime lock-order cycle between {%s}" (String.concat ", " labels));
        ]
    | None -> [])
    @ Lock_order.containment_diags graph ~observed
  in
  {
    observed_edges = observed;
    runtime_cycle = cycle;
    acquisitions = Sched.Lock_order.acquisitions ();
    diags;
  }

(* ------------------------------------------------------------------ *)
(* Flow containment: replay the paired persist-order scenarios.        *)

type flow_result = {
  flow_scenarios : (string * bool * bool) list;  (* name, static flagged, dynamic error *)
  flow_diags : Diag.t list;
}

let run_flow () =
  let results =
    List.map
      (fun (sc : Flow_scenarios.t) ->
        let st = Flow_scenarios.static_diags sc <> [] in
        let dyn = Flow_scenarios.dynamic_errors sc <> [] in
        (sc, st, dyn))
      Flow_scenarios.all
  in
  let diags =
    List.concat_map
      (fun ((sc : Flow_scenarios.t), st, dyn) ->
        let fail hint fmt =
          Printf.ksprintf
            (fun msg -> [ Diag.at ~file:"<flow-probe>" ~line:0 ~col:0 ~rule:Flowcheck.rule ~hint msg ])
            fmt
        in
        (if dyn && not st then
           fail
             "the dataflow must subsume the dynamic rules on every executed path; widen the \
              lattice/anchor handling rather than weakening the scenario"
             "containment violated: the sanitizer flags scenario %s but flowcheck does not" sc.name
         else [])
        @ (if st <> sc.expect_static then
             fail "the scenario or the analyzer regressed; see Flow_scenarios"
               "scenario %s: flowcheck %s but the scenario expects %s" sc.name
               (if st then "fires" else "is silent")
               (if sc.expect_static then "a diagnostic" else "silence")
           else [])
        @
        if dyn <> sc.expect_dynamic then
          fail "the scenario or the sanitizer regressed; see Flow_scenarios"
            "scenario %s: the sanitizer %s but the scenario expects %s" sc.name
            (if dyn then "errors" else "is silent")
            (if sc.expect_dynamic then "an error" else "silence")
        else [])
      results
  in
  {
    flow_scenarios = List.map (fun ((sc : Flow_scenarios.t), st, dyn) -> (sc.name, st, dyn)) results;
    flow_diags = diags;
  }
