(** Paired static/dynamic crash-consistency scenarios.

    The same store/flush/fence/commit sequence expressed twice: as
    source text for {!Flowcheck} and as a closure executed against a
    sanitizer-attached device.  {!Probe.run_flow} replays them to check
    the containment obligation (static ⊇ dynamic on the executed path)
    and that the inclusion is strict ([hidden_error_path] is a planted
    branch-only bug the dynamic side provably misses). *)

type t = {
  name : string;
  description : string;
  source : string;  (** the sequence as source text, for {!Flowcheck} *)
  run : unit -> Repro_sanitizer.Sanitizer.diag list;
      (** the sequence executed under the sanitizer *)
  expect_static : bool;  (** flowcheck must flag the source *)
  expect_dynamic : bool;  (** the sanitizer must flag the execution *)
}

val all : t list

val hidden_error_path : t
(** The strict-inclusion witness: dynamically clean (the run takes the
    healthy branch), statically a persist-order violation. *)

val static_diags : t -> Diag.t list
(** Parse [source] (as a core-scope file) and run {!Flowcheck} over it,
    keeping only persist-order diagnostics. *)

val dynamic_errors : t -> Repro_sanitizer.Sanitizer.diag list
(** Execute [run] and keep error-severity diagnostics. *)
