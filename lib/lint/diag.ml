type t = { file : string; line : int; col : int; rule : string; msg : string; hint : string }

let at ~file ~line ~col ~rule ~hint msg = { file; line; col; rule; msg; hint }

let v ~loc ~rule ~hint fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (fun msg ->
      {
        file = p.Lexing.pos_fname;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        msg;
        hint;
      })
    fmt

let to_string d =
  Printf.sprintf "%s:%d:%d %s %s%s" d.file d.line d.col d.rule d.msg
    (if d.hint = "" then "" else Printf.sprintf " (fix: %s)" d.hint)

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> (
                  match String.compare a.msg b.msg with
                  | 0 -> String.compare a.hint b.hint
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let normalize ds = List.sort_uniq compare ds

let to_json d =
  let open Repro_stats.Json in
  Obj
    [
      ("file", String d.file);
      ("line", Int d.line);
      ("col", Int d.col);
      ("rule", String d.rule);
      ("msg", String d.msg);
      ("hint", String d.hint);
    ]
