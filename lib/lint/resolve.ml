open Parsetree

(* module X = A.B aliases: X -> [A; B].  A flat, file-wide map is a sound
   approximation for this codebase: module aliases are file-scoped
   conventions (every file binds its own [Device]/[Sched]/...), and a
   same-name alias in a nested scope would only widen, never hide, what
   the rules see. *)
type env = (string, string list) Hashtbl.t

let flatten lid = try Longident.flatten lid with _ -> []

let env_of_file (f : Source.file) =
  let env : env = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      module_binding =
        (fun it mb ->
          (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some name, Pmod_ident { txt = lid; _ } -> Hashtbl.replace env name (flatten lid)
          | _ -> ());
          Ast_iterator.default_iterator.module_binding it mb);
    }
  in
  it.structure it f.impl;
  it.signature it f.intf;
  env

let resolve env lid =
  let rec expand depth comps =
    match comps with
    | head :: rest when depth < 8 -> (
        match Hashtbl.find_opt env head with
        | Some target when target <> comps -> expand (depth + 1) (target @ rest)
        | _ -> comps)
    | _ -> comps
  in
  expand 0 (flatten lid)

let mentions env lid name = List.mem name (resolve env lid)

let rec calls env (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ }, [ (_, f); (_, x) ]) -> (
      match calls env f with
      | Some (callee, fargs) -> Some (callee, fargs @ [ (Asttypes.Nolabel, x) ])
      | None -> None)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ }, [ (_, x); (_, f) ]) -> (
      match calls env f with
      | Some (callee, fargs) -> Some (callee, fargs @ [ (Asttypes.Nolabel, x) ])
      | None -> None)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) ->
      Some (resolve env lid, args)
  | Pexp_ident { txt = lid; _ } -> Some (resolve env lid, [])
  | _ -> None

let rec label_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = lid; _ } -> String.concat "." (flatten lid)
  | Pexp_field (inner, { txt = field; _ }) ->
      label_of_expr inner ^ "." ^ String.concat "." (flatten field)
  | Pexp_constraint (inner, _) -> label_of_expr inner
  | _ -> "<expr>"
