let rule = "persist-site"
let low = String.lowercase_ascii

let triggers =
  [
    "write"; "write_string"; "memset"; "copy_within";
    "write_nt"; "write_string_nt"; "memset_nt"; "copy_within_nt";
    "write_u64"; "flush"; "fence"; "persist";
  ]

let in_scope (f : Source.file) =
  f.kind = Source.Impl
  && not (String.length f.path >= 9 && String.sub f.path 0 9 = "lib/pmem/")

let device_fn env e =
  match Resolve.calls env e with
  | Some (comps, args) -> (
      match List.rev comps with
      | fn :: m :: _ when low m = "device" -> Some (fn, args)
      | _ -> None)
  | None -> None

let check_file (f : Source.file) diags =
  let env = Resolve.env_of_file f in
  let depth = ref 0 in
  let open Ast_iterator in
  let expr it e =
    match device_fn env e with
    | Some ("with_site", args) -> (
        match List.rev (List.filter_map (function Asttypes.Nolabel, a -> Some a | _ -> None) args) with
        | thunk :: rest ->
            List.iter (it.expr it) (List.rev rest);
            incr depth;
            it.expr it thunk;
            decr depth
        | [] -> ())
    | Some (fn, args) when List.mem fn triggers ->
        if !depth = 0 then
          diags :=
            Diag.v ~loc:e.Parsetree.pexp_loc ~rule
              ~hint:
                "wrap the persistence section in Device.with_site dev (Site.v ~layer ~op) so \
                 sanitizer/faultcheck reports can attribute it"
              "Device.%s outside any Device.with_site annotation" fn
            :: !diags;
        List.iter (fun (_, a) -> it.expr it a) args
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.structure it f.impl

let check files =
  let diags = ref [] in
  List.iter (fun f -> if in_scope f then check_file f diags) files;
  List.sort Diag.compare !diags
