(* Forward dataflow over OCaml parse trees.

   The parse tree of a function body already is its control-flow graph:
   sequencing, [if], [match], [try], [while]/[for] and [let] chains are
   the only control constructs the sources use, so instead of lowering to
   an explicit node/edge graph we run the transfer function directly over
   the structured syntax — each construct's evaluation rule encodes the
   corresponding CFG edges (branch, merge, back-edge, exceptional edge).
   Clients keep full control of the abstract domain: the engine only
   knows how to join at merge points and where the exceptional edges go.

   Evaluation of an expression yields an [outcome]: the state on the
   normal (fall-through) edge and the join of the states at every
   potential raise point inside it ([None] = edge unreachable).  A
   [try] consumes the body's exceptional edge as its handlers' entry
   state; anything the client marks as diverging ([normal = None]) makes
   the continuation unreachable.  Handlers are assumed to catch whatever
   the body raises (non-exhaustive handler patterns re-raise in reality;
   modelling that per-exception would need types, and the journalled
   call sites all use catch-all or [Fun.protect] shapes). *)

type 'st outcome = { normal : 'st option; exc : 'st option }

type 'st hooks = {
  join : kind:string -> loc:Location.t -> 'st -> 'st -> 'st;
      (** Merge two reachable states.  [kind] names the construct edge
          being merged ("else branch", "match case", "exception handler
          path", "loop back-edge") so domains can record which path
          weakened a fact. *)
  equal : 'st -> 'st -> bool;  (** Loop fixpoint termination test. *)
  apply :
    eval:('st -> Parsetree.expression -> 'st outcome) ->
    'st ->
    Parsetree.expression ->
    'st outcome option;
      (** Called on every application node with the state reached after
          no argument has been evaluated — the hook owns argument
          evaluation (so it can inline lambda arguments or skip them) and
          the call's effect.  [None] falls back to structural descent:
          callee and arguments evaluated left to right, call itself a
          no-op. *)
  setfield : 'st -> Longident.t -> 'st option;
      (** Effect of [e.field <- v] (after both sides evaluated); [None]
          for no-op. *)
}

let some_join h ~kind ~loc a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (h.join ~kind ~loc a b)

let join_outcome h ~kind ~loc a b =
  {
    normal = some_join h ~kind ~loc a.normal b.normal;
    exc = some_join h ~kind ~loc a.exc b.exc;
  }

let unreachable = { normal = None; exc = None }

let max_loop_iters = 16

let rec eval h st (e : Parsetree.expression) =
  let loc = e.pexp_loc in
  (* Chain: evaluate [e] from an optional entry state, accumulating the
     exceptional join. *)
  let step (o : _ outcome) e =
    match o.normal with
    | None -> o (* continuation unreachable; keep accumulated exc *)
    | Some st ->
        let o' = eval h st e in
        { o' with exc = some_join h ~kind:"raise point" ~loc o.exc o'.exc }
  in
  let seq st es = List.fold_left step { normal = Some st; exc = None } es in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable | Pexp_extension _
  | Pexp_function _ | Pexp_fun _ | Pexp_lazy _ | Pexp_object _ | Pexp_pack _
  | Pexp_new _ ->
      (* Values (lambdas and lazy bodies are not run here: the [apply]
         hook decides if and where a lambda's body executes). *)
      { normal = Some st; exc = None }
  | Pexp_let (_, vbs, body) ->
      let o = seq st (List.map (fun vb -> vb.Parsetree.pvb_expr) vbs) in
      step o body
  | Pexp_sequence (a, b) -> seq st [ a; b ]
  | Pexp_apply _ -> (
      match h.apply ~eval:(eval h) st e with
      | Some o -> o
      | None -> (
          match e.pexp_desc with
          | Pexp_apply (f, args) -> seq st (f :: List.map snd args)
          | _ -> assert false))
  | Pexp_ifthenelse (c, t, e_opt) -> (
      let oc = seq st [ c ] in
      match oc.normal with
      | None -> oc
      | Some stc ->
          let ot = eval h stc t in
          let oe =
            match e_opt with Some e -> eval h stc e | None -> { normal = Some stc; exc = None }
          in
          let kind = if e_opt = None then "implicit else branch" else "else branch" in
          let o = join_outcome h ~kind ~loc ot oe in
          { o with exc = some_join h ~kind:"raise point" ~loc oc.exc o.exc })
  | Pexp_match (scrut, cases) -> (
      let os = seq st [ scrut ] in
      (* [match e with exception E -> ...] cases enter on the scrutinee's
         exceptional edge; ordinary cases on its normal edge. *)
      let is_exc c =
        match c.Parsetree.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false
      in
      let exc_cases, norm_cases = List.partition is_exc cases in
      let case_outcome entry c =
        match entry with
        | None -> unreachable
        | Some st ->
            let o =
              match c.Parsetree.pc_guard with
              | Some g -> seq st [ g ]
              | None -> { normal = Some st; exc = None }
            in
            step o c.pc_rhs
      in
      let outcomes =
        List.map (case_outcome os.normal) norm_cases
        @ List.map (case_outcome os.exc) exc_cases
      in
      let body_exc_consumed = exc_cases <> [] in
      match outcomes with
      | [] -> os
      | o0 :: rest ->
          let o = List.fold_left (join_outcome h ~kind:"match case" ~loc) o0 rest in
          if body_exc_consumed then o
          else { o with exc = some_join h ~kind:"raise point" ~loc os.exc o.exc })
  | Pexp_try (body, handlers) -> (
      let ob = eval h st body in
      let handler_outcome c =
        match ob.exc with
        | None -> unreachable
        | Some st ->
            let o =
              match c.Parsetree.pc_guard with
              | Some g -> seq st [ g ]
              | None -> { normal = Some st; exc = None }
            in
            step o c.pc_rhs
      in
      let oh =
        match List.map handler_outcome handlers with
        | [] -> unreachable
        | o0 :: rest ->
            List.fold_left (join_outcome h ~kind:"exception handler path" ~loc) o0 rest
      in
      match ob.normal with
      | None -> oh
      | Some stn ->
          join_outcome h ~kind:"exception handler path" ~loc { normal = Some stn; exc = None } oh)
  | Pexp_while (c, body) ->
      (* Fixpoint over the back-edge: entry ⊔ post-body, with the
         condition re-evaluated each round.  Exit on the condition's
         false edge (i.e. post-condition state at the fixpoint). *)
      let exc = ref None in
      let note_exc o = exc := some_join h ~kind:"raise point" ~loc !exc o.exc in
      let rec fix st n =
        let oc = eval h st c in
        note_exc oc;
        match oc.normal with
        | None -> None
        | Some stc -> (
            let ob = eval h stc body in
            note_exc ob;
            match ob.normal with
            | None -> Some stc
            | Some stb ->
                let st' = h.join ~kind:"loop back-edge" ~loc st stb in
                if h.equal st' st || n >= max_loop_iters then Some st' else fix st' (n + 1))
      in
      { normal = fix st 0; exc = !exc }
  | Pexp_for (_, lo, hi, _, body) ->
      let o = seq st [ lo; hi ] in
      (match o.normal with
      | None -> o
      | Some st0 ->
          let exc = ref o.exc in
          let rec fix st n =
            let ob = eval h st body in
            exc := some_join h ~kind:"raise point" ~loc !exc ob.exc;
            match ob.normal with
            | None -> st
            | Some stb ->
                let st' = h.join ~kind:"loop back-edge" ~loc st stb in
                if h.equal st' st || n >= max_loop_iters then st' else fix st' (n + 1)
          in
          (* The body may run zero times: the exit state joins the entry. *)
          { normal = Some (fix st0 0); exc = !exc })
  | Pexp_setfield (obj, fld, v) -> (
      let o = seq st [ obj; v ] in
      match o.normal with
      | None -> o
      | Some st -> (
          match h.setfield st fld.txt with
          | Some st' -> { o with normal = Some st' }
          | None -> o))
  | Pexp_assert a -> (
      let o = seq st [ a ] in
      match a.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
          (* [assert false] diverges. *)
          { normal = None; exc = some_join h ~kind:"raise point" ~loc o.exc o.normal }
      | _ -> o)
  | Pexp_tuple es | Pexp_array es -> seq st es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> seq st [ a ] | None -> { normal = Some st; exc = None })
  | Pexp_record (fields, base) ->
      seq st ((match base with Some b -> [ b ] | None -> []) @ List.map snd fields)
  | Pexp_field (a, _) -> seq st [ a ]
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_newtype (_, a)
  | Pexp_open (_, a) | Pexp_letmodule (_, _, a) | Pexp_letexception (_, a)
  | Pexp_poly (a, _) | Pexp_send (a, _) ->
      seq st [ a ]
  | Pexp_letop { let_; ands; body } ->
      let o = seq st (let_.pbop_exp :: List.map (fun a -> a.Parsetree.pbop_exp) ands) in
      step o body
  | Pexp_setinstvar (_, a) -> seq st [ a ]
  | Pexp_override fields -> seq st (List.map snd fields)
