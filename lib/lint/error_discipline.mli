(** Rule [error-discipline]: handlers that can silently swallow
    [Media_error]-rooted failures ([Types.Error (EIO, _)]) or read-only
    degradation ([EROFS]) in the durability-bearing layers.

    Flags, in exception position (try/with cases and
    [match ... with exception p ->] cases):

    - catch-all patterns ([_] or a variable) whose body does not
      re-raise — these eat EIO/EROFS along with the error the author
      meant to ignore;
    - [Types.Error] patterns whose errno component is undiscriminated
      ([Types.Error _], [Types.Error (_, _)] or a variable) with no
      guard and no re-raise;
    - [ignore]d calls to [check_invariants] (the repo's
      [(unit, string) result] self-check API) — discarding the [Error]
      side defeats the check.

    Cases with a guard, or whose body contains a [raise], are exempt:
    discrimination is happening, just not in the pattern. *)

val in_scope : Source.file -> bool
val check : Source.file list -> Diag.t list
