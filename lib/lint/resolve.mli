(** Longident resolution and application normalisation shared by the
    rules.

    Rules match on {e resolved} module paths: a per-file environment maps
    local aliases ([module Undo = Repro_journal.Undo_journal]) and opens
    to their targets, so [Undo.commit] and
    [Repro_journal.Undo_journal.commit] are the same reference — the
    precision the substring archcheck lacked (no matches inside comments,
    strings, or unrelated identifiers). *)

type env

val env_of_file : Source.file -> env
(** Collect [module X = Path] aliases (at any nesting depth). *)

val resolve : env -> Longident.t -> string list
(** Expanded component list, aliases substituted recursively (cycle-safe);
    e.g. with [module Undo = Repro_journal.Undo_journal],
    [Undo.commit] resolves to [["Repro_journal"; "Undo_journal"; "commit"]]. *)

val mentions : env -> Longident.t -> string -> bool
(** Does the resolved path contain this module component?  ([mentions env
    lid "Undo_journal"]). *)

val calls : env -> Parsetree.expression -> (string list * (Asttypes.arg_label * Parsetree.expression) list) option
(** Normalised application view of an expression: [Some (resolved-callee,
    args)] for [f a b], [f @@ a] and [a |> f]; [None] otherwise. *)

val label_of_expr : Parsetree.expression -> string
(** Short syntactic label for a mutex expression: identifiers and field
    paths render as written ([parent.lock], [t.mu]); anything else as
    ["<expr>"].  Lock-order nodes are keyed on [stem ^ ":" ^ label]. *)
