(** Source loader: parse every [.ml]/[.mli] under the scanned roots into
    real {!Parsetree} ASTs (via [compiler-libs.common]), so rules see
    resolved syntax instead of substrings — comments and string literals
    can no longer produce false matches, and every finding carries an
    exact [file:line:col].

    Paths are normalised to use ['/'] and are kept workspace-relative when
    the roots are relative, so allowlists and ownership rules match on
    stable names like ["lib/core/txn.ml"]. *)

type kind = Impl  (** a [.ml] file *) | Intf  (** a [.mli] file *)

type file = {
  path : string;  (** normalised path, e.g. ["lib/core/txn.ml"] *)
  kind : kind;
  stem : string;  (** module stem, lowercase basename: ["txn"] *)
  impl : Parsetree.structure;  (** [[]] for interfaces *)
  intf : Parsetree.signature;  (** [[]] for implementations *)
  line_count : int;
}

val parse_string : path:string -> string -> (file, Diag.t) result
(** Parse source text as the contents of [path] (suffix decides
    implementation vs interface).  Parse failures come back as a
    ["parse"]-rule diagnostic carrying the syntax-error location. *)

val load_file : string -> (file, Diag.t) result

val load_roots : string list -> file list * Diag.t list
(** Recursively collect and parse every [.ml]/[.mli] under the given
    directories (files may also be given directly), skipping [_build] and
    dot-directories.  Returns parsed files sorted by path, plus a
    ["parse"] diagnostic per unparseable file. *)
