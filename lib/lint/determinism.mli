(** determinism: forbid ambient nondeterminism in the sources.

    Flags wall-clock reads, the unseeded global [Random] state, the
    polymorphic structural hash, hash-order [Hashtbl] traversals (unless
    immediately sorted or key-insensitive), and — inside the
    [lib/core/]/[lib/rbtree/] hot-path scope — polymorphic [=]/[<>]
    against variant constructors and the bare polymorphic [compare].
    Seeded replay (racecheck, faultcheck, the golden image) only works
    if no result depends on ambient state; see the implementation
    header for the exemption conventions. *)

val rule : string
(** ["determinism"]. *)

val check : Source.file list -> Diag.t list
