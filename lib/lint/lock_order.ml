open Parsetree
module SS = Set.Make (String)

let rule = "lock-order"
let low = String.lowercase_ascii

type graph = {
  nodes : (string, unit) Hashtbl.t;
  adj : (string * string, Location.t) Hashtbl.t;  (* (from, to) -> witness *)
}

let new_graph () = { nodes = Hashtbl.create 32; adj = Hashtbl.create 64 }
let add_node g n = Hashtbl.replace g.nodes n ()

let add_edge g a b loc =
  add_node g a;
  add_node g b;
  if not (Hashtbl.mem g.adj (a, b)) then Hashtbl.add g.adj (a, b) loc

let nodes g = Hashtbl.fold (fun n () acc -> n :: acc) g.nodes [] |> List.sort compare
let edges g = Hashtbl.fold (fun e _ acc -> e :: acc) g.adj [] |> List.sort compare
let succs g a =
  Hashtbl.fold (fun (x, y) _ acc -> if x = a then y :: acc else acc) g.adj []
  |> List.sort compare

let reaches g a b =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if Hashtbl.mem seen n then false
    else begin
      Hashtbl.add seen n ();
      List.exists (fun s -> s = b || go s) (succs g n)
    end
  in
  Hashtbl.mem g.nodes a && go a

(* The sched implementation itself (and this analyzer) sit below the
   locking discipline the rule describes. *)
let out_of_scope (f : Source.file) =
  f.kind = Source.Intf || f.stem = "sched"
  || (String.length f.path >= 9 && String.sub f.path 0 9 = "lib/lint/")

(* ---- syntactic classification of an expression ---------------------- *)

type shape =
  | With_lock of expression * expression option  (* mutex, thunk *)
  | Lock of expression  (* Sched.lock m, or List.iter Sched.lock ms *)
  | Call of string list * (Asttypes.arg_label * expression) list
  | Other

let nolabel args =
  List.filter_map (function Asttypes.Nolabel, e -> Some e | _ -> None) args

let sched_fn env e name =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Resolve.resolve env txt) with
      | last :: m :: _ -> last = name && low m = "sched"
      | _ -> false)
  | _ -> false

let classify env e =
  match Resolve.calls env e with
  | None -> Other
  | Some (comps, args) -> (
      match List.rev comps with
      | "with_lock" :: m :: _ when low m = "sched" -> (
          match nolabel args with
          | mu :: thunk :: _ -> With_lock (mu, Some thunk)
          | [ mu ] -> With_lock (mu, None)
          | [] -> Other)
      | "lock" :: m :: _ when low m = "sched" -> (
          match nolabel args with mu :: _ -> Lock mu | [] -> Other)
      | "iter" :: _ -> (
          (* List.iter Sched.lock locks: bulk ordered acquisition *)
          match nolabel args with
          | f :: ms :: _ when sched_fn env f "lock" -> Lock ms
          | _ -> Call (comps, args))
      | _ -> Call (comps, args))

let label (file : Source.file) mu = file.stem ^ ":" ^ Resolve.label_of_expr mu

(* Keys a call site might refer to; missing keys resolve to nothing. *)
let callee_keys ~stem ~prefix comps =
  match List.rev comps with
  | [ f ] ->
      let local = prefix ^ f and top = stem ^ "." ^ f in
      if local = top then [ top ] else [ local; top ]
  | f :: m :: _ -> [ low m ^ "." ^ f ]
  | [] -> []

(* ---- pass A: per-function may-acquire summaries --------------------- *)

type summary = { mutable locks : string list; mutable callees : string list }

let scan_expr env file ~prefix (s : summary) expr0 =
  let open Ast_iterator in
  let expr it e =
    (match classify env e with
    | With_lock (mu, _) | Lock mu -> s.locks <- label file mu :: s.locks
    | Call (comps, _) ->
        s.callees <- callee_keys ~stem:file.Source.stem ~prefix comps @ s.callees
    | Other -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it expr0

let rec collect_structure env (file : Source.file) summaries prefix stru =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ }
                | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
                    Some txt
                | _ -> None
              in
              match name with
              | Some n ->
                  let s = { locks = []; callees = [] } in
                  scan_expr env file ~prefix s vb.pvb_expr;
                  Hashtbl.replace summaries (prefix ^ n) s
              | None -> ())
            vbs
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure sub ->
              collect_structure env file summaries (low name ^ ".") sub
          | _ -> ())
      | _ -> ())
    stru

let fixpoint summaries =
  let reach = Hashtbl.create 64 in
  (* The fixpoint's result is iteration-order independent, but walking a
     sorted key list keeps the pass deterministic by construction (and
     appeases its own determinism rule). *)
  let keys =
    Hashtbl.fold (fun k (s : summary) acc -> (k, s) :: acc) summaries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (k, (s : summary)) -> Hashtbl.replace reach k (SS.of_list s.locks)) keys;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (k, (s : summary)) ->
        let cur = Hashtbl.find reach k in
        let next =
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt reach c with
              | Some r -> SS.union acc r
              | None -> acc)
            cur s.callees
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace reach k next;
          changed := true
        end)
      keys
  done;
  reach

(* ---- pass B: held-stack walk emitting acquired-before edges --------- *)

let pass_b g reach diags (file : Source.file) =
  let env = Resolve.env_of_file file in
  let held = ref [] in
  let prefix = ref (file.stem ^ ".") in
  let acquire loc l =
    if List.mem l !held then
      diags :=
        Diag.v ~loc ~rule
          ~hint:"restructure so the inner section runs outside the lock, or split the mutex"
          "mutex %s acquired while already held (self-deadlock on a non-reentrant lock)" l
        :: !diags
    else List.iter (fun h -> add_edge g h l loc) !held;
    add_node g l
  in
  let open Ast_iterator in
  let expr it e =
    match classify env e with
    | With_lock (mu, thunk) ->
        let l = label file mu in
        acquire e.pexp_loc l;
        it.expr it mu;
        let saved = !held in
        if not (List.mem l !held) then held := l :: !held;
        Option.iter (it.expr it) thunk;
        held := saved
    | Lock mu ->
        let l = label file mu in
        acquire e.pexp_loc l;
        if not (List.mem l !held) then held := l :: !held
        (* stays held for the rest of the binding: Sched.unlock is not
           tracked, which only widens the graph (lockdep-conservative) *)
    | Call (comps, args) ->
        if !held <> [] then
          callee_keys ~stem:file.stem ~prefix:!prefix comps
          |> List.iter (fun k ->
                 match Hashtbl.find_opt reach k with
                 | Some r ->
                     SS.iter
                       (fun l ->
                         List.iter
                           (fun h -> if h <> l then add_edge g h l e.pexp_loc)
                           !held)
                       r
                 | None -> ());
        List.iter (fun (_, a) -> it.expr it a) args
    | Other -> default_iterator.expr it e
  in
  let structure_item it item =
    held := [];
    default_iterator.structure_item it item
  in
  let module_binding it mb =
    let saved = !prefix in
    (match mb.pmb_name.txt with Some n -> prefix := low n ^ "." | None -> ());
    default_iterator.module_binding it mb;
    prefix := saved
  in
  let it = { default_iterator with expr; structure_item; module_binding } in
  it.structure it file.impl

let build files =
  let files = List.filter (fun f -> not (out_of_scope f)) files in
  let summaries = Hashtbl.create 256 in
  List.iter
    (fun (f : Source.file) ->
      let env = Resolve.env_of_file f in
      collect_structure env f summaries (f.stem ^ ".") f.impl)
    files;
  let reach = fixpoint summaries in
  let g = new_graph () in
  let diags = ref [] in
  List.iter (pass_b g reach diags) files;
  (g, List.rev !diags)

(* ---- cycles (Tarjan SCC) -------------------------------------------- *)

let sccs g =
  let index = Hashtbl.create 32 and lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes g);
  !out

let cycle_diags g =
  sccs g
  |> List.filter_map (fun scc ->
         let cyclic =
           match scc with
           | [ v ] -> Hashtbl.mem g.adj (v, v)
           | _ :: _ :: _ -> true
           | [] -> false
         in
         if not cyclic then None
         else
           let members = List.sort compare scc in
           let witness =
             Hashtbl.fold
               (fun (a, b) loc acc ->
                 if List.mem a members && List.mem b members then ((a, b), loc) :: acc
                 else acc)
               g.adj []
             |> List.sort (fun (e1, _) (e2, _) -> compare e1 e2)
             |> function [] -> None | (_, loc) :: _ -> Some loc
           in
           let loc = Option.value witness ~default:Location.none in
           Some
             (Diag.v ~loc ~rule
                ~hint:
                  "pick one global acquisition order for these mutexes and restructure the \
                   out-of-order path"
                "lock-order cycle between {%s}: acquired-before holds in both directions \
                 (potential ABBA deadlock even if no explored schedule hits it)"
                (String.concat ", " members)))
  |> List.sort Diag.compare

let containment_diags g ~observed =
  List.filter_map
    (fun (a, b) ->
      if not (Hashtbl.mem g.nodes a) then
        Some
          (Diag.at ~file:"<runtime>" ~line:0 ~col:0 ~rule
             ~hint:"name the mutex after its dominant static lock site, or extend the analyzer"
             (Printf.sprintf "runtime lock %s observed but not modelled statically" a))
      else if not (Hashtbl.mem g.nodes b) then
        Some
          (Diag.at ~file:"<runtime>" ~line:0 ~col:0 ~rule
             ~hint:"name the mutex after its dominant static lock site, or extend the analyzer"
             (Printf.sprintf "runtime lock %s observed but not modelled statically" b))
      else if a <> b && not (reaches g a b) then
        Some
          (Diag.at ~file:"<runtime>" ~line:0 ~col:0 ~rule
             ~hint:"the static graph must over-approximate every observed nesting; add the \
                    missing call path or fix the mutex name"
             (Printf.sprintf "observed acquisition order %s -> %s is not implied by the static graph"
                a b))
      else None)
    observed
  |> List.sort_uniq Diag.compare

let check files =
  let g, d = build files in
  d @ cycle_diags g
