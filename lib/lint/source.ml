type kind = Impl | Intf

type file = {
  path : string;
  kind : kind;
  stem : string;
  impl : Parsetree.structure;
  intf : Parsetree.signature;
  line_count : int;
}

let normalise path =
  let p = String.map (fun c -> if c = '\\' then '/' else c) path in
  (* Strip leading ./ and ../ segments so paths are workspace-relative
     regardless of where the checker was launched (dune rules pass
     %{workspace_root}-prefixed roots like ../lib). *)
  let rec strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then strip (String.sub p 2 (String.length p - 2))
    else if String.length p > 3 && String.sub p 0 3 = "../" then
      strip (String.sub p 3 (String.length p - 3))
    else p
  in
  strip p

let stem_of path =
  String.lowercase_ascii (Filename.remove_extension (Filename.basename path))

let count_lines s =
  let n = ref (if String.length s = 0 then 0 else 1) in
  String.iter (fun c -> if c = '\n' then incr n) s;
  (* A trailing newline does not start a new line. *)
  if String.length s > 0 && s.[String.length s - 1] = '\n' then decr n;
  !n

let parse_string ~path text =
  let path = normalise path in
  let kind = if Filename.check_suffix path ".mli" then Intf else Impl in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match
    match kind with
    | Impl -> `Impl (Parse.implementation lexbuf)
    | Intf -> `Intf (Parse.interface lexbuf)
  with
  | `Impl impl ->
      Ok { path; kind; stem = stem_of path; impl; intf = []; line_count = count_lines text }
  | `Intf intf ->
      Ok { path; kind; stem = stem_of path; impl = []; intf; line_count = count_lines text }
  | exception exn ->
      let loc =
        match exn with
        | Syntaxerr.Error e -> Syntaxerr.location_of_error e
        | _ -> Location.in_file path
      in
      Error
        (Diag.v ~loc ~rule:"parse" ~hint:"fix the syntax error; srccheck cannot vet this file"
           "unparseable source (%s)"
           (match exn with Syntaxerr.Error _ -> "syntax error" | e -> Printexc.to_string e))

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~path text

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if is_source path then path :: acc
  else acc

let load_roots roots =
  (* Open files by their on-disk path; [parse_string] normalises the
     recorded path, so sort by the normalised form for stable order. *)
  let paths =
    List.fold_left collect [] roots
    |> List.sort (fun a b -> compare (normalise a) (normalise b))
  in
  List.fold_left
    (fun (files, diags) p ->
      match load_file p with Ok f -> (f :: files, diags) | Error d -> (files, d :: diags))
    ([], []) paths
  |> fun (files, diags) -> (List.rev files, List.rev diags)
