open Parsetree

let rule_id = "ownership"

type rule = { target : string; allowed : string list; why : string }

let rules =
  [
    {
      target = "Undo_journal";
      allowed =
        [ "lib/journal/"; "lib/core/txn.ml"; "lib/core/txn.mli"; "lib/core/layout.ml";
          "lib/baselines/basefs.ml"; "lib/baselines/basefs.mli"; "lib/race/scenarios.ml";
          "lib/fsck/" ];
      why = "undo journalling is a txn/layout-layer concern";
    };
    {
      target = "Redo_journal";
      allowed = [ "lib/journal/"; "lib/core/txn.ml"; "lib/core/txn.mli"; "lib/core/layout.ml";
                  "lib/baselines/basefs.ml"; "lib/baselines/basefs.mli" ];
      why = "redo journalling is a txn/layout-layer concern";
    };
    {
      target = "Dir_index";
      allowed = [ "lib/vfs/"; "lib/core/namespace.ml"; "lib/core/namespace.mli";
                  "lib/core/inode.ml"; "lib/core/inode.mli"; "lib/baselines/" ];
      why = "directory indexes belong to the namespace/inode layers";
    };
    {
      target = "Fd_table";
      allowed = [ "lib/vfs/"; "lib/core/fs.ml"; "lib/baselines/" ];
      why = "fd tables belong to the fs facade";
    };
    {
      target = "Fault";
      allowed =
        [ "lib/pmem/"; "lib/crashcheck/faultcheck.ml"; "lib/crashcheck/faultcheck.mli";
          "lib/crashcheck/torturecheck.ml"; "lib/crashcheck/torturecheck.mli" ];
      why = "media faults are injected only by the device layer and the faultcheck harness";
    };
    {
      target = "Crc32c";
      allowed = [ "lib/util/"; "lib/journal/"; "lib/core/codec.ml"; "lib/core/inode.ml" ];
      why = "checksums live in the codec/journal/inode metadata layers";
    };
  ]

let path_allowed path allowed =
  List.exists
    (fun a ->
      if String.length a > 0 && a.[String.length a - 1] = '/' then
        String.length path >= String.length a && String.sub path 0 (String.length a) = a
      else path = a)
    allowed

(* Call [f lid loc] on every Longident occurrence that can name a module
   member: expressions, patterns, types, module expressions/types (which
   also covers [open] and [module X = ...] aliases). *)
let iter_idents f file =
  let open Ast_iterator in
  let on d loc = f d loc in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident l | Pexp_construct (l, _) | Pexp_field (_, l) | Pexp_setfield (_, l, _)
    | Pexp_new l ->
        on l.txt l.loc
    | Pexp_record (fields, _) -> List.iter (fun (l, _) -> on l.Location.txt l.loc) fields
    | _ -> ());
    default_iterator.expr it e
  in
  let pat it (p : pattern) =
    (match p.ppat_desc with
    | Ppat_construct (l, _) | Ppat_type l -> on l.txt l.loc
    | Ppat_record (fields, _) -> List.iter (fun (l, _) -> on l.Location.txt l.loc) fields
    | _ -> ());
    default_iterator.pat it p
  in
  let typ it (t : core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr (l, _) | Ptyp_class (l, _) -> on l.txt l.loc
    | _ -> ());
    default_iterator.typ it t
  in
  let module_expr it (m : module_expr) =
    (match m.pmod_desc with Pmod_ident l -> on l.txt l.loc | _ -> ());
    default_iterator.module_expr it m
  in
  let module_type it (m : module_type) =
    (match m.pmty_desc with Pmty_ident l | Pmty_alias l -> on l.txt l.loc | _ -> ());
    default_iterator.module_type it m
  in
  let it = { default_iterator with expr; pat; typ; module_expr; module_type } in
  it.structure it file.Source.impl;
  it.signature it file.Source.intf

let check_file (f : Source.file) diags =
  let env = Resolve.env_of_file f in
  iter_idents
    (fun lid loc ->
      List.iter
        (fun r ->
          if Resolve.mentions env lid r.target && not (path_allowed f.path r.allowed) then
            diags :=
              Diag.v ~loc ~rule:rule_id
                ~hint:
                  (Printf.sprintf "%s; go through the owning layer's public API instead" r.why)
                "%s referenced outside its owning layers" r.target
            :: !diags)
        rules)
    f

let facade_check (f : Source.file) diags =
  if f.path = "lib/core/fs.ml" && f.line_count > 600 then
    diags :=
      Diag.at ~file:f.path ~line:f.line_count ~col:0 ~rule:rule_id
        ~hint:"fs.ml is a facade; move logic into namespace/datapath/inode modules"
        (Printf.sprintf "lib/core/fs.ml has %d lines (facade budget is 600)" f.line_count)
      :: !diags

let check files =
  let diags = ref [] in
  List.iter
    (fun f ->
      check_file f diags;
      facade_check f diags)
    files;
  List.sort_uniq Diag.compare !diags
