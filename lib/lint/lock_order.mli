(** Rule [lock-order]: build the acquired-before graph of
    [Sched.lock]/[Sched.with_lock] sites and reject cycles.

    Nodes are {e mutex-naming sites}: the syntactic path of the mutex
    expression qualified by the defining module
    ([basefs:parent.lock], [txn:s.lock]).  Edges come from two sources:

    - {b lexical nesting} — a [with_lock B] inside the thunk of a
      [with_lock A] yields [A -> B];
    - {b call summaries} — a call to a function [g] while holding [A]
      yields [A -> L] for every lock label [L] that [g] can acquire,
      computed as a fixpoint over the intra-repo call graph (so
      [Txn.with_txn] inside a [with_lock f.lock] thunk contributes
      [f.lock -> txn:s.lock] even though the acquisition is in another
      file).

    A cycle in this graph is a potential ABBA deadlock even when no
    explored schedule triggers it — the lockdep argument: two phases that
    never overlap today can be made to overlap by any future change.
    The runtime recorder ({!Repro_sched.Sched.Lock_order}) provides the
    observed counterpart; {!containment} checks static ⊇ observed. *)

type graph

val build : Source.file list -> graph * Diag.t list
(** The acquired-before graph over all implementation files, plus
    immediate diagnostics (same-label self-nesting, i.e. re-acquiring a
    label already held — self-deadlock on these non-reentrant mutexes). *)

val nodes : graph -> string list
val edges : graph -> (string * string) list

val reaches : graph -> string -> string -> bool
(** Transitive reachability (a lock ordered before another, possibly
    through intermediates). *)

val cycle_diags : graph -> Diag.t list
(** One diagnostic per strongly-connected component with a cycle, naming
    every label on the cycle and a witness acquisition site. *)

val containment_diags : graph -> observed:(string * string) list -> Diag.t list
(** Cross-check against runtime-observed acquired-before edges between
    {e named} mutexes: every observed edge must already be implied by the
    static graph ([reaches]), and both endpoints must be known static
    labels — otherwise the static analysis is blind to real lock nesting
    (or mutex names drifted from the code), which is reported. *)

val check : Source.file list -> Diag.t list
(** The rule entry point: [build] + self-nesting + [cycle_diags]. *)
