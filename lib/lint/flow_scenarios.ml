(* Paired static/dynamic crash-consistency scenarios.

   Each scenario is the same PM store/flush/fence/commit sequence twice:
   once as OCaml source text (what {!Flowcheck} analyzes) and once as a
   runnable closure against a real device with the durability sanitizer
   attached (what the dynamic rules see).  The pairing carries the
   containment obligation static ⊇ dynamic — anything the sanitizer
   catches on the executed path, the dataflow must catch on the tree —
   and documents the inclusion being strict: [hidden_error_path] is the
   planted branch-only bug the dynamic run (which takes the healthy
   branch) cannot see but every-path analysis must. *)

module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sanitizer = Repro_sanitizer.Sanitizer
open Repro_util

type t = {
  name : string;
  description : string;
  source : string;  (** the sequence as source text, for {!Flowcheck} *)
  run : unit -> Sanitizer.diag list;  (** the sequence executed under the sanitizer *)
  expect_static : bool;  (** flowcheck must flag the source *)
  expect_dynamic : bool;  (** the sanitizer must flag the execution *)
}

let cpu = Cpu.make ~id:0 ()
let site = Site.v "flow" "scenario"

let with_dev f =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let (), ds = Sanitizer.with_device dev (fun _ -> f dev) in
  ds

let store ?(nt = false) dev ~off =
  let src = Bytes.make 64 'x' in
  Device.with_site dev site (fun () ->
      if nt then Device.write_nt dev cpu ~off ~src ~src_off:0 ~len:64
      else Device.write dev cpu ~off ~src ~src_off:0 ~len:64)

let flush dev ~off ~len = Device.with_site dev site (fun () -> Device.flush dev cpu ~off ~len)
let fence dev = Device.with_site dev site (fun () -> Device.fence dev cpu)
let persist dev ~off ~len = Device.with_site dev site (fun () -> Device.persist dev cpu ~off ~len)

let commit_dirty_line =
  {
    name = "commit-dirty-line";
    description = "store then commit with no flush at all (dynamic R1 class)";
    source =
      {|
let scenario dev cpu src =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);
  Device.annotate dev (Txn_commit { txn = 1 })
|};
    run =
      (fun () ->
        with_dev (fun dev ->
            Device.annotate dev (Txn_begin { txn = 1 });
            Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
            store dev ~off:0;
            Device.annotate dev (Txn_commit { txn = 1 })));
    expect_static = true;
    expect_dynamic = true;
  }

let flush_no_fence_commit =
  {
    name = "flush-no-fence-commit";
    description = "flushed but never fenced before the commit record (dynamic R5 class)";
    source =
      {|
let scenario dev cpu src =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);
  Device.flush dev cpu ~off:0 ~len:64;
  Device.annotate dev (Txn_commit { txn = 1 })
|};
    run =
      (fun () ->
        with_dev (fun dev ->
            Device.annotate dev (Txn_begin { txn = 1 });
            Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
            store dev ~off:0;
            flush dev ~off:0 ~len:64;
            Device.annotate dev (Txn_commit { txn = 1 })));
    expect_static = true;
    expect_dynamic = true;
  }

let try_swallows_fence =
  {
    name = "try-swallows-fence";
    description =
      "the fence sits after a raising call inside try, and the handler swallows \
       (dynamic R2 class: flushed line never fenced before unmount)";
    source =
      {|
let scenario dev cpu src risky =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);
  Device.flush dev cpu ~off:0 ~len:64;
  try
    risky ();
    Device.fence dev cpu
  with _ -> ()
|};
    run =
      (fun () ->
        let risky () = if Sys.opaque_identity true then failwith "risky" in
        with_dev (fun dev ->
            store dev ~off:0;
            flush dev ~off:0 ~len:64;
            try
              risky ();
              fence dev
            with _ -> ()));
    expect_static = true;
    expect_dynamic = true;
  }

let hidden_error_path =
  {
    name = "hidden-error-path";
    description =
      "the fence is skipped only on the degraded branch; the run takes the healthy \
       branch, so the sanitizer sees a clean sequence — only every-path analysis \
       reaches the bug";
    source =
      {|
let scenario dev cpu src degraded =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);
  Device.flush dev cpu ~off:0 ~len:64;
  if degraded then () else Device.fence dev cpu;
  Device.annotate dev (Txn_commit { txn = 1 })
|};
    run =
      (fun () ->
        let degraded = false in
        with_dev (fun dev ->
            Device.annotate dev (Txn_begin { txn = 1 });
            Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
            store dev ~off:0;
            flush dev ~off:0 ~len:64;
            if degraded then () else fence dev;
            Device.annotate dev (Txn_commit { txn = 1 })));
    expect_static = true;
    expect_dynamic = false;
  }

let clean_merge =
  {
    name = "clean-merge";
    description = "both branches persist before the commit; the merge is uniformly durable";
    source =
      {|
let scenario dev cpu src small =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);
  if small then Device.persist dev cpu ~off:0 ~len:64
  else begin
    Device.flush dev cpu ~off:0 ~len:64;
    Device.fence dev cpu
  end;
  Device.annotate dev (Txn_commit { txn = 1 })
|};
    run =
      (fun () ->
        with_dev (fun dev ->
            Device.annotate dev (Txn_begin { txn = 1 });
            Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
            store dev ~off:0;
            persist dev ~off:0 ~len:64;
            Device.annotate dev (Txn_commit { txn = 1 })));
    expect_static = false;
    expect_dynamic = false;
  }

let deferred_nt_batch =
  {
    name = "deferred-nt-batch";
    description =
      "two non-temporal stores drained by one trailing fence — the batching idiom \
       must stay clean on both sides";
    source =
      {|
let scenario dev cpu src =
  Device.with_site dev site (fun () ->
      Device.write_nt dev cpu ~off:0 ~src ~src_off:0 ~len:64;
      Device.write_nt dev cpu ~off:64 ~src ~src_off:0 ~len:64);
  Device.fence dev cpu
|};
    run =
      (fun () ->
        with_dev (fun dev ->
            store ~nt:true dev ~off:0;
            store ~nt:true dev ~off:64;
            fence dev));
    expect_static = false;
    expect_dynamic = false;
  }

let all =
  [
    commit_dirty_line;
    flush_no_fence_commit;
    try_swallows_fence;
    hidden_error_path;
    clean_merge;
    deferred_nt_batch;
  ]

(* The scenario sources pose as a core implementation file so they land
   inside flowcheck's scope. *)
let static_path = "lib/core/flow_scenario.ml"

let static_diags sc =
  match Source.parse_string ~path:static_path sc.source with
  | Error d -> [ d ]
  | Ok f -> List.filter (fun (d : Diag.t) -> d.rule = Flowcheck.rule) (Flowcheck.check [ f ])

let dynamic_errors sc =
  List.filter
    (fun (d : Sanitizer.diag) ->
      match d.severity with Sanitizer.Error -> true | Sanitizer.Warning -> false)
    (sc.run ())
