(** Rule [persist-site]: every persistence-effecting device call
    ([Device.write]/[write_nt]/[memset]/[copy_within]/[write_u64]/
    [flush]/[fence]/[persist] and variants) outside [lib/pmem/] must be
    lexically inside the thunk of a [Device.with_site] annotation.

    The sanitizer ({!Repro_sanitizer}) and faultcheck both attribute
    their findings to the ambient {!Repro_pmem.Site} — an unannotated
    store surfaces as ["unknown:unknown"] in reports, which makes
    durability bugs unattributable.  This rule turns the labelling
    convention into an invariant. *)

val triggers : string list
(** The [Device] function names that count as persistence-effecting. *)

val check : Source.file list -> Diag.t list
