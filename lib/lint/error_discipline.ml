open Parsetree

let rule = "error-discipline"

let scope_dirs =
  [ "lib/core/"; "lib/journal/"; "lib/baselines/"; "lib/aging/"; "lib/workloads/";
    "lib/race/"; "lib/experiments/" ]

let in_scope (f : Source.file) =
  f.kind = Source.Impl
  && List.exists
       (fun d -> String.length f.path >= String.length d && String.sub f.path 0 (String.length d) = d)
       scope_dirs

let contains_raise body =
  let found = ref false in
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match List.rev (Longident.flatten txt) with
        | ("raise" | "raise_notrace" | "reraise") :: _ -> found := true
        | _ -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  !found

let is_types_error env lid =
  match List.rev (Resolve.resolve env lid) with
  | "Error" :: rest -> List.exists (fun c -> c = "Types") rest
  | _ -> false

(* errno component discriminated = a constructor (possibly or-patterns of
   constructors), not a wildcard/variable. *)
let rec errno_discriminated (p : pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> false
  | Ppat_or (a, b) -> errno_discriminated a && errno_discriminated b
  | Ppat_alias (inner, _) -> errno_discriminated inner
  | _ -> true

let rec check_exc_pattern env diags (p : pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ ->
      diags :=
        Diag.v ~loc:p.ppat_loc ~rule
          ~hint:
            "match the specific exceptions this operation can raise and re-raise the rest; a \
             wildcard here eats Media_error (EIO) and EROFS"
          "catch-all exception handler"
        :: !diags
  | Ppat_or (a, b) ->
      check_exc_pattern env diags a;
      check_exc_pattern env diags b
  | Ppat_alias (inner, _) -> check_exc_pattern env diags inner
  | Ppat_construct (lid, payload) when is_types_error env lid.txt ->
      let undiscriminated =
        match payload with
        | None -> true
        | Some (_, pay) -> (
            match pay.ppat_desc with
            | Ppat_any | Ppat_var _ -> true
            | Ppat_tuple (errno :: _) -> not (errno_discriminated errno)
            | _ -> false)
      in
      if undiscriminated then
        diags :=
          Diag.v ~loc:p.ppat_loc ~rule
            ~hint:
              "narrow to the errnos this path expects, e.g. Types.Error ((ENOENT | ENOTDIR), \
               _); an unqualified handler also swallows EIO/EROFS"
            "Types.Error handler does not discriminate errnos"
          :: !diags
  | _ -> ()

let check_case env diags (c : case) =
  if c.pc_guard = None && not (contains_raise c.pc_rhs) then
    check_exc_pattern env diags c.pc_lhs

let check_file (f : Source.file) diags =
  let env = Resolve.env_of_file f in
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_try (_, cases) -> List.iter (check_case env diags) cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p -> check_case env diags { c with pc_lhs = p }
            | _ -> ())
          cases
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = ign; _ }; _ }, [ (Asttypes.Nolabel, arg) ])
      when (match List.rev (Longident.flatten ign) with "ignore" :: _ -> true | _ -> false) -> (
        match Resolve.calls env arg with
        | Some (comps, _) when (match List.rev comps with "check_invariants" :: _ -> true | _ -> false) ->
            diags :=
              Diag.v ~loc:e.pexp_loc ~rule
                ~hint:"match on the result and fail (or log) on Error — ignoring it defeats the check"
                "result of check_invariants is ignored"
              :: !diags
        | _ -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.structure it f.impl

let check files =
  let diags = ref [] in
  List.iter (fun f -> if in_scope f then check_file f diags) files;
  List.sort Diag.compare !diags
