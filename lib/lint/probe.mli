(** Dynamic cross-check of the static lock-order graph.

    Replays the race-detector scenarios (one deterministic
    earliest-clock schedule each) plus a small two-thread PMFS-baseline
    workload, with the {!Repro_sched.Sched.Lock_order} recorder capturing
    the {e observed} acquired-before relation.  Soundness obligation:
    static graph ⊇ observed graph —

    - an observed cycle is reported outright (a deadlock the schedule
      explorer merely has not triggered yet);
    - an observed edge between {e named} mutexes that the static graph
      does not imply means the analyzer (or a mutex name) is out of date,
      also reported.

    Only explicitly-named mutexes participate (the convention is
    "name = dominant static lock-site label", e.g. ["undo_journal:t.mu"]);
    per-object locks (file/inode) stay anonymous, because many runtime
    instances share one syntactic site and hierarchical same-class
    nesting would read as a false self-cycle. *)

type result = {
  observed_edges : (string * string) list;  (** named-mutex acquired-before pairs *)
  runtime_cycle : string list option;
  acquisitions : int;  (** total lock acquisitions recorded *)
  diags : Diag.t list;
}

val run : Source.file list -> result

type flow_result = {
  flow_scenarios : (string * bool * bool) list;
      (** (scenario, flowcheck flagged, sanitizer errored) per {!Flow_scenarios.all} *)
  flow_diags : Diag.t list;
}

val run_flow : unit -> flow_result
(** Replay every {!Flow_scenarios} pair, checking containment (a dynamic
    error on the executed path implies a static diagnostic) and each
    scenario's recorded static/dynamic expectations.  [flow_diags] is
    empty when the obligation holds. *)
