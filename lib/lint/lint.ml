type allow = { a_rule : string; a_file : string; a_reason : string }

type report = {
  diags : Diag.t list;
  suppressed : int;
  files_scanned : int;
  parse_errors : int;
}

let rules =
  [
    ("lock-order", Lock_order.check);
    ("persist-site", Persist_sites.check);
    ("ownership", Ownership.check);
    ("error-discipline", Error_discipline.check);
  ]

let default_allowlist = []

let run ?(allowlist = default_allowlist) files ~parse =
  let raw = List.concat_map (fun (_, checker) -> checker files) rules in
  let suppressed, kept =
    List.partition
      (fun (d : Diag.t) ->
        List.exists (fun a -> a.a_rule = d.rule && a.a_file = d.file) allowlist)
      raw
  in
  {
    diags = List.sort Diag.compare (parse @ kept);
    suppressed = List.length suppressed;
    files_scanned = List.length files;
    parse_errors = List.length parse;
  }

let analyze ?allowlist roots =
  let files, parse = Source.load_roots roots in
  run ?allowlist files ~parse

let analyze_string ~path text =
  match Source.parse_string ~path text with
  | Error d -> [ d ]
  | Ok f -> (run [ f ] ~parse:[]).diags

let exit_code r = if r.parse_errors > 0 then 2 else if r.diags <> [] then 1 else 0
