type allow = { a_rule : string; a_file : string; a_reason : string }

type report = {
  diags : Diag.t list;
  suppressed : int;
  files_scanned : int;
  parse_errors : int;
}

let rules =
  [
    ("lock-order", Lock_order.check);
    ("persist-site", Persist_sites.check);
    ("ownership", Ownership.check);
    ("error-discipline", Error_discipline.check);
    ("persist-order", Flowcheck.check);
    ("determinism", Determinism.check);
  ]

let flow_rules = [ "persist-order"; "determinism" ]

let default_allowlist =
  [
    {
      a_rule = "determinism";
      a_file = "bin/agectl.ml";
      a_reason =
        "operator-facing wall-clock progress line on long aging runs; the elapsed time is \
         printed, never recorded in a result or compared by a test";
    };
  ]

let run ?(allowlist = default_allowlist) ?only files ~parse =
  let selected =
    match only with
    | None -> rules
    | Some ids -> List.filter (fun (id, _) -> List.mem id ids) rules
  in
  let raw = List.concat_map (fun (_, checker) -> checker files) selected in
  let suppressed, kept =
    List.partition
      (fun (d : Diag.t) ->
        List.exists (fun a -> a.a_rule = d.rule && a.a_file = d.file) allowlist)
      raw
  in
  {
    diags = Diag.normalize (parse @ kept);
    suppressed = List.length suppressed;
    files_scanned = List.length files;
    parse_errors = List.length parse;
  }

let analyze ?allowlist ?only roots =
  let files, parse = Source.load_roots roots in
  run ?allowlist ?only files ~parse

let analyze_string ?only ~path text =
  match Source.parse_string ~path text with
  | Error d -> [ d ]
  | Ok f -> (run ?only [ f ] ~parse:[]).diags

let report_to_json r =
  let open Repro_stats.Json in
  Obj
    [
      ("files_scanned", Int r.files_scanned);
      ("parse_errors", Int r.parse_errors);
      ("suppressed", Int r.suppressed);
      ("diags", List (List.map Diag.to_json r.diags));
    ]

let exit_code r = if r.parse_errors > 0 then 2 else if r.diags <> [] then 1 else 0
