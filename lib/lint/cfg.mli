(** Forward dataflow over OCaml parse trees.

    Structured syntax doubles as the control-flow graph: each construct's
    evaluation rule walks the corresponding CFG edges — branch and merge
    for [if]/[match], exceptional edges into [try] handlers, a
    join-until-fixpoint back-edge for loops — threading a client abstract
    state forward.  The client supplies the domain (join/equal) and the
    only two transfer functions the sources need beyond control flow:
    function application and mutable-field assignment.

    Exceptional flow: every client-flagged raise point contributes its
    state to the nearest enclosing [try]'s handler entry (joined); a
    handler is assumed to catch everything its body raises.  An outcome
    edge that is [None] is unreachable and kills the continuation. *)

type 'st outcome = {
  normal : 'st option;  (** state on the fall-through edge *)
  exc : 'st option;  (** join of states at raise points inside *)
}

type 'st hooks = {
  join : kind:string -> loc:Location.t -> 'st -> 'st -> 'st;
  equal : 'st -> 'st -> bool;
  apply :
    eval:('st -> Parsetree.expression -> 'st outcome) ->
    'st ->
    Parsetree.expression ->
    'st outcome option;
  setfield : 'st -> Longident.t -> 'st option;
}

val unreachable : 'st outcome
(** Both edges dead. *)

val join_outcome :
  'st hooks -> kind:string -> loc:Location.t -> 'st outcome -> 'st outcome -> 'st outcome

val eval : 'st hooks -> 'st -> Parsetree.expression -> 'st outcome
(** Run the analysis over one expression from an entry state. *)
