(* Planted-corruption scenarios for winefs_fsck: each one damages a real
   image in a precisely-known way (raw slot surgery, a crash image, a
   poisoned line), runs fsck, and checks the repair is exactly the
   intended one — then that a second fsck finds nothing (convergence)
   and the image remounts writable.  Backs `pmcheck fsckcheck`. *)

open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Types = Repro_vfs.Types
module Fs = Winefs.Fs
module Layout = Winefs.Layout
module Codec = Winefs.Codec

type outcome = { s_name : string; ok : bool; detail : string }

let site_surgery = Site.v "fsck" "scenario-surgery"

(* Tiny tree signature: sorted (path, kind, size) of every object. *)
let rec tree_sig fs cpu path acc =
  List.fold_left
    (fun acc name ->
      let child = Repro_vfs.Path.concat path name in
      let st = Fs.stat fs cpu child in
      match st.Types.st_kind with
      | Types.Directory -> tree_sig fs cpu child ((child, "dir", 0) :: acc)
      | Types.Regular -> (child, "file", st.st_size) :: acc)
    acc (Fs.readdir fs cpu path)

let signature fs cpu = List.sort compare (tree_sig fs cpu "/" [])

let fresh ~device_size =
  let dev = Device.create ~cost:Device.Cost.free ~size:device_size () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:256 () in
  let fs = Fs.format dev cfg in
  (dev, cfg, fs)

let layout_of dev (cfg : Types.config) =
  Layout.compute ~size:(Device.size dev) ~cpus:cfg.cpus ~inodes_per_cpu:cfg.inodes_per_cpu

(* Raw repair-bench writes used to plant corruption. *)
let surgery_write dev cpu ~off b =
  Device.with_site dev site_surgery (fun () ->
      Device.write dev cpu ~off ~src:b ~src_off:0 ~len:(Bytes.length b);
      Device.persist dev cpu ~off ~len:(Bytes.length b))

let has_rule (r : Fsck.report) rule = List.exists (fun f -> f.Fsck.rule = rule) r.findings

let fail s_name fmt = Printf.ksprintf (fun detail -> { s_name; ok = false; detail }) fmt
let pass s_name detail = { s_name; ok = true; detail }

(* Remount must be writable and pass a probe mutation; returns an error
   string on failure. *)
let writable_remount dev cfg cpu =
  match Fs.mount dev cfg with
  | exception e ->
      Error
        (Printf.sprintf "remount raised %s\n%s" (Printexc.to_string e)
           (Printexc.get_backtrace ()))
  | fs ->
      if Fs.read_only fs then Error "remount is degraded (read-only)"
      else begin
        let fd = Fs.create fs cpu "/__fsck_probe" in
        let _ = Fs.pwrite fs cpu fd ~off:0 ~src:"probe" in
        Fs.close fs cpu fd;
        Fs.unlink fs cpu "/__fsck_probe";
        Ok fs
      end

(* 1. A cleanly-unmounted image: fsck finds nothing, repair mode writes
   nothing, and two check runs render byte-identical reports. *)
let clean_image ~device_size =
  let name = "clean-image" in
  let cpu = Cpu.make ~id:0 () in
  let dev, cfg, fs = fresh ~device_size in
  Fs.mkdir fs cpu "/d";
  let fd = Fs.create fs cpu "/d/a" in
  let _ = Fs.pwrite fs cpu fd ~off:0 ~src:(String.make 5000 'a') in
  Fs.close fs cpu fd;
  let fd = Fs.create fs cpu "/b" in
  let _ = Fs.append fs cpu fd ~src:"clean image" in
  Fs.close fs cpu fd;
  let expect = signature fs cpu in
  Fs.unmount fs cpu;
  let r1 = Fsck.run ~repair:false dev in
  let r2 = Fsck.run ~repair:false dev in
  if not r1.Fsck.clean then fail name "check found %d findings on a clean image" (List.length r1.findings)
  else if Fsck.to_string r1 <> Fsck.to_string r2 then fail name "check report is not byte-stable"
  else
    let before = Bytes.create 4096 in
    Device.peek dev ~off:0 ~len:4096 ~dst:before ~dst_off:0;
    let r3 = Fsck.run ~repair:true dev in
    let after = Bytes.create 4096 in
    Device.peek dev ~off:0 ~len:4096 ~dst:after ~dst_off:0;
    if not r3.Fsck.clean then fail name "repair found findings on a clean image"
    else if before <> after then fail name "repair mode wrote to a clean image"
    else
      match writable_remount dev cfg cpu with
      | Error e -> fail name "%s" e
      | Ok fs2 ->
          if signature fs2 cpu <> expect then
            fail name "tree changed across fsck"
          else pass name "clean, byte-stable, no-op repair"

(* Build the double-alloc image: /a and /b one block each, then /b's
   first extent slot repointed at /a's block. *)
let plant_double_alloc ~device_size =
  let cpu = Cpu.make ~id:0 () in
  let dev, cfg, fs = fresh ~device_size in
  let write path src =
    let fd = Fs.create fs cpu path in
    let _ = Fs.pwrite fs cpu fd ~off:0 ~src in
    Fs.close fs cpu fd
  in
  write "/a" (String.make 4096 'A');
  write "/b" (String.make 4096 'B');
  let phys_a = match Fs.file_extents fs cpu "/a" with (_, p, _) :: _ -> p | [] -> 0 in
  let ino_b = (Fs.stat fs cpu "/b").Types.st_ino in
  Fs.unmount fs cpu;
  let layout = layout_of dev cfg in
  let slot_off = Layout.inode_off layout ino_b + Codec.Inode.extent_slot_off 0 in
  let b = Bytes.create Codec.Inode.extent_bytes in
  Device.peek dev ~off:slot_off ~len:Codec.Inode.extent_bytes ~dst:b ~dst_off:0;
  let file_off, _, len_field = Codec.Inode.decode_extent b in
  surgery_write dev cpu ~off:slot_off (Codec.Inode.encode_extent ~file_off ~phys:phys_a ~len:len_field);
  (dev, cfg, cpu)

(* 2. Double-allocated extent: the later claimer is cloned onto fresh
   space; both files stay readable and a second fsck is clean. *)
let double_alloc ~device_size =
  let name = "double-alloc" in
  let dev, cfg, cpu = plant_double_alloc ~device_size in
  let dev2, _, _ = plant_double_alloc ~device_size in
  let chk = Fsck.run ~repair:false dev in
  let chk2 = Fsck.run ~repair:false dev2 in
  if Fsck.to_string chk <> Fsck.to_string chk2 then
    fail name "identical plantings produced different reports"
  else if not (has_rule chk "extent-double-alloc") then
    fail name "check did not flag the double allocation"
  else
    let rep = Fsck.run ~repair:true dev in
    if not (has_rule rep "extent-double-alloc") then fail name "repair did not flag it"
    else
      match writable_remount dev cfg cpu with
      | Error e -> fail name "%s" e
      | Ok fs2 -> (
          let read path =
            let fd = Fs.openf fs2 cpu path Types.o_rdonly in
            let s = Fs.pread fs2 cpu fd ~off:0 ~len:4096 in
            Fs.close fs2 cpu fd;
            s
          in
          match (read "/a", read "/b") with
          | exception e -> fail name "post-repair read raised %s" (Printexc.to_string e)
          | a, b ->
              if a <> String.make 4096 'A' then fail name "/a content damaged by repair"
              else if b <> String.make 4096 'A' then
                fail name "/b was not cloned from the shared block"
              else begin
                Fs.unmount fs2 cpu;
                let again = Fsck.run ~repair:false dev in
                if not again.Fsck.clean then
                  fail name "second fsck still finds problems: %s" (Fsck.to_string again)
                else pass name "cloned, both files readable, converged"
              end)

(* 3. Orphaned file: the dentry is zeroed but the inode stays live, as a
   crash between the two halves of unlink would leave it.  fsck must
   reattach it under /lost+found with its content intact. *)
let orphan ~device_size =
  let name = "orphan" in
  let cpu = Cpu.make ~id:0 () in
  let dev, cfg, fs = fresh ~device_size in
  Fs.mkdir fs cpu "/d";
  let content = "hello orphan, content must survive reattachment" in
  let fd = Fs.create fs cpu "/d/f" in
  let _ = Fs.pwrite fs cpu fd ~off:0 ~src:content in
  Fs.close fs cpu fd;
  let f_ino = (Fs.stat fs cpu "/d/f").Types.st_ino in
  let d_ino = (Fs.stat fs cpu "/d").Types.st_ino in
  Fs.unmount fs cpu;
  let layout = layout_of dev cfg in
  (* Find /d's dentry block, then the slot naming f_ino, and zero it. *)
  let b = Bytes.create Codec.Inode.extent_bytes in
  Device.peek dev
    ~off:(Layout.inode_off layout d_ino + Codec.Inode.extent_slot_off 0)
    ~len:Codec.Inode.extent_bytes ~dst:b ~dst_off:0;
  let _, blk, _ = Codec.Inode.decode_extent b in
  let zeroed = ref false in
  let slot = Bytes.create Codec.dentry_bytes in
  for k = 0 to (Units.base_page / Codec.dentry_bytes) - 1 do
    if not !zeroed then begin
      Device.peek dev ~off:(blk + (k * Codec.dentry_bytes)) ~len:Codec.dentry_bytes ~dst:slot
        ~dst_off:0;
      match Codec.Dentry.decode slot with
      | Some d when d.Codec.Dentry.ino = f_ino ->
          surgery_write dev cpu ~off:(blk + (k * Codec.dentry_bytes)) Codec.Dentry.free_slot;
          zeroed := true
      | _ -> ()
    end
  done;
  if not !zeroed then fail name "could not locate the dentry to zero"
  else
    let rep = Fsck.run ~repair:true dev in
    if rep.Fsck.orphans_reattached <> 1 then
      fail name "expected 1 orphan reattached, got %d" rep.orphans_reattached
    else if not (has_rule rep "orphan") then fail name "no orphan finding recorded"
    else
      match writable_remount dev cfg cpu with
      | Error e -> fail name "%s" e
      | Ok fs2 -> (
          let lf_path = Printf.sprintf "/lost+found/ino_%d" f_ino in
          match Fs.openf fs2 cpu lf_path Types.o_rdonly with
          | exception e -> fail name "open %s raised %s" lf_path (Printexc.to_string e)
          | fd ->
              let s = Fs.pread fs2 cpu fd ~off:0 ~len:(String.length content) in
              Fs.close fs2 cpu fd;
              if s <> content then fail name "reattached file content damaged"
              else begin
                Fs.unmount fs2 cpu;
                let again = Fsck.run ~repair:false dev in
                if not again.Fsck.clean then fail name "second fsck still finds problems"
                else pass name (Printf.sprintf "reattached as %s, content intact" lf_path)
              end)

(* 4. Unfinished journal transaction: crash at an early fence of an
   operation with every store persisted.  Check mode must report the
   pending transaction; repair mode rolls it back and the image then
   remounts writable. *)
let journal_pending ~device_size =
  let name = "journal-pending" in
  let cpu = Cpu.make ~id:0 () in
  let result = ref None in
  let fence = ref 1 in
  while !result = None && !fence <= 8 do
    let dev, cfg, fs = fresh ~device_size in
    Fs.mkdir fs cpu "/d";
    let fd = Fs.create fs cpu "/d/x" in
    let _ = Fs.pwrite fs cpu fd ~off:0 ~src:"payload" in
    Fs.close fs cpu fd;
    Device.set_tracking dev true;
    Device.reset_fence_seq dev;
    let target = !fence in
    Device.set_fence_hook dev
      (Some (fun seq -> if seq = target then raise Exit));
    (match Fs.rename fs cpu ~old_path:"/d/x" ~new_path:"/d/y" with
    | () -> result := Some (fail name "rename finished before fence %d" target)
    | exception Exit ->
        Device.set_fence_hook dev None;
        let img = Device.crash_image dev ~persisted:(fun _ -> true) in
        let chk = Fsck.run ~repair:false img in
        if has_rule chk "journal-pending" then begin
          let rep = Fsck.run ~repair:true img in
          if not (has_rule rep "journal-pending") then
            result := Some (fail name "repair run lost the pending-journal finding")
          else
            match writable_remount img cfg cpu with
            | Error e -> result := Some (fail name "%s" e)
            | Ok fs2 ->
                Fs.unmount fs2 cpu;
                let again = Fsck.run ~repair:false img in
                if not again.Fsck.clean then
                  result := Some (fail name "second fsck still finds problems")
                else
                  result :=
                    Some
                      (pass name
                         (Printf.sprintf "pending txn at fence %d rolled back" target))
        end);
    incr fence
  done;
  match !result with
  | Some o -> o
  | None -> fail name "no fence in the first 8 left a pending transaction"

(* 5. The degraded-unmount dead end: a poisoned inode header degrades the
   mount to read-only, and unmounting a degraded mount is a no-op — the
   image used to stay unhealable.  fsck --repair must clear the poisoned
   record and make the image mount writable again. *)
let degraded_remount ~device_size =
  let name = "degraded-remount" in
  let cpu = Cpu.make ~id:0 () in
  let dev, cfg, fs = fresh ~device_size in
  let fd = Fs.create fs cpu "/keep" in
  let _ = Fs.pwrite fs cpu fd ~off:0 ~src:"survivor" in
  Fs.close fs cpu fd;
  let fd = Fs.create fs cpu "/victim" in
  let _ = Fs.pwrite fs cpu fd ~off:0 ~src:"poisoned inode" in
  Fs.close fs cpu fd;
  let v_ino = (Fs.stat fs cpu "/victim").Types.st_ino in
  Fs.unmount fs cpu;
  let layout = layout_of dev cfg in
  Device.inject dev (Device.Poison_line { off = Layout.inode_off layout v_ino });
  let fs1 = Fs.mount dev cfg in
  if not (Fs.read_only fs1) then fail name "poisoned header did not degrade the mount"
  else begin
    Fs.unmount fs1 cpu (* degraded unmount: a no-op — the dead end *);
    let rep = Fsck.run ~repair:true dev in
    if not (has_rule rep "inode-media") then fail name "fsck did not flag the poisoned record"
    else
      match writable_remount dev cfg cpu with
      | Error e -> fail name "%s" e
      | Ok fs2 ->
          if Fs.exists fs2 cpu "/victim" then fail name "unreadable inode was kept"
          else
            let fd = Fs.openf fs2 cpu "/keep" Types.o_rdonly in
            let s = Fs.pread fs2 cpu fd ~off:0 ~len:8 in
            Fs.close fs2 cpu fd;
            if s <> "survivor" then fail name "surviving file damaged"
            else begin
              Fs.unmount fs2 cpu;
              let again = Fsck.run ~repair:false dev in
              if not again.Fsck.clean then fail name "second fsck still finds problems"
              else pass name "degraded image healed; writable remount"
            end
  end

let run ?(device_size = 48 * Units.mib) () =
  Printexc.record_backtrace true;
  [
    clean_image ~device_size;
    double_alloc ~device_size;
    orphan ~device_size;
    journal_pending ~device_size;
    degraded_remount ~device_size;
  ]
