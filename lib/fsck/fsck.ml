(** Offline multi-phase checker/repairer (see fsck.mli for the phase
    walkthrough).  All device mutation is funneled through the pm_*
    helpers, and — apart from superblock repair, journal rollback and
    clone data copies, which must precede the phases that re-read the
    affected bytes — happens in phase 6 from the rebuilt in-memory
    picture, so a check run writes nothing and a repair run on a clean
    image is a byte-identical no-op. *)

open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Types = Repro_vfs.Types
module Layout = Winefs.Layout
module Codec = Winefs.Codec
module Journal = Repro_journal.Undo_journal
module Extent_tree = Repro_rbtree.Extent_tree
module Stats = Repro_stats.Stats
module Json = Repro_stats.Json

let block = Units.base_page
let root_ino = 1

type severity = Note | Repair | Fatal

type finding = {
  phase : int;
  rule : string;
  obj : string;
  detail : string;
  action : string;
  severity : severity;
}

type report = {
  repair : bool;
  clean : bool;
  fatal : bool;
  findings : finding list;
  repairs : int;
  notes : int;
  orphans_reattached : int;
  phase_ns : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* In-memory picture of one on-PM inode, rebuilt by phase 3 and        *)
(* reconciled by phases 4-5.  [x_read_phys] keeps the original extent  *)
(* address after a clone-and-reassign so later phases read bytes that  *)
(* exist in both check and repair mode.                                *)

type xrec = {
  x_file_off : int;
  mutable x_phys : int;
  x_read_phys : int;
  x_len : int;
  x_asrc : bool;
}

type dent = { d_name : string; d_ino : int }

type info = {
  i_ino : int;
  mutable i_hdr : Codec.Inode.header;
  mutable i_recs : xrec list; (* ascending file offset *)
  mutable i_overflow : int list; (* chain order *)
  mutable i_dents : dent list; (* directories: live entries, slot order *)
  mutable i_parent : (int * string) option; (* directories: (parent, name) *)
  mutable i_refs : int; (* files: incoming dentry count *)
  mutable i_meta_dirty : bool; (* rewrite header + slots + chain *)
  mutable i_dents_dirty : bool; (* rewrite dentry blocks *)
  mutable i_cleared : bool;
}

type ctx = {
  dev : Device.t;
  cpu : Cpu.t;
  repair : bool;
  mutable findings : finding list; (* newest first *)
  mutable repairs : int;
  mutable notes : int;
  mutable fatal : bool;
  mutable orphans : int;
  mutable phase_ns : (string * int) list; (* newest first *)
  mutable clear_inos : int list; (* records to zero in phase 6 *)
  mutable fresh_inos : int list; (* installed by fsck; skip nlink noise *)
}

let record (c : ctx) ~phase ~rule ~obj ~severity ~detail ~action =
  c.findings <- { phase; rule; obj; detail; action; severity } :: c.findings;
  (match severity with
  | Note -> c.notes <- c.notes + 1
  | Repair ->
      c.repairs <- c.repairs + 1;
      if Stats.enabled () then Stats.counter_add ~labels:[ ("rule", rule) ] "fsck.repairs" 1
  | Fatal -> c.fatal <- true);
  if Stats.enabled () then Stats.counter_add "fsck.findings" 1

let site_repair = Site.v "fsck" "repair"

let pm_write (c : ctx) ~off b =
  Device.with_site c.dev site_repair (fun () ->
      Device.write c.dev c.cpu ~off ~src:b ~src_off:0 ~len:(Bytes.length b);
      Device.persist c.dev c.cpu ~off ~len:(Bytes.length b))

let pm_zero (c : ctx) ~off ~len =
  Device.with_site c.dev site_repair (fun () ->
      Device.memset c.dev c.cpu ~off ~len '\000';
      Device.persist c.dev c.cpu ~off ~len)

(* Clone the content of a double-allocated extent.  Per cache line so a
   poisoned source line degrades to zeroes instead of aborting. *)
let copy_extent (c : ctx) ~src ~dst ~len =
  Device.with_site c.dev site_repair (fun () ->
      let b = Bytes.create 64 in
      let n = ref 0 in
      while !n < len do
        let chunk = min 64 (len - !n) in
        (match Device.read c.dev c.cpu ~off:(src + !n) ~len:chunk ~dst:b ~dst_off:0 with
        | () -> ()
        | exception Device.Media_error _ -> Bytes.fill b 0 chunk '\000');
        Device.write c.dev c.cpu ~off:(dst + !n) ~src:b ~src_off:0 ~len:chunk;
        n := !n + chunk
      done;
      Device.persist c.dev c.cpu ~off:dst ~len)

let phase_time (c : ctx) name f =
  let t0 = Simclock.now c.cpu.Cpu.clock in
  let r = Stats.span ~op:("fsck." ^ name) c.cpu f in
  let dt = Simclock.now c.cpu.Cpu.clock - t0 in
  c.phase_ns <- (name, dt) :: c.phase_ns;
  if Stats.enabled () then Stats.counter_add ~labels:[ ("phase", name) ] "fsck.phase_ns" dt;
  r

let region_of stripes off =
  let r = ref None in
  Array.iteri (fun i (o, l) -> if !r = None && off >= o && off < o + l then r := Some i) stripes;
  !r

(* ------------------------------------------------------------------ *)
(* Phase 1: superblock + replica reconcile                             *)

let phase1 (c : ctx) =
  let sb_read off =
    let b = Bytes.create Codec.Superblock.bytes in
    match Device.read c.dev c.cpu ~off ~len:Codec.Superblock.bytes ~dst:b ~dst_off:0 with
    | () -> Codec.Superblock.decode_checked b
    | exception Device.Media_error _ -> `Bad_csum
  in
  let fix which off sb =
    record c ~phase:1 ~rule:("sb-" ^ which)
      ~obj:(Printf.sprintf "superblock %s" which)
      ~severity:Repair ~detail:"superblock copy corrupt" ~action:"rewrite from the good copy";
    if c.repair then pm_write c ~off (Codec.Superblock.encode sb)
  in
  let sb =
    match (sb_read 0, sb_read Layout.sb_replica_off) with
    | `Ok p, `Ok r ->
        if p <> r then fix "replica" Layout.sb_replica_off p;
        p
    | `Ok p, (`Bad_csum | `Bad_magic) ->
        fix "replica" Layout.sb_replica_off p;
        p
    | (`Bad_csum | `Bad_magic), `Ok r ->
        fix "primary" 0 r;
        r
    | `Bad_magic, `Bad_magic -> Types.err EINVAL "fsck: not a WineFS image"
    | (`Bad_csum, (`Bad_csum | `Bad_magic)) | (`Bad_magic, `Bad_csum) ->
        Types.err EIO "fsck: superblock corrupt in both copies"
  in
  if Device.size c.dev <> sb.Codec.Superblock.size then
    Types.err EINVAL "fsck: device is %d bytes but the superblock says %d" (Device.size c.dev)
      sb.Codec.Superblock.size;
  let layout =
    Layout.compute ~size:sb.Codec.Superblock.size ~cpus:sb.cpus ~inodes_per_cpu:sb.inodes_per_cpu
  in
  if not sb.clean then
    record c ~phase:1 ~rule:"dirty-stamp" ~obj:"superblock" ~severity:Note
      ~detail:"image was not cleanly unmounted" ~action:"clear the stamp after repair";
  (sb, layout)

(* ------------------------------------------------------------------ *)
(* Phase 2: journal scan (and, in repair mode, rollback)               *)

let phase2 (c : ctx) (layout : Layout.t) =
  let counter = Journal.Txn_counter.create () in
  let pendings = ref [] in
  for j = 0 to layout.cpus - 1 do
    let off = layout.journal_off.(j) in
    let obj = Printf.sprintf "journal %d" j in
    let reformat () =
      if c.repair then
        ignore
          (Journal.format c.dev c.cpu counter ~off ~entries:layout.journal_entries
             ~copy_bytes:layout.journal_copy_bytes)
    in
    (match
       Journal.attach c.dev counter ~off ~entries:layout.journal_entries
         ~copy_bytes:layout.journal_copy_bytes
     with
    | exception Invalid_argument _ ->
        record c ~phase:2 ~rule:"journal-header" ~obj ~severity:Repair
          ~detail:"journal header has a bad magic"
          ~action:"reformat (discards any unfinished transaction)";
        reformat ()
    | exception Device.Media_error _ ->
        record c ~phase:2 ~rule:"journal-header" ~obj ~severity:Repair
          ~detail:"media error reading the journal header"
          ~action:"reformat (discards any unfinished transaction)";
        reformat ()
    | jr -> (
        let live = ref 0 in
        match Journal.Recovery.iter_live jr c.cpu (fun _ -> incr live) with
        | exception Device.Media_error _ ->
            record c ~phase:2 ~rule:"journal-entry-media" ~obj ~severity:Repair
              ~detail:"media error in the journal slot area" ~action:"reformat journal";
            reformat ()
        | () ->
            (match Journal.Recovery.scan_pending jr c.cpu with
            | exception Device.Media_error _ ->
                record c ~phase:2 ~rule:"journal-copy" ~obj ~severity:Repair
                  ~detail:"media error reading the journal copy area"
                  ~action:"discard the journal; later phases reconcile";
                reformat ()
            | Some p ->
                record c ~phase:2 ~rule:"journal-pending" ~obj ~severity:Repair
                  ~detail:
                    (Printf.sprintf "unfinished transaction %d (%d undo records, %d live entries)"
                       p.Journal.Recovery.txn_id
                       (List.length p.Journal.Recovery.records)
                       !live)
                  ~action:"roll back the journaled old bytes";
                pendings := (jr, p) :: !pendings
            | None -> ());
            if Journal.Recovery.csum_failures jr > 0 then
              record c ~phase:2 ~rule:"journal-entry-crc" ~obj ~severity:Note
                ~detail:
                  (Printf.sprintf "%d journal entries refused by checksum"
                     (Journal.Recovery.csum_failures jr))
                ~action:"refused entries end the live window"));
  done;
  if c.repair then
    List.iter
      (fun (jr, p) -> Journal.Recovery.rollback_pending jr c.cpu p)
      (List.sort
         (fun (_, a) (_, b) ->
           compare b.Journal.Recovery.txn_id a.Journal.Recovery.txn_id)
         !pendings)

(* ------------------------------------------------------------------ *)
(* Phase 3: inode table scan                                           *)

let scan_chain (c : ctx) (layout : Layout.t) inf =
  let obj = Printf.sprintf "inode %d" inf.i_ino in
  let nblocks = max 1 (layout.meta_pool_len / block) in
  let seen = Array.make nblocks false in
  let truncate detail =
    record c ~phase:3 ~rule:"overflow-chain" ~obj ~severity:Repair ~detail
      ~action:"truncate the extent-overflow chain";
    inf.i_meta_dirty <- true
  in
  let rec walk blk acc =
    if blk = 0 then List.rev acc
    else if (not (Layout.in_meta_pool layout ~off:blk ~len:block)) || blk mod block <> 0 then begin
      truncate (Printf.sprintf "overflow pointer %d outside the metadata pool" blk);
      List.rev acc
    end
    else begin
      let idx = (blk - layout.meta_pool_off) / block in
      if seen.(idx) then begin
        truncate (Printf.sprintf "overflow chain revisits block %d" blk);
        List.rev acc
      end
      else begin
        seen.(idx) <- true;
        let hb = Bytes.create Codec.Overflow.header_bytes in
        match Device.read c.dev c.cpu ~off:blk ~len:Codec.Overflow.header_bytes ~dst:hb ~dst_off:0 with
        | exception Device.Media_error _ ->
            truncate (Printf.sprintf "media error reading overflow block %d" blk);
            List.rev acc
        | () ->
            let next, _count = Codec.Overflow.decode_header hb in
            walk next (blk :: acc)
      end
    end
  in
  inf.i_overflow <- walk inf.i_hdr.Codec.Inode.overflow []

let scan_slots (c : ctx) (layout : Layout.t) inf =
  let obj = Printf.sprintf "inode %d" inf.i_ino in
  let ino_off = Layout.inode_off layout inf.i_ino in
  let slot_addrs =
    List.init Layout.inline_extents (fun i -> ino_off + Codec.Inode.extent_slot_off i)
    @ List.concat_map
        (fun blk -> List.init Codec.Overflow.capacity (fun i -> blk + Codec.Overflow.record_off i))
        inf.i_overflow
  in
  let buf = Bytes.create Codec.Inode.extent_bytes in
  let recs = ref [] in
  List.iter
    (fun addr ->
      match Device.read c.dev c.cpu ~off:addr ~len:Codec.Inode.extent_bytes ~dst:buf ~dst_off:0 with
      | exception Device.Media_error _ ->
          record c ~phase:3 ~rule:"extent-media" ~obj ~severity:Repair
            ~detail:(Printf.sprintf "media error reading the extent slot at %d" addr)
            ~action:"drop the extent record";
          inf.i_meta_dirty <- true
      | () ->
          let file_off, phys, len_field = Codec.Inode.decode_extent buf in
          let len, asrc = Codec.Inode.split_len_field len_field in
          if len = 0 && phys = 0 && file_off = 0 then () (* free slot *)
          else if
            len <= 0 || file_off < 0
            || not
                 (Layout.in_meta_pool layout ~off:phys ~len
                 || Layout.in_data_area layout ~off:phys ~len)
          then begin
            record c ~phase:3 ~rule:"extent-bounds" ~obj ~severity:Repair
              ~detail:
                (Printf.sprintf "extent (file_off %d, phys %d, len %d) out of bounds" file_off
                   phys len)
              ~action:"drop the extent record";
            inf.i_meta_dirty <- true
          end
          else
            recs :=
              { x_file_off = file_off; x_phys = phys; x_read_phys = phys; x_len = len;
                x_asrc = asrc }
              :: !recs)
    slot_addrs;
  (* Overlapping file ranges within one inode: keep the first record. *)
  let span = Extent_tree.create () in
  Extent_tree.insert_free span ~off:0 ~len:(max_int / 4);
  let keep =
    List.filter
      (fun r ->
        if Extent_tree.alloc_exact span ~off:r.x_file_off ~len:r.x_len then true
        else begin
          record c ~phase:3 ~rule:"extent-overlap" ~obj ~severity:Repair
            ~detail:
              (Printf.sprintf "extent at file offset %d overlaps an earlier record" r.x_file_off)
            ~action:"drop the extent record";
          inf.i_meta_dirty <- true;
          false
        end)
      (List.rev !recs)
  in
  inf.i_recs <- List.sort (fun a b -> compare a.x_file_off b.x_file_off) keep

let phase3 (c : ctx) (layout : Layout.t) =
  let max_ino = Layout.max_ino layout in
  let table = Array.make (max_ino + 1) None in
  for ino = 1 to max_ino do
    let obj = Printf.sprintf "inode %d" ino in
    let off = Layout.inode_off layout ino in
    let hb = Bytes.create Codec.Inode.header_bytes in
    let clear rule detail =
      record c ~phase:3 ~rule ~obj ~severity:Repair ~detail ~action:"clear the inode record";
      c.clear_inos <- ino :: c.clear_inos
    in
    match Device.read c.dev c.cpu ~off ~len:Codec.Inode.header_bytes ~dst:hb ~dst_off:0 with
    | exception Device.Media_error _ -> clear "inode-media" "media error reading the inode header"
    | () ->
        if Codec.Inode.header_is_blank hb then ()
        else if not (Codec.Inode.header_csum_ok hb) then
          clear "inode-crc" "inode header checksum mismatch"
        else begin
          let hdr = Codec.Inode.decode_header hb in
          if hdr.Codec.Inode.valid then begin
            let inf =
              { i_ino = ino; i_hdr = hdr; i_recs = []; i_overflow = []; i_dents = [];
                i_parent = None; i_refs = 0; i_meta_dirty = false; i_dents_dirty = false;
                i_cleared = false }
            in
            scan_chain c layout inf;
            scan_slots c layout inf;
            table.(ino) <- Some inf
          end
        end
  done;
  (match table.(root_ino) with
  | Some inf when inf.i_hdr.Codec.Inode.is_dir -> ()
  | Some _ | None ->
      record c ~phase:3 ~rule:"root" ~obj:"inode 1" ~severity:Repair
        ~detail:"root inode missing, corrupt or not a directory"
        ~action:"reinstall an empty root directory";
      c.clear_inos <- List.filter (fun i -> i <> root_ino) c.clear_inos;
      let hdr =
        { Codec.Inode.valid = true; is_dir = true; xattr_align = false; size = 0; nlink = 2;
          extent_count = 0; overflow = 0 }
      in
      table.(root_ino) <-
        Some
          { i_ino = root_ino; i_hdr = hdr; i_recs = []; i_overflow = []; i_dents = [];
            i_parent = None; i_refs = 0; i_meta_dirty = true; i_dents_dirty = false;
            i_cleared = false };
      c.fresh_inos <- root_ino :: c.fresh_inos);
  table

(* ------------------------------------------------------------------ *)
(* Phase 4: extent cross-check against per-region occupancy trees      *)

let slot_capacity inf =
  Layout.inline_extents + (Codec.Overflow.capacity * List.length inf.i_overflow)

let release (layout : Layout.t) meta_tree data_trees ~off ~len =
  if Layout.in_meta_pool layout ~off ~len then Extent_tree.insert_free meta_tree ~off ~len
  else
    match region_of layout.stripes off with
    | Some i -> Extent_tree.insert_free data_trees.(i) ~off ~len
    | None -> ()

let phase4 (c : ctx) (layout : Layout.t) sb table =
  let stripes = layout.stripes in
  let meta_tree = Extent_tree.create () in
  Extent_tree.insert_free meta_tree ~off:layout.meta_pool_off ~len:layout.meta_pool_len;
  let data_trees =
    Array.map
      (fun (off, len) ->
        let t = Extent_tree.create () in
        Extent_tree.insert_free t ~off ~len;
        t)
      stripes
  in
  let max_ino = Array.length table - 1 in
  (* Pass 1: claim every referenced block, inode order then chain order
     then file-offset order, so "first owner wins" is deterministic. *)
  let losers = ref [] in
  let claim ~off ~len =
    if Layout.in_meta_pool layout ~off ~len then
      if Extent_tree.alloc_exact meta_tree ~off ~len then `Ok else `Conflict
    else
      match region_of stripes off with
      | Some i when off + len <= fst stripes.(i) + snd stripes.(i) ->
          if Extent_tree.alloc_exact data_trees.(i) ~off ~len then `Ok else `Conflict
      | Some _ | None -> `Bounds
  in
  for ino = 1 to max_ino do
    match table.(ino) with
    | None -> ()
    | Some inf ->
        List.iter
          (fun blk ->
            match claim ~off:blk ~len:block with
            | `Ok -> ()
            | `Conflict | `Bounds -> losers := `Blk (inf, blk) :: !losers)
          inf.i_overflow;
        List.iter
          (fun r ->
            match claim ~off:r.x_read_phys ~len:r.x_len with
            | `Ok -> ()
            | `Conflict -> losers := `Rec (inf, r) :: !losers
            | `Bounds -> losers := `RecBounds (inf, r) :: !losers)
          inf.i_recs
  done;
  (* Pass 2: resolve the losers.  Clone allocation happens in both modes
     so check and repair build the same in-memory picture; only the data
     copy is gated on repair. *)
  List.iter
    (fun l ->
      match l with
      | `Blk (inf, blk) -> (
          let obj = Printf.sprintf "inode %d" inf.i_ino in
          (match Extent_tree.alloc_first_fit meta_tree ~len:block with
          | Some clone ->
              record c ~phase:4 ~rule:"overflow-double-alloc" ~obj ~severity:Repair
                ~detail:
                  (Printf.sprintf "overflow block %d is also claimed by an earlier owner" blk)
                ~action:"move the records to a fresh block";
              inf.i_overflow <- List.map (fun b -> if b = blk then clone else b) inf.i_overflow
          | None ->
              record c ~phase:4 ~rule:"overflow-double-alloc" ~obj ~severity:Repair
                ~detail:
                  (Printf.sprintf "overflow block %d is also claimed by an earlier owner" blk)
                ~action:"drop the block (no free metadata space)";
              inf.i_overflow <- List.filter (fun b -> b <> blk) inf.i_overflow);
          inf.i_meta_dirty <- true)
      | `Rec (inf, r) -> (
          let obj = Printf.sprintf "inode %d" inf.i_ino in
          let pool =
            if Layout.in_meta_pool layout ~off:r.x_read_phys ~len:r.x_len then Some meta_tree
            else Option.map (fun i -> data_trees.(i)) (region_of stripes r.x_read_phys)
          in
          match Option.map (fun t -> Extent_tree.alloc_first_fit t ~len:r.x_len) pool with
          | Some (Some clone) ->
              record c ~phase:4 ~rule:"extent-double-alloc" ~obj ~severity:Repair
                ~detail:
                  (Printf.sprintf "extent (phys %d, len %d) is also claimed by an earlier owner"
                     r.x_read_phys r.x_len)
                ~action:"clone-and-reassign";
              r.x_phys <- clone;
              inf.i_meta_dirty <- true;
              if inf.i_hdr.Codec.Inode.is_dir then inf.i_dents_dirty <- true
              else if c.repair then copy_extent c ~src:r.x_read_phys ~dst:clone ~len:r.x_len
          | Some None | None ->
              record c ~phase:4 ~rule:"extent-double-alloc" ~obj ~severity:Repair
                ~detail:
                  (Printf.sprintf "extent (phys %d, len %d) is also claimed by an earlier owner"
                     r.x_read_phys r.x_len)
                ~action:"drop the extent record (no free space)";
              inf.i_recs <- List.filter (fun x -> x != r) inf.i_recs;
              inf.i_meta_dirty <- true)
      | `RecBounds (inf, r) ->
          record c ~phase:4 ~rule:"extent-bounds"
            ~obj:(Printf.sprintf "inode %d" inf.i_ino)
            ~severity:Repair
            ~detail:
              (Printf.sprintf "extent (phys %d, len %d) crosses a region boundary" r.x_read_phys
                 r.x_len)
            ~action:"drop the extent record";
          inf.i_recs <- List.filter (fun x -> x != r) inf.i_recs;
          inf.i_meta_dirty <- true)
    (List.rev !losers);
  (* Pass 3: a truncated chain may no longer hold every record. *)
  for ino = 1 to max_ino do
    match table.(ino) with
    | None -> ()
    | Some inf ->
        let cap = slot_capacity inf in
        let n = List.length inf.i_recs in
        if n > cap then begin
          record c ~phase:4 ~rule:"extent-dropped"
            ~obj:(Printf.sprintf "inode %d" ino)
            ~severity:Repair
            ~detail:(Printf.sprintf "%d extent records no longer fit the overflow chain" (n - cap))
            ~action:"drop the highest-offset records";
          List.iteri
            (fun i r ->
              if i >= cap then release layout meta_tree data_trees ~off:r.x_phys ~len:r.x_len)
            inf.i_recs;
          inf.i_recs <- List.filteri (fun i _ -> i < cap) inf.i_recs;
          inf.i_meta_dirty <- true
        end
  done;
  (* The serialized free list is only meaningful after a clean unmount.
     Compare through fresh per-stripe trees so both sides coalesce the
     same way (the live allocator parks aligned extents uncoalesced). *)
  if sb.Codec.Superblock.clean then begin
    let stale detail =
      record c ~phase:4 ~rule:"free-list" ~obj:"serial area" ~severity:Repair ~detail
        ~action:"rewrite from the extent scan"
    in
    let buf = Bytes.create layout.serial_len in
    match Device.read c.dev c.cpu ~off:layout.serial_off ~len:layout.serial_len ~dst:buf ~dst_off:0 with
    | exception Device.Media_error _ -> stale "media error reading the serialized free list"
    | () -> (
        match Codec.Serial.decode buf with
        | None -> stale "serialized free list unparseable"
        | Some l ->
            let norm = Array.map (fun _ -> Extent_tree.create ()) stripes in
            let ok =
              try
                List.iter
                  (fun (off, len) ->
                    match region_of stripes off with
                    | Some i when len > 0 && off + len <= fst stripes.(i) + snd stripes.(i) ->
                        Extent_tree.insert_free norm.(i) ~off ~len
                    | Some _ | None -> raise Exit)
                  l;
                true
              with
              | Exit -> false
              | Invalid_argument _ -> false
            in
            let same = ref ok in
            if ok then
              Array.iteri
                (fun i t ->
                  if Extent_tree.to_list t <> Extent_tree.to_list data_trees.(i) then same := false)
                norm;
            if not !same then stale "serialized free list disagrees with the extent scan")
  end;
  (meta_tree, data_trees)

(* ------------------------------------------------------------------ *)
(* Phase 5: connectivity                                               *)

let name_ok s =
  let n = String.length s in
  n >= 1 && n <= Codec.max_name && not (String.exists (fun ch -> ch = '/' || ch = '\000') s)

(* Append a dentry block (and, when the slot table is full, an overflow
   block) to a directory.  No device writes: phase 6 materializes the
   blocks from the in-memory picture. *)
let dir_extend meta_tree inf =
  let need_chain = List.length inf.i_recs >= slot_capacity inf in
  let chain_blk =
    if need_chain then Extent_tree.alloc_first_fit meta_tree ~len:block else Some 0
  in
  match chain_blk with
  | None -> false
  | Some cb -> (
      match Extent_tree.alloc_first_fit meta_tree ~len:block with
      | None ->
          if need_chain then Extent_tree.insert_free meta_tree ~off:cb ~len:block;
          false
      | Some phys ->
          if need_chain then inf.i_overflow <- inf.i_overflow @ [ cb ];
          inf.i_recs <-
            inf.i_recs
            @ [ { x_file_off = inf.i_hdr.Codec.Inode.size; x_phys = phys; x_read_phys = phys;
                  x_len = block; x_asrc = false } ];
          inf.i_hdr <- { inf.i_hdr with Codec.Inode.size = inf.i_hdr.Codec.Inode.size + block };
          inf.i_meta_dirty <- true;
          inf.i_dents_dirty <- true;
          true)

let add_dentry meta_tree inf ~name ~ino =
  let cap = inf.i_hdr.Codec.Inode.size / Codec.dentry_bytes in
  if List.length inf.i_dents >= cap && not (dir_extend meta_tree inf) then false
  else begin
    inf.i_dents <- inf.i_dents @ [ { d_name = name; d_ino = ino } ];
    inf.i_dents_dirty <- true;
    true
  end

let cycle_members trail p =
  let rec take acc = function
    | [] -> acc
    | x :: rest -> if x = p then p :: acc else take (x :: acc) rest
  in
  take [] trail

let phase5 (c : ctx) (layout : Layout.t) table meta_tree data_trees =
  let max_ino = Array.length table - 1 in
  let is_dir inf = inf.i_hdr.Codec.Inode.is_dir in
  (* 5a: per-directory size agreement + dentry scan. *)
  for ino = 1 to max_ino do
    match table.(ino) with
    | Some inf when is_dir inf ->
        let obj = Printf.sprintf "directory %d" ino in
        let coverage =
          List.fold_left (fun acc r -> max acc (r.x_file_off + r.x_len)) 0 inf.i_recs
        in
        if inf.i_hdr.Codec.Inode.size <> coverage then begin
          record c ~phase:5 ~rule:"dir-size" ~obj ~severity:Repair
            ~detail:
              (Printf.sprintf "size %d but dentry blocks cover %d" inf.i_hdr.Codec.Inode.size
                 coverage)
            ~action:"set the size to the covered length";
          inf.i_hdr <- { inf.i_hdr with Codec.Inode.size = coverage };
          inf.i_meta_dirty <- true
        end;
        let buf = Bytes.create Codec.dentry_bytes in
        List.iter
          (fun r ->
            for k = 0 to (r.x_len / Codec.dentry_bytes) - 1 do
              if r.x_file_off + (k * Codec.dentry_bytes) < inf.i_hdr.Codec.Inode.size then begin
                let addr = r.x_read_phys + (k * Codec.dentry_bytes) in
                let drop rule detail =
                  record c ~phase:5 ~rule ~obj ~severity:Repair ~detail
                    ~action:"clear the directory entry";
                  inf.i_dents_dirty <- true
                in
                match Device.read c.dev c.cpu ~off:addr ~len:Codec.dentry_bytes ~dst:buf ~dst_off:0 with
                | exception Device.Media_error _ ->
                    drop "dentry-media" (Printf.sprintf "media error reading the slot at %d" addr)
                | () -> (
                    match Codec.Dentry.decode buf with
                    | exception Invalid_argument _ ->
                        drop "dentry-corrupt" "dentry name length out of range"
                    | None -> ()
                    | Some d ->
                        if not (name_ok d.Codec.Dentry.name) then
                          drop "dentry-corrupt"
                            (Printf.sprintf "invalid name %s" (String.escaped d.name))
                        else if d.ino < 1 || d.ino > max_ino || Option.is_none table.(d.ino) then
                          drop "dentry-dangling"
                            (Printf.sprintf "entry %s points at missing inode %d" d.name d.ino)
                        else if List.exists (fun e -> e.d_name = d.name) inf.i_dents then
                          drop "dentry-dup" (Printf.sprintf "duplicate entry %s" d.name)
                        else begin
                          let target = Option.get table.(d.ino) in
                          if is_dir target then begin
                            if d.ino = root_ino || target.i_parent <> None then
                              drop "dir-multi-ref"
                                (Printf.sprintf "entry %s makes a second link to directory %d"
                                   d.name d.ino)
                            else begin
                              target.i_parent <- Some (ino, d.name);
                              inf.i_dents <- inf.i_dents @ [ { d_name = d.name; d_ino = d.ino } ]
                            end
                          end
                          else begin
                            target.i_refs <- target.i_refs + 1;
                            inf.i_dents <- inf.i_dents @ [ { d_name = d.name; d_ino = d.ino } ]
                          end
                        end)
              end
            done)
          inf.i_recs
    | Some _ | None -> ()
  done;
  (* 5b: break directory cycles; each break makes an orphan root. *)
  let break_edge m =
    match m.i_parent with
    | None -> ()
    | Some (p, name) ->
        (match table.(p) with
        | Some par ->
            par.i_dents <- List.filter (fun d -> d.d_name <> name) par.i_dents;
            par.i_dents_dirty <- true
        | None -> ());
        record c ~phase:5 ~rule:"dir-cycle"
          ~obj:(Printf.sprintf "directory %d" m.i_ino)
          ~severity:Repair
          ~detail:(Printf.sprintf "directory cycle through entry %s of directory %d" name p)
          ~action:"detach and reattach in /lost+found";
        m.i_parent <- None
  in
  let rec chase trail ino =
    if ino = root_ino then `Ok
    else
      match table.(ino) with
      | None -> `Ok
      | Some inf -> (
          match inf.i_parent with
          | None -> `Ok
          | Some (p, _) ->
              if List.mem p (ino :: trail) then `Cycle (cycle_members (ino :: trail) p)
              else chase (ino :: trail) p)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    for ino = 1 to max_ino do
      if not !progress then
        match table.(ino) with
        | Some inf when is_dir inf -> (
            match chase [] ino with
            | `Ok -> ()
            | `Cycle members ->
                let m = List.fold_left min max_int members in
                (match table.(m) with Some mi -> break_edge mi | None -> ());
                progress := true)
        | Some _ | None -> ()
    done
  done;
  (* 5c: reattach orphans into /lost+found (created on demand; the root
     itself is the fallback home when creation is impossible). *)
  let clear_info inf =
    inf.i_cleared <- true;
    List.iter (fun r -> release layout meta_tree data_trees ~off:r.x_phys ~len:r.x_len) inf.i_recs;
    List.iter (fun blk -> release layout meta_tree data_trees ~off:blk ~len:block) inf.i_overflow
  in
  let lf = ref None in
  let get_lf () =
    match !lf with
    | Some d -> d
    | None ->
        let root = Option.get table.(root_ino) in
        let d =
          match List.find_opt (fun d -> d.d_name = "lost+found") root.i_dents with
          | Some d -> (
              match table.(d.d_ino) with Some t when is_dir t -> t | Some _ | None -> root)
          | None -> (
              let free = ref 0 in
              (try
                 for i = 1 to max_ino do
                   if Option.is_none table.(i) && not (List.mem i c.clear_inos) then begin
                     free := i;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !free = 0 then root
              else if not (add_dentry meta_tree root ~name:"lost+found" ~ino:!free) then root
              else begin
                let hdr =
                  { Codec.Inode.valid = true; is_dir = true; xattr_align = false; size = 0;
                    nlink = 2; extent_count = 0; overflow = 0 }
                in
                let inf =
                  { i_ino = !free; i_hdr = hdr; i_recs = []; i_overflow = []; i_dents = [];
                    i_parent = Some (root_ino, "lost+found"); i_refs = 0; i_meta_dirty = true;
                    i_dents_dirty = false; i_cleared = false }
                in
                table.(!free) <- Some inf;
                c.fresh_inos <- !free :: c.fresh_inos;
                record c ~phase:5 ~rule:"lost-found" ~obj:"/lost+found" ~severity:Repair
                  ~detail:"orphans need a home" ~action:"create the directory";
                inf
              end)
        in
        lf := Some d;
        d
  in
  let reattach inf kind =
    let home = get_lf () in
    let name = Printf.sprintf "ino_%d" inf.i_ino in
    let obj = Printf.sprintf "inode %d" inf.i_ino in
    if
      home.i_ino <> inf.i_ino
      && (not (List.exists (fun d -> d.d_name = name) home.i_dents))
      && add_dentry meta_tree home ~name ~ino:inf.i_ino
    then begin
      (if is_dir inf then inf.i_parent <- Some (home.i_ino, name) else inf.i_refs <- 1);
      c.orphans <- c.orphans + 1;
      record c ~phase:5 ~rule:"orphan" ~obj ~severity:Repair
        ~detail:(Printf.sprintf "%s not reachable from the root" kind)
        ~action:(Printf.sprintf "reattach as ino_%d" inf.i_ino)
    end
    else begin
      record c ~phase:5 ~rule:"orphan" ~obj ~severity:Repair
        ~detail:(Printf.sprintf "%s not reachable from the root" kind)
        ~action:"clear the inode record (no space to reattach)";
      clear_info inf
    end
  in
  for ino = 1 to max_ino do
    match table.(ino) with
    | None -> ()
    | Some inf when inf.i_cleared -> ()
    | Some inf ->
        if is_dir inf then begin
          if ino <> root_ino && inf.i_parent = None then reattach inf "directory"
        end
        else if inf.i_refs = 0 then
          if inf.i_hdr.Codec.Inode.nlink = 0 then begin
            record c ~phase:5 ~rule:"orphan-free"
              ~obj:(Printf.sprintf "inode %d" ino)
              ~severity:Repair
              ~detail:"unreferenced file with zero link count (interrupted delete)"
              ~action:"free the inode and its extents";
            clear_info inf
          end
          else reattach inf "file"
  done;
  (* 5d: recompute link counts from the final edge set. *)
  let child_dirs = Array.make (max_ino + 1) 0 in
  for ino = 1 to max_ino do
    match table.(ino) with
    | Some inf when is_dir inf && not inf.i_cleared -> (
        match inf.i_parent with
        | Some (p, _) when p >= 1 && p <= max_ino -> child_dirs.(p) <- child_dirs.(p) + 1
        | Some _ | None -> ())
    | Some _ | None -> ()
  done;
  for ino = 1 to max_ino do
    match table.(ino) with
    | Some inf when not inf.i_cleared ->
        let want = if is_dir inf then 2 + child_dirs.(ino) else inf.i_refs in
        if want <> inf.i_hdr.Codec.Inode.nlink then begin
          if not (List.mem ino c.fresh_inos) then
            record c ~phase:5 ~rule:"nlink"
              ~obj:(Printf.sprintf "inode %d" ino)
              ~severity:Repair
              ~detail:
                (Printf.sprintf "link count %d but %d references found"
                   inf.i_hdr.Codec.Inode.nlink want)
              ~action:"set the link count to the reference count";
          inf.i_hdr <- { inf.i_hdr with Codec.Inode.nlink = want };
          inf.i_meta_dirty <- true
        end
    | Some _ | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Phase 6: rewrite repaired metadata                                  *)

(* Rewrite an inode's 256-byte record and its overflow chain from the
   in-memory picture.  Whole records/blocks are written (full 64-byte
   lines), which also clears any poisoned lines under them. *)
let rewrite_meta (c : ctx) (layout : Layout.t) inf =
  let recs = Array.of_list inf.i_recs in
  let n = Array.length recs in
  inf.i_hdr <-
    { inf.i_hdr with
      Codec.Inode.extent_count = n;
      overflow = (match inf.i_overflow with [] -> 0 | b0 :: _ -> b0) };
  let rec_len r = if r.x_asrc then r.x_len lor Codec.Inode.asrc_bit else r.x_len in
  let ib = Bytes.make Layout.inode_bytes '\000' in
  Bytes.blit (Codec.Inode.encode_header inf.i_hdr) 0 ib 0 Codec.Inode.header_bytes;
  for i = 0 to min n Layout.inline_extents - 1 do
    Bytes.blit
      (Codec.Inode.encode_extent ~file_off:recs.(i).x_file_off ~phys:recs.(i).x_phys
         ~len:(rec_len recs.(i)))
      0 ib
      (Codec.Inode.extent_slot_off i)
      Codec.Inode.extent_bytes
  done;
  pm_write c ~off:(Layout.inode_off layout inf.i_ino) ib;
  let chain = Array.of_list inf.i_overflow in
  Array.iteri
    (fun ci blk ->
      let next = if ci + 1 < Array.length chain then chain.(ci + 1) else 0 in
      let base = Layout.inline_extents + (ci * Codec.Overflow.capacity) in
      let count = max 0 (min Codec.Overflow.capacity (n - base)) in
      let bb = Bytes.make block '\000' in
      Bytes.blit (Codec.Overflow.encode_header ~next ~count) 0 bb 0 Codec.Overflow.header_bytes;
      for k = 0 to count - 1 do
        let r = recs.(base + k) in
        Bytes.blit
          (Codec.Inode.encode_extent ~file_off:r.x_file_off ~phys:r.x_phys ~len:(rec_len r))
          0 bb (Codec.Overflow.record_off k) Codec.Inode.extent_bytes
      done;
      pm_write c ~off:blk bb)
    chain

(* Rewrite every dentry slot in a dirty directory's coverage: live
   entries packed first, the rest freed.  Every slot is one full line. *)
let rewrite_dents (c : ctx) inf =
  let slots = ref [] in
  List.iter
    (fun r ->
      for k = 0 to (r.x_len / Codec.dentry_bytes) - 1 do
        if r.x_file_off + (k * Codec.dentry_bytes) < inf.i_hdr.Codec.Inode.size then
          slots := (r.x_phys + (k * Codec.dentry_bytes)) :: !slots
      done)
    inf.i_recs;
  let rec write_slots dents addrs =
    match (addrs, dents) with
    | [], _ -> ()
    | addr :: rest, d :: ds ->
        pm_write c ~off:addr (Codec.Dentry.encode { Codec.Dentry.ino = d.d_ino; name = d.d_name });
        write_slots ds rest
    | addr :: rest, [] ->
        pm_write c ~off:addr Codec.Dentry.free_slot;
        write_slots [] rest
  in
  write_slots inf.i_dents (List.rev !slots)

let phase6 (c : ctx) (layout : Layout.t) sb table data_trees =
  if c.repair && c.findings <> [] then begin
    List.iter
      (fun ino -> pm_zero c ~off:(Layout.inode_off layout ino) ~len:Layout.inode_bytes)
      (List.rev c.clear_inos);
    Array.iteri
      (fun _ slot ->
        match slot with
        | None -> ()
        | Some inf ->
            if inf.i_cleared then
              pm_zero c ~off:(Layout.inode_off layout inf.i_ino) ~len:Layout.inode_bytes
            else begin
              if inf.i_meta_dirty then rewrite_meta c layout inf;
              if inf.i_dents_dirty then rewrite_dents c inf
            end)
      table;
    if not c.fatal then begin
      let free = ref [] in
      for i = Array.length data_trees - 1 downto 0 do
        free := Extent_tree.to_list data_trees.(i) @ !free
      done;
      pm_zero c ~off:layout.Layout.serial_off ~len:layout.Layout.serial_len;
      (match Codec.Serial.encode !free ~capacity_bytes:layout.Layout.serial_len with
      | Some b -> pm_write c ~off:layout.Layout.serial_off b
      | None -> pm_write c ~off:layout.Layout.serial_off Codec.Serial.invalid);
      let sbb = Codec.Superblock.encode { sb with Codec.Superblock.clean = true } in
      pm_write c ~off:0 sbb;
      pm_write c ~off:Layout.sb_replica_off sbb
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let run ?(repair = false) dev =
  let cpu = Cpu.make ~id:0 () in
  let c =
    { dev; cpu; repair; findings = []; repairs = 0; notes = 0; fatal = false; orphans = 0;
      phase_ns = []; clear_inos = []; fresh_inos = [] }
  in
  let sb, layout = phase_time c "sb" (fun () -> phase1 c) in
  phase_time c "journal" (fun () -> phase2 c layout);
  let table = phase_time c "inodes" (fun () -> phase3 c layout) in
  let meta_tree, data_trees = phase_time c "extents" (fun () -> phase4 c layout sb table) in
  phase_time c "connectivity" (fun () -> phase5 c layout table meta_tree data_trees);
  phase_time c "rewrite" (fun () -> phase6 c layout sb table data_trees);
  let findings = List.rev c.findings in
  if Stats.enabled () then begin
    Stats.counter_add "fsck.runs" 1;
    Stats.counter_add "fsck.orphans_reattached" c.orphans
  end;
  ({ repair; clean = findings = []; fatal = c.fatal; findings; repairs = c.repairs;
     notes = c.notes; orphans_reattached = c.orphans; phase_ns = List.rev c.phase_ns }
    : report)

let severity_tag = function Note -> "note" | Repair -> "repair" | Fatal -> "fatal"

let to_string (r : report) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fsck %s: %s (%d findings, %d repairs%s, %d notes, %d orphans reattached)\n"
       (if r.repair then "repair" else "check")
       (if r.clean then "clean" else if r.fatal then "fatal" else "dirty")
       (List.length r.findings) r.repairs
       (if r.repair then "" else " pending")
       r.notes r.orphans_reattached);
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "P%d %s %s: %s -> %s [%s]\n" f.phase f.rule f.obj f.detail f.action
           (severity_tag f.severity)))
    r.findings;
  Buffer.contents b

let to_json (r : report) =
  Json.Obj
    [
      ("repair", Json.Bool r.repair);
      ("clean", Json.Bool r.clean);
      ("fatal", Json.Bool r.fatal);
      ("repairs", Json.Int r.repairs);
      ("notes", Json.Int r.notes);
      ("orphans_reattached", Json.Int r.orphans_reattached);
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("phase", Json.Int f.phase);
                   ("rule", Json.String f.rule);
                   ("obj", Json.String f.obj);
                   ("detail", Json.String f.detail);
                   ("action", Json.String f.action);
                   ("severity", Json.String (severity_tag f.severity));
                 ])
             r.findings) );
      ("phase_ns", Json.Obj (List.map (fun (name, ns) -> (name, Json.Int ns)) r.phase_ns));
    ]
