(** Offline multi-phase checker/repairer for unmounted WineFS images, in
    the e2fsck tradition.

    Operates on a raw {!Repro_pmem.Device} through the same
    {!Winefs.Layout}/{!Winefs.Codec} views the file system uses, in six
    phases:

    + superblock + replica reconcile;
    + journal scan — verify undo records, report (and in repair mode
      perform) what recovery would do, discard corrupt journals;
    + inode table scan — CRC-check every header, rebuild the in-DRAM
      picture of every live inode, clear corrupt records;
    + extent cross-check — claim every inode's extents and overflow
      blocks against per-region occupancy trees, detecting
      double-allocated extents (clone-and-reassign, or clear when space
      is gone), leaked blocks (returned to the free list by
      construction) and a stale serialized free list;
    + connectivity — walk the directory tree from the root, verify
      dentry↔inode agreement and link counts, break directory cycles and
      reattach orphan inodes into [/lost+found] (created on demand);
    + rewrite repaired metadata with fresh CRCs, serialize the
      recomputed free list and clear the dirty stamp.

    Check mode ([repair = false], the default) writes nothing: every
    finding carries the action repair mode {e would} take.  (On an image
    with an unfinished journal transaction the two modes can diverge
    beyond phase 2 — repair mode rolls the transaction back before
    scanning, which may subsume later-phase findings.)  A clean image
    produces no findings and — in repair mode — no writes at all (fsck
    is a byte-identical no-op on clean images). *)

type severity =
  | Note  (** observation, nothing to change (e.g. the dirty stamp) *)
  | Repair  (** a repair was performed (or would be, in check mode) *)
  | Fatal  (** unrepairable; the image stays dirty *)

type finding = {
  phase : int;
  rule : string;  (** stable kebab-case id, e.g. ["extent-double-alloc"] *)
  obj : string;  (** the object concerned, e.g. ["inode 7"] *)
  detail : string;
  action : string;  (** what repair mode does about it *)
  severity : severity;
}

type report = {
  repair : bool;  (** was this a repair run? *)
  clean : bool;  (** no findings at all *)
  fatal : bool;
  findings : finding list;  (** phase order, insertion order within *)
  repairs : int;
  notes : int;
  orphans_reattached : int;
  phase_ns : (string * int) list;  (** simulated time per phase *)
}

val run : ?repair:bool -> Repro_pmem.Device.t -> report
(** Check (and with [~repair:true] repair) the image.  Raises
    {!Repro_vfs.Types.Error} [EINVAL] when the device is not a WineFS
    image and [EIO] when both superblock copies are corrupt. *)

val to_string : report -> string
(** Normalized, byte-stable rendering (excludes {!report.phase_ns}). *)

val to_json : report -> Repro_stats.Json.t
