(** Planted-corruption scenarios backing [pmcheck fsckcheck].

    Each scenario damages a real WineFS image in a precisely-known way —
    a double-allocated extent planted by raw slot surgery, a zeroed
    dentry leaving a live orphan inode, a crash image with an unfinished
    journal transaction, a poisoned inode header that degrades the mount
    — runs {!Fsck.run}, and demands the exact intended repair, a clean
    second fsck (convergence) and a writable remount.  A clean image
    must produce a byte-stable, finding-free report and a no-op repair. *)

type outcome = { s_name : string; ok : bool; detail : string }

val run : ?device_size:int -> unit -> outcome list
(** Run all five scenarios (deterministic; no seed needed).  Default
    devices are 48 MiB. *)
