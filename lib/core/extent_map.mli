(** Extent-map layer: the per-file record/slot run map plus the dedicated
    metadata-block pool (§3.3 "Layout: containing fragmentation" — small
    metadata is recycled in place in its own region and never breaks up
    data-area aligned extents; §2.2 gives the hugepage condition
    {!chunk_huge_phys} checks).

    Mutations ({!add_record}, {!remove_records}) persist extent slots
    through {!Inode} inside the caller's {!Txn} transaction; pure lookups
    ({!lookup_run}, {!next_mapped}) need only the {!Inode.file}.  Record
    removal is budgeted so journal transactions stay bounded —
    {!remove_records_batched} runs its own bounded transactions, freeing
    extents as each commits. *)

open Repro_util

type t

val create :
  dev:Repro_pmem.Device.t -> layout:Layout.t -> txns:Txn.t -> inodes:Inode.t ->
  alloc:Repro_alloc.Aligned_alloc.t -> t

(* -- Metadata-block pool (dedicated region, hole-pool fallback) -- *)

val seed_meta_pool : t -> unit
(** Format: the whole metadata region is free. *)

val add_meta_free : t -> off:int -> len:int -> unit
(** Mount: return one free run of the metadata region (rebuilt by the
    scan). *)

val in_meta_region : t -> int -> bool

val alloc_meta_block : t -> Cpu.t -> int
(** One 4K metadata block — from the region, else the hole pool. *)

val zeroed_meta_block : t -> Cpu.t -> int
(** {!alloc_meta_block} + initialize-then-publish: the fresh block is
    zeroed and persisted while still unreachable (dentry blocks,
    extent-overflow blocks). *)

val free_any : t -> off:int -> len:int -> unit
(** Free to whichever pool [off] belongs to. *)

(* -- Record map -- *)

val ensure_slot : t -> Cpu.t -> Txn.txn -> Inode.file -> int
(** A free extent slot, allocating + journaling-in a new overflow block
    when the inline slots and existing blocks are full. *)

val add_record :
  t -> Cpu.t -> Txn.txn -> Inode.file -> file_off:int -> phys:int -> len:int ->
  asrc:bool -> unit
(** Add a live extent, tail-merging with a contiguous same-provenance
    predecessor (common for appends). *)

val remove_records :
  ?budget:int -> t -> Cpu.t -> Txn.txn -> Inode.file -> file_off:int -> len:int ->
  (int * int) list * bool
(** Remove record coverage of [file_off, file_off+len), at most [budget]
    records per call; returns the freed physical runs and whether
    coverage remains.  Boundary records are shrunk (or split) in
    place. *)

val remove_records_batched : t -> Cpu.t -> Inode.file -> file_off:int -> len:int -> unit
(** Remove an arbitrarily fragmented range in bounded journal
    transactions.  A crash mid-way can leave the tail of the removed
    range already gone — acceptable for truncation. *)

val free_file_space : t -> Inode.file -> unit
(** Free every data extent and overflow block (unlink/rmdir/rewrite). *)

(* -- Pure lookups -- *)

val lookup_run : Inode.file -> file_off:int -> (int * int) option
(** Physical address + remaining run length covering [file_off]. *)

val next_mapped : Inode.file -> file_off:int -> int option
(** First mapped offset at or after [file_off]. *)

val chunk_huge_phys : Inode.file -> chunk_off:int -> int option
(** The §2.2 hugepage condition for the 2MB chunk at [chunk_off]: a
    2MB-aligned physical run covering the whole chunk. *)
