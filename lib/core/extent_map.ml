open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Alloc = Repro_alloc.Aligned_alloc
module Extent_tree = Repro_rbtree.Extent_tree
module Int_map = Repro_rbtree.Rbtree.Int_map

let block = Units.base_page
let huge = Units.huge_page
let site_meta_block = Site.v "core" "meta-block"

type t = {
  dev : Device.t;
  layout : Layout.t;
  txns : Txn.t;
  inodes : Inode.t;
  alloc : Alloc.t;
  meta_free : Extent_tree.t;
      (* free 4K blocks of the dedicated metadata region (§3.3) *)
}

let note ~obj ~write ~site = if Sched.monitored () then Sched.access ~obj ~write ~site

let create ~dev ~layout ~txns ~inodes ~alloc =
  { dev; layout; txns; inodes; alloc; meta_free = Extent_tree.create () }

let seed_meta_pool t =
  Extent_tree.insert_free t.meta_free ~off:t.layout.Layout.meta_pool_off
    ~len:t.layout.Layout.meta_pool_len

let add_meta_free t ~off ~len = Extent_tree.insert_free t.meta_free ~off ~len

let in_meta_region t off =
  off >= t.layout.Layout.meta_pool_off
  && off < t.layout.Layout.meta_pool_off + t.layout.Layout.meta_pool_len

let alloc_meta_block t (cpu : Cpu.t) =
  note ~obj:"fs.meta_free" ~write:true ~site:"fs.alloc_meta_block";
  match Extent_tree.alloc_first_fit t.meta_free ~len:block with
  | Some off -> off
  | None -> (
      match
        Alloc.alloc t.alloc ~cpu:(cpu.id mod t.layout.Layout.cpus) ~len:block
          ~prefer_aligned:false
      with
      | Some [ e ] when e.len = block -> e.off
      | Some exts ->
          List.iter (fun (e : Alloc.extent) -> Alloc.free t.alloc ~off:e.off ~len:e.len) exts;
          Types.err ENOSPC "no space for a metadata block"
      | None -> Types.err ENOSPC "no space for a metadata block")

(* Initialize-then-publish: the fresh block is unreachable until the
   caller's journaled pointer update commits. *)
let zeroed_meta_block t cpu =
  let blk = alloc_meta_block t cpu in
  Device.annotate t.dev (Fresh { addr = blk; len = block });
  Device.with_site t.dev site_meta_block (fun () ->
      Device.memset t.dev cpu ~off:blk ~len:block '\000';
      Device.persist t.dev cpu ~off:blk ~len:block);
  blk

let free_any t ~off ~len =
  if in_meta_region t off then begin
    note ~obj:"fs.meta_free" ~write:true ~site:"fs.free_meta_block";
    Extent_tree.insert_free t.meta_free ~off ~len
  end
  else Alloc.free t.alloc ~off ~len

(* Ensure a free slot exists, allocating an overflow block if needed
   (metadata blocks come from the dedicated pool: contained
   fragmentation). *)
let ensure_slot t cpu txn (f : Inode.file) =
  match f.free_slots with
  | s :: rest ->
      f.free_slots <- rest;
      s
  | [] ->
      if f.slot_cap < Layout.inline_extents then begin
        (* Inline slots not yet handed out. *)
        let s = f.slot_cap in
        f.slot_cap <- f.slot_cap + 1;
        s
      end
      else begin
        let blk = zeroed_meta_block t cpu in
        (* Link it at the tail of the chain (journaled pointer update). *)
        (match List.rev f.overflow with
        | [] ->
            f.overflow <- [ blk ];
            Inode.persist_header t.inodes cpu txn f
        | last :: _ ->
            f.overflow <- f.overflow @ [ blk ];
            Txn.meta_write t.txns cpu txn ~addr:last
              (Codec.Overflow.encode_header ~next:blk ~count:0));
        let s = f.slot_cap in
        f.slot_cap <- f.slot_cap + Codec.Overflow.capacity;
        f.free_slots <- List.init (Codec.Overflow.capacity - 1) (fun i -> s + 1 + i);
        s
      end

let add_record t cpu txn (f : Inode.file) ~file_off ~phys ~len ~asrc =
  let merged =
    match Int_map.find_last_leq f.records (file_off - 1) with
    | Some (o, (r : Inode.record))
      when o + r.len = file_off && r.phys + r.len = phys && r.asrc = asrc ->
        let r' = { r with len = r.len + len } in
        Int_map.insert f.records o r';
        Inode.persist_slot t.inodes cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys
          ~len:r'.len ~asrc;
        true
    | _ -> false
  in
  if not merged then begin
    let slot = ensure_slot t cpu txn f in
    Int_map.insert f.records file_off { Inode.slot; phys; len; asrc };
    Inode.persist_slot t.inodes cpu txn f ~slot ~file_off ~phys ~len ~asrc
  end

let remove_records ?(budget = max_int) t cpu txn (f : Inode.file) ~file_off ~len =
  let stop = file_off + len in
  let freed = ref [] in
  let removed = ref 0 in
  let continue_scan = ref true in
  while !continue_scan && !removed < budget do
    let hit =
      match Int_map.find_last_leq f.records (stop - 1) with
      | Some (o, (r : Inode.record)) when o + r.len > file_off -> Some (o, r)
      | _ -> None
    in
    match hit with
    | None -> continue_scan := false
    | Some (o, r) ->
        Int_map.remove f.records o;
        let cut_lo = max o file_off and cut_hi = min (o + r.len) stop in
        freed := (r.phys + (cut_lo - o), cut_hi - cut_lo) :: !freed;
        let head_len = cut_lo - o and tail_len = o + r.len - cut_hi in
        if head_len > 0 && tail_len > 0 then begin
          (* Split: reuse the slot for the head, new slot for the tail. *)
          Int_map.insert f.records o { r with len = head_len };
          Inode.persist_slot t.inodes cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys
            ~len:head_len ~asrc:r.asrc;
          let slot = ensure_slot t cpu txn f in
          let tail_phys = r.phys + (cut_hi - o) in
          Int_map.insert f.records cut_hi
            { Inode.slot; phys = tail_phys; len = tail_len; asrc = r.asrc };
          Inode.persist_slot t.inodes cpu txn f ~slot ~file_off:cut_hi ~phys:tail_phys
            ~len:tail_len ~asrc:r.asrc
        end
        else if head_len > 0 then begin
          Int_map.insert f.records o { r with len = head_len };
          Inode.persist_slot t.inodes cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys
            ~len:head_len ~asrc:r.asrc
        end
        else if tail_len > 0 then begin
          let tail_phys = r.phys + (cut_hi - o) in
          Int_map.insert f.records cut_hi { r with phys = tail_phys; len = tail_len };
          Inode.persist_slot t.inodes cpu txn f ~slot:r.slot ~file_off:cut_hi
            ~phys:tail_phys ~len:tail_len ~asrc:r.asrc
        end
        else begin
          (* Fully removed: zero the slot. *)
          Inode.clear_slot t.inodes cpu txn f r.slot;
          f.free_slots <- r.slot :: f.free_slots
        end;
        incr removed
  done;
  (!freed, !continue_scan)

let remove_records_batched t cpu f ~file_off ~len =
  let more = ref true in
  while !more do
    let freed, again =
      Txn.with_txn t.txns cpu ~reserve:200 (fun txn ->
          remove_records ~budget:60 t cpu txn f ~file_off ~len)
    in
    List.iter (fun (o, l) -> free_any t ~off:o ~len:l) freed;
    more := again
  done

let free_file_space t (f : Inode.file) =
  Int_map.iter f.records (fun _ (r : Inode.record) -> free_any t ~off:r.phys ~len:r.len);
  List.iter (fun blk -> free_any t ~off:blk ~len:block) f.overflow

let lookup_run (f : Inode.file) ~file_off =
  match Int_map.find_last_leq f.records file_off with
  | Some (o, (r : Inode.record)) when o + r.len > file_off ->
      Some (r.phys + (file_off - o), o + r.len - file_off)
  | _ -> None

let next_mapped (f : Inode.file) ~file_off =
  match lookup_run f ~file_off with
  | Some _ -> Some file_off
  | None -> (
      match Int_map.find_first_geq f.records file_off with Some (o, _) -> Some o | None -> None)

let chunk_huge_phys f ~chunk_off =
  match lookup_run f ~file_off:chunk_off with
  | Some (phys, run) when run >= huge && Units.is_aligned phys huge -> Some phys
  | _ -> None
