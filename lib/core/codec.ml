let dentry_bytes = 64
let max_name = 47

let u64 buf off v = Bytes.set_int64_le buf off (Int64.of_int v)
let g64 buf off = Int64.to_int (Bytes.get_int64_le buf off)

module Crc = Repro_util.Crc32c

module Superblock = struct
  type t = {
    size : int;
    cpus : int;
    inodes_per_cpu : int;
    mode_strict : bool;
    clean : bool;
  }

  let magic = 0x57494E4546532121L (* "WINEFS!!" *)
  let bytes = 64
  let csum_off = 40

  (* CRC32C over the whole 64B block with the csum field zeroed: every
     non-checksum bit is covered, so any single-bit flip is detected. *)
  let encode t =
    let b = Bytes.make bytes '\000' in
    Bytes.set_int64_le b 0 magic;
    u64 b 8 t.size;
    u64 b 16 t.cpus;
    u64 b 24 t.inodes_per_cpu;
    u64 b 32 ((if t.mode_strict then 1 else 0) lor if t.clean then 2 else 0);
    Crc.set_zeroed b ~off:0 ~len:bytes ~csum_off;
    b

  let decode_fields b =
    let flags = g64 b 32 in
    {
      size = g64 b 8;
      cpus = g64 b 16;
      inodes_per_cpu = g64 b 24;
      mode_strict = flags land 1 <> 0;
      clean = flags land 2 <> 0;
    }

  (* Distinguishes "not a WineFS image" from "a WineFS superblock whose
     checksum fails" — mount repairs the latter from the replica. *)
  let decode_checked b =
    if Bytes.length b < bytes || Bytes.get_int64_le b 0 <> magic then `Bad_magic
    else if not (Crc.verify_zeroed b ~off:0 ~len:bytes ~csum_off) then `Bad_csum
    else `Ok (decode_fields b)

  let decode b = match decode_checked b with `Ok t -> Some t | `Bad_magic | `Bad_csum -> None
end

module Inode = struct
  type header = {
    valid : bool;
    is_dir : bool;
    xattr_align : bool;
    size : int;
    nlink : int;
    extent_count : int;
    overflow : int;
  }

  let header_bytes = 64
  let csum_off = 56

  (* The header is exactly one cache line; the CRC at offset 56 covers all
     64 bytes (csum field zeroed), so a flipped [valid] bit cannot silently
     vanish or resurrect an inode.  Freed inodes keep a valid checksum
     (valid=false header), and never-used slots are all-zero — the scrub
     treats any other non-verifying slot as corrupt. *)
  let encode_header h =
    let b = Bytes.make header_bytes '\000' in
    let flags =
      (if h.valid then 1 else 0)
      lor (if h.is_dir then 2 else 0)
      lor if h.xattr_align then 4 else 0
    in
    u64 b 0 flags;
    u64 b 8 h.size;
    u64 b 16 h.nlink;
    u64 b 24 h.extent_count;
    u64 b 32 h.overflow;
    Crc.set_zeroed b ~off:0 ~len:header_bytes ~csum_off;
    b

  let header_csum_ok b = Crc.verify_zeroed b ~off:0 ~len:header_bytes ~csum_off

  let header_is_blank b =
    let rec blank i = i >= header_bytes || (Bytes.get b i = '\000' && blank (i + 1)) in
    blank 0

  let decode_header b =
    let flags = g64 b 0 in
    {
      valid = flags land 1 <> 0;
      is_dir = flags land 2 <> 0;
      xattr_align = flags land 4 <> 0;
      size = g64 b 8;
      nlink = g64 b 16;
      extent_count = g64 b 24;
      overflow = g64 b 32;
    }

  let extent_bytes = 24
  let extent_slot_off i = header_bytes + (i * extent_bytes)

  (* Bit 62 of the stored length marks aligned-pool provenance (§3.4):
     extents the rewriter/allocator must return to the 2MB-aligned pool. *)
  let asrc_bit = 1 lsl 62

  let encode_extent ~file_off ~phys ~len =
    let b = Bytes.make extent_bytes '\000' in
    u64 b 0 file_off;
    u64 b 8 phys;
    u64 b 16 len;
    b

  let decode_extent b = (g64 b 0, g64 b 8, g64 b 16)

  (* Decode straight out of a bulk-read buffer: the mount-time slot walk
     reads whole slot regions in one device access and decodes records in
     place, with no per-record [Bytes.sub]. *)
  let decode_extent_at b off = (g64 b off, g64 b (off + 8), g64 b (off + 16))

  let split_len_field lf = (lf land lnot asrc_bit, lf land asrc_bit <> 0)
end

module Dentry = struct
  type t = { ino : int; name : string }

  let encode t =
    let n = String.length t.name in
    if n > max_name then Repro_vfs.Types.err ENAMETOOLONG "name %S" t.name;
    if n = 0 then Repro_vfs.Types.err EINVAL "empty name";
    let b = Bytes.make dentry_bytes '\000' in
    u64 b 0 t.ino;
    Bytes.set b 8 (Char.chr n);
    Bytes.blit_string t.name 0 b 16 n;
    b

  let decode b =
    let ino = g64 b 0 in
    if ino = 0 then None
    else
      let n = Char.code (Bytes.get b 8) in
      Some { ino; name = Bytes.sub_string b 16 n }

  (* In-place variant for bulk-read directory extents. *)
  let decode_at b off =
    let ino = g64 b off in
    if ino = 0 then None
    else
      let n = Char.code (Bytes.get b (off + 8)) in
      Some { ino; name = Bytes.sub_string b (off + 16) n }

  let free_slot = Bytes.make dentry_bytes '\000'
end

module Overflow = struct
  let header_bytes = 16
  let capacity = (Repro_util.Units.base_page - header_bytes) / Inode.extent_bytes

  let encode_header ~next ~count =
    let b = Bytes.make header_bytes '\000' in
    u64 b 0 next;
    u64 b 8 count;
    b

  let decode_header b = (g64 b 0, g64 b 8)
  let record_off i = header_bytes + (i * Inode.extent_bytes)
end

module Serial = struct
  let magic = 0x46524545535421L

  let encode exts ~capacity_bytes =
    let n = List.length exts in
    let need = 16 + (n * 16) in
    if need > capacity_bytes then None
    else begin
      let b = Bytes.make need '\000' in
      Bytes.set_int64_le b 0 magic;
      u64 b 8 n;
      List.iteri
        (fun i (off, len) ->
          u64 b (16 + (i * 16)) off;
          u64 b (16 + (i * 16) + 8) len)
        exts;
      Some b
    end

  let decode b =
    if Bytes.length b < 16 || Bytes.get_int64_le b 0 <> magic then None
    else begin
      let n = g64 b 8 in
      if n < 0 || 16 + (n * 16) > Bytes.length b then None
      else
        Some
          (List.init n (fun i -> (g64 b (16 + (i * 16)), g64 b (16 + (i * 16) + 8))))
    end

  let invalid = Bytes.make 16 '\000'
end
