open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem
module Degraded = Repro_vfs.Degraded
module Alloc = Repro_alloc.Aligned_alloc
module Int_map = Repro_rbtree.Rbtree.Int_map

let block = Units.base_page
let huge = Units.huge_page
let site_data = Site.v "core" "data"
let site_data_journal = Site.v "core" "data-journal"
let site_cow = Site.v "core" "cow"
let site_zero = Site.v "core" "zero"
let site_fsync = Site.v "core" "fsync"

type t = {
  dev : Device.t;
  cfg : Types.config;
  txns : Txn.t;
  inodes : Inode.t;
  map : Extent_map.t;
  alloc : Alloc.t;
  counters : Counters.t;
}

let create ~dev ~cfg ~txns ~inodes ~map ~alloc ~counters =
  { dev; cfg; txns; inodes; map; alloc; counters }

let strict t = Types.is_strict t.cfg.Types.mode
let acpu t (cpu : Cpu.t) = cpu.id mod t.cfg.Types.cpus
let lookup_run = Extent_map.lookup_run
let next_mapped = Extent_map.next_mapped

(* Allocate backing for a hole, split at 2MB file-chunk boundaries so
   whole chunks land on aligned extents and stay hugepage-mappable
   (§3.2).  Records are inserted in one transaction per call. *)
let allocate_range t cpu txn (f : Inode.file) ~file_off ~len ~zero =
  Counters.add t.counters "fs.alloc_bytes" len;
  let cpu_id = acpu t cpu in
  let alloc_one ~file_off ~len =
    (* Alignment-preserving files grow contiguously after their previous
       extent when possible (§3.6). *)
    let contig_after =
      if not f.xattr_align then None
      else
        match Int_map.find_last_leq f.records (file_off - 1) with
        | Some (o, (r : Inode.record)) when o + r.len = file_off -> Some (r.phys + r.len)
        | _ -> None
    in
    let exts =
      match Alloc.alloc ?contig_after t.alloc ~cpu:cpu_id ~len ~prefer_aligned:f.xattr_align with
      | Some exts -> exts
      | None -> Types.err ENOSPC "allocating %d bytes" len
    in
    let cur = ref file_off in
    List.iter
      (fun (e : Alloc.extent) ->
        if zero then Alloc.zero_extents t.dev cpu [ e ];
        (* Whole aligned 2MB chunks come from the aligned pool; everything
           else is hole-sourced (including xattr-aligned fronts). *)
        let asrc = e.len = huge && Units.is_aligned e.off huge in
        Extent_map.add_record t.map cpu txn f ~file_off:!cur ~phys:e.off ~len:e.len ~asrc;
        cur := !cur + e.len)
      exts
  in
  let cur = ref file_off and stop = file_off + len in
  while !cur < stop do
    let chunk_end = min stop (Units.round_down !cur huge + huge) in
    let seg_end =
      if Units.is_aligned !cur huge then
        (* Take as many whole chunks as possible in one allocator call. *)
        let whole = Units.round_down (stop - !cur) huge in
        if whole > 0 then !cur + whole else chunk_end
      else chunk_end
    in
    alloc_one ~file_off:!cur ~len:(seg_end - !cur);
    cur := seg_end
  done

(* Backing for every hole intersecting [off, off+len), block-granular. *)
let ensure_backing t cpu txn f ~off ~len ~zero =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let cur = ref lo in
  while !cur < hi do
    match lookup_run f ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match next_mapped f ~file_off:(!cur + 1) with
          | Some o -> min hi o
          | None -> hi
        in
        allocate_range t cpu txn f ~file_off:!cur ~len:(hole_end - !cur) ~zero;
        cur := hole_end
  done

(* Large allocations run one bounded journal transaction per ~48MB
   segment (each extent record is a journal entry). *)
let ensure_backing_batched t cpu f ~off ~len ~zero =
  let seg = 48 * Units.mib in
  let cur = ref off in
  while !cur < off + len do
    let n = min seg (off + len - !cur) in
    Txn.with_txn t.txns cpu ~reserve:150 (fun txn ->
        ensure_backing t cpu txn f ~off:!cur ~len:n ~zero);
    cur := !cur + n
  done

(* Is the backing record an aligned-pool extent (data-journaling
   territory) or a hole (copy-on-write territory)?  §3.5 — decided by
   provenance. *)
let backed_aligned (f : Inode.file) ~file_off =
  match Int_map.find_last_leq f.records file_off with
  | Some (o, (r : Inode.record)) when o + r.len > file_off -> r.asrc
  | _ -> false

(* Strict-mode overwrite of a fully-backed range, journaled inside the
   caller's transaction so the enclosing system call stays atomic.
   Returns the physical runs to free after commit (from CoW swaps). *)
let overwrite_in_txn t cpu txn (f : Inode.file) ~off ~src ~src_off ~len =
  let freed_acc = ref [] in
  let cur = ref 0 in
  while !cur < len do
    let file_off = off + !cur in
    let phys, run =
      match lookup_run f ~file_off with Some pr -> pr | None -> assert false
    in
    let n = min (len - !cur) run in
    if backed_aligned f ~file_off then begin
      (* Data journaling: undo-log the old data, then write in place. *)
      Device.with_site t.dev site_data_journal (fun () ->
          Txn.log_range t.txns cpu txn ~addr:phys ~len:n;
          Device.write_nt t.dev cpu ~off:phys ~src ~src_off:(src_off + !cur) ~len:n;
          Device.fence t.dev cpu);
      Counters.add t.counters "fs.data_journal_bytes" n
    end
    else begin
      (* Copy-on-write into fresh holes: block-align the replaced range,
         preserve untouched head/tail bytes, then swap the records. *)
      let blo = Units.round_down file_off block in
      let bhi =
        min
          (Units.round_up (file_off + n) block)
          (Units.round_up (max f.size (file_off + n)) block)
      in
      let cow_len = bhi - blo in
      let exts =
        match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:cow_len ~prefer_aligned:false with
        | Some exts -> exts
        | None -> Types.err ENOSPC "CoW allocation of %d bytes" cow_len
      in
      let write_piece (e : Alloc.extent) ~piece_file_off =
        Device.with_site t.dev site_cow @@ fun () ->
        let ov_lo = max piece_file_off file_off
        and ov_hi = min (piece_file_off + e.len) (file_off + n) in
        (* Preserve only the block edges the new data does not cover. *)
        let rec preserve cur stop =
          if cur < stop then begin
            match lookup_run f ~file_off:cur with
            | Some (old_phys, old_run) ->
                let m = min (stop - cur) old_run in
                Device.copy_within_nt t.dev cpu ~src:old_phys
                  ~dst:(e.off + (cur - piece_file_off)) ~len:m;
                preserve (cur + m) stop
            | None ->
                Device.memset_nt t.dev cpu ~off:(e.off + (cur - piece_file_off))
                  ~len:(stop - cur) '\000'
          end
        in
        preserve piece_file_off (min ov_lo (piece_file_off + e.len));
        preserve (max ov_hi piece_file_off) (piece_file_off + e.len);
        if ov_hi > ov_lo then
          Device.write_nt t.dev cpu ~off:(e.off + (ov_lo - piece_file_off)) ~src
            ~src_off:(src_off + !cur + (ov_lo - file_off)) ~len:(ov_hi - ov_lo);
        Device.fence t.dev cpu
      in
      let pf = ref blo in
      List.iter
        (fun (e : Alloc.extent) ->
          Device.annotate t.dev (Fresh { addr = e.off; len = e.len });
          write_piece e ~piece_file_off:!pf;
          pf := !pf + e.len)
        exts;
      let freed, _ = Extent_map.remove_records t.map cpu txn f ~file_off:blo ~len:cow_len in
      freed_acc := freed @ !freed_acc;
      let pf = ref blo in
      List.iter
        (fun (e : Alloc.extent) ->
          Extent_map.add_record t.map cpu txn f ~file_off:!pf ~phys:e.off ~len:e.len
            ~asrc:false;
          pf := !pf + e.len)
        exts;
      Counters.add t.counters "fs.cow_bytes" cow_len
    end;
    cur := !cur + n
  done;
  !freed_acc

(* A write fits the single-transaction atomic path when its journal needs
   (undo copy bytes for aligned overwrites, entry slots for record churn)
   fit one transaction.  Larger writes fall back to a sequence of bounded
   transactions — each atomic, the whole write not (documented deviation;
   the paper bounds transactions at 640B of entries plus the copy area). *)
let fits_one_txn t f ~off ~len =
  len <= Txn.copy_capacity t.txns
  &&
  (* Count records the overlap touches — bounded scan. *)
  let stop = min (off + len) f.Inode.size in
  let rec count cur acc =
    if cur >= stop || acc > 50 then acc
    else
      match lookup_run f ~file_off:cur with
      | Some (_, run) -> count (cur + run) (acc + 1)
      | None -> (
          match next_mapped f ~file_off:(cur + 1) with
          | Some o -> count o (acc + 1)
          | None -> acc)
  in
  count off 0 <= 50

(* Hole ranges of [f] intersecting the block-aligned span of a write:
   after allocation, any part of these outside the written range must be
   zeroed or reads would see the blocks' previous contents. *)
let holes_in f ~off ~len =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let holes = ref [] in
  let cur = ref lo in
  while !cur < hi do
    match lookup_run f ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match next_mapped f ~file_off:(!cur + 1) with Some o -> min hi o | None -> hi
        in
        holes := (!cur, hole_end) :: !holes;
        cur := hole_end
  done;
  !holes

let zero_uncovered t cpu f holes ~off ~len =
  Device.with_site t.dev site_zero @@ fun () ->
  List.iter
    (fun (h_lo, h_hi) ->
      let zero_range lo hi =
        let cur = ref lo in
        while !cur < hi do
          match lookup_run f ~file_off:!cur with
          | Some (phys, run) ->
              let n = min (hi - !cur) run in
              Device.memset_nt t.dev cpu ~off:phys ~len:n '\000';
              cur := !cur + n
          | None -> cur := hi
        done
      in
      if h_lo < off then zero_range h_lo (min off h_hi);
      if h_hi > off + len then zero_range (max (off + len) h_lo) h_hi)
    holes

let pwrite t cpu (f : Inode.file) ~off ~src ~src_off ~len =
  if src_off < 0 || len < 0 || src_off + len > String.length src then
    Types.err EINVAL "pwrite outside src bounds";
  if len = 0 then 0
  else begin
    if off < 0 then Types.err EINVAL "negative offset";
    Sched.with_lock f.lock (fun () ->
        let pre_holes = holes_in f ~off ~len in
        let src_b = Bytes.unsafe_of_string src in
        let write_extension () =
          Device.with_site t.dev site_data @@ fun () ->
          (* Pure extension data: no old contents to protect; data lands
             before the size bump commits. *)
          let old_size = f.size in
          let ext_lo = max off (min (off + len) old_size) in
          let cur = ref ext_lo in
          while !cur < off + len do
            let phys, run = Option.get (lookup_run f ~file_off:!cur) in
            let n = min (off + len - !cur) run in
            Device.write_nt t.dev cpu ~off:phys ~src:src_b
              ~src_off:(src_off + (!cur - off)) ~len:n;
            cur := !cur + n
          done;
          if off + len > ext_lo then
            if strict t then Device.fence t.dev cpu
            else f.dirty_bytes <- f.dirty_bytes + (off + len - ext_lo)
        in
        let overlap_hi = min (off + len) f.size in
        if strict t && fits_one_txn t f ~off ~len then begin
          (* The whole system call is one journal transaction (§3.6). *)
          let freed = ref [] in
          Txn.with_txn t.txns cpu ~reserve:200 (fun txn ->
              ensure_backing t cpu txn f ~off ~len ~zero:false;
              zero_uncovered t cpu f pre_holes ~off ~len;
              if overlap_hi > off then
                freed :=
                  overwrite_in_txn t cpu txn f ~off ~src:src_b ~src_off
                    ~len:(overlap_hi - off);
              write_extension ();
              if off + len > f.size then begin
                f.size <- off + len;
                Inode.persist_size t.inodes cpu txn f
              end);
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed
        end
        else if (not (strict t)) && len <= 16 * Units.mib then begin
          (* Relaxed-mode fast path: allocation, in-place data, and the
             size bump share one journal transaction (fine-grained
             journaling, §3.5). *)
          let freed = ref [] in
          Txn.with_txn t.txns cpu ~reserve:150 (fun txn ->
              ensure_backing t cpu txn f ~off ~len ~zero:false;
              zero_uncovered t cpu f pre_holes ~off ~len;
              if overlap_hi > off then
                Device.with_site t.dev site_data (fun () ->
                    let cur = ref off in
                    while !cur < overlap_hi do
                      let phys, run = Option.get (lookup_run f ~file_off:!cur) in
                      let n = min (overlap_hi - !cur) run in
                      Device.write_nt t.dev cpu ~off:phys ~src:src_b
                        ~src_off:(src_off + (!cur - off)) ~len:n;
                      f.dirty_bytes <- f.dirty_bytes + n;
                      cur := !cur + n
                    done);
              write_extension ();
              if off + len > f.size then begin
                f.size <- off + len;
                Inode.persist_size t.inodes cpu txn f
              end);
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed
        end
        else begin
          (* Large or heavily fragmented write: bounded transactions. *)
          ensure_backing_batched t cpu f ~off ~len ~zero:false;
          zero_uncovered t cpu f pre_holes ~off ~len;
          if strict t && overlap_hi > off then begin
            let cap = Txn.copy_capacity t.txns in
            let cur = ref off in
            while !cur < overlap_hi do
              let piece = min cap (overlap_hi - !cur) in
              let freed = ref [] in
              Txn.with_txn t.txns cpu ~reserve:200 (fun txn ->
                  freed :=
                    overwrite_in_txn t cpu txn f ~off:!cur ~src:src_b
                      ~src_off:(src_off + (!cur - off)) ~len:piece);
              List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed;
              cur := !cur + piece
            done
          end
          else if overlap_hi > off then
            (* Relaxed: in-place, durable at fsync. *)
            Device.with_site t.dev site_data (fun () ->
                let cur = ref off in
                while !cur < overlap_hi do
                  let phys, run = Option.get (lookup_run f ~file_off:!cur) in
                  let n = min (overlap_hi - !cur) run in
                  Device.write_nt t.dev cpu ~off:phys ~src:src_b
                    ~src_off:(src_off + (!cur - off)) ~len:n;
                  f.dirty_bytes <- f.dirty_bytes + n;
                  cur := !cur + n
                done);
          write_extension ();
          if off + len > f.size then begin
            f.size <- off + len;
            Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_size t.inodes cpu txn f)
          end
        end);
    Counters.add t.counters "fs.write_bytes" len;
    len
  end

let pread t cpu (f : Inode.file) ~off ~len =
  if off < 0 || len < 0 then Types.err EINVAL "bad range";
  let len = max 0 (min len (f.size - off)) in
  if len = 0 then ""
  else begin
    let dst = Bytes.make len '\000' in
    let cur = ref off in
    while !cur < off + len do
      match lookup_run f ~file_off:!cur with
      | Some (phys, run) ->
          let n = min (off + len - !cur) run in
          (try Device.read t.dev cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off)
           with Device.Media_error { off = bad } ->
             (* Simulated MCE: never return made-up bytes — the read is
                refused with EIO, as a DAX read of a poisoned line would
                be. *)
             Degraded.count_fault t.counters "fault.detected" 1;
             Degraded.count_fault t.counters "fault.refused" 1;
             Types.err EIO "media error at %#x reading ino %d" bad f.ino);
          cur := !cur + n
      | None ->
          (* Hole: zeros. *)
          let hole_end =
            match next_mapped f ~file_off:(!cur + 1) with
            | Some o -> min (off + len) o
            | None -> off + len
          in
          cur := hole_end
    done;
    Counters.add t.counters "fs.read_bytes" len;
    Bytes.unsafe_to_string dst
  end

let fsync t cpu (f : Inode.file) =
  if not (strict t) && f.dirty_bytes > 0 then begin
    let lines = (f.dirty_bytes + Units.cacheline - 1) / Units.cacheline in
    Simclock.advance cpu.Cpu.clock
      (int_of_float ((Device.cost t.dev).flush_ns *. float_of_int lines));
    Device.with_site t.dev site_fsync (fun () -> Device.fence t.dev cpu);
    f.dirty_bytes <- 0
  end

let fallocate t cpu (f : Inode.file) ~off ~len =
  if off < 0 || len <= 0 then Types.err EINVAL "bad range";
  Sched.with_lock f.lock (fun () ->
      (* WineFS zeroes at allocation time so page faults only build
         mappings (§5.4 PmemKV discussion). *)
      ensure_backing_batched t cpu f ~off ~len ~zero:true;
      if off + len > f.size then begin
        f.size <- off + len;
        Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_size t.inodes cpu txn f)
      end)

let ftruncate t cpu (f : Inode.file) new_size =
  if new_size < 0 then Types.err EINVAL "negative size";
  Sched.with_lock f.lock (fun () ->
      if new_size < f.size then begin
        let lo = Units.round_up new_size block in
        let old_size = f.size in
        f.size <- new_size;
        Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_size t.inodes cpu txn f);
        if old_size > lo then
          Extent_map.remove_records_batched t.map cpu f ~file_off:lo ~len:(old_size - lo);
        (* Zero the mapped tail of the last block so a later size extension
           reads zeros, per POSIX. *)
        (if lo > new_size then
           match lookup_run f ~file_off:new_size with
           | Some (phys, run) ->
               Device.with_site t.dev site_zero (fun () ->
                   Device.memset_nt t.dev cpu ~off:phys ~len:(min run (lo - new_size)) '\000';
                   Device.fence t.dev cpu)
           | None -> ())
      end
      else if new_size > f.size then begin
        (* Sparse extension: no allocation (LMDB relies on this). *)
        f.size <- new_size;
        Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_size t.inodes cpu txn f)
      end)

let truncate_on_open t cpu (f : Inode.file) =
  Sched.with_lock f.lock (fun () ->
      let old_size = f.size in
      f.size <- 0;
      Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_header t.inodes cpu txn f);
      Extent_map.remove_records_batched t.map cpu f ~file_off:0 ~len:old_size)

(* The hugepage-aware fault path (§3.6). *)
let fault t ~read_only ~enqueue ino : Vmem.backing =
 fun cpu ~file_off ~huge_ok ->
  let f = Inode.find t.inodes ino in
  if huge_ok then begin
    match Extent_map.chunk_huge_phys f ~chunk_off:file_off with
    | Some phys -> Vmem.Huge phys
    | None ->
        let covered = Option.is_some (lookup_run f ~file_off) in
        if covered then begin
          (* Unaligned or fragmented backing: fall back to base pages,
             and queue the file for reactive rewriting (§3.6). *)
          enqueue ino;
          match lookup_run f ~file_off with
          | Some (phys, run) when run >= block -> Vmem.Base phys
          | _ -> Vmem.Sigbus
        end
        else if read_only () then Vmem.Sigbus
          (* degraded: faulting a hole would allocate — refuse *)
        else begin
          (* Hole: allocate a whole aligned extent at fault time so the
             chunk maps as a hugepage (LMDB-style sparse files win here). *)
          match Alloc.alloc_hugepage t.alloc ~cpu:(acpu t cpu) with
          | Some phys ->
              Alloc.zero_extents t.dev cpu [ { Alloc.off = phys; len = huge } ];
              Sched.with_lock f.lock (fun () ->
                  Txn.with_txn t.txns cpu ~reserve:4 (fun txn ->
                      Extent_map.add_record t.map cpu txn f ~file_off ~phys ~len:huge
                        ~asrc:true));
              Counters.incr t.counters "fs.fault_huge_allocs";
              Vmem.Huge phys
          | None -> (
              (* No aligned extents left: 4K on demand. *)
              match
                Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:block ~prefer_aligned:false
              with
              | Some [ ext ] ->
                  Alloc.zero_extents t.dev cpu [ ext ];
                  Sched.with_lock f.lock (fun () ->
                      Txn.with_txn t.txns cpu ~reserve:4 (fun txn ->
                          Extent_map.add_record t.map cpu txn f ~file_off ~phys:ext.off
                            ~len:block ~asrc:false));
                  Vmem.Base ext.off
              | _ -> Vmem.Sigbus)
        end
  end
  else begin
    match lookup_run f ~file_off with
    | Some (phys, _) -> Vmem.Base phys
    | None when read_only () -> Vmem.Sigbus
    | None -> (
        match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:block ~prefer_aligned:false with
        | Some [ ext ] ->
            Alloc.zero_extents t.dev cpu [ ext ];
            Sched.with_lock f.lock (fun () ->
                Txn.with_txn t.txns cpu ~reserve:4 (fun txn ->
                    Extent_map.add_record t.map cpu txn f ~file_off ~phys:ext.off ~len:block
                      ~asrc:false));
            Vmem.Base ext.off
        | _ -> Vmem.Sigbus)
  end
