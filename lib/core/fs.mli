(** WineFS — the paper's hugepage-aware PM file system (§3).

    Implements the common file-system interface ({!Repro_vfs.Fs_intf.S})
    plus WineFS-specific facilities: the reactive rewriter (§3.6) and its
    queue.  See the implementation for the design commentary; DESIGN.md
    maps each mechanism to the paper section it reproduces. *)

type t

include Repro_vfs.Fs_intf.S with type t := t

val run_rewriter : t -> Repro_util.Cpu.t -> int
(** One pass of the background rewriter (§3.6 "Reactively rewriting a
    file"): every queued fragmented file that is not currently open is
    copied into freshly-allocated aligned extents under a new inode, and
    one journal transaction atomically deletes the old file and re-points
    the directory entry.  Returns the number of files rewritten. *)

val rewrite_queue_length : t -> int
(** Files queued for rewriting (queued by the fault path when it finds a
    fragmented memory-mapped file). *)

val read_only : t -> bool
(** Did the mount-time scrub degrade this mount to read-only?  True when
    corruption was detected that could not be repaired from a redundant
    copy (superblock replica, journal rollback); every mutating operation
    then fails with [EROFS], and reads of refused objects fail with
    [EIO].  Scrub activity is counted under the [fault.detected] /
    [fault.repaired] / [fault.refused] counters. *)

val refused_inodes : t -> int
(** Inodes the scrub refused (corrupt header, poisoned extent metadata or
    directory blocks); accessing one fails with [EIO]. *)
