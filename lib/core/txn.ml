open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Journal = Repro_journal.Undo_journal

let site_meta = Site.v "core" "meta"

type slot = {
  journal : Journal.t;
  lock : Sched.mutex;
  mutable active : bool; (* an uncommitted transaction is open on this slot *)
}

type t = {
  dev : Device.t;
  cpus : int;
  counter : Journal.Txn_counter.t;
  slots : slot array;
}

type txn = Journal.txn

let slot_of t (cpu : Cpu.t) = t.slots.(cpu.id mod t.cpus)

let make dev cpus counter journals =
  {
    dev;
    cpus;
    counter;
    slots =
      Array.map
        (fun j -> { journal = j; lock = Sched.create_mutex ~name:"txn:s.lock" (); active = false })
        journals;
  }

let format dev cpu (layout : Layout.t) =
  let counter = Journal.Txn_counter.create () in
  let journals =
    Array.init layout.cpus (fun c ->
        Journal.format dev cpu counter ~off:layout.journal_off.(c)
          ~entries:layout.journal_entries ~copy_bytes:layout.journal_copy_bytes)
  in
  make dev layout.cpus counter journals

let attach dev (layout : Layout.t) =
  let counter = Journal.Txn_counter.create () in
  let journals =
    try
      Array.init layout.cpus (fun c ->
          Journal.attach dev counter ~off:layout.journal_off.(c)
            ~entries:layout.journal_entries ~copy_bytes:layout.journal_copy_bytes)
    with
    | Device.Media_error { off } ->
        (* A poisoned journal header leaves no cursor to recover from. *)
        Types.err EIO "journal header unreadable (media error at %#x)" off
    | Invalid_argument _ -> Types.err EIO "journal header corrupt (bad magic)"
  in
  make dev layout.cpus counter journals

type recovery = { refused_journals : int; csum_failures : int }

(* Roll back unfinished transactions in descending global txn-id order
   (§3.6 "Journal Recovery"). *)
let recover t cpu =
  let refused = ref 0 in
  let pendings =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           match Journal.Recovery.scan_pending s.journal cpu with
           | p -> Option.map (fun p -> (s.journal, p)) p
           | exception Device.Media_error _ ->
               (* Poisoned journal area: recovery for this CPU's journal is
                  impossible — refuse it and degrade rather than guess. *)
               incr refused;
               None)
    |> List.sort (fun (_, a) (_, b) ->
           Int.compare b.Journal.Recovery.txn_id a.Journal.Recovery.txn_id)
  in
  List.iter (fun (j, p) -> Journal.Recovery.rollback_pending j cpu p) pendings;
  Array.iter (fun s -> Journal.Recovery.reset s.journal cpu) t.slots;
  let csum =
    Array.fold_left (fun acc s -> acc + Journal.Recovery.csum_failures s.journal) 0 t.slots
  in
  { refused_journals = !refused; csum_failures = csum }

let with_txn t cpu ~reserve body =
  let s = slot_of t cpu in
  (* Outside a scheduler run the lock degrades to free acquisition, so a
     nested with_txn on the same journal is definite misuse (inside a run
     the lock serialises the second transaction instead). *)
  if s.active && not (Sched.running ()) then
    invalid_arg "Txn.with_txn: nested transaction on this CPU's journal";
  Sched.with_lock s.lock (fun () ->
      s.active <- true;
      Fun.protect
        ~finally:(fun () -> s.active <- false)
        (fun () ->
          let txn = Journal.begin_txn s.journal cpu ~reserve in
          match body txn with
          | v ->
              Journal.commit s.journal cpu txn;
              v
          | exception e ->
              Journal.abort s.journal cpu txn;
              raise e))

let log_range t cpu txn ~addr ~len = Journal.log_range (slot_of t cpu).journal cpu txn ~addr ~len

(* Journaled in-place metadata write: undo-log the old bytes (persisted by
   the journal), then update in place with a flush only — the transaction
   commit fences all in-place lines before the COMMIT entry persists
   (§3.4 "Crash Consistency: Journaling"). *)
let meta_write t cpu txn ~addr (data : bytes) =
  Device.with_site t.dev site_meta @@ fun () ->
  let j = (slot_of t cpu).journal in
  Journal.log_range j cpu txn ~addr ~len:(Bytes.length data);
  Device.write t.dev cpu ~off:addr ~src:data ~src_off:0 ~len:(Bytes.length data);
  Device.flush t.dev cpu ~off:addr ~len:(Bytes.length data)

let copy_capacity t = Journal.copy_capacity t.slots.(0).journal
