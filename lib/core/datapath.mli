(** Data path: hybrid data atomicity (§3.5 "Data Atomicity: Hybrid
    Techniques") plus allocation of file data (§3.2 alignment-aware
    allocation) and zeroing.

    Strict-mode overwrites journal aligned-pool extents in place and
    copy-on-write hole extents — keyed on the record's provenance bit.
    Whole 2MB file chunks get aligned extents so they stay
    hugepage-mappable; writes that fit one journal transaction are atomic
    as a unit, larger ones fall back to a sequence of bounded
    transactions.  Also owns the hugepage-serving page-fault path (§3.6):
    faults on holes allocate whole aligned extents so the chunk maps as a
    hugepage.

    Callers (the {!Fs} facade) do fd lookup, permission checks, stats
    spans and the EROFS guard; every operation here takes the
    {!Inode.file} directly and handles its own locking, journaling and
    byte counters. *)

open Repro_util
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem

type t

val create :
  dev:Repro_pmem.Device.t -> cfg:Types.config -> txns:Txn.t -> inodes:Inode.t ->
  map:Extent_map.t -> alloc:Repro_alloc.Aligned_alloc.t -> counters:Counters.t -> t

val allocate_range :
  t -> Cpu.t -> Txn.txn -> Inode.file -> file_off:int -> len:int -> zero:bool -> unit
(** Allocate backing for the hole [file_off, file_off+len),
    chunk-aligned: whole 2MB file chunks get aligned extents, partial
    chunks get holes.  [zero] wipes the new extents (fallocate
    semantics). *)

val ensure_backing_batched :
  t -> Cpu.t -> Inode.file -> off:int -> len:int -> zero:bool -> unit
(** Backing for every hole intersecting [off, off+len), block-granular,
    one bounded journal transaction per ~48MB segment. *)

val pwrite : t -> Cpu.t -> Inode.file -> off:int -> src:string -> src_off:int -> len:int -> int
val pread : t -> Cpu.t -> Inode.file -> off:int -> len:int -> string
val fsync : t -> Cpu.t -> Inode.file -> unit
(** Strict mode is synchronous: nothing to do.  Relaxed mode flushes the
    file's dirty data (modelled as flush cost over the dirty volume). *)

val fallocate : t -> Cpu.t -> Inode.file -> off:int -> len:int -> unit
(** Zeroes at allocation time so page faults only build mappings (§5.4). *)

val ftruncate : t -> Cpu.t -> Inode.file -> int -> unit
val truncate_on_open : t -> Cpu.t -> Inode.file -> unit
(** The [O_TRUNC] path: drop the contents in bounded transactions. *)

val fault :
  t -> read_only:(unit -> bool) -> enqueue:(int -> unit) -> int -> Vmem.backing
(** The hugepage-aware fault handler for the file with the given inode
    number (§3.6): aligned 2MB-covered chunks map as hugepages; covered
    but fragmented chunks fall back to base pages and [enqueue] the file
    for reactive rewriting; holes allocate at fault time (a whole
    aligned extent when possible) unless the mount is degraded. *)
