(** Transaction layer: per-CPU undo journaling (§3.4 "Crash Consistency:
    Journaling", §3.6 "Journal Recovery").

    One {!Repro_journal.Undo_journal} per logical CPU, a shared global
    transaction-id counter, and the [with_txn] reserve/commit/abort
    protocol.  This module is the {e only} way core code touches
    [Undo_journal] (enforced by the @archcheck alias): every journaled
    metadata mutation goes through {!with_txn} + {!meta_write} /
    {!log_range}, and mount-time recovery goes through {!attach} +
    {!recover}.  The per-CPU journal lock serialises same-CPU
    transactions; inode locks (taken by callers) guarantee one
    uncommitted transaction per file. *)

open Repro_util

type t
(** The journal set: one undo journal + lock per logical CPU. *)

type txn
(** An open transaction on the caller's per-CPU journal. *)

val format : Repro_pmem.Device.t -> Cpu.t -> Layout.t -> t
(** Initialise empty per-CPU journals at the layout's journal offsets,
    with a fresh shared transaction-id counter. *)

val attach : Repro_pmem.Device.t -> Layout.t -> t
(** Bind to existing journals without recovery.  Raises [EIO] when a
    journal header is unreadable (media error) or fails its magic
    check. *)

type recovery = {
  refused_journals : int;
      (** journals whose pending-scan hit a media error: recovery for
          that CPU's journal is impossible — refused, mount degrades *)
  csum_failures : int;
      (** entries rejected by CRC across all journals: each is a
          detected corruption whose transaction was demoted to
          uncommitted and rolled back — a repair *)
}

val recover : t -> Cpu.t -> recovery
(** Mount phase 1 (§3.6): scan every journal for its unfinished
    transaction and roll the survivors back in descending global txn-id
    order, then reset all journals. *)

val with_txn : t -> Cpu.t -> reserve:int -> (txn -> 'a) -> 'a
(** Run the body inside a transaction reserving at most [reserve] journal
    entries: begin, run, commit — or abort (rolling back every in-place
    write the body logged) when the body raises.  Raises
    [Invalid_argument] on nested use of the same CPU's journal outside a
    scheduler run (inside a run the journal lock serialises instead). *)

val log_range : t -> Cpu.t -> txn -> addr:int -> len:int -> unit
(** Undo-log the current contents of [addr, addr+len) before an in-place
    update (used by the data-journaling write path, §3.5). *)

val meta_write : t -> Cpu.t -> txn -> addr:int -> bytes -> unit
(** Journaled in-place metadata write under the ["core"/"meta"] site:
    undo-log the old bytes (persisted by the journal), then update in
    place with a flush only — the transaction commit fences all in-place
    lines before the COMMIT entry persists (§3.4). *)

val copy_capacity : t -> int
(** Per-transaction undo copy-area capacity (bounds one-transaction data
    journaling, §3.5). *)
