(** WineFS on-PM layout (Figure 5).

    The partition is carved into a superblock, per-CPU journals, per-CPU
    inode tables, a free-list serialization area (written on clean
    unmount), and per-CPU data stripes whose starts are 2MB-aligned so
    every stripe is a supply of aligned extents. *)

type t = {
  size : int;
  cpus : int;
  inodes_per_cpu : int;
  journal_entries : int;
  journal_copy_bytes : int;
  sb_off : int;
  journal_off : int array;  (** per CPU *)
  inode_table_off : int array;  (** per CPU *)
  serial_off : int;
  serial_len : int;
  meta_pool_off : int;
  meta_pool_len : int;
      (** dedicated metadata region (dentry blocks, extent-overflow
          blocks): §3.4 "controlled fragmentation" — small metadata never
          breaks up data-area aligned extents *)
  data_off : int;
  stripes : (int * int) array;  (** per-CPU data stripe (off, len) *)
}

val inode_bytes : int
(** 256. *)

val sb_replica_off : int
(** Device offset of the superblock replica (2048): the second half of the
    4K superblock page, so mount can repair either copy from the other. *)

val inline_extents : int
(** Extents stored inline in the inode (8); more spill to overflow blocks. *)

val compute : size:int -> cpus:int -> inodes_per_cpu:int -> t
(** Derive a layout.  [inodes_per_cpu] is clamped so that metadata never
    exceeds a quarter of the partition.  Raises [Invalid_argument] when
    the device is too small to hold any data. *)

val inode_off : t -> int -> int
(** Physical offset of an inode record by global inode number (1-based;
    see {!ino_of}). *)

val ino_of : t -> cpu:int -> idx:int -> int
val cpu_of_ino : t -> int -> int
val idx_of_ino : t -> int -> int
val max_ino : t -> int

val in_meta_pool : t -> off:int -> len:int -> bool
(** Does [off, off+len) lie entirely inside the metadata pool? *)

val in_data_area : t -> off:int -> len:int -> bool
(** Does [off, off+len) lie entirely inside the data area? *)
