(** WineFS — the paper's hugepage-aware PM file system (§3).

    Hugepage-awareness comes from five cooperating mechanisms, all here:
    the alignment-aware allocator ({!Repro_alloc.Aligned_alloc}), a PM
    layout with contained fragmentation (fixed per-CPU journal and inode
    regions, {!Layout}), per-CPU undo journaling for metadata
    ({!Repro_journal.Undo_journal}), hybrid data atomicity (data
    journaling for aligned extents, copy-on-write for holes), and
    hugepage-serving page-fault handling in {!mmap_backing}. *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Path = Repro_vfs.Path
module Dir_index = Repro_vfs.Dir_index
module Fd_table = Repro_vfs.Fd_table
module Cost = Repro_vfs.Fs_intf.Cost
module Journal = Repro_journal.Undo_journal
module Alloc = Repro_alloc.Aligned_alloc
module Int_map = Repro_rbtree.Rbtree.Int_map
module Stats = Repro_stats.Stats

let name = "WineFS"
let huge = Units.huge_page
let block = Units.base_page

(* Durability-lint site labels (see {!Repro_sanitizer}): every PM access
   below carries the layer and operation that issued it. *)
module Site = Repro_pmem.Site

let site_meta = Site.v "core" "meta"
let site_meta_block = Site.v "core" "meta-block"
let site_inode_init = Site.v "core" "inode-init"
let site_sb = Site.v "core" "superblock"
let site_serial = Site.v "core" "serial"
let site_format = Site.v "core" "format"
let site_data = Site.v "core" "data"
let site_data_journal = Site.v "core" "data-journal"
let site_cow = Site.v "core" "cow"
let site_zero = Site.v "core" "zero"
let site_rewrite = Site.v "core" "rewrite"
let site_mount = Site.v "core" "mount"

(* One live extent record: a slot in the inode's persistent extent list
   (inline slots 0-7, then overflow blocks) plus its mapping.  [asrc]
   remembers whether the extent came from the aligned pool — the hybrid
   data-atomicity policy journals aligned-pool extents and copies-on-write
   hole extents (§3.4), keyed on provenance, not incidental alignment. *)
type record = { slot : int; phys : int; len : int; asrc : bool }

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  mutable xattr_align : bool;
  mutable parent : int; (* directory containing this node (DRAM only) *)
  mutable dname : string; (* name under [parent] (DRAM only) *)
  records : record Int_map.t; (* file_off -> record, non-overlapping *)
  mutable free_slots : int list;
  mutable slot_cap : int; (* slots available without a new overflow block *)
  mutable overflow : int list; (* overflow block phys addrs, chain order *)
  mutable dir : Dir_index.t option; (* dirs: name -> (ino, dentry slot phys) *)
  mutable free_dentries : int list; (* dirs: free dentry slot phys offsets *)
  lock : Sched.mutex;
  mutable dirty_bytes : int; (* relaxed mode: unflushed data *)
}

type per_cpu = {
  journal : Journal.t;
  journal_lock : Sched.mutex;
  mutable free_inodes : int list; (* inode idx free list *)
}

type t = {
  dev : Device.t;
  cfg : Types.config;
  layout : Layout.t;
  alloc : Alloc.t;
  meta_free : Repro_rbtree.Extent_tree.t;
      (* free 4K blocks of the dedicated metadata region (§3.4) *)
  pcpu : per_cpu array;
  files : (int, file) Hashtbl.t;
  fds : Fd_table.t;
  counters : Counters.t;
  txn_counter : Journal.Txn_counter.t;
  mutable rewrite_queue : int list; (* inos queued for reactive rewriting *)
  mutable recovery_ns : int;
  mutable read_only : bool;
      (* degraded mount: corruption was detected that could not be
         repaired; every mutating operation fails with EROFS *)
  bad_inos : (int, string) Hashtbl.t; (* ino -> why it was refused *)
}

(* fault.* counters: detections/repairs/refusals observed by the scrub and
   by read paths hitting poisoned lines.  Mirrored into the global stats
   registry so bench artifacts and [winefs_cli stats] surface them. *)
let count_fault t name n =
  if n > 0 then begin
    Counters.add t.counters name n;
    if Stats.enabled () then Stats.counter_add name n
  end

let require_writable t =
  if t.read_only then
    Types.err EROFS "file system is degraded (mounted read-only after media errors)"

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let jcpu t (cpu : Cpu.t) = t.pcpu.(cpu.id mod t.cfg.cpus)
let acpu t (cpu : Cpu.t) = cpu.id mod t.cfg.cpus

let inode_addr t ino = Layout.inode_off t.layout ino

(* PM address of an extent slot. *)
let slot_addr t f slot =
  if slot < Layout.inline_extents then inode_addr t f.ino + Codec.Inode.extent_slot_off slot
  else begin
    let s = slot - Layout.inline_extents in
    let blk = List.nth f.overflow (s / Codec.Overflow.capacity) in
    blk + Codec.Overflow.record_off (s mod Codec.Overflow.capacity)
  end

let header_of f =
  {
    Codec.Inode.valid = true;
    is_dir = f.kind = Types.Directory;
    xattr_align = f.xattr_align;
    size = f.size;
    nlink = f.nlink;
    extent_count = Int_map.size f.records;
    overflow = (match f.overflow with b :: _ -> b | [] -> 0);
  }

(* Journaled in-place metadata write: undo-log the old bytes (persisted by
   the journal), then update in place with a flush only — the transaction
   commit fences all in-place lines before the COMMIT entry persists
   (§3.4 "Crash Consistency: Journaling"). *)
let meta_write t cpu txn ~addr (data : bytes) =
  Device.with_site t.dev site_meta @@ fun () ->
  let j = (jcpu t cpu).journal in
  Journal.log_range j cpu txn ~addr ~len:(Bytes.length data);
  Device.write t.dev cpu ~off:addr ~src:data ~src_off:0 ~len:(Bytes.length data);
  Device.flush t.dev cpu ~off:addr ~len:(Bytes.length data)

let persist_header t cpu txn f =
  meta_write t cpu txn ~addr:(inode_addr t f.ino) (Codec.Inode.encode_header (header_of f))

(* Size-only update: the fine-grained journaling that keeps WineFS's
   append path cheap (§3.5) — two 8-byte in-place writes with inline undo
   entries (the size word at offset 8 and the checksum word at 56), not a
   full header re-journal.  The checksum is recomputed over the header's
   current device bytes so fields this path does not touch (extent_count
   may lag the record map until the next full header persist) stay
   covered exactly as stored. *)
let persist_size t cpu txn f =
  let addr = inode_addr t f.ino in
  let hdr = Bytes.create Codec.Inode.header_bytes in
  Device.read t.dev cpu ~off:addr ~len:Codec.Inode.header_bytes ~dst:hdr ~dst_off:0;
  Bytes.set_int64_le hdr 8 (Int64.of_int f.size);
  Crc32c.set_zeroed hdr ~off:0 ~len:Codec.Inode.header_bytes ~csum_off:Codec.Inode.csum_off;
  meta_write t cpu txn ~addr:(addr + 8) (Bytes.sub hdr 8 8);
  meta_write t cpu txn ~addr:(addr + Codec.Inode.csum_off)
    (Bytes.sub hdr Codec.Inode.csum_off 8)

let asrc_bit = 1 lsl 62

let persist_slot t cpu txn f ~slot ~file_off ~phys ~len ~asrc =
  let len_field = if asrc then len lor asrc_bit else len in
  meta_write t cpu txn ~addr:(slot_addr t f slot)
    (Codec.Inode.encode_extent ~file_off ~phys ~len:len_field)

(* Run [body] inside a journal transaction on the caller's per-CPU journal.
   The journal lock serialises same-CPU transactions; inode locks (taken by
   callers) guarantee one uncommitted transaction per file (§3.6). *)
let with_txn t cpu ~reserve body =
  let pc = jcpu t cpu in
  Sched.with_lock pc.journal_lock (fun () ->
      let txn = Journal.begin_txn pc.journal cpu ~reserve in
      match body txn with
      | v ->
          Journal.commit pc.journal cpu txn;
          v
      | exception e ->
          Journal.abort pc.journal cpu txn;
          raise e)

(* Race-detector annotations (see {!Repro_race}) for the file system's
   shared DRAM structures: the inode table, per-CPU inode free lists, the
   metadata-block pool and the rewrite queue.  These are the cross-CPU
   mutable state the per-CPU design is supposed to confine; the detector
   checks every access happens under a lock it can observe. *)
let note ~obj ~write ~site = if Sched.monitored () then Sched.access ~obj ~write ~site

let find_file t ino =
  note ~obj:"fs.files" ~write:false ~site:"fs.find_file";
  (match Hashtbl.find_opt t.bad_inos ino with
  | Some why -> Types.err EIO "inode %d refused by scrub: %s" ino why
  | None -> ());
  match Hashtbl.find_opt t.files ino with
  | Some f -> f
  | None -> Types.err EBADF "stale inode %d" ino

(* ------------------------------------------------------------------ *)
(* Metadata blocks: dedicated region, recycled in place (§3.4
   "controlled fragmentation").  Falls back to the hole pool only when
   the region is exhausted. *)

let in_meta_region t off =
  off >= t.layout.meta_pool_off && off < t.layout.meta_pool_off + t.layout.meta_pool_len

let alloc_meta_block t cpu =
  note ~obj:"fs.meta_free" ~write:true ~site:"fs.alloc_meta_block";
  match Repro_rbtree.Extent_tree.alloc_first_fit t.meta_free ~len:block with
  | Some off -> off
  | None -> (
      match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:block ~prefer_aligned:false with
      | Some [ e ] when e.len = block -> e.off
      | Some exts ->
          List.iter (fun (e : Alloc.extent) -> Alloc.free t.alloc ~off:e.off ~len:e.len) exts;
          Types.err ENOSPC "no space for a metadata block"
      | None -> Types.err ENOSPC "no space for a metadata block")

let free_any t ~off ~len =
  if in_meta_region t off then begin
    note ~obj:"fs.meta_free" ~write:true ~site:"fs.free_meta_block";
    Repro_rbtree.Extent_tree.insert_free t.meta_free ~off ~len
  end
  else Alloc.free t.alloc ~off ~len

(* ------------------------------------------------------------------ *)
(* Inode allocation                                                    *)

let alloc_ino t (cpu : Cpu.t) =
  let try_cpu c =
    let pc = t.pcpu.(c) in
    note ~obj:(Printf.sprintf "fs.inodes[%d]" c) ~write:true ~site:"fs.alloc_ino";
    match pc.free_inodes with
    | idx :: rest ->
        pc.free_inodes <- rest;
        Some (Layout.ino_of t.layout ~cpu:c ~idx)
    | [] -> None
  in
  let local = acpu t cpu in
  match try_cpu local with
  | Some ino -> Some ino
  | None ->
      let rec steal c =
        if c >= t.cfg.cpus then None
        else if c = local then steal (c + 1)
        else match try_cpu c with Some ino -> Some ino | None -> steal (c + 1)
      in
      steal 0

let release_ino t ino =
  let c = Layout.cpu_of_ino t.layout ino in
  note ~obj:(Printf.sprintf "fs.inodes[%d]" c) ~write:true ~site:"fs.release_ino";
  t.pcpu.(c).free_inodes <- Layout.idx_of_ino t.layout ino :: t.pcpu.(c).free_inodes

(* ------------------------------------------------------------------ *)
(* Extent records                                                      *)

(* Ensure a free slot exists, allocating an overflow block if needed
   (metadata blocks come from the hole pool: contained fragmentation). *)
let ensure_slot t cpu txn f =
  match f.free_slots with
  | s :: rest ->
      f.free_slots <- rest;
      s
  | [] ->
      if f.slot_cap < Layout.inline_extents then begin
        (* Inline slots not yet handed out. *)
        let s = f.slot_cap in
        f.slot_cap <- f.slot_cap + 1;
        s
      end
      else begin
        let blk = alloc_meta_block t cpu in
        (* Initialize-then-publish: the block is unreachable until the
           journaled pointer update below commits. *)
        Device.annotate t.dev (Fresh { addr = blk; len = block });
        Device.with_site t.dev site_meta_block (fun () ->
            Device.memset t.dev cpu ~off:blk ~len:block '\000';
            Device.persist t.dev cpu ~off:blk ~len:block);
        (* Link it at the tail of the chain (journaled pointer update). *)
        (match List.rev f.overflow with
        | [] ->
            f.overflow <- [ blk ];
            persist_header t cpu txn f
        | last :: _ ->
            f.overflow <- f.overflow @ [ blk ];
            meta_write t cpu txn ~addr:last (Codec.Overflow.encode_header ~next:blk ~count:0));
        let s = f.slot_cap in
        f.slot_cap <- f.slot_cap + Codec.Overflow.capacity;
        f.free_slots <- List.init (Codec.Overflow.capacity - 1) (fun i -> s + 1 + i);
        s
      end

(* Add a live extent, coalescing with an adjacent record when the tail of
   the file grows contiguously (common for appends).  Records merge only
   within the same provenance class. *)
let add_record t cpu txn f ~file_off ~phys ~len ~asrc =
  let merged =
    match Int_map.find_last_leq f.records (file_off - 1) with
    | Some (o, r) when o + r.len = file_off && r.phys + r.len = phys && r.asrc = asrc ->
        let r' = { r with len = r.len + len } in
        Int_map.insert f.records o r';
        persist_slot t cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys ~len:r'.len ~asrc;
        true
    | _ -> false
  in
  if not merged then begin
    let slot = ensure_slot t cpu txn f in
    Int_map.insert f.records file_off { slot; phys; len; asrc };
    persist_slot t cpu txn f ~slot ~file_off ~phys ~len ~asrc
  end

(* Remove record coverage of [file_off, file_off+len), at most [budget]
   records per call (journal transactions are bounded); returns the freed
   physical runs and whether coverage remains.  Boundary records are
   shrunk in place. *)
let remove_records ?(budget = max_int) t cpu txn f ~file_off ~len =
  let stop = file_off + len in
  let freed = ref [] in
  let removed = ref 0 in
  let continue_scan = ref true in
  while !continue_scan && !removed < budget do
    let hit =
      match Int_map.find_last_leq f.records (stop - 1) with
      | Some (o, r) when o + r.len > file_off -> Some (o, r)
      | _ -> None
    in
    match hit with
    | None -> continue_scan := false
    | Some (o, r) ->
        Int_map.remove f.records o;
        let cut_lo = max o file_off and cut_hi = min (o + r.len) stop in
        freed := (r.phys + (cut_lo - o), cut_hi - cut_lo) :: !freed;
        let head_len = cut_lo - o and tail_len = o + r.len - cut_hi in
        if head_len > 0 && tail_len > 0 then begin
          (* Split: reuse the slot for the head, new slot for the tail. *)
          Int_map.insert f.records o { r with len = head_len };
          persist_slot t cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys ~len:head_len
            ~asrc:r.asrc;
          let slot = ensure_slot t cpu txn f in
          let tail_phys = r.phys + (cut_hi - o) in
          Int_map.insert f.records cut_hi { slot; phys = tail_phys; len = tail_len; asrc = r.asrc };
          persist_slot t cpu txn f ~slot ~file_off:cut_hi ~phys:tail_phys ~len:tail_len
            ~asrc:r.asrc
        end
        else if head_len > 0 then begin
          Int_map.insert f.records o { r with len = head_len };
          persist_slot t cpu txn f ~slot:r.slot ~file_off:o ~phys:r.phys ~len:head_len
            ~asrc:r.asrc
        end
        else if tail_len > 0 then begin
          let tail_phys = r.phys + (cut_hi - o) in
          Int_map.insert f.records cut_hi { r with phys = tail_phys; len = tail_len };
          persist_slot t cpu txn f ~slot:r.slot ~file_off:cut_hi ~phys:tail_phys ~len:tail_len
            ~asrc:r.asrc
        end
        else begin
          (* Fully removed: zero the slot. *)
          meta_write t cpu txn ~addr:(slot_addr t f r.slot)
            (Bytes.make Codec.Inode.extent_bytes '\000');
          f.free_slots <- r.slot :: f.free_slots
        end;
        incr removed
  done;
  (!freed, !continue_scan)

(* Remove an arbitrarily fragmented range in bounded journal transactions,
   freeing extents as each commits.  A crash mid-way can leave the tail of
   the removed range already gone — acceptable for truncation, where that
   data was being discarded anyway. *)
let remove_records_batched t cpu f ~file_off ~len =
  let more = ref true in
  while !more do
    let freed, again =
      with_txn t cpu ~reserve:200 (fun txn ->
          remove_records ~budget:60 t cpu txn f ~file_off ~len)
    in
    List.iter (fun (o, l) -> free_any t ~off:o ~len:l) freed;
    more := again
  done

let lookup_run f ~file_off =
  match Int_map.find_last_leq f.records file_off with
  | Some (o, r) when o + r.len > file_off -> Some (r.phys + (file_off - o), o + r.len - file_off)
  | _ -> None

let next_mapped f ~file_off =
  match lookup_run f ~file_off with
  | Some _ -> Some file_off
  | None -> (
      match Int_map.find_first_geq f.records file_off with Some (o, _) -> Some o | None -> None)

(* The §2.2 hugepage condition for the 2MB chunk at [chunk_off]. *)
let chunk_huge_phys f ~chunk_off =
  match lookup_run f ~file_off:chunk_off with
  | Some (phys, run) when run >= huge && Units.is_aligned phys huge -> Some phys
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Allocation of file data                                             *)

(* Allocate backing for the hole [file_off, file_off+len), chunk-aligned:
   whole 2MB file chunks get aligned extents, partial chunks get holes.
   Records are inserted in one transaction per call.  [zero] wipes the new
   extents (fallocate semantics). *)
let allocate_range t cpu txn f ~file_off ~len ~zero =
  Counters.add t.counters "fs.alloc_bytes" len;
  let cpu_id = acpu t cpu in
  let alloc_one ~file_off ~len =
    (* Alignment-preserving files grow contiguously after their previous
       extent when possible (§3.6). *)
    let contig_after =
      if not f.xattr_align then None
      else
        match Int_map.find_last_leq f.records (file_off - 1) with
        | Some (o, r) when o + r.len = file_off -> Some (r.phys + r.len)
        | _ -> None
    in
    let exts =
      match Alloc.alloc ?contig_after t.alloc ~cpu:cpu_id ~len ~prefer_aligned:f.xattr_align with
      | Some exts -> exts
      | None -> Types.err ENOSPC "allocating %d bytes" len
    in
    let cur = ref file_off in
    List.iter
      (fun (e : Alloc.extent) ->
        if zero then Alloc.zero_extents t.dev cpu [ e ];
        (* Whole aligned 2MB chunks come from the aligned pool; everything
           else is hole-sourced (including xattr-aligned fronts). *)
        let asrc = e.len = huge && Units.is_aligned e.off huge in
        add_record t cpu txn f ~file_off:!cur ~phys:e.off ~len:e.len ~asrc;
        cur := !cur + e.len)
      exts
  in
  (* Split at 2MB file-chunk boundaries so whole chunks land on aligned
     extents and stay hugepage-mappable. *)
  let cur = ref file_off and stop = file_off + len in
  while !cur < stop do
    let chunk_end = min stop (Units.round_down !cur huge + huge) in
    let seg_end =
      if Units.is_aligned !cur huge then
        (* Take as many whole chunks as possible in one allocator call. *)
        let whole = Units.round_down (stop - !cur) huge in
        if whole > 0 then !cur + whole else chunk_end
      else chunk_end
    in
    alloc_one ~file_off:!cur ~len:(seg_end - !cur);
    cur := seg_end
  done

(* Backing for every hole intersecting [off, off+len), block-granular. *)
let ensure_backing t cpu txn f ~off ~len ~zero =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let cur = ref lo in
  while !cur < hi do
    match lookup_run f ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match next_mapped f ~file_off:(!cur + 1) with
          | Some o -> min hi o
          | None -> hi
        in
        allocate_range t cpu txn f ~file_off:!cur ~len:(hole_end - !cur) ~zero;
        cur := hole_end
  done

(* Large allocations run one bounded journal transaction per ~48MB
   segment (each extent record is a journal entry). *)
let ensure_backing_batched t cpu f ~off ~len ~zero =
  let seg = 48 * Units.mib in
  let cur = ref off in
  while !cur < off + len do
    let n = min seg (off + len - !cur) in
    with_txn t cpu ~reserve:150 (fun txn -> ensure_backing t cpu txn f ~off:!cur ~len:n ~zero);
    cur := !cur + n
  done

(* ------------------------------------------------------------------ *)
(* Namespace resolution                                                *)

let root_ino = 1

let resolve t cpu path =
  let parts = Path.split path in
  let rec walk ino = function
    | [] -> ino
    | name :: rest -> (
        let f = find_file t ino in
        match f.dir with
        | None -> Types.err ENOTDIR "%s" path
        | Some idx -> (
            match Dir_index.lookup idx cpu name with
            | Some (child, _) -> walk child rest
            | None -> Types.err ENOENT "%s" path))
  in
  walk root_ino parts

let resolve_parent t cpu path =
  let dir = Path.dirname path and name = Path.basename path in
  let ino = resolve t cpu dir in
  let f = find_file t ino in
  if f.kind <> Types.Directory then Types.err ENOTDIR "%s" dir;
  (f, name)

(* ------------------------------------------------------------------ *)
(* Directory entries on PM                                             *)

(* A directory's data blocks are arrays of 64B dentry slots.  Finding a
   free slot may extend the directory by one 4K block. *)
let take_dentry_slot t cpu txn dirf =
  match dirf.free_dentries with
  | s :: rest ->
      dirf.free_dentries <- rest;
      s
  | [] ->
      let old_size = dirf.size in
      let phys = alloc_meta_block t cpu in
      Device.annotate t.dev (Fresh { addr = phys; len = block });
      Device.with_site t.dev site_meta_block (fun () ->
          Device.memset t.dev cpu ~off:phys ~len:block '\000';
          Device.persist t.dev cpu ~off:phys ~len:block);
      add_record t cpu txn dirf ~file_off:old_size ~phys ~len:block ~asrc:false;
      dirf.size <- old_size + block;
      persist_header t cpu txn dirf;
      let slots = block / Codec.dentry_bytes in
      dirf.free_dentries <- List.init (slots - 1) (fun i -> phys + ((i + 1) * Codec.dentry_bytes));
      phys

let write_dentry t cpu txn ~slot_phys ~ino ~name =
  meta_write t cpu txn ~addr:slot_phys (Codec.Dentry.encode { ino; name })

let clear_dentry t cpu txn ~slot_phys =
  meta_write t cpu txn ~addr:slot_phys (Bytes.copy Codec.Dentry.free_slot)

(* ------------------------------------------------------------------ *)
(* File construction                                                   *)

let new_file t ino kind =
  let f =
    {
      ino;
      kind;
      size = 0;
      nlink = (if kind = Types.Directory then 2 else 1);
      xattr_align = false;
      parent = 0;
      dname = "";
      records = Int_map.create ();
      free_slots = [];
      slot_cap = 0;
      overflow = [];
      dir = (if kind = Types.Directory then Some (Dir_index.create Dram_rbtree) else None);
      free_dentries = [];
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
    }
  in
  note ~obj:"fs.files" ~write:true ~site:"fs.install_file";
  Hashtbl.replace t.files ino f;
  f

(* A freshly-allocated inode may be a reused slot: its inline extent slots
   must be zeroed before the header becomes valid, or a later mount would
   resurrect the previous owner's records as ghosts.  (The inode is still
   invalid while this runs, so plain stores suffice.) *)
let init_inode_slots t cpu ino =
  Device.with_site t.dev site_inode_init @@ fun () ->
  let off = inode_addr t ino + Codec.Inode.extent_slot_off 0 in
  let len = Layout.inline_extents * Codec.Inode.extent_bytes in
  Device.memset t.dev cpu ~off ~len '\000';
  Device.persist t.dev cpu ~off ~len

(* Journaled creation of an inode + dentry (create/mkdir share this). *)
let create_node t cpu parent name kind ~xattr_align =
  (match Dir_index.lookup (Option.get parent.dir) cpu name with
  | Some _ -> Types.err EEXIST "%s" name
  | None -> ());
  let ino =
    match alloc_ino t cpu with
    | Some ino -> ino
    | None -> Types.err ENOSPC "out of inodes"
  in
  let f = new_file t ino kind in
  f.xattr_align <- xattr_align;
  init_inode_slots t cpu ino;
  (try
     with_txn t cpu ~reserve:10 (fun txn ->
         persist_header t cpu txn f;
         let slot_phys = take_dentry_slot t cpu txn parent in
         write_dentry t cpu txn ~slot_phys ~ino ~name;
         Dir_index.add (Option.get parent.dir) cpu ~name ~ino ~slot:slot_phys;
         if kind = Types.Directory then begin
           parent.nlink <- parent.nlink + 1;
           persist_header t cpu txn parent
         end)
   with e ->
     note ~obj:"fs.files" ~write:true ~site:"fs.create_undo";
     Hashtbl.remove t.files ino;
     release_ino t ino;
     raise e);
  f.parent <- parent.ino;
  f.dname <- name;
  f

(* ------------------------------------------------------------------ *)
(* Format and mount                                                    *)

let write_sb t cpu ~clean =
  let sb =
    {
      Codec.Superblock.size = t.layout.size;
      cpus = t.cfg.cpus;
      inodes_per_cpu = t.layout.inodes_per_cpu;
      mode_strict = t.cfg.mode = Types.Strict;
      clean;
    }
  in
  let b = Codec.Superblock.encode sb in
  (* Primary + replica, both persisted at write time: mount's recovery
     reads must only ever see durable copies, and either copy can repair
     the other. *)
  Device.with_site t.dev site_sb (fun () ->
      Device.write t.dev cpu ~off:0 ~src:b ~src_off:0 ~len:(Bytes.length b);
      Device.persist t.dev cpu ~off:0 ~len:(Bytes.length b);
      Device.write t.dev cpu ~off:Layout.sb_replica_off ~src:b ~src_off:0
        ~len:(Bytes.length b);
      Device.persist t.dev cpu ~off:Layout.sb_replica_off ~len:(Bytes.length b))

let fresh_state dev cfg layout alloc txn_counter journals =
  let pcpu =
    Array.init cfg.Types.cpus (fun c ->
        { journal = journals.(c); journal_lock = Sched.create_mutex (); free_inodes = [] })
  in
  {
    dev;
    cfg;
    layout;
    alloc;
    meta_free = Repro_rbtree.Extent_tree.create ();
    pcpu;
    files = Hashtbl.create 1024;
    fds = Fd_table.create ();
    counters = Counters.create ();
    txn_counter;
    rewrite_queue = [];
    recovery_ns = 0;
    read_only = false;
    bad_inos = Hashtbl.create 8;
  }

let invalidate_serial t cpu =
  Device.with_site t.dev site_serial @@ fun () ->
  Device.write t.dev cpu ~off:t.layout.serial_off ~src:Codec.Serial.invalid ~src_off:0
    ~len:(Bytes.length Codec.Serial.invalid);
  Device.persist t.dev cpu ~off:t.layout.serial_off ~len:(Bytes.length Codec.Serial.invalid)

let format dev cfg =
  let cpu = Cpu.make ~id:0 () in
  let layout =
    Layout.compute ~size:(Device.size dev) ~cpus:cfg.Types.cpus
      ~inodes_per_cpu:cfg.inodes_per_cpu
  in
  let cfg = { cfg with Types.inodes_per_cpu = layout.inodes_per_cpu } in
  (* Zero inode tables so invalid inodes parse as invalid; the zeroes must
     be durable — mount scans the tables, and a crash between format and
     the first inode write would otherwise parse stale bytes as inodes. *)
  Device.with_site dev site_format (fun () ->
      Array.iter
        (fun off ->
          let len = layout.inodes_per_cpu * Layout.inode_bytes in
          Device.memset dev cpu ~off ~len '\000';
          Device.persist dev cpu ~off ~len)
        layout.inode_table_off);
  let txn_counter = Journal.Txn_counter.create () in
  let journals =
    Array.init cfg.cpus (fun c ->
        Journal.format dev cpu txn_counter ~off:layout.journal_off.(c)
          ~entries:layout.journal_entries ~copy_bytes:layout.journal_copy_bytes)
  in
  let alloc = Alloc.create ~cpus:cfg.cpus ~regions:layout.stripes in
  let t = fresh_state dev cfg layout alloc txn_counter journals in
  Array.iteri
    (fun c pc ->
      pc.free_inodes <-
        List.init layout.inodes_per_cpu (fun i -> i)
        |> List.filter (fun i -> not (c = 0 && i = 0)))
    t.pcpu;
  Repro_rbtree.Extent_tree.insert_free t.meta_free ~off:layout.meta_pool_off
    ~len:layout.meta_pool_len;
  (* Root directory (cpu 0, idx 0 -> ino 1). *)
  let root = new_file t root_ino Types.Directory in
  init_inode_slots t cpu root_ino;
  with_txn t cpu ~reserve:4 (fun txn -> persist_header t cpu txn root);
  invalidate_serial t cpu;
  write_sb t cpu ~clean:false;
  t

(* Read one file's persistent extent list (inline slots + overflow chain)
   into a fresh [file]. *)
let load_file t cpu ino (h : Codec.Inode.header) =
  let kind = if h.is_dir then Types.Directory else Types.Regular in
  let f = new_file t ino kind in
  f.size <- h.size;
  f.nlink <- h.nlink;
  f.xattr_align <- h.xattr_align;
  (* Overflow chain. *)
  let rec chain blk acc =
    if blk = 0 then List.rev acc
    else begin
      let hdr = Bytes.create Codec.Overflow.header_bytes in
      Device.read t.dev cpu ~off:blk ~len:Codec.Overflow.header_bytes ~dst:hdr ~dst_off:0;
      let next, _count = Codec.Overflow.decode_header hdr in
      chain next (blk :: acc)
    end
  in
  f.overflow <- chain h.overflow [];
  f.slot_cap <- Layout.inline_extents + (List.length f.overflow * Codec.Overflow.capacity);
  (* Walk every slot; live records have len > 0. *)
  let buf = Bytes.create Codec.Inode.extent_bytes in
  for slot = 0 to f.slot_cap - 1 do
    let addr = slot_addr t f slot in
    Device.read t.dev cpu ~off:addr ~len:Codec.Inode.extent_bytes ~dst:buf ~dst_off:0;
    let file_off, phys, len_field = Codec.Inode.decode_extent buf in
    let asrc = len_field land asrc_bit <> 0 in
    let len = len_field land lnot asrc_bit in
    if len > 0 then Int_map.insert f.records file_off { slot; phys; len; asrc }
    else f.free_slots <- slot :: f.free_slots
  done;
  f

(* Rebuild a directory's DRAM index from its dentry blocks. *)
let load_dir_index t cpu f =
  let idx = Option.get f.dir in
  let free = ref [] in
  let buf = Bytes.create Codec.dentry_bytes in
  Int_map.iter f.records (fun file_off r ->
      let slots = r.len / Codec.dentry_bytes in
      for i = 0 to slots - 1 do
        if file_off + (i * Codec.dentry_bytes) < f.size then begin
          let phys = r.phys + (i * Codec.dentry_bytes) in
          Device.read t.dev cpu ~off:phys ~len:Codec.dentry_bytes ~dst:buf ~dst_off:0;
          match Codec.Dentry.decode buf with
          | Some d ->
              Dir_index.add idx cpu ~name:d.name ~ino:d.ino ~slot:phys;
              (match Hashtbl.find_opt t.files d.ino with
              | Some child ->
                  child.parent <- f.ino;
                  child.dname <- d.name
              | None -> ())
          | None -> free := phys :: !free
        end
      done);
  f.free_dentries <- !free

(* Mount: recover journals, rebuild DRAM indexes by scanning the inode
   tables and directory blocks, restore or rebuild the allocator. *)
let mount dev cfg =
  Device.with_site dev site_mount @@ fun () ->
  let cpu = Cpu.make ~id:0 () in
  let t0 = Simclock.now cpu.clock in
  (* Everything read from here until the state is rebuilt is recovery
     input: the lint flags any line that was not durable. *)
  Device.annotate dev Recovery_begin;
  (* Scrub bookkeeping: every corruption the mount encounters is counted
     as detected, then either repaired (from a redundant copy) or refused
     (the affected object — or the whole mount — degrades). *)
  let detected = ref 0 and repaired = ref 0 and refused = ref 0 in
  let degraded = ref false in
  (* Superblock: primary at 0, replica at Layout.sb_replica_off; a
     poisoned line reads as a checksum-class failure.  Either good copy
     repairs the other in place (a full-line store clears poison). *)
  let sb_read off =
    let b = Bytes.create Codec.Superblock.bytes in
    match Device.read dev cpu ~off ~len:Codec.Superblock.bytes ~dst:b ~dst_off:0 with
    | () -> Codec.Superblock.decode_checked b
    | exception Device.Media_error _ -> `Bad_csum
  in
  let sb_repair off sb =
    let b = Codec.Superblock.encode sb in
    Device.write dev cpu ~off ~src:b ~src_off:0 ~len:(Bytes.length b);
    Device.persist dev cpu ~off ~len:(Bytes.length b);
    incr repaired
  in
  let sb =
    match (sb_read 0, sb_read Layout.sb_replica_off) with
    | `Ok sb, `Ok _ -> sb
    | `Ok sb, (`Bad_csum | `Bad_magic) ->
        incr detected;
        sb_repair Layout.sb_replica_off sb;
        sb
    | (`Bad_csum | `Bad_magic), `Ok sb ->
        incr detected;
        sb_repair 0 sb;
        sb
    | `Bad_magic, `Bad_magic -> Types.err EINVAL "not a WineFS image"
    | _ ->
        incr detected;
        incr refused;
        Types.err EIO "superblock corrupt in both copies"
  in
  let cfg = { cfg with Types.cpus = sb.cpus; inodes_per_cpu = sb.inodes_per_cpu } in
  let layout = Layout.compute ~size:sb.size ~cpus:sb.cpus ~inodes_per_cpu:sb.inodes_per_cpu in
  (* Phase 1: journal recovery — roll back unfinished transactions in
     descending global txn-id order (§3.6 "Journal Recovery"). *)
  let txn_counter = Journal.Txn_counter.create () in
  let journals =
    try
      Array.init sb.cpus (fun c ->
          Journal.attach dev txn_counter ~off:layout.journal_off.(c)
            ~entries:layout.journal_entries ~copy_bytes:layout.journal_copy_bytes)
    with
    | Device.Media_error { off } ->
        (* A poisoned journal header leaves no cursor to recover from. *)
        Types.err EIO "journal header unreadable (media error at %#x)" off
    | Invalid_argument _ -> Types.err EIO "journal header corrupt (bad magic)"
  in
  let pendings =
    Array.to_list journals
    |> List.filter_map (fun j ->
           match Journal.scan_pending j cpu with
           | p -> Option.map (fun p -> (j, p)) p
           | exception Device.Media_error _ ->
               (* Poisoned journal area: recovery for this CPU's journal is
                  impossible — refuse it and degrade rather than guess. *)
               incr detected;
               incr refused;
               degraded := true;
               None)
    |> List.sort (fun (_, a) (_, b) -> compare b.Journal.txn_id a.Journal.txn_id)
  in
  List.iter (fun (j, p) -> Journal.rollback_pending j cpu p) pendings;
  Array.iter (fun j -> Journal.reset j cpu) journals;
  (* Entries the scans rejected by CRC: each is a detected corruption whose
     transaction was demoted to uncommitted and rolled back — a repair. *)
  Array.iter
    (fun j ->
      let n = Journal.csum_failures j in
      detected := !detected + n;
      repaired := !repaired + n)
    journals;
  (* Phase 3 below needs the allocator last; build state with a placeholder
     then restore it. *)
  let alloc = Alloc.restore ~cpus:sb.cpus ~regions:layout.stripes ~free:[] in
  let t = fresh_state dev cfg layout alloc txn_counter journals in
  (* Phase 2: scan the per-CPU inode tables (parallel in the paper; the
     simulated cost model charges the reads). *)
  let used = ref [] in
  let refuse_ino ino why =
    incr detected;
    incr refused;
    degraded := true;
    Hashtbl.replace t.bad_inos ino why
  in
  for c = 0 to sb.cpus - 1 do
    let free = ref [] in
    for idx = 0 to layout.inodes_per_cpu - 1 do
      let ino = Layout.ino_of layout ~cpu:c ~idx in
      let hb = Bytes.create Codec.Inode.header_bytes in
      match
        Device.read dev cpu ~off:(Layout.inode_off layout ino) ~len:Codec.Inode.header_bytes
          ~dst:hb ~dst_off:0
      with
      | exception Device.Media_error _ -> refuse_ino ino "poisoned inode header"
      | () ->
          if Codec.Inode.header_is_blank hb then free := idx :: !free
          else if not (Codec.Inode.header_csum_ok hb) then
            (* A non-blank header failing its CRC cannot be trusted in any
               field — the corrupt bit may be [valid] itself — so the slot
               is never scrubbed or reused, only refused. *)
            refuse_ino ino "inode header failed CRC"
          else begin
            let h = Codec.Inode.decode_header hb in
            if h.valid then begin
              match load_file t cpu ino h with
              | f ->
                  Int_map.iter f.records (fun _ r -> used := (r.phys, r.len) :: !used);
                  List.iter (fun blk -> used := (blk, block) :: !used) f.overflow
              | exception Device.Media_error _ ->
                  note ~obj:"fs.files" ~write:true ~site:"fs.scrub";
                  Hashtbl.remove t.files ino;
                  refuse_ino ino "media error loading extent metadata"
            end
            else free := idx :: !free
          end
    done;
    t.pcpu.(c).free_inodes <- List.rev !free
  done;
  if Hashtbl.mem t.bad_inos root_ino then Types.err EIO "corrupt image: root inode refused";
  if not (Hashtbl.mem t.files root_ino) then Types.err EINVAL "corrupt image: no root";
  (* Directory indexes.  A dentry block on a poisoned line refuses the
     directory (paths through it then fail with EIO) but not the mount. *)
  Hashtbl.iter
    (fun _ f ->
      if f.dir <> None then
        try load_dir_index t cpu f
        with Device.Media_error _ ->
          if f.ino = root_ino then Types.err EIO "corrupt image: root directory unreadable";
          refuse_ino f.ino "media error reading directory blocks")
    t.files;
  (* Phase 3: allocator — from the serialized free list when the unmount
     was clean, otherwise recomputed from the used-extent set. *)
  let serial_ok =
    if not sb.clean then None
    else begin
      let buf = Bytes.create layout.serial_len in
      match Device.read dev cpu ~off:layout.serial_off ~len:layout.serial_len ~dst:buf ~dst_off:0 with
      | () -> Codec.Serial.decode buf
      | exception Device.Media_error _ ->
          (* The serialized free list is redundant with a scan: repair by
             recomputing from the used-extent set. *)
          incr detected;
          incr repaired;
          None
    end
  in
  (* Metadata-region blocks rebuild their own free list; data extents
     rebuild the alignment-aware allocator. *)
  let in_meta off = off >= layout.meta_pool_off && off < layout.meta_pool_off + layout.meta_pool_len in
  let meta_shadow = Repro_rbtree.Extent_tree.create () in
  Repro_rbtree.Extent_tree.insert_free meta_shadow ~off:layout.meta_pool_off
    ~len:layout.meta_pool_len;
  List.iter
    (fun (off, len) ->
      if in_meta off then
        if not (Repro_rbtree.Extent_tree.alloc_exact meta_shadow ~off ~len) then
          Types.err EINVAL "corrupt image: metadata block %d double-used" off)
    !used;
  let free_list =
    match serial_ok with
    | Some l -> l
    | None ->
        let shadow = Repro_rbtree.Extent_tree.create () in
        Array.iter
          (fun (off, len) -> Repro_rbtree.Extent_tree.insert_free shadow ~off ~len)
          layout.stripes;
        List.iter
          (fun (off, len) ->
            if in_meta off then ()
            else if not (Repro_rbtree.Extent_tree.alloc_exact shadow ~off ~len) then
              Types.err EINVAL "corrupt image: extent [%d,%d) double-used" off (off + len))
          !used;
        Repro_rbtree.Extent_tree.to_list shadow
  in
  let alloc = Alloc.restore ~cpus:sb.cpus ~regions:layout.stripes ~free:free_list in
  let t = { t with alloc } in
  Repro_rbtree.Extent_tree.iter meta_shadow (fun ~off ~len ->
      Repro_rbtree.Extent_tree.insert_free t.meta_free ~off ~len);
  Device.annotate dev Recovery_end;
  t.read_only <- !degraded;
  count_fault t "fault.detected" !detected;
  count_fault t "fault.repaired" !repaired;
  count_fault t "fault.refused" !refused;
  (* A degraded mount must not write: the dirty-superblock stamp and the
     serial-area invalidation are both mutations. *)
  if not t.read_only then begin
    invalidate_serial t cpu;
    write_sb t cpu ~clean:false
  end;
  t.recovery_ns <- Simclock.now cpu.clock - t0;
  t

let unmount t cpu =
  if t.read_only then ()
  else begin
  (* Serialize the allocator free lists (§3.6 "Crash Recovery and
     unmount"); fall back to scan-on-mount when they do not fit. *)
  (match Codec.Serial.encode (Alloc.snapshot t.alloc) ~capacity_bytes:t.layout.serial_len with
  | Some b ->
      Device.with_site t.dev site_serial (fun () ->
          Device.write t.dev cpu ~off:t.layout.serial_off ~src:b ~src_off:0
            ~len:(Bytes.length b);
          Device.persist t.dev cpu ~off:t.layout.serial_off ~len:(Bytes.length b))
  | None -> invalidate_serial t cpu);
  write_sb t cpu ~clean:true
  end

let recovery_ns t = t.recovery_ns
let device t = t.dev
let config t = t.cfg
let counters t = t.counters
let read_only t = t.read_only
let refused_inodes t = Hashtbl.length t.bad_inos

(* ------------------------------------------------------------------ *)
(* Namespace operations                                                *)

let mkdir t cpu path =
  Stats.span ~op:"mkdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      ignore (create_node t cpu parent name Types.Directory ~xattr_align:false));
  Counters.incr t.counters "fs.mkdir"

let create t cpu path =
  Stats.span ~op:"create" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let parent, name = resolve_parent t cpu path in
  let f =
    Sched.with_lock parent.lock (fun () ->
        create_node t cpu parent name Types.Regular ~xattr_align:parent.xattr_align)
  in
  Counters.incr t.counters "fs.create";
  Fd_table.alloc t.fds ~ino:f.ino ~flags:Types.o_creat_rdwr

let free_file_space t f =
  Int_map.iter f.records (fun _ r -> free_any t ~off:r.phys ~len:r.len);
  List.iter (fun blk -> free_any t ~off:blk ~len:block) f.overflow

let unlink t cpu path =
  Stats.span ~op:"unlink" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, slot_phys) ->
          let f = find_file t ino in
          if f.kind = Types.Directory then Types.err EISDIR "%s" path;
          Sched.with_lock f.lock (fun () ->
              with_txn t cpu ~reserve:6 (fun txn ->
                  clear_dentry t cpu txn ~slot_phys;
                  f.nlink <- f.nlink - 1;
                  if f.nlink = 0 then begin
                    let hdr = { (header_of f) with valid = false } in
                    meta_write t cpu txn ~addr:(inode_addr t f.ino)
                      (Codec.Inode.encode_header hdr)
                  end
                  else persist_header t cpu txn f);
              Dir_index.remove idx cpu name;
              parent.free_dentries <- slot_phys :: parent.free_dentries;
              if f.nlink = 0 then begin
                free_file_space t f;
                note ~obj:"fs.files" ~write:true ~site:"fs.unlink";
                Hashtbl.remove t.files ino;
                release_ino t ino
              end));
  Counters.incr t.counters "fs.unlink"

let rmdir t cpu path =
  Stats.span ~op:"rmdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, slot_phys) ->
          let f = find_file t ino in
          if f.kind <> Types.Directory then Types.err ENOTDIR "%s" path;
          if Dir_index.size (Option.get f.dir) > 0 then Types.err ENOTEMPTY "%s" path;
          with_txn t cpu ~reserve:6 (fun txn ->
              clear_dentry t cpu txn ~slot_phys;
              let hdr = { (header_of f) with valid = false } in
              meta_write t cpu txn ~addr:(inode_addr t f.ino) (Codec.Inode.encode_header hdr);
              parent.nlink <- parent.nlink - 1;
              persist_header t cpu txn parent);
          Dir_index.remove idx cpu name;
          parent.free_dentries <- slot_phys :: parent.free_dentries;
          free_file_space t f;
          note ~obj:"fs.files" ~write:true ~site:"fs.rmdir";
          Hashtbl.remove t.files ino;
          release_ino t ino);
  Counters.incr t.counters "fs.rmdir"

let rename t cpu ~old_path ~new_path =
  Stats.span ~op:"rename" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let src_parent, src_name = resolve_parent t cpu old_path in
  let dst_parent, dst_name = resolve_parent t cpu new_path in
  (* Lock ordering by inode number prevents ABBA deadlocks. *)
  let locks =
    if src_parent.ino = dst_parent.ino then [ src_parent.lock ]
    else if src_parent.ino < dst_parent.ino then [ src_parent.lock; dst_parent.lock ]
    else [ dst_parent.lock; src_parent.lock ]
  in
  List.iter Sched.lock locks;
  Fun.protect
    ~finally:(fun () -> List.iter Sched.unlock (List.rev locks))
    (fun () ->
      let src_idx = Option.get src_parent.dir and dst_idx = Option.get dst_parent.dir in
      match Dir_index.lookup src_idx cpu src_name with
      | None -> Types.err ENOENT "%s" old_path
      | Some (ino, src_slot) ->
          let moved = find_file t ino in
          let replaced =
            match Dir_index.lookup dst_idx cpu dst_name with
            | Some (dst_ino, _) when dst_ino = ino -> None
            | Some (dst_ino, _) ->
                let victim = find_file t dst_ino in
                if victim.kind = Types.Directory then Types.err EISDIR "%s" new_path;
                Some victim
            | None -> None
          in
          let dst_slot_used = ref 0 in
          with_txn t cpu ~reserve:10 (fun txn ->
              (match replaced with
              | Some victim ->
                  (* Re-point the existing dentry; invalidate the victim. *)
                  let _, dst_slot = Option.get (Dir_index.lookup dst_idx cpu dst_name) in
                  dst_slot_used := dst_slot;
                  write_dentry t cpu txn ~slot_phys:dst_slot ~ino ~name:dst_name;
                  victim.nlink <- victim.nlink - 1;
                  if victim.nlink = 0 then
                    meta_write t cpu txn ~addr:(inode_addr t victim.ino)
                      (Codec.Inode.encode_header { (header_of victim) with valid = false })
              | None ->
                  let dst_slot = take_dentry_slot t cpu txn dst_parent in
                  dst_slot_used := dst_slot;
                  write_dentry t cpu txn ~slot_phys:dst_slot ~ino ~name:dst_name);
              clear_dentry t cpu txn ~slot_phys:src_slot;
              if moved.kind = Types.Directory && src_parent.ino <> dst_parent.ino then begin
                src_parent.nlink <- src_parent.nlink - 1;
                dst_parent.nlink <- dst_parent.nlink + 1;
                persist_header t cpu txn src_parent;
                persist_header t cpu txn dst_parent
              end);
          Dir_index.remove src_idx cpu src_name;
          src_parent.free_dentries <- src_slot :: src_parent.free_dentries;
          Dir_index.remove dst_idx cpu dst_name;
          Dir_index.add dst_idx cpu ~name:dst_name ~ino ~slot:!dst_slot_used;
          moved.parent <- dst_parent.ino;
          moved.dname <- dst_name;
          (match replaced with
          | Some victim when victim.nlink = 0 ->
              free_file_space t victim;
              note ~obj:"fs.files" ~write:true ~site:"fs.rename";
              Hashtbl.remove t.files victim.ino;
              release_ino t victim.ino
          | _ -> ()));
  Counters.incr t.counters "fs.rename"

let readdir t cpu path =
  Stats.span ~op:"readdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let ino = resolve t cpu path in
  let f = find_file t ino in
  match f.dir with
  | None -> Types.err ENOTDIR "%s" path
  | Some idx ->
      (* Charge a DRAM walk per entry. *)
      Simclock.advance cpu.clock (Dir_index.size idx * 12);
      List.map fst (Dir_index.entries idx)

let stat t cpu path =
  Stats.span ~op:"stat" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let ino = resolve t cpu path in
  let f = find_file t ino in
  {
    Types.st_ino = ino;
    st_kind = f.kind;
    st_size = f.size;
    st_blocks =
      Int_map.fold f.records ~init:0 ~f:(fun acc _ r -> acc + r.len)
      + (List.length f.overflow * block);
    st_nlink = f.nlink;
  }

let exists t cpu path =
  match resolve t cpu path with
  | _ -> true
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> false

let openf t cpu path (flags : Types.open_flags) =
  Stats.span ~op:"open" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  if flags.wr || flags.creat || flags.trunc then require_writable t;
  match resolve t cpu path with
  | ino ->
      if flags.creat && flags.excl then Types.err EEXIST "%s" path;
      let f = find_file t ino in
      if f.kind = Types.Directory && flags.wr then Types.err EISDIR "%s" path;
      if flags.trunc && f.kind = Types.Regular && f.size > 0 then
        Sched.with_lock f.lock (fun () ->
            let old_size = f.size in
            f.size <- 0;
            with_txn t cpu ~reserve:2 (fun txn -> persist_header t cpu txn f);
            remove_records_batched t cpu f ~file_off:0 ~len:old_size);
      Fd_table.alloc t.fds ~ino ~flags
  | exception Types.Error (ENOENT, _) when flags.creat ->
      let parent, name = resolve_parent t cpu path in
      let f =
        Sched.with_lock parent.lock (fun () ->
            create_node t cpu parent name Types.Regular ~xattr_align:parent.xattr_align)
      in
      Fd_table.alloc t.fds ~ino:f.ino ~flags

let close t cpu fd =
  Stats.span ~op:"close" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  Fd_table.close t.fds fd

let file_size t fd =
  let e = Fd_table.get t.fds fd in
  (find_file t e.ino).size

(* ------------------------------------------------------------------ *)
(* Data path                                                           *)

let strict t = t.cfg.mode = Types.Strict

(* Is the backing record an aligned-pool extent (data-journaling
   territory) or a hole (copy-on-write territory)?  §3.4 "Data Atomicity:
   Hybrid Techniques" — decided by provenance. *)
let backed_aligned f ~file_off =
  match Int_map.find_last_leq f.records file_off with
  | Some (o, r) when o + r.len > file_off -> r.asrc
  | _ -> false

(* Strict-mode overwrite of a fully-backed range, journaled inside the
   caller's transaction so the enclosing system call stays atomic.
   Returns the physical runs to free after commit (from CoW swaps). *)
let overwrite_in_txn t cpu txn f ~off ~src ~src_off ~len =
  let j = (jcpu t cpu).journal in
  let freed_acc = ref [] in
  let cur = ref 0 in
  while !cur < len do
    let file_off = off + !cur in
    let phys, run =
      match lookup_run f ~file_off with Some pr -> pr | None -> assert false
    in
    let n = min (len - !cur) run in
    if backed_aligned f ~file_off then begin
      (* Data journaling: undo-log the old data, then write in place. *)
      Device.with_site t.dev site_data_journal (fun () ->
          Journal.log_range j cpu txn ~addr:phys ~len:n;
          Device.write_nt t.dev cpu ~off:phys ~src ~src_off:(src_off + !cur) ~len:n;
          Device.fence t.dev cpu);
      Counters.add t.counters "fs.data_journal_bytes" n
    end
    else begin
      (* Copy-on-write into fresh holes: block-align the replaced range,
         preserve untouched head/tail bytes, then swap the records. *)
      let blo = Units.round_down file_off block in
      let bhi =
        min
          (Units.round_up (file_off + n) block)
          (Units.round_up (max f.size (file_off + n)) block)
      in
      let cow_len = bhi - blo in
      let exts =
        match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:cow_len ~prefer_aligned:false with
        | Some exts -> exts
        | None -> Types.err ENOSPC "CoW allocation of %d bytes" cow_len
      in
      let write_piece (e : Alloc.extent) ~piece_file_off =
        let ov_lo = max piece_file_off file_off
        and ov_hi = min (piece_file_off + e.len) (file_off + n) in
        (* Preserve only the block edges the new data does not cover. *)
        let rec preserve cur stop =
          if cur < stop then begin
            match lookup_run f ~file_off:cur with
            | Some (old_phys, old_run) ->
                let m = min (stop - cur) old_run in
                Device.copy_within_nt t.dev cpu ~src:old_phys
                  ~dst:(e.off + (cur - piece_file_off)) ~len:m;
                preserve (cur + m) stop
            | None ->
                Device.memset_nt t.dev cpu ~off:(e.off + (cur - piece_file_off))
                  ~len:(stop - cur) '\000'
          end
        in
        preserve piece_file_off (min ov_lo (piece_file_off + e.len));
        preserve (max ov_hi piece_file_off) (piece_file_off + e.len);
        if ov_hi > ov_lo then
          Device.write_nt t.dev cpu ~off:(e.off + (ov_lo - piece_file_off)) ~src
            ~src_off:(src_off + !cur + (ov_lo - file_off)) ~len:(ov_hi - ov_lo);
        Device.fence t.dev cpu
      in
      let pf = ref blo in
      List.iter
        (fun (e : Alloc.extent) ->
          Device.annotate t.dev (Fresh { addr = e.off; len = e.len });
          Device.with_site t.dev site_cow (fun () -> write_piece e ~piece_file_off:!pf);
          pf := !pf + e.len)
        exts;
      let freed, _ = remove_records t cpu txn f ~file_off:blo ~len:cow_len in
      freed_acc := freed @ !freed_acc;
      let pf = ref blo in
      List.iter
        (fun (e : Alloc.extent) ->
          add_record t cpu txn f ~file_off:!pf ~phys:e.off ~len:e.len ~asrc:false;
          pf := !pf + e.len)
        exts;
      Counters.add t.counters "fs.cow_bytes" cow_len
    end;
    cur := !cur + n
  done;
  !freed_acc

(* A write fits the single-transaction atomic path when its journal needs
   (undo copy bytes for aligned overwrites, entry slots for record churn)
   fit one transaction.  Larger writes fall back to a sequence of bounded
   transactions — each atomic, the whole write not (documented deviation;
   the paper bounds transactions at 640B of entries plus the copy area). *)
let fits_one_txn t f ~off ~len =
  let j = t.pcpu.(0).journal in
  len <= Journal.copy_capacity j
  &&
  (* Count records the overlap touches — bounded scan. *)
  let stop = min (off + len) f.size in
  let rec count cur acc =
    if cur >= stop || acc > 50 then acc
    else
      match lookup_run f ~file_off:cur with
      | Some (_, run) -> count (cur + run) (acc + 1)
      | None -> (
          match next_mapped f ~file_off:(cur + 1) with
          | Some o -> count o (acc + 1)
          | None -> acc)
  in
  count off 0 <= 50

(* Hole ranges of [f] intersecting the block-aligned span of a write:
   after allocation, any part of these outside the written range must be
   zeroed or reads would see the blocks' previous contents. *)
let holes_in f ~off ~len =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let holes = ref [] in
  let cur = ref lo in
  while !cur < hi do
    match lookup_run f ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match next_mapped f ~file_off:(!cur + 1) with Some o -> min hi o | None -> hi
        in
        holes := (!cur, hole_end) :: !holes;
        cur := hole_end
  done;
  !holes

let zero_uncovered t cpu f holes ~off ~len =
  Device.with_site t.dev site_zero @@ fun () ->
  List.iter
    (fun (h_lo, h_hi) ->
      let zero_range lo hi =
        let cur = ref lo in
        while !cur < hi do
          match lookup_run f ~file_off:!cur with
          | Some (phys, run) ->
              let n = min (hi - !cur) run in
              Device.memset_nt t.dev cpu ~off:phys ~len:n '\000';
              cur := !cur + n
          | None -> cur := hi
        done
      in
      if h_lo < off then zero_range h_lo (min off h_hi);
      if h_hi > off + len then zero_range (max (off + len) h_lo) h_hi)
    holes

let pwrite t cpu fd ~off ~src =
  Stats.span ~op:"pwrite" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = find_file t e.ino in
  if f.kind = Types.Directory then Types.err EISDIR "fd %d" fd;
  let len = String.length src in
  if len = 0 then 0
  else begin
    if off < 0 then Types.err EINVAL "negative offset";
    Sched.with_lock f.lock (fun () ->
        let pre_holes = holes_in f ~off ~len in
        let src_b = Bytes.unsafe_of_string src in
        let write_extension () =
          Device.with_site t.dev site_data @@ fun () ->
          (* Pure extension data: no old contents to protect; data lands
             before the size bump commits. *)
          let old_size = f.size in
          let ext_lo = max off (min (off + len) old_size) in
          let cur = ref ext_lo in
          while !cur < off + len do
            let phys, run = Option.get (lookup_run f ~file_off:!cur) in
            let n = min (off + len - !cur) run in
            Device.write_nt t.dev cpu ~off:phys ~src:src_b ~src_off:(!cur - off) ~len:n;
            cur := !cur + n
          done;
          if off + len > ext_lo then
            if strict t then Device.fence t.dev cpu
            else f.dirty_bytes <- f.dirty_bytes + (off + len - ext_lo)
        in
        let overlap_hi = min (off + len) f.size in
        if strict t && fits_one_txn t f ~off ~len then begin
          (* The whole system call is one journal transaction (§3.6). *)
          let freed = ref [] in
          with_txn t cpu ~reserve:200 (fun txn ->
              ensure_backing t cpu txn f ~off ~len ~zero:false;
              zero_uncovered t cpu f pre_holes ~off ~len;
              if overlap_hi > off then
                freed :=
                  overwrite_in_txn t cpu txn f ~off ~src:src_b ~src_off:0
                    ~len:(overlap_hi - off);
              write_extension ();
              if off + len > f.size then begin
                f.size <- off + len;
                persist_size t cpu txn f
              end);
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed
        end
        else if (not (strict t)) && len <= 16 * Units.mib then begin
          (* Relaxed-mode fast path: allocation, in-place data, and the
             size bump share one journal transaction (fine-grained
             journaling, §3.5). *)
          let freed = ref [] in
          with_txn t cpu ~reserve:150 (fun txn ->
              ensure_backing t cpu txn f ~off ~len ~zero:false;
              zero_uncovered t cpu f pre_holes ~off ~len;
              if overlap_hi > off then
                Device.with_site t.dev site_data (fun () ->
                    let cur = ref off in
                    while !cur < overlap_hi do
                      let phys, run = Option.get (lookup_run f ~file_off:!cur) in
                      let n = min (overlap_hi - !cur) run in
                      Device.write_nt t.dev cpu ~off:phys ~src:src_b ~src_off:(!cur - off)
                        ~len:n;
                      f.dirty_bytes <- f.dirty_bytes + n;
                      cur := !cur + n
                    done);
              write_extension ();
              if off + len > f.size then begin
                f.size <- off + len;
                persist_size t cpu txn f
              end);
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed
        end
        else begin
          (* Large or heavily fragmented write: bounded transactions. *)
          ensure_backing_batched t cpu f ~off ~len ~zero:false;
          zero_uncovered t cpu f pre_holes ~off ~len;
          if strict t && overlap_hi > off then begin
            let j = (jcpu t cpu).journal in
            let cap = Journal.copy_capacity j in
            let cur = ref off in
            while !cur < overlap_hi do
              let piece = min cap (overlap_hi - !cur) in
              let freed = ref [] in
              with_txn t cpu ~reserve:200 (fun txn ->
                  freed :=
                    overwrite_in_txn t cpu txn f ~off:!cur ~src:src_b
                      ~src_off:(!cur - off) ~len:piece);
              List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) !freed;
              cur := !cur + piece
            done
          end
          else if overlap_hi > off then
            (* Relaxed: in-place, durable at fsync. *)
            Device.with_site t.dev site_data (fun () ->
                let cur = ref off in
                while !cur < overlap_hi do
                  let phys, run = Option.get (lookup_run f ~file_off:!cur) in
                  let n = min (overlap_hi - !cur) run in
                  Device.write_nt t.dev cpu ~off:phys ~src:src_b ~src_off:(!cur - off) ~len:n;
                  f.dirty_bytes <- f.dirty_bytes + n;
                  cur := !cur + n
                done);
          write_extension ();
          if off + len > f.size then begin
            f.size <- off + len;
            with_txn t cpu ~reserve:2 (fun txn -> persist_size t cpu txn f)
          end
        end);
    Counters.add t.counters "fs.write_bytes" len;
    len
  end

let append t cpu fd ~src =
  let e = Fd_table.get t.fds fd in
  let f = find_file t e.ino in
  pwrite t cpu fd ~off:f.size ~src

let pread t cpu fd ~off ~len =
  Stats.span ~op:"pread" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.rd then Types.err EBADF "fd %d not readable" fd;
  let f = find_file t e.ino in
  if f.kind = Types.Directory then Types.err EISDIR "fd %d" fd;
  if off < 0 || len < 0 then Types.err EINVAL "bad range";
  let len = max 0 (min len (f.size - off)) in
  if len = 0 then ""
  else begin
    let dst = Bytes.make len '\000' in
    let cur = ref off in
    while !cur < off + len do
      match lookup_run f ~file_off:!cur with
      | Some (phys, run) ->
          let n = min (off + len - !cur) run in
          (try Device.read t.dev cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off)
           with Device.Media_error { off = bad } ->
             (* Simulated MCE: never return made-up bytes — the read is
                refused with EIO, as a DAX read of a poisoned line would
                be. *)
             count_fault t "fault.detected" 1;
             count_fault t "fault.refused" 1;
             Types.err EIO "media error at %#x reading ino %d" bad f.ino);
          cur := !cur + n
      | None ->
          (* Hole: zeros. *)
          let hole_end =
            match next_mapped f ~file_off:(!cur + 1) with
            | Some o -> min (off + len) o
            | None -> off + len
          in
          cur := hole_end
    done;
    Counters.add t.counters "fs.read_bytes" len;
    Bytes.unsafe_to_string dst
  end

let fsync t cpu fd =
  Stats.span ~op:"fsync" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  let f = find_file t e.ino in
  (* Strict mode is synchronous: nothing to do.  Relaxed mode flushes the
     file's dirty data (modelled as flush cost over the dirty volume). *)
  if not (strict t) && f.dirty_bytes > 0 then begin
    let lines = (f.dirty_bytes + Units.cacheline - 1) / Units.cacheline in
    Simclock.advance cpu.clock
      (int_of_float ((Device.cost t.dev).flush_ns *. float_of_int lines));
    Device.fence t.dev cpu;
    f.dirty_bytes <- 0
  end;
  Counters.incr t.counters "fs.fsync"

let fallocate t cpu fd ~off ~len =
  Stats.span ~op:"fallocate" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  let f = find_file t e.ino in
  if off < 0 || len <= 0 then Types.err EINVAL "bad range";
  Sched.with_lock f.lock (fun () ->
      (* WineFS zeroes at allocation time so page faults only build
         mappings (§5.4 PmemKV discussion). *)
      ensure_backing_batched t cpu f ~off ~len ~zero:true;
      if off + len > f.size then begin
        f.size <- off + len;
        with_txn t cpu ~reserve:2 (fun txn -> persist_size t cpu txn f)
      end);
  Counters.incr t.counters "fs.fallocate"

let ftruncate t cpu fd new_size =
  Stats.span ~op:"ftruncate" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  let f = find_file t e.ino in
  if new_size < 0 then Types.err EINVAL "negative size";
  Sched.with_lock f.lock (fun () ->
      if new_size < f.size then begin
        let lo = Units.round_up new_size block in
        let old_size = f.size in
        f.size <- new_size;
        with_txn t cpu ~reserve:2 (fun txn -> persist_size t cpu txn f);
        if old_size > lo then remove_records_batched t cpu f ~file_off:lo ~len:(old_size - lo);
        (* Zero the mapped tail of the last block so a later size extension
           reads zeros, per POSIX. *)
        (if lo > new_size then
           match lookup_run f ~file_off:new_size with
           | Some (phys, run) ->
               Device.with_site t.dev site_zero (fun () ->
                   Device.memset_nt t.dev cpu ~off:phys ~len:(min run (lo - new_size)) '\000';
                   Device.fence t.dev cpu)
           | None -> ())
      end
      else if new_size > f.size then begin
        (* Sparse extension: no allocation (LMDB relies on this). *)
        f.size <- new_size;
        with_txn t cpu ~reserve:2 (fun txn -> persist_size t cpu txn f)
      end);
  Counters.incr t.counters "fs.ftruncate"

(* ------------------------------------------------------------------ *)
(* Memory mapping: the hugepage-aware fault path (§3.6)                *)

let mmap_backing t fd : Vmem.backing =
  let e = Fd_table.get t.fds fd in
  let ino = e.ino in
  fun cpu ~file_off ~huge_ok ->
    let f = find_file t ino in
    if huge_ok then begin
      match chunk_huge_phys f ~chunk_off:file_off with
      | Some phys -> Vmem.Huge phys
      | None ->
          let covered = lookup_run f ~file_off <> None in
          if covered then begin
            (* Unaligned or fragmented backing: fall back to base pages,
               and queue the file for reactive rewriting (§3.6). *)
            note ~obj:"fs.rewrite_queue" ~write:true ~site:"fs.fault_queue";
            if not (List.mem ino t.rewrite_queue) then
              t.rewrite_queue <- ino :: t.rewrite_queue;
            match lookup_run f ~file_off with
            | Some (phys, run) when run >= block -> Vmem.Base phys
            | _ -> Vmem.Sigbus
          end
          else if t.read_only then Vmem.Sigbus
            (* degraded: faulting a hole would allocate — refuse *)
          else begin
            (* Hole: allocate a whole aligned extent at fault time so the
               chunk maps as a hugepage (LMDB-style sparse files win here). *)
            match Alloc.alloc_hugepage t.alloc ~cpu:(acpu t cpu) with
            | Some phys ->
                Alloc.zero_extents t.dev cpu [ { Alloc.off = phys; len = huge } ];
                Sched.with_lock f.lock (fun () ->
                    with_txn t cpu ~reserve:4 (fun txn ->
                        add_record t cpu txn f ~file_off ~phys ~len:huge ~asrc:true));
                Counters.incr t.counters "fs.fault_huge_allocs";
                Vmem.Huge phys
            | None -> (
                (* No aligned extents left: 4K on demand. *)
                match
                  Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:block ~prefer_aligned:false
                with
                | Some [ ext ] ->
                    Alloc.zero_extents t.dev cpu [ ext ];
                    Sched.with_lock f.lock (fun () ->
                        with_txn t cpu ~reserve:4 (fun txn ->
                            add_record t cpu txn f ~file_off ~phys:ext.off ~len:block
                              ~asrc:false));
                    Vmem.Base ext.off
                | _ -> Vmem.Sigbus)
          end
    end
    else begin
      match lookup_run f ~file_off with
      | Some (phys, _) -> Vmem.Base phys
      | None when t.read_only -> Vmem.Sigbus
      | None -> (
          match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:block ~prefer_aligned:false with
          | Some [ ext ] ->
              Alloc.zero_extents t.dev cpu [ ext ];
              Sched.with_lock f.lock (fun () ->
                  with_txn t cpu ~reserve:4 (fun txn ->
                      add_record t cpu txn f ~file_off ~phys:ext.off ~len:block ~asrc:false));
              Vmem.Base ext.off
          | _ -> Vmem.Sigbus)
    end

let set_xattr_align t cpu path v =
  Stats.span ~op:"set_xattr_align" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let ino = resolve t cpu path in
  let f = find_file t ino in
  Sched.with_lock f.lock (fun () ->
      f.xattr_align <- v;
      with_txn t cpu ~reserve:2 (fun txn -> persist_header t cpu txn f))

(* Reactive rewriting (§3.6): a background pass that rewrites fragmented
   memory-mapped files using big allocations.  As in the paper, the new
   copy is built under a fresh (not-yet-valid) inode and a single journal
   transaction atomically deletes the old file and points the directory
   entry at the new one.  Open files are skipped (retried next pass). *)
let rewrite_one t cpu f =
  let size = Units.round_up f.size block in
  if size = 0 then false
  else
    match alloc_ino t cpu with
    | None -> false
    | Some new_ino -> (
        match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:size ~prefer_aligned:true with
        | None ->
            release_ino t new_ino;
            false (* not enough space; leave the file alone *)
        | Some exts ->
            let nf = new_file t new_ino Types.Regular in
            init_inode_slots t cpu new_ino;
            nf.size <- f.size;
            nf.xattr_align <- f.xattr_align;
            (* Copy current contents into the new extents and record them
               under the new inode (which is still invalid on PM, so a
               crash here simply leaks nothing: the scan ignores it). *)
            let pf = ref 0 in
            List.iter
              (fun (ext : Alloc.extent) ->
                Device.annotate t.dev (Fresh { addr = ext.off; len = ext.len });
                Device.with_site t.dev site_rewrite (fun () ->
                    let copied = ref 0 in
                    while !copied < ext.len do
                      (match lookup_run f ~file_off:(!pf + !copied) with
                      | Some (phys, run) ->
                          let n = min run (ext.len - !copied) in
                          Device.copy_within_nt t.dev cpu ~src:phys ~dst:(ext.off + !copied)
                            ~len:n;
                          copied := !copied + n
                      | None ->
                          Device.memset_nt t.dev cpu ~off:(ext.off + !copied)
                            ~len:(ext.len - !copied) '\000';
                          copied := ext.len)
                    done);
                with_txn t cpu ~reserve:6 (fun txn ->
                    add_record t cpu txn nf ~file_off:!pf ~phys:ext.off ~len:ext.len
                      ~asrc:(ext.len = huge && Units.is_aligned ext.off huge));
                pf := !pf + ext.len)
              exts;
            Device.with_site t.dev site_rewrite (fun () -> Device.fence t.dev cpu);
            (* The atomic swap: old inode dies, dentry re-points, new inode
               becomes valid — one transaction (§3.6). *)
            let parent = find_file t f.parent in
            let slot_phys =
              match Dir_index.lookup (Option.get parent.dir) cpu f.dname with
              | Some (_, s) -> s
              | None -> Types.err ENOENT "rewrite: dentry for %s vanished" f.dname
            in
            with_txn t cpu ~reserve:8 (fun txn ->
                persist_header t cpu txn nf;
                meta_write t cpu txn ~addr:(inode_addr t f.ino)
                  (Codec.Inode.encode_header { (header_of f) with valid = false });
                write_dentry t cpu txn ~slot_phys ~ino:new_ino ~name:f.dname);
            Dir_index.remove (Option.get parent.dir) cpu f.dname;
            Dir_index.add (Option.get parent.dir) cpu ~name:f.dname ~ino:new_ino
              ~slot:slot_phys;
            nf.parent <- f.parent;
            nf.dname <- f.dname;
            free_file_space t f;
            note ~obj:"fs.files" ~write:true ~site:"fs.rewrite_one";
            Hashtbl.remove t.files f.ino;
            release_ino t f.ino;
            Counters.incr t.counters "fs.reactive_rewrites";
            true)

let run_rewriter t cpu =
  if t.read_only then 0
  else begin
  note ~obj:"fs.rewrite_queue" ~write:true ~site:"fs.run_rewriter";
  let queue = t.rewrite_queue in
  t.rewrite_queue <- [];
  let rewritten = ref 0 in
  List.iter
    (fun ino ->
      match Hashtbl.find_opt t.files ino with
      | None -> ()
      | Some f ->
          if Fd_table.is_open_ino t.fds ino then
            (* Still open (possibly mapped): retry on a later pass. *)
            t.rewrite_queue <- ino :: t.rewrite_queue
          else
            Sched.with_lock f.lock (fun () ->
                if rewrite_one t cpu f then incr rewritten))
    queue;
  !rewritten
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let statfs t =
  let capacity = Array.fold_left (fun acc (_, len) -> acc + len) 0 t.layout.stripes in
  let free = Alloc.free_bytes t.alloc in
  {
    Types.capacity;
    used = capacity - free;
    free;
    free_extents =
      (let holes = ref 0 in
       for c = 0 to t.cfg.cpus - 1 do
         holes := !holes + snd (Alloc.hole_stats t.alloc ~cpu:c)
       done;
       Alloc.free_aligned_extents t.alloc + !holes);
    largest_free = (if Alloc.free_aligned_extents t.alloc > 0 then huge else 0);
    aligned_free_2m = Alloc.aligned_region_count t.alloc;
  }

let file_extents t cpu path =
  let ino = resolve t cpu path in
  let f = find_file t ino in
  List.rev (Int_map.fold f.records ~init:[] ~f:(fun acc o r -> (o, r.phys, r.len) :: acc))

let rewrite_queue_length t = List.length t.rewrite_queue
