(** WineFS — the paper's hugepage-aware PM file system (§3).

    The orchestrating facade over the five core layers: {!Txn} (per-CPU
    undo journaling, §3.4), {!Inode} (on-PM inode tables, §3.3),
    {!Extent_map} (record/slot run map + metadata-block pool, §3.3),
    {!Datapath} (hybrid data atomicity and the hugepage fault path,
    §3.5/§3.6) and {!Namespace} (paths, dentries, journaled namespace
    operations).  The facade owns format/mount/unmount, the fd table,
    the rewrite queue and the per-operation syscall wrappers (stats
    span, simulated syscall cost, EROFS guard, operation counters);
    everything mechanism-specific lives in the layers.  DESIGN.md §10
    has the module/ownership diagram. *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Fd_table = Repro_vfs.Fd_table
module Degraded = Repro_vfs.Degraded
module Cost = Repro_vfs.Fs_intf.Cost
module Alloc = Repro_alloc.Aligned_alloc
module Extent_tree = Repro_rbtree.Extent_tree
module Int_map = Repro_rbtree.Rbtree.Int_map
module Stats = Repro_stats.Stats

let name = "WineFS"
let huge = Units.huge_page
let block = Units.base_page
let root_ino = Namespace.root_ino

(* Durability-lint site labels for the PM accesses the facade itself
   issues (the layers carry their own). *)
module Site = Repro_pmem.Site

let site_sb = Site.v "core" "superblock"
let site_serial = Site.v "core" "serial"
let site_format = Site.v "core" "format"
let site_rewrite = Site.v "core" "rewrite"
let site_mount = Site.v "core" "mount"

type t = {
  dev : Device.t;
  cfg : Types.config;
  layout : Layout.t;
  txns : Txn.t;
  inodes : Inode.t;
  map : Extent_map.t;
  data : Datapath.t;
  ns : Namespace.t;
  alloc : Alloc.t;
  fds : Fd_table.t;
  counters : Counters.t;
  mutable rewrite_queue : int list; (* inos queued for reactive rewriting *)
  mutable recovery_ns : int;
  mutable read_only : bool;
      (* degraded mount: corruption was detected that could not be
         repaired; every mutating operation fails with EROFS *)
}

let count_fault t name n = Degraded.count_fault t.counters name n
let require_writable t = Degraded.require_writable ~read_only:t.read_only
let note ~obj ~write ~site = if Sched.monitored () then Sched.access ~obj ~write ~site
let acpu t (cpu : Cpu.t) = cpu.id mod t.cfg.Types.cpus

(* Build the layer stack bottom-up over an already-recovered journal set,
   allocator and inode layer (mount passes the one its scan populated).
   The single [Counters.t] is shared: layers charge the byte counters,
   the facade charges the per-operation ones. *)
let assemble dev cfg layout txns alloc inodes =
  let counters = Counters.create () in
  let map = Extent_map.create ~dev ~layout ~txns ~inodes ~alloc in
  let data = Datapath.create ~dev ~cfg ~txns ~inodes ~map ~alloc ~counters in
  let ns = Namespace.create ~dev ~txns ~inodes ~map in
  {
    dev;
    cfg;
    layout;
    txns;
    inodes;
    map;
    data;
    ns;
    alloc;
    fds = Fd_table.create ();
    counters;
    rewrite_queue = [];
    recovery_ns = 0;
    read_only = false;
  }

(* ------------------------------------------------------------------ *)
(* Format and mount                                                    *)

let write_sb t cpu ~clean =
  let sb =
    {
      Codec.Superblock.size = t.layout.size;
      cpus = t.cfg.cpus;
      inodes_per_cpu = t.layout.inodes_per_cpu;
      mode_strict = Types.is_strict t.cfg.mode;
      clean;
    }
  in
  let b = Codec.Superblock.encode sb in
  (* Primary + replica, both persisted at write time: mount's recovery
     reads must only ever see durable copies, and either copy can repair
     the other. *)
  Device.with_site t.dev site_sb (fun () ->
      Device.write t.dev cpu ~off:0 ~src:b ~src_off:0 ~len:(Bytes.length b);
      Device.persist t.dev cpu ~off:0 ~len:(Bytes.length b);
      Device.write t.dev cpu ~off:Layout.sb_replica_off ~src:b ~src_off:0
        ~len:(Bytes.length b);
      Device.persist t.dev cpu ~off:Layout.sb_replica_off ~len:(Bytes.length b))

let invalidate_serial t cpu =
  Device.with_site t.dev site_serial @@ fun () ->
  Device.write t.dev cpu ~off:t.layout.serial_off ~src:Codec.Serial.invalid ~src_off:0
    ~len:(Bytes.length Codec.Serial.invalid);
  Device.persist t.dev cpu ~off:t.layout.serial_off ~len:(Bytes.length Codec.Serial.invalid)

let format dev cfg =
  let cpu = Cpu.make ~id:0 () in
  let layout =
    Layout.compute ~size:(Device.size dev) ~cpus:cfg.Types.cpus
      ~inodes_per_cpu:cfg.inodes_per_cpu
  in
  let cfg = { cfg with Types.inodes_per_cpu = layout.inodes_per_cpu } in
  (* Zero inode tables so invalid inodes parse as invalid; the zeroes must
     be durable — mount scans the tables, and a crash between format and
     the first inode write would otherwise parse stale bytes as inodes. *)
  Device.with_site dev site_format (fun () ->
      Array.iter
        (fun off ->
          let len = layout.inodes_per_cpu * Layout.inode_bytes in
          Device.memset dev cpu ~off ~len '\000';
          Device.persist dev cpu ~off ~len)
        layout.inode_table_off);
  let txns = Txn.format dev cpu layout in
  let alloc = Alloc.create ~cpus:cfg.cpus ~regions:layout.stripes in
  let t = assemble dev cfg layout txns alloc (Inode.create ~dev ~layout ~txns) in
  Inode.init_free t.inodes;
  Extent_map.seed_meta_pool t.map;
  (* Root directory (cpu 0, idx 0 -> ino 1). *)
  let root = Inode.install t.inodes root_ino Types.Directory in
  Inode.init_slots t.inodes cpu root_ino;
  Txn.with_txn t.txns cpu ~reserve:4 (fun txn -> Inode.persist_header t.inodes cpu txn root);
  invalidate_serial t cpu;
  write_sb t cpu ~clean:false;
  t

(* Mount: recover journals, rebuild DRAM indexes by scanning the inode
   tables and directory blocks, restore or rebuild the allocator. *)
let mount dev cfg =
  Device.with_site dev site_mount @@ fun () ->
  let cpu = Cpu.make ~id:0 () in
  let t0 = Simclock.now cpu.clock in
  (* Everything read from here until the state is rebuilt is recovery
     input: the lint flags any line that was not durable. *)
  Device.annotate dev Recovery_begin;
  (* Scrub bookkeeping: every corruption the mount encounters is counted
     as detected, then either repaired (from a redundant copy) or refused
     (the affected object — or the whole mount — degrades). *)
  let detected = ref 0 and repaired = ref 0 and refused = ref 0 in
  let degraded = ref false in
  (* Superblock: primary at 0, replica at Layout.sb_replica_off; a
     poisoned line reads as a checksum-class failure.  Either good copy
     repairs the other in place (a full-line store clears poison). *)
  let sb_read off =
    let b = Bytes.create Codec.Superblock.bytes in
    match Device.read dev cpu ~off ~len:Codec.Superblock.bytes ~dst:b ~dst_off:0 with
    | () -> Codec.Superblock.decode_checked b
    | exception Device.Media_error _ -> `Bad_csum
  in
  let sb_repair off sb =
    let b = Codec.Superblock.encode sb in
    Device.write dev cpu ~off ~src:b ~src_off:0 ~len:(Bytes.length b);
    Device.persist dev cpu ~off ~len:(Bytes.length b);
    incr repaired
  in
  let sb =
    match (sb_read 0, sb_read Layout.sb_replica_off) with
    | `Ok sb, `Ok _ -> sb
    | `Ok sb, (`Bad_csum | `Bad_magic) ->
        incr detected;
        sb_repair Layout.sb_replica_off sb;
        sb
    | (`Bad_csum | `Bad_magic), `Ok sb ->
        incr detected;
        sb_repair 0 sb;
        sb
    | `Bad_magic, `Bad_magic -> Types.err EINVAL "not a WineFS image"
    | _ ->
        incr detected;
        incr refused;
        Types.err EIO "superblock corrupt in both copies"
  in
  let cfg = { cfg with Types.cpus = sb.cpus; inodes_per_cpu = sb.inodes_per_cpu } in
  let layout = Layout.compute ~size:sb.size ~cpus:sb.cpus ~inodes_per_cpu:sb.inodes_per_cpu in
  (* Phase 1: journal recovery — roll back unfinished transactions in
     descending global txn-id order (§3.6 "Journal Recovery"). *)
  let txns = Txn.attach dev layout in
  let r = Txn.recover txns cpu in
  detected := !detected + r.refused_journals + r.csum_failures;
  refused := !refused + r.refused_journals;
  repaired := !repaired + r.csum_failures;
  if r.refused_journals > 0 then degraded := true;
  (* Phase 2: scan the per-CPU inode tables (parallel in the paper; the
     simulated cost model charges the reads). *)
  let inodes = Inode.create ~dev ~layout ~txns in
  let used =
    Inode.scan_tables inodes cpu ~on_refuse:(fun _ino _why ->
        incr detected;
        incr refused;
        degraded := true)
  in
  if Inode.is_bad inodes root_ino then Types.err EIO "corrupt image: root inode refused";
  if Option.is_none (Inode.find_opt inodes root_ino) then
    Types.err EINVAL "corrupt image: no root";
  (* Phase 3: allocator — from the serialized free list when the unmount
     was clean, otherwise recomputed from the used-extent set. *)
  let serial_ok =
    if not sb.clean then None
    else begin
      let buf = Bytes.create layout.serial_len in
      match Device.read dev cpu ~off:layout.serial_off ~len:layout.serial_len ~dst:buf ~dst_off:0 with
      | () -> Codec.Serial.decode buf
      | exception Device.Media_error _ ->
          (* The serialized free list is redundant with a scan: repair by
             recomputing from the used-extent set. *)
          incr detected;
          incr repaired;
          None
    end
  in
  (* Metadata-region blocks rebuild their own free list; data extents
     rebuild the alignment-aware allocator (one tree per stripe, so free
     space never coalesces across stripe boundaries). *)
  let in_meta (off, len) = Layout.in_meta_pool layout ~off ~len in
  let meta_shadow = Extent_tree.create () in
  Extent_tree.insert_free meta_shadow ~off:layout.meta_pool_off ~len:layout.meta_pool_len;
  List.iter
    (fun (off, len) ->
      if in_meta (off, len) then
        if not (Extent_tree.alloc_exact meta_shadow ~off ~len) then
          Types.err EINVAL "corrupt image: metadata block %d double-used" off)
    used;
  let free_list =
    match serial_ok with
    | Some l -> l
    | None -> (
        let data_used = List.filter (fun e -> not (in_meta e)) used in
        match Alloc.free_lists_of_used ~regions:layout.stripes ~used:data_used with
        | Ok l -> l
        | Error m -> Types.err EINVAL "corrupt image: %s" m)
  in
  let alloc = Alloc.restore ~cpus:sb.cpus ~regions:layout.stripes ~free:free_list in
  (* Layer assembly reuses the scanned inode layer. *)
  let t = assemble dev cfg layout txns alloc inodes in
  Extent_tree.iter meta_shadow (fun ~off ~len -> Extent_map.add_meta_free t.map ~off ~len);
  (* Directory indexes (reads only — safe after layer assembly).  A dentry
     block on a poisoned line refuses the directory (paths through it then
     fail with EIO) but not the mount. *)
  Inode.iter t.inodes (fun f ->
      if Option.is_some f.dir then
        try Namespace.load_dir_index t.ns cpu f
        with Device.Media_error _ ->
          if f.ino = root_ino then Types.err EIO "corrupt image: root directory unreadable";
          incr detected;
          incr refused;
          degraded := true;
          Inode.refuse t.inodes f.ino "media error reading directory blocks");
  Device.annotate dev Recovery_end;
  t.read_only <- !degraded;
  count_fault t "fault.detected" !detected;
  count_fault t "fault.repaired" !repaired;
  count_fault t "fault.refused" !refused;
  (* A degraded mount must not write: the dirty-superblock stamp and the
     serial-area invalidation are both mutations. *)
  if not t.read_only then begin
    invalidate_serial t cpu;
    write_sb t cpu ~clean:false
  end;
  t.recovery_ns <- Simclock.now cpu.clock - t0;
  t

let unmount t cpu =
  if t.read_only then ()
  else begin
    (* Serialize the allocator free lists (§3.6 "Crash Recovery and
       unmount"); fall back to scan-on-mount when they do not fit. *)
    (match Codec.Serial.encode (Alloc.snapshot t.alloc) ~capacity_bytes:t.layout.serial_len with
    | Some b ->
        Device.with_site t.dev site_serial (fun () ->
            Device.write t.dev cpu ~off:t.layout.serial_off ~src:b ~src_off:0
              ~len:(Bytes.length b);
            Device.persist t.dev cpu ~off:t.layout.serial_off ~len:(Bytes.length b))
    | None -> invalidate_serial t cpu);
    write_sb t cpu ~clean:true
  end

let recovery_ns t = t.recovery_ns
let device t = t.dev
let config t = t.cfg
let counters t = t.counters
let read_only t = t.read_only
let refused_inodes t = Inode.refused t.inodes

(* ------------------------------------------------------------------ *)
(* Namespace operations                                                *)

let mkdir t cpu path =
  Stats.span ~op:"mkdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  Namespace.mkdir t.ns cpu path;
  Counters.incr t.counters "fs.mkdir"

let create t cpu path =
  Stats.span ~op:"create" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let f = Namespace.create_file t.ns cpu path in
  Counters.incr t.counters "fs.create";
  Fd_table.alloc t.fds ~ino:f.ino ~flags:Types.o_creat_rdwr

let unlink t cpu path =
  Stats.span ~op:"unlink" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  Namespace.unlink t.ns cpu path;
  Counters.incr t.counters "fs.unlink"

let rmdir t cpu path =
  Stats.span ~op:"rmdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  Namespace.rmdir t.ns cpu path;
  Counters.incr t.counters "fs.rmdir"

let rename t cpu ~old_path ~new_path =
  Stats.span ~op:"rename" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  Namespace.rename t.ns cpu ~old_path ~new_path;
  Counters.incr t.counters "fs.rename"

let readdir t cpu path =
  Stats.span ~op:"readdir" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  Namespace.readdir t.ns cpu path

let stat t cpu path =
  Stats.span ~op:"stat" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let ino = Namespace.resolve t.ns cpu path in
  let f = Inode.find t.inodes ino in
  {
    Types.st_ino = ino;
    st_kind = f.kind;
    st_size = f.size;
    st_blocks =
      Int_map.fold f.records ~init:0 ~f:(fun acc _ (r : Inode.record) -> acc + r.len)
      + (List.length f.overflow * block);
    st_nlink = f.nlink;
  }

let exists t cpu path =
  match Namespace.resolve t.ns cpu path with
  | _ -> true
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> false

let openf t cpu path (flags : Types.open_flags) =
  Stats.span ~op:"open" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  if flags.wr || flags.creat || flags.trunc then require_writable t;
  match Namespace.resolve t.ns cpu path with
  | ino ->
      if flags.creat && flags.excl then Types.err EEXIST "%s" path;
      let f = Inode.find t.inodes ino in
      if Types.is_dir f.kind && flags.wr then Types.err EISDIR "%s" path;
      if flags.trunc && Types.is_regular f.kind && f.size > 0 then
        Datapath.truncate_on_open t.data cpu f;
      Fd_table.alloc t.fds ~ino ~flags
  | exception Types.Error (ENOENT, _) when flags.creat ->
      let f = Namespace.create_file t.ns cpu path in
      Fd_table.alloc t.fds ~ino:f.ino ~flags

let close t cpu fd =
  Stats.span ~op:"close" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  Fd_table.close t.fds fd

let file_size t fd =
  let e = Fd_table.get t.fds fd in
  (Inode.find t.inodes e.ino).size

(* ------------------------------------------------------------------ *)
(* Data operations                                                     *)

let pwrite_sub t cpu fd ~off ~src ~src_off ~len =
  Stats.span ~op:"pwrite" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = Inode.find t.inodes e.ino in
  if Types.is_dir f.kind then Types.err EISDIR "fd %d" fd;
  Datapath.pwrite t.data cpu f ~off ~src ~src_off ~len

let pwrite t cpu fd ~off ~src =
  pwrite_sub t cpu fd ~off ~src ~src_off:0 ~len:(String.length src)

let append t cpu fd ~src =
  let e = Fd_table.get t.fds fd in
  let f = Inode.find t.inodes e.ino in
  pwrite t cpu fd ~off:f.size ~src

let pread t cpu fd ~off ~len =
  Stats.span ~op:"pread" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.rd then Types.err EBADF "fd %d not readable" fd;
  let f = Inode.find t.inodes e.ino in
  if Types.is_dir f.kind then Types.err EISDIR "fd %d" fd;
  Datapath.pread t.data cpu f ~off ~len

let fsync t cpu fd =
  Stats.span ~op:"fsync" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  let f = Inode.find t.inodes e.ino in
  Datapath.fsync t.data cpu f;
  Counters.incr t.counters "fs.fsync"

let fallocate t cpu fd ~off ~len =
  Stats.span ~op:"fallocate" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  let f = Inode.find t.inodes e.ino in
  Datapath.fallocate t.data cpu f ~off ~len;
  Counters.incr t.counters "fs.fallocate"

let ftruncate t cpu fd new_size =
  Stats.span ~op:"ftruncate" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let e = Fd_table.get t.fds fd in
  let f = Inode.find t.inodes e.ino in
  Datapath.ftruncate t.data cpu f new_size;
  Counters.incr t.counters "fs.ftruncate"

(* ------------------------------------------------------------------ *)
(* Memory mapping: the hugepage-aware fault path (§3.6)                *)

let mmap_backing t fd : Vmem.backing =
  let e = Fd_table.get t.fds fd in
  let enqueue ino =
    (* Queue the file for reactive rewriting (§3.6). *)
    note ~obj:"fs.rewrite_queue" ~write:true ~site:"fs.fault_queue";
    if not (List.mem ino t.rewrite_queue) then t.rewrite_queue <- ino :: t.rewrite_queue
  in
  Datapath.fault t.data ~read_only:(fun () -> t.read_only) ~enqueue e.ino

let set_xattr_align t cpu path v =
  Stats.span ~op:"set_xattr_align" cpu @@ fun () ->
  Cost.charge_syscall cpu;
  require_writable t;
  let ino = Namespace.resolve t.ns cpu path in
  let f = Inode.find t.inodes ino in
  Sched.with_lock f.lock (fun () ->
      f.xattr_align <- v;
      Txn.with_txn t.txns cpu ~reserve:2 (fun txn -> Inode.persist_header t.inodes cpu txn f))

(* ------------------------------------------------------------------ *)
(* Reactive rewriting (§3.6)                                           *)

(* A background pass that rewrites fragmented memory-mapped files using
   big allocations.  As in the paper, the new copy is built under a fresh
   (not-yet-valid) inode and a single journal transaction atomically
   deletes the old file and points the directory entry at the new one.
   Open files are skipped (retried next pass). *)
let rewrite_one t cpu (f : Inode.file) =
  let size = Units.round_up f.size block in
  if size = 0 then false
  else
    match Inode.alloc_ino t.inodes cpu with
    | None -> false
    | Some new_ino -> (
        match Alloc.alloc t.alloc ~cpu:(acpu t cpu) ~len:size ~prefer_aligned:true with
        | None ->
            Inode.release_ino t.inodes new_ino;
            false (* not enough space; leave the file alone *)
        | Some exts ->
            let nf = Inode.install t.inodes new_ino Types.Regular in
            Inode.init_slots t.inodes cpu new_ino;
            nf.size <- f.size;
            nf.xattr_align <- f.xattr_align;
            (* Copy current contents into the new extents and record them
               under the new inode (which is still invalid on PM, so a
               crash here simply leaks nothing: the scan ignores it). *)
            let pf = ref 0 in
            List.iter
              (fun (ext : Alloc.extent) ->
                Device.annotate t.dev (Fresh { addr = ext.off; len = ext.len });
                Device.with_site t.dev site_rewrite (fun () ->
                    let copied = ref 0 in
                    while !copied < ext.len do
                      (match Extent_map.lookup_run f ~file_off:(!pf + !copied) with
                      | Some (phys, run) ->
                          let n = min run (ext.len - !copied) in
                          Device.copy_within_nt t.dev cpu ~src:phys ~dst:(ext.off + !copied)
                            ~len:n;
                          copied := !copied + n
                      | None ->
                          Device.memset_nt t.dev cpu ~off:(ext.off + !copied)
                            ~len:(ext.len - !copied) '\000';
                          copied := ext.len)
                    done);
                Txn.with_txn t.txns cpu ~reserve:6 (fun txn ->
                    Extent_map.add_record t.map cpu txn nf ~file_off:!pf ~phys:ext.off
                      ~len:ext.len
                      ~asrc:(ext.len = huge && Units.is_aligned ext.off huge));
                pf := !pf + ext.len)
              exts;
            Device.with_site t.dev site_rewrite (fun () -> Device.fence t.dev cpu);
            (* The atomic swap: old inode dies, dentry re-points, new inode
               becomes valid — one transaction (§3.6). *)
            let parent = Inode.find t.inodes f.parent in
            let slot_phys = Namespace.rewrite_dentry_slot t.ns cpu ~parent ~name:f.dname in
            Txn.with_txn t.txns cpu ~reserve:8 (fun txn ->
                Inode.persist_header t.inodes cpu txn nf;
                Inode.persist_invalid t.inodes cpu txn f;
                Namespace.write_dentry t.ns cpu txn ~slot_phys ~ino:new_ino ~name:f.dname);
            Namespace.retarget_index t.ns cpu ~parent ~name:f.dname ~ino:new_ino
              ~slot:slot_phys;
            nf.parent <- f.parent;
            nf.dname <- f.dname;
            Extent_map.free_file_space t.map f;
            Inode.forget t.inodes ~site:"fs.rewrite_one" f.ino;
            Inode.release_ino t.inodes f.ino;
            Counters.incr t.counters "fs.reactive_rewrites";
            true)

let run_rewriter t cpu =
  if t.read_only then 0
  else begin
    note ~obj:"fs.rewrite_queue" ~write:true ~site:"fs.run_rewriter";
    let queue = t.rewrite_queue in
    t.rewrite_queue <- [];
    let rewritten = ref 0 in
    List.iter
      (fun ino ->
        match Inode.find_opt t.inodes ino with
        | None -> ()
        | Some f ->
            if Fd_table.is_open_ino t.fds ino then
              (* Still open (possibly mapped): retry on a later pass. *)
              t.rewrite_queue <- ino :: t.rewrite_queue
            else Sched.with_lock f.lock (fun () -> if rewrite_one t cpu f then incr rewritten))
      queue;
    !rewritten
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let statfs t =
  let capacity = Array.fold_left (fun acc (_, len) -> acc + len) 0 t.layout.stripes in
  let free = Alloc.free_bytes t.alloc in
  {
    Types.capacity;
    used = capacity - free;
    free;
    free_extents =
      (let holes = ref 0 in
       for c = 0 to t.cfg.cpus - 1 do
         holes := !holes + snd (Alloc.hole_stats t.alloc ~cpu:c)
       done;
       Alloc.free_aligned_extents t.alloc + !holes);
    largest_free = (if Alloc.free_aligned_extents t.alloc > 0 then huge else 0);
    aligned_free_2m = Alloc.aligned_region_count t.alloc;
  }

let file_extents t cpu path =
  let ino = Namespace.resolve t.ns cpu path in
  let f = Inode.find t.inodes ino in
  List.rev
    (Int_map.fold f.records ~init:[] ~f:(fun acc o (r : Inode.record) ->
         (o, r.phys, r.len) :: acc))

let rewrite_queue_length t = List.length t.rewrite_queue
