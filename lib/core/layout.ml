open Repro_util

type t = {
  size : int;
  cpus : int;
  inodes_per_cpu : int;
  journal_entries : int;
  journal_copy_bytes : int;
  sb_off : int;
  journal_off : int array;
  inode_table_off : int array;
  serial_off : int;
  serial_len : int;
  meta_pool_off : int;
  meta_pool_len : int;
  data_off : int;
  stripes : (int * int) array;
}

let inode_bytes = 256
let inline_extents = 8
let sb_bytes = 4096

(* The 64B superblock replica lives in the second half of the (otherwise
   unused) 4K superblock page — no layout change, and far enough from the
   primary that one corrupt line never takes out both copies. *)
let sb_replica_off = sb_bytes / 2

let compute ~size ~cpus ~inodes_per_cpu =
  if cpus <= 0 then invalid_arg "Layout.compute: non-positive cpus";
  (* Clamp metadata to at most a quarter of the partition. *)
  let inodes_per_cpu =
    let budget = size / 4 / cpus / inode_bytes in
    max 64 (min inodes_per_cpu budget)
  in
  let journal_entries = 256 in
  let journal_copy_bytes =
    let cap = size / (cpus * 16) in
    max (64 * Units.kib) (min (Units.huge_page + (64 * Units.kib)) cap)
  in
  let journal_bytes =
    Units.round_up
      (Repro_journal.Undo_journal.bytes_needed ~entries:journal_entries
         ~copy_bytes:journal_copy_bytes)
      Units.base_page
  in
  let inode_table_bytes = Units.round_up (inodes_per_cpu * inode_bytes) Units.base_page in
  let serial_len = max (256 * Units.kib) (size / 128) in
  let meta_pool_len = max (512 * Units.kib) (min (64 * Units.mib) (size / 32)) in
  let sb_off = 0 in
  let journal_off = Array.init cpus (fun i -> sb_bytes + (i * journal_bytes)) in
  let inode_table_off =
    Array.init cpus (fun i -> sb_bytes + (cpus * journal_bytes) + (i * inode_table_bytes))
  in
  let serial_off = sb_bytes + (cpus * (journal_bytes + inode_table_bytes)) in
  let meta_pool_off = serial_off + serial_len in
  let data_off = Units.round_up (meta_pool_off + meta_pool_len) Units.huge_page in
  if data_off + Units.huge_page > size then
    invalid_arg "Layout.compute: device too small for WineFS metadata";
  let data_len = size - data_off in
  (* Per-CPU stripes, each starting 2MB-aligned. *)
  let stripe = Units.round_down (data_len / cpus) Units.huge_page in
  let stripe = max Units.huge_page stripe in
  let stripes =
    Array.init cpus (fun i ->
        let off = data_off + (i * stripe) in
        let len = if i = cpus - 1 then size - off else stripe in
        (off, len))
  in
  (* If the device is very small the last stripes may be empty; validate. *)
  Array.iter (fun (off, len) -> if len <= 0 || off + len > size then
      invalid_arg "Layout.compute: device too small for per-CPU stripes") stripes;
  {
    size;
    cpus;
    inodes_per_cpu;
    journal_entries;
    journal_copy_bytes;
    sb_off;
    journal_off;
    inode_table_off;
    serial_off;
    serial_len;
    meta_pool_off;
    meta_pool_len;
    data_off;
    stripes;
  }

let ino_of t ~cpu ~idx = (cpu * t.inodes_per_cpu) + idx + 1
let cpu_of_ino t ino = (ino - 1) / t.inodes_per_cpu
let idx_of_ino t ino = (ino - 1) mod t.inodes_per_cpu
let max_ino t = t.cpus * t.inodes_per_cpu

let inode_off t ino =
  let cpu = cpu_of_ino t ino and idx = idx_of_ino t ino in
  t.inode_table_off.(cpu) + (idx * inode_bytes)

let in_meta_pool t ~off ~len =
  len > 0 && off >= t.meta_pool_off && off + len <= t.meta_pool_off + t.meta_pool_len

let in_data_area t ~off ~len = len > 0 && off >= t.data_off && off + len <= t.size
