(** Inode layer: on-PM inode tables in the fixed per-CPU metadata regions
    (§3.3 "Layout: containing fragmentation", Figure 5).

    Owns inode addressing ({!inode_addr}, {!slot_addr}), header / size /
    extent-slot persistence (all journaled through {!Txn}), CRC-checked
    loading and the mount-time table scan (§3.6, the scrub refuses — never
    reuses — corrupt headers), per-CPU inode free lists, and the DRAM
    inode cache itself: {!file} is the in-memory inode every other layer
    operates on. *)

open Repro_util
module Types = Repro_vfs.Types
module Dir_index = Repro_vfs.Dir_index
module Sched = Repro_sched.Sched
module Int_map = Repro_rbtree.Rbtree.Int_map

(** One live extent record: a slot in the inode's persistent extent list
    (inline slots, then overflow blocks) plus its mapping.  [asrc]
    remembers whether the extent came from the aligned pool — the hybrid
    data-atomicity policy (§3.5) journals aligned-pool extents and
    copies-on-write hole extents, keyed on provenance, not incidental
    alignment. *)
type record = { slot : int; phys : int; len : int; asrc : bool }

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  mutable xattr_align : bool;
  mutable parent : int;  (** directory containing this node (DRAM only) *)
  mutable dname : string;  (** name under [parent] (DRAM only) *)
  records : record Int_map.t;  (** file_off -> record, non-overlapping *)
  mutable free_slots : int list;
  mutable slot_cap : int;  (** slots available without a new overflow block *)
  mutable overflow : int list;  (** overflow block phys addrs, chain order *)
  mutable dir : Dir_index.t option;  (** dirs: name -> (ino, dentry slot phys) *)
  mutable free_dentries : int list;  (** dirs: free dentry slot phys offsets *)
  lock : Sched.mutex;
  mutable dirty_bytes : int;  (** relaxed mode: unflushed data *)
}

type t

val create : dev:Repro_pmem.Device.t -> layout:Layout.t -> txns:Txn.t -> t

(* -- Addressing -- *)

val inode_addr : t -> int -> int
(** Physical offset of an inode record by global inode number. *)

val slot_addr : t -> file -> int -> int
(** Physical offset of an extent slot (inline, or in an overflow block). *)

(* -- Persistence (all journaled via {!Txn.meta_write}) -- *)

val persist_header : t -> Cpu.t -> Txn.txn -> file -> unit
val persist_invalid : t -> Cpu.t -> Txn.txn -> file -> unit
(** Persist the header with [valid = false]: the journaled inode kill used
    by unlink / rmdir / rename-over / rewrite. *)

val persist_size : t -> Cpu.t -> Txn.txn -> file -> unit
(** Size-only update: fine-grained journaling that keeps the append path
    cheap (§3.5) — two 8-byte in-place writes (size + checksum words),
    not a full header re-journal. *)

val persist_slot :
  t -> Cpu.t -> Txn.txn -> file -> slot:int -> file_off:int -> phys:int -> len:int ->
  asrc:bool -> unit

val clear_slot : t -> Cpu.t -> Txn.txn -> file -> int -> unit
(** Zero an extent slot (record fully removed). *)

val init_slots : t -> Cpu.t -> int -> unit
(** Zero a freshly-allocated inode's inline extent slots before its header
    becomes valid, so a later mount cannot resurrect a previous owner's
    records as ghosts. *)

(* -- DRAM inode cache -- *)

val install : t -> int -> Types.file_kind -> file
(** Create and register a fresh in-memory inode. *)

val find : t -> int -> file
(** Raises [EIO] for scrub-refused inodes, [EBADF] for stale ones. *)

val find_opt : t -> int -> file option
val forget : t -> site:string -> int -> unit
val iter : t -> (file -> unit) -> unit

(* -- Inode number allocation (per-CPU free lists with stealing) -- *)

val alloc_ino : t -> Cpu.t -> int option
val release_ino : t -> int -> unit
val init_free : t -> unit
(** Format-time free lists: every slot free except root's (cpu 0, idx 0). *)

(* -- Scrub bookkeeping -- *)

val refuse : t -> int -> string -> unit
val is_bad : t -> int -> bool
val refused : t -> int

(* -- Mount-time loading (§3.6 recovery scan) -- *)

val load_file : t -> Cpu.t -> int -> Codec.Inode.header -> file
(** Read one file's persistent extent list (inline slots + overflow
    chain) into a fresh {!file}. *)

val scan_tables : t -> Cpu.t -> on_refuse:(int -> string -> unit) -> (int * int) list
(** Scan the per-CPU inode tables (parallel in the paper; the simulated
    cost model charges the reads), loading every valid inode and
    rebuilding the per-CPU free lists.  Corrupt or unreadable headers are
    refused via [on_refuse] (and recorded, see {!is_bad}).  Returns the
    used physical extents (data runs + overflow blocks) for the
    allocator rebuild. *)
