(** Binary codecs for WineFS's persistent structures.

    Pure functions between OCaml records and the byte images stored on PM;
    all multi-byte fields are little-endian.  Kept separate from the file
    system so the crash checker and tests can decode raw device state. *)

val dentry_bytes : int
(** 64 — one cache line per directory entry. *)

val max_name : int
(** Longest file name storable in a dentry (47). *)

module Superblock : sig
  type t = {
    size : int;
    cpus : int;
    inodes_per_cpu : int;
    mode_strict : bool;
    clean : bool;
  }

  val bytes : int

  val csum_off : int
  (** Byte offset of the CRC32C field (40); the checksum covers the whole
      64B block with this field zeroed. *)

  val encode : t -> bytes
  (** Includes the checksum. *)

  val decode : bytes -> t option
  (** [None] on bad magic or bad checksum. *)

  val decode_checked : bytes -> [ `Ok of t | `Bad_magic | `Bad_csum ]
  (** Like {!decode} but distinguishes a foreign image from a corrupt
      superblock, so mount can repair the latter from the replica. *)
end

module Inode : sig
  type header = {
    valid : bool;
    is_dir : bool;
    xattr_align : bool;
    size : int;
    nlink : int;
    extent_count : int;
    overflow : int;  (** phys offset of first overflow block; 0 = none *)
  }

  val header_bytes : int
  (** 64 — the journaled unit for inode updates. *)

  val csum_off : int
  (** Byte offset of the header CRC32C field (56). *)

  val encode_header : header -> bytes
  (** Includes the checksum over all 64 bytes (csum field zeroed). *)

  val decode_header : bytes -> header
  (** Does not verify the checksum; see {!header_csum_ok}. *)

  val header_csum_ok : bytes -> bool
  (** Does the stored CRC match the header bytes?  False for blank
      (never-written) slots — test {!header_is_blank} first. *)

  val header_is_blank : bytes -> bool
  (** All 64 bytes zero: an inode slot that has never held a header. *)

  val extent_slot_off : int -> int
  (** Byte offset within the 256B inode of inline extent slot [i]. *)

  val extent_bytes : int
  (** 24. *)

  val encode_extent : file_off:int -> phys:int -> len:int -> bytes
  val decode_extent : bytes -> int * int * int

  val decode_extent_at : bytes -> int -> int * int * int
  (** Decode the record at a byte offset of a bulk-read buffer (no
      per-record allocation). *)

  val asrc_bit : int
  (** Bit 62 of the stored length field marks aligned-pool provenance. *)

  val split_len_field : int -> int * bool
  (** Decode a raw length field into [(len, asrc)]. *)
end

module Dentry : sig
  type t = { ino : int; name : string }

  val encode : t -> bytes
  (** Raises {!Repro_vfs.Types.Error} [ENAMETOOLONG] for long names. *)

  val decode : bytes -> t option
  (** [None] for a free slot (ino = 0). *)

  val decode_at : bytes -> int -> t option
  (** {!decode} at a byte offset of a bulk-read buffer. *)

  val free_slot : bytes
end

module Overflow : sig
  (** Extent-list continuation block (4KB). *)

  val capacity : int
  (** Extent records per block (169). *)

  val header_bytes : int
  val encode_header : next:int -> count:int -> bytes
  val decode_header : bytes -> int * int
  val record_off : int -> int
end

module Serial : sig
  (** Free-list serialization area written on clean unmount. *)

  val encode : (int * int) list -> capacity_bytes:int -> bytes option
  (** [None] when the list does not fit (mount then falls back to a scan). *)

  val decode : bytes -> (int * int) list option
  val invalid : bytes
  (** Marker making the area unparseable (written at mount). *)
end
