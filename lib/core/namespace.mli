(** Namespace layer: path resolution, on-PM directory entries and the
    journaled namespace operations (§3.4 metadata journaling — create,
    unlink, rmdir, rename are each one undo-journal transaction; §3.3 —
    dentry blocks come from the dedicated metadata region).

    A directory's data blocks are arrays of 64B dentry slots, indexed in
    DRAM by {!Repro_vfs.Dir_index}; this module is the only core layer
    that touches [Dir_index] (enforced by @archcheck).  The {!Fs} facade
    wraps each operation with its stats span, syscall cost and EROFS
    guard; the reactive rewriter re-points dentries through
    {!rewrite_dentry_slot} / {!write_dentry} / {!retarget_index} without
    ever seeing the directory structures. *)

open Repro_util

type t

val create :
  dev:Repro_pmem.Device.t -> txns:Txn.t -> inodes:Inode.t -> map:Extent_map.t -> t

val root_ino : int

val resolve : t -> Cpu.t -> string -> int
(** Walk a path to an inode number ([ENOENT]/[ENOTDIR] on failure). *)

val resolve_parent : t -> Cpu.t -> string -> Inode.file * string
(** The parent directory and leaf name of a path. *)

val mkdir : t -> Cpu.t -> string -> unit
val create_file : t -> Cpu.t -> string -> Inode.file
(** Journaled creation of an inode + dentry under the parent's lock
    (create and the [O_CREAT] open path share this). *)

val unlink : t -> Cpu.t -> string -> unit
val rmdir : t -> Cpu.t -> string -> unit
val rename : t -> Cpu.t -> old_path:string -> new_path:string -> unit
val readdir : t -> Cpu.t -> string -> string list

val load_dir_index : t -> Cpu.t -> Inode.file -> unit
(** Mount: rebuild a directory's DRAM index (and its children's
    parent/name backpointers) from its dentry blocks. *)

(* -- Rewriter support (§3.6 atomic swap) -- *)

val rewrite_dentry_slot : t -> Cpu.t -> parent:Inode.file -> name:string -> int
(** Physical dentry slot currently naming [name] in [parent]; [ENOENT] if
    it vanished under the rewriter. *)

val write_dentry : t -> Cpu.t -> Txn.txn -> slot_phys:int -> ino:int -> name:string -> unit
(** Journaled dentry (re-)write. *)

val retarget_index : t -> Cpu.t -> parent:Inode.file -> name:string -> ino:int -> slot:int -> unit
(** Re-point the DRAM index entry at a new inode (after the swap
    transaction committed). *)
