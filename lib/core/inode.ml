open Repro_util
module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Dir_index = Repro_vfs.Dir_index
module Int_map = Repro_rbtree.Rbtree.Int_map

let block = Units.base_page
let site_inode_init = Site.v "core" "inode-init"

type record = { slot : int; phys : int; len : int; asrc : bool }

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  mutable xattr_align : bool;
  mutable parent : int;
  mutable dname : string;
  records : record Int_map.t;
  mutable free_slots : int list;
  mutable slot_cap : int;
  mutable overflow : int list;
  mutable dir : Dir_index.t option;
  mutable free_dentries : int list;
  lock : Sched.mutex;
  mutable dirty_bytes : int;
}

type t = {
  dev : Device.t;
  layout : Layout.t;
  txns : Txn.t;
  files : (int, file) Hashtbl.t;
  bad_inos : (int, string) Hashtbl.t; (* ino -> why the scrub refused it *)
  free : int list array; (* per-CPU inode idx free lists *)
}

(* Race-detector annotations (see {!Repro_race}) for the shared DRAM inode
   table and per-CPU free lists — cross-CPU mutable state the per-CPU
   design is supposed to confine. *)
let note ~obj ~write ~site = if Sched.monitored () then Sched.access ~obj ~write ~site

let create ~dev ~layout ~txns =
  {
    dev;
    layout;
    txns;
    files = Hashtbl.create 1024;
    bad_inos = Hashtbl.create 8;
    free = Array.make layout.Layout.cpus [];
  }

let inode_addr t ino = Layout.inode_off t.layout ino

let slot_addr t f slot =
  if slot < Layout.inline_extents then inode_addr t f.ino + Codec.Inode.extent_slot_off slot
  else begin
    let s = slot - Layout.inline_extents in
    let blk = List.nth f.overflow (s / Codec.Overflow.capacity) in
    blk + Codec.Overflow.record_off (s mod Codec.Overflow.capacity)
  end

let header_of f =
  {
    Codec.Inode.valid = true;
    is_dir = Types.is_dir f.kind;
    xattr_align = f.xattr_align;
    size = f.size;
    nlink = f.nlink;
    extent_count = Int_map.size f.records;
    overflow = (match f.overflow with b :: _ -> b | [] -> 0);
  }

let persist_header t cpu txn f =
  Txn.meta_write t.txns cpu txn ~addr:(inode_addr t f.ino)
    (Codec.Inode.encode_header (header_of f))

let persist_invalid t cpu txn f =
  Txn.meta_write t.txns cpu txn ~addr:(inode_addr t f.ino)
    (Codec.Inode.encode_header { (header_of f) with valid = false })

(* The checksum is recomputed over the header's current device bytes so
   fields this path does not touch (extent_count may lag the record map
   until the next full header persist) stay covered exactly as stored. *)
let persist_size t cpu txn f =
  let addr = inode_addr t f.ino in
  let hdr = Bytes.create Codec.Inode.header_bytes in
  Device.read t.dev cpu ~off:addr ~len:Codec.Inode.header_bytes ~dst:hdr ~dst_off:0;
  Bytes.set_int64_le hdr 8 (Int64.of_int f.size);
  Crc32c.set_zeroed hdr ~off:0 ~len:Codec.Inode.header_bytes ~csum_off:Codec.Inode.csum_off;
  Txn.meta_write t.txns cpu txn ~addr:(addr + 8) (Bytes.sub hdr 8 8);
  Txn.meta_write t.txns cpu txn ~addr:(addr + Codec.Inode.csum_off)
    (Bytes.sub hdr Codec.Inode.csum_off 8)

let persist_slot t cpu txn f ~slot ~file_off ~phys ~len ~asrc =
  let len_field = if asrc then len lor Codec.Inode.asrc_bit else len in
  Txn.meta_write t.txns cpu txn ~addr:(slot_addr t f slot)
    (Codec.Inode.encode_extent ~file_off ~phys ~len:len_field)

let clear_slot t cpu txn f slot =
  Txn.meta_write t.txns cpu txn ~addr:(slot_addr t f slot)
    (Bytes.make Codec.Inode.extent_bytes '\000')

(* A freshly-allocated inode may be a reused slot: its inline extent slots
   must be zeroed before the header becomes valid, or a later mount would
   resurrect the previous owner's records as ghosts.  (The inode is still
   invalid while this runs, so plain stores suffice.) *)
let init_slots t cpu ino =
  Device.with_site t.dev site_inode_init @@ fun () ->
  let off = inode_addr t ino + Codec.Inode.extent_slot_off 0 in
  let len = Layout.inline_extents * Codec.Inode.extent_bytes in
  Device.memset t.dev cpu ~off ~len '\000';
  Device.persist t.dev cpu ~off ~len

let install t ino kind =
  let f =
    {
      ino;
      kind;
      size = 0;
      nlink = (if Types.is_dir kind then 2 else 1);
      xattr_align = false;
      parent = 0;
      dname = "";
      records = Int_map.create ();
      free_slots = [];
      slot_cap = 0;
      overflow = [];
      dir = (if Types.is_dir kind then Some (Dir_index.create Dram_rbtree) else None);
      free_dentries = [];
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
    }
  in
  note ~obj:"fs.files" ~write:true ~site:"fs.install_file";
  Hashtbl.replace t.files ino f;
  f

let find t ino =
  note ~obj:"fs.files" ~write:false ~site:"fs.find_file";
  (match Hashtbl.find_opt t.bad_inos ino with
  | Some why -> Types.err EIO "inode %d refused by scrub: %s" ino why
  | None -> ());
  match Hashtbl.find_opt t.files ino with
  | Some f -> f
  | None -> Types.err EBADF "stale inode %d" ino

let find_opt t ino = Hashtbl.find_opt t.files ino

let forget t ~site ino =
  note ~obj:"fs.files" ~write:true ~site;
  Hashtbl.remove t.files ino

let iter t f = Hashtbl.iter (fun _ v -> f v) t.files

let alloc_ino t (cpu : Cpu.t) =
  let try_cpu c =
    note ~obj:(Printf.sprintf "fs.inodes[%d]" c) ~write:true ~site:"fs.alloc_ino";
    match t.free.(c) with
    | idx :: rest ->
        t.free.(c) <- rest;
        Some (Layout.ino_of t.layout ~cpu:c ~idx)
    | [] -> None
  in
  let cpus = t.layout.Layout.cpus in
  let local = cpu.id mod cpus in
  match try_cpu local with
  | Some ino -> Some ino
  | None ->
      let rec steal c =
        if c >= cpus then None
        else if c = local then steal (c + 1)
        else match try_cpu c with Some ino -> Some ino | None -> steal (c + 1)
      in
      steal 0

let release_ino t ino =
  let c = Layout.cpu_of_ino t.layout ino in
  note ~obj:(Printf.sprintf "fs.inodes[%d]" c) ~write:true ~site:"fs.release_ino";
  t.free.(c) <- Layout.idx_of_ino t.layout ino :: t.free.(c)

let init_free t =
  Array.iteri
    (fun c _ ->
      t.free.(c) <-
        List.init t.layout.Layout.inodes_per_cpu (fun i -> i)
        |> List.filter (fun i -> not (c = 0 && i = 0)))
    t.free

let refuse t ino why = Hashtbl.replace t.bad_inos ino why
let is_bad t ino = Hashtbl.mem t.bad_inos ino
let refused t = Hashtbl.length t.bad_inos

let load_file t cpu ino (h : Codec.Inode.header) =
  let kind = if h.is_dir then Types.Directory else Types.Regular in
  let f = install t ino kind in
  f.size <- h.size;
  f.nlink <- h.nlink;
  f.xattr_align <- h.xattr_align;
  (* Overflow chain. *)
  let rec chain blk acc =
    if blk = 0 then List.rev acc
    else begin
      let hdr = Bytes.create Codec.Overflow.header_bytes in
      Device.read t.dev cpu ~off:blk ~len:Codec.Overflow.header_bytes ~dst:hdr ~dst_off:0;
      let next, _count = Codec.Overflow.decode_header hdr in
      chain next (blk :: acc)
    end
  in
  f.overflow <- chain h.overflow [];
  f.slot_cap <- Layout.inline_extents + (List.length f.overflow * Codec.Overflow.capacity);
  (* Walk every slot; live records have len > 0.  Slots live in contiguous
     regions (the inline area, then each overflow block), so each region is
     one bulk device read decoded in place instead of a 24B read per slot. *)
  let buf = Bytes.create (Codec.Overflow.capacity * Codec.Inode.extent_bytes) in
  let scan_region ~addr ~first_slot ~count =
    Device.read t.dev cpu ~off:addr ~len:(count * Codec.Inode.extent_bytes) ~dst:buf
      ~dst_off:0;
    for i = 0 to count - 1 do
      let slot = first_slot + i in
      let file_off, phys, len_field =
        Codec.Inode.decode_extent_at buf (i * Codec.Inode.extent_bytes)
      in
      let len, asrc = Codec.Inode.split_len_field len_field in
      if len > 0 then Int_map.insert f.records file_off { slot; phys; len; asrc }
      else f.free_slots <- slot :: f.free_slots
    done
  in
  scan_region
    ~addr:(inode_addr t f.ino + Codec.Inode.extent_slot_off 0)
    ~first_slot:0 ~count:Layout.inline_extents;
  List.iteri
    (fun i blk ->
      scan_region
        ~addr:(blk + Codec.Overflow.record_off 0)
        ~first_slot:(Layout.inline_extents + (i * Codec.Overflow.capacity))
        ~count:Codec.Overflow.capacity)
    f.overflow;
  f

let scan_tables t cpu ~on_refuse =
  let layout = t.layout in
  let used = ref [] in
  (* Inode tables are contiguous per CPU, so the header sweep reads whole
     table chunks in one device access and blits each 64B header out of
     the chunk.  A poisoned line anywhere in a chunk fails the bulk read
     before any cost is charged; that chunk falls back to the original
     per-header reads so refusal stays per-inode. *)
  let chunk_inodes = 256 in
  let ib = Layout.inode_bytes in
  let cbuf = Bytes.create (chunk_inodes * ib) in
  let hb = Bytes.create Codec.Inode.header_bytes in
  for c = 0 to layout.Layout.cpus - 1 do
    let free = ref [] in
    let base = ref 0 in
    while !base < layout.Layout.inodes_per_cpu do
      let n = min chunk_inodes (layout.Layout.inodes_per_cpu - !base) in
      let chunk_off = Layout.inode_off layout (Layout.ino_of layout ~cpu:c ~idx:!base) in
      let bulk_ok =
        match Device.read t.dev cpu ~off:chunk_off ~len:(n * ib) ~dst:cbuf ~dst_off:0 with
        | () -> true
        | exception Device.Media_error _ -> false
      in
      for i = 0 to n - 1 do
        let idx = !base + i in
        let ino = Layout.ino_of layout ~cpu:c ~idx in
        let header_ok =
          if bulk_ok then begin
            Bytes.blit cbuf (i * ib) hb 0 Codec.Inode.header_bytes;
            true
          end
          else
            match
              Device.read t.dev cpu ~off:(Layout.inode_off layout ino)
                ~len:Codec.Inode.header_bytes ~dst:hb ~dst_off:0
            with
            | () -> true
            | exception Device.Media_error _ -> false
        in
        if not header_ok then begin
          refuse t ino "poisoned inode header";
          on_refuse ino "poisoned inode header"
        end
        else if Codec.Inode.header_is_blank hb then free := idx :: !free
        else if not (Codec.Inode.header_csum_ok hb) then begin
          (* A non-blank header failing its CRC cannot be trusted in any
             field — the corrupt bit may be [valid] itself — so the slot
             is never scrubbed or reused, only refused. *)
          refuse t ino "inode header failed CRC";
          on_refuse ino "inode header failed CRC"
        end
        else begin
          let h = Codec.Inode.decode_header hb in
          if h.valid then begin
            match load_file t cpu ino h with
            | f ->
                Int_map.iter f.records (fun _ r -> used := (r.phys, r.len) :: !used);
                List.iter (fun blk -> used := (blk, block) :: !used) f.overflow
            | exception Device.Media_error _ ->
                forget t ~site:"fs.scrub" ino;
                refuse t ino "media error loading extent metadata";
                on_refuse ino "media error loading extent metadata"
          end
          else free := idx :: !free
        end
      done;
      base := !base + n
    done;
    t.free.(c) <- List.rev !free
  done;
  !used
