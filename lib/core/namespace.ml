open Repro_util
module Device = Repro_pmem.Device
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Path = Repro_vfs.Path
module Dir_index = Repro_vfs.Dir_index
module Int_map = Repro_rbtree.Rbtree.Int_map

let block = Units.base_page

type t = { dev : Device.t; txns : Txn.t; inodes : Inode.t; map : Extent_map.t }

let create ~dev ~txns ~inodes ~map = { dev; txns; inodes; map }

(* ------------------------------------------------------------------ *)
(* Path resolution                                                     *)

let root_ino = 1

let resolve t cpu path =
  let parts = Path.split path in
  let rec walk ino = function
    | [] -> ino
    | name :: rest -> (
        let f = Inode.find t.inodes ino in
        match f.dir with
        | None -> Types.err ENOTDIR "%s" path
        | Some idx -> (
            match Dir_index.lookup idx cpu name with
            | Some (child, _) -> walk child rest
            | None -> Types.err ENOENT "%s" path))
  in
  walk root_ino parts

let resolve_parent t cpu path =
  let dir = Path.dirname path and name = Path.basename path in
  let ino = resolve t cpu dir in
  let f = Inode.find t.inodes ino in
  if not (Types.is_dir f.kind) then Types.err ENOTDIR "%s" dir;
  (f, name)

(* ------------------------------------------------------------------ *)
(* Directory entries on PM                                             *)

(* A directory's data blocks are arrays of 64B dentry slots.  Finding a
   free slot may extend the directory by one 4K block. *)
let take_dentry_slot t cpu txn (dirf : Inode.file) =
  match dirf.free_dentries with
  | s :: rest ->
      dirf.free_dentries <- rest;
      s
  | [] ->
      let old_size = dirf.size in
      let phys = Extent_map.zeroed_meta_block t.map cpu in
      Extent_map.add_record t.map cpu txn dirf ~file_off:old_size ~phys ~len:block
        ~asrc:false;
      dirf.size <- old_size + block;
      Inode.persist_header t.inodes cpu txn dirf;
      let slots = block / Codec.dentry_bytes in
      dirf.free_dentries <-
        List.init (slots - 1) (fun i -> phys + ((i + 1) * Codec.dentry_bytes));
      phys

let write_dentry t cpu txn ~slot_phys ~ino ~name =
  Txn.meta_write t.txns cpu txn ~addr:slot_phys (Codec.Dentry.encode { ino; name })

let clear_dentry t cpu txn ~slot_phys =
  Txn.meta_write t.txns cpu txn ~addr:slot_phys (Bytes.copy Codec.Dentry.free_slot)

(* ------------------------------------------------------------------ *)
(* Journaled namespace operations (§3.4: one transaction each)         *)

(* Journaled creation of an inode + dentry (create/mkdir share this). *)
let create_node t cpu (parent : Inode.file) name kind ~xattr_align =
  (match Dir_index.lookup (Option.get parent.dir) cpu name with
  | Some _ -> Types.err EEXIST "%s" name
  | None -> ());
  let ino =
    match Inode.alloc_ino t.inodes cpu with
    | Some ino -> ino
    | None -> Types.err ENOSPC "out of inodes"
  in
  let f = Inode.install t.inodes ino kind in
  f.xattr_align <- xattr_align;
  Inode.init_slots t.inodes cpu ino;
  (try
     Txn.with_txn t.txns cpu ~reserve:10 (fun txn ->
         Inode.persist_header t.inodes cpu txn f;
         let slot_phys = take_dentry_slot t cpu txn parent in
         write_dentry t cpu txn ~slot_phys ~ino ~name;
         Dir_index.add (Option.get parent.dir) cpu ~name ~ino ~slot:slot_phys;
         if Types.is_dir kind then begin
           parent.nlink <- parent.nlink + 1;
           Inode.persist_header t.inodes cpu txn parent
         end)
   with e ->
     Inode.forget t.inodes ~site:"fs.create_undo" ino;
     Inode.release_ino t.inodes ino;
     raise e);
  f.parent <- parent.ino;
  f.dname <- name;
  f

let mkdir t cpu path =
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      ignore (create_node t cpu parent name Types.Directory ~xattr_align:false))

let create_file t cpu path =
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      create_node t cpu parent name Types.Regular ~xattr_align:parent.xattr_align)

let unlink t cpu path =
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, slot_phys) ->
          let f = Inode.find t.inodes ino in
          if Types.is_dir f.kind then Types.err EISDIR "%s" path;
          Sched.with_lock f.lock (fun () ->
              Txn.with_txn t.txns cpu ~reserve:6 (fun txn ->
                  clear_dentry t cpu txn ~slot_phys;
                  f.nlink <- f.nlink - 1;
                  if f.nlink = 0 then Inode.persist_invalid t.inodes cpu txn f
                  else Inode.persist_header t.inodes cpu txn f);
              Dir_index.remove idx cpu name;
              parent.free_dentries <- slot_phys :: parent.free_dentries;
              if f.nlink = 0 then begin
                Extent_map.free_file_space t.map f;
                Inode.forget t.inodes ~site:"fs.unlink" ino;
                Inode.release_ino t.inodes ino
              end))

let rmdir t cpu path =
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, slot_phys) ->
          let f = Inode.find t.inodes ino in
          if not (Types.is_dir f.kind) then Types.err ENOTDIR "%s" path;
          if Dir_index.size (Option.get f.dir) > 0 then Types.err ENOTEMPTY "%s" path;
          Txn.with_txn t.txns cpu ~reserve:6 (fun txn ->
              clear_dentry t cpu txn ~slot_phys;
              Inode.persist_invalid t.inodes cpu txn f;
              parent.nlink <- parent.nlink - 1;
              Inode.persist_header t.inodes cpu txn parent);
          Dir_index.remove idx cpu name;
          parent.free_dentries <- slot_phys :: parent.free_dentries;
          Extent_map.free_file_space t.map f;
          Inode.forget t.inodes ~site:"fs.rmdir" ino;
          Inode.release_ino t.inodes ino)

let rename t cpu ~old_path ~new_path =
  let src_parent, src_name = resolve_parent t cpu old_path in
  let dst_parent, dst_name = resolve_parent t cpu new_path in
  (* Lock ordering by inode number prevents ABBA deadlocks. *)
  let locks =
    if src_parent.ino = dst_parent.ino then [ src_parent.lock ]
    else if src_parent.ino < dst_parent.ino then [ src_parent.lock; dst_parent.lock ]
    else [ dst_parent.lock; src_parent.lock ]
  in
  List.iter Sched.lock locks;
  Fun.protect
    ~finally:(fun () -> List.iter Sched.unlock (List.rev locks))
    (fun () ->
      let src_idx = Option.get src_parent.dir and dst_idx = Option.get dst_parent.dir in
      match Dir_index.lookup src_idx cpu src_name with
      | None -> Types.err ENOENT "%s" old_path
      | Some (ino, src_slot) ->
          let moved = Inode.find t.inodes ino in
          let replaced =
            match Dir_index.lookup dst_idx cpu dst_name with
            | Some (dst_ino, _) when dst_ino = ino -> None
            | Some (dst_ino, _) ->
                let victim = Inode.find t.inodes dst_ino in
                if Types.is_dir victim.kind then Types.err EISDIR "%s" new_path;
                Some victim
            | None -> None
          in
          let dst_slot_used = ref 0 in
          Txn.with_txn t.txns cpu ~reserve:10 (fun txn ->
              (match replaced with
              | Some victim ->
                  (* Re-point the existing dentry; invalidate the victim. *)
                  let _, dst_slot = Option.get (Dir_index.lookup dst_idx cpu dst_name) in
                  dst_slot_used := dst_slot;
                  write_dentry t cpu txn ~slot_phys:dst_slot ~ino ~name:dst_name;
                  victim.nlink <- victim.nlink - 1;
                  if victim.nlink = 0 then Inode.persist_invalid t.inodes cpu txn victim
              | None ->
                  let dst_slot = take_dentry_slot t cpu txn dst_parent in
                  dst_slot_used := dst_slot;
                  write_dentry t cpu txn ~slot_phys:dst_slot ~ino ~name:dst_name);
              clear_dentry t cpu txn ~slot_phys:src_slot;
              if Types.is_dir moved.kind && src_parent.ino <> dst_parent.ino then begin
                src_parent.nlink <- src_parent.nlink - 1;
                dst_parent.nlink <- dst_parent.nlink + 1;
                Inode.persist_header t.inodes cpu txn src_parent;
                Inode.persist_header t.inodes cpu txn dst_parent
              end);
          Dir_index.remove src_idx cpu src_name;
          src_parent.free_dentries <- src_slot :: src_parent.free_dentries;
          Dir_index.remove dst_idx cpu dst_name;
          Dir_index.add dst_idx cpu ~name:dst_name ~ino ~slot:!dst_slot_used;
          moved.parent <- dst_parent.ino;
          moved.dname <- dst_name;
          (match replaced with
          | Some victim when victim.nlink = 0 ->
              Extent_map.free_file_space t.map victim;
              Inode.forget t.inodes ~site:"fs.rename" victim.ino;
              Inode.release_ino t.inodes victim.ino
          | _ -> ()))

let readdir t cpu path =
  let ino = resolve t cpu path in
  let f = Inode.find t.inodes ino in
  match f.dir with
  | None -> Types.err ENOTDIR "%s" path
  | Some idx ->
      (* Charge a DRAM walk per entry. *)
      Simclock.advance cpu.Cpu.clock (Dir_index.size idx * 12);
      List.map fst (Dir_index.entries idx)

(* ------------------------------------------------------------------ *)
(* Mount-time index rebuild                                            *)

let load_dir_index t cpu (f : Inode.file) =
  let idx = Option.get f.dir in
  let free = ref [] in
  (* One bulk read per directory extent, decoded slot by slot in place —
     dentries are contiguous within an extent, so the per-dentry 64B
     device reads collapse into one access per extent. *)
  Int_map.iter f.records (fun file_off (r : Inode.record) ->
      let slots = r.len / Codec.dentry_bytes in
      let live =
        if f.size <= file_off then 0
        else min slots ((f.size - file_off + Codec.dentry_bytes - 1) / Codec.dentry_bytes)
      in
      if live > 0 then begin
        let buf = Bytes.create (live * Codec.dentry_bytes) in
        Device.read t.dev cpu ~off:r.phys ~len:(live * Codec.dentry_bytes) ~dst:buf
          ~dst_off:0;
        for i = 0 to live - 1 do
          let phys = r.phys + (i * Codec.dentry_bytes) in
          match Codec.Dentry.decode_at buf (i * Codec.dentry_bytes) with
          | Some d ->
              Dir_index.add idx cpu ~name:d.name ~ino:d.ino ~slot:phys;
              (match Inode.find_opt t.inodes d.ino with
              | Some child ->
                  child.parent <- f.ino;
                  child.dname <- d.name
              | None -> ())
          | None -> free := phys :: !free
        done
      end);
  f.free_dentries <- !free

(* ------------------------------------------------------------------ *)
(* Rewriter support (§3.6 atomic swap)                                 *)

let rewrite_dentry_slot _t cpu ~(parent : Inode.file) ~name =
  match Dir_index.lookup (Option.get parent.dir) cpu name with
  | Some (_, slot_phys) -> slot_phys
  | None -> Types.err ENOENT "rewrite: dentry for %s vanished" name

let retarget_index _t cpu ~(parent : Inode.file) ~name ~ino ~slot =
  let idx = Option.get parent.dir in
  Dir_index.remove idx cpu name;
  Dir_index.add idx cpu ~name ~ino ~slot
