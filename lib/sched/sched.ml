open Repro_util
open Effect
open Effect.Deep

(* A thread is a fiber suspended either in the ready set or on a mutex's
   wait queue.  The scheduler trampoline always resumes the runnable
   thread with the smallest clock; handlers never [continue] inline, so
   native stack depth stays bounded no matter how many effects a thread
   performs. *)

type thread = {
  cpu : Cpu.t;
  mutable resume : (unit -> unit) option; (* runnable continuation *)
  mutable parked : (unit -> unit) option; (* continuation while blocked on a mutex *)
  mutable finished : bool;
  mutable blocked_since : int;
}

type mutex = {
  mutable holder : thread option;
  waiters : thread Queue.t;
  mutable held_outside : bool; (* degraded single-threaded mode *)
}

type _ Effect.t +=
  | Lock : mutex -> unit Effect.t
  | Unlock : mutex -> unit Effect.t
  | Yield : unit Effect.t

let create_mutex () = { holder = None; waiters = Queue.create (); held_outside = false }

let default_cpu = Cpu.make ~id:0 ()

(* Scheduler state; the simulator is single-OS-threaded so globals are
   safe. *)
let active = ref false
let current : thread option ref = ref None
let lock_wait_total = ref 0

let uncontended_lock_ns = 18
let handoff_ns = 40

let self () = match !current with Some t -> t.cpu | None -> default_cpu

let lock m =
  if !active then perform (Lock m)
  else begin
    if m.held_outside then invalid_arg "Sched.lock: deadlock outside scheduler";
    m.held_outside <- true;
    Simclock.advance default_cpu.clock uncontended_lock_ns
  end

let unlock m =
  if !active then perform (Unlock m)
  else if m.held_outside then m.held_outside <- false
  else invalid_arg "Sched.unlock: not held"

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

let yield () = if !active then perform Yield

type stats = { makespan_ns : int; total_busy_ns : int; lock_wait_ns : int }

let run ?(numa_nodes = 1) ~threads:nthreads body =
  if !active then invalid_arg "Sched.run: not reentrant";
  if nthreads <= 0 then invalid_arg "Sched.run: non-positive thread count";
  let threads =
    Array.init nthreads (fun i ->
        let node = if numa_nodes <= 1 then 0 else i * numa_nodes / nthreads in
        {
          cpu = Cpu.make ~id:i ~node ();
          resume = None;
          parked = None;
          finished = false;
          blocked_since = 0;
        })
  in
  active := true;
  lock_wait_total := 0;
  let start t =
    t.resume <-
      Some
        (fun () ->
          match_with
            (fun () -> body t.cpu)
            ()
            {
              retc = (fun () -> t.finished <- true);
              exnc = (fun e -> raise e);
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Lock m ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          Simclock.advance t.cpu.clock uncontended_lock_ns;
                          if m.holder = None && Queue.is_empty m.waiters then begin
                            m.holder <- Some t;
                            t.resume <- Some (fun () -> continue k ())
                          end
                          else begin
                            t.blocked_since <- Simclock.now t.cpu.clock;
                            t.parked <- Some (fun () -> continue k ());
                            Queue.add t m.waiters
                          end)
                  | Unlock m ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          (match m.holder with
                          | Some h when h == t -> ()
                          | _ -> invalid_arg "Sched.unlock: not held by caller");
                          m.holder <- None;
                          (match Queue.take_opt m.waiters with
                          | Some w ->
                              m.holder <- Some w;
                              let wake = Simclock.now t.cpu.clock + handoff_ns in
                              let waited = max 0 (wake - w.blocked_since) in
                              lock_wait_total := !lock_wait_total + waited;
                              Simclock.advance_to w.cpu.clock wake;
                              w.resume <- w.parked;
                              w.parked <- None
                          | None -> ());
                          t.resume <- Some (fun () -> continue k ()))
                  | Yield ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          t.resume <- Some (fun () -> continue k ()))
                  | _ -> None);
            })
  in
  Array.iter start threads;
  (* Trampoline: run the earliest-clock runnable thread. *)
  let rec loop () =
    let next = ref None in
    Array.iter
      (fun t ->
        match t.resume with
        | Some _ when not t.finished -> (
            match !next with
            | Some b when Simclock.now b.cpu.clock <= Simclock.now t.cpu.clock -> ()
            | _ -> next := Some t)
        | _ -> ())
      threads;
    match !next with
    | None -> ()
    | Some t ->
        let k = Option.get t.resume in
        t.resume <- None;
        current := Some t;
        k ();
        current := None;
        loop ()
  in
  (try loop ()
   with e ->
     active := false;
     current := None;
     raise e);
  active := false;
  let stuck = Array.to_list threads |> List.filter (fun t -> not t.finished) in
  if stuck <> [] then begin
    (* Name the stuck threads: which are parked on a mutex, and for how
       long they have been blocked relative to the latest clock. *)
    let now = Array.fold_left (fun acc t -> max acc (Simclock.now t.cpu.clock)) 0 threads in
    let describe t =
      if t.parked <> None then
        Printf.sprintf "thread %d (blocked on mutex since %dns, stuck for %dns)" t.cpu.id
          t.blocked_since
          (max 0 (now - t.blocked_since))
      else Printf.sprintf "thread %d (not runnable)" t.cpu.id
    in
    invalid_arg
      (Printf.sprintf "Sched.run: deadlock — %d of %d threads never finished: %s"
         (List.length stuck) nthreads
         (String.concat ", " (List.map describe stuck)))
  end;
  let makespan = Array.fold_left (fun acc t -> max acc (Simclock.now t.cpu.clock)) 0 threads in
  let busy = Array.fold_left (fun acc t -> acc + Simclock.now t.cpu.clock) 0 threads in
  { makespan_ns = makespan; total_busy_ns = busy; lock_wait_ns = !lock_wait_total }
