open Repro_util
open Effect
open Effect.Deep

(* A thread is a fiber suspended either in the ready set or on a mutex's
   wait queue.  The scheduler trampoline always resumes a runnable thread
   chosen by the active {!policy}; handlers never [continue] inline, so
   native stack depth stays bounded no matter how many effects a thread
   performs. *)

type thread = {
  cpu : Cpu.t;
  mutable resume : (unit -> unit) option; (* runnable continuation *)
  mutable parked : (unit -> unit) option; (* continuation while blocked on a mutex *)
  mutable finished : bool;
  mutable blocked_since : int;
  mutable prio : int; (* PCT priority; unused by other policies *)
}

type mutex = {
  mid : int;
  name : string option; (* lock-class name for order diagnostics *)
  mutable holder : thread option;
  waiters : thread Queue.t;
  mutable held_outside : bool; (* degraded single-threaded mode *)
}

type _ Effect.t +=
  | Lock : mutex -> unit Effect.t
  | Unlock : mutex -> unit Effect.t
  | Yield : unit Effect.t

(* Mutex ids are process-unique so concurrency diagnostics (the race
   detector's lockset reports) can name locks stably; the counter is
   deliberately never reset. *)
let next_mutex_id = ref 0

let create_mutex ?name () =
  let mid = !next_mutex_id in
  incr next_mutex_id;
  { mid; name; holder = None; waiters = Queue.create (); held_outside = false }

let mutex_id m = m.mid
let mutex_name m = match m.name with Some n -> n | None -> "m" ^ string_of_int m.mid

(* ------------------------------------------------------------------ *)
(* Lockdep-style acquired-before recorder.  Global (never cleared by
   [reset_run_state]): the relation accumulates across sequential runs
   until [Lock_order.reset], so a whole scenario suite contributes to one
   observed graph.  Recording covers every acquisition path — the
   uncontended effect handler, the FIFO handoff in [Unlock], and the
   degraded outside-scheduler mode (keyed as pseudo-thread -1). *)

module Lock_order = struct
  (* This recorder sits on every lock/unlock — millions of times per aged
     image — so the structures are flat (ROADMAP item 2): per-thread held
     stacks are plain int arrays (slot = thread id + 1, covering the
     outside pseudo-thread -1), the edge relation is a {!Flat_table} set
     keyed [(held lsl mid_bits) lor acquired], and mutex names live in a
     mid-indexed array written once rather than Hashtbl.replace'd on
     every acquisition. *)

  (* Two mid fields must pack into one non-negative 63-bit int key:
     31+31 bits exactly fits, and 2^31 mutexes outlasts any campaign
     (the id counter is never reset — a full fig6 run mints ~10M). *)
  let mid_bits = 31
  let mid_mask = (1 lsl mid_bits) - 1

  let stacks = ref (Array.make 8 [||])
  let depths = ref (Array.make 8 0)
  let names = ref (Array.make 64 "")
  let edge_tbl : unit Flat_table.t = Flat_table.create ~dummy:() ()
  let acq_count = ref 0

  let reset () =
    stacks := Array.make 8 [||];
    depths := Array.make 8 0;
    names := Array.make 64 "";
    Flat_table.clear edge_tbl;
    acq_count := 0

  let ensure_thread slot =
    if slot >= Array.length !depths then begin
      let cap = max 8 (2 * (slot + 1)) in
      let s = Array.make cap [||] and d = Array.make cap 0 in
      Array.blit !stacks 0 s 0 (Array.length !stacks);
      Array.blit !depths 0 d 0 (Array.length !depths);
      stacks := s;
      depths := d
    end

  let register_name mid n =
    if mid >= Array.length !names then begin
      let bigger = Array.make (max 64 (2 * (mid + 1))) "" in
      Array.blit !names 0 bigger 0 (Array.length !names);
      names := bigger
    end;
    if String.length !names.(mid) = 0 then !names.(mid) <- n

  let record_acquire ~thread m =
    incr acq_count;
    if m.mid > mid_mask then invalid_arg "Sched.Lock_order: mutex id overflow";
    (match m.name with Some n -> register_name m.mid n | None -> ());
    let slot = thread + 1 in
    ensure_thread slot;
    let dep = !depths.(slot) in
    let arr =
      let a = !stacks.(slot) in
      if dep < Array.length a then a
      else begin
        let bigger = Array.make (max 8 (2 * Array.length a)) 0 in
        Array.blit a 0 bigger 0 dep;
        !stacks.(slot) <- bigger;
        bigger
      end
    in
    let fresh = ref 0 in
    for i = 0 to dep - 1 do
      let key = (arr.(i) lsl mid_bits) lor m.mid in
      if not (Flat_table.mem edge_tbl key) then begin
        Flat_table.set edge_tbl key ();
        incr fresh
      end
    done;
    arr.(dep) <- m.mid;
    !depths.(slot) <- dep + 1;
    if Repro_stats.Stats.enabled () then begin
      Repro_stats.Stats.counter_add "sched.lock_order.acquisitions" 1;
      if !fresh > 0 then Repro_stats.Stats.counter_add "sched.lock_order.edges" !fresh
    end

  (* Drop the innermost occurrence (top-down scan); unknown mids are a
     no-op, matching the old list-drop semantics. *)
  let record_release ~thread m =
    let slot = thread + 1 in
    if slot < Array.length !depths then begin
      let arr = !stacks.(slot) and dep = !depths.(slot) in
      let i = ref (dep - 1) in
      while !i >= 0 && arr.(!i) <> m.mid do decr i done;
      if !i >= 0 then begin
        for j = !i to dep - 2 do
          arr.(j) <- arr.(j + 1)
        done;
        !depths.(slot) <- dep - 1
      end
    end

  let clear_stack slot = if slot < Array.length !depths then !depths.(slot) <- 0
  let thread_slots () = Array.length !depths

  let label mid =
    let n = !names in
    if mid < Array.length n && String.length n.(mid) > 0 then n.(mid)
    else "m" ^ string_of_int mid

  let name_of mid =
    let n = !names in
    if mid < Array.length n && String.length n.(mid) > 0 then Some n.(mid) else None

  let acquisitions () = !acq_count

  let edges () =
    (* Keys sort lexicographically as (held, acquired) pairs: held is the
       high bits. *)
    Flat_table.keys_sorted edge_tbl
    |> List.map (fun k -> (k lsr mid_bits, k land mid_mask))

  let named_edges () =
    Flat_table.fold edge_tbl ~init:[] ~f:(fun acc k () ->
        match (name_of (k lsr mid_bits), name_of (k land mid_mask)) with
        | Some na, Some nb -> (na, nb) :: acc
        | _ -> acc)
    |> List.sort_uniq compare

  (* Smallest observed acquired-before cycle, as lock labels; [None] when
     the relation is acyclic.  Total: never raises. *)
  let cycle () =
    let all = edges () in
    let succs v =
      List.filter_map (fun (a, b) -> if a = v then Some b else None) all
      |> List.sort compare
    in
    let nodes =
      List.concat_map (fun (a, b) -> [ a; b ]) all |> List.sort_uniq compare
    in
    (* DFS with colors; a back edge closes a cycle. *)
    let color = Hashtbl.create 16 in
    let found = ref None in
    let rec visit path v =
      match Hashtbl.find_opt color v with
      | Some `Done -> ()
      | Some `Active ->
          (* [path] is [v :: ancestors], innermost first; the cycle is v
             plus the ancestors back to v's earlier occurrence. *)
          if !found = None then begin
            let rec upto = function
              | [] -> []
              | x :: rest -> if x = v then [] else x :: upto rest
            in
            found :=
              Some (List.rev (match path with [] -> [] | h :: rest -> h :: upto rest))
          end
      | None ->
          Hashtbl.replace color v `Active;
          List.iter (fun w -> if !found = None then visit (w :: path) w) (succs v);
          Hashtbl.replace color v `Done
    in
    List.iter (fun v -> if !found = None then visit [ v ] v) nodes;
    Option.map (List.map label) !found
end

let outside_thread = -1

let default_cpu = Cpu.make ~id:0 ()

(* Scheduler state; the simulator is single-OS-threaded so globals are
   safe.  Everything mutable and per-run is reset in {!reset_run_state}
   so sequential [run] calls can never observe each other's leftovers. *)
let active = ref false
let current : thread option ref = ref None
let lock_wait_total = ref 0

let reset_run_state () =
  active := false;
  current := None;
  lock_wait_total := 0;
  (* Drop held-lock stacks of simulated threads (a deadlocked run never
     releases); the outside pseudo-thread's stack (slot 0) survives, as do
     the accumulated acquired-before edges. *)
  for slot = 1 to Lock_order.thread_slots () - 1 do
    Lock_order.clear_stack slot
  done

let uncontended_lock_ns = 18
let handoff_ns = 40

let self () = match !current with Some t -> t.cpu | None -> default_cpu
let running () = !active

(* ------------------------------------------------------------------ *)
(* Instrumentation: one monitor observes thread lifecycle, lock
   transfers and annotated shared-state accesses.  Events fire only
   inside [run] (the degraded outside-scheduler lock mode is single
   threaded, so there is nothing to observe). *)

type monitor = {
  on_spawn : thread:int -> unit;
  on_finish : thread:int -> unit;
  on_acquire : thread:int -> mutex:int -> unit;
  on_release : thread:int -> mutex:int -> unit;
  on_yield : thread:int -> unit;
  on_access : thread:int -> obj:string -> write:bool -> site:string -> unit;
}

let monitor : monitor option ref = ref None

let set_monitor m = monitor := m
let monitored () = !active && Option.is_some !monitor

let mon f = match !monitor with Some m -> f m | None -> ()

let access ~obj ~write ~site =
  if !active then
    match !monitor with
    | None -> ()
    | Some m ->
        let thread = match !current with Some t -> t.cpu.id | None -> default_cpu.id in
        m.on_access ~thread ~obj ~write ~site

(* ------------------------------------------------------------------ *)

let lock m =
  if !active then perform (Lock m)
  else begin
    if m.held_outside then invalid_arg "Sched.lock: deadlock outside scheduler";
    m.held_outside <- true;
    Lock_order.record_acquire ~thread:outside_thread m;
    Simclock.advance default_cpu.clock uncontended_lock_ns
  end

let unlock m =
  if !active then perform (Unlock m)
  else if m.held_outside then begin
    m.held_outside <- false;
    Lock_order.record_release ~thread:outside_thread m
  end
  else invalid_arg "Sched.unlock: not held"

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

let yield () = if !active then perform Yield

type policy =
  | Earliest_clock
  | Random_walk of { seed : int }
  | Pct of { seed : int }

type stats = { makespan_ns : int; total_busy_ns : int; lock_wait_ns : int }

(* PCT-lite demotion rate: at each scheduling step the chosen thread's
   priority drops below every other with probability 1/16, approximating
   PCT's d random priority-change points without knowing the step count
   in advance. *)
let pct_demote_one_in = 16

let run ?(numa_nodes = 1) ?(policy = Earliest_clock) ~threads:nthreads body =
  if !active then invalid_arg "Sched.run: already running";
  if nthreads <= 0 then invalid_arg "Sched.run: non-positive thread count";
  reset_run_state ();
  let threads =
    Array.init nthreads (fun i ->
        let node = if numa_nodes <= 1 then 0 else i * numa_nodes / nthreads in
        {
          cpu = Cpu.make ~id:i ~node ();
          resume = None;
          parked = None;
          finished = false;
          blocked_since = 0;
          prio = 0;
        })
  in
  active := true;
  let start t =
    t.resume <-
      Some
        (fun () ->
          match_with
            (fun () -> body t.cpu)
            ()
            {
              retc =
                (fun () ->
                  t.finished <- true;
                  mon (fun m -> m.on_finish ~thread:t.cpu.id));
              exnc = (fun e -> raise e);
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Lock m ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          Simclock.advance t.cpu.clock uncontended_lock_ns;
                          if m.holder = None && Queue.is_empty m.waiters then begin
                            m.holder <- Some t;
                            Lock_order.record_acquire ~thread:t.cpu.id m;
                            mon (fun mo -> mo.on_acquire ~thread:t.cpu.id ~mutex:m.mid);
                            t.resume <- Some (fun () -> continue k ())
                          end
                          else begin
                            t.blocked_since <- Simclock.now t.cpu.clock;
                            t.parked <- Some (fun () -> continue k ());
                            Queue.add t m.waiters
                          end)
                  | Unlock m ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          (match m.holder with
                          | Some h when h == t -> ()
                          | _ -> invalid_arg "Sched.unlock: not held by caller");
                          m.holder <- None;
                          Lock_order.record_release ~thread:t.cpu.id m;
                          mon (fun mo -> mo.on_release ~thread:t.cpu.id ~mutex:m.mid);
                          (match Queue.take_opt m.waiters with
                          | Some w ->
                              m.holder <- Some w;
                              (* FIFO handoff: the longest-blocked waiter
                                 acquires at release time plus a fixed
                                 transfer cost. *)
                              Lock_order.record_acquire ~thread:w.cpu.id m;
                              mon (fun mo -> mo.on_acquire ~thread:w.cpu.id ~mutex:m.mid);
                              let wake = Simclock.now t.cpu.clock + handoff_ns in
                              let waited = max 0 (wake - w.blocked_since) in
                              lock_wait_total := !lock_wait_total + waited;
                              Simclock.advance_to w.cpu.clock wake;
                              w.resume <- w.parked;
                              w.parked <- None
                          | None -> ());
                          t.resume <- Some (fun () -> continue k ()))
                  | Yield ->
                      Some
                        (fun (k : (a, unit) continuation) ->
                          mon (fun mo -> mo.on_yield ~thread:t.cpu.id);
                          t.resume <- Some (fun () -> continue k ()))
                  | _ -> None);
            })
  in
  Array.iter start threads;
  Array.iter (fun t -> mon (fun m -> m.on_spawn ~thread:t.cpu.id)) threads;
  (* Trampoline: run the runnable thread chosen by the policy.
     [Earliest_clock] (the default) picks the smallest simulated clock,
     which makes contention effects fall out naturally and every run
     reproducible.  The exploration policies deliberately break that
     tiebreak to surface schedule-dependent bugs; both are fully
     deterministic functions of their seed. *)
  let rng =
    match policy with
    | Earliest_clock -> Rng.create 0 (* unused *)
    | Random_walk { seed } | Pct { seed } -> Rng.create seed
  in
  (match policy with
  | Pct _ ->
      let prios = Array.init nthreads (fun i -> i) in
      Rng.shuffle rng prios;
      Array.iteri (fun i p -> threads.(i).prio <- p) prios
  | _ -> ());
  let pct_low = ref (-1) in
  let runnable t = t.resume <> None && not t.finished in
  let pick () =
    match policy with
    | Earliest_clock ->
        let next = ref None in
        Array.iter
          (fun t ->
            if runnable t then
              match !next with
              | Some b when Simclock.now b.cpu.clock <= Simclock.now t.cpu.clock -> ()
              | _ -> next := Some t)
          threads;
        !next
    | Random_walk _ ->
        let ready = Array.of_seq (Seq.filter runnable (Array.to_seq threads)) in
        if Array.length ready = 0 then None else Some ready.(Rng.int rng (Array.length ready))
    | Pct _ ->
        let next = ref None in
        Array.iter
          (fun t ->
            if runnable t then
              match !next with
              | Some b when b.prio >= t.prio -> ()
              | _ -> next := Some t)
          threads;
        (match !next with
        | Some t when Rng.int rng pct_demote_one_in = 0 ->
            (* Priority-change point: drop the running thread below
               everyone so another thread preempts at the next step. *)
            t.prio <- !pct_low;
            decr pct_low
        | _ -> ());
        !next
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some t ->
        let k = Option.get t.resume in
        t.resume <- None;
        current := Some t;
        k ();
        current := None;
        loop ()
  in
  (try loop ()
   with e ->
     reset_run_state ();
     raise e);
  let stuck = Array.to_list threads |> List.filter (fun t -> not t.finished) in
  if stuck <> [] then begin
    (* Name the stuck threads: which are parked on a mutex, and for how
       long they have been blocked relative to the latest clock. *)
    let now = Array.fold_left (fun acc t -> max acc (Simclock.now t.cpu.clock)) 0 threads in
    let describe t =
      if t.parked <> None then
        Printf.sprintf "thread %d (blocked on mutex since %dns, stuck for %dns)" t.cpu.id
          t.blocked_since
          (max 0 (now - t.blocked_since))
      else Printf.sprintf "thread %d (not runnable)" t.cpu.id
    in
    reset_run_state ();
    invalid_arg
      (Printf.sprintf "Sched.run: deadlock — %d of %d threads never finished: %s"
         (List.length stuck) nthreads
         (String.concat ", " (List.map describe stuck)))
  end;
  let makespan = Array.fold_left (fun acc t -> max acc (Simclock.now t.cpu.clock)) 0 threads in
  let busy = Array.fold_left (fun acc t -> acc + Simclock.now t.cpu.clock) 0 threads in
  let stats = { makespan_ns = makespan; total_busy_ns = busy; lock_wait_ns = !lock_wait_total } in
  reset_run_state ();
  stats
