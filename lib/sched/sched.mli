(** Deterministic cooperative thread simulator.

    Multi-threaded experiments (the paper's Figure 10 scalability study,
    Filebench, the per-CPU journal contention model) run simulated threads
    whose clocks advance as they touch PM, fault, and wait on locks.  The
    scheduler is a discrete-event loop: under the default
    {!Earliest_clock} policy it always resumes the runnable thread with
    the smallest simulated clock, so lock-contention effects (global JBD2
    commit lock vs per-CPU journals) fall out naturally and every run is
    reproducible.  The exploration policies ({!Random_walk}, {!Pct})
    replace that tiebreak with a seeded random or priority-based (PCT-lite)
    choice so the race detector ({!Repro_race}) can shake alternative
    interleavings; both are deterministic functions of their seed, so any
    failing schedule replays exactly.

    Threads are OCaml effect-based fibers; they must only block through
    {!lock}/{!yield} (cooperative).  Outside {!run}, {!lock} and {!unlock}
    degrade to free uncontended acquisition so single-threaded code can
    share the same code paths. *)

open Repro_util

type mutex

val create_mutex : ?name:string -> unit -> mutex
(** [name] declares the mutex's {e lock class} for order diagnostics; the
    convention is "file-stem:lock-site label" (["undo_journal:t.mu"]),
    matching the node names of the srccheck static lock-order graph.
    Several mutexes may share a name (one class, many instances).  Only
    name genuinely-global mutexes: naming per-object locks (file/inode)
    would make legitimate hierarchical parent→child nesting look like a
    same-class self-cycle. *)

val mutex_id : mutex -> int
(** Process-unique id, stable for the lifetime of the mutex.  Concurrency
    diagnostics use it to name locks ("m3") in lockset reports. *)

val mutex_name : mutex -> string
(** The declared class name, or ["m<id>"] when anonymous. *)

val lock : mutex -> unit
(** Acquire; blocks the calling simulated thread while held by another.
    FIFO handoff.  Charges a small uncontended-acquisition cost. *)

val unlock : mutex -> unit
(** Raises [Invalid_argument] when the lock is not held by the caller. *)

val with_lock : mutex -> (unit -> 'a) -> 'a

val yield : unit -> unit
(** Let other runnable threads run (a scheduling point, not a
    happens-before edge). *)

val self : unit -> Cpu.t
(** The calling thread's CPU context.  Outside {!run}, a process-wide
    default CPU 0. *)

val running : unit -> bool
(** [true] while inside {!run} (i.e. the caller is a simulated thread). *)

val default_cpu : Cpu.t
(** The CPU used outside {!run}; its clock keeps advancing across calls. *)

val uncontended_lock_ns : int
(** Simulated cost charged to every {!lock} attempt. *)

val handoff_ns : int
(** Simulated cost of transferring a contended mutex to the next waiter
    (FIFO).  A waiter that blocked at [b] and is handed the lock when the
    holder releases at [r] acquires at [r + handoff_ns] and accrues
    [r + handoff_ns - b] of lock wait. *)

(** {2 Instrumentation}

    A single monitor observes thread lifecycle, lock transfers, and
    annotated shared-state accesses; the dynamic race detector
    ({!Repro_race.Race}) is the intended client.  Events only fire inside
    {!run} — the degraded outside-scheduler mode is single-threaded.
    [on_acquire] fires when the lock is actually transferred: immediately
    for an uncontended {!lock}, at handoff time (during the releasing
    thread's {!unlock}) for a blocked waiter, always after the matching
    [on_release]. *)

type monitor = {
  on_spawn : thread:int -> unit;  (** thread (= CPU id) exists and is runnable *)
  on_finish : thread:int -> unit;  (** thread's body returned *)
  on_acquire : thread:int -> mutex:int -> unit;
  on_release : thread:int -> mutex:int -> unit;
  on_yield : thread:int -> unit;
  on_access : thread:int -> obj:string -> write:bool -> site:string -> unit;
}

val set_monitor : monitor option -> unit
(** Install/uninstall the monitor.  One slot: installing replaces any
    previous monitor. *)

val monitored : unit -> bool
(** [true] when a monitor is installed and a run is active.  Annotation
    sites use it to skip building [obj]/[site] strings on the hot path:
    [if Sched.monitored () then Sched.access ~obj:(...) ...]. *)

val access : obj:string -> write:bool -> site:string -> unit
(** Declare an access to a shared DRAM object (allocator pool, journal
    cursor, index) for the monitor.  [obj] names the object instance
    ("alloc.pool[2]"), [site] the accessing code ("alloc.alloc").  A no-op
    outside {!run} or without a monitor. *)

(** {2 Lock-order recorder}

    Lockdep-style observed acquired-before relation: whenever a thread
    acquires a mutex while holding others, each (held, acquired) pair is
    recorded.  Every acquisition path is covered — uncontended, FIFO
    handoff to a blocked waiter, and the degraded outside-{!run} mode —
    so the relation is exactly what actually happened.  State is global
    and accumulates across sequential runs until {!Lock_order.reset}:
    srccheck's dynamic probe runs a whole scenario suite and checks the
    union against the static graph (static ⊇ observed).  When
    {!Repro_stats.Stats.enabled}, bumps [sched.lock_order.acquisitions]
    and [sched.lock_order.edges].  All report functions are total. *)

module Lock_order : sig
  val reset : unit -> unit

  val acquisitions : unit -> int
  (** Total acquisitions recorded since the last {!reset}. *)

  val edges : unit -> (int * int) list
  (** Distinct (held-mutex-id, acquired-mutex-id) pairs, sorted. *)

  val named_edges : unit -> (string * string) list
  (** The edges whose {e both} endpoints are explicitly named mutexes, as
      class names — the statically checkable subset. *)

  val cycle : unit -> string list option
  (** A cycle in the observed relation (mutex labels, ["m<id>"] for
      anonymous locks), or [None] if acyclic.  An observed cycle is a
      real potential deadlock regardless of what any schedule did. *)
end

(** {2 Scheduling policies} *)

type policy =
  | Earliest_clock
      (** Deterministic default: resume the runnable thread with the
          smallest simulated clock (ties to the lowest thread id). *)
  | Random_walk of { seed : int }
      (** At every scheduling point pick uniformly among runnable
          threads, seeded; deterministic given the seed. *)
  | Pct of { seed : int }
      (** PCT-lite: seeded random thread priorities, always run the
          highest-priority runnable thread, and at each step demote the
          running thread below everyone with probability 1/16 (the
          priority-change points of PCT without knowing the step count
          in advance).  Deterministic given the seed. *)

type stats = {
  makespan_ns : int;  (** max thread clock at completion *)
  total_busy_ns : int;  (** sum of thread clocks *)
  lock_wait_ns : int;  (** total time threads spent blocked on mutexes *)
}

val run : ?numa_nodes:int -> ?policy:policy -> threads:int -> (Cpu.t -> unit) -> stats
(** [run ~threads body] starts [threads] fibers, thread [i] on CPU [i]
    (NUMA node [i * numa_nodes / threads]), and executes them to
    completion.  Not reentrant: calling it from inside a fiber raises
    [Invalid_argument "Sched.run: already running"].  All global
    scheduler state (active flag, current thread, lock-wait accounting)
    is reset on entry and on every exit path, so sequential runs in one
    process cannot leak state into each other. *)
