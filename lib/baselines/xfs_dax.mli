(** xfs-DAX personality: like ext4-DAX a redo-journalled extent file
    system with locality-first allocation, differing in its directory
    index and in skipping mballoc's power-of-two normalisation. *)

type t = Basefs.t

include Repro_vfs.Fs_intf.S with type t := t
