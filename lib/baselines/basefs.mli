(** The shared kernel-filesystem engine behind the ext4-DAX, xfs-DAX and
    PMFS personalities (and the kernel half of SplitFS).

    One block-based FS parameterised by a {!preset}: allocator policy,
    directory-index policy, journal flavour (JBD2-style redo vs PMFS-style
    fine-grained undo), eager-vs-fault-time zeroing, and the hugepage
    behaviours the paper distinguishes (§2.5, §5.1).  Each personality
    module is a thin [let x = Basefs.x] shim over this engine with its own
    preset, so the cross-system differences live in one record.

    The interface deliberately exposes the concrete {!preset}, {!file} and
    {!t} records: the personalities and SplitFS's user-space half reach
    into them (block maps, fd table, allocator) rather than duplicating
    the engine's state. *)

open Repro_util

(** How metadata updates reach the journal. *)
type journal_kind =
  | Jbd2_redo  (** global redo journal, stop-the-world commit at fsync *)
  | Pmfs_undo  (** fine-grained undo logging, committed per-operation *)

type preset = {
  label : string;
  alloc_cfg : Repro_alloc.Pool_alloc.config;
  dir_policy : Repro_vfs.Dir_index.policy;
  journal : journal_kind;
  zero_on_fallocate : bool;
  misaligned_start : bool;
      (** data area starts off 2MB alignment (legacy layouts, footnote 1) *)
  huge_fault_alloc : bool;  (** attempt a 2MB allocation on a PMD fault *)
  goal_alloc : bool;  (** pass the file's last extent as a locality goal *)
}

type journal =
  | Jredo of Repro_journal.Redo_journal.t
  | Jundo of Repro_journal.Undo_journal.t * Repro_sched.Sched.mutex

type file = {
  ino : int;
  mutable kind : Repro_vfs.Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  bmap : Repro_vfs.Block_map.t;
  mutable unwritten : Repro_rbtree.Extent_tree.t option;
      (** fallocated-but-never-written file ranges; [None] until the
          first fallocate (most files never fallocate) *)
  mutable dir : Repro_vfs.Dir_index.t option;
  lock : Repro_sched.Sched.mutex;
  mutable dirty_bytes : int;
  mutable goal : int;  (** physical end of the last allocation *)
  meta_addr : int;  (** synthetic PM address of this inode's metadata *)
}

type t = {
  dev : Repro_pmem.Device.t;
  cfg : Repro_vfs.Types.config;
  preset : preset;
  alloc : Repro_alloc.Pool_alloc.t;
  journal : journal;
  files : (int, file) Hashtbl.t;
  fds : Repro_vfs.Fd_table.t;
  counters : Counters.t;
  mutable next_ino : int;
  inode_region : int;
  inode_slots : int;
  data_off : int;
  data_len : int;
}

(** {2 Lifecycle} *)

val format : preset -> Repro_pmem.Device.t -> Repro_vfs.Types.config -> t
val mount : Repro_pmem.Device.t -> Repro_vfs.Types.config -> t
val unmount : t -> Cpu.t -> unit
val recovery_ns : t -> int
val device : t -> Repro_pmem.Device.t
val config : t -> Repro_vfs.Types.config
val counters : t -> Counters.t

(** {2 Engine internals used by the personalities}

    SplitFS's user-space half stages appends against the kernel FS's own
    block maps and allocator, so it needs inode and path resolution. *)

val find_file : t -> int -> file
(** Raises [Types.Error (EBADF, _)] for a stale inode number. *)

val resolve : t -> Cpu.t -> string -> int
(** Path walk to an inode number; raises ENOENT/ENOTDIR. *)

val meta_sync : t -> Cpu.t -> addr:int -> bytes:int -> unit
(** Journal and persist a metadata update at [addr] immediately (undo
    flavour) or buffer it in the running transaction (redo flavour). *)

(** {2 The Fs_intf.S operations} *)

val mkdir : t -> Cpu.t -> string -> unit
val rmdir : t -> Cpu.t -> string -> unit
val create : t -> Cpu.t -> string -> int
val openf : t -> Cpu.t -> string -> Repro_vfs.Types.open_flags -> int
val close : t -> Cpu.t -> int -> unit
val unlink : t -> Cpu.t -> string -> unit
val rename : t -> Cpu.t -> old_path:string -> new_path:string -> unit
val readdir : t -> Cpu.t -> string -> string list
val stat : t -> Cpu.t -> string -> Repro_vfs.Types.stat
val exists : t -> Cpu.t -> string -> bool
val pwrite : t -> Cpu.t -> int -> off:int -> src:string -> int
val pwrite_sub : t -> Cpu.t -> int -> off:int -> src:string -> src_off:int -> len:int -> int
val pread : t -> Cpu.t -> int -> off:int -> len:int -> string
val append : t -> Cpu.t -> int -> src:string -> int
val fsync : t -> Cpu.t -> int -> unit
val fallocate : t -> Cpu.t -> int -> off:int -> len:int -> unit
val ftruncate : t -> Cpu.t -> int -> int -> unit
val file_size : t -> int -> int
val mmap_backing : t -> int -> Repro_memsim.Vmem.backing
val set_xattr_align : t -> Cpu.t -> string -> bool -> unit
val statfs : t -> Repro_vfs.Types.fs_stats
val file_extents : t -> Cpu.t -> string -> (int * int * int) list
