(** SplitFS model (Kadekodi et al., SOSP '19): a user-space split that
    serves overwrites through mmap (no syscall cost) and stages appends in
    pre-allocated space, relinked into the kernel file system (modelled by
    {!Basefs} with an ext4-style preset) at fsync. *)

type t

include Repro_vfs.Fs_intf.S with type t := t
