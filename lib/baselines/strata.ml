(** Strata model (Kwon et al., SOSP '17), restricted to its PM layer.

    Every process owns a private operation log: writes (data and metadata)
    append to it sequentially — fast and immediately durable, so fsync is
    nearly free.  Data only becomes visible in the shared area after
    {e digestion}, which copies it out of the log — the expensive extra
    copy the paper measures on the write path (§5.3).  Here each simulated
    CPU stands for a process; digestion triggers when a log fills or when
    visibility is needed (mmap), and the shared area uses a
    contiguity-first allocator with no alignment care, so log churn plus
    digestion fragment free space (§2.6). *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Path = Repro_vfs.Path
module Dir_index = Repro_vfs.Dir_index
module Fd_table = Repro_vfs.Fd_table
module Block_map = Repro_vfs.Block_map
module Cost = Repro_vfs.Fs_intf.Cost
module Alloc = Repro_alloc.Pool_alloc
module Site = Repro_pmem.Site

(* Durability-lint sites: label Strata's persistence regions so
   sanitizer/faultcheck findings name the layer at fault. *)
let site_log = Site.v "strata" "log"
let site_digest = Site.v "strata" "digest"
let site_data = Site.v "strata" "data"
let site_fsync = Site.v "strata" "fsync"
let site_zero = Site.v "strata" "zero"
let site_fault = Site.v "strata" "fault"

let name = "Strata"
let block = Units.base_page
let huge = Units.huge_page

type pending_write = { p_ino : int; p_off : int; p_log_phys : int; p_len : int }

type plog = {
  base : int;
  size : int;
  mutable head : int;
  mutable entries : pending_write list; (* newest first *)
}

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  bmap : Block_map.t; (* shared-area extents (digested) *)
  mutable dir : Dir_index.t option;
  lock : Sched.mutex;
}

type t = {
  dev : Device.t;
  cfg : Types.config;
  alloc : Alloc.t;
  logs : plog array; (* one per CPU ("process") *)
  files : (int, file) Hashtbl.t;
  fds : Fd_table.t;
  counters : Counters.t;
  mutable next_ino : int;
  data_off : int;
  data_len : int;
}

let root_ino = 1

let format dev (cfg : Types.config) =
  let size = Device.size dev in
  let log_size = Units.round_up (max (256 * Units.kib) (size / 16 / cfg.cpus)) block in
  let logs_total = cfg.cpus * log_size in
  let data_off = Units.round_up (4096 + logs_total) huge in
  if data_off + huge > size then invalid_arg "Strata: device too small";
  let data_len = size - data_off in
  let alloc_cfg =
    { Alloc.per_cpu = false; policy = Alloc.Best_fit; align_exact_2m = false; normalize_pow2 = false }
  in
  let t =
    {
      dev;
      cfg;
      alloc = Alloc.create alloc_cfg ~cpus:1 ~regions:[| (data_off, data_len) |];
      logs =
        Array.init cfg.cpus (fun i ->
            { base = 4096 + (i * log_size); size = log_size; head = 0; entries = [] });
      files = Hashtbl.create 1024;
      fds = Fd_table.create ();
      counters = Counters.create ();
      next_ino = root_ino;
      data_off;
      data_len;
    }
  in
  let root =
    {
      ino = root_ino;
      kind = Types.Directory;
      size = 0;
      nlink = 2;
      bmap = Block_map.create ();
      dir = Some (Dir_index.create Dram_rbtree);
      lock = Sched.create_mutex ();
    }
  in
  Hashtbl.replace t.files root_ino root;
  t.next_ino <- 2;
  t

let mount _dev _cfg =
  Types.err EINVAL "baseline models do not support mount-from-image (see DESIGN.md)"

let recovery_ns _ = 0
let device t = t.dev
let config t = t.cfg
let counters t = t.counters

let find_file t ino =
  match Hashtbl.find_opt t.files ino with
  | Some f -> f
  | None -> Types.err EBADF "stale inode %d" ino

let log_of t (cpu : Cpu.t) = t.logs.(cpu.id mod t.cfg.cpus)

(* Append a metadata record to the process log (64B, durable). *)
let log_meta t cpu =
  let lg = log_of t cpu in
  if lg.head + 64 > lg.size then lg.head <- 0;
  Device.with_site t.dev site_log (fun () ->
      Device.write t.dev cpu ~off:(lg.base + lg.head) ~src:(Bytes.make 64 '\002') ~src_off:0
        ~len:64;
      Device.persist t.dev cpu ~off:(lg.base + lg.head) ~len:64);
  lg.head <- lg.head + 64;
  Counters.incr t.counters "fs.log_meta"

(* Digest one process log: copy pending data into the shared area and
   update the block maps — the visible-data copy cost. *)
let digest t cpu lg =
  let pending = List.rev lg.entries in
  lg.entries <- [];
  lg.head <- 0;
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.files p.p_ino with
      | None -> () (* file deleted before digestion *)
      | Some f ->
          let blo = Units.round_down p.p_off block in
          let bhi = Units.round_up (p.p_off + p.p_len) block in
          let exts =
            match Alloc.alloc t.alloc ~cpu:0 ~len:(bhi - blo) with
            | Some exts -> exts
            | None -> Types.err ENOSPC "digestion allocation"
          in
          Device.with_site t.dev site_digest (fun () ->
              let fo = ref blo in
              List.iter
                (fun (e : Alloc.extent) ->
                  (* Preserve previously digested bytes of partial blocks. *)
                  let copied = ref 0 in
                  while !copied < e.len do
                    (match Block_map.lookup f.bmap ~file_off:(!fo + !copied) with
                    | Some (old_phys, old_run) ->
                        let n = min old_run (e.len - !copied) in
                        Device.copy_within_nt t.dev cpu ~src:old_phys ~dst:(e.off + !copied) ~len:n;
                        copied := !copied + n
                    | None ->
                        Device.memset_nt t.dev cpu ~off:(e.off + !copied) ~len:(e.len - !copied)
                          '\000';
                        copied := e.len)
                  done;
                  fo := !fo + e.len)
                exts;
              (* Copy the logged data over the fresh blocks. *)
              let in_piece = p.p_off - blo in
              (match exts with
              | [ e ] ->
                  Device.copy_within_nt t.dev cpu ~src:p.p_log_phys ~dst:(e.off + in_piece)
                    ~len:p.p_len
              | exts ->
                  (* Multi-extent digestion: copy piecewise. *)
                  let remaining = ref p.p_len and src = ref p.p_log_phys and fo = ref p.p_off in
                  List.iter
                    (fun (e : Alloc.extent) ->
                      let piece_lo = max !fo blo and piece_hi = min (p.p_off + p.p_len) (blo + e.len) in
                      if piece_hi > piece_lo && !remaining > 0 then begin
                        let n = min !remaining (piece_hi - piece_lo) in
                        Device.copy_within_nt t.dev cpu ~src:!src ~dst:(e.off + (piece_lo - blo))
                          ~len:n;
                        src := !src + n;
                        remaining := !remaining - n;
                        fo := !fo + n
                      end)
                    exts);
              Device.fence t.dev cpu);
          Counters.add t.counters "fs.digested_bytes" p.p_len;
          let freed = Block_map.remove_range f.bmap ~file_off:blo ~len:(bhi - blo) in
          let fo = ref blo in
          List.iter
            (fun (e : Alloc.extent) ->
              Block_map.insert f.bmap ~file_off:!fo ~phys:e.off ~len:e.len;
              fo := !fo + e.len)
            exts;
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) freed)
    pending;
  Counters.incr t.counters "fs.digests"

let digest_all t cpu = Array.iter (fun lg -> if lg.entries <> [] then digest t cpu lg) t.logs

let unmount t cpu = digest_all t cpu

(* ------------------------------------------------------------------ *)
(* Namespace (metadata ops log-append + DRAM)                          *)

let resolve t cpu path =
  let parts = Path.split path in
  let rec walk ino = function
    | [] -> ino
    | name :: rest -> (
        let f = find_file t ino in
        match f.dir with
        | None -> Types.err ENOTDIR "%s" path
        | Some idx -> (
            match Dir_index.lookup idx cpu name with
            | Some (child, _) -> walk child rest
            | None -> Types.err ENOENT "%s" path))
  in
  walk root_ino parts

let resolve_parent t cpu path =
  let dir = Path.dirname path and name = Path.basename path in
  let ino = resolve t cpu dir in
  let f = find_file t ino in
  if f.kind <> Types.Directory then Types.err ENOTDIR "%s" dir;
  (f, name)

let new_file t kind =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  let f =
    {
      ino;
      kind;
      size = 0;
      nlink = (if kind = Types.Directory then 2 else 1);
      bmap = Block_map.create ();
      dir = (if kind = Types.Directory then Some (Dir_index.create Dram_rbtree) else None);
      lock = Sched.create_mutex ();
    }
  in
  Hashtbl.replace t.files ino f;
  f

let mkdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
      let f = new_file t Types.Directory in
      log_meta t cpu;
      Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
      parent.nlink <- parent.nlink + 1);
  Counters.incr t.counters "fs.mkdir"

let create t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  let f =
    Sched.with_lock parent.lock (fun () ->
        let idx = Option.get parent.dir in
        if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
        let f = new_file t Types.Regular in
        log_meta t cpu;
        Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
        f)
  in
  Counters.incr t.counters "fs.create";
  Fd_table.alloc t.fds ~ino:f.ino ~flags:Types.o_creat_rdwr

let free_file_space t f =
  List.iter (fun (_, phys, len) -> Alloc.free t.alloc ~off:phys ~len) (Block_map.extents f.bmap);
  Block_map.clear f.bmap

let drop_pending t ino =
  Array.iter
    (fun lg -> lg.entries <- List.filter (fun p -> p.p_ino <> ino) lg.entries)
    t.logs

let unlink t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind = Types.Directory then Types.err EISDIR "%s" path;
          log_meta t cpu;
          Dir_index.remove idx cpu name;
          f.nlink <- f.nlink - 1;
          if f.nlink = 0 then
            Sched.with_lock f.lock (fun () ->
                drop_pending t ino;
                free_file_space t f;
                Hashtbl.remove t.files ino));
  Counters.incr t.counters "fs.unlink"

let rmdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind <> Types.Directory then Types.err ENOTDIR "%s" path;
          if Dir_index.size (Option.get f.dir) > 0 then Types.err ENOTEMPTY "%s" path;
          log_meta t cpu;
          Dir_index.remove idx cpu name;
          parent.nlink <- parent.nlink - 1;
          Hashtbl.remove t.files ino);
  Counters.incr t.counters "fs.rmdir"

let rename t cpu ~old_path ~new_path =
  Cost.charge_syscall cpu;
  let src_parent, src_name = resolve_parent t cpu old_path in
  let dst_parent, dst_name = resolve_parent t cpu new_path in
  let locks =
    if src_parent.ino = dst_parent.ino then [ src_parent.lock ]
    else if src_parent.ino < dst_parent.ino then [ src_parent.lock; dst_parent.lock ]
    else [ dst_parent.lock; src_parent.lock ]
  in
  List.iter Sched.lock locks;
  Fun.protect
    ~finally:(fun () -> List.iter Sched.unlock (List.rev locks))
    (fun () ->
      let src_idx = Option.get src_parent.dir and dst_idx = Option.get dst_parent.dir in
      match Dir_index.lookup src_idx cpu src_name with
      | None -> Types.err ENOENT "%s" old_path
      | Some (ino, _) ->
          (match Dir_index.lookup dst_idx cpu dst_name with
          | Some (victim_ino, _) when victim_ino <> ino ->
              let victim = find_file t victim_ino in
              if victim.kind = Types.Directory then Types.err EISDIR "%s" new_path;
              Dir_index.remove dst_idx cpu dst_name;
              Sched.with_lock victim.lock (fun () ->
                  drop_pending t victim_ino;
                  free_file_space t victim;
                  Hashtbl.remove t.files victim_ino)
          | _ -> ());
          log_meta t cpu;
          Dir_index.remove src_idx cpu src_name;
          Dir_index.add dst_idx cpu ~name:dst_name ~ino ~slot:0);
  Counters.incr t.counters "fs.rename"

let readdir t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  match f.dir with
  | None -> Types.err ENOTDIR "%s" path
  | Some idx ->
      Simclock.advance cpu.clock (Dir_index.size idx * 12);
      List.map fst (Dir_index.entries idx)

let pending_size t ino =
  Array.fold_left
    (fun acc lg ->
      List.fold_left
        (fun acc p -> if p.p_ino = ino then max acc (p.p_off + p.p_len) else acc)
        acc lg.entries)
    0 t.logs

let stat t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  {
    Types.st_ino = f.ino;
    st_kind = f.kind;
    st_size = max f.size (pending_size t f.ino);
    st_blocks = Block_map.mapped_bytes f.bmap;
    st_nlink = f.nlink;
  }

let exists t cpu path =
  match resolve t cpu path with
  | _ -> true
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> false

let rec openf t cpu path (flags : Types.open_flags) =
  Cost.charge_syscall cpu;
  match resolve t cpu path with
  | ino ->
      if flags.creat && flags.excl then Types.err EEXIST "%s" path;
      let f = find_file t ino in
      if f.kind = Types.Directory && flags.wr then Types.err EISDIR "%s" path;
      if flags.trunc && f.kind = Types.Regular && f.size > 0 then begin
        drop_pending t ino;
        free_file_space t f;
        f.size <- 0;
        log_meta t cpu
      end;
      Fd_table.alloc t.fds ~ino ~flags
  | exception Types.Error (ENOENT, _) when flags.creat ->
      let fd = create t cpu path in
      Fd_table.close t.fds fd;
      openf t cpu path { flags with creat = false }

let close t cpu fd =
  Cost.charge_syscall cpu;
  Fd_table.close t.fds fd

let file_size t fd =
  let ino = (Fd_table.get t.fds fd).ino in
  max (find_file t ino).size (pending_size t ino)

(* ------------------------------------------------------------------ *)
(* Data: log-append writes, digestion on pressure                      *)

let pwrite_sub t cpu fd ~off ~src ~src_off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = find_file t e.ino in
  if f.kind = Types.Directory then Types.err EISDIR "fd %d" fd;
  if src_off < 0 || len < 0 || src_off + len > String.length src then
    Types.err EINVAL "pwrite_sub outside src bounds";
  if len = 0 then 0
  else begin
    let lg = log_of t cpu in
    (* Writes bigger than the log split into log-sized pieces, digesting
       between them (Strata's large writes stream through the log). *)
    let piece_max = max 64 (lg.size / 2 / 64 * 64) in
    let cur = ref 0 in
    while !cur < len do
      let n = min piece_max (len - !cur) in
      if lg.head + n + 64 > lg.size then digest t cpu lg;
      let phys = lg.base + lg.head in
      Device.with_site t.dev site_data (fun () ->
          Device.write_nt t.dev cpu ~off:phys ~src:(Bytes.unsafe_of_string src)
            ~src_off:(src_off + !cur) ~len:n;
          Device.fence t.dev cpu);
      lg.head <- lg.head + Units.round_up n 64;
      lg.entries <-
        { p_ino = f.ino; p_off = off + !cur; p_log_phys = phys; p_len = n } :: lg.entries;
      cur := !cur + n
    done;
    if off + len > f.size then f.size <- off + len;
    Counters.add t.counters "fs.write_bytes" len;
    len
  end

let pwrite t cpu fd ~off ~src =
  pwrite_sub t cpu fd ~off ~src ~src_off:0 ~len:(String.length src)

let append t cpu fd ~src = pwrite t cpu fd ~off:(file_size t fd) ~src

let pread t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.rd then Types.err EBADF "fd %d not readable" fd;
  let f = find_file t e.ino in
  let len = max 0 (min len (max f.size (pending_size t f.ino) - off)) in
  if len = 0 then ""
  else begin
    let dst = Bytes.make len '\000' in
    (* Shared-area bytes first. *)
    let cur = ref off in
    while !cur < off + len do
      match Block_map.lookup f.bmap ~file_off:!cur with
      | Some (phys, run) ->
          let n = min (off + len - !cur) run in
          Device.read t.dev cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off);
          cur := !cur + n
      | None -> (
          match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
          | Some o -> cur := min (off + len) o
          | None -> cur := off + len)
    done;
    (* Overlay pending log entries (newest last so they win). *)
    Array.iter
      (fun lg ->
        List.iter
          (fun p ->
            if p.p_ino = f.ino then begin
              let lo = max off p.p_off and hi = min (off + len) (p.p_off + p.p_len) in
              if hi > lo then
                Device.read t.dev cpu ~off:(p.p_log_phys + (lo - p.p_off)) ~len:(hi - lo)
                  ~dst ~dst_off:(lo - off)
            end)
          (List.rev lg.entries))
      t.logs;
    Counters.add t.counters "fs.read_bytes" len;
    Bytes.unsafe_to_string dst
  end

(* fsync is cheap: the log is already durable. *)
let fsync t cpu _fd =
  Cost.charge_syscall cpu;
  Device.with_site t.dev site_fsync (fun () -> Device.fence t.dev cpu);
  Counters.incr t.counters "fs.fsync"

let fallocate t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  Sched.with_lock f.lock (fun () ->
      let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
      let cur = ref lo in
      while !cur < hi do
        match Block_map.lookup f.bmap ~file_off:!cur with
        | Some (_, run) -> cur := !cur + run
        | None ->
            let hole_end =
              match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
              | Some o -> min hi o
              | None -> hi
            in
            (match Alloc.alloc t.alloc ~cpu:0 ~len:(hole_end - !cur) with
            | Some exts ->
                let fo = ref !cur in
                Device.with_site t.dev site_zero (fun () ->
                    List.iter
                      (fun (e : Alloc.extent) ->
                        Device.memset_nt t.dev cpu ~off:e.off ~len:e.len '\000';
                        Block_map.insert f.bmap ~file_off:!fo ~phys:e.off ~len:e.len;
                        fo := !fo + e.len)
                      exts;
                    Device.fence t.dev cpu)
            | None -> Types.err ENOSPC "fallocate");
            cur := hole_end
      done;
      if off + len > f.size then f.size <- off + len);
  Counters.incr t.counters "fs.fallocate"

let ftruncate t cpu fd new_size =
  Cost.charge_syscall cpu;
  (* Pending log entries must become visible before the size change. *)
  digest_all t cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  Sched.with_lock f.lock (fun () ->
      if new_size < f.size then begin
        let lo = Units.round_up new_size block in
        if f.size > lo then begin
          let freed = Block_map.remove_range f.bmap ~file_off:lo ~len:(f.size - lo) in
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) freed
        end
      end;
      f.size <- new_size;
      log_meta t cpu);
  Counters.incr t.counters "fs.ftruncate"

(* mmap requires digestion first (data must be in the shared area). *)
let mmap_backing t fd : Vmem.backing =
  let ino = (Fd_table.get t.fds fd).ino in
  fun cpu ~file_off ~huge_ok ->
    digest_all t cpu;
    let f = find_file t ino in
    let fault_alloc () =
      Sched.with_lock f.lock (fun () ->
          if Block_map.lookup f.bmap ~file_off = None then
            match Alloc.alloc t.alloc ~cpu:0 ~len:block with
            | Some exts ->
                let fo = ref file_off in
                Device.with_site t.dev site_fault (fun () ->
                    List.iter
                      (fun (e : Alloc.extent) ->
                        Device.memset_nt t.dev cpu ~off:e.off ~len:e.len '\000';
                        Block_map.insert f.bmap ~file_off:!fo ~phys:e.off ~len:e.len;
                        fo := !fo + e.len)
                      exts;
                    Device.fence t.dev cpu)
            | None -> ())
    in
    if huge_ok then begin
      match Block_map.huge_candidate f.bmap ~chunk_off:file_off with
      | Some phys -> Vmem.Huge phys
      | None -> (
          fault_alloc ();
          match Block_map.lookup f.bmap ~file_off with
          | Some (phys, _) -> Vmem.Base phys
          | None -> Vmem.Sigbus)
    end
    else begin
      fault_alloc ();
      match Block_map.lookup f.bmap ~file_off with
      | Some (phys, _) -> Vmem.Base phys
      | None -> Vmem.Sigbus
    end

let set_xattr_align _t cpu _path _v = Cost.charge_syscall cpu

let statfs t =
  let free = Alloc.free_bytes t.alloc in
  {
    Types.capacity = t.data_len;
    used = t.data_len - free;
    free;
    free_extents = Alloc.free_extent_count t.alloc;
    largest_free = Alloc.largest_free t.alloc;
    aligned_free_2m = Alloc.aligned_region_count t.alloc;
  }

let file_extents t cpu path =
  let f = find_file t (resolve t cpu path) in
  Block_map.extents f.bmap
