(** ext4-DAX personality: goal-based (locality-first) allocation with
    mballoc-style power-of-two normalisation, a global JBD2 redo journal
    committed stop-the-world at fsync, unwritten extents zeroed on first
    fault (Â§5.4), and PMD faults that allocate 2MB without caring about
    alignment â hugepages appear clean but dissolve with age (Â§2.5). *)

type t = Basefs.t

include Repro_vfs.Fs_intf.S with type t := t
