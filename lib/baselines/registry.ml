(** Conformance proofs and a uniform way to instantiate every file system
    in the study.

    The [module ... : Fs_intf.S] coercions below are the static checks
    that each baseline implements the full interface; experiments pick
    file systems from {!all} / {!metadata_group} / {!data_group}, matching
    the two comparison groups of §5.1.

    Every factory goes through {!handle}; the fixed consistency contract
    each system ships with (§5.1: ext4/xfs/PMFS/SplitFS are
    metadata-only, NOVA and Strata full data+metadata) is applied with
    the {!with_mode} combinator rather than per-factory closures. *)

module Fs_intf = Repro_vfs.Fs_intf
module Types = Repro_vfs.Types

module Ext4 : Fs_intf.S = Ext4_dax
module Xfs : Fs_intf.S = Xfs_dax
module Pmfs_fs : Fs_intf.S = Pmfs
module Nova_fs : Fs_intf.S = Nova
module Splitfs_fs : Fs_intf.S = Splitfs
module Strata_fs : Fs_intf.S = Strata

type factory = {
  fs_name : string;
  make : Repro_pmem.Device.t -> Types.config -> Fs_intf.handle;
}

let handle (type a) (module F : Fs_intf.S with type t = a) dev cfg =
  Fs_intf.Handle ((module F), F.format dev cfg)

let factory fs_name make = { fs_name; make }

(* Pin the consistency mode a system runs under, whatever the caller's
   config says. *)
let with_mode mode f = { f with make = (fun dev cfg -> f.make dev { cfg with Types.mode }) }

(* WineFS honours the caller's mode (the experiments run it both ways). *)
let winefs =
  factory "WineFS" (handle (module Winefs.Fs : Fs_intf.S with type t = Winefs.Fs.t))

let winefs_relaxed = { (with_mode Types.Relaxed winefs) with fs_name = "WineFS-Relaxed" }

let ext4_dax =
  with_mode Types.Relaxed
    (factory "ext4-DAX" (handle (module Ext4_dax : Fs_intf.S with type t = Ext4_dax.t)))

let xfs_dax =
  with_mode Types.Relaxed
    (factory "xfs-DAX" (handle (module Xfs_dax : Fs_intf.S with type t = Xfs_dax.t)))

let pmfs =
  with_mode Types.Relaxed
    (factory "PMFS" (handle (module Pmfs : Fs_intf.S with type t = Pmfs.t)))

let nova =
  with_mode Types.Strict
    (factory "NOVA" (handle (module Nova : Fs_intf.S with type t = Nova.t)))

let nova_relaxed =
  with_mode Types.Relaxed
    (factory "NOVA-Relaxed" (handle (module Nova : Fs_intf.S with type t = Nova.t)))

let splitfs =
  with_mode Types.Relaxed
    (factory "SplitFS" (handle (module Splitfs : Fs_intf.S with type t = Splitfs.t)))

let strata =
  with_mode Types.Strict
    (factory "Strata" (handle (module Strata : Fs_intf.S with type t = Strata.t)))

(* §5.1: the metadata-consistency comparison group... *)
let metadata_group = [ ext4_dax; xfs_dax; pmfs; nova_relaxed; splitfs; winefs_relaxed ]

(* ...and the data+metadata-consistency group. *)
let data_group = [ nova; strata; winefs ]

let all =
  [ winefs; winefs_relaxed; ext4_dax; xfs_dax; pmfs; nova; nova_relaxed; splitfs; strata ]

let by_name name =
  match List.find_opt (fun f -> String.lowercase_ascii f.fs_name = String.lowercase_ascii name) all with
  | Some f -> f
  | None -> invalid_arg ("unknown file system: " ^ name)
