(** NOVA model (Xu & Swanson, FAST '16), the paper's main competitor.

    Log-structured metadata: every inode owns a log — a chain of 4KB pages
    {e allocated from the data area} — to which 64B entries are appended
    (file-write entries, dentry entries, attribute entries).  This is the
    design the paper blames for fragmentation: per-inode log pages pepper
    free space and break up aligned extents (§2.6, §3.4, Figure 3).

    Data updates are copy-on-write at 4KB granularity in strict mode
    (atomic data), with the WiredTiger-visible consequence that appends at
    unaligned offsets copy the partial tail block to a fresh block (§5.5).
    Allocation is per-CPU first-fit and attempts 2MB alignment only when a
    request is an exact multiple of 2MB (§6).  [fallocate] zeroes eagerly,
    so page faults only build mappings — cheaper faults than ext4 (§5.4).
    Log growth beyond a threshold triggers compaction (fast GC), charging
    copies and churning free space. *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Path = Repro_vfs.Path
module Dir_index = Repro_vfs.Dir_index
module Fd_table = Repro_vfs.Fd_table
module Block_map = Repro_vfs.Block_map
module Cost = Repro_vfs.Fs_intf.Cost
module Alloc = Repro_alloc.Pool_alloc
module Site = Repro_pmem.Site

(* Durability-lint sites: label NOVA's persistence regions so
   sanitizer/faultcheck findings name the layer at fault. *)
let site_log = Site.v "nova" "log"
let site_gc = Site.v "nova" "gc"
let site_zero = Site.v "nova" "zero"
let site_cow = Site.v "nova" "cow"
let site_data = Site.v "nova" "data"
let site_fsync = Site.v "nova" "fsync"

let name = "NOVA"
let huge = Units.huge_page
let block = Units.base_page
let log_entry_bytes = 64
let entries_per_page = (block - 16) / log_entry_bytes (* 16B page header: next ptr *)

type log = {
  mutable pages : int list; (* phys addrs, chain order *)
  mutable tail : int; (* entries appended in the last page *)
  mutable live : int;
  mutable dead : int;
}

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  bmap : Block_map.t;
  log : log;
  mutable dir : Dir_index.t option;
  lock : Sched.mutex;
  mutable dirty_bytes : int;
}

type t = {
  dev : Device.t;
  cfg : Types.config;
  alloc : Alloc.t;
  files : (int, file) Hashtbl.t;
  fds : Fd_table.t;
  counters : Counters.t;
  mutable next_ino : int;
  data_off : int;
  data_len : int;
}

let root_ino = 1

(* ------------------------------------------------------------------ *)
(* Per-inode log                                                       *)

let alloc_cpu t (cpu : Cpu.t) = cpu.id mod t.cfg.cpus

let alloc_block t cpu =
  match Alloc.alloc t.alloc ~cpu:(alloc_cpu t cpu) ~len:block with
  | Some [ e ] -> e.Alloc.off
  | Some exts ->
      List.iter (fun (e : Alloc.extent) -> Alloc.free t.alloc ~off:e.off ~len:e.len) exts;
      Types.err ENOSPC "log page allocation"
  | None -> Types.err ENOSPC "log page allocation"

(* Append one 64B entry to the inode log: write + persist the entry, then
   persist the 8B tail-pointer update — NOVA's commit protocol. *)
let log_append t cpu f =
  let lg = f.log in
  (if lg.pages = [] || lg.tail >= entries_per_page then begin
     let page = alloc_block t cpu in
     (* Link from the previous page (8B pointer write + persist). *)
     (match List.rev lg.pages with
     | last :: _ ->
         Device.with_site t.dev site_log (fun () ->
             Device.write_u64 t.dev cpu ~off:last (Int64.of_int page))
     | [] -> ());
     lg.pages <- lg.pages @ [ page ];
     lg.tail <- 0;
     Counters.incr t.counters "fs.log_pages"
   end);
  let page = List.nth lg.pages (List.length lg.pages - 1) in
  let off = page + 16 + (lg.tail * log_entry_bytes) in
  Device.with_site t.dev site_log (fun () ->
      Device.write t.dev cpu ~off ~src:(Bytes.make log_entry_bytes '\001') ~src_off:0
        ~len:log_entry_bytes;
      Device.persist t.dev cpu ~off ~len:log_entry_bytes;
      (* Tail pointer in the inode (modelled at the page header). *)
      Device.write_u64 t.dev cpu ~off:page (Int64.of_int lg.tail);
      Device.persist t.dev cpu ~off:page ~len:8);
  lg.tail <- lg.tail + 1;
  lg.live <- lg.live + 1;
  Counters.incr t.counters "fs.log_appends"

(* Invalidating superseded entries is a PM write per entry (NOVA sets an
   invalid bit in the old entry and persists it) — part of why overwrites
   cost more on NOVA (§5.5). *)
let log_invalidate t cpu f n =
  f.log.live <- max 0 (f.log.live - n);
  f.log.dead <- f.log.dead + n;
  (match f.log.pages with
  | page :: _ ->
      Device.with_site t.dev site_log (fun () ->
          for _ = 1 to n do
            Device.write_u64 t.dev cpu ~off:(page + 8) 1L;
            Device.persist t.dev cpu ~off:(page + 8) ~len:8
          done)
  | [] -> ());
  Counters.add t.counters "fs.log_invalidations" n

(* Fast GC: when a log is mostly dead, copy live entries to fresh pages
   and free the old ones — free-space churn that competes with foreground
   work (§2.6). *)
let maybe_gc t cpu f =
  let lg = f.log in
  let page_count = List.length lg.pages in
  if page_count > 4 && lg.dead > lg.live * 2 then begin
    let live_pages = max 1 ((lg.live + entries_per_page - 1) / entries_per_page) in
    let fresh = List.init live_pages (fun _ -> alloc_block t cpu) in
    (* Copy live entries (charges device traffic). *)
    Device.with_site t.dev site_gc (fun () ->
        List.iter
          (fun page ->
            Device.copy_within_nt t.dev cpu ~src:(List.hd lg.pages) ~dst:page ~len:block)
          fresh;
        Device.fence t.dev cpu);
    List.iter (fun p -> Alloc.free t.alloc ~off:p ~len:block) lg.pages;
    lg.pages <- fresh;
    lg.tail <- lg.live mod entries_per_page;
    lg.dead <- 0;
    Counters.incr t.counters "fs.log_gc"
  end

let free_log t f =
  List.iter (fun p -> Alloc.free t.alloc ~off:p ~len:block) f.log.pages;
  f.log.pages <- []

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let format dev (cfg : Types.config) =
  let size = Device.size dev in
  (* Inode tables are per-CPU fixed regions; the rest is the data area,
     2MB-aligned so alignment is possible in principle. *)
  let tables = Units.round_up (cfg.cpus * cfg.inodes_per_cpu * 128) block in
  let data_off = Units.round_up (4096 + tables) huge in
  if data_off + huge > size then invalid_arg "NOVA: device too small";
  let data_len = size - data_off in
  let stripe = data_len / cfg.cpus in
  let regions =
    Array.init cfg.cpus (fun i ->
        (data_off + (i * stripe), if i = cfg.cpus - 1 then data_len - ((cfg.cpus - 1) * stripe) else stripe))
  in
  let alloc_cfg =
    {
      Alloc.per_cpu = true;
      policy = Alloc.First_fit;
      align_exact_2m = true;
      normalize_pow2 = false;
    }
  in
  let t =
    {
      dev;
      cfg;
      alloc = Alloc.create alloc_cfg ~cpus:cfg.cpus ~regions;
      files = Hashtbl.create 1024;
      fds = Fd_table.create ();
      counters = Counters.create ();
      next_ino = root_ino;
      data_off;
      data_len;
    }
  in
  let root =
    {
      ino = root_ino;
      kind = Types.Directory;
      size = 0;
      nlink = 2;
      bmap = Block_map.create ();
      log = { pages = []; tail = 0; live = 0; dead = 0 };
      dir = Some (Dir_index.create Dram_rbtree);
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
    }
  in
  Hashtbl.replace t.files root_ino root;
  t.next_ino <- 2;
  t

let mount _dev _cfg =
  Types.err EINVAL "baseline models do not support mount-from-image (see DESIGN.md)"

let unmount _t _cpu = ()
let recovery_ns _ = 0
let device t = t.dev
let config t = t.cfg
let counters t = t.counters

let find_file t ino =
  match Hashtbl.find_opt t.files ino with
  | Some f -> f
  | None -> Types.err EBADF "stale inode %d" ino

let new_file t kind =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  let f =
    {
      ino;
      kind;
      size = 0;
      nlink = (if kind = Types.Directory then 2 else 1);
      bmap = Block_map.create ();
      log = { pages = []; tail = 0; live = 0; dead = 0 };
      dir = (if kind = Types.Directory then Some (Dir_index.create Dram_rbtree) else None);
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
    }
  in
  Hashtbl.replace t.files ino f;
  f

let resolve t cpu path =
  let parts = Path.split path in
  let rec walk ino = function
    | [] -> ino
    | name :: rest -> (
        let f = find_file t ino in
        match f.dir with
        | None -> Types.err ENOTDIR "%s" path
        | Some idx -> (
            match Dir_index.lookup idx cpu name with
            | Some (child, _) -> walk child rest
            | None -> Types.err ENOENT "%s" path))
  in
  walk root_ino parts

let resolve_parent t cpu path =
  let dir = Path.dirname path and name = Path.basename path in
  let ino = resolve t cpu dir in
  let f = find_file t ino in
  if f.kind <> Types.Directory then Types.err ENOTDIR "%s" dir;
  (f, name)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let allocate t cpu ~len =
  match Alloc.alloc t.alloc ~cpu:(alloc_cpu t cpu) ~len with
  | Some exts -> exts
  | None -> Types.err ENOSPC "allocating %d bytes" len

let ensure_backing t cpu f ~off ~len ~zero =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let cur = ref lo in
  while !cur < hi do
    match Block_map.lookup f.bmap ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
          | Some o -> min hi o
          | None -> hi
        in
        let exts = allocate t cpu ~len:(hole_end - !cur) in
        let fo = ref !cur in
        List.iter
          (fun (e : Alloc.extent) ->
            Block_map.insert f.bmap ~file_off:!fo ~phys:e.off ~len:e.len;
            if zero then
              Device.with_site t.dev site_zero (fun () ->
                  Device.memset_nt t.dev cpu ~off:e.off ~len:e.len '\000';
                  Device.fence t.dev cpu);
            fo := !fo + e.len)
          exts;
        log_append t cpu f;
        cur := hole_end
  done

(* ------------------------------------------------------------------ *)
(* Namespace: dentry entries appended to the parent directory's log    *)

let mkdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
      let f = new_file t Types.Directory in
      log_append t cpu f (* inode-init entry *);
      log_append t cpu parent (* dentry entry *);
      Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
      parent.nlink <- parent.nlink + 1);
  Counters.incr t.counters "fs.mkdir"

let create t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  let f =
    Sched.with_lock parent.lock (fun () ->
        let idx = Option.get parent.dir in
        if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
        let f = new_file t Types.Regular in
        log_append t cpu f;
        log_append t cpu parent;
        Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
        f)
  in
  Counters.incr t.counters "fs.create";
  Fd_table.alloc t.fds ~ino:f.ino ~flags:Types.o_creat_rdwr

let free_file_space t f =
  List.iter (fun (_, phys, len) -> Alloc.free t.alloc ~off:phys ~len) (Block_map.extents f.bmap);
  Block_map.clear f.bmap;
  free_log t f

let unlink t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind = Types.Directory then Types.err EISDIR "%s" path;
          log_append t cpu parent (* delete-dentry entry *);
          log_invalidate t cpu parent 1;
          maybe_gc t cpu parent;
          Dir_index.remove idx cpu name;
          f.nlink <- f.nlink - 1;
          if f.nlink = 0 then
            Sched.with_lock f.lock (fun () ->
                free_file_space t f;
                Hashtbl.remove t.files ino));
  Counters.incr t.counters "fs.unlink"

let rmdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind <> Types.Directory then Types.err ENOTDIR "%s" path;
          if Dir_index.size (Option.get f.dir) > 0 then Types.err ENOTEMPTY "%s" path;
          log_append t cpu parent;
          log_invalidate t cpu parent 1;
          Dir_index.remove idx cpu name;
          parent.nlink <- parent.nlink - 1;
          free_file_space t f;
          Hashtbl.remove t.files ino);
  Counters.incr t.counters "fs.rmdir"

let rename t cpu ~old_path ~new_path =
  Cost.charge_syscall cpu;
  let src_parent, src_name = resolve_parent t cpu old_path in
  let dst_parent, dst_name = resolve_parent t cpu new_path in
  let locks =
    if src_parent.ino = dst_parent.ino then [ src_parent.lock ]
    else if src_parent.ino < dst_parent.ino then [ src_parent.lock; dst_parent.lock ]
    else [ dst_parent.lock; src_parent.lock ]
  in
  List.iter Sched.lock locks;
  Fun.protect
    ~finally:(fun () -> List.iter Sched.unlock (List.rev locks))
    (fun () ->
      let src_idx = Option.get src_parent.dir and dst_idx = Option.get dst_parent.dir in
      match Dir_index.lookup src_idx cpu src_name with
      | None -> Types.err ENOENT "%s" old_path
      | Some (ino, _) ->
          (match Dir_index.lookup dst_idx cpu dst_name with
          | Some (victim_ino, _) when victim_ino <> ino ->
              let victim = find_file t victim_ino in
              if victim.kind = Types.Directory then Types.err EISDIR "%s" new_path;
              Dir_index.remove dst_idx cpu dst_name;
              Sched.with_lock victim.lock (fun () ->
                  free_file_space t victim;
                  Hashtbl.remove t.files victim_ino)
          | _ -> ());
          (* NOVA journals renames across the two inode logs with a small
             dedicated journal; model as two log appends. *)
          log_append t cpu src_parent;
          log_append t cpu dst_parent;
          log_invalidate t cpu src_parent 1;
          Dir_index.remove src_idx cpu src_name;
          Dir_index.add dst_idx cpu ~name:dst_name ~ino ~slot:0);
  Counters.incr t.counters "fs.rename"

let readdir t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  match f.dir with
  | None -> Types.err ENOTDIR "%s" path
  | Some idx ->
      Simclock.advance cpu.clock (Dir_index.size idx * 12);
      List.map fst (Dir_index.entries idx)

let stat t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  {
    Types.st_ino = f.ino;
    st_kind = f.kind;
    st_size = f.size;
    st_blocks = Block_map.mapped_bytes f.bmap + (List.length f.log.pages * block);
    st_nlink = f.nlink;
  }

let exists t cpu path =
  match resolve t cpu path with
  | _ -> true
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> false

let rec openf t cpu path (flags : Types.open_flags) =
  Cost.charge_syscall cpu;
  match resolve t cpu path with
  | ino ->
      if flags.creat && flags.excl then Types.err EEXIST "%s" path;
      let f = find_file t ino in
      if f.kind = Types.Directory && flags.wr then Types.err EISDIR "%s" path;
      if flags.trunc && f.kind = Types.Regular && f.size > 0 then
        Sched.with_lock f.lock (fun () ->
            List.iter
              (fun (_, phys, len) -> Alloc.free t.alloc ~off:phys ~len)
              (Block_map.extents f.bmap);
            Block_map.clear f.bmap;
            f.size <- 0;
            log_append t cpu f);
      Fd_table.alloc t.fds ~ino ~flags
  | exception Types.Error (ENOENT, _) when flags.creat ->
      let fd = create t cpu path in
      Fd_table.close t.fds fd;
      openf t cpu path { flags with creat = false }

let close t cpu fd =
  Cost.charge_syscall cpu;
  Fd_table.close t.fds fd

let file_size t fd = (find_file t (Fd_table.get t.fds fd).ino).size

(* ------------------------------------------------------------------ *)
(* Data path                                                           *)

let strict t = t.cfg.mode = Types.Strict

(* Strict-mode write: copy-on-write at 4KB granularity.  Partial head and
   tail blocks are copied into the fresh blocks before overlaying new
   data — the write amplification the paper observes on WiredTiger
   appends (§5.5). *)
let write_cow t cpu f ~off ~src ~src_off ~len =
  let blo = Units.round_down off block and bhi = Units.round_up (off + len) block in
  let cow_len = bhi - blo in
  let exts = allocate t cpu ~len:cow_len in
  let src_b = Bytes.unsafe_of_string src in
  let pf = ref blo in
  List.iter
    (fun (e : Alloc.extent) ->
      let ov_lo = max !pf off and ov_hi = min (!pf + e.len) (off + len) in
      (* Preserve only the uncovered block edges (NOVA copies partial
         blocks, not data the write replaces). *)
      Device.with_site t.dev site_cow (fun () ->
          let preserve lo stop =
            let cur = ref lo in
            while !cur < stop do
              (match Block_map.lookup f.bmap ~file_off:!cur with
              | Some (old_phys, old_run) ->
                  let n = min old_run (stop - !cur) in
                  Device.copy_within_nt t.dev cpu ~src:old_phys ~dst:(e.off + (!cur - !pf))
                    ~len:n;
                  Counters.add t.counters "fs.cow_copy_bytes" n;
                  cur := !cur + n
              | None ->
                  Device.memset_nt t.dev cpu ~off:(e.off + (!cur - !pf)) ~len:(stop - !cur)
                    '\000';
                  cur := stop)
            done
          in
          preserve !pf (min ov_lo (!pf + e.len));
          preserve (max ov_hi !pf) (!pf + e.len);
          if ov_hi > ov_lo then
            Device.write_nt t.dev cpu ~off:(e.off + (ov_lo - !pf)) ~src:src_b
              ~src_off:(src_off + (ov_lo - off)) ~len:(ov_hi - ov_lo);
          Device.fence t.dev cpu);
      pf := !pf + e.len)
    exts;
  (* Commit: append a write entry, invalidate superseded entries, free the
     old blocks. *)
  let freed = Block_map.remove_range f.bmap ~file_off:blo ~len:cow_len in
  let pf = ref blo in
  List.iter
    (fun (e : Alloc.extent) ->
      Block_map.insert f.bmap ~file_off:!pf ~phys:e.off ~len:e.len;
      pf := !pf + e.len)
    exts;
  log_append t cpu f;
  log_invalidate t cpu f (List.length freed);
  maybe_gc t cpu f;
  List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) freed

let pwrite_sub t cpu fd ~off ~src ~src_off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = find_file t e.ino in
  if f.kind = Types.Directory then Types.err EISDIR "fd %d" fd;
  if src_off < 0 || len < 0 || src_off + len > String.length src then
    Types.err EINVAL "pwrite_sub outside src bounds";
  if len = 0 then 0
  else begin
    if off < 0 then Types.err EINVAL "negative offset";
    Sched.with_lock f.lock (fun () ->
        if strict t then write_cow t cpu f ~off ~src ~src_off ~len
        else begin
          ensure_backing t cpu f ~off ~len ~zero:false;
          let src_b = Bytes.unsafe_of_string src in
          Device.with_site t.dev site_data (fun () ->
              let cur = ref off in
              while !cur < off + len do
                let phys, run = Option.get (Block_map.lookup f.bmap ~file_off:!cur) in
                let n = min (off + len - !cur) run in
                Device.write_nt t.dev cpu ~off:phys ~src:src_b
                  ~src_off:(src_off + (!cur - off)) ~len:n;
                f.dirty_bytes <- f.dirty_bytes + n;
                cur := !cur + n
              done);
          log_append t cpu f
        end;
        if off + len > f.size then f.size <- off + len);
    Counters.add t.counters "fs.write_bytes" len;
    len
  end

let pwrite t cpu fd ~off ~src =
  pwrite_sub t cpu fd ~off ~src ~src_off:0 ~len:(String.length src)

let append t cpu fd ~src =
  let f = find_file t (Fd_table.get t.fds fd).ino in
  pwrite t cpu fd ~off:f.size ~src

let pread t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.rd then Types.err EBADF "fd %d not readable" fd;
  let f = find_file t e.ino in
  if off < 0 || len < 0 then Types.err EINVAL "bad range";
  let len = max 0 (min len (f.size - off)) in
  if len = 0 then ""
  else begin
    let dst = Bytes.make len '\000' in
    let cur = ref off in
    while !cur < off + len do
      match Block_map.lookup f.bmap ~file_off:!cur with
      | Some (phys, run) ->
          let n = min (off + len - !cur) run in
          Device.read t.dev cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off);
          cur := !cur + n
      | None -> (
          match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
          | Some o -> cur := min (off + len) o
          | None -> cur := off + len)
    done;
    Counters.add t.counters "fs.read_bytes" len;
    Bytes.unsafe_to_string dst
  end

let fsync t cpu fd =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if (not (strict t)) && f.dirty_bytes > 0 then begin
    let lines = (f.dirty_bytes + Units.cacheline - 1) / Units.cacheline in
    Simclock.advance cpu.clock
      (int_of_float ((Device.cost t.dev).flush_ns *. float_of_int lines));
    Device.with_site t.dev site_fsync (fun () -> Device.fence t.dev cpu);
    f.dirty_bytes <- 0
  end;
  Counters.incr t.counters "fs.fsync"

let fallocate t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if off < 0 || len <= 0 then Types.err EINVAL "bad range";
  Sched.with_lock f.lock (fun () ->
      (* NOVA zeroes at fallocate; faults then only build page tables. *)
      ensure_backing t cpu f ~off ~len ~zero:true;
      if off + len > f.size then f.size <- off + len);
  Counters.incr t.counters "fs.fallocate"

let ftruncate t cpu fd new_size =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if new_size < 0 then Types.err EINVAL "negative size";
  Sched.with_lock f.lock (fun () ->
      if new_size < f.size then begin
        let lo = Units.round_up new_size block in
        if f.size > lo then begin
          let freed = Block_map.remove_range f.bmap ~file_off:lo ~len:(f.size - lo) in
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) freed;
          log_invalidate t cpu f (List.length freed)
        end
      end;
      f.size <- new_size;
      log_append t cpu f);
  Counters.incr t.counters "fs.ftruncate"

(* ------------------------------------------------------------------ *)
(* mmap: hugepage only when an extent happens to be 2MB-aligned        *)

let mmap_backing t fd : Vmem.backing =
  let ino = (Fd_table.get t.fds fd).ino in
  fun cpu ~file_off ~huge_ok ->
    let f = find_file t ino in
    let fault_alloc len =
      Sched.with_lock f.lock (fun () ->
          ensure_backing t cpu f ~off:file_off ~len ~zero:true)
    in
    if huge_ok then begin
      match Block_map.huge_candidate f.bmap ~chunk_off:file_off with
      | Some phys -> Vmem.Huge phys
      | None -> (
          if Block_map.lookup f.bmap ~file_off = None then fault_alloc block;
          match Block_map.lookup f.bmap ~file_off with
          | Some (phys, _) -> Vmem.Base phys
          | None -> Vmem.Sigbus)
    end
    else begin
      if Block_map.lookup f.bmap ~file_off = None then fault_alloc block;
      match Block_map.lookup f.bmap ~file_off with
      | Some (phys, _) -> Vmem.Base phys
      | None -> Vmem.Sigbus
    end

let set_xattr_align _t cpu _path _v = Cost.charge_syscall cpu

let statfs t =
  let free = Alloc.free_bytes t.alloc in
  {
    Types.capacity = t.data_len;
    used = t.data_len - free;
    free;
    free_extents = Alloc.free_extent_count t.alloc;
    largest_free = Alloc.largest_free t.alloc;
    aligned_free_2m = Alloc.aligned_region_count t.alloc;
  }

let file_extents t cpu path =
  let f = find_file t (resolve t cpu path) in
  Block_map.extents f.bmap
