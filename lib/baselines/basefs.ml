(** Configurable "classic extent file system" engine.

    The ext4-DAX, xfs-DAX and PMFS baselines are policy presets over this
    engine (see {!Ext4_dax}, {!Xfs_dax}, {!Pmfs}): an extent allocator with
    no aligned-extent reservation ({!Repro_alloc.Pool_alloc}), a metadata
    journal (global JBD2-style redo, or a single PM-optimised undo journal
    for PMFS), in-place data writes that become durable at fsync, and an
    mmap fault path that only produces hugepages when an extent {e happens}
    to be aligned — exactly the behaviours §2.5/§2.6 blame for hugepage
    loss under aging.

    Metadata lives in DRAM with journal traffic charged against real PM
    addresses; mount-from-image is supported only for WineFS (the paper's
    crash study, §5.2, targets WineFS alone) — see DESIGN.md. *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Site = Repro_pmem.Site

(* Durability-lint sites: the engine labels every persistence region so
   sanitizer/faultcheck findings name the layer at fault. *)
let site_meta = Site.v "basefs" "meta"
let site_zero = Site.v "basefs" "zero"
let site_data = Site.v "basefs" "data"
let site_fsync = Site.v "basefs" "fsync"
let site_fault = Site.v "basefs" "fault"
module Path = Repro_vfs.Path
module Dir_index = Repro_vfs.Dir_index
module Fd_table = Repro_vfs.Fd_table
module Block_map = Repro_vfs.Block_map
module Cost = Repro_vfs.Fs_intf.Cost
module Redo = Repro_journal.Redo_journal
module Undo = Repro_journal.Undo_journal
module Alloc = Repro_alloc.Pool_alloc
module Extent_tree = Repro_rbtree.Extent_tree

let huge = Units.huge_page
let block = Units.base_page

type journal_kind = Jbd2_redo | Pmfs_undo

type preset = {
  label : string;
  alloc_cfg : Alloc.config;
  dir_policy : Dir_index.policy;
  journal : journal_kind;
  zero_on_fallocate : bool;
      (** NOVA-style zeroing at allocation; [false] = ext4-style unwritten
          extents zeroed on first fault. *)
  misaligned_start : bool;
      (** Shift the data area off 2MB alignment — models allocators that
          disregard alignment entirely (xfs-DAX, PMFS; footnote 1). *)
  huge_fault_alloc : bool;  (** attempt a 2MB allocation on a PMD fault *)
  goal_alloc : bool;  (** pass the file's last extent as a locality goal *)
}

type journal = Jredo of Redo.t | Jundo of Undo.t * Sched.mutex

type file = {
  ino : int;
  mutable kind : Types.file_kind;
  mutable size : int;
  mutable nlink : int;
  bmap : Block_map.t;
  (* Fallocated-but-never-written file ranges.  Lazily allocated on the
     first fallocate: the common create/write/unlink lifecycle never
     fallocates, and the eager per-file tree was measurable in aging. *)
  mutable unwritten : Extent_tree.t option;
  mutable dir : Dir_index.t option;
  lock : Sched.mutex;
  mutable dirty_bytes : int;
  mutable goal : int; (* physical end of the last allocation *)
  meta_addr : int; (* synthetic PM address of this inode's metadata *)
}

type t = {
  dev : Device.t;
  cfg : Types.config;
  preset : preset;
  alloc : Alloc.t;
  journal : journal;
  files : (int, file) Hashtbl.t;
  fds : Fd_table.t;
  counters : Counters.t;
  mutable next_ino : int;
  inode_region : int;
  inode_slots : int;
  data_off : int;
  data_len : int;
}

let root_ino = 1
let inode_meta_bytes = 256

(* ------------------------------------------------------------------ *)
(* Journal cost model                                                  *)

(* Synchronous namespace mutation: both journal kinds make it durable
   before returning. *)
let meta_sync t cpu ~addr ~bytes =
  match t.journal with
  | Jredo j ->
      Redo.add j cpu ~addr ~data:(String.make bytes '\000');
      Redo.commit j cpu
  | Jundo (j, lock) ->
      (* PMFS's logging is fine-grained: the global journal is held only
         for the compact log append (why PMFS scales in Figure 10); the
         in-place metadata write happens outside the lock. *)
      Sched.with_lock lock (fun () ->
          let txn = Undo.begin_txn j cpu ~reserve:2 in
          Undo.log_range j cpu txn ~addr ~len:(min bytes 24);
          Undo.commit j cpu txn);
      let n = min bytes 64 in
      Device.with_site t.dev site_meta (fun () ->
          Device.write t.dev cpu ~off:addr ~src:(Bytes.make n '\000') ~src_off:0 ~len:n;
          Device.persist t.dev cpu ~off:addr ~len:n)

(* Deferred metadata (size/extent updates on the write path): JBD2 buffers
   them in the running transaction until fsync — the costly-fsync,
   stop-the-world behaviour of ext4/xfs (§5.6).  PMFS journals immediately
   (fine-grained), which is why it scales. *)
let meta_buffered t cpu ~addr ~bytes =
  match t.journal with
  | Jredo j -> Redo.add j cpu ~addr ~data:(String.make bytes '\000')
  | Jundo _ -> meta_sync t cpu ~addr ~bytes

let journal_fsync t cpu =
  match t.journal with Jredo j -> Redo.commit j cpu | Jundo _ -> ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let format preset dev (cfg : Types.config) =
  let cpu = Cpu.make ~id:0 () in
  let size = Device.size dev in
  let journal_off = 4096 in
  let journal_size = min (4 * Units.mib) (max (256 * Units.kib) (size / 64)) in
  let inode_region = journal_off + Redo.bytes_needed ~size:journal_size in
  let inode_slots = min (cfg.cpus * cfg.inodes_per_cpu) (size / 4 / inode_meta_bytes) in
  let after_inodes = inode_region + (inode_slots * inode_meta_bytes) in
  let data_off = Units.round_up after_inodes huge in
  let data_off = if preset.misaligned_start then data_off + block else data_off in
  if data_off + huge > size then invalid_arg (preset.label ^ ": device too small");
  let data_len = size - data_off in
  let journal =
    match preset.journal with
    | Jbd2_redo -> Jredo (Redo.format dev cpu ~off:journal_off ~size:journal_size)
    | Pmfs_undo ->
        let counter = Undo.Txn_counter.create () in
        Jundo
          ( Undo.format dev cpu counter ~off:journal_off ~entries:512
              ~copy_bytes:(journal_size / 2),
            Sched.create_mutex ~name:"basefs:lock" () )
  in
  let regions =
    (* Carve per-CPU stripes only when the preset partitions free space. *)
    if preset.alloc_cfg.per_cpu then
      Array.init cfg.cpus (fun i ->
          let stripe = data_len / cfg.cpus in
          (data_off + (i * stripe), if i = cfg.cpus - 1 then data_len - ((cfg.cpus - 1) * stripe) else stripe))
    else [| (data_off, data_len) |]
  in
  let cpus_for_alloc = if preset.alloc_cfg.per_cpu then cfg.cpus else 1 in
  let t =
    {
      dev;
      cfg;
      preset;
      alloc = Alloc.create preset.alloc_cfg ~cpus:cpus_for_alloc ~regions;
      journal;
      files = Hashtbl.create 1024;
      fds = Fd_table.create ();
      counters = Counters.create ();
      next_ino = root_ino;
      inode_region;
      inode_slots;
      data_off;
      data_len;
    }
  in
  (* Root. *)
  let meta_addr = inode_region in
  let root =
    {
      ino = root_ino;
      kind = Types.Directory;
      size = 0;
      nlink = 2;
      bmap = Block_map.create ();
      unwritten = None;
      dir = Some (Dir_index.create preset.dir_policy);
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
      goal = data_off;
      meta_addr;
    }
  in
  Hashtbl.replace t.files root_ino root;
  t.next_ino <- root_ino + 1;
  t

let mount _dev _cfg =
  Types.err EINVAL "baseline models do not support mount-from-image (see DESIGN.md)"

let unmount t cpu = journal_fsync t cpu

let recovery_ns _ = 0
let device t = t.dev
let config t = t.cfg
let counters t = t.counters

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)

let find_file t ino =
  match Hashtbl.find_opt t.files ino with
  | Some f -> f
  | None -> Types.err EBADF "stale inode %d" ino

let meta_addr_for t ino = t.inode_region + (ino mod t.inode_slots * inode_meta_bytes)

let new_file t kind =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  let f =
    {
      ino;
      kind;
      size = 0;
      nlink = (if kind = Types.Directory then 2 else 1);
      bmap = Block_map.create ();
      unwritten = None;
      dir = (if kind = Types.Directory then Some (Dir_index.create t.preset.dir_policy) else None);
      lock = Sched.create_mutex ();
      dirty_bytes = 0;
      goal = t.data_off;
      meta_addr = meta_addr_for t ino;
    }
  in
  Hashtbl.replace t.files ino f;
  f

let resolve t cpu path =
  let parts = Path.split path in
  let rec walk ino = function
    | [] -> ino
    | name :: rest -> (
        let f = find_file t ino in
        match f.dir with
        | None -> Types.err ENOTDIR "%s" path
        | Some idx -> (
            match Dir_index.lookup idx cpu name with
            | Some (child, _) -> walk child rest
            | None -> Types.err ENOENT "%s" path))
  in
  walk root_ino parts

let resolve_parent t cpu path =
  let dir = Path.dirname path and name = Path.basename path in
  let ino = resolve t cpu dir in
  let f = find_file t ino in
  if f.kind <> Types.Directory then Types.err ENOTDIR "%s" dir;
  (f, name)

let alloc_cpu t (cpu : Cpu.t) =
  if t.preset.alloc_cfg.per_cpu then cpu.id mod t.cfg.cpus else 0

let allocate t cpu f ~len =
  let goal = if t.preset.goal_alloc then Some f.goal else None in
  match Alloc.alloc ?goal t.alloc ~cpu:(alloc_cpu t cpu) ~len with
  | Some exts ->
      (match List.rev exts with
      | last :: _ -> f.goal <- last.Alloc.off + last.Alloc.len
      | [] -> ());
      exts
  | None -> Types.err ENOSPC "allocating %d bytes" len

(* Back every hole in [off, off+len) with block-granular extents;
   [unwritten] marks the new space as fallocate-style unwritten. *)
let ensure_backing t cpu f ~off ~len ~unwritten =
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let cur = ref lo in
  while !cur < hi do
    match Block_map.lookup f.bmap ~file_off:!cur with
    | Some (_, run) -> cur := !cur + run
    | None ->
        let hole_end =
          match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
          | Some o -> min hi o
          | None -> hi
        in
        let exts = allocate t cpu f ~len:(hole_end - !cur) in
        let fo = ref !cur in
        List.iter
          (fun (e : Alloc.extent) ->
            Block_map.insert f.bmap ~file_off:!fo ~phys:e.off ~len:e.len;
            if unwritten then begin
              let tr =
                match f.unwritten with
                | Some tr -> tr
                | None ->
                    let tr = Extent_tree.create () in
                    f.unwritten <- Some tr;
                    tr
              in
              Extent_tree.insert_free tr ~off:!fo ~len:e.len
            end
            else if t.preset.zero_on_fallocate then
              Device.with_site t.dev site_zero (fun () ->
                  Device.memset_nt t.dev cpu ~off:e.off ~len:e.len '\000';
                  Device.fence t.dev cpu);
            fo := !fo + e.len)
          exts;
        (* Metadata: extent tree insertion journaled (one record). *)
        meta_buffered t cpu ~addr:f.meta_addr ~bytes:64;
        cur := hole_end
  done

(* Clear the unwritten flag over a range, zeroing the partial edges the
   write will not cover (ext4 semantics). *)
let mark_written t cpu f ~off ~len =
  match f.unwritten with
  | None -> () (* the file never fallocated: nothing can be unwritten *)
  | Some unwritten ->
  let lo = Units.round_down off block and hi = Units.round_up (off + len) block in
  let cur = ref lo in
  while !cur < hi do
    match Extent_tree.extent_at unwritten ~off:!cur with
    | Some (u_off, u_len) ->
        let clear_lo = max u_off lo and clear_hi = min (u_off + u_len) hi in
        ignore (Extent_tree.alloc_exact unwritten ~off:clear_lo ~len:(clear_hi - clear_lo));
        (* Zero the block-aligned edges outside the written range. *)
        let zero_edge file_lo file_hi =
          if file_hi > file_lo then
            match Block_map.lookup f.bmap ~file_off:file_lo with
            | Some (phys, run) ->
                Device.with_site t.dev site_zero (fun () ->
                    Device.memset_nt t.dev cpu ~off:phys ~len:(min run (file_hi - file_lo))
                      '\000')
            | None -> ()
        in
        if clear_lo < off then zero_edge clear_lo (min off clear_hi);
        if clear_hi > off + len then zero_edge (max (off + len) clear_lo) clear_hi;
        cur := clear_hi
    | None -> (
        match Extent_tree.to_list unwritten with
        | [] -> cur := hi
        | _ ->
            (* Jump to the next unwritten range inside [cur, hi). *)
            let next =
              List.fold_left
                (fun acc (o, _) -> if o > !cur && o < acc then o else acc)
                hi
                (Extent_tree.to_list unwritten)
            in
            cur := next)
  done

(* ------------------------------------------------------------------ *)
(* Namespace ops (metadata journaled synchronously)                    *)

let mkdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
      let f = new_file t Types.Directory in
      Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
      parent.nlink <- parent.nlink + 1;
      meta_sync t cpu ~addr:f.meta_addr ~bytes:128);
  Counters.incr t.counters "fs.mkdir"

let create t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  let f =
    Sched.with_lock parent.lock (fun () ->
        let idx = Option.get parent.dir in
        if Dir_index.mem idx cpu name then Types.err EEXIST "%s" path;
        let f = new_file t Types.Regular in
        Dir_index.add idx cpu ~name ~ino:f.ino ~slot:0;
        meta_sync t cpu ~addr:f.meta_addr ~bytes:128;
        f)
  in
  Counters.incr t.counters "fs.create";
  Fd_table.alloc t.fds ~ino:f.ino ~flags:Types.o_creat_rdwr

let free_file_space t f =
  List.iter (fun (_, phys, len) -> Alloc.free t.alloc ~off:phys ~len) (Block_map.extents f.bmap);
  Block_map.clear f.bmap

let unlink t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind = Types.Directory then Types.err EISDIR "%s" path;
          Dir_index.remove idx cpu name;
          meta_sync t cpu ~addr:f.meta_addr ~bytes:128;
          f.nlink <- f.nlink - 1;
          if f.nlink = 0 then
            (* Hold the inode lock: a concurrent writer must not see its
               backing vanish mid-operation. *)
            Sched.with_lock f.lock (fun () ->
                free_file_space t f;
                Hashtbl.remove t.files ino));
  Counters.incr t.counters "fs.unlink"

let rmdir t cpu path =
  Cost.charge_syscall cpu;
  let parent, name = resolve_parent t cpu path in
  Sched.with_lock parent.lock (fun () ->
      let idx = Option.get parent.dir in
      match Dir_index.lookup idx cpu name with
      | None -> Types.err ENOENT "%s" path
      | Some (ino, _) ->
          let f = find_file t ino in
          if f.kind <> Types.Directory then Types.err ENOTDIR "%s" path;
          if Dir_index.size (Option.get f.dir) > 0 then Types.err ENOTEMPTY "%s" path;
          Dir_index.remove idx cpu name;
          parent.nlink <- parent.nlink - 1;
          meta_sync t cpu ~addr:f.meta_addr ~bytes:128;
          Hashtbl.remove t.files ino);
  Counters.incr t.counters "fs.rmdir"

let rename t cpu ~old_path ~new_path =
  Cost.charge_syscall cpu;
  let src_parent, src_name = resolve_parent t cpu old_path in
  let dst_parent, dst_name = resolve_parent t cpu new_path in
  let locks =
    if src_parent.ino = dst_parent.ino then [ src_parent.lock ]
    else if src_parent.ino < dst_parent.ino then [ src_parent.lock; dst_parent.lock ]
    else [ dst_parent.lock; src_parent.lock ]
  in
  List.iter Sched.lock locks;
  Fun.protect
    ~finally:(fun () -> List.iter Sched.unlock (List.rev locks))
    (fun () ->
      let src_idx = Option.get src_parent.dir and dst_idx = Option.get dst_parent.dir in
      match Dir_index.lookup src_idx cpu src_name with
      | None -> Types.err ENOENT "%s" old_path
      | Some (ino, _) ->
          (match Dir_index.lookup dst_idx cpu dst_name with
          | Some (victim_ino, _) when victim_ino <> ino ->
              let victim = find_file t victim_ino in
              if victim.kind = Types.Directory then Types.err EISDIR "%s" new_path;
              Dir_index.remove dst_idx cpu dst_name;
              Sched.with_lock victim.lock (fun () ->
                  free_file_space t victim;
                  Hashtbl.remove t.files victim_ino)
          | _ -> ());
          Dir_index.remove src_idx cpu src_name;
          Dir_index.add dst_idx cpu ~name:dst_name ~ino ~slot:0;
          meta_sync t cpu ~addr:src_parent.meta_addr ~bytes:192);
  Counters.incr t.counters "fs.rename"

let readdir t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  match f.dir with
  | None -> Types.err ENOTDIR "%s" path
  | Some idx ->
      Simclock.advance cpu.clock (Dir_index.size idx * 12);
      List.map fst (Dir_index.entries idx)

let stat t cpu path =
  Cost.charge_syscall cpu;
  let f = find_file t (resolve t cpu path) in
  {
    Types.st_ino = f.ino;
    st_kind = f.kind;
    st_size = f.size;
    st_blocks = Block_map.mapped_bytes f.bmap;
    st_nlink = f.nlink;
  }

let exists t cpu path =
  match resolve t cpu path with
  | _ -> true
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> false

let rec openf t cpu path (flags : Types.open_flags) =
  Cost.charge_syscall cpu;
  match resolve t cpu path with
  | ino ->
      if flags.creat && flags.excl then Types.err EEXIST "%s" path;
      let f = find_file t ino in
      if f.kind = Types.Directory && flags.wr then Types.err EISDIR "%s" path;
      if flags.trunc && f.kind = Types.Regular && f.size > 0 then
        Sched.with_lock f.lock (fun () ->
            free_file_space t f;
            f.size <- 0;
            meta_sync t cpu ~addr:f.meta_addr ~bytes:64);
      Fd_table.alloc t.fds ~ino ~flags
  | exception Types.Error (ENOENT, _) when flags.creat ->
      let fd = create t cpu path in
      Fd_table.close t.fds fd;
      openf t cpu path { flags with creat = false }

let close t cpu fd =
  Cost.charge_syscall cpu;
  Fd_table.close t.fds fd

let file_size t fd = (find_file t (Fd_table.get t.fds fd).ino).size

(* ------------------------------------------------------------------ *)
(* Data path: in-place, durable at fsync (metadata-consistency class)  *)

let pwrite_sub t cpu fd ~off ~src ~src_off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = find_file t e.ino in
  if f.kind = Types.Directory then Types.err EISDIR "fd %d" fd;
  if src_off < 0 || len < 0 || src_off + len > String.length src then
    Types.err EINVAL "pwrite_sub outside src bounds";
  if len = 0 then 0
  else begin
    if off < 0 then Types.err EINVAL "negative offset";
    Sched.with_lock f.lock (fun () ->
        ensure_backing t cpu f ~off ~len ~unwritten:false;
        mark_written t cpu f ~off ~len;
        let src_b = Bytes.unsafe_of_string src in
        Device.with_site t.dev site_data (fun () ->
            let cur = ref off in
            while !cur < off + len do
              let phys, run = Option.get (Block_map.lookup f.bmap ~file_off:!cur) in
              let n = min (off + len - !cur) run in
              Device.write_nt t.dev cpu ~off:phys ~src:src_b
                ~src_off:(src_off + (!cur - off)) ~len:n;
              f.dirty_bytes <- f.dirty_bytes + n;
              cur := !cur + n
            done);
        if off + len > f.size then begin
          f.size <- off + len;
          meta_buffered t cpu ~addr:f.meta_addr ~bytes:32
        end);
    Counters.add t.counters "fs.write_bytes" len;
    len
  end

let pwrite t cpu fd ~off ~src =
  pwrite_sub t cpu fd ~off ~src ~src_off:0 ~len:(String.length src)

let append t cpu fd ~src =
  let f = find_file t (Fd_table.get t.fds fd).ino in
  pwrite t cpu fd ~off:f.size ~src

let pread t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let e = Fd_table.get t.fds fd in
  if not e.flags.rd then Types.err EBADF "fd %d not readable" fd;
  let f = find_file t e.ino in
  if off < 0 || len < 0 then Types.err EINVAL "bad range";
  let len = max 0 (min len (f.size - off)) in
  if len = 0 then ""
  else begin
    let dst = Bytes.make len '\000' in
    let cur = ref off in
    while !cur < off + len do
      match Block_map.lookup f.bmap ~file_off:!cur with
      | Some (phys, run) ->
          let n = min (off + len - !cur) run in
          Device.read t.dev cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off) ;
          cur := !cur + n
      | None -> (
          match Block_map.next_mapped f.bmap ~file_off:(!cur + 1) with
          | Some o -> cur := min (off + len) o
          | None -> cur := off + len)
    done;
    Counters.add t.counters "fs.read_bytes" len;
    Bytes.unsafe_to_string dst
  end

(* fsync: stop-the-world journal commit (JBD2) plus data flush of this
   file's dirty bytes. *)
let fsync t cpu fd =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if f.dirty_bytes > 0 then begin
    let lines = (f.dirty_bytes + Units.cacheline - 1) / Units.cacheline in
    Simclock.advance cpu.clock
      (int_of_float ((Device.cost t.dev).flush_ns *. float_of_int lines));
    Device.with_site t.dev site_fsync (fun () -> Device.fence t.dev cpu);
    f.dirty_bytes <- 0
  end;
  journal_fsync t cpu;
  Counters.incr t.counters "fs.fsync"

let fallocate t cpu fd ~off ~len =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if off < 0 || len <= 0 then Types.err EINVAL "bad range";
  Sched.with_lock f.lock (fun () ->
      ensure_backing t cpu f ~off ~len ~unwritten:(not t.preset.zero_on_fallocate);
      if off + len > f.size then begin
        f.size <- off + len;
        meta_buffered t cpu ~addr:f.meta_addr ~bytes:32
      end);
  Counters.incr t.counters "fs.fallocate"

let ftruncate t cpu fd new_size =
  Cost.charge_syscall cpu;
  let f = find_file t (Fd_table.get t.fds fd).ino in
  if new_size < 0 then Types.err EINVAL "negative size";
  Sched.with_lock f.lock (fun () ->
      if new_size < f.size then begin
        let lo = Units.round_up new_size block in
        if f.size > lo then begin
          let freed = Block_map.remove_range f.bmap ~file_off:lo ~len:(f.size - lo) in
          List.iter (fun (o, l) -> Alloc.free t.alloc ~off:o ~len:l) freed
        end
      end;
      f.size <- new_size;
      meta_sync t cpu ~addr:f.meta_addr ~bytes:64);
  Counters.incr t.counters "fs.ftruncate"

(* ------------------------------------------------------------------ *)
(* mmap: hugepages only by accident (§2.5)                             *)

let fault_zero t cpu f ~file_off ~phys ~len =
  (* ext4-class zeroing on first fault into an unwritten extent. *)
  match f.unwritten with
  | None -> ()
  | Some unwritten ->
      if Extent_tree.extent_at unwritten ~off:file_off <> None then begin
        ignore (Extent_tree.alloc_exact unwritten ~off:file_off ~len);
        Device.with_site t.dev site_fault (fun () ->
            Device.memset_nt t.dev cpu ~off:phys ~len '\000';
            Device.fence t.dev cpu)
      end

let mmap_backing t fd : Vmem.backing =
  let ino = (Fd_table.get t.fds fd).ino in
  fun cpu ~file_off ~huge_ok ->
    let f = find_file t ino in
    if huge_ok then begin
      match Block_map.huge_candidate f.bmap ~chunk_off:file_off with
      | Some phys ->
          fault_zero t cpu f ~file_off ~phys ~len:huge;
          Vmem.Huge phys
      | None ->
          if Block_map.lookup f.bmap ~file_off <> None then begin
            match Block_map.lookup f.bmap ~file_off with
            | Some (phys, _) ->
                fault_zero t cpu f ~file_off ~phys ~len:block;
                Vmem.Base phys
            | None -> Vmem.Sigbus
          end
          else if t.preset.huge_fault_alloc then begin
            (* ext4 DAX PMD fault: allocate 2MB, but with no alignment
               preference it rarely maps huge. *)
            Sched.with_lock f.lock (fun () ->
                ensure_backing t cpu f ~off:file_off ~len:huge ~unwritten:false);
            match Block_map.huge_candidate f.bmap ~chunk_off:file_off with
            | Some phys ->
                Device.with_site t.dev site_fault (fun () ->
                    Device.memset_nt t.dev cpu ~off:phys ~len:huge '\000';
                    Device.fence t.dev cpu);
                Vmem.Huge phys
            | None -> (
                match Block_map.lookup f.bmap ~file_off with
                | Some (phys, _) ->
                    Device.with_site t.dev site_fault (fun () ->
                        Device.memset_nt t.dev cpu ~off:phys ~len:block '\000';
                        Device.fence t.dev cpu);
                    Vmem.Base phys
                | None -> Vmem.Sigbus)
          end
          else begin
            Sched.with_lock f.lock (fun () ->
                ensure_backing t cpu f ~off:file_off ~len:block ~unwritten:false);
            match Block_map.lookup f.bmap ~file_off with
            | Some (phys, _) ->
                Device.with_site t.dev site_fault (fun () ->
                    Device.memset_nt t.dev cpu ~off:phys ~len:block '\000';
                    Device.fence t.dev cpu);
                Vmem.Base phys
            | None -> Vmem.Sigbus
          end
    end
    else begin
      match Block_map.lookup f.bmap ~file_off with
      | Some (phys, _) ->
          fault_zero t cpu f ~file_off ~phys ~len:block;
          Vmem.Base phys
      | None ->
          Sched.with_lock f.lock (fun () ->
              ensure_backing t cpu f ~off:file_off ~len:block ~unwritten:false);
          (match Block_map.lookup f.bmap ~file_off with
          | Some (phys, _) ->
              Device.with_site t.dev site_fault (fun () ->
                  Device.memset_nt t.dev cpu ~off:phys ~len:block '\000';
                  Device.fence t.dev cpu);
              Vmem.Base phys
          | None -> Vmem.Sigbus)
    end

let set_xattr_align t cpu _path _v = Cost.charge_syscall cpu; ignore t

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let statfs t =
  let free = Alloc.free_bytes t.alloc in
  {
    Types.capacity = t.data_len;
    used = t.data_len - free;
    free;
    free_extents = Alloc.free_extent_count t.alloc;
    largest_free = Alloc.largest_free t.alloc;
    aligned_free_2m = Alloc.aligned_region_count t.alloc;
  }

let file_extents t cpu path =
  let f = find_file t (resolve t cpu path) in
  Block_map.extents f.bmap
