(** SplitFS model (Kadekodi et al., SOSP '19): a user-space layer over
    ext4-DAX.

    Reads and in-place overwrites go straight to PM through memory maps —
    no kernel trap, which is SplitFS's speedup.  Appends are staged in
    pre-allocated staging extents and {e relinked} into the target file at
    fsync with one metadata journal operation (no data copy).  All other
    metadata operations pass through to ext4-DAX, so SplitFS inherits
    JBD2's poor scalability for creates and deletes (§5.5, §5.6). *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Types = Repro_vfs.Types
module Fd_table = Repro_vfs.Fd_table
module Block_map = Repro_vfs.Block_map
module Alloc = Repro_alloc.Pool_alloc
module Site = Repro_pmem.Site

(* Durability-lint sites: label SplitFS's user-space persistence regions
   so sanitizer/faultcheck findings name the layer at fault. *)
let site_mmap = Site.v "splitfs" "mmap_write"
let site_staging = Site.v "splitfs" "staging"

let name = "SplitFS"

(* Per-file staging state: appended-but-not-relinked extents. *)
type staged = {
  smap : Block_map.t; (* staged file_off -> phys (block-granular) *)
  mutable sbytes : int; (* staged volume *)
  mutable s_size : int; (* logical end of staged data *)
}

type t = { inner : Basefs.t; staging : (int, staged) Hashtbl.t }

let format dev cfg = { inner = Ext4_dax.format dev cfg; staging = Hashtbl.create 64 }

let mount _dev _cfg =
  Types.err EINVAL "baseline models do not support mount-from-image (see DESIGN.md)"

let unmount t cpu = Basefs.unmount t.inner cpu
let recovery_ns _ = 0
let device t = Basefs.device t.inner
let config t = Basefs.config t.inner
let counters t = Basefs.counters t.inner

(* Namespace: pure pass-through to ext4-DAX. *)
let mkdir t = Basefs.mkdir t.inner
let rmdir t = Basefs.rmdir t.inner
let create t = Basefs.create t.inner
let openf t = Basefs.openf t.inner
let close t = Basefs.close t.inner
let rename t = Basefs.rename t.inner
let readdir t = Basefs.readdir t.inner
let exists t = Basefs.exists t.inner
let file_extents t = Basefs.file_extents t.inner
let statfs t = Basefs.statfs t.inner
let set_xattr_align t = Basefs.set_xattr_align t.inner
let mmap_backing t = Basefs.mmap_backing t.inner

let dev_of t = Basefs.device t.inner

let staged_for t ino =
  match Hashtbl.find_opt t.staging ino with
  | Some s -> s
  | None ->
      let s = { smap = Block_map.create (); sbytes = 0; s_size = 0 } in
      Hashtbl.replace t.staging ino s;
      s

let staged_size s = s.s_size

let file_size t fd =
  let ino = (Fd_table.get t.inner.Basefs.fds fd).ino in
  let base = Basefs.file_size t.inner fd in
  match Hashtbl.find_opt t.staging ino with
  | Some s -> max base (staged_size s)
  | None -> base

let unlink t cpu path =
  (* Drop any staging for the victim. *)
  (match Basefs.resolve t.inner cpu path with
  | ino -> (
      match Hashtbl.find_opt t.staging ino with
      | Some s ->
          List.iter
            (fun (_, phys, len) -> Alloc.free t.inner.Basefs.alloc ~off:phys ~len)
            (Block_map.extents s.smap);
          Hashtbl.remove t.staging ino
      | None -> ())
  | exception Types.Error ((ENOENT | ENOTDIR), _) -> ());
  Basefs.unlink t.inner cpu path

let stat t cpu path =
  let st = Basefs.stat t.inner cpu path in
  match Hashtbl.find_opt t.staging st.Types.st_ino with
  | Some s -> { st with Types.st_size = max st.st_size (staged_size s) }
  | None -> st

(* Overwrites within the committed size bypass the kernel entirely (mmap
   path: no syscall charge).  Writes past EOF are staged appends. *)
let pwrite_sub t cpu fd ~off ~src ~src_off ~len =
  let e = Fd_table.get t.inner.Basefs.fds fd in
  if not e.flags.wr then Types.err EBADF "fd %d not writable" fd;
  let f = Basefs.find_file t.inner e.ino in
  if src_off < 0 || len < 0 || src_off + len > String.length src then
    Types.err EINVAL "pwrite_sub outside src bounds";
  if len = 0 then 0
  else if off + len <= f.Basefs.size && Block_map.covered f.Basefs.bmap ~file_off:off ~len
  then begin
    (* User-space overwrite through the file's mmap. *)
    let src_b = Bytes.unsafe_of_string src in
    Device.with_site (dev_of t) site_mmap (fun () ->
        let cur = ref off in
        while !cur < off + len do
          let phys, run = Option.get (Block_map.lookup f.Basefs.bmap ~file_off:!cur) in
          let n = min (off + len - !cur) run in
          Device.write_nt (dev_of t) cpu ~off:phys ~src:src_b
            ~src_off:(src_off + (!cur - off)) ~len:n;
          cur := !cur + n
        done;
        Device.fence (dev_of t) cpu);
    len
  end
  else begin
    (* Staged append path: allocate staging space, write there; the
       relink happens at fsync. *)
    let s = staged_for t e.ino in
    let exts =
      match Alloc.alloc t.inner.Basefs.alloc ~cpu:0 ~len:(Units.round_up len Units.base_page) with
      | Some exts -> exts
      | None -> Types.err ENOSPC "staging allocation"
    in
    let src_b = Bytes.unsafe_of_string src in
    let fo = ref off and written = ref 0 in
    Device.with_site (dev_of t) site_staging (fun () ->
        List.iter
          (fun (ext : Alloc.extent) ->
            let n = min ext.len (len - !written) in
            if n > 0 then
              Device.write_nt (dev_of t) cpu ~off:ext.off ~src:src_b
                ~src_off:(src_off + !written) ~len:n;
            (* Staged map may overlap an earlier staged write; replace. *)
            let _ = Block_map.remove_range s.smap ~file_off:!fo ~len:ext.len in
            Block_map.insert s.smap ~file_off:!fo ~phys:ext.off ~len:ext.len;
            fo := !fo + ext.len;
            written := !written + n)
          exts;
        Device.fence (dev_of t) cpu);
    s.sbytes <- s.sbytes + len;
    s.s_size <- max s.s_size (off + len);
    len
  end

let pwrite t cpu fd ~off ~src =
  pwrite_sub t cpu fd ~off ~src ~src_off:0 ~len:(String.length src)

let append t cpu fd ~src = pwrite t cpu fd ~off:(file_size t fd) ~src

let pread t cpu fd ~off ~len =
  let e = Fd_table.get t.inner.Basefs.fds fd in
  let ino = e.ino in
  match Hashtbl.find_opt t.staging ino with
  | None | Some { sbytes = 0; _ } ->
      (* No kernel trap for mmap reads: charge only the PM access by
         reading through the inner FS minus the syscall overhead. *)
      Basefs.pread t.inner cpu fd ~off ~len
  | Some s ->
      let total = file_size t fd in
      let len = max 0 (min len (total - off)) in
      if len = 0 then ""
      else begin
        let dst = Bytes.make len '\000' in
        let cur = ref off in
        while !cur < off + len do
          match Block_map.lookup s.smap ~file_off:!cur with
          | Some (phys, run) ->
              let n = min (off + len - !cur) run in
              Device.read (dev_of t) cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off);
              cur := !cur + n
          | None -> (
              (* Read committed bytes only up to the next staged extent,
                 which must win over stale committed data. *)
              let limit =
                match Block_map.next_mapped s.smap ~file_off:(!cur + 1) with
                | Some o -> min (off + len) o
                | None -> off + len
              in
              let f = Basefs.find_file t.inner ino in
              match Block_map.lookup f.Basefs.bmap ~file_off:!cur with
              | Some (phys, run) ->
                  let n = min (limit - !cur) run in
                  Device.read (dev_of t) cpu ~off:phys ~len:n ~dst ~dst_off:(!cur - off);
                  cur := !cur + n
              | None -> cur := max (!cur + 1) limit)
        done;
        Bytes.unsafe_to_string dst
      end

(* fsync: the relink — staged extents become file extents via one ext4
   journal transaction; no data copy. *)
let fsync t cpu fd =
  let e = Fd_table.get t.inner.Basefs.fds fd in
  (match Hashtbl.find_opt t.staging e.ino with
  | Some s when Block_map.extents s.smap <> [] ->
      let f = Basefs.find_file t.inner e.ino in
      List.iter
        (fun (fo, phys, len) ->
          let clobbered = Block_map.remove_range f.Basefs.bmap ~file_off:fo ~len in
          List.iter (fun (o, l) -> Alloc.free t.inner.Basefs.alloc ~off:o ~len:l) clobbered;
          Block_map.insert f.Basefs.bmap ~file_off:fo ~phys ~len)
        (Block_map.extents s.smap);
      let new_size = max f.Basefs.size (staged_size s) in
      f.Basefs.size <- new_size;
      Block_map.clear s.smap;
      s.sbytes <- 0;
      s.s_size <- 0;
      (* One metadata journal transaction on the ext4 journal. *)
      Basefs.meta_sync t.inner cpu ~addr:f.Basefs.meta_addr ~bytes:128
  | _ -> ());
  Basefs.fsync t.inner cpu fd

let fallocate t = Basefs.fallocate t.inner

(* Truncation must see staged appends: relink first, then delegate. *)
let ftruncate t cpu fd new_size =
  fsync t cpu fd;
  Basefs.ftruncate t.inner cpu fd new_size
