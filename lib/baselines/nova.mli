(** NOVA model (Xu & Swanson, FAST '16), the paper's main competitor:
    per-inode metadata logs allocated from the data area (the design the
    paper blames for fragmentation, Â§2.6), 4KB copy-on-write data in
    strict mode, per-CPU first-fit allocation with 2MB alignment only for
    exact-multiple requests, and eager zeroing at fallocate. *)

type t

include Repro_vfs.Fs_intf.S with type t := t
