(** xfs-DAX model: locality/contiguity best-fit allocation that fully
    disregards alignment (its data area does not even start 2MB-aligned:
    footnote 1 — no hugepages even on a clean file system), with a global
    redo journal committed stop-the-world at fsync. *)

type t = Basefs.t

let preset =
  {
    Basefs.label = "xfs-DAX";
    alloc_cfg =
      {
        Repro_alloc.Pool_alloc.per_cpu = false;
        policy = Best_fit;
        align_exact_2m = false;
        normalize_pow2 = false;
      };
    dir_policy = Repro_vfs.Dir_index.Dram_rbtree;
    journal = Basefs.Jbd2_redo;
    zero_on_fallocate = false;
    misaligned_start = true;
    huge_fault_alloc = false;
    goal_alloc = true;
  }

let name = preset.Basefs.label
let format dev cfg = Basefs.format preset dev cfg
let mount = Basefs.mount
let unmount = Basefs.unmount
let recovery_ns = Basefs.recovery_ns
let device = Basefs.device
let config = Basefs.config
let mkdir = Basefs.mkdir
let rmdir = Basefs.rmdir
let create = Basefs.create
let openf = Basefs.openf
let close = Basefs.close
let unlink = Basefs.unlink
let rename = Basefs.rename
let readdir = Basefs.readdir
let stat = Basefs.stat
let exists = Basefs.exists
let pwrite = Basefs.pwrite
let pwrite_sub = Basefs.pwrite_sub
let pread = Basefs.pread
let append = Basefs.append
let fsync = Basefs.fsync
let fallocate = Basefs.fallocate
let ftruncate = Basefs.ftruncate
let file_size = Basefs.file_size
let mmap_backing = Basefs.mmap_backing
let set_xattr_align = Basefs.set_xattr_align
let statfs = Basefs.statfs
let file_extents = Basefs.file_extents
let counters = Basefs.counters
