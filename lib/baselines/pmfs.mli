(** PMFS personality: the code base WineFS builds on, minus everything
    WineFS adds â a single fine-grained undo journal, a global first-fit
    allocator that ignores alignment (no hugepages even clean), and
    sequential PM scans of directory entries (Â§3.5). *)

type t = Basefs.t

include Repro_vfs.Fs_intf.S with type t := t
