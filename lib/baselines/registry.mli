(** Uniform instantiation of every file system in the study.

    A {!factory} packs a display name with a constructor returning an
    existential {!Repro_vfs.Fs_intf.handle}; experiments pick from
    {!all} / {!metadata_group} / {!data_group}, matching the two
    comparison groups of §5.1.  Each factory pins the consistency
    contract its system ships with (ext4/xfs/PMFS/SplitFS metadata-only,
    NOVA and Strata full data+metadata). *)

type factory = {
  fs_name : string;
  make : Repro_pmem.Device.t -> Repro_vfs.Types.config -> Repro_vfs.Fs_intf.handle;
}

val winefs : factory
val winefs_relaxed : factory
val ext4_dax : factory
val xfs_dax : factory
val pmfs : factory
val nova : factory
val nova_relaxed : factory
val splitfs : factory
val strata : factory

val metadata_group : factory list
(** §5.1 metadata-consistency comparison group. *)

val data_group : factory list
(** §5.1 data+metadata-consistency comparison group. *)

val all : factory list

val by_name : string -> factory
(** Case-insensitive lookup in {!all}; raises [Invalid_argument] for an
    unknown name. *)
