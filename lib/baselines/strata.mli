(** Strata model (Kwon et al., SOSP '17): writes append to a per-process
    update log (fast, sequential), and a digest step later copies the data
    into the shared area â cheap foreground writes bought with deferred
    copy traffic and digestion pauses. *)

type t

include Repro_vfs.Fs_intf.S with type t := t
