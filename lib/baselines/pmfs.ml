(** PMFS model: the code base WineFS builds on, minus everything WineFS
    adds — a single fine-grained undo journal (§6: per-CPU in WineFS), a
    global first-fit block allocator that ignores alignment (footnote 1:
    no hugepages even clean), and sequential PM scans of directory entries
    (§3.5: the slowdowns on metadata-heavy workloads like varmail). *)

type t = Basefs.t

let preset =
  {
    Basefs.label = "PMFS";
    alloc_cfg =
      {
        Repro_alloc.Pool_alloc.per_cpu = false;
        policy = First_fit;
        align_exact_2m = false;
        normalize_pow2 = false;
      };
    dir_policy = Repro_vfs.Dir_index.Pm_linear_scan 130.;
    journal = Basefs.Pmfs_undo;
    zero_on_fallocate = true;
    misaligned_start = true;
    huge_fault_alloc = false;
    goal_alloc = false;
  }

let name = preset.Basefs.label
let format dev cfg = Basefs.format preset dev cfg
let mount = Basefs.mount
let unmount = Basefs.unmount
let recovery_ns = Basefs.recovery_ns
let device = Basefs.device
let config = Basefs.config
let mkdir = Basefs.mkdir
let rmdir = Basefs.rmdir
let create = Basefs.create
let openf = Basefs.openf
let close = Basefs.close
let unlink = Basefs.unlink
let rename = Basefs.rename
let readdir = Basefs.readdir
let stat = Basefs.stat
let exists = Basefs.exists
let pwrite = Basefs.pwrite
let pwrite_sub = Basefs.pwrite_sub
let pread = Basefs.pread
let append = Basefs.append
let fsync = Basefs.fsync
let fallocate = Basefs.fallocate
let ftruncate = Basefs.ftruncate
let file_size = Basefs.file_size
let mmap_backing = Basefs.mmap_backing
let set_xattr_align = Basefs.set_xattr_align
let statfs = Basefs.statfs
let file_extents = Basefs.file_extents
let counters = Basefs.counters
