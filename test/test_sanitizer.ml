(* Durability-lint unit tests: one violating and one conforming sequence
   per rule, driven against a raw device, plus strict-mode behaviour and
   the regression that the whole ACE corpus is violation-free. *)

module Device = Repro_pmem.Device
module Site = Repro_pmem.Site
module Sanitizer = Repro_sanitizer.Sanitizer
module Sanitize = Repro_crashcheck.Sanitize
module Ace = Repro_crashcheck.Ace

let cpu = Repro_util.Cpu.make ~id:0 ()

let with_dev f =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  Sanitizer.with_device dev (fun _ -> f dev)

let store ?(site = Site.v "test" "store") dev ~off ~len =
  Device.with_site dev site (fun () ->
      Device.write dev cpu ~off ~src:(Bytes.make len 'x') ~src_off:0 ~len)

let rules ds = List.map (fun d -> d.Sanitizer.rule) ds

let check_rules msg expected ds =
  Alcotest.(check (list string)) msg
    (List.map Sanitizer.rule_name expected)
    (List.map Sanitizer.rule_name (rules ds))

(* --- R1: covered line still dirty at commit ----------------------- *)

let r1_violating () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        (* No flush: the commit record persists over a dirty line. *)
        Device.annotate dev (Txn_commit { txn = 1 }))
  in
  check_rules "one R1" [ Sanitizer.R1_missing_flush ] ds;
  let d = List.hd ds in
  (* Acceptance shape: the diagnostic names rule, site and cache line. *)
  Alcotest.(check string) "site" "test.store" (Site.to_string d.Sanitizer.site);
  Alcotest.(check int) "cache line" 0 d.Sanitizer.line;
  Alcotest.(check int) "byte offset" 0 (Sanitizer.diag_offset d);
  Alcotest.(check bool) "names the rule" true
    (String.length (Sanitizer.diag_to_string d) > 0
    && String.sub (Sanitizer.diag_to_string d) 0 2 = "R1")

let r1_conforming () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        Device.persist dev cpu ~off:0 ~len:64;
        Device.annotate dev (Txn_commit { txn = 1 }))
  in
  check_rules "clean" [] ds

(* --- R2: flushed-never-fenced, and recovery reading non-durable --- *)

let r2_violating_unfenced () =
  let (), ds =
    with_dev (fun dev ->
        store dev ~off:192 ~len:64;
        Device.flush dev cpu ~off:192 ~len:64
        (* no fence before the run ends *))
  in
  check_rules "one R2" [ Sanitizer.R2_missing_fence ] ds;
  Alcotest.(check int) "line" 3 (List.hd ds).Sanitizer.line

let r2_violating_recovery_read () =
  let (), ds =
    with_dev (fun dev ->
        store dev ~off:64 ~len:64;
        (* Dirty line read back as recovery input. *)
        Device.annotate dev Recovery_begin;
        ignore (Device.read_string dev cpu ~off:64 ~len:64);
        Device.annotate dev Recovery_end)
  in
  check_rules "one R2" [ Sanitizer.R2_missing_fence ] ds

let r2_conforming () =
  let (), ds =
    with_dev (fun dev ->
        store dev ~off:64 ~len:64;
        Device.persist dev cpu ~off:64 ~len:64;
        Device.annotate dev Recovery_begin;
        ignore (Device.read_string dev cpu ~off:64 ~len:64);
        Device.annotate dev Recovery_end)
  in
  check_rules "clean" [] ds

(* --- R3: redundant flush (warning, aggregated per site) ----------- *)

let r3_violating () =
  let site = Site.v "test" "flusher" in
  let (), ds =
    with_dev (fun dev ->
        store dev ~off:0 ~len:64;
        Device.with_site dev site (fun () ->
            Device.flush dev cpu ~off:0 ~len:64;
            Device.flush dev cpu ~off:0 ~len:64 (* already flushed *));
        Device.fence dev cpu;
        Device.with_site dev site (fun () ->
            Device.flush dev cpu ~off:0 ~len:64 (* clean *));
        Device.fence dev cpu)
  in
  check_rules "one aggregated R3" [ Sanitizer.R3_redundant_flush ] ds;
  let d = List.hd ds in
  Alcotest.(check int) "two redundant flushes folded" 2 d.Sanitizer.count;
  Alcotest.(check bool) "warning severity" true (d.Sanitizer.severity = Sanitizer.Warning)

let r3_conforming () =
  let (), ds =
    with_dev (fun dev ->
        store dev ~off:0 ~len:64;
        Device.persist dev cpu ~off:0 ~len:64;
        store dev ~off:0 ~len:64;
        Device.persist dev cpu ~off:0 ~len:64)
  in
  check_rules "clean" [] ds

(* --- R4: in-place store before the undo entry is durable ---------- *)

let r4_violating () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 7 });
        store dev ~off:128 ~len:64;
        (* Undo entry persisted only after the store clobbered the data. *)
        Device.annotate dev (Covered { txn = 7; addr = 128; len = 64 });
        Device.persist dev cpu ~off:128 ~len:64;
        Device.annotate dev (Txn_commit { txn = 7 }))
  in
  check_rules "one R4" [ Sanitizer.R4_undo_protocol ] ds;
  Alcotest.(check int) "line" 2 (List.hd ds).Sanitizer.line

let r4_conforming_order () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 7 });
        Device.annotate dev (Covered { txn = 7; addr = 128; len = 64 });
        store dev ~off:128 ~len:64;
        Device.persist dev cpu ~off:128 ~len:64;
        Device.annotate dev (Txn_commit { txn = 7 }))
  in
  check_rules "clean" [] ds

let r4_conforming_fresh () =
  (* Initialize-then-publish: stores to a [Fresh] range need no coverage
     even when the range is journaled later in the same transaction. *)
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 7 });
        Device.annotate dev (Fresh { addr = 128; len = 128 });
        store dev ~off:128 ~len:128;
        Device.persist dev cpu ~off:128 ~len:128;
        Device.annotate dev (Covered { txn = 7; addr = 160; len = 8 });
        store dev ~off:160 ~len:8;
        Device.persist dev cpu ~off:160 ~len:8;
        Device.annotate dev (Txn_commit { txn = 7 }))
  in
  check_rules "clean" [] ds

let r4_prior_txn_store_exempt () =
  (* Stores from an earlier transaction do not implicate a later one. *)
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        store dev ~off:128 ~len:64;
        Device.persist dev cpu ~off:128 ~len:64;
        Device.annotate dev (Txn_commit { txn = 1 });
        Device.annotate dev (Txn_begin { txn = 2 });
        Device.annotate dev (Covered { txn = 2; addr = 128; len = 64 });
        store dev ~off:128 ~len:64;
        Device.persist dev cpu ~off:128 ~len:64;
        Device.annotate dev (Txn_commit { txn = 2 }))
  in
  check_rules "clean" [] ds

(* --- R5: covered line flushed but unfenced at commit -------------- *)

let r5_violating () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        Device.flush dev cpu ~off:0 ~len:64;
        (* Missing sfence: commit record may beat the data to PM. *)
        Device.annotate dev (Txn_commit { txn = 1 });
        Device.fence dev cpu)
  in
  check_rules "one R5" [ Sanitizer.R5_commit_order ] ds

let r5_conforming () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        Device.flush dev cpu ~off:0 ~len:64;
        Device.fence dev cpu;
        Device.annotate dev (Txn_commit { txn = 1 }))
  in
  check_rules "clean" [] ds

(* --- non-temporal stores: durable at fence, no flush needed ------- *)

let nt_store_conforming () =
  let (), ds =
    with_dev (fun dev ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 128 });
        Device.write_string_nt dev cpu ~off:0 (String.make 128 'z');
        Device.fence dev cpu;
        Device.annotate dev (Txn_commit { txn = 1 }))
  in
  check_rules "clean" [] ds

(* --- strict mode -------------------------------------------------- *)

let strict_raises () =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  match
    Sanitizer.with_device ~strict:true dev (fun _ ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        Device.annotate dev (Txn_commit { txn = 1 }))
  with
  | _ -> Alcotest.fail "strict mode did not raise"
  | exception Sanitizer.Violation d ->
      Alcotest.(check string) "rule" "R1-missing-flush" (Sanitizer.rule_name d.Sanitizer.rule)

let strict_warning_does_not_raise () =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let (), ds =
    Sanitizer.with_device ~strict:true dev (fun _ ->
        store dev ~off:0 ~len:64;
        Device.persist dev cpu ~off:0 ~len:64;
        Device.flush dev cpu ~off:0 ~len:64 (* redundant: warning only *);
        Device.fence dev cpu)
  in
  check_rules "R3 reported, not raised" [ Sanitizer.R3_redundant_flush ] ds

let rule_subset () =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let (), ds =
    Sanitizer.with_device ~rules:[ Sanitizer.R4_undo_protocol ] dev (fun _ ->
        Device.annotate dev (Txn_begin { txn = 1 });
        Device.annotate dev (Covered { txn = 1; addr = 0; len = 64 });
        store dev ~off:0 ~len:64;
        (* R1 candidate, but only R4 is enabled. *)
        Device.annotate dev (Txn_commit { txn = 1 }))
  in
  check_rules "R1 suppressed" [] ds

let detach_stops_observing () =
  let dev = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let t = Sanitizer.attach dev in
  store dev ~off:0 ~len:64;
  Sanitizer.detach t;
  Device.flush dev cpu ~off:0 ~len:64;
  Device.flush dev cpu ~off:0 ~len:64;
  (* The redundant flush after detach is invisible. *)
  Alcotest.(check int) "no diagnostics" 0 (List.length (Sanitizer.finish t))

(* --- seeded FS-level bug: a missing flush is caught --------------- *)

let seeded_missing_flush_in_fs () =
  (* Run a real WineFS workload, then re-execute a metadata update with
     the flush deliberately dropped: store to a journal-covered inode
     range, skip the flush, commit.  The lint must name the rule and the
     seeded site. *)
  let seeded = Site.v "seed" "no-flush" in
  let r =
    Sanitize.run_custom ~name:"seeded" (fun h cpu ->
        let (Repro_vfs.Fs_intf.Handle ((module F), fs)) = h in
        F.mkdir fs cpu "/d";
        let dev = F.device fs in
        Device.with_site dev seeded (fun () ->
            Device.annotate dev (Txn_begin { txn = 999_999 });
            Device.annotate dev (Covered { txn = 999_999; addr = 1024; len = 64 });
            Device.write dev cpu ~off:1024 ~src:(Bytes.make 64 '\000') ~src_off:0 ~len:64;
            Device.annotate dev (Txn_commit { txn = 999_999 })))
  in
  let d =
    match
      List.find_opt (fun d -> d.Sanitizer.rule = Sanitizer.R1_missing_flush) r.Sanitize.diags
    with
    | Some d -> d
    | None -> Alcotest.fail "seeded missing flush not detected"
  in
  Alcotest.(check string) "site label" "seed.no-flush" (Site.to_string d.Sanitizer.site);
  Alcotest.(check int) "cache line offset" 1024 (Sanitizer.diag_offset d)

(* --- regression: the real FS corpus is violation-free ------------- *)

let ace_corpus_clean () =
  (* Strict mode: the first violating access raises, so completion IS the
     assertion; count errors anyway for a readable failure. *)
  let reports = Sanitize.run_ace ~strict:true Ace.all in
  Alcotest.(check int) "no errors over Ace.all" 0 (Sanitize.total_errors reports)

let ace_relaxed_clean () =
  let reports = Sanitize.run_ace ~strict:true ~mode:Repro_vfs.Types.Relaxed Ace.seq1 in
  Alcotest.(check int) "no errors (relaxed)" 0 (Sanitize.total_errors reports)

let suite =
  [
    Alcotest.test_case "R1 violating" `Quick r1_violating;
    Alcotest.test_case "R1 conforming" `Quick r1_conforming;
    Alcotest.test_case "R2 flushed-unfenced" `Quick r2_violating_unfenced;
    Alcotest.test_case "R2 recovery-read" `Quick r2_violating_recovery_read;
    Alcotest.test_case "R2 conforming" `Quick r2_conforming;
    Alcotest.test_case "R3 violating" `Quick r3_violating;
    Alcotest.test_case "R3 conforming" `Quick r3_conforming;
    Alcotest.test_case "R4 violating" `Quick r4_violating;
    Alcotest.test_case "R4 conforming order" `Quick r4_conforming_order;
    Alcotest.test_case "R4 fresh-range exemption" `Quick r4_conforming_fresh;
    Alcotest.test_case "R4 prior-txn store exempt" `Quick r4_prior_txn_store_exempt;
    Alcotest.test_case "R5 violating" `Quick r5_violating;
    Alcotest.test_case "R5 conforming" `Quick r5_conforming;
    Alcotest.test_case "nt store conforming" `Quick nt_store_conforming;
    Alcotest.test_case "strict raises on error" `Quick strict_raises;
    Alcotest.test_case "strict ignores warnings" `Quick strict_warning_does_not_raise;
    Alcotest.test_case "rule subset" `Quick rule_subset;
    Alcotest.test_case "detach stops observing" `Quick detach_stops_observing;
    Alcotest.test_case "seeded FS missing flush" `Quick seeded_missing_flush_in_fs;
    Alcotest.test_case "ACE corpus strict-clean" `Slow ace_corpus_clean;
    Alcotest.test_case "ACE relaxed strict-clean" `Quick ace_relaxed_clean;
  ]
