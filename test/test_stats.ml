(* The metrics/tracing subsystem: registry round-trips, span nesting and
   self-time attribution, JSON snapshot shape, and the hand-rolled JSON
   parser itself. *)

open Repro_util
module Stats = Repro_stats.Stats
module Json = Repro_stats.Json

let test_counter_gauge_roundtrip () =
  let r = Stats.Registry.create () in
  let c = Stats.Counter.v ~registry:r "journal.commits" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Stats.Counter.get c);
  Alcotest.(check int) "same (name, labels) shares the instrument" 5
    (Stats.Counter.get (Stats.Counter.v ~registry:r "journal.commits"));
  let g = Stats.Gauge.v ~registry:r "alloc.free_bytes" in
  Stats.Gauge.set g 100;
  Stats.Gauge.add g (-30);
  Alcotest.(check int) "gauge moves both ways" 70 (Stats.Gauge.get g);
  (* Labels distinguish instruments; order of the pairs must not. *)
  let a = Stats.Counter.v ~registry:r ~labels:[ ("site", "x"); ("op", "y") ] "pm.fences" in
  let b = Stats.Counter.v ~registry:r ~labels:[ ("op", "y"); ("site", "x") ] "pm.fences" in
  let other = Stats.Counter.v ~registry:r ~labels:[ ("site", "z") ] "pm.fences" in
  Stats.Counter.incr a;
  Alcotest.(check int) "label order canonicalised" 1 (Stats.Counter.get b);
  Alcotest.(check int) "different labels, different instrument" 0 (Stats.Counter.get other)

let test_histogram_instrument () =
  let r = Stats.Registry.create () in
  let h = Stats.Hist.v ~registry:r "op.latency_ns" in
  for i = 1 to 100 do
    Stats.Hist.observe h i
  done;
  Alcotest.(check int) "count" 100 (Stats.Hist.count h);
  Alcotest.(check bool) "p50 in range" true
    (let p = Stats.Hist.percentile h 50. in
     p >= 40 && p <= 70);
  let empty = Stats.Hist.v ~registry:r "op.latency_ns.empty" in
  Alcotest.(check int) "empty percentile is 0" 0 (Stats.Hist.percentile empty 99.)

let test_span_nesting_self_time () =
  let r = Stats.Registry.create () in
  let cpu = Cpu.make ~id:0 () in
  Stats.span ~registry:r ~op:"outer" cpu (fun () ->
      Simclock.advance cpu.clock 100;
      Stats.span ~registry:r ~op:"inner" cpu (fun () -> Simclock.advance cpu.clock 40);
      Simclock.advance cpu.clock 10);
  let get name op = Stats.Counter.get (Stats.Counter.v ~registry:r ~labels:[ ("op", op) ] name) in
  Alcotest.(check int) "outer total" 150 (get "op.total_ns" "outer");
  Alcotest.(check int) "inner total" 40 (get "op.total_ns" "inner");
  Alcotest.(check int) "outer self excludes child" 110 (get "op.self_ns" "outer");
  Alcotest.(check int) "inner self" 40 (get "op.self_ns" "inner");
  Alcotest.(check int) "counts" 1 (get "op.count" "outer");
  Alcotest.(check int) "makespan tracks the clock" 150 (Stats.Registry.makespan_ns r)

let test_span_exception_closes () =
  let r = Stats.Registry.create () in
  let cpu = Cpu.make ~id:1 () in
  (try
     Stats.span ~registry:r ~op:"boom" cpu (fun () ->
         Simclock.advance cpu.clock 7;
         failwith "boom")
   with Failure _ -> ());
  let c = Stats.Counter.v ~registry:r ~labels:[ ("op", "boom") ] "op.count" in
  Alcotest.(check int) "span recorded despite exception" 1 (Stats.Counter.get c);
  (* A following span must not inherit a dangling frame. *)
  Stats.span ~registry:r ~op:"after" cpu (fun () -> Simclock.advance cpu.clock 5);
  let self = Stats.Counter.v ~registry:r ~labels:[ ("op", "after") ] "op.self_ns" in
  Alcotest.(check int) "stack popped" 5 (Stats.Counter.get self)

let test_global_gating () =
  Stats.reset ();
  Stats.set_enabled false;
  let cpu = Cpu.make ~id:0 () in
  Stats.counter_add "gated.counter" 1;
  Stats.span ~op:"gated" cpu (fun () -> Simclock.advance cpu.clock 3);
  (* counter_add on the global registry is unconditional (callers gate on
     [enabled]); spans short-circuit themselves. *)
  let s = Stats.snapshot () in
  Alcotest.(check bool) "no span instruments while disabled" true
    (not (List.exists (fun (n, _, _) -> n = "op.count") s.Stats.s_counters));
  Stats.set_enabled true;
  Stats.span ~op:"gated" cpu (fun () -> Simclock.advance cpu.clock 3);
  let s = Stats.snapshot () in
  Alcotest.(check bool) "span recorded once enabled" true
    (List.exists (fun (n, _, _) -> n = "op.count") s.Stats.s_counters);
  Stats.set_enabled false;
  Stats.reset ()

let test_json_snapshot_shape () =
  let r = Stats.Registry.create () in
  let cpu = Cpu.make ~id:0 () in
  Stats.counter_add ~registry:r ~labels:[ ("site", "journal.commit") ] "pm.fences" 3;
  Stats.gauge_set ~registry:r "alloc.free_bytes" 4096;
  Stats.span ~registry:r ~op:"create" cpu (fun () -> Simclock.advance cpu.clock 11);
  let doc = Stats.to_json ~registry:r () in
  (* The document must survive its own emitter + parser round-trip. *)
  let reparsed =
    match Json.of_string (Json.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  in
  Alcotest.(check bool) "round-trip preserves structure" true (reparsed = doc);
  let section name =
    match Json.member name reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.failf "missing %s" name
  in
  let names l =
    List.filter_map
      (fun o -> match Json.member "name" o with Some (Json.String s) -> Some s | _ -> None)
      l
  in
  Alcotest.(check bool) "counters include pm.fences" true
    (List.mem "pm.fences" (names (section "counters")));
  Alcotest.(check bool) "gauges include alloc.free_bytes" true
    (List.mem "alloc.free_bytes" (names (section "gauges")));
  let hists = section "histograms" in
  Alcotest.(check bool) "histograms include op.latency_ns" true
    (List.mem "op.latency_ns" (names hists));
  List.iter
    (fun h ->
      List.iter
        (fun f ->
          match Option.bind (Json.member f h) Json.to_int with
          | Some _ -> ()
          | None -> Alcotest.failf "histogram lacks %s" f)
        [ "count"; "min"; "max"; "p50"; "p90"; "p99"; "p999" ])
    hists;
  match Option.bind (Json.member "makespan_ns" reparsed) Json.to_int with
  | Some m -> Alcotest.(check int) "makespan serialized" 11 m
  | None -> Alcotest.fail "missing makespan_ns"

let test_json_parser () =
  let ok s = match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  Alcotest.(check bool) "atoms" true
    (ok "[null, true, false, 1, -2, 3.5, \"x\"]"
    = Json.List
        [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 1; Json.Int (-2);
          Json.Float 3.5; Json.String "x" ]);
  Alcotest.(check bool) "escapes" true
    (ok {|"a\n\t\"\\A"|} = Json.String "a\n\t\"\\A");
  Alcotest.(check bool) "nested object" true
    (ok {|{"a": {"b": [1, 2]}}|}
    = Json.Obj [ ("a", Json.Obj [ ("b", Json.List [ Json.Int 1; Json.Int 2 ]) ]) ]);
  Alcotest.(check bool) "exponent parses as float" true
    (match ok "[1e3]" with Json.List [ Json.Float f ] -> f = 1000. | _ -> false);
  let bad s = match Json.of_string s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "trailing garbage rejected" true (bad "{} x");
  Alcotest.(check bool) "unterminated string rejected" true (bad "\"abc");
  Alcotest.(check bool) "bare word rejected" true (bad "nope");
  Alcotest.(check bool) "trailing comma rejected" true (bad "[1,]")

let test_registry_reset () =
  let r = Stats.Registry.create () in
  Stats.counter_add ~registry:r "x" 1;
  let cpu = Cpu.make ~id:0 () in
  Stats.span ~registry:r ~op:"y" cpu (fun () -> Simclock.advance cpu.clock 9);
  Stats.Registry.reset r;
  let s = Stats.snapshot ~registry:r () in
  Alcotest.(check int) "no counters" 0 (List.length s.Stats.s_counters);
  Alcotest.(check int) "no histograms" 0 (List.length s.Stats.s_hists);
  Alcotest.(check int) "makespan zeroed" 0 (Stats.Registry.makespan_ns r)

let suite =
  [
    Alcotest.test_case "counter/gauge round-trip" `Quick test_counter_gauge_roundtrip;
    Alcotest.test_case "histogram instrument" `Quick test_histogram_instrument;
    Alcotest.test_case "span nesting self-time" `Quick test_span_nesting_self_time;
    Alcotest.test_case "span closes on exception" `Quick test_span_exception_closes;
    Alcotest.test_case "global enabled gating" `Quick test_global_gating;
    Alcotest.test_case "JSON snapshot shape" `Quick test_json_snapshot_shape;
    Alcotest.test_case "JSON parser" `Quick test_json_parser;
    Alcotest.test_case "registry reset" `Quick test_registry_reset;
  ]
