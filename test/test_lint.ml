(* srccheck static analyzer: per-rule fixtures asserting exact
   diagnostics, the allowlist machinery, the clean-tree regression over
   the real sources, and the planted temporally-separated ABBA deadlock
   that dynamic race exploration misses but the static lock-order graph
   (and the runtime lock-order recorder) catch. *)

open Repro_util
module Device = Repro_pmem.Device
module Sched = Repro_sched.Sched
module Race = Repro_race.Race
module Lint = Repro_lint.Lint
module Source = Repro_lint.Source
module Diag = Repro_lint.Diag
module Probe = Repro_lint.Probe
module Flow_scenarios = Repro_lint.Flow_scenarios

let diag_triple d = (d.Diag.line, d.Diag.col, d.Diag.rule)

let diags_of_rule rule ds = List.filter (fun d -> d.Diag.rule = rule) ds

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* persist-site *)

let test_persist_site_flags_raw_store () =
  let src = "let f dev cpu b =\n  Device.write_nt dev cpu ~off:0 ~src:b ~src_off:0 ~len:8\n" in
  match diags_of_rule "persist-site" (Lint.analyze_string ~path:"lib/core/fixture.ml" src) with
  | [ d ] ->
      Alcotest.(check (triple int int string))
        "exact position" (2, 2, "persist-site") (diag_triple d);
      Alcotest.(check bool) "names the entry point" true
        (contains_sub ~sub:"Device.write_nt" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one persist-site diag, got %d" (List.length ds)

let test_persist_site_covered_by_with_site () =
  let src =
    "let site = Site.v \"core\" \"fixture\"\n\
     let f dev cpu b =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write_nt dev cpu ~off:0 ~src:b ~src_off:0 ~len:8;\n\
    \      Device.fence dev cpu)\n"
  in
  Alcotest.(check int)
    "covered stores are silent" 0
    (List.length (diags_of_rule "persist-site" (Lint.analyze_string ~path:"lib/core/fixture.ml" src)))

let test_persist_site_pmem_exempt () =
  let src = "let f dev cpu b =\n  Device.write_nt dev cpu ~off:0 ~src:b ~src_off:0 ~len:8\n" in
  Alcotest.(check int)
    "lib/pmem itself is out of scope" 0
    (List.length (diags_of_rule "persist-site" (Lint.analyze_string ~path:"lib/pmem/fixture.ml" src)))

(* ------------------------------------------------------------------ *)
(* ownership *)

let test_ownership_flags_stray_journal_use () =
  let src =
    "module J = Repro_journal.Undo_journal\n\nlet f j cpu = J.commit j cpu (J.begin_txn j cpu ~reserve:1)\n"
  in
  let ds = diags_of_rule "ownership" (Lint.analyze_string ~path:"lib/workloads/fixture.ml" src) in
  Alcotest.(check bool) "alias-resolved references are flagged" true (List.length ds >= 1);
  List.iter
    (fun d ->
      Alcotest.(check bool) "names the target" true (contains_sub ~sub:"Undo_journal" d.Diag.msg))
    ds

let test_ownership_allows_owning_layer () =
  let src = "let f j cpu txn = Repro_journal.Undo_journal.commit j cpu txn\n" in
  Alcotest.(check int)
    "txn layer may use the journal" 0
    (List.length (diags_of_rule "ownership" (Lint.analyze_string ~path:"lib/core/txn.ml" src)))

(* ------------------------------------------------------------------ *)
(* error-discipline *)

let test_error_discipline_catch_all () =
  let src = "let f g = try g () with _ -> ()\n" in
  match diags_of_rule "error-discipline" (Lint.analyze_string ~path:"lib/core/fixture.ml" src) with
  | [ d ] ->
      Alcotest.(check (triple int int string))
        "anchored at the wildcard pattern" (1, 24, "error-discipline") (diag_triple d);
      Alcotest.(check bool) "says catch-all" true (contains_sub ~sub:"catch-all" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one diag, got %d" (List.length ds)

let test_error_discipline_undiscriminated_errno () =
  let src = "let f g = try g () with Types.Error _ -> ()\n" in
  match diags_of_rule "error-discipline" (Lint.analyze_string ~path:"lib/core/fixture.ml" src) with
  | [ d ] ->
      Alcotest.(check bool) "flags the blanket errno" true
        (contains_sub ~sub:"discriminate" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one diag, got %d" (List.length ds)

let test_error_discipline_narrow_is_clean () =
  let src = "let f g = try g () with Types.Error ((ENOENT | ENOTDIR), _) -> ()\n" in
  Alcotest.(check int)
    "discriminated handler passes" 0
    (List.length
       (diags_of_rule "error-discipline" (Lint.analyze_string ~path:"lib/core/fixture.ml" src)))

let test_error_discipline_reraise_is_clean () =
  let src = "let f g = try g () with e -> cleanup (); raise e\n" in
  Alcotest.(check int)
    "re-raising handlers pass" 0
    (List.length
       (diags_of_rule "error-discipline" (Lint.analyze_string ~path:"lib/core/fixture.ml" src)))

let test_error_discipline_ignored_invariants () =
  let src = "let f t = ignore (check_invariants t)\n" in
  match diags_of_rule "error-discipline" (Lint.analyze_string ~path:"lib/core/fixture.ml" src) with
  | [ d ] ->
      Alcotest.(check bool) "flags dropped invariant result" true
        (contains_sub ~sub:"check_invariants" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one diag, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* lock-order *)

let abba_src =
  "let h b = Sched.with_lock b (fun () -> ())\n\
   let f a b = Sched.with_lock a (fun () -> h b)\n\
   let g a b = Sched.with_lock b (fun () -> Sched.with_lock a (fun () -> ()))\n"

let test_lock_order_cycle_static () =
  (* f acquires b through the helper h while holding a (interprocedural
     summary); g nests the opposite way: an ABBA cycle even though no
     single function shows both orders. *)
  match diags_of_rule "lock-order" (Lint.analyze_string ~path:"lib/core/abba_fixture.ml" abba_src) with
  | [ d ] ->
      Alcotest.(check bool) "reports a cycle" true (contains_sub ~sub:"cycle" d.Diag.msg);
      Alcotest.(check bool) "names both lock classes" true
        (contains_sub ~sub:"abba_fixture:a" d.Diag.msg
        && contains_sub ~sub:"abba_fixture:b" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one lock-order diag, got %d" (List.length ds)

let test_lock_order_nested_one_way_is_clean () =
  let src =
    "let f a b = Sched.with_lock a (fun () -> Sched.with_lock b (fun () -> ()))\n\
     let g a b = Sched.with_lock a (fun () -> Sched.with_lock b (fun () -> ()))\n"
  in
  Alcotest.(check int)
    "consistent order passes" 0
    (List.length (diags_of_rule "lock-order" (Lint.analyze_string ~path:"lib/core/fixture.ml" src)))

let test_lock_order_self_nest () =
  let src = "let f a = Sched.with_lock a (fun () -> Sched.with_lock a (fun () -> ()))\n" in
  match diags_of_rule "lock-order" (Lint.analyze_string ~path:"lib/core/fixture.ml" src) with
  | [ d ] -> Alcotest.(check bool) "self-deadlock" true (contains_sub ~sub:"already held" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one lock-order diag, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* persist-order (flowcheck dataflow) *)

let flow_fixture src = diags_of_rule "persist-order" (Lint.analyze_string ~path:"lib/core/fixture.ml" src)

let test_persist_order_dirty_at_commit () =
  let src =
    "let f dev cpu src =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);\n\
    \  Device.annotate dev (Txn_commit { txn = 1 })\n"
  in
  match flow_fixture src with
  | [ d ] ->
      Alcotest.(check bool) "reaches the commit anchor" true (contains_sub ~sub:"may reach" d.Diag.msg);
      Alcotest.(check bool) "state is still dirty" true (contains_sub ~sub:"still dirty" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one persist-order diag, got %d" (List.length ds)

let test_persist_order_flush_without_fence () =
  let src =
    "let f dev cpu src =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);\n\
    \  Device.flush dev cpu ~off:0 ~len:64;\n\
    \  Device.annotate dev (Txn_commit { txn = 1 })\n"
  in
  match flow_fixture src with
  | [ d ] -> Alcotest.(check bool) "flushed but unfenced" true (contains_sub ~sub:"fence" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one persist-order diag, got %d" (List.length ds)

let test_persist_order_branch_only_bug () =
  (* The fence is skipped on one branch only: every-path analysis must
     flag what a run down the healthy branch cannot. *)
  let src =
    "let f dev cpu src degraded =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);\n\
    \  Device.flush dev cpu ~off:0 ~len:64;\n\
    \  if degraded then () else Device.fence dev cpu;\n\
    \  Device.annotate dev (Txn_commit { txn = 1 })\n"
  in
  Alcotest.(check bool) "branch-only elision flagged" true (flow_fixture src <> [])

let test_persist_order_try_handler_escape () =
  let src =
    "let f dev cpu src risky =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);\n\
    \  Device.flush dev cpu ~off:0 ~len:64;\n\
    \  try risky (); Device.fence dev cpu with _ -> ()\n"
  in
  Alcotest.(check bool) "fence stranded after a raising call" true (flow_fixture src <> [])

let test_persist_order_clean_merge () =
  let src =
    "let f dev cpu src small =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write dev cpu ~off:0 ~src ~src_off:0 ~len:64);\n\
    \  (if small then Device.persist dev cpu ~off:0 ~len:64\n\
    \   else begin\n\
    \     Device.flush dev cpu ~off:0 ~len:64;\n\
    \     Device.fence dev cpu\n\
    \   end);\n\
    \  Device.annotate dev (Txn_commit { txn = 1 })\n"
  in
  Alcotest.(check int) "uniformly persisted merge is silent" 0 (List.length (flow_fixture src))

let test_persist_order_deferred_nt_batch () =
  let src =
    "let f dev cpu src =\n\
    \  Device.with_site dev site (fun () ->\n\
    \      Device.write_nt dev cpu ~off:0 ~src ~src_off:0 ~len:64;\n\
    \      Device.write_nt dev cpu ~off:64 ~src ~src_off:0 ~len:64);\n\
    \  Device.fence dev cpu\n"
  in
  Alcotest.(check int) "batched NT stores drained by one fence" 0 (List.length (flow_fixture src))

(* ------------------------------------------------------------------ *)
(* determinism *)

let det_fixture ?(path = "lib/core/fixture.ml") src =
  diags_of_rule "determinism" (Lint.analyze_string ~path src)

let test_determinism_wall_clock () =
  match det_fixture "let f () = Unix.gettimeofday ()\n" with
  | [ d ] ->
      Alcotest.(check bool) "names the call" true (contains_sub ~sub:"Unix.gettimeofday" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one determinism diag, got %d" (List.length ds)

let test_determinism_hash_order_flagged () =
  match det_fixture "let f h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []\n" with
  | [ d ] -> Alcotest.(check bool) "hash order" true (contains_sub ~sub:"hash order" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one determinism diag, got %d" (List.length ds)

let test_determinism_sorted_traversal_exempt () =
  let src = "let f cmp h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort cmp\n" in
  Alcotest.(check int) "traversal feeding a sort is exempt" 0 (List.length (det_fixture src))

let test_determinism_wildcard_callback_exempt () =
  let src = "let f h = Hashtbl.iter (fun _ v -> close v) h\n" in
  Alcotest.(check int) "key-insensitive callback is exempt" 0 (List.length (det_fixture src))

let test_determinism_poly_eq_hot_path_only () =
  let src = "let f k = k = Directory\n" in
  (match det_fixture src with
  | [ d ] ->
      Alcotest.(check bool) "names the constructor" true (contains_sub ~sub:"Directory" d.Diag.msg)
  | ds -> Alcotest.failf "expected exactly one determinism diag, got %d" (List.length ds));
  Alcotest.(check int) "outside the hot-path scope poly = passes" 0
    (List.length (det_fixture ~path:"lib/workloads/fixture.ml" src))

(* ------------------------------------------------------------------ *)
(* engine: deterministic output *)

let test_diag_normalize_sorts_and_dedupes () =
  let d file line col rule = Diag.at ~file ~line ~col ~rule ~hint:"h" "m" in
  let shuffled =
    [
      d "b.ml" 3 0 "r1";
      d "a.ml" 9 2 "r2";
      d "a.ml" 9 2 "r2" (* exact duplicate *);
      d "a.ml" 9 2 "r1";
      d "a.ml" 1 5 "r9";
    ]
  in
  let n = Diag.normalize shuffled in
  Alcotest.(check int) "duplicates dropped" 4 (List.length n);
  Alcotest.(check (list (triple int int string)))
    "sorted by (file, line, col, rule)"
    [ (1, 5, "r9"); (9, 2, "r1"); (9, 2, "r2"); (3, 0, "r1") ]
    (List.map diag_triple n);
  Alcotest.(check bool) "idempotent" true (Diag.normalize n = n)

(* ------------------------------------------------------------------ *)
(* engine: allowlist *)

let test_allowlist_suppresses_and_counts () =
  let src = "let f dev cpu b =\n  Device.write_nt dev cpu ~off:0 ~src:b ~src_off:0 ~len:8\n" in
  let files, parse =
    match Source.parse_string ~path:"lib/core/fixture.ml" src with
    | Ok f -> ([ f ], [])
    | Error d -> ([], [ d ])
  in
  let allow =
    [ { Lint.a_rule = "persist-site"; a_file = "lib/core/fixture.ml"; a_reason = "fixture" } ]
  in
  let r = Lint.run ~allowlist:allow files ~parse in
  Alcotest.(check int) "diag suppressed" 0 (List.length r.Lint.diags);
  Alcotest.(check int) "suppression counted" 1 r.Lint.suppressed;
  Alcotest.(check int) "clean exit" 0 (Lint.exit_code r)

let test_parse_error_exit_code () =
  let r =
    match Source.parse_string ~path:"lib/core/fixture.ml" "let f = (\n" with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error d -> Lint.run [] ~parse:[ d ]
  in
  Alcotest.(check int) "parse errors force exit 2" 2 (Lint.exit_code r)

(* ------------------------------------------------------------------ *)
(* clean tree + probe containment over the real sources *)

let real_roots () =
  (* dune copies the source tree next to the test binary's parent dir;
     when run from the repo root the plain paths work too. *)
  if Sys.file_exists "../lib" then [ "../lib"; "../bin" ]
  else if Sys.file_exists "lib" then [ "lib"; "bin" ]
  else Alcotest.skip ()

let test_clean_tree () =
  let r = Lint.analyze (real_roots ()) in
  Alcotest.(check int) "no parse errors" 0 r.Lint.parse_errors;
  Alcotest.(check bool) "scanned the whole tree" true (r.Lint.files_scanned > 100);
  (match r.Lint.diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "repo sources must stay srccheck-clean, first: %s" (Diag.to_string d));
  Alcotest.(check int) "exit code 0" 0 (Lint.exit_code r)

let test_probe_containment () =
  let files, parse = Source.load_roots (real_roots ()) in
  Alcotest.(check int) "no parse errors" 0 (List.length parse);
  let p = Probe.run files in
  Alcotest.(check bool) "probe exercised the scheduler" true (p.Probe.acquisitions > 0);
  (match p.Probe.runtime_cycle with
  | None -> ()
  | Some c -> Alcotest.failf "observed lock-order cycle: %s" (String.concat " -> " c));
  match p.Probe.diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "static graph must contain observed edges, first: %s" (Diag.to_string d)

let test_flow_probe_containment () =
  let r = Probe.run_flow () in
  Alcotest.(check int) "all paired scenarios replayed" (List.length Flow_scenarios.all)
    (List.length r.Probe.flow_scenarios);
  match r.Probe.flow_diags with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "flow containment (static ⊇ dynamic) must hold, first: %s" (Diag.to_string d)

(* The planted branch-only persist bug: the executed run takes the
   healthy branch, so the sanitizer reports nothing — only the every-path
   dataflow reaches the degraded branch's missing fence. *)
let test_hidden_error_path_dynamic_miss_static_catch () =
  let sc = Flow_scenarios.hidden_error_path in
  Alcotest.(check int) "sanitizer sees a clean execution" 0
    (List.length (Flow_scenarios.dynamic_errors sc));
  match Flow_scenarios.static_diags sc with
  | [] -> Alcotest.fail "flowcheck missed the planted branch-only bug"
  | ds ->
      List.iter
        (fun (d : Diag.t) ->
          Alcotest.(check string) "carried by the persist-order rule" "persist-order" d.Diag.rule)
        ds

(* ------------------------------------------------------------------ *)
(* the planted ABBA the dynamic detector cannot see *)

let m1 = Sched.create_mutex ~name:"fixture:m1" ()
let m2 = Sched.create_mutex ~name:"fixture:m2" ()

(* Temporally-separated ABBA: thread 1 polls a DRAM flag and only starts
   its (reversed) nesting after thread 0 has released both locks, so no
   schedule whatsoever can block — yet the acquired-before relation is
   cyclic and the deadlock is one unlucky preemption away in a world with
   real parallelism. *)
let planted_abba =
  {
    Race.sc_name = "planted-abba";
    sc_threads = 2;
    sc_prepare =
      (fun () ->
        let dev = Device.create ~cost:Device.Cost.free ~size:Units.base_page () in
        let first_done = ref false in
        let body (cpu : Cpu.t) =
          if cpu.id = 0 then begin
            Sched.with_lock m1 (fun () ->
                Sched.yield ();
                Sched.with_lock m2 (fun () -> ()));
            first_done := true
          end
          else begin
            while not !first_done do
              (* Charge simulated time so the earliest-clock policy does
                 not starve thread 0 while we poll. *)
              Simclock.advance cpu.clock 1_000;
              Sched.yield ()
            done;
            Sched.with_lock m2 (fun () ->
                Sched.yield ();
                Sched.with_lock m1 (fun () -> ()))
          end
        in
        (dev, body));
  }

let test_planted_abba_dynamic_miss_static_catch () =
  Sched.Lock_order.reset ();
  (* The racecheck gate's default budget: 25 seeded schedules from base
     seed 42 (plus the earliest-clock baseline).  No data race exists —
     the hazard is lock ordering, which schedule exploration cannot
     surface because the two nestings never overlap in time. *)
  let o = Race.explore ~schedules:25 ~seed:42 planted_abba in
  Alcotest.(check int) "dynamic detector finds nothing" 0 (List.length o.Race.o_races);
  (match Sched.Lock_order.cycle () with
  | Some cyc ->
      Alcotest.(check bool) "recorder sees the ABBA cycle" true
        (List.mem "fixture:m1" cyc && List.mem "fixture:m2" cyc)
  | None -> Alcotest.fail "lock-order recorder missed the planted ABBA cycle");
  (* And the static rule catches the same shape from source alone. *)
  (match diags_of_rule "lock-order" (Lint.analyze_string ~path:"lib/core/planted.ml" abba_src) with
  | [ _ ] -> ()
  | ds -> Alcotest.failf "static rule: expected one cycle diag, got %d" (List.length ds));
  Sched.Lock_order.reset ()

let suite =
  [
    Alcotest.test_case "persist-site: raw store flagged" `Quick test_persist_site_flags_raw_store;
    Alcotest.test_case "persist-site: with_site covers" `Quick test_persist_site_covered_by_with_site;
    Alcotest.test_case "persist-site: lib/pmem exempt" `Quick test_persist_site_pmem_exempt;
    Alcotest.test_case "ownership: stray journal use flagged" `Quick
      test_ownership_flags_stray_journal_use;
    Alcotest.test_case "ownership: owning layer allowed" `Quick test_ownership_allows_owning_layer;
    Alcotest.test_case "error-discipline: catch-all" `Quick test_error_discipline_catch_all;
    Alcotest.test_case "error-discipline: blanket errno" `Quick
      test_error_discipline_undiscriminated_errno;
    Alcotest.test_case "error-discipline: narrow handler clean" `Quick
      test_error_discipline_narrow_is_clean;
    Alcotest.test_case "error-discipline: re-raise clean" `Quick
      test_error_discipline_reraise_is_clean;
    Alcotest.test_case "error-discipline: ignored invariants" `Quick
      test_error_discipline_ignored_invariants;
    Alcotest.test_case "lock-order: interprocedural ABBA" `Quick test_lock_order_cycle_static;
    Alcotest.test_case "lock-order: consistent order clean" `Quick
      test_lock_order_nested_one_way_is_clean;
    Alcotest.test_case "lock-order: self nest" `Quick test_lock_order_self_nest;
    Alcotest.test_case "persist-order: dirty at commit" `Quick test_persist_order_dirty_at_commit;
    Alcotest.test_case "persist-order: flush without fence" `Quick
      test_persist_order_flush_without_fence;
    Alcotest.test_case "persist-order: branch-only bug" `Quick test_persist_order_branch_only_bug;
    Alcotest.test_case "persist-order: try handler escape" `Quick
      test_persist_order_try_handler_escape;
    Alcotest.test_case "persist-order: clean merge" `Quick test_persist_order_clean_merge;
    Alcotest.test_case "persist-order: deferred NT batch" `Quick
      test_persist_order_deferred_nt_batch;
    Alcotest.test_case "determinism: wall clock" `Quick test_determinism_wall_clock;
    Alcotest.test_case "determinism: hash-order traversal" `Quick
      test_determinism_hash_order_flagged;
    Alcotest.test_case "determinism: sorted traversal exempt" `Quick
      test_determinism_sorted_traversal_exempt;
    Alcotest.test_case "determinism: wildcard callback exempt" `Quick
      test_determinism_wildcard_callback_exempt;
    Alcotest.test_case "determinism: poly = scoped to hot paths" `Quick
      test_determinism_poly_eq_hot_path_only;
    Alcotest.test_case "engine: normalize sorts and dedupes" `Quick
      test_diag_normalize_sorts_and_dedupes;
    Alcotest.test_case "engine: allowlist suppresses" `Quick test_allowlist_suppresses_and_counts;
    Alcotest.test_case "engine: parse error exit code" `Quick test_parse_error_exit_code;
    Alcotest.test_case "clean tree" `Quick test_clean_tree;
    Alcotest.test_case "probe containment" `Quick test_probe_containment;
    Alcotest.test_case "flow probe containment" `Quick test_flow_probe_containment;
    Alcotest.test_case "hidden error path: dynamic miss, static catch" `Quick
      test_hidden_error_path_dynamic_miss_static_catch;
    Alcotest.test_case "planted ABBA: dynamic miss, static catch" `Quick
      test_planted_abba_dynamic_miss_static_catch;
  ]
