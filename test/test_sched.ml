(* Cooperative scheduler: completion, determinism, lock exclusion and
   contention accounting. *)

open Repro_util
module Sched = Repro_sched.Sched

let test_all_run () =
  let count = ref 0 in
  let stats = Sched.run ~threads:8 (fun _cpu -> incr count) in
  Alcotest.(check int) "all threads ran" 8 !count;
  Alcotest.(check bool) "makespan sane" true (stats.makespan_ns >= 0)

let test_clock_isolation () =
  let finish = Array.make 4 0 in
  let _ =
    Sched.run ~threads:4 (fun cpu ->
        Simclock.advance cpu.Cpu.clock ((cpu.id + 1) * 1000);
        finish.(cpu.id) <- Cpu.now cpu)
  in
  Alcotest.(check (array int)) "per-thread clocks" [| 1000; 2000; 3000; 4000 |] finish

let test_makespan_is_max () =
  let stats =
    Sched.run ~threads:3 (fun cpu -> Simclock.advance cpu.Cpu.clock ((cpu.id + 1) * 500))
  in
  Alcotest.(check int) "makespan = slowest" 1500 stats.makespan_ns;
  Alcotest.(check int) "busy = sum" 3000 stats.total_busy_ns

let test_mutex_exclusion () =
  let m = Sched.create_mutex () in
  let inside = ref false in
  let violations = ref 0 in
  let _ =
    Sched.run ~threads:8 (fun cpu ->
        for _ = 1 to 20 do
          Sched.lock m;
          if !inside then incr violations;
          inside := true;
          Simclock.advance cpu.Cpu.clock 100;
          (* Yield while holding: others must still be excluded. *)
          Sched.yield ();
          inside := false;
          Sched.unlock m
        done)
  in
  Alcotest.(check int) "mutual exclusion" 0 !violations

let test_contention_serializes () =
  let m = Sched.create_mutex () in
  let work cpu =
    Sched.with_lock m (fun () -> Simclock.advance cpu.Cpu.clock 10_000)
  in
  let s1 = Sched.run ~threads:1 work in
  let s8 = Sched.run ~threads:8 work in
  Alcotest.(check bool) "8 threads on one lock serialise" true
    (s8.makespan_ns >= 8 * s1.makespan_ns);
  Alcotest.(check bool) "waiting recorded" true (s8.lock_wait_ns > 0)

let test_independent_locks_parallel () =
  let work cpu =
    let m = Sched.create_mutex () in
    Sched.with_lock m (fun () -> Simclock.advance cpu.Cpu.clock 10_000)
  in
  let s8 = Sched.run ~threads:8 work in
  Alcotest.(check bool) "independent locks do not serialise" true
    (s8.makespan_ns < 2 * 10_100)

let test_determinism () =
  let run () =
    let m = Sched.create_mutex () in
    let order = Buffer.create 64 in
    let stats =
      Sched.run ~threads:4 (fun cpu ->
          for _ = 1 to 5 do
            Sched.with_lock m (fun () ->
                Buffer.add_string order (string_of_int cpu.Cpu.id);
                Simclock.advance cpu.Cpu.clock ((cpu.id * 37) + 11))
          done)
    in
    (Buffer.contents order, stats.makespan_ns)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair string int)) "identical schedules" a b

let test_unlock_not_held () =
  let m = Sched.create_mutex () in
  Alcotest.(check bool) "unlock when not held rejected" true
    (match Sched.unlock m with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_outside_scheduler () =
  (* Locks degrade gracefully outside Sched.run. *)
  let m = Sched.create_mutex () in
  Sched.with_lock m (fun () -> ());
  Sched.with_lock m (fun () -> ());
  Alcotest.(check pass) "no scheduler needed" () ()

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_deadlock_names_threads () =
  (* Thread 0 finishes while holding the mutex; thread 1 parks forever.
     The error must identify the stuck thread and how long it was
     blocked, not just say "deadlock". *)
  let m = Sched.create_mutex () in
  let msg =
    match
      Sched.run ~threads:2 (fun cpu -> if cpu.Cpu.id = 0 then Sched.lock m else Sched.lock m)
    with
    | _ -> Alcotest.fail "deadlock not detected"
    | exception Invalid_argument msg -> msg
  in
  Alcotest.(check bool) "counts stuck threads" true (contains msg "1 of 2 threads");
  Alcotest.(check bool) "names the stuck thread" true (contains msg "thread 1");
  Alcotest.(check bool) "reports the mutex park" true (contains msg "blocked on mutex since");
  Alcotest.(check bool) "reports blocked duration" true (contains msg "stuck for")

let suite =
  [
    Alcotest.test_case "all threads run" `Quick test_all_run;
    Alcotest.test_case "deadlock names stuck threads" `Quick test_deadlock_names_threads;
    Alcotest.test_case "clock isolation" `Quick test_clock_isolation;
    Alcotest.test_case "makespan" `Quick test_makespan_is_max;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "contention serialises" `Quick test_contention_serializes;
    Alcotest.test_case "independent locks parallel" `Quick test_independent_locks_parallel;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
    Alcotest.test_case "outside scheduler" `Quick test_outside_scheduler;
  ]
