(* Cooperative scheduler: completion, determinism, lock exclusion and
   contention accounting. *)

open Repro_util
module Sched = Repro_sched.Sched

let test_all_run () =
  let count = ref 0 in
  let stats = Sched.run ~threads:8 (fun _cpu -> incr count) in
  Alcotest.(check int) "all threads ran" 8 !count;
  Alcotest.(check bool) "makespan sane" true (stats.makespan_ns >= 0)

let test_clock_isolation () =
  let finish = Array.make 4 0 in
  let _ =
    Sched.run ~threads:4 (fun cpu ->
        Simclock.advance cpu.Cpu.clock ((cpu.id + 1) * 1000);
        finish.(cpu.id) <- Cpu.now cpu)
  in
  Alcotest.(check (array int)) "per-thread clocks" [| 1000; 2000; 3000; 4000 |] finish

let test_makespan_is_max () =
  let stats =
    Sched.run ~threads:3 (fun cpu -> Simclock.advance cpu.Cpu.clock ((cpu.id + 1) * 500))
  in
  Alcotest.(check int) "makespan = slowest" 1500 stats.makespan_ns;
  Alcotest.(check int) "busy = sum" 3000 stats.total_busy_ns

let test_mutex_exclusion () =
  let m = Sched.create_mutex () in
  let inside = ref false in
  let violations = ref 0 in
  let _ =
    Sched.run ~threads:8 (fun cpu ->
        for _ = 1 to 20 do
          Sched.lock m;
          if !inside then incr violations;
          inside := true;
          Simclock.advance cpu.Cpu.clock 100;
          (* Yield while holding: others must still be excluded. *)
          Sched.yield ();
          inside := false;
          Sched.unlock m
        done)
  in
  Alcotest.(check int) "mutual exclusion" 0 !violations

let test_contention_serializes () =
  let m = Sched.create_mutex () in
  let work cpu =
    Sched.with_lock m (fun () -> Simclock.advance cpu.Cpu.clock 10_000)
  in
  let s1 = Sched.run ~threads:1 work in
  let s8 = Sched.run ~threads:8 work in
  Alcotest.(check bool) "8 threads on one lock serialise" true
    (s8.makespan_ns >= 8 * s1.makespan_ns);
  Alcotest.(check bool) "waiting recorded" true (s8.lock_wait_ns > 0)

let test_independent_locks_parallel () =
  let work cpu =
    let m = Sched.create_mutex () in
    Sched.with_lock m (fun () -> Simclock.advance cpu.Cpu.clock 10_000)
  in
  let s8 = Sched.run ~threads:8 work in
  Alcotest.(check bool) "independent locks do not serialise" true
    (s8.makespan_ns < 2 * 10_100)

let test_determinism () =
  let run () =
    let m = Sched.create_mutex () in
    let order = Buffer.create 64 in
    let stats =
      Sched.run ~threads:4 (fun cpu ->
          for _ = 1 to 5 do
            Sched.with_lock m (fun () ->
                Buffer.add_string order (string_of_int cpu.Cpu.id);
                Simclock.advance cpu.Cpu.clock ((cpu.id * 37) + 11))
          done)
    in
    (Buffer.contents order, stats.makespan_ns)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair string int)) "identical schedules" a b

let test_unlock_not_held () =
  let m = Sched.create_mutex () in
  Alcotest.(check bool) "unlock when not held rejected" true
    (match Sched.unlock m with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_outside_scheduler () =
  (* Locks degrade gracefully outside Sched.run. *)
  let m = Sched.create_mutex () in
  Sched.with_lock m (fun () -> ());
  Sched.with_lock m (fun () -> ());
  Alcotest.(check pass) "no scheduler needed" () ()

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_deadlock_names_threads () =
  (* Thread 0 finishes while holding the mutex; thread 1 parks forever.
     The error must identify the stuck thread and how long it was
     blocked, not just say "deadlock". *)
  let m = Sched.create_mutex () in
  let msg =
    match
      Sched.run ~threads:2 (fun cpu -> if cpu.Cpu.id = 0 then Sched.lock m else Sched.lock m)
    with
    | _ -> Alcotest.fail "deadlock not detected"
    | exception Invalid_argument msg -> msg
  in
  Alcotest.(check bool) "counts stuck threads" true (contains msg "1 of 2 threads");
  Alcotest.(check bool) "names the stuck thread" true (contains msg "thread 1");
  Alcotest.(check bool) "reports the mutex park" true (contains msg "blocked on mutex since");
  Alcotest.(check bool) "reports blocked duration" true (contains msg "stuck for")

let test_run_reentrancy_rejected () =
  (* Calling run from inside a fiber must fail loudly, and the failed
     attempt must not poison the outer run or the next one. *)
  let saw = ref "" in
  let outer_ran = ref 0 in
  let _ =
    Sched.run ~threads:1 (fun _cpu ->
        incr outer_ran;
        match Sched.run ~threads:1 (fun _ -> ()) with
        | _ -> Alcotest.fail "nested run accepted"
        | exception Invalid_argument m -> saw := m)
  in
  Alcotest.(check string) "exact error" "Sched.run: already running" !saw;
  Alcotest.(check int) "outer body ran" 1 !outer_ran;
  Alcotest.(check bool) "scheduler idle again" false (Sched.running ());
  let s = Sched.run ~threads:2 (fun _ -> ()) in
  Alcotest.(check bool) "scheduler usable afterwards" true (s.makespan_ns >= 0)

let test_fifo_handoff_fairness () =
  (* Three threads contend one mutex, each holding it for H ns.  FIFO
     handoff means acquisition in block order, and the analytic wait is
     exact: thread 1 waits H + handoff, thread 2 waits 2H + 2*handoff
     (both blocked at the same instant, after charging the lock cost). *)
  let m = Sched.create_mutex () in
  let h = 1000 in
  let order = ref [] in
  let stats =
    Sched.run ~threads:3 (fun cpu ->
        Sched.with_lock m (fun () ->
            order := cpu.Cpu.id :: !order;
            Simclock.advance cpu.Cpu.clock h;
            Sched.yield ()))
  in
  Alcotest.(check (list int)) "acquire in block order" [ 0; 1; 2 ] (List.rev !order);
  Alcotest.(check int) "analytic lock wait" ((3 * h) + (3 * Sched.handoff_ns)) stats.lock_wait_ns

let test_sequential_runs_reset_state () =
  (* lock_wait accounting and scheduler globals must reset between runs,
     including after a deadlock error and after a fiber exception. *)
  let run_once () =
    let m = Sched.create_mutex () in
    Sched.run ~threads:3 (fun cpu ->
        Sched.with_lock m (fun () ->
            Simclock.advance cpu.Cpu.clock 1000;
            Sched.yield ()))
  in
  let a = run_once () in
  let b = run_once () in
  Alcotest.(check int) "lock_wait does not accumulate" a.lock_wait_ns b.lock_wait_ns;
  (* Deadlocked run: raises, but must leave the scheduler reusable. *)
  let m = Sched.create_mutex () in
  (match Sched.run ~threads:2 (fun _ -> Sched.lock m) with
  | _ -> Alcotest.fail "deadlock not detected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "idle after deadlock" false (Sched.running ());
  (* Fiber exception: same guarantee. *)
  (match Sched.run ~threads:2 (fun _ -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "idle after exception" false (Sched.running ());
  let c = run_once () in
  Alcotest.(check int) "clean accounting after failures" a.lock_wait_ns c.lock_wait_ns

let test_monitor_observes_everything () =
  let spawns = ref 0 and finishes = ref 0 in
  let acquires = ref [] and releases = ref [] and yields = ref 0 in
  let accesses = ref [] in
  let monitor =
    {
      Sched.on_spawn = (fun ~thread:_ -> incr spawns);
      on_finish = (fun ~thread:_ -> incr finishes);
      on_acquire = (fun ~thread ~mutex -> acquires := (thread, mutex) :: !acquires);
      on_release = (fun ~thread ~mutex -> releases := (thread, mutex) :: !releases);
      on_yield = (fun ~thread:_ -> incr yields);
      on_access = (fun ~thread ~obj ~write ~site -> accesses := (thread, obj, write, site) :: !accesses);
    }
  in
  Alcotest.(check bool) "not monitored outside run" false (Sched.monitored ());
  Sched.access ~obj:"ignored" ~write:true ~site:"outside" (* must be a no-op *);
  Sched.set_monitor (Some monitor);
  Fun.protect
    ~finally:(fun () -> Sched.set_monitor None)
    (fun () ->
      let m = Sched.create_mutex () in
      let _ =
        Sched.run ~threads:2 (fun _cpu ->
            Sched.with_lock m (fun () ->
                Sched.access ~obj:"x" ~write:true ~site:"mon.test");
            Sched.yield ())
      in
      Alcotest.(check int) "spawns" 2 !spawns;
      Alcotest.(check int) "finishes" 2 !finishes;
      Alcotest.(check int) "acquires" 2 (List.length !acquires);
      Alcotest.(check int) "releases" 2 (List.length !releases);
      Alcotest.(check int) "yields" 2 !yields;
      Alcotest.(check int) "accesses" 2 (List.length !accesses);
      let _, obj, write, site = List.hd !accesses in
      Alcotest.(check string) "access obj" "x" obj;
      Alcotest.(check bool) "access is a write" true write;
      Alcotest.(check string) "access site" "mon.test" site;
      List.iter
        (fun (th, mx) ->
          Alcotest.(check int) "acquire names the mutex" (Sched.mutex_id m) mx;
          Alcotest.(check bool) "thread id valid" true (th = 0 || th = 1))
        !acquires);
  Alcotest.(check bool) "ignored pre-run access" true
    (List.for_all (fun (_, obj, _, _) -> obj <> "ignored") !accesses)

let test_exploration_policies_complete () =
  (* Random_walk and Pct must run every thread to completion even under
     lock contention, and be deterministic functions of their seed. *)
  let trace policy =
    let m = Sched.create_mutex () in
    let buf = Buffer.create 64 in
    let _ =
      Sched.run ~policy ~threads:4 (fun cpu ->
          for _ = 1 to 3 do
            Sched.with_lock m (fun () ->
                Buffer.add_string buf (string_of_int cpu.Cpu.id);
                Sched.yield ())
          done)
    in
    Buffer.contents buf
  in
  let rw = trace (Sched.Random_walk { seed = 5 }) in
  Alcotest.(check int) "random walk ran all work" 12 (String.length rw);
  Alcotest.(check string) "random walk deterministic" rw
    (trace (Sched.Random_walk { seed = 5 }));
  let pct = trace (Sched.Pct { seed = 5 }) in
  Alcotest.(check int) "pct ran all work" 12 (String.length pct);
  Alcotest.(check string) "pct deterministic" pct (trace (Sched.Pct { seed = 5 }));
  (* At least one seed must deviate from the earliest-clock order. *)
  let base = trace Sched.Earliest_clock in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let deviates =
    List.exists (fun s -> trace (Sched.Random_walk { seed = s }) <> base) seeds
    || List.exists (fun s -> trace (Sched.Pct { seed = s }) <> base) seeds
  in
  Alcotest.(check bool) "exploration perturbs the schedule" true deviates

let test_mutex_ids_distinct () =
  let a = Sched.create_mutex () and b = Sched.create_mutex () in
  Alcotest.(check bool) "fresh mutexes get fresh ids" true
    (Sched.mutex_id a <> Sched.mutex_id b)

let suite =
  [
    Alcotest.test_case "all threads run" `Quick test_all_run;
    Alcotest.test_case "run reentrancy rejected" `Quick test_run_reentrancy_rejected;
    Alcotest.test_case "FIFO handoff fairness" `Quick test_fifo_handoff_fairness;
    Alcotest.test_case "sequential runs reset state" `Quick test_sequential_runs_reset_state;
    Alcotest.test_case "monitor observes everything" `Quick test_monitor_observes_everything;
    Alcotest.test_case "exploration policies complete" `Quick test_exploration_policies_complete;
    Alcotest.test_case "mutex ids distinct" `Quick test_mutex_ids_distinct;
    Alcotest.test_case "deadlock names stuck threads" `Quick test_deadlock_names_threads;
    Alcotest.test_case "clock isolation" `Quick test_clock_isolation;
    Alcotest.test_case "makespan" `Quick test_makespan_is_max;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "contention serialises" `Quick test_contention_serializes;
    Alcotest.test_case "independent locks parallel" `Quick test_independent_locks_parallel;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
    Alcotest.test_case "outside scheduler" `Quick test_outside_scheduler;
  ]
