(* Test entry point: one alcotest run over all module suites. *)

let () =
  Alcotest.run "winefs-repro"
    [
      ("util", Test_util.suite);
      ("stats", Test_stats.suite);
      ("pmem", Test_pmem.suite);
      ("flat", Test_flat.suite);
      ("rbtree", Test_rbtree.suite);
      ("memsim", Test_memsim.suite);
      ("sched", Test_sched.suite);
      ("journal", Test_journal.suite);
      ("alloc", Test_alloc.suite);
      ("vfs", Test_vfs.suite);
      ("aging", Test_aging.suite);
      ("crashcheck", Test_crashcheck.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("winefs", Test_winefs.suite);
      ("layers", Test_layers.suite);
      ("golden", Test_golden.suite);
      ("winefs-extra", Test_winefs_extra.suite);
      ("model-fs", Test_model_fs.suite);
      ("fs-contract", Test_fs_contract.suite);
      ("baselines", Test_baselines.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("race", Test_race.suite);
      ("faultcheck", Test_faultcheck.suite);
      ("fsck", Test_fsck.suite);
      ("lint", Test_lint.suite);
    ]
