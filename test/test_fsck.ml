(* winefs_fsck: crash-image orphan scenarios (unlink and rename torn at
   the pre-commit fence, journal defeated so the half-state reaches
   fsck), the degraded-unmount regression, fsck.* counters, and a small
   fixed-seed torture campaign. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs = Winefs.Fs
module Layout = Winefs.Layout
module Codec = Winefs.Codec
module Fsck = Repro_fsck.Fsck
module Torturecheck = Repro_crashcheck.Torturecheck
module Stats = Repro_stats.Stats

let cpu () = Cpu.make ~id:0 ()
let cfg () = Types.config ~cpus:2 ~inodes_per_cpu:256 ()

let layout_of dev (c : Types.config) =
  Layout.compute ~size:(Device.size dev) ~cpus:c.cpus ~inodes_per_cpu:c.inodes_per_cpu

let has_rule (r : Fsck.report) rule = List.exists (fun f -> f.Fsck.rule = rule) r.findings

(* Byte offset of the dentry slot naming [child_ino] in [dir_ino]'s
   first dentry block, or -1. *)
let dentry_slot_off dev layout ~dir_ino ~child_ino =
  let b = Bytes.create Codec.Inode.extent_bytes in
  Device.peek dev
    ~off:(Layout.inode_off layout dir_ino + Codec.Inode.extent_slot_off 0)
    ~len:Codec.Inode.extent_bytes ~dst:b ~dst_off:0;
  let _, blk, _ = Codec.Inode.decode_extent b in
  let found = ref (-1) in
  let slot = Bytes.create Codec.dentry_bytes in
  for k = 0 to (Units.base_page / Codec.dentry_bytes) - 1 do
    if !found < 0 then begin
      Device.peek dev
        ~off:(blk + (k * Codec.dentry_bytes))
        ~len:Codec.dentry_bytes ~dst:slot ~dst_off:0;
      match Codec.Dentry.decode slot with
      | Some d when d.Codec.Dentry.ino = child_ino -> found := blk + (k * Codec.dentry_bytes)
      | _ -> ()
    end
  done;
  !found

(* Crash [op] at the highest fence whose in-flight line set satisfies
   [want], returning the crash image of that exact moment.  The snapshot
   must be taken inside the fence hook: once the hook's exception
   unwinds, the transaction's abort path rolls the in-place stores back
   and fences again, destroying the torn state.  Rebuilds the
   (deterministic) image for every probed fence. *)
let crash_where build op want =
  let dev0, _, fs0 = build () in
  Device.reset_fence_seq dev0;
  op fs0;
  let fences = Device.fence_seq dev0 in
  let rec search target =
    if target < 1 then None
    else begin
      let dev, c, fs = build () in
      Device.set_tracking dev true;
      Device.reset_fence_seq dev;
      let snap = ref None in
      Device.set_fence_hook dev
        (Some
           (fun seq ->
             if seq = target then begin
               if want (Device.pending_lines dev) then
                 snap := Some (Device.crash_image dev ~persisted:(fun _ -> true));
               raise Exit
             end));
      (try op fs with Exit -> ());
      Device.set_fence_hook dev None;
      match !snap with
      | Some img -> Some (img, c, target)
      | None -> search (target - 1)
    end
  in
  search fences

(* Defeat recovery: zero each per-CPU journal header so neither mount
   nor fsck phase 2 can roll the unfinished transaction back — the torn
   half-state must survive to the connectivity phase. *)
let zero_journals img c (layout : Layout.t) =
  Array.iter
    (fun off ->
      Device.write img c ~off ~src:(Bytes.make 64 '\000') ~src_off:0 ~len:64;
      Device.persist img c ~off ~len:64)
    layout.Layout.journal_off

let cl = Units.cacheline
let header_lines layout ino = Layout.inode_off layout ino / cl
let content = "orphan payload: must survive fsck reattachment byte-for-byte"

(* Image builder shared by the crash tests: /d/f (the torn file), /e/z
   (so /e's dentry block pre-exists a cross-directory rename). *)
let build_tree () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(48 * Units.mib) () in
  let c = cfg () in
  let fs = Fs.format dev c in
  let u = cpu () in
  Fs.mkdir fs u "/d";
  Fs.mkdir fs u "/e";
  let fd = Fs.create fs u "/d/f" in
  let _ = Fs.pwrite fs u fd ~off:0 ~src:content in
  Fs.close fs u fd;
  let fd = Fs.create fs u "/e/z" in
  let _ = Fs.pwrite fs u fd ~off:0 ~src:"sibling" in
  Fs.close fs u fd;
  (dev, c, fs)

(* Inode numbers and the /d/f dentry address are deterministic across
   rebuilds; capture them once from a probe build. *)
let probe_tree () =
  let dev, c, fs = build_tree () in
  let u = cpu () in
  let f_ino = (Fs.stat fs u "/d/f").Types.st_ino in
  let d_ino = (Fs.stat fs u "/d").Types.st_ino in
  let layout = layout_of dev c in
  let slot = dentry_slot_off dev layout ~dir_ino:d_ino ~child_ino:f_ino in
  Alcotest.(check bool) "found /d/f dentry slot" true (slot >= 0);
  (f_ino, slot, layout)

(* Crash between the two halves of unlink: the dentry clear has been
   flushed (and the next journal append's fence makes it durable) but
   the inode invalidation has not happened yet — the file's inode
   survives with no name.  fsck must reattach exactly that inode under
   /lost+found. *)
let test_unlink_orphan () =
  let u = cpu () in
  let f_ino, slot, layout0 = probe_tree () in
  let hline = header_lines layout0 f_ino in
  let dline = slot / cl in
  let want pending = List.mem dline pending && not (List.mem hline pending) in
  match crash_where build_tree (fun fs -> Fs.unlink fs u "/d/f") want with
  | None -> Alcotest.fail "no fence caught the dentry clear in flight alone"
  | Some (img, c, _) ->
      zero_journals img u (layout_of img c);
      let rep = Fsck.run ~repair:true img in
      Alcotest.(check bool) "orphan finding" true (has_rule rep "orphan");
      Alcotest.(check int) "exactly one orphan reattached" 1 rep.Fsck.orphans_reattached;
      let fs2 = Fs.mount img c in
      Alcotest.(check bool) "writable remount" false (Fs.read_only fs2);
      let lf = Printf.sprintf "/lost+found/ino_%d" f_ino in
      let fd = Fs.openf fs2 u lf Types.o_rdonly in
      let s = Fs.pread fs2 u fd ~off:0 ~len:(String.length content) in
      Fs.close fs2 u fd;
      Alcotest.(check string) "reattached content intact" content s;
      Alcotest.(check bool) "name removed from /d" false (Fs.exists fs2 u "/d/f");
      Alcotest.(check bool) "sibling intact" true (Fs.exists fs2 u "/e/z");
      Fs.unmount fs2 u;
      Alcotest.(check bool) "second fsck clean" true (Fsck.run ~repair:false img).Fsck.clean

(* The mirror half-state — name present, inode freed — cannot arise from
   a natural unlink crash (the FS clears the dentry strictly before
   invalidating the header), so plant it surgically: fsck must clear the
   dangling name, free exactly that inode, and reattach nothing. *)
let test_dangling_dentry () =
  let u = cpu () in
  let dev, c, fs = build_tree () in
  let f_ino = (Fs.stat fs u "/d/f").Types.st_ino in
  Fs.unmount fs u;
  let layout = layout_of dev c in
  let off = Layout.inode_off layout f_ino in
  let hdr = Bytes.create Codec.Inode.header_bytes in
  Device.peek dev ~off ~len:Codec.Inode.header_bytes ~dst:hdr ~dst_off:0;
  let dead =
    Codec.Inode.encode_header { (Codec.Inode.decode_header hdr) with Codec.Inode.valid = false }
  in
  Device.write dev u ~off ~src:dead ~src_off:0 ~len:(Bytes.length dead);
  Device.persist dev u ~off ~len:(Bytes.length dead);
  let rep = Fsck.run ~repair:true dev in
  Alcotest.(check bool) "dangling dentry cleared" true (has_rule rep "dentry-dangling");
  Alcotest.(check int) "no orphan invented" 0 rep.Fsck.orphans_reattached;
  let fs2 = Fs.mount dev c in
  Alcotest.(check bool) "writable remount" false (Fs.read_only fs2);
  Alcotest.(check bool) "dead name gone" false (Fs.exists fs2 u "/d/f");
  Alcotest.(check bool) "no lost+found created" false (Fs.exists fs2 u "/lost+found");
  Alcotest.(check bool) "sibling intact" true (Fs.exists fs2 u "/e/z");
  Fs.unmount fs2 u;
  Alcotest.(check bool) "second fsck clean" true (Fsck.run ~repair:false dev).Fsck.clean

(* Mid-rename crash on the overwrite path (/d/f onto /e/z): the victim's
   dentry slot is repointed at the moved inode before the victim's
   header is invalidated, so crashing between the two leaves z's inode
   alive with no name — fsck must reattach exactly the victim, while the
   moved file (briefly carrying both names) gets its link count fixed. *)
let test_rename_victim_orphan () =
  let u = cpu () in
  let dev0, c0, fs0 = build_tree () in
  let z_ino = (Fs.stat fs0 u "/e/z").Types.st_ino in
  let e_ino = (Fs.stat fs0 u "/e").Types.st_ino in
  let layout0 = layout_of dev0 c0 in
  let z_slot = dentry_slot_off dev0 layout0 ~dir_ino:e_ino ~child_ino:z_ino in
  Alcotest.(check bool) "found /e/z dentry slot" true (z_slot >= 0);
  let zline = z_slot / cl in
  let z_hline = header_lines layout0 z_ino in
  let want pending = List.mem zline pending && not (List.mem z_hline pending) in
  match
    crash_where build_tree
      (fun fs -> Fs.rename fs u ~old_path:"/d/f" ~new_path:"/e/z")
      want
  with
  | None -> Alcotest.fail "no fence caught the dentry repoint in flight alone"
  | Some (img, c, _) ->
      zero_journals img u (layout_of img c);
      let rep = Fsck.run ~repair:true img in
      Alcotest.(check bool) "orphan finding" true (has_rule rep "orphan");
      Alcotest.(check int) "exactly one orphan reattached" 1 rep.Fsck.orphans_reattached;
      let fs2 = Fs.mount img c in
      Alcotest.(check bool) "writable remount" false (Fs.read_only fs2);
      let read path len =
        let fd = Fs.openf fs2 u path Types.o_rdonly in
        let s = Fs.pread fs2 u fd ~off:0 ~len in
        Fs.close fs2 u fd;
        s
      in
      let lf = Printf.sprintf "/lost+found/ino_%d" z_ino in
      Alcotest.(check string) "victim content intact in lost+found" "sibling" (read lf 7);
      Alcotest.(check string) "moved file readable at destination" content
        (read "/e/z" (String.length content));
      Alcotest.(check bool) "source name still present" true (Fs.exists fs2 u "/d/f");
      Fs.unmount fs2 u;
      Alcotest.(check bool) "second fsck clean" true (Fsck.run ~repair:false img).Fsck.clean

(* Regression for the degraded-unmount dead end: a poisoned inode header
   degrades the mount to read-only and unmount is then a no-op, so
   before fsck existed the image could never be healed. *)
let test_degraded_heals () =
  let u = cpu () in
  let dev = Device.create ~cost:Device.Cost.free ~size:(48 * Units.mib) () in
  let c = cfg () in
  let fs = Fs.format dev c in
  let fd = Fs.create fs u "/keep" in
  let _ = Fs.pwrite fs u fd ~off:0 ~src:"survivor" in
  Fs.close fs u fd;
  let fd = Fs.create fs u "/victim" in
  let _ = Fs.pwrite fs u fd ~off:0 ~src:"doomed" in
  Fs.close fs u fd;
  let v_ino = (Fs.stat fs u "/victim").Types.st_ino in
  Fs.unmount fs u;
  let layout = layout_of dev c in
  Device.inject dev (Device.Poison_line { off = Layout.inode_off layout v_ino });
  let fs1 = Fs.mount dev c in
  Alcotest.(check bool) "mount degraded" true (Fs.read_only fs1);
  Fs.unmount fs1 u;
  let rep = Fsck.run ~repair:true dev in
  Alcotest.(check bool) "poisoned record flagged" true (has_rule rep "inode-media");
  let fs2 = Fs.mount dev c in
  Alcotest.(check bool) "writable after repair" false (Fs.read_only fs2);
  Alcotest.(check bool) "victim dropped" false (Fs.exists fs2 u "/victim");
  let fd = Fs.openf fs2 u "/keep" Types.o_rdonly in
  let s = Fs.pread fs2 u fd ~off:0 ~len:8 in
  Fs.close fs2 u fd;
  Alcotest.(check string) "survivor intact" "survivor" s;
  let fd = Fs.create fs2 u "/new" in
  let _ = Fs.pwrite fs2 u fd ~off:0 ~src:"writable" in
  Fs.close fs2 u fd;
  Fs.unmount fs2 u;
  Alcotest.(check bool) "second fsck clean" true (Fsck.run ~repair:false dev).Fsck.clean

(* fsck.* counters land in the registry when stats are on. *)
let test_counters () =
  let u = cpu () in
  let dev = Device.create ~cost:Device.Cost.free ~size:(48 * Units.mib) () in
  let c = cfg () in
  let fs = Fs.format dev c in
  let fd = Fs.create fs u "/f" in
  let _ = Fs.pwrite fs u fd ~off:0 ~src:"stats" in
  Fs.close fs u fd;
  Fs.unmount fs u;
  Stats.reset ();
  Stats.set_enabled true;
  ignore (Fsck.run ~repair:false dev);
  Stats.set_enabled false;
  Alcotest.(check int) "fsck.runs" 1 (Stats.Counter.get (Stats.Counter.v "fsck.runs"));
  List.iter
    (fun phase ->
      let n =
        Stats.Counter.get (Stats.Counter.v ~labels:[ ("phase", phase) ] "fsck.phase_ns")
      in
      Alcotest.(check bool) (phase ^ " phase timed") true (n >= 0))
    [ "sb"; "journal"; "inodes"; "extents"; "connectivity"; "rewrite" ]

(* A small fixed-seed slice of the torture campaign: every crash image
   must repair to a writable, invariant-clean, convergent remount. *)
let test_mini_torture () =
  let r = Torturecheck.run ~seed:5 ~iterations:6 () in
  Alcotest.(check int) "all iterations crashed" 6 r.Torturecheck.crashes;
  Alcotest.(check int) "no failures" 0 (List.length r.Torturecheck.failures)

let suite =
  [
    Alcotest.test_case "unlink crash: orphan reattached" `Quick test_unlink_orphan;
    Alcotest.test_case "dangling dentry: inode freed, name cleared" `Quick test_dangling_dentry;
    Alcotest.test_case "rename crash: victim reattached" `Quick test_rename_victim_orphan;
    Alcotest.test_case "degraded image heals to writable" `Quick test_degraded_heals;
    Alcotest.test_case "fsck counters populate" `Quick test_counters;
    Alcotest.test_case "mini torture campaign" `Slow test_mini_torture;
  ]
