(* PM device: data access, cost accounting, persistence/crash semantics. *)

open Repro_util
module Device = Repro_pmem.Device

let cpu () = Cpu.make ~id:0 ()

let test_rw () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.write_string d c ~off:100 "hello";
  Alcotest.(check string) "read back" "hello" (Device.read_string d c ~off:100 ~len:5);
  Device.write_u64 d c ~off:512 42L;
  Alcotest.(check int64) "u64" 42L (Device.read_u64 d c ~off:512);
  Device.memset d c ~off:0 ~len:64 'z';
  Alcotest.(check string) "memset" "zzzz" (Device.read_string d c ~off:60 ~len:4);
  Device.copy_within d c ~src:100 ~dst:1000 ~len:5;
  Alcotest.(check string) "copy_within" "hello" (Device.read_string d c ~off:1000 ~len:5)

let test_bounds () =
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let c = cpu () in
  Alcotest.(check bool) "out of bounds rejected" true
    (match Device.write_string d c ~off:4090 "toolong" with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_cost_charged () =
  let d = Device.create ~size:(1 * Units.mib) () in
  let c = cpu () in
  let t0 = Cpu.now c in
  Device.write_string d c ~off:0 (String.make 4096 'a');
  let t1 = Cpu.now c in
  Alcotest.(check bool) "write charges time" true (t1 > t0);
  ignore (Device.read_string d c ~off:0 ~len:4096);
  Alcotest.(check bool) "read charges time" true (Cpu.now c > t1);
  Alcotest.(check int) "bytes written counted" 4096
    (Counters.get (Device.counters d) "pm.bytes_written")

let test_crash_unflushed_lost () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.write_string d c ~off:0 "durable";
  Device.persist d c ~off:0 ~len:7;
  Device.set_tracking d true;
  Device.write_string d c ~off:1024 "volatile";
  (* No flush/fence: in the none-persisted crash image the write is gone. *)
  let img = Device.crash_image d ~persisted:(fun _ -> false) in
  Alcotest.(check string) "durable survives" "durable" (Device.read_string img c ~off:0 ~len:7);
  Alcotest.(check string) "unflushed lost" (String.make 8 '\000')
    (Device.read_string img c ~off:1024 ~len:8);
  (* All-persisted image keeps it. *)
  let img2 = Device.crash_image d ~persisted:(fun _ -> true) in
  Alcotest.(check string) "kept when persisted" "volatile"
    (Device.read_string img2 c ~off:1024 ~len:8)

let test_fence_makes_durable () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.set_tracking d true;
  Device.write_string d c ~off:0 "flushed";
  Device.flush d c ~off:0 ~len:7;
  Device.fence d c;
  Alcotest.(check (list int)) "nothing pending after flush+fence" [] (Device.pending_lines d);
  let img = Device.crash_image d ~persisted:(fun _ -> false) in
  Alcotest.(check string) "flushed+fenced survives any crash" "flushed"
    (Device.read_string img c ~off:0 ~len:7)

let test_nt_stores () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.set_tracking d true;
  Device.write_string_nt d c ~off:0 "ntdata";
  (* NT stores become durable at the fence without explicit flush. *)
  Device.fence d c;
  let img = Device.crash_image d ~persisted:(fun _ -> false) in
  Alcotest.(check string) "nt store durable after fence" "ntdata"
    (Device.read_string img c ~off:0 ~len:6)

let test_partial_crash_subsets () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.set_tracking d true;
  (* Two stores in different cache lines. *)
  Device.write_string d c ~off:0 "AAAA";
  Device.write_string d c ~off:256 "BBBB";
  let lines = Device.pending_lines d in
  Alcotest.(check int) "two pending lines" 2 (List.length lines);
  let a_line = 0 and b_line = 4 in
  let img = Device.crash_image d ~persisted:(fun l -> l = a_line) in
  Alcotest.(check string) "A survived" "AAAA" (Device.read_string img c ~off:0 ~len:4);
  Alcotest.(check string) "B lost" "\000\000\000\000" (Device.read_string img c ~off:256 ~len:4);
  ignore b_line

let test_fence_hook () =
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  let fired = ref [] in
  Device.set_fence_hook d (Some (fun n -> fired := n :: !fired));
  Device.fence d c;
  Device.fence d c;
  Device.set_fence_hook d None;
  Device.fence d c;
  Alcotest.(check (list int)) "hook saw fences 1 and 2" [ 2; 1 ] !fired

let test_numa_cost () =
  let d = Device.create ~numa_nodes:2 ~size:(4 * Units.mib) () in
  let local = Cpu.make ~id:0 ~node:0 () in
  let remote = Cpu.make ~id:1 ~node:1 () in
  (* Writing to node-0-owned space costs more from node 1. *)
  let t0 = Cpu.now local in
  Device.write_string d local ~off:0 (String.make 4096 'l');
  let local_cost = Cpu.now local - t0 in
  let t0 = Cpu.now remote in
  Device.write_string d remote ~off:0 (String.make 4096 'r');
  let remote_cost = Cpu.now remote - t0 in
  Alcotest.(check bool) "remote write dearer" true (remote_cost > local_cost);
  Alcotest.(check int) "node of offset" 1 (Device.node_of_offset d (3 * Units.mib))

let test_save_load () =
  let path = Filename.temp_file "winefs" ".pm" in
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  Device.write_string d c ~off:4000 "persist me";
  Device.save_file d path;
  let d2 = Device.load_file path in
  Alcotest.(check string) "image round trip" "persist me"
    (Device.read_string d2 c ~off:4000 ~len:10);
  Sys.remove path

let test_multi_hook () =
  (* Several observers on one device: all must see every event, in
     installation order; removing one leaves the others untouched. *)
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let c = cpu () in
  let a = ref 0 and b = ref 0 and order = ref [] in
  let ha = Device.add_event_hook d (fun _ _ _ -> incr a; order := `A :: !order) in
  let hb = Device.add_event_hook d (fun _ _ _ -> incr b; order := `B :: !order) in
  Device.write_u64 d c ~off:0 7L;
  Device.persist d c ~off:0 ~len:8;
  Alcotest.(check int) "both hooks saw every event" !a !b;
  Alcotest.(check bool) "events flowed" true (!a = 3) (* store, flush, fence *);
  (match !order with
  | `B :: `A :: _ -> ()
  | _ -> Alcotest.fail "hooks must run in installation order");
  Device.remove_event_hook d ha;
  Device.write_u64 d c ~off:64 8L;
  Alcotest.(check int) "removed hook silent" 3 !a;
  Alcotest.(check int) "remaining hook still fires" 4 !b;
  Device.remove_event_hook d ha (* unknown/stale ids are ignored *);
  Device.remove_event_hook d hb;
  Device.write_u64 d c ~off:128 9L;
  Alcotest.(check int) "all hooks removed" 4 !b

let test_hook_removal_during_dispatch () =
  (* Regression: dispatch iterates a snapshot of the hook list, so a hook
     that removes observers mid-event — itself or a sibling — must not
     cause any hook installed at emit time to be skipped or run twice on
     that event. *)
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let c = cpu () in
  let a = ref 0 and b = ref 0 and z = ref 0 in
  let ids = ref [] in
  let ha =
    Device.add_event_hook d (fun _ _ _ ->
        incr a;
        (* Remove every installed hook, including this one, mid-dispatch. *)
        List.iter (Device.remove_event_hook d) !ids)
  in
  let hb = Device.add_event_hook d (fun _ _ _ -> incr b) in
  let hz = Device.add_event_hook d (fun _ _ _ -> incr z) in
  ids := [ ha; hb; hz ];
  Device.write_u64 d c ~off:0 1L;
  Alcotest.(check int) "self-removing hook fired once" 1 !a;
  Alcotest.(check int) "sibling after remover still fired" 1 !b;
  Alcotest.(check int) "last sibling still fired" 1 !z;
  Device.write_u64 d c ~off:64 2L;
  Alcotest.(check (list int)) "all hooks gone on the next event" [ 1; 1; 1 ] [ !a; !b; !z ]

let test_torn_word_crash_subsets () =
  (* Torn-word x crash_image composition: with [n] pending lines the
     exhaustive subset enumeration yields exactly [2^n] images, and every
     image is exactly predicted by the store log — persisted lines show
     their new bytes, dropped lines their pre-store bytes, and the
     registered torn word shows its pre-store bytes in {e every} image
     (the tear fires whether or not the rest of its line persisted). *)
  let d = Device.create ~cost:Device.Cost.free ~size:8192 () in
  let c = cpu () in
  let lines = [| 0; 1; 2 |] in
  let old_of l = String.make 64 (Char.chr (Char.code 'a' + l)) in
  let new_of l = String.make 64 (Char.chr (Char.code 'A' + l)) in
  Array.iter
    (fun l ->
      Device.write_string d c ~off:(l * 64) (old_of l);
      Device.persist d c ~off:(l * 64) ~len:64)
    lines;
  Device.set_tracking d true;
  Array.iter (fun l -> Device.write_string d c ~off:(l * 64) (new_of l)) lines;
  Alcotest.(check int) "three pending lines" 3 (List.length (Device.pending_lines d));
  (* Tear the second 8-byte word of line 1. *)
  let torn_off = 64 + 8 in
  Device.inject d (Device.Torn_word { off = torn_off });
  let n = Array.length lines in
  let images = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let persisted l = mask land (1 lsl l) <> 0 in
    let img = Device.crash_image d ~persisted in
    incr images;
    Array.iter
      (fun l ->
        let got = Device.read_string img c ~off:(l * 64) ~len:64 in
        let expect =
          if not (persisted l) then old_of l
          else if l = 1 then
            (* Persisted line with the tear: new bytes except the torn
               word, which reverted to its pre-store contents. *)
            String.concat "" [ String.make 8 'B'; String.make 8 'b'; String.make 48 'B' ]
          else new_of l
        in
        Alcotest.(check string)
          (Printf.sprintf "mask %d line %d predicted by store log" mask l)
          expect got)
      lines
  done;
  Alcotest.(check int) "enumeration terminates at 2^n images" 8 !images;
  (* The source device is untouched by image materialisation: the stores
     are still pending and the tear still registered. *)
  Alcotest.(check int) "source still has three pending lines" 3
    (List.length (Device.pending_lines d))

let test_poison_and_repair () =
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let c = cpu () in
  Device.write_string d c ~off:128 "healthy!";
  Device.inject d (Device.Poison_line { off = 130 });
  Alcotest.(check (list int)) "line reported poisoned" [ 2 ] (Device.poisoned_lines d);
  (match Device.read_string d c ~off:128 ~len:8 with
  | _ -> Alcotest.fail "load of a poisoned line must raise"
  | exception Device.Media_error { off } -> Alcotest.(check int) "MCE at line start" 128 off);
  (* peek is no safer than read. *)
  (match Device.peek d ~off:130 ~len:1 ~dst:(Bytes.create 1) ~dst_off:0 with
  | _ -> Alcotest.fail "peek of a poisoned line must raise"
  | exception Device.Media_error _ -> ());
  (* A partial store leaves the line poisoned; a full-line store clears. *)
  Device.write_string d c ~off:128 "partial";
  Alcotest.(check (list int)) "partial store keeps poison" [ 2 ] (Device.poisoned_lines d);
  Device.write_string d c ~off:128 (String.make 64 'R');
  Alcotest.(check (list int)) "full-line store clears poison" [] (Device.poisoned_lines d);
  Alcotest.(check string) "line readable again" "RRRR" (Device.read_string d c ~off:128 ~len:4)

let test_hook_cpu_tagging () =
  (* Data events carry the accessing CPU; protocol annotations carry
     [None]. *)
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let seen = ref [] in
  let id =
    Device.add_event_hook d (fun cpu _ ev ->
        let tag = match cpu with Some (c : Cpu.t) -> c.id | None -> -1 in
        seen := (tag, ev) :: !seen)
  in
  let c3 = Cpu.make ~id:3 () in
  Device.write_u64 d c3 ~off:0 1L;
  Device.annotate d Device.Recovery_begin;
  Device.remove_event_hook d id;
  (match !seen with
  | [ (-1, Device.Protocol _); (3, Device.Store _) ] -> ()
  | _ -> Alcotest.fail "expected a cpu-tagged store then an untagged protocol event")

let test_legacy_set_event_hook () =
  (* The single-slot interface replaces only its own hook and leaves
     add_event_hook observers alone. *)
  let d = Device.create ~cost:Device.Cost.free ~size:4096 () in
  let c = cpu () in
  let multi = ref 0 and legacy1 = ref 0 and legacy2 = ref 0 in
  ignore (Device.add_event_hook d (fun _ _ _ -> incr multi));
  Device.set_event_hook d (Some (fun _ _ _ -> incr legacy1));
  Device.write_u64 d c ~off:0 1L;
  Device.set_event_hook d (Some (fun _ _ _ -> incr legacy2));
  Device.write_u64 d c ~off:0 2L;
  Device.set_event_hook d None;
  Device.write_u64 d c ~off:0 3L;
  Alcotest.(check int) "first legacy hook saw one store" 1 !legacy1;
  Alcotest.(check int) "second legacy hook replaced the first" 1 !legacy2;
  Alcotest.(check int) "multi hook saw all three" 3 !multi

let suite =
  [
    Alcotest.test_case "read/write" `Quick test_rw;
    Alcotest.test_case "multi hook fan-out" `Quick test_multi_hook;
    Alcotest.test_case "hook removal during dispatch" `Quick test_hook_removal_during_dispatch;
    Alcotest.test_case "torn word x crash subsets" `Quick test_torn_word_crash_subsets;
    Alcotest.test_case "poison line and repair" `Quick test_poison_and_repair;
    Alcotest.test_case "hook cpu tagging" `Quick test_hook_cpu_tagging;
    Alcotest.test_case "legacy set_event_hook" `Quick test_legacy_set_event_hook;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "cost accounting" `Quick test_cost_charged;
    Alcotest.test_case "crash: unflushed lost" `Quick test_crash_unflushed_lost;
    Alcotest.test_case "crash: fence makes durable" `Quick test_fence_makes_durable;
    Alcotest.test_case "crash: nt stores" `Quick test_nt_stores;
    Alcotest.test_case "crash: partial subsets" `Quick test_partial_crash_subsets;
    Alcotest.test_case "fence hook" `Quick test_fence_hook;
    Alcotest.test_case "numa cost" `Quick test_numa_cost;
    Alcotest.test_case "image save/load" `Quick test_save_load;
  ]
