(* Race detector: FastTrack happens-before + Eraser lockset over the
   scheduler monitor and the device event stream, plus seeded schedule
   exploration with deterministic replay. *)

open Repro_util
module Device = Repro_pmem.Device
module Sched = Repro_sched.Sched
module Sanitizer = Repro_sanitizer.Sanitizer
module Stats = Repro_stats.Stats
module Race = Repro_race.Race
module Scenarios = Repro_race.Scenarios

let free_dev () = Device.create ~cost:Device.Cost.free ~size:Units.base_page ()

(* An inline two-thread scenario over one annotated DRAM object. *)
let obj_scenario ?(name = "inline") body =
  { Race.sc_name = name; sc_threads = 2; sc_prepare = (fun () -> (free_dev (), body)) }

(* -------------------------------------------------------------- *)
(* Core detection                                                  *)

let test_unlocked_write_write () =
  let races =
    Race.check
      (obj_scenario (fun _cpu ->
           Sched.access ~obj:"shared" ~write:true ~site:"t.write";
           Sched.yield ();
           Sched.access ~obj:"shared" ~write:true ~site:"t.write"))
  in
  Alcotest.(check bool) "flagged" true (races <> []);
  let r = List.hd races in
  Alcotest.(check string) "location" "shared" r.Race.r_loc;
  Alcotest.(check bool) "two distinct threads" true
    (r.r_first.a_thread <> r.r_second.a_thread);
  Alcotest.(check (list int)) "first lockset empty" [] r.r_first.a_locks;
  Alcotest.(check (list int)) "second lockset empty" [] r.r_second.a_locks;
  Alcotest.(check string) "first site" "t.write" r.r_first.a_site;
  Alcotest.(check string) "second site" "t.write" r.r_second.a_site

let test_read_write_race () =
  let races =
    Race.check
      (obj_scenario (fun cpu ->
           if cpu.Cpu.id = 0 then Sched.access ~obj:"rw" ~write:true ~site:"t.write"
           else Sched.access ~obj:"rw" ~write:false ~site:"t.read";
           Sched.yield ()))
  in
  Alcotest.(check bool) "read/write flagged" true (races <> []);
  let has_read =
    List.exists
      (fun (r : Race.race) -> (not r.r_first.a_write) || not r.r_second.a_write)
      races
  in
  Alcotest.(check bool) "one side is the read" true has_read

let test_common_lock_is_clean () =
  let races =
    Race.check
      { Race.sc_name = "hb-lock";
        sc_threads = 2;
        sc_prepare =
          (fun () ->
            let m = Sched.create_mutex () in
            ( free_dev (),
              fun _cpu ->
                Sched.with_lock m (fun () ->
                    Sched.access ~obj:"guarded" ~write:true ~site:"t.guarded";
                    Sched.yield ()) ));
      }
  in
  Alcotest.(check int) "no races under a common lock" 0 (List.length races)

let test_hb_catches_distinct_locks () =
  (* Two threads write the same object under two different mutexes: the
     Eraser intersection is empty AND no happens-before edge orders the
     writes — both passes must agree it is a race, and the report must
     carry the (non-empty but disjoint) locksets. *)
  let races =
    Race.check
      { Race.sc_name = "two-locks";
        sc_threads = 2;
        sc_prepare =
          (fun () ->
            let ms = [| Sched.create_mutex (); Sched.create_mutex () |] in
            ( free_dev (),
              fun (cpu : Cpu.t) ->
                Sched.with_lock ms.(cpu.id) (fun () ->
                    Sched.access ~obj:"split" ~write:true ~site:"t.split";
                    Sched.yield ()) ));
      }
  in
  Alcotest.(check bool) "flagged" true (races <> []);
  let r = List.hd races in
  Alcotest.(check int) "first holds one lock" 1 (List.length r.Race.r_first.a_locks);
  Alcotest.(check int) "second holds one lock" 1 (List.length r.r_second.a_locks);
  Alcotest.(check bool) "locks differ" true (r.r_first.a_locks <> r.r_second.a_locks)

let test_pm_same_line_race () =
  let races = Race.check Scenarios.pm_shared_line in
  Alcotest.(check bool) "PM line race flagged" true (races <> []);
  let r = List.hd races in
  Alcotest.(check bool) "location names the PM range" true
    (String.length r.Race.r_loc > 3 && String.sub r.r_loc 0 3 = "pm:")

let test_pm_disjoint_lines_clean () =
  let races =
    Race.check
      { Race.sc_name = "pm-disjoint";
        sc_threads = 3;
        sc_prepare =
          (fun () ->
            let dev = free_dev () in
            ( dev,
              fun (cpu : Cpu.t) ->
                for i = 1 to 3 do
                  Device.write_u64 dev cpu ~off:(cpu.id * Units.cacheline) (Int64.of_int i);
                  Sched.yield ()
                done ));
      }
  in
  Alcotest.(check int) "disjoint cache lines are clean" 0 (List.length races)

(* -------------------------------------------------------------- *)
(* Scenario suite + exploration                                    *)

let test_clean_suite_50_schedules () =
  List.iter
    (fun sc ->
      let o = Race.explore ~schedules:50 ~seed:42 sc in
      Alcotest.(check int)
        (sc.Race.sc_name ^ " clean over 50 schedules")
        0 (List.length o.o_races);
      Alcotest.(check int) "schedules counted" 51 o.o_schedules)
    Scenarios.clean

let test_unlocked_alloc_flagged_with_seed () =
  (* The seeded planted bug: an unlocked cross-CPU update to a shared
     allocator structure.  Every report must name both sites, the held
     locksets, and carry a reproducing seed (baseline reports excepted). *)
  let o = Race.explore ~schedules:10 ~seed:42 Scenarios.unlocked_alloc in
  Alcotest.(check bool) "flagged" true (o.o_races <> []);
  Alcotest.(check bool) "failing seeds recorded" true (o.o_failing_seeds <> []);
  List.iter
    (fun (r : Race.race) ->
      Alcotest.(check bool) "both sites named" true
        (r.r_first.a_site <> "" && r.r_second.a_site <> "");
      let s = Race.race_to_string r in
      Alcotest.(check bool) "report prints locksets" true
        (String.length s > 0 && String.contains s '{'))
    o.o_races

let test_replay_is_deterministic () =
  let o = Race.explore ~schedules:10 ~seed:7 Scenarios.unlocked_alloc in
  let seed =
    match o.o_failing_seeds with
    | s :: _ -> s
    | [] -> Alcotest.fail "no failing seed to replay"
  in
  let norm races = List.map Race.race_to_string races in
  let a = norm (Race.check ~seed Scenarios.unlocked_alloc) in
  let b = norm (Race.check ~seed Scenarios.unlocked_alloc) in
  Alcotest.(check bool) "replay reproduces the race" true (a <> []);
  Alcotest.(check (list string)) "identical reports from the same seed" a b

let test_policy_of_seed_covers_both () =
  (match Race.policy_of_seed 4 with
  | Sched.Random_walk { seed = 4 } -> ()
  | _ -> Alcotest.fail "even seed should map to Random_walk");
  match Race.policy_of_seed 7 with
  | Sched.Pct { seed = 7 } -> ()
  | _ -> Alcotest.fail "odd seed should map to Pct"

let test_detach_restores_hooks () =
  let dev = free_dev () in
  let det = Race.attach dev in
  Race.detach det;
  Alcotest.(check bool) "monitor uninstalled" false (Sched.monitored ());
  (* A post-detach run must observe nothing new. *)
  let before = Race.accesses_checked det in
  ignore
    (Sched.run ~threads:2 (fun cpu -> Device.write_u64 dev cpu ~off:0 1L));
  Alcotest.(check int) "no events after detach" before (Race.accesses_checked det)

(* -------------------------------------------------------------- *)
(* Hook composition + stats                                        *)

let test_hooks_compose () =
  (* Sanitizer + race detector + an ad-hoc counting hook on one device:
     each must observe every event.  The counting hooks are installed
     before and after the other observers and must agree exactly. *)
  let dev = free_dev () in
  let first = ref 0 and last = ref 0 in
  let h1 = Device.add_event_hook dev (fun _ _ _ -> incr first) in
  let san = Sanitizer.attach dev in
  let det = Race.attach dev in
  let h2 = Device.add_event_hook dev (fun _ _ _ -> incr last) in
  ignore
    (Sched.run ~threads:2 (fun (cpu : Cpu.t) ->
         let off = cpu.id * Units.cacheline in
         Device.write_u64 dev cpu ~off 99L;
         Device.persist dev cpu ~off ~len:8;
         Sched.yield ()));
  Race.detach det;
  let diags = Sanitizer.finish san in
  Sanitizer.detach san;
  Device.remove_event_hook dev h1;
  Device.remove_event_hook dev h2;
  Alcotest.(check bool) "events flowed" true (!first > 0);
  Alcotest.(check int) "all hooks saw every event" !first !last;
  Alcotest.(check bool) "race detector observed the stores" true
    (Race.accesses_checked det > 0);
  Alcotest.(check int) "race detector found nothing" 0 (Race.races_found det);
  Alcotest.(check int) "sanitizer ran clean" 0
    (List.length (List.filter (fun (d : Sanitizer.diag) -> d.severity = Sanitizer.Error) diags))

let test_stats_counters_published () =
  Stats.reset ();
  Stats.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Stats.set_enabled false;
      Stats.reset ())
    (fun () ->
      let o = Race.explore ~schedules:3 ~seed:11 Scenarios.unlocked_alloc in
      Alcotest.(check bool) "sanity: explore found the bug" true (o.o_races <> []);
      Alcotest.(check bool) "accesses counted" true
        (Stats.Counter.get (Stats.Counter.v "race.accesses_checked") > 0);
      Alcotest.(check bool) "races counted" true
        (Stats.Counter.get (Stats.Counter.v "race.races_found") > 0);
      Alcotest.(check int) "schedules counted" 4
        (Stats.Counter.get (Stats.Counter.v "race.schedules_explored")))

let suite =
  [
    Alcotest.test_case "unlocked write/write race" `Quick test_unlocked_write_write;
    Alcotest.test_case "read/write race" `Quick test_read_write_race;
    Alcotest.test_case "common lock is clean" `Quick test_common_lock_is_clean;
    Alcotest.test_case "distinct locks still race" `Quick test_hb_catches_distinct_locks;
    Alcotest.test_case "PM same-line race" `Quick test_pm_same_line_race;
    Alcotest.test_case "PM disjoint lines clean" `Quick test_pm_disjoint_lines_clean;
    Alcotest.test_case "clean suite over 50 schedules" `Slow test_clean_suite_50_schedules;
    Alcotest.test_case "planted allocator race flagged" `Quick
      test_unlocked_alloc_flagged_with_seed;
    Alcotest.test_case "seed replay deterministic" `Quick test_replay_is_deterministic;
    Alcotest.test_case "policy_of_seed covers both" `Quick test_policy_of_seed_covers_both;
    Alcotest.test_case "detach restores hooks" `Quick test_detach_restores_hooks;
    Alcotest.test_case "device hooks compose" `Quick test_hooks_compose;
    Alcotest.test_case "stats counters published" `Quick test_stats_counters_published;
  ]
