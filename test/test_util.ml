(* Unit and property tests for the util library: clock, RNG determinism,
   histograms, distributions, counters, units. *)

open Repro_util

let test_clock () =
  let c = Simclock.create () in
  Alcotest.(check int) "starts at zero" 0 (Simclock.now c);
  Simclock.advance c 100;
  Simclock.advance c 50;
  Alcotest.(check int) "accumulates" 150 (Simclock.now c);
  Simclock.advance_to c 120;
  Alcotest.(check int) "advance_to backwards is a no-op" 150 (Simclock.now c);
  Simclock.advance_to c 500;
  Alcotest.(check int) "advance_to forward" 500 (Simclock.now c);
  Alcotest.check_raises "negative advance rejected"
    (Invalid_argument "Simclock.advance: negative duration") (fun () ->
      Simclock.advance c (-1));
  Simclock.reset c;
  Alcotest.(check int) "reset" 0 (Simclock.now c)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (Rng.int64 a <> Rng.int64 c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0. && f < 2.5)
  done

let test_rng_shuffle () =
  let r = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h i
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check int) "median" 50 (Histogram.percentile h 50.);
  Alcotest.(check int) "p90" 90 (Histogram.percentile h 90.);
  Alcotest.(check int) "p100" 100 (Histogram.percentile h 100.);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check (float 0.01)) "mean" 50.5 (Histogram.mean h)

let test_histogram_empty () =
  (* An unpopulated histogram must render as zeros, not leak the max_int
     sentinel from the untouched min field. *)
  List.iter
    (fun exact ->
      let h = Histogram.create ~exact () in
      Alcotest.(check int) "count" 0 (Histogram.count h);
      Alcotest.(check int) "min" 0 (Histogram.min_value h);
      Alcotest.(check int) "p0" 0 (Histogram.percentile h 0.);
      Alcotest.(check int) "p50" 0 (Histogram.percentile h 50.);
      Alcotest.(check int) "p99.9" 0 (Histogram.percentile h 99.9);
      Alcotest.(check (float 0.001)) "mean" 0. (Histogram.mean h))
    [ true; false ]

let test_histogram_cdf () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10; 20; 30; 40 ];
  let cdf = Histogram.cdf h ~points:4 in
  Alcotest.(check int) "cdf points" 4 (List.length cdf);
  let fracs = List.map snd cdf in
  Alcotest.(check bool) "cdf non-decreasing" true
    (List.for_all2 ( <= ) fracs (List.tl fracs @ [ 1.0 ]));
  Alcotest.(check (float 0.001)) "last point is 1" 1.0 (List.nth fracs 3)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 3 ];
  List.iter (Histogram.add b) [ 4; 5 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Histogram.count m);
  Alcotest.(check int) "merged max" 5 (Histogram.max_value m)

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.add c "a" 4;
  Counters.add c "b" 2;
  Alcotest.(check int) "get a" 5 (Counters.get c "a");
  Alcotest.(check int) "missing is 0" 0 (Counters.get c "zzz");
  let before = Counters.snapshot c in
  Counters.add c "a" 10;
  Counters.incr c "c";
  let after = Counters.snapshot c in
  let d = Counters.diff ~before ~after in
  Alcotest.(check int) "diff a" 10 (List.assoc "a" d);
  Alcotest.(check int) "diff c" 1 (List.assoc "c" d);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.get c "a")

let test_units () =
  Alcotest.(check int) "round_up" 8192 (Units.round_up 4097 4096);
  Alcotest.(check int) "round_up exact" 4096 (Units.round_up 4096 4096);
  Alcotest.(check int) "round_down" 4096 (Units.round_down 8191 4096);
  Alcotest.(check bool) "aligned" true (Units.is_aligned (2 * Units.mib) Units.huge_page);
  Alcotest.(check bool) "not aligned" false (Units.is_aligned 4096 Units.huge_page)

let test_dist_zipf () =
  let r = Rng.create 11 in
  let z = Dist.zipf ~n:1000 ~theta:0.99 in
  let counts = Array.make 1001 0 in
  for _ = 1 to 20_000 do
    let v = Dist.sample z r in
    Alcotest.(check bool) "zipf in range" true (v >= 1 && v <= 1000);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 1 must dominate rank 100 heavily. *)
  Alcotest.(check bool) "zipf skew" true (counts.(1) > counts.(100) * 5)

let test_dist_mixture () =
  let r = Rng.create 13 in
  let d = Dist.mixture [ (0.5, Dist.constant 1); (0.5, Dist.constant 1000) ] in
  let small = ref 0 and big = ref 0 in
  for _ = 1 to 1000 do
    match Dist.sample d r with
    | 1 -> incr small
    | 1000 -> incr big
    | v -> Alcotest.failf "unexpected sample %d" v
  done;
  Alcotest.(check bool) "mixture balanced" true (!small > 300 && !big > 300)

let test_dist_lognormal_clamped () =
  let r = Rng.create 17 in
  let d = Dist.lognormal ~mu:9. ~sigma:2. ~min:64 ~max:4096 in
  for _ = 1 to 1000 do
    let v = Dist.sample d r in
    Alcotest.(check bool) "lognormal clamped" true (v >= 64 && v <= 4096)
  done

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "fs"; "MB/s" ] in
  Table.add_row t [ "WineFS"; "123.4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "oops" ])

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 100000))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Repro_util.Histogram.create () in
      List.iter (Repro_util.Histogram.add h) samples;
      let ps = [ 1.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let vals = List.map (Repro_util.Histogram.percentile h) ps in
      List.for_all2 ( <= ) vals (List.tl vals @ [ max_int ]))

let test_histogram_bucketed () =
  (* Non-exact mode: bounded memory, approximate percentiles. *)
  let h = Histogram.create ~exact:false () in
  for i = 1 to 10_000 do
    Histogram.add h i
  done;
  let p50 = Histogram.percentile h 50. in
  Alcotest.(check bool)
    (Printf.sprintf "bucketed median ~5000 (%d)" p50)
    true
    (p50 > 3000 && p50 < 8000);
  Alcotest.(check int) "min exact" 1 (Histogram.min_value h);
  Alcotest.(check int) "max exact" 10_000 (Histogram.max_value h)

let test_rng_split_pick () =
  let parent = Rng.create 5 in
  let childa = Rng.split parent in
  let childb = Rng.split parent in
  Alcotest.(check bool) "children independent" true (Rng.int64 childa <> Rng.int64 childb);
  let r = Rng.create 6 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick in array" true (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_dist_constants () =
  let r = Rng.create 8 in
  Alcotest.(check int) "constant" 42 (Dist.sample (Dist.constant 42) r);
  let u = Dist.uniform ~lo:5 ~hi:7 in
  for _ = 1 to 100 do
    let v = Dist.sample u r in
    Alcotest.(check bool) "uniform bounds" true (v >= 5 && v <= 7)
  done;
  let m = Dist.mean_estimate (Dist.constant 10) r ~samples:50 in
  Alcotest.(check (float 0.01)) "mean estimate" 10.0 m

let test_simclock_span () =
  let s = Simclock.span () in
  Simclock.record s 100;
  Simclock.record s 300;
  Alcotest.(check (float 0.01)) "span mean" 200. (Simclock.mean_ns s)

let test_cpu_context () =
  let c = Cpu.make ~id:3 ~node:1 () in
  Alcotest.(check int) "id" 3 c.Cpu.id;
  Alcotest.(check int) "node" 1 c.node;
  Simclock.advance c.clock 77;
  Alcotest.(check int) "now" 77 (Cpu.now c);
  Alcotest.check_raises "negative id" (Invalid_argument "Cpu.make: negative id") (fun () ->
      ignore (Cpu.make ~id:(-1) ()))

let suite =
  [
    Alcotest.test_case "histogram bucketed" `Quick test_histogram_bucketed;
    Alcotest.test_case "rng split and pick" `Quick test_rng_split_pick;
    Alcotest.test_case "dist constants" `Quick test_dist_constants;
    Alcotest.test_case "simclock span" `Quick test_simclock_span;
    Alcotest.test_case "cpu context" `Quick test_cpu_context;
    Alcotest.test_case "simclock" `Quick test_clock;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram empty renders zeros" `Quick test_histogram_empty;
    Alcotest.test_case "histogram cdf" `Quick test_histogram_cdf;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "zipf distribution" `Quick test_dist_zipf;
    Alcotest.test_case "mixture distribution" `Quick test_dist_mixture;
    Alcotest.test_case "lognormal clamped" `Quick test_dist_lognormal_clamped;
    Alcotest.test_case "table render" `Quick test_table_render;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
  ]
