(* Flat substrate: differential tests of the open-addressing table and the
   sorted-run extent index against their reference structures, plus the
   O(flushed) fence-sweep scaling contract.

   Every stream is seeded, so a failure replays exactly. *)

open Repro_util
module Device = Repro_pmem.Device
module Extent_tree = Repro_rbtree.Extent_tree
module Extent_tree_ref = Repro_rbtree.Extent_tree_ref

let cpu () = Cpu.make ~id:0 ()

(* ------------------------------------------------------------------ *)
(* Flat_table vs Hashtbl                                               *)

let check_table_invariants t =
  match Flat_table.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "Flat_table invariant broken: %s" m

let test_table_differential () =
  let rng = Random.State.make [| 0x5eed |] in
  let flat = Flat_table.create ~capacity:8 ~dummy:(-1) () in
  let refr : (int, int) Hashtbl.t = Hashtbl.create 8 in
  for step = 1 to 20_000 do
    let k = Random.State.int rng 512 in
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let v = Random.State.int rng 1_000_000 in
        Flat_table.set flat k v;
        Hashtbl.replace refr k v
    | 4 | 5 ->
        Flat_table.remove flat k;
        Hashtbl.remove refr k
    | 6 ->
        Alcotest.(check bool)
          (Printf.sprintf "step %d: mem %d" step k)
          (Hashtbl.mem refr k) (Flat_table.mem flat k)
    | 7 ->
        Alcotest.(check (option int))
          (Printf.sprintf "step %d: find %d" step k)
          (Hashtbl.find_opt refr k) (Flat_table.find flat k)
    | 8 ->
        Alcotest.(check int)
          (Printf.sprintf "step %d: get %d" step k)
          (Option.value (Hashtbl.find_opt refr k) ~default:(-7))
          (Flat_table.get flat k ~default:(-7))
    | _ ->
        Alcotest.(check int)
          (Printf.sprintf "step %d: length" step)
          (Hashtbl.length refr) (Flat_table.length flat));
    if step mod 2_000 = 0 then begin
      check_table_invariants flat;
      let keys_ref = Hashtbl.fold (fun k _ acc -> k :: acc) refr [] |> List.sort Int.compare in
      Alcotest.(check (list int))
        (Printf.sprintf "step %d: key sets" step)
        keys_ref (Flat_table.keys_sorted flat)
    end
  done

let test_table_tombstone_chains () =
  (* Fill a probe chain, delete the middle, and confirm lookups walk past
     the tombstone; then reinsert into the tombstone slot. *)
  let t = Flat_table.create ~capacity:8 ~dummy:"" () in
  let keys = List.init 6 (fun i -> i * 97) in
  List.iter (fun k -> Flat_table.set t k (string_of_int k)) keys;
  List.iter
    (fun k -> Alcotest.(check (option string)) "present" (Some (string_of_int k)) (Flat_table.find t k))
    keys;
  Flat_table.remove t 97;
  Flat_table.remove t 291;
  check_table_invariants t;
  List.iter
    (fun k ->
      let expect = if k = 97 || k = 291 then None else Some (string_of_int k) in
      Alcotest.(check (option string)) "after deletes" expect (Flat_table.find t k))
    keys;
  Flat_table.set t 97 "back";
  Alcotest.(check (option string)) "reinserted over tombstone" (Some "back") (Flat_table.find t 97);
  check_table_invariants t

let test_table_growth_and_clear () =
  let t = Flat_table.create ~capacity:8 ~dummy:0 () in
  for k = 0 to 999 do
    Flat_table.set t k (k * 3)
  done;
  Alcotest.(check int) "all live" 1000 (Flat_table.length t);
  Alcotest.(check bool) "load factor held" true (Flat_table.length t * 4 <= Flat_table.capacity t * 3);
  check_table_invariants t;
  for k = 0 to 999 do
    Alcotest.(check int) "value survives growth" (k * 3) (Flat_table.get t k ~default:(-1))
  done;
  (* Heavy delete/reinsert churn at fixed size: tombstone rehash must keep
     the table bounded rather than growing forever. *)
  for round = 0 to 99 do
    for k = 0 to 999 do
      Flat_table.remove t k;
      Flat_table.set t (k + (round land 1)) k
    done
  done;
  check_table_invariants t;
  Alcotest.(check bool) "capacity bounded under churn" true (Flat_table.capacity t <= 4096);
  Flat_table.clear t;
  Alcotest.(check int) "cleared" 0 (Flat_table.length t);
  Alcotest.(check (list int)) "no keys" [] (Flat_table.keys_sorted t);
  check_table_invariants t

let test_table_copy_independent () =
  let t = Flat_table.create ~capacity:8 ~dummy:0 () in
  Flat_table.set t 1 10;
  Flat_table.set t 2 20;
  let c = Flat_table.copy t in
  Flat_table.remove t 1;
  Flat_table.set t 2 99;
  Alcotest.(check (option int)) "copy keeps removed key" (Some 10) (Flat_table.find c 1);
  Alcotest.(check (option int)) "copy keeps old value" (Some 20) (Flat_table.find c 2);
  check_table_invariants c

let test_table_rejects_negative () =
  let t = Flat_table.create ~dummy:0 () in
  Alcotest.(check bool) "negative key rejected" true
    (match Flat_table.set t (-3) 1 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Flat_vec                                                            *)

let test_vec_basics () =
  let v = Flat_vec.create ~capacity:2 () in
  for i = 0 to 99 do
    Flat_vec.push v (99 - i)
  done;
  Alcotest.(check int) "length" 100 (Flat_vec.length v);
  Alcotest.(check int) "get" 99 (Flat_vec.get v 0);
  Flat_vec.sort v;
  Alcotest.(check (list int)) "sorted" (List.init 100 Fun.id) (Flat_vec.to_list v);
  Flat_vec.clear v;
  Alcotest.(check int) "cleared" 0 (Flat_vec.length v);
  Flat_vec.push v 7;
  Alcotest.(check (list int)) "reusable after clear" [ 7 ] (Flat_vec.to_list v)

(* ------------------------------------------------------------------ *)
(* Extent_tree vs Extent_tree_ref                                      *)

let check_tree_invariants tr =
  match Extent_tree.check_invariants tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "Extent_tree invariant broken: %s" m

let same_state step flat refr =
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "step %d: extents" step)
    (Extent_tree_ref.to_list refr) (Extent_tree.to_list flat);
  Alcotest.(check int)
    (Printf.sprintf "step %d: total_free" step)
    (Extent_tree_ref.total_free refr) (Extent_tree.total_free flat);
  Alcotest.(check int)
    (Printf.sprintf "step %d: largest" step)
    (Extent_tree_ref.largest refr) (Extent_tree.largest flat)

let test_extent_differential () =
  let rng = Random.State.make [| 0xa110c |] in
  let blk = 4096 in
  let huge = Units.huge_page in
  let space = 64 * Units.mib in
  let flat = Extent_tree.create () in
  let refr = Extent_tree_ref.create () in
  Extent_tree.insert_free flat ~off:0 ~len:space;
  Extent_tree_ref.insert_free refr ~off:0 ~len:space;
  let both_free ~off ~len =
    (* Double frees must be rejected identically. *)
    let a = match Extent_tree.insert_free flat ~off ~len with
      | () -> true
      | exception Invalid_argument _ -> false
    in
    let b = match Extent_tree_ref.insert_free refr ~off ~len with
      | () -> true
      | exception Invalid_argument _ -> false
    in
    Alcotest.(check bool) "free accepted identically" b a
  in
  let opt_eq step what a b =
    Alcotest.(check (option int)) (Printf.sprintf "step %d: %s" step what) b a
  in
  for step = 1 to 4_000 do
    let len = blk * (1 + Random.State.int rng 256) in
    let goal = blk * Random.State.int rng (space / blk) in
    (match Random.State.int rng 12 with
    | 0 | 1 ->
        opt_eq step "first_fit"
          (Extent_tree.alloc_first_fit flat ~len)
          (Extent_tree_ref.alloc_first_fit refr ~len)
    | 2 | 3 ->
        opt_eq step "best_fit"
          (Extent_tree.alloc_best_fit flat ~len)
          (Extent_tree_ref.alloc_best_fit refr ~len)
    | 4 | 5 ->
        opt_eq step "near"
          (Extent_tree.alloc_near flat ~goal ~len)
          (Extent_tree_ref.alloc_near refr ~goal ~len)
    | 6 ->
        opt_eq step "aligned"
          (Extent_tree.alloc_aligned flat ~len ~align:huge)
          (Extent_tree_ref.alloc_aligned refr ~len ~align:huge)
    | 7 ->
        let window = huge * (1 + Random.State.int rng 8) in
        opt_eq step "aligned_near"
          (Extent_tree.alloc_aligned_near flat ~goal ~window ~len ~align:huge)
          (Extent_tree_ref.alloc_aligned_near refr ~goal ~window ~len ~align:huge)
    | 8 ->
        Alcotest.(check bool)
          (Printf.sprintf "step %d: exact" step)
          (Extent_tree_ref.alloc_exact refr ~off:goal ~len)
          (Extent_tree.alloc_exact flat ~off:goal ~len)
    | 9 | 10 -> both_free ~off:goal ~len
    | _ ->
        Alcotest.(check (option (pair int int)))
          (Printf.sprintf "step %d: extent_at" step)
          (Extent_tree_ref.extent_at refr ~off:goal)
          (Extent_tree.extent_at flat ~off:goal);
        Alcotest.(check int)
          (Printf.sprintf "step %d: aligned census" step)
          (Extent_tree_ref.aligned_region_count refr ~align:huge)
          (Extent_tree.aligned_region_count flat ~align:huge));
    if step mod 500 = 0 then begin
      check_tree_invariants flat;
      same_state step flat refr
    end
  done;
  same_state 4_000 flat refr

let test_extent_coalesce_exact () =
  (* The classic shapes: merge left, merge right, merge both, carve middle. *)
  let t = Extent_tree.create () in
  Extent_tree.insert_free t ~off:0 ~len:4096;
  Extent_tree.insert_free t ~off:8192 ~len:4096;
  Alcotest.(check int) "two extents" 2 (Extent_tree.extent_count t);
  Extent_tree.insert_free t ~off:4096 ~len:4096;
  Alcotest.(check (list (pair int int))) "merged both" [ (0, 12288) ] (Extent_tree.to_list t);
  Alcotest.(check bool) "carve middle" true (Extent_tree.alloc_exact t ~off:4096 ~len:4096);
  Alcotest.(check (list (pair int int))) "split back"
    [ (0, 4096); (8192, 4096) ]
    (Extent_tree.to_list t);
  check_tree_invariants t

(* ------------------------------------------------------------------ *)
(* Fence sweep scales with flushed lines, not pending lines            *)

let test_fence_sweep_scaling () =
  let d = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  Device.set_tracking d true;
  let cl = Units.cacheline in
  (* Dirty many lines, flush few: the sweep must only visit the flushed. *)
  let pending = 1_000 and flushed = 10 in
  for i = 0 to pending - 1 do
    Device.write_string d c ~off:(i * cl) "x"
  done;
  Device.flush d c ~off:0 ~len:(flushed * cl);
  let v0 = Device.fence_sweep_visits d in
  Device.fence d c;
  let visited = Device.fence_sweep_visits d - v0 in
  Alcotest.(check int) "sweep visits = flushed lines" flushed visited;
  Alcotest.(check int) "unflushed still pending" (pending - flushed)
    (List.length (Device.pending_lines d));
  (* A fence with nothing newly flushed sweeps nothing. *)
  let v1 = Device.fence_sweep_visits d in
  Device.fence d c;
  Alcotest.(check int) "empty fence sweeps nothing" 0 (Device.fence_sweep_visits d - v1);
  (* NT stores count as flushed-at-fence, and re-dirtying a flushed line
     un-flushes it: the stale sweep entry must not commit it. *)
  Device.write_string_nt d c ~off:(2_000 * cl) "nt";
  Device.flush d c ~off:(100 * cl) ~len:cl;
  Device.write_string d c ~off:(100 * cl) "y" (* dirty again: must survive fence *);
  let v2 = Device.fence_sweep_visits d in
  Device.fence d c;
  Alcotest.(check int) "nt + stale entry visited" 2 (Device.fence_sweep_visits d - v2);
  Alcotest.(check bool) "re-dirtied line still pending" true
    (List.mem 100 (Device.pending_lines d));
  Alcotest.(check bool) "nt line committed" true
    (not (List.mem 2_000 (Device.pending_lines d)))

let suite =
  [
    Alcotest.test_case "table: differential vs Hashtbl" `Quick test_table_differential;
    Alcotest.test_case "table: tombstone chains" `Quick test_table_tombstone_chains;
    Alcotest.test_case "table: growth, churn, clear" `Quick test_table_growth_and_clear;
    Alcotest.test_case "table: copy independent" `Quick test_table_copy_independent;
    Alcotest.test_case "table: negative key rejected" `Quick test_table_rejects_negative;
    Alcotest.test_case "vec: basics" `Quick test_vec_basics;
    Alcotest.test_case "extents: differential vs rbtree" `Quick test_extent_differential;
    Alcotest.test_case "extents: coalesce and exact" `Quick test_extent_coalesce_exact;
    Alcotest.test_case "fence sweep scales with flushed" `Quick test_fence_sweep_scaling;
  ]
