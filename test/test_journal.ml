(* Journal substrate: undo journal transactions, abort, wraparound,
   crash recovery; redo journal commit and replay. *)

open Repro_util
module Device = Repro_pmem.Device
module Undo = Repro_journal.Undo_journal
module Redo = Repro_journal.Redo_journal

let cpu () = Cpu.make ~id:0 ()
let data_base = 512 * 1024

let mk_undo ?(entries = 32) () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  let counter = Undo.Txn_counter.create () in
  let j = Undo.format dev c counter ~off:0 ~entries ~copy_bytes:(64 * Units.kib) in
  (dev, c, j)

let test_commit_keeps_update () =
  let dev, c, j = mk_undo () in
  Device.write_string dev c ~off:data_base "old-value";
  let txn = Undo.begin_txn j c ~reserve:4 in
  Undo.log_range j c txn ~addr:data_base ~len:9;
  Device.write_string dev c ~off:data_base "new-value";
  Undo.commit j c txn;
  Alcotest.(check string) "committed" "new-value" (Device.read_string dev c ~off:data_base ~len:9);
  Alcotest.(check bool) "nothing pending" true (Undo.Recovery.scan_pending j c = None)

let test_abort_rolls_back () =
  let dev, c, j = mk_undo () in
  Device.write_string dev c ~off:data_base "old-value";
  let txn = Undo.begin_txn j c ~reserve:4 in
  Undo.log_range j c txn ~addr:data_base ~len:9;
  Device.write_string dev c ~off:data_base "new-value";
  Undo.abort j c txn;
  Alcotest.(check string) "rolled back" "old-value" (Device.read_string dev c ~off:data_base ~len:9)

let test_crash_recovery_rolls_back () =
  let dev, c, j = mk_undo () in
  Device.write_string dev c ~off:data_base "AAAABBBB";
  let txn = Undo.begin_txn j c ~reserve:4 in
  Undo.log_range j c txn ~addr:data_base ~len:8;
  Device.write_string dev c ~off:data_base "XXXXYYYY";
  (* Crash before commit: a fresh attach scans and rolls back. *)
  let counter = Undo.Txn_counter.create () in
  let j2 = Undo.attach dev counter ~off:0 ~entries:32 ~copy_bytes:(64 * Units.kib) in
  (match Undo.Recovery.scan_pending j2 c with
  | Some p ->
      Alcotest.(check bool) "records found" true (p.records <> []);
      Undo.Recovery.rollback_pending j2 c p
  | None -> Alcotest.fail "expected a pending transaction");
  Alcotest.(check string) "recovered" "AAAABBBB" (Device.read_string dev c ~off:data_base ~len:8);
  Alcotest.(check bool) "clean after rollback" true (Undo.Recovery.scan_pending j2 c = None)

let test_large_undo_via_copy_area () =
  let dev, c, j = mk_undo () in
  Device.write_string dev c ~off:data_base (String.make 4096 'o');
  let txn = Undo.begin_txn j c ~reserve:4 in
  Undo.log_range j c txn ~addr:data_base ~len:4096;
  Device.write_string dev c ~off:data_base (String.make 4096 'n');
  (* Crash + recover. *)
  let counter = Undo.Txn_counter.create () in
  let j2 = Undo.attach dev counter ~off:0 ~entries:32 ~copy_bytes:(64 * Units.kib) in
  (match Undo.Recovery.scan_pending j2 c with
  | Some p -> Undo.Recovery.rollback_pending j2 c p
  | None -> Alcotest.fail "pending expected");
  ignore txn;
  Alcotest.(check string) "large range restored" (String.make 8 'o')
    (Device.read_string dev c ~off:data_base ~len:8)

let test_wraparound () =
  let dev, c, j = mk_undo ~entries:8 () in
  (* Many committed transactions cycle the ring several times. *)
  for i = 1 to 50 do
    Device.write_string dev c ~off:(data_base + (i * 64)) "v0";
    let txn = Undo.begin_txn j c ~reserve:4 in
    Undo.log_range j c txn ~addr:(data_base + (i * 64)) ~len:2;
    Device.write_string dev c ~off:(data_base + (i * 64)) "v1";
    Undo.commit j c txn
  done;
  Alcotest.(check bool) "clean after many wraps" true (Undo.Recovery.scan_pending j c = None);
  (* And a crash after wraps still recovers. *)
  let txn = Undo.begin_txn j c ~reserve:4 in
  Undo.log_range j c txn ~addr:data_base ~len:2;
  Device.write_string dev c ~off:data_base "zz";
  let counter = Undo.Txn_counter.create () in
  let j2 = Undo.attach dev counter ~off:0 ~entries:8 ~copy_bytes:(64 * Units.kib) in
  (match Undo.Recovery.scan_pending j2 c with
  | Some p -> Undo.Recovery.rollback_pending j2 c p
  | None -> Alcotest.fail "pending expected after wrap");
  ignore txn;
  Alcotest.(check bool) "rolled back after wrap" true
    (Device.read_string dev c ~off:data_base ~len:2 <> "zz")

let test_reservation_enforced () =
  let _, c, j = mk_undo () in
  let txn = Undo.begin_txn j c ~reserve:1 in
  Undo.log_range j c txn ~addr:data_base ~len:8;
  Alcotest.(check bool) "over-reserve rejected" true
    (match Undo.log_range j c txn ~addr:(data_base + 64) ~len:8 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Undo.commit j c txn

let test_global_txn_ids () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  let counter = Undo.Txn_counter.create () in
  let j1 = Undo.format dev c counter ~off:0 ~entries:16 ~copy_bytes:8192 in
  let j2 = Undo.format dev c counter ~off:65536 ~entries:16 ~copy_bytes:8192 in
  let t1 = Undo.begin_txn j1 c ~reserve:2 in
  Undo.commit j1 c t1;
  let t2 = Undo.begin_txn j2 c ~reserve:2 in
  Undo.commit j2 c t2;
  Alcotest.(check bool) "ids strictly increase across journals" true
    (Undo.Txn_counter.peek counter >= 3)

(* --- redo journal --- *)

let test_redo_commit_applies () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  let j = Redo.format dev c ~off:0 ~size:(128 * Units.kib) in
  Redo.add j c ~addr:data_base ~data:"committed!";
  Alcotest.(check int) "buffered" 1 (Redo.running_records j);
  Redo.commit j c;
  Alcotest.(check string) "checkpointed in place" "committed!"
    (Device.read_string dev c ~off:data_base ~len:10);
  Alcotest.(check int) "drained" 0 (Redo.running_records j)

let test_redo_replay () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  let j = Redo.format dev c ~off:0 ~size:(128 * Units.kib) in
  Redo.add j c ~addr:data_base ~data:"replayed";
  Redo.commit j c;
  (* Simulate losing the in-place checkpoint: clobber it, then replay. *)
  Device.write_string dev c ~off:data_base "????????";
  (* Attach with pre-commit header state: rewind head/seq by re-attaching
     a fresh journal view pointing at the same ring start. *)
  let j2 = Redo.attach dev ~off:0 ~size:(128 * Units.kib) in
  ignore j2;
  (* The committed transaction is already checkpointed and reclaimed in
     this design, so recovery finds nothing to replay — uncommitted
     buffered records are simply lost. *)
  let j3 = Redo.attach dev ~off:0 ~size:(128 * Units.kib) in
  Alcotest.(check int) "nothing to replay after checkpoint" 0 (Redo.recover j3 c)

let test_redo_uncommitted_lost () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
  let c = cpu () in
  let j = Redo.format dev c ~off:0 ~size:(128 * Units.kib) in
  Redo.add j c ~addr:data_base ~data:"never-committed";
  (* No commit: attach elsewhere, nothing replays, location untouched. *)
  let j2 = Redo.attach dev ~off:0 ~size:(128 * Units.kib) in
  Alcotest.(check int) "no replay" 0 (Redo.recover j2 c);
  Alcotest.(check string) "in-place unmodified" (String.make 4 '\000')
    (Device.read_string dev c ~off:data_base ~len:4)

(* Property: arbitrary logged-update sequences either fully apply
   (commit) or fully revert (crash before commit). *)
let prop_undo_crash_all_or_nothing =
  QCheck.Test.make ~name:"undo journal: crash reverts everything" ~count:60
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_bound 63) (int_range 1 48)))
    (fun updates ->
      let dev = Device.create ~cost:Device.Cost.free ~size:(1 * Units.mib) () in
      let c = Cpu.make ~id:0 () in
      let counter = Undo.Txn_counter.create () in
      let j = Undo.format dev c counter ~off:0 ~entries:64 ~copy_bytes:(64 * Units.kib) in
      (* Initial state. *)
      List.iteri
        (fun i (slot, len) ->
          ignore i;
          Device.write_string dev c ~off:(data_base + (slot * 64)) (String.make len 'I'))
        updates;
      let before =
        List.map
          (fun (slot, len) -> Device.read_string dev c ~off:(data_base + (slot * 64)) ~len)
          updates
      in
      (* Transaction that overwrites everything, then crashes. *)
      let txn = Undo.begin_txn j c ~reserve:16 in
      List.iter
        (fun (slot, len) ->
          Undo.log_range j c txn ~addr:(data_base + (slot * 64)) ~len;
          Device.write_string dev c ~off:(data_base + (slot * 64)) (String.make len 'N'))
        updates;
      ignore txn;
      (* Crash: attach fresh, recover. *)
      let j2 = Undo.attach dev (Undo.Txn_counter.create ()) ~off:0 ~entries:64
                 ~copy_bytes:(64 * Units.kib) in
      (match Undo.Recovery.scan_pending j2 c with
      | Some p -> Undo.Recovery.rollback_pending j2 c p
      | None -> QCheck.Test.fail_report "no pending transaction found");
      let after =
        List.map
          (fun (slot, len) -> Device.read_string dev c ~off:(data_base + (slot * 64)) ~len)
          updates
      in
      before = after)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_undo_crash_all_or_nothing;
    Alcotest.test_case "undo: commit keeps update" `Quick test_commit_keeps_update;
    Alcotest.test_case "undo: abort rolls back" `Quick test_abort_rolls_back;
    Alcotest.test_case "undo: crash recovery" `Quick test_crash_recovery_rolls_back;
    Alcotest.test_case "undo: copy-area records" `Quick test_large_undo_via_copy_area;
    Alcotest.test_case "undo: ring wraparound" `Quick test_wraparound;
    Alcotest.test_case "undo: reservation enforced" `Quick test_reservation_enforced;
    Alcotest.test_case "undo: global txn ids" `Quick test_global_txn_ids;
    Alcotest.test_case "redo: commit applies" `Quick test_redo_commit_applies;
    Alcotest.test_case "redo: post-checkpoint recovery" `Quick test_redo_replay;
    Alcotest.test_case "redo: uncommitted lost" `Quick test_redo_uncommitted_lost;
  ]
