(* Golden-image regression test for the layered core refactor.

   One fixed, deterministic workload (strict mode, free cost model, 2
   CPUs) is replayed against WineFS; the resulting PM image CRC32C and
   the full operation/byte counter snapshot must match values captured
   before the Txn/Inode/Extent_map/Datapath/Namespace split.  Any drift
   in journal traffic, allocation order, on-PM encodings or counter
   accounting shows up here as a byte-level diff. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs = Winefs.Fs

let mib = Units.mib

(* Deterministic payload: same bytes on every run. *)
let pattern n seed = String.init n (fun i -> Char.chr ((i + (31 * seed)) land 0xff))

let expected_image_crc = 0x5d8dd747

let expected_counters =
  [
    ("fs.alloc_bytes", 4354048);
    ("fs.cow_bytes", 12288);
    ("fs.create", 22);
    ("fs.data_journal_bytes", 70000);
    ("fs.fallocate", 1);
    ("fs.fsync", 21);
    ("fs.ftruncate", 2);
    ("fs.mkdir", 2);
    ("fs.read_bytes", 80000);
    ("fs.rename", 1);
    ("fs.unlink", 7);
    ("fs.write_bytes", 204808);
  ]

let run_workload () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(64 * mib) () in
  let cfg = Types.config ~cpus:2 ~mode:Types.Strict ~inodes_per_cpu:256 () in
  let fs = Fs.format dev cfg in
  let c0 = Cpu.make ~id:0 () in
  let c1 = Cpu.make ~id:1 () in
  Fs.mkdir fs c0 "/d";
  Fs.mkdir fs c0 "/d/sub";
  let fd = Fs.create fs c0 "/d/file" in
  ignore (Fs.pwrite fs c0 fd ~off:0 ~src:(pattern 10_000 1));
  ignore (Fs.pwrite fs c0 fd ~off:4096 ~src:(pattern 8192 2));
  Fs.fallocate fs c0 fd ~off:0 ~len:(4 * mib);
  ignore (Fs.append fs c0 fd ~src:(pattern 5000 3));
  Fs.ftruncate fs c0 fd (3 * mib);
  Fs.fsync fs c0 fd;
  Fs.close fs c0 fd;
  Fs.set_xattr_align fs c0 "/d/file" true;
  let fd2 = Fs.openf fs c0 "/d/file" Types.o_rdwr in
  ignore (Fs.pwrite fs c0 fd2 ~off:(2 * mib) ~src:(pattern 70_000 4));
  Fs.close fs c0 fd2;
  for i = 0 to 19 do
    let p = Printf.sprintf "/d/sub/f%d" i in
    let fd = Fs.create fs c1 p in
    ignore (Fs.pwrite fs c1 fd ~off:0 ~src:(pattern (512 * (i + 1)) i));
    Fs.fsync fs c1 fd;
    Fs.close fs c1 fd;
    if i mod 3 = 0 then Fs.unlink fs c1 p
  done;
  Fs.rename fs c0 ~old_path:"/d/sub/f1" ~new_path:"/d/renamed";
  let fd3 = Fs.create fs c0 "/sparse" in
  Fs.ftruncate fs c0 fd3 (8 * mib);
  ignore (Fs.pwrite fs c0 fd3 ~off:(5 * mib) ~src:(pattern 4096 9));
  Fs.close fs c0 fd3;
  ignore (Fs.readdir fs c0 "/d");
  ignore (Fs.stat fs c0 "/d/renamed");
  let fd4 = Fs.openf fs c0 "/d/file" Types.o_rdonly in
  ignore (Fs.pread fs c0 fd4 ~off:0 ~len:10_000);
  ignore (Fs.pread fs c0 fd4 ~off:(2 * mib) ~len:70_000);
  Fs.close fs c0 fd4;
  Fs.unmount fs c0;
  (dev, fs)

let image_crc dev =
  let size = Device.size dev in
  let chunk = 65536 in
  let buf = Bytes.create chunk in
  let crc = ref Crc32c.init in
  let off = ref 0 in
  while !off < size do
    let n = min chunk (size - !off) in
    Device.peek dev ~off:!off ~len:n ~dst:buf ~dst_off:0;
    crc := Crc32c.update !crc buf ~off:0 ~len:n;
    off := !off + n
  done;
  Crc32c.finish !crc

let test_image_crc () =
  let dev, _fs = run_workload () in
  Alcotest.(check int) "PM image CRC32C" expected_image_crc (image_crc dev)

let test_counter_totals () =
  let _dev, fs = run_workload () in
  Alcotest.(check (list (pair string int)))
    "counter snapshot" expected_counters
    (Counters.snapshot (Fs.counters fs))

let suite =
  [
    Alcotest.test_case "golden image CRC" `Quick test_image_crc;
    Alcotest.test_case "golden counter totals" `Quick test_counter_totals;
  ]
