(* Media-fault hardening: CRC32C correctness, superblock repair from the
   replica, read-only degradation semantics, and the faultcheck campaign
   end to end. *)

open Repro_util
module Device = Repro_pmem.Device
module Fault = Repro_pmem.Fault
module Types = Repro_vfs.Types
module Fs = Winefs.Fs
module Layout = Winefs.Layout
module Codec = Winefs.Codec
module Faultcheck = Repro_crashcheck.Faultcheck
module Ace = Repro_crashcheck.Ace

let cpu () = Cpu.make ~id:0 ()

let cfg () = Types.config ~cpus:2 ~inodes_per_cpu:256 ()

let fresh () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(48 * Units.mib) () in
  (dev, Fs.format dev (cfg ()))

(* CRC-32C known-answer vector (RFC 3720 appendix): "123456789". *)
let test_crc32c_vector () =
  Alcotest.(check int) "check vector" 0xE3069283 (Crc32c.digest_string "123456789");
  Alcotest.(check int) "empty string" 0 (Crc32c.digest_string "");
  (* Incremental = one-shot. *)
  let b = Bytes.of_string "123456789" in
  let acc = Crc32c.update Crc32c.init b ~off:0 ~len:4 in
  let acc = Crc32c.update acc b ~off:4 ~len:5 in
  Alcotest.(check int) "incremental update" 0xE3069283 (Crc32c.finish acc)

(* The production [update] consumes 8 bytes per step (slicing-by-8);
   check it against an independent byte-at-a-time fold over every
   alignment and length class, including bytes with the top bit set
   (which an int64 load would truncate). *)
let test_crc32c_slicing_matches_bytewise () =
  let poly = 0x82F63B78 in
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let reference b ~off ~len =
    let c = ref Crc32c.init in
    for i = off to off + len - 1 do
      c := table.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
    done;
    Crc32c.finish !c
  in
  let rng = Rng.create 0xC12C in
  for _ = 1 to 500 do
    let n = Rng.int rng 200 in
    let b = Bytes.init n (fun _ -> Char.chr (Rng.int rng 256)) in
    let off = if n = 0 then 0 else Rng.int rng (n + 1) in
    let len = n - off in
    Alcotest.(check int)
      (Printf.sprintf "crc slicing off=%d len=%d" off len)
      (reference b ~off ~len)
      (Crc32c.finish (Crc32c.update Crc32c.init b ~off ~len))
  done;
  let ones = Bytes.make 33 '\xff' in
  Alcotest.(check int) "all-0xff (top bits)" (reference ones ~off:0 ~len:33)
    (Crc32c.finish (Crc32c.update Crc32c.init ones ~off:0 ~len:33))

let test_crc32c_zeroed_field () =
  let b = Bytes.init 64 (fun i -> Char.chr (i * 7 mod 256)) in
  Crc32c.set_zeroed b ~off:0 ~len:64 ~csum_off:40;
  Alcotest.(check bool) "verifies after set" true
    (Crc32c.verify_zeroed b ~off:0 ~len:64 ~csum_off:40);
  (* Every single-bit flip anywhere in the structure must be caught,
     including inside the checksum field itself. *)
  let missed = ref 0 in
  for bit = 0 to (64 * 8) - 1 do
    let byte = bit / 8 in
    let c = Bytes.copy b in
    Bytes.set c byte (Char.chr (Char.code (Bytes.get c byte) lxor (1 lsl (bit mod 8))));
    if Crc32c.verify_zeroed c ~off:0 ~len:64 ~csum_off:40 then incr missed
  done;
  Alcotest.(check int) "all 512 single-bit flips detected" 0 !missed

let test_sb_repair_from_replica () =
  let dev, fs = fresh () in
  let c = cpu () in
  Fs.close fs c (Fs.create fs c "/keep");
  Fs.unmount fs c;
  (* Corrupt the primary superblock; mount must repair it from the
     replica and stay writable. *)
  Device.inject dev (Device.Bit_flip { off = 17; bit = 3 });
  let fs2 = Fs.mount dev (cfg ()) in
  Alcotest.(check bool) "mount not degraded" false (Fs.read_only fs2);
  Alcotest.(check bool) "file survived" true (Fs.exists fs2 c "/keep");
  Alcotest.(check bool) "detection counted" true
    (Counters.get (Fs.counters fs2) "fault.detected" >= 1);
  Alcotest.(check bool) "repair counted" true
    (Counters.get (Fs.counters fs2) "fault.repaired" >= 1);
  Fs.unmount fs2 c;
  (* The repair rewrote the primary: a second mount is clean. *)
  let fs3 = Fs.mount dev (cfg ()) in
  Alcotest.(check int) "primary healthy after repair" 0
    (Counters.get (Fs.counters fs3) "fault.detected")

let test_sb_poison_repair () =
  let dev, fs = fresh () in
  let c = cpu () in
  Fs.unmount fs c;
  Device.inject dev (Device.Poison_line { off = 0 });
  let fs2 = Fs.mount dev (cfg ()) in
  Alcotest.(check bool) "repaired from replica" false (Fs.read_only fs2);
  Alcotest.(check (list int)) "full-line rewrite cleared the poison" []
    (Device.poisoned_lines dev)

let test_sb_both_copies_dead () =
  let dev, fs = fresh () in
  let c = cpu () in
  Fs.unmount fs c;
  Device.inject dev (Device.Bit_flip { off = 9; bit = 0 });
  Device.inject dev (Device.Bit_flip { off = Layout.sb_replica_off + 9; bit = 0 });
  match Fs.mount dev (cfg ()) with
  | _ -> Alcotest.fail "mount must refuse when both superblocks are corrupt"
  | exception Types.Error (Types.EIO, _) -> ()

let test_degraded_mount_semantics () =
  let dev, fs = fresh () in
  let c = cpu () in
  let fd = Fs.create fs c "/victim" in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:"doomed data");
  Fs.close fs c fd;
  Fs.close fs c (Fs.create fs c "/survivor");
  let victim_ino = (Fs.stat fs c "/victim").Types.st_ino in
  let layout =
    let fcfg = Fs.config fs in
    Layout.compute ~size:(Device.size dev) ~cpus:fcfg.cpus ~inodes_per_cpu:fcfg.inodes_per_cpu
  in
  Fs.unmount fs c;
  (* Flip a bit in the victim's inode header: there is no redundant copy,
     so scrub must refuse the inode and degrade the mount. *)
  Device.inject dev (Device.Bit_flip { off = Layout.inode_off layout victim_ino + 20; bit = 5 });
  let fs2 = Fs.mount dev (cfg ()) in
  Alcotest.(check bool) "mount degraded to read-only" true (Fs.read_only fs2);
  Alcotest.(check bool) "refused inodes counted" true (Fs.refused_inodes fs2 >= 1);
  Alcotest.(check bool) "refusal in fault counters" true
    (Counters.get (Fs.counters fs2) "fault.refused" >= 1);
  (* Mutations fail with EROFS... *)
  (match Fs.create fs2 c "/new" with
  | _ -> Alcotest.fail "create must fail on a degraded mount"
  | exception Types.Error (Types.EROFS, _) -> ());
  (match Fs.mkdir fs2 c "/newdir" with
  | () -> Alcotest.fail "mkdir must fail on a degraded mount"
  | exception Types.Error (Types.EROFS, _) -> ());
  (match Fs.openf fs2 c "/survivor" { Types.o_rdonly with wr = true } with
  | _ -> Alcotest.fail "open for write must fail on a degraded mount"
  | exception Types.Error (Types.EROFS, _) -> ());
  (match Fs.unlink fs2 c "/survivor" with
  | () -> Alcotest.fail "unlink must fail on a degraded mount"
  | exception Types.Error (Types.EROFS, _) -> ());
  (* ...the refused inode fails loudly with EIO... *)
  (match Fs.stat fs2 c "/victim" with
  | _ -> Alcotest.fail "refused inode must not stat"
  | exception Types.Error (Types.EIO, _) -> ());
  (* ...and untouched objects still read. *)
  Alcotest.(check bool) "survivor readable" true (Fs.exists fs2 c "/survivor");
  let fd = Fs.openf fs2 c "/survivor" Types.o_rdonly in
  Alcotest.(check string) "survivor data intact" "" (Fs.pread fs2 c fd ~off:0 ~len:0);
  Fs.close fs2 c fd;
  (* Unmount of a degraded fs must not stamp the image clean. *)
  Fs.unmount fs2 c;
  let fs3 = Fs.mount dev (cfg ()) in
  Alcotest.(check bool) "corruption still refused on remount" true (Fs.read_only fs3)

let test_campaign_small () =
  let workloads =
    List.filter
      (fun (w : Ace.workload) -> List.mem w.w_name [ "seq1-create"; "seq1-append" ])
      Ace.all
  in
  let r = Faultcheck.run ~seed:7 ~workloads ~torn_fences:2 () in
  Alcotest.(check int) "seed echoed for replay" 7 r.seed;
  Alcotest.(check bool) "faults were planted" true (r.faults_planted > 0);
  Alcotest.(check int) "every fault repaired or refused"
    r.faults_planted (r.repaired + r.refused);
  Alcotest.(check int) "no silent corruption" 0 (List.length r.findings);
  (* Same seed, same campaign. *)
  let r2 = Faultcheck.run ~seed:7 ~workloads ~torn_fences:2 () in
  Alcotest.(check int) "replay plants the same faults" r.faults_planted r2.faults_planted;
  Alcotest.(check int) "replay repairs the same faults" r.repaired r2.repaired

let suite =
  [
    Alcotest.test_case "crc32c check vector" `Quick test_crc32c_vector;
    Alcotest.test_case "crc32c slicing-by-8 = bytewise" `Quick
      test_crc32c_slicing_matches_bytewise;
    Alcotest.test_case "crc32c zeroed-field covers every bit" `Quick test_crc32c_zeroed_field;
    Alcotest.test_case "sb repair from replica" `Quick test_sb_repair_from_replica;
    Alcotest.test_case "sb poison repair" `Quick test_sb_poison_repair;
    Alcotest.test_case "sb both copies dead" `Quick test_sb_both_copies_dead;
    Alcotest.test_case "degraded mount semantics" `Quick test_degraded_mount_semantics;
    Alcotest.test_case "faultcheck campaign" `Quick test_campaign_small;
  ]
