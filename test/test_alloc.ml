(* Allocators: WineFS's alignment-aware allocator and the baseline pool
   allocator — unit behaviour plus churn properties. *)

open Repro_util
module A = Repro_alloc.Aligned_alloc
module P = Repro_alloc.Pool_alloc

let huge = Units.huge_page
let mib = Units.mib

let mk ?(cpus = 2) ?(stripe = 32 * mib) () =
  A.create ~cpus ~regions:(Array.init cpus (fun i -> (i * stripe, stripe)))

let total_alloc exts = List.fold_left (fun a (e : A.extent) -> a + e.len) 0 exts

let test_hugepage_alloc_aligned () =
  let a = mk () in
  match A.alloc_hugepage a ~cpu:0 with
  | Some off ->
      Alcotest.(check bool) "aligned" true (Units.is_aligned off huge);
      A.free a ~off ~len:huge;
      Alcotest.(check int) "restored" (A.free_bytes a) (2 * 32 * mib)
  | None -> Alcotest.fail "no hugepage on a fresh allocator"

let test_large_request_gets_aligned_chunks () =
  let a = mk () in
  match A.alloc a ~cpu:0 ~len:(5 * mib) ~prefer_aligned:false with
  | Some exts ->
      Alcotest.(check int) "full amount" (5 * mib) (total_alloc exts);
      (* The two whole 2MB chunks are aligned. *)
      let aligned =
        List.filter (fun (e : A.extent) -> e.len = huge && Units.is_aligned e.off huge) exts
      in
      Alcotest.(check int) "two aligned chunks" 2 (List.length aligned)
  | None -> Alcotest.fail "alloc failed"

let test_small_requests_avoid_aligned_pool () =
  let a = mk () in
  let before = A.free_aligned_extents a in
  (* Many small allocations should consume at most one broken extent. *)
  for _ = 1 to 100 do
    match A.alloc a ~cpu:0 ~len:8192 ~prefer_aligned:false with
    | Some _ -> ()
    | None -> Alcotest.fail "small alloc failed"
  done;
  Alcotest.(check bool) "at most one extent broken" true
    (before - A.free_aligned_extents a <= 1)

let test_prefer_aligned_start () =
  let a = mk () in
  match A.alloc a ~cpu:0 ~len:12345 ~prefer_aligned:true with
  | Some (e :: _) -> Alcotest.(check bool) "starts aligned" true (Units.is_aligned e.off huge)
  | _ -> Alcotest.fail "alloc failed"

let test_merge_promotes () =
  let a = mk () in
  (* Break an aligned extent into small pieces, then free them all. *)
  let before = A.aligned_region_count a in
  let pieces =
    List.init 8 (fun _ ->
        match A.alloc a ~cpu:0 ~len:(256 * 1024) ~prefer_aligned:false with
        | Some [ e ] -> e
        | _ -> Alcotest.fail "alloc failed")
  in
  Alcotest.(check bool) "census dropped" true (A.aligned_region_count a < before);
  List.iter (fun (e : A.extent) -> A.free a ~off:e.off ~len:e.len) pieces;
  Alcotest.(check int) "merged back to full census" before (A.aligned_region_count a);
  match A.check_invariants a with Ok () -> () | Error m -> Alcotest.failf "invariants: %s" m

let test_exhaustion_and_enospc () =
  let a = mk ~cpus:1 ~stripe:(4 * mib) () in
  (match A.alloc a ~cpu:0 ~len:(4 * mib) ~prefer_aligned:false with
  | Some exts -> Alcotest.(check int) "all allocated" (4 * mib) (total_alloc exts)
  | None -> Alcotest.fail "should fit exactly");
  Alcotest.(check bool) "ENOSPC" true
    (A.alloc a ~cpu:0 ~len:4096 ~prefer_aligned:false = None)

let test_cross_cpu_stealing () =
  let a = mk ~cpus:2 ~stripe:(4 * mib) () in
  (* Exhaust CPU 0's stripe; further allocations steal from CPU 1. *)
  (match A.alloc a ~cpu:0 ~len:(4 * mib) ~prefer_aligned:false with
  | Some _ -> ()
  | None -> Alcotest.fail "fill failed");
  (match A.alloc a ~cpu:0 ~len:mib ~prefer_aligned:false with
  | Some (e :: _) ->
      Alcotest.(check int) "stolen from cpu 1" 1 (A.cpu_of_offset a e.off)
  | _ -> Alcotest.fail "steal failed");
  match A.check_invariants a with Ok () -> () | Error m -> Alcotest.failf "invariants: %s" m

let test_snapshot_restore () =
  let a = mk () in
  ignore (A.alloc a ~cpu:0 ~len:(3 * mib) ~prefer_aligned:false);
  ignore (A.alloc a ~cpu:1 ~len:12288 ~prefer_aligned:false);
  let snap = A.snapshot a in
  let regions = Array.init 2 (fun i -> (i * 32 * mib, 32 * mib)) in
  let b = A.restore ~cpus:2 ~regions ~free:snap in
  Alcotest.(check int) "free bytes preserved" (A.free_bytes a) (A.free_bytes b);
  Alcotest.(check int) "aligned census preserved" (A.aligned_region_count a)
    (A.aligned_region_count b)

let prop_churn_conserves_space =
  QCheck.Test.make ~name:"aligned allocator conserves space under churn" ~count:60
    QCheck.(list (pair (int_bound 2) (int_range 1 1024)))
    (fun ops ->
      let a = mk () in
      let capacity = A.free_bytes a in
      let held = ref [] in
      List.iter
        (fun (op, kib) ->
          let len = kib * 1024 in
          match op with
          | 0 | 1 -> (
              match A.alloc a ~cpu:op ~len ~prefer_aligned:(kib mod 2 = 0) with
              | Some exts -> held := exts @ !held
              | None -> ())
          | _ -> (
              match !held with
              | e :: rest ->
                  A.free a ~off:e.A.off ~len:e.len;
                  held := rest
              | [] -> ()))
        ops;
      let held_bytes = List.fold_left (fun acc (e : A.extent) -> acc + e.len) 0 !held in
      (match A.check_invariants a with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariants: %s" m);
      A.free_bytes a + held_bytes = capacity)

(* --- baseline pool allocator --- *)

let pool_cfg per_cpu policy =
  { P.per_cpu; policy; align_exact_2m = false; normalize_pow2 = false }

let test_pool_basic () =
  let p = P.create (pool_cfg false P.First_fit) ~cpus:1 ~regions:[| (0, 16 * mib) |] in
  (match P.alloc p ~cpu:0 ~len:mib with
  | Some [ e ] ->
      Alcotest.(check int) "first fit at 0" 0 e.P.off;
      P.free p ~off:e.off ~len:e.len
  | _ -> Alcotest.fail "alloc failed");
  Alcotest.(check int) "restored" (16 * mib) (P.free_bytes p)

let test_pool_goal () =
  let p = P.create (pool_cfg false P.First_fit) ~cpus:1 ~regions:[| (0, 16 * mib) |] in
  match P.alloc ~goal:(8 * mib) p ~cpu:0 ~len:4096 with
  | Some [ e ] -> Alcotest.(check int) "honours goal" (8 * mib) e.P.off
  | _ -> Alcotest.fail "goal alloc failed"

let test_pool_fragmented_multi_extent () =
  let p = P.create (pool_cfg false P.First_fit) ~cpus:1 ~regions:[| (0, 4 * mib) |] in
  (* Fragment: allocate all, free every other 64K. *)
  (match P.alloc p ~cpu:0 ~len:(4 * mib) with Some _ -> () | None -> Alcotest.fail "fill");
  let freed = ref 0 in
  let k64 = 64 * 1024 in
  let i = ref 0 in
  while !i * k64 < 4 * mib do
    if !i mod 2 = 0 then begin
      P.free p ~off:(!i * k64) ~len:k64;
      incr freed
    end;
    incr i
  done;
  (* A 1MB request must still succeed from fragments. *)
  match P.alloc p ~cpu:0 ~len:mib with
  | Some exts ->
      Alcotest.(check int) "gathered full amount" mib
        (List.fold_left (fun a (e : P.extent) -> a + e.len) 0 exts);
      Alcotest.(check bool) "multiple fragments" true (List.length exts > 1)
  | None -> Alcotest.fail "fragmented alloc failed"

let raises_invalid f =
  match f () with () -> false | exception Invalid_argument _ -> true

let test_double_free_detected () =
  (* The hole tree always rejected overlap with free holes, but a range
     overlapping a promoted 2MB base parked in the aligned FIFO was
     invisible to it: the same space could silently be handed out twice. *)
  let a = mk () in
  Alcotest.(check bool) "free of a pooled aligned extent raises" true
    (raises_invalid (fun () -> A.free a ~off:0 ~len:huge));
  Alcotest.(check bool) "partial overlap with a pooled extent raises" true
    (raises_invalid (fun () -> A.free a ~off:4096 ~len:4096));
  (* Legitimate churn still works, and a later double free of the same
     range is caught whether it merged into a hole or got re-promoted. *)
  (match A.alloc a ~cpu:0 ~len:4096 ~prefer_aligned:false with
  | Some [ e ] ->
      A.free a ~off:e.off ~len:e.len;
      Alcotest.(check bool) "hole double free raises" true
        (raises_invalid (fun () -> A.free a ~off:e.off ~len:e.len))
  | _ -> Alcotest.fail "small alloc failed");
  Alcotest.(check bool) "invariants hold after rejections" true
    (A.check_invariants a = Ok ())

let suite =
  [
    Alcotest.test_case "hugepage alloc aligned" `Quick test_hugepage_alloc_aligned;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    Alcotest.test_case "large request aligned chunks" `Quick test_large_request_gets_aligned_chunks;
    Alcotest.test_case "small requests spare aligned pool" `Quick test_small_requests_avoid_aligned_pool;
    Alcotest.test_case "prefer_aligned (xattr) start" `Quick test_prefer_aligned_start;
    Alcotest.test_case "free merges and promotes" `Quick test_merge_promotes;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion_and_enospc;
    Alcotest.test_case "cross-CPU stealing" `Quick test_cross_cpu_stealing;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    QCheck_alcotest.to_alcotest prop_churn_conserves_space;
    Alcotest.test_case "pool allocator basics" `Quick test_pool_basic;
    Alcotest.test_case "pool goal allocation" `Quick test_pool_goal;
    Alcotest.test_case "pool fragmented multi-extent" `Quick test_pool_fragmented_multi_extent;
  ]
