(* Unit tests for the core layer modules behind the Fs facade: the
   Extent_map record/slot run map (lookup/split/merge, removal budgets)
   and the Txn reserve/commit/abort protocol. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Alloc = Repro_alloc.Aligned_alloc
module Layout = Winefs.Layout
module Txn = Winefs.Txn
module Inode = Winefs.Inode
module Extent_map = Winefs.Extent_map

let block = Units.base_page

type stack = {
  dev : Device.t;
  cpu : Cpu.t;
  layout : Layout.t;
  txns : Txn.t;
  inodes : Inode.t;
  map : Extent_map.t;
}

let mk () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(32 * Units.mib) () in
  let cpu = Cpu.make ~id:0 () in
  let layout = Layout.compute ~size:(Device.size dev) ~cpus:1 ~inodes_per_cpu:64 in
  let txns = Txn.format dev cpu layout in
  let inodes = Inode.create ~dev ~layout ~txns in
  Inode.init_free inodes;
  let alloc = Alloc.create ~cpus:1 ~regions:layout.stripes in
  let map = Extent_map.create ~dev ~layout ~txns ~inodes ~alloc in
  Extent_map.seed_meta_pool map;
  { dev; cpu; layout; txns; inodes; map }

(* A registered regular file with zeroed inline slots (not yet valid on
   PM — these tests exercise the DRAM map + slot persistence only). *)
let mk_file s ino =
  let f = Inode.install s.inodes ino Types.Regular in
  Inode.init_slots s.inodes s.cpu ino;
  f

let data_base s = fst s.layout.Layout.stripes.(0)

let add s f ~file_off ~phys ~len ~asrc =
  Txn.with_txn s.txns s.cpu ~reserve:4 (fun txn ->
      Extent_map.add_record s.map s.cpu txn f ~file_off ~phys ~len ~asrc)

(* -- Extent_map ---------------------------------------------------- *)

let test_lookup_and_merge () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  add s f ~file_off:0 ~phys:base ~len:block ~asrc:false;
  add s f ~file_off:block ~phys:(base + block) ~len:block ~asrc:false;
  (* Contiguous same-provenance append tail-merged into one record. *)
  Alcotest.(check (option (pair int int)))
    "merged run" (Some (base, 2 * block))
    (Extent_map.lookup_run f ~file_off:0);
  Alcotest.(check (option (pair int int)))
    "mid-run lookup" (Some (base + 100, (2 * block) - 100))
    (Extent_map.lookup_run f ~file_off:100);
  Alcotest.(check int) "one record" 1
    (Repro_rbtree.Rbtree.Int_map.fold f.records ~init:0 ~f:(fun acc _ _ -> acc + 1))

let test_no_merge_across_provenance () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  add s f ~file_off:0 ~phys:base ~len:block ~asrc:false;
  add s f ~file_off:block ~phys:(base + block) ~len:block ~asrc:true;
  (* Aligned-pool provenance differs: the records must stay separate, or
     the hybrid-atomicity policy (§3.5) would journal a CoW extent. *)
  Alcotest.(check (option (pair int int)))
    "first run ends at the boundary" (Some (base, block))
    (Extent_map.lookup_run f ~file_off:0);
  Alcotest.(check int) "two records" 2
    (Repro_rbtree.Rbtree.Int_map.fold f.records ~init:0 ~f:(fun acc _ _ -> acc + 1))

let test_remove_splits_record () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  add s f ~file_off:0 ~phys:base ~len:(4 * block) ~asrc:false;
  let freed, more =
    Txn.with_txn s.txns s.cpu ~reserve:8 (fun txn ->
        Extent_map.remove_records s.map s.cpu txn f ~file_off:block ~len:block)
  in
  Alcotest.(check (list (pair int int))) "freed the cut" [ (base + block, block) ] freed;
  Alcotest.(check bool) "scan completed" false more;
  Alcotest.(check (option (pair int int)))
    "head kept" (Some (base, block))
    (Extent_map.lookup_run f ~file_off:0);
  Alcotest.(check (option (pair int int))) "hole" None
    (Extent_map.lookup_run f ~file_off:block);
  Alcotest.(check (option (pair int int)))
    "tail kept" (Some (base + (2 * block), 2 * block))
    (Extent_map.lookup_run f ~file_off:(2 * block))

let test_remove_budget_zero () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  add s f ~file_off:0 ~phys:base ~len:(2 * block) ~asrc:false;
  let freed, more =
    Txn.with_txn s.txns s.cpu ~reserve:4 (fun txn ->
        Extent_map.remove_records ~budget:0 s.map s.cpu txn f ~file_off:0 ~len:(2 * block))
  in
  (* budget=0: nothing removed, caller must run another transaction. *)
  Alcotest.(check (list (pair int int))) "nothing freed" [] freed;
  Alcotest.(check bool) "more work remains" true more;
  Alcotest.(check (option (pair int int)))
    "record untouched" (Some (base, 2 * block))
    (Extent_map.lookup_run f ~file_off:0)

let test_remove_exact_boundary () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  add s f ~file_off:0 ~phys:base ~len:block ~asrc:false;
  add s f ~file_off:block ~phys:(base + (4 * block)) ~len:block ~asrc:false;
  let freed, more =
    Txn.with_txn s.txns s.cpu ~reserve:8 (fun txn ->
        Extent_map.remove_records s.map s.cpu txn f ~file_off:0 ~len:(2 * block))
  in
  Alcotest.(check int) "both records freed" 2 (List.length freed);
  Alcotest.(check bool) "scan completed" false more;
  Alcotest.(check (option (pair int int))) "map empty" None
    (Extent_map.lookup_run f ~file_off:0);
  Alcotest.(check int) "slots recycled" 2 (List.length f.free_slots)

(* -- Txn ----------------------------------------------------------- *)

let test_abort_rolls_back_writes () =
  let s = mk () in
  let f = mk_file s 2 in
  let base = data_base s in
  let hdr_addr = Inode.inode_addr s.inodes 2 in
  let before = Device.read_string s.dev s.cpu ~off:hdr_addr ~len:Layout.inode_bytes in
  (match
     Txn.with_txn s.txns s.cpu ~reserve:8 (fun txn ->
         Inode.persist_header s.inodes s.cpu txn f;
         Extent_map.add_record s.map s.cpu txn f ~file_off:0 ~phys:base ~len:block
           ~asrc:false;
         raise Exit)
   with
  | () -> Alcotest.fail "body should have raised"
  | exception Exit -> ());
  (* Every journaled header and slot byte is back to its pre-txn image. *)
  Alcotest.(check string) "inode record rolled back" before
    (Device.read_string s.dev s.cpu ~off:hdr_addr ~len:Layout.inode_bytes)

let test_nested_txn_rejected () =
  let s = mk () in
  Txn.with_txn s.txns s.cpu ~reserve:2 (fun _ ->
      Alcotest.check_raises "nested reserve"
        (Invalid_argument "Txn.with_txn: nested transaction on this CPU's journal")
        (fun () -> Txn.with_txn s.txns s.cpu ~reserve:2 (fun _ -> ())))

let test_reserve_exhaustion () =
  let s = mk () in
  Alcotest.check_raises "over-reserve"
    (Invalid_argument "Undo_journal: reservation exhausted")
    (fun () ->
      Txn.with_txn s.txns s.cpu ~reserve:1 (fun txn ->
          Txn.meta_write s.txns s.cpu txn ~addr:(data_base s) (Bytes.make 8 'a');
          Txn.meta_write s.txns s.cpu txn ~addr:(data_base s + 64) (Bytes.make 8 'b')))

let suite =
  [
    Alcotest.test_case "lookup + tail merge" `Quick test_lookup_and_merge;
    Alcotest.test_case "no merge across provenance" `Quick test_no_merge_across_provenance;
    Alcotest.test_case "remove splits a record" `Quick test_remove_splits_record;
    Alcotest.test_case "remove with budget 0" `Quick test_remove_budget_zero;
    Alcotest.test_case "remove at exact boundaries" `Quick test_remove_exact_boundary;
    Alcotest.test_case "abort rolls back header+slots" `Quick test_abort_rolls_back_writes;
    Alcotest.test_case "nested transaction rejected" `Quick test_nested_txn_rejected;
    Alcotest.test_case "reservation exhaustion" `Quick test_reserve_exhaustion;
  ]
