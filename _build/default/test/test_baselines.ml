(* Baseline-specific behaviours the paper's analysis leans on: NOVA's log
   pages and append CoW amplification, SplitFS's staged appends, Strata's
   digestion, ext4's unwritten-extent zeroing, xfs/PMFS misalignment. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem
module Nova = Repro_baselines.Nova
module Splitfs = Repro_baselines.Splitfs
module Strata = Repro_baselines.Strata
module Ext4 = Repro_baselines.Ext4_dax
module Xfs = Repro_baselines.Xfs_dax

let mk fmt =
  let dev = Device.create ~cost:Device.Cost.free ~size:(96 * Units.mib) () in
  (fmt dev (Types.config ~cpus:2 ~inodes_per_cpu:512 ()), dev)

let cpu () = Cpu.make ~id:0 ()

let test_nova_log_pages_fragment () =
  let fs, _ = mk Nova.format in
  let c = cpu () in
  (* Creating files appends to inode logs -> log pages allocated from the
     data area (the Figure-3 mechanism). *)
  for i = 1 to 50 do
    let fd = Nova.create fs c (Printf.sprintf "/f%d" i) in
    Nova.close fs c fd
  done;
  Alcotest.(check bool) "log pages allocated" true
    (Counters.get (Nova.counters fs) "fs.log_pages" > 0);
  Alcotest.(check bool) "log appends recorded" true
    (Counters.get (Nova.counters fs) "fs.log_appends" >= 100)

let test_nova_append_cow_amplification () =
  (* §5.5 WiredTiger: unaligned appends copy the partial tail block. *)
  let fs, dev = mk Nova.format in
  let c = cpu () in
  let fd = Nova.create fs c "/wt" in
  ignore (Nova.pwrite fs c fd ~off:0 ~src:(String.make 1000 'a'));
  Device.reset_counters dev;
  ignore (Nova.append fs c fd ~src:(String.make 1000 'b'));
  (* The 1000-byte append rewrites the whole 4K block: old bytes copied. *)
  Alcotest.(check bool) "write amplification" true
    (Counters.get (Device.counters dev) "pm.bytes_written" > 3000);
  Alcotest.(check string) "content intact" ("a" ^ String.make 1 'a')
    (String.sub (Nova.pread fs c fd ~off:0 ~len:2) 0 2);
  Alcotest.(check string) "appended bytes" "bb" (Nova.pread fs c fd ~off:1000 ~len:2);
  Nova.close fs c fd

let test_nova_strict_overwrite_relocates () =
  (* CoW: overwriting moves the file to fresh blocks. *)
  let fs, _ = mk Nova.format in
  let c = cpu () in
  let fd = Nova.create fs c "/cow" in
  ignore (Nova.pwrite fs c fd ~off:0 ~src:(String.make 8192 'x'));
  let before = Nova.file_extents fs c "/cow" in
  ignore (Nova.pwrite fs c fd ~off:0 ~src:(String.make 8192 'y'));
  let after = Nova.file_extents fs c "/cow" in
  Alcotest.(check bool) "physical location changed" true (before <> after);
  Alcotest.(check string) "new data" "yy" (Nova.pread fs c fd ~off:0 ~len:2);
  Nova.close fs c fd

let test_splitfs_staging_relink () =
  let fs, _ = mk Splitfs.format in
  let c = cpu () in
  let fd = Splitfs.create fs c "/log" in
  ignore (Splitfs.append fs c fd ~src:"one ");
  ignore (Splitfs.append fs c fd ~src:"two ");
  (* Visible before fsync (reads check the staging map)... *)
  Alcotest.(check string) "staged reads" "one two " (Splitfs.pread fs c fd ~off:0 ~len:8);
  Alcotest.(check int) "size includes staged" 8 (Splitfs.file_size fs fd);
  (* ...and after the fsync relink. *)
  Splitfs.fsync fs c fd;
  Alcotest.(check string) "relinked" "one two " (Splitfs.pread fs c fd ~off:0 ~len:8);
  let st = Splitfs.stat fs c "/log" in
  Alcotest.(check int) "committed size" 8 st.Types.st_size;
  Splitfs.close fs c fd

let test_strata_digestion () =
  let fs, _ = mk Strata.format in
  let c = cpu () in
  let fd = Strata.create fs c "/d" in
  ignore (Strata.pwrite fs c fd ~off:0 ~src:(String.make 5000 's'));
  (* Data readable from the log before digestion. *)
  Alcotest.(check string) "read from log" "ss" (Strata.pread fs c fd ~off:0 ~len:2);
  let st = Strata.stat fs c "/d" in
  Alcotest.(check int) "no shared-area blocks yet" 0 st.Types.st_blocks;
  (* mmap forces digestion into the shared area. *)
  let backing = Strata.mmap_backing fs fd in
  ignore (backing c ~file_off:0 ~huge_ok:false);
  Alcotest.(check bool) "digested" true
    (Counters.get (Strata.counters fs) "fs.digests" >= 1);
  Alcotest.(check string) "read after digest" "ss" (Strata.pread fs c fd ~off:0 ~len:2);
  Strata.close fs c fd

let test_strata_cheap_fsync () =
  let fs, dev = mk Strata.format in
  let c = cpu () in
  let fd = Strata.create fs c "/f" in
  ignore (Strata.pwrite fs c fd ~off:0 ~src:(String.make 65536 'q'));
  Device.reset_counters dev;
  let t0 = Cpu.now c in
  Strata.fsync fs c fd;
  (* fsync is nearly free: the log is already durable. *)
  Alcotest.(check bool) "fsync cheap" true (Cpu.now c - t0 < 2000);
  Strata.close fs c fd

let test_ext4_unwritten_zeroing_on_fault () =
  let fs, dev = mk Ext4.format in
  let c = cpu () in
  let fd = Ext4.create fs c "/fa" in
  Ext4.fallocate fs c fd ~off:0 ~len:(4 * Units.mib);
  Device.reset_counters dev;
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(4 * Units.mib) ~backing:(Ext4.mmap_backing fs fd) () in
  Vmem.read vm c r ~off:0 ~len:8;
  (* First fault into the unwritten extent zeroes it (§5.4: ext4 zeroes at
     fault, not at fallocate). *)
  Alcotest.(check bool) "fault zeroed" true
    (Counters.get (Device.counters dev) "pm.bytes_written" >= Units.base_page);
  Ext4.close fs c fd

let test_xfs_never_aligned () =
  (* Footnote 1: xfs-DAX gets no hugepages even on a clean file system. *)
  let fs, dev = mk Xfs.format in
  let c = cpu () in
  let fd = Xfs.create fs c "/big" in
  Xfs.fallocate fs c fd ~off:0 ~len:(8 * Units.mib);
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(8 * Units.mib) ~backing:(Xfs.mmap_backing fs fd) () in
  Vmem.prefault vm c r;
  Alcotest.(check int) "no hugepages on clean xfs" 0 (Vmem.huge_mapped_bytes vm r);
  Xfs.close fs c fd

let test_ext4_aligned_when_clean () =
  (* ...while clean ext4-DAX does produce hugepage-capable extents. *)
  let fs, dev = mk Ext4.format in
  let c = cpu () in
  let fd = Ext4.create fs c "/big" in
  Ext4.fallocate fs c fd ~off:0 ~len:(8 * Units.mib);
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(8 * Units.mib) ~backing:(Ext4.mmap_backing fs fd) () in
  Vmem.prefault vm c r;
  Alcotest.(check bool) "clean ext4 gets hugepages" true
    (Vmem.huge_mapped_bytes vm r >= 6 * Units.mib);
  Ext4.close fs c fd

let suite =
  [
    Alcotest.test_case "NOVA log pages" `Quick test_nova_log_pages_fragment;
    Alcotest.test_case "NOVA append CoW amplification" `Quick test_nova_append_cow_amplification;
    Alcotest.test_case "NOVA overwrite relocates" `Quick test_nova_strict_overwrite_relocates;
    Alcotest.test_case "SplitFS staging + relink" `Quick test_splitfs_staging_relink;
    Alcotest.test_case "Strata digestion" `Quick test_strata_digestion;
    Alcotest.test_case "Strata cheap fsync" `Quick test_strata_cheap_fsync;
    Alcotest.test_case "ext4 zeroes at fault" `Quick test_ext4_unwritten_zeroing_on_fault;
    Alcotest.test_case "xfs never aligned" `Quick test_xfs_never_aligned;
    Alcotest.test_case "ext4 aligned when clean" `Quick test_ext4_aligned_when_clean;
  ]
