(* End-to-end experiment harness checks: each fast experiment runs and its
   table rows satisfy the paper's qualitative claim. *)

let cell table_str ~row ~col =
  (* Parse a rendered table: row/col by index, header = row 0. *)
  let lines =
    String.split_on_char '\n' table_str
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '=' && l.[0] <> '-')
  in
  let fields l =
    String.split_on_char ' ' l |> List.filter (fun s -> s <> "")
  in
  List.nth (fields (List.nth lines row)) col

let test_fig2_claim () =
  let tables = Repro_experiments.Fig2_mmap_overhead.run () in
  match tables with
  | fig2 :: sec21 :: _ ->
      let s = Repro_util.Table.render fig2 in
      let huge_total = float_of_string (cell s ~row:1 ~col:1) in
      let base_total = float_of_string (cell s ~row:2 ~col:1) in
      let base_faults = int_of_string (cell s ~row:2 ~col:4) in
      Alcotest.(check bool)
        (Printf.sprintf "hugepages ~2x faster (%.0f vs %.0f us)" huge_total base_total)
        true
        (base_total > 1.5 *. huge_total);
      Alcotest.(check int) "512 base faults for 2MB" 512 base_faults;
      let s21 = Repro_util.Table.render sec21 in
      let mmap = float_of_string (cell s21 ~row:1 ~col:2) in
      let sys = float_of_string (cell s21 ~row:2 ~col:2) in
      Alcotest.(check bool) "mmap faster than syscalls" true (mmap > sys)
  | _ -> Alcotest.fail "expected two tables"

let test_fig4_claim () =
  match Repro_experiments.Fig4_tlb_cdf.run () with
  | summary :: _ ->
      let s = Repro_util.Table.render summary in
      let huge_median = int_of_string (cell s ~row:1 ~col:2) in
      let base_median = int_of_string (cell s ~row:2 ~col:2) in
      let huge_tlb = int_of_string (cell s ~row:1 ~col:6) in
      let base_tlb = int_of_string (cell s ~row:2 ~col:6) in
      Alcotest.(check bool)
        (Printf.sprintf "median gap (%d vs %d ns)" huge_median base_median)
        true
        (base_median >= 2 * huge_median);
      Alcotest.(check bool) "TLB miss gap" true (base_tlb > 100 * max 1 huge_tlb)
  | _ -> Alcotest.fail "no tables"

let test_sec4_claim () =
  match Repro_experiments.Sec4_defrag_interference.run () with
  | t :: _ ->
      let s = Repro_util.Table.render t in
      let slowdown = float_of_string (cell s ~row:2 ~col:4) in
      Alcotest.(check bool)
        (Printf.sprintf "defrag slowdown %.1f%% in a sane band" slowdown)
        true
        (slowdown > 5. && slowdown < 90.)
  | _ -> Alcotest.fail "no tables"

let test_sec52_campaign_clean () =
  match Repro_experiments.Sec52_crash_recovery.run () with
  | campaign :: _ ->
      let s = Repro_util.Table.render campaign in
      Alcotest.(check string) "zero inconsistencies" "0" (cell s ~row:1 ~col:3)
  | _ -> Alcotest.fail "no tables"

let suite =
  [
    Alcotest.test_case "fig2: fault anatomy claim" `Quick test_fig2_claim;
    Alcotest.test_case "fig4: TLB latency claim" `Quick test_fig4_claim;
    Alcotest.test_case "sec4: defrag interference claim" `Quick test_sec4_claim;
    Alcotest.test_case "sec5.2: crash campaign clean" `Slow test_sec52_campaign_clean;
  ]
