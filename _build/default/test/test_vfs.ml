(* VFS components: paths, block map, dir index, fd table, codecs, NUMA
   policy, layout. *)

open Repro_util
module Path = Repro_vfs.Path
module Types = Repro_vfs.Types
module Block_map = Repro_vfs.Block_map
module Dir_index = Repro_vfs.Dir_index
module Fd_table = Repro_vfs.Fd_table

let test_path () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ] (Path.split "/a/b/c");
  Alcotest.(check (list string)) "root" [] (Path.split "/");
  Alcotest.(check (list string)) "trailing slash" [ "a" ] (Path.split "/a/");
  Alcotest.(check string) "dirname" "/a/b" (Path.dirname "/a/b/c");
  Alcotest.(check string) "dirname of top" "/" (Path.dirname "/a");
  Alcotest.(check string) "basename" "c" (Path.basename "/a/b/c");
  Alcotest.(check string) "concat root" "/x" (Path.concat "/" "x");
  Alcotest.(check string) "concat nested" "/a/x" (Path.concat "/a" "x");
  Alcotest.(check bool) "relative rejected" true
    (match Path.split "a/b" with
    | _ -> false
    | exception Types.Error (EINVAL, _) -> true);
  Alcotest.(check bool) "dotdot rejected" true
    (match Path.split "/a/../b" with
    | _ -> false
    | exception Types.Error (EINVAL, _) -> true)

let test_block_map () =
  let m = Block_map.create () in
  Block_map.insert m ~file_off:0 ~phys:1000 ~len:4096;
  Block_map.insert m ~file_off:4096 ~phys:16384 ~len:4096 (* logically adjacent, phys not *);
  Alcotest.(check int) "no false merge" 2 (Block_map.extent_count m);
  Block_map.insert m ~file_off:8192 ~phys:20480 ~len:4096 (* adjacent both ways to #2 *);
  Alcotest.(check int) "merged" 2 (Block_map.extent_count m);
  Alcotest.(check (option (pair int int))) "lookup mid-extent" (Some (18432, 6144))
    (Block_map.lookup m ~file_off:6144);
  Alcotest.(check bool) "covered" true (Block_map.covered m ~file_off:0 ~len:12288);
  Alcotest.(check bool) "overlap rejected" true
    (match Block_map.insert m ~file_off:100 ~phys:0 ~len:10 with
    | () -> false
    | exception Invalid_argument _ -> true);
  let freed = Block_map.remove_range m ~file_off:4096 ~len:4096 in
  Alcotest.(check (list (pair int int))) "freed run" [ (16384, 4096) ] freed;
  Alcotest.(check (option (pair int int))) "hole" None (Block_map.lookup m ~file_off:4096);
  Alcotest.(check (option int)) "next_mapped skips hole" (Some 8192)
    (Block_map.next_mapped m ~file_off:4096);
  match Block_map.check_invariants m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_block_map_huge_candidate () =
  let m = Block_map.create () in
  let huge = Units.huge_page in
  Block_map.insert m ~file_off:0 ~phys:(4 * huge) ~len:huge;
  Block_map.insert m ~file_off:huge ~phys:(8 * huge + 4096) ~len:huge;
  Alcotest.(check (option int)) "aligned chunk" (Some (4 * huge))
    (Block_map.huge_candidate m ~chunk_off:0);
  Alcotest.(check (option int)) "unaligned chunk" None
    (Block_map.huge_candidate m ~chunk_off:huge)

let prop_block_map_remove_inverse =
  QCheck.Test.make ~name:"block_map insert/remove accounting" ~count:100
    QCheck.(list (pair (int_bound 64) (int_range 1 16)))
    (fun spans ->
      let m = Block_map.create () in
      let inserted = ref 0 in
      List.iteri
        (fun i (slot, blocks) ->
          let file_off = slot * 128 * 4096 in
          let len = blocks * 4096 in
          let phys = (i + 1) * 16 * Units.mib in
          match Block_map.insert m ~file_off ~phys ~len with
          | () -> inserted := !inserted + len
          | exception Invalid_argument _ -> () (* overlapping slot reused *))
        spans;
      (match Block_map.check_invariants m with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invariants: %s" e);
      Block_map.mapped_bytes m = !inserted)

let test_dir_index_costs () =
  let cpu_fast = Cpu.make ~id:0 () in
  let cpu_slow = Cpu.make ~id:1 () in
  let fast = Dir_index.create Dram_rbtree in
  let slow = Dir_index.create (Pm_linear_scan 130.) in
  for i = 1 to 200 do
    let name = Printf.sprintf "f%d" i in
    Dir_index.add fast cpu_fast ~name ~ino:i ~slot:0;
    Dir_index.add slow cpu_slow ~name ~ino:i ~slot:0
  done;
  let t0 = Cpu.now cpu_fast in
  ignore (Dir_index.lookup fast cpu_fast "f100");
  let fast_cost = Cpu.now cpu_fast - t0 in
  let t0 = Cpu.now cpu_slow in
  ignore (Dir_index.lookup slow cpu_slow "f100");
  let slow_cost = Cpu.now cpu_slow - t0 in
  Alcotest.(check bool) "PMFS-style scan much dearer" true (slow_cost > 20 * fast_cost);
  Alcotest.(check (option (pair int int))) "lookup works" (Some (100, 0))
    (Dir_index.lookup fast cpu_fast "f100")

let test_fd_table () =
  let t = Fd_table.create () in
  let fd = Fd_table.alloc t ~ino:7 ~flags:Types.o_rdwr in
  Alcotest.(check bool) "fd >= 3" true (fd >= 3);
  Alcotest.(check int) "entry" 7 (Fd_table.get t fd).ino;
  Alcotest.(check bool) "is_open_ino" true (Fd_table.is_open_ino t 7);
  Fd_table.close t fd;
  Alcotest.(check bool) "closed" true
    (match Fd_table.get t fd with _ -> false | exception Types.Error (EBADF, _) -> true);
  Alcotest.(check bool) "double close" true
    (match Fd_table.close t fd with () -> false | exception Types.Error (EBADF, _) -> true)

(* --- WineFS codecs --- *)

let test_codec_roundtrips () =
  let h =
    {
      Winefs.Codec.Inode.valid = true;
      is_dir = false;
      xattr_align = true;
      size = 123456789;
      nlink = 3;
      extent_count = 17;
      overflow = 987654;
    }
  in
  Alcotest.(check bool) "inode header" true
    (Winefs.Codec.Inode.decode_header (Winefs.Codec.Inode.encode_header h) = h);
  let e = Winefs.Codec.Inode.encode_extent ~file_off:42 ~phys:4096 ~len:8192 in
  Alcotest.(check (triple int int int)) "extent" (42, 4096, 8192)
    (Winefs.Codec.Inode.decode_extent e);
  let d = { Winefs.Codec.Dentry.ino = 55; name = "hello.txt" } in
  (match Winefs.Codec.Dentry.decode (Winefs.Codec.Dentry.encode d) with
  | Some d' -> Alcotest.(check bool) "dentry" true (d = d')
  | None -> Alcotest.fail "dentry decode");
  Alcotest.(check bool) "free slot decodes to None" true
    (Winefs.Codec.Dentry.decode Winefs.Codec.Dentry.free_slot = None);
  let sb =
    { Winefs.Codec.Superblock.size = 1 lsl 30; cpus = 8; inodes_per_cpu = 4096;
      mode_strict = true; clean = false }
  in
  Alcotest.(check bool) "superblock" true
    (Winefs.Codec.Superblock.decode (Winefs.Codec.Superblock.encode sb) = Some sb);
  Alcotest.(check bool) "garbage superblock rejected" true
    (Winefs.Codec.Superblock.decode (Bytes.make 64 'x') = None);
  let exts = [ (0, 4096); (8192, 2 * Units.mib) ] in
  (match Winefs.Codec.Serial.encode exts ~capacity_bytes:4096 with
  | Some b -> Alcotest.(check bool) "serial" true (Winefs.Codec.Serial.decode b = Some exts)
  | None -> Alcotest.fail "serial encode");
  Alcotest.(check bool) "serial overflow" true
    (Winefs.Codec.Serial.encode (List.init 1000 (fun i -> (i, 1))) ~capacity_bytes:64 = None)

let test_layout () =
  let l = Winefs.Layout.compute ~size:(256 * Units.mib) ~cpus:4 ~inodes_per_cpu:1024 in
  Alcotest.(check int) "cpus" 4 (Array.length l.stripes);
  Array.iter
    (fun (off, len) ->
      Alcotest.(check bool) "stripe aligned" true (Units.is_aligned off Units.huge_page);
      Alcotest.(check bool) "stripe non-empty" true (len > 0))
    l.stripes;
  let ino = Winefs.Layout.ino_of l ~cpu:2 ~idx:5 in
  Alcotest.(check int) "cpu_of_ino" 2 (Winefs.Layout.cpu_of_ino l ino);
  Alcotest.(check int) "idx_of_ino" 5 (Winefs.Layout.idx_of_ino l ino);
  Alcotest.(check bool) "tiny device rejected" true
    (match Winefs.Layout.compute ~size:(4 * Units.mib) ~cpus:8 ~inodes_per_cpu:8192 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_numa_policy () =
  let free = [| 100; 500 |] in
  let p = Winefs.Numa_policy.create ~nodes:2 ~node_free:(fun n -> free.(n)) in
  Alcotest.(check int) "first write picks emptiest" 1 (Winefs.Numa_policy.home p ~pid:1);
  free.(0) <- 900;
  Alcotest.(check int) "home sticky" 1 (Winefs.Numa_policy.home p ~pid:1);
  Winefs.Numa_policy.fork p ~parent:1 ~child:2;
  Alcotest.(check int) "child inherits" 1 (Winefs.Numa_policy.home p ~pid:2);
  Winefs.Numa_policy.notify_exhausted p ~pid:1;
  Alcotest.(check int) "re-homed on exhaustion" 0 (Winefs.Numa_policy.home p ~pid:1);
  Alcotest.(check (option int)) "unassigned" None (Winefs.Numa_policy.assigned p ~pid:99)

let suite =
  [
    Alcotest.test_case "paths" `Quick test_path;
    Alcotest.test_case "block map" `Quick test_block_map;
    Alcotest.test_case "block map huge candidate" `Quick test_block_map_huge_candidate;
    QCheck_alcotest.to_alcotest prop_block_map_remove_inverse;
    Alcotest.test_case "dir index cost models" `Quick test_dir_index_costs;
    Alcotest.test_case "fd table" `Quick test_fd_table;
    Alcotest.test_case "winefs codecs" `Quick test_codec_roundtrips;
    Alcotest.test_case "winefs layout" `Quick test_layout;
    Alcotest.test_case "numa policy" `Quick test_numa_policy;
  ]
